package idleconns

import (
	"testing"
)

// TestRunScaled drives the full acceptance demo at CI scale: the conn
// count rides the fd budget down, the flow table still proves the O(1)
// epoch flip, and the reconnect storm must fully absorb.
func TestRunScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("demo harness is seconds-long; skipped in -short")
	}
	cfg := Config{
		Conns: 512,
		Flows: 100_000,
		Logf:  t.Logf,
		Dir:   t.TempDir(),
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Conns == 0 || rep.Conns > 512 {
		t.Fatalf("conns = %d", rep.Conns)
	}
	if rep.EpochBumpWrites != 0 {
		t.Fatalf("epoch bump wrote %d entries", rep.EpochBumpWrites)
	}
	if rep.DrainedSampleHits != 0 {
		t.Fatalf("%d drained-generation hits", rep.DrainedSampleHits)
	}
	if rep.ReconnectOK != rep.ReconnectAttempted {
		t.Fatalf("reconnect %d/%d", rep.ReconnectOK, rep.ReconnectAttempted)
	}
	if rep.TakeoverMs <= 0 {
		t.Fatalf("takeover wall time %v", rep.TakeoverMs)
	}
	if rep.PeakRSSKB <= 0 {
		t.Fatalf("peak RSS %d", rep.PeakRSSKB)
	}
	if rep.FlowTableFlows < 99_000 {
		t.Fatalf("flow table resident %d", rep.FlowTableFlows)
	}
}

// TestFDBudget sanity-checks the auto-scaler.
func TestFDBudget(t *testing.T) {
	if b := FDBudget(); b < 64 {
		t.Fatalf("fd budget %d", b)
	}
}
