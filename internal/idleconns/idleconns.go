// Package idleconns is the million-flow takeover acceptance demo: hand
// off an Edge listener carrying a large set of established, mostly-idle
// connections (parked in an epoll event loop, not goroutines) to a new
// instance, and measure what the paper's §5 release machinery promises —
// takeover wall time, peak RSS, and reconnect-storm absorption — while a
// generation-tagged flow table holding millions of flows flips its
// routing epoch in O(1).
//
// The container's fd rlimit bounds how many real sockets the harness can
// open (each in-process connection burns two descriptors), so Run
// auto-scales the socket count to the budget and carries the
// million-flow claim with the FlowTable itself: one million resident
// entries cost 16 bytes each, and the epoch bump is asserted to write
// zero of them.
package idleconns

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"zdr/internal/http1"
	"zdr/internal/katran"
	"zdr/internal/netx"
	"zdr/internal/proxy"
)

// Config parameterises one demo run.
type Config struct {
	// Conns is the requested idle-connection count; the harness scales
	// it down to the fd budget. 0 means "as many as the budget allows".
	Conns int
	// Flows is the flow-table population for the O(1) epoch-bump check.
	// Defaults to 1<<20 (the "million-flow" in the title).
	Flows int
	// LoopWorkers sizes each event loop's worker pool (0 = default).
	LoopWorkers int
	// DrainPeriod for both proxy generations (0 = 200ms).
	DrainPeriod time.Duration
	// Logf, when set, receives progress lines (e.g. fmt.Printf).
	Logf func(format string, args ...any)
	// Dir is where the takeover socket lives (0 = os.MkdirTemp).
	Dir string
}

// Report is what one run measured.
type Report struct {
	RequestedConns int `json:"requested_conns"`
	Conns          int `json:"conns"` // after fd auto-scale
	FDBudget       int `json:"fd_budget"`

	FlowTableFlows int `json:"flowtable_flows"`

	// TakeoverMs is the wall time of the hand-off protocol exchange as
	// observed by the receiver (listener fds transferred, meta applied).
	TakeoverMs float64 `json:"takeover_ms"`

	// EpochBumpNs is the wall time of FlowTable.Bump(true) with
	// FlowTableFlows entries resident; EpochBumpWrites is how many
	// entries the bump mutated — the O(1) claim requires exactly zero.
	EpochBumpNs     int64  `json:"epoch_bump_ns"`
	EpochBumpWrites uint64 `json:"epoch_bump_writes"`

	// DrainedSampleHits counts sampled flows that still resolved to a
	// backend after the invalidating bump — must be zero (no flow may
	// route on the drained generation's pins).
	DrainedSampleHits int `json:"drained_sample_hits"`

	PeakRSSKB int64 `json:"peak_rss_kb"`

	// Reconnect storm: the old generation terminates, every parked
	// connection dies at once, and every client re-dials the same VIP —
	// now answered by the new generation.
	ReconnectAttempted int     `json:"reconnect_attempted"`
	ReconnectOK        int     `json:"reconnect_ok"`
	ReconnectMs        float64 `json:"reconnect_ms"`
}

// FDBudget returns how many idle connections the process may hold,
// leaving headroom for listeners, pipes, and epoll fds. Each in-process
// connection costs two descriptors (client end + accepted end).
func FDBudget() int {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 256
	}
	cur := int(lim.Cur)
	const headroom = 512
	if cur <= headroom {
		return 64
	}
	return (cur - headroom) / 2
}

// Run executes the demo and returns the measurements.
func Run(cfg Config) (*Report, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Flows == 0 {
		cfg.Flows = 1 << 20
	}
	if cfg.DrainPeriod == 0 {
		cfg.DrainPeriod = 200 * time.Millisecond
	}
	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "idleconns-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}

	rep := &Report{RequestedConns: cfg.Conns, FDBudget: FDBudget(), FlowTableFlows: cfg.Flows}
	rep.Conns = rep.FDBudget
	if cfg.Conns > 0 && cfg.Conns < rep.Conns {
		rep.Conns = cfg.Conns
	}
	if rep.Conns != cfg.Conns {
		logf("idleconns: scaled %d requested conns to %d (fd budget %d)\n",
			cfg.Conns, rep.Conns, rep.FDBudget)
	}

	// --- Generation 1: loop-mode edge holding the idle herd. ---
	oldLoop, err := netx.NewEventLoop(netx.EventLoopConfig{Workers: cfg.LoopWorkers})
	if err != nil {
		return nil, err
	}
	defer oldLoop.Close()
	static := map[string][]byte{"/static/ping": []byte("pong")}
	oldEdge := proxy.New(proxy.Config{
		Name:          "idleconns-g1",
		Role:          proxy.RoleEdge,
		DrainPeriod:   cfg.DrainPeriod,
		StaticContent: static,
		ConnLoop:      oldLoop,
	}, nil)
	if err := oldEdge.Listen(); err != nil {
		return nil, err
	}
	defer oldEdge.Close()
	sock := filepath.Join(dir, "takeover.sock")
	if err := oldEdge.ServeTakeover(sock); err != nil {
		return nil, err
	}
	addr := oldEdge.Addr(proxy.VIPWeb)

	logf("idleconns: establishing %d idle connections ...\n", rep.Conns)
	conns := make([]net.Conn, 0, rep.Conns)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < rep.Conns; i++ {
		c, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return nil, fmt.Errorf("dial %d/%d: %w", i, rep.Conns, err)
		}
		conns = append(conns, c)
	}
	// One warm-up request per conn proves the parked path serves, then
	// the conn goes idle in the loop.
	if err := oneRequest(conns[0], addr); err != nil {
		return nil, fmt.Errorf("warm-up: %w", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for oldLoop.Watched() < len(conns) {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("only %d/%d conns parked", oldLoop.Watched(), len(conns))
		}
		time.Sleep(10 * time.Millisecond)
	}
	logf("idleconns: %d connections parked in generation-1 loop\n", oldLoop.Watched())

	// --- The million flows. ---
	table := katran.NewFlowTable(cfg.Flows*2, 0)
	backends := []string{"pool-a", "pool-b", "pool-c", "pool-d"}
	table.SetBackends(backends)
	for i := 0; i < cfg.Flows; i++ {
		table.Insert(uint64(i)*0x9e3779b97f4a7c15+1, backends[i%len(backends)])
	}
	// Bucket placement is hashed, so a sliver of inserts can land in full
	// 8-way buckets and evict; require at least 99% residency.
	if got := table.Len(); got < cfg.Flows-cfg.Flows/100 {
		return nil, fmt.Errorf("flow table resident %d, want >= %d", got, cfg.Flows-cfg.Flows/100)
	}
	rep.FlowTableFlows = table.Len()
	logf("idleconns: flow table resident with %d flows (%d shards)\n", table.Len(), table.Shards())

	// --- Generation 2 takes over. ---
	newLoop, err := netx.NewEventLoop(netx.EventLoopConfig{Workers: cfg.LoopWorkers})
	if err != nil {
		return nil, err
	}
	defer newLoop.Close()
	newEdge := proxy.New(proxy.Config{
		Name:          "idleconns-g2",
		Role:          proxy.RoleEdge,
		DrainPeriod:   cfg.DrainPeriod,
		StaticContent: static,
		ConnLoop:      newLoop,
	}, nil)
	defer newEdge.Close()
	res, err := newEdge.TakeoverFrom(sock)
	if err != nil {
		return nil, fmt.Errorf("takeover: %w", err)
	}
	rep.TakeoverMs = float64(res.Duration.Microseconds()) / 1e3
	logf("idleconns: takeover of %d VIPs in %.2fms with %d conns established\n",
		len(res.VIPs), rep.TakeoverMs, len(conns))

	// The routing flip: one epoch bump retargets every flow, writing no
	// entries. This is the O(1) claim, asserted, not assumed.
	w0 := table.EntryWrites()
	t0 := time.Now()
	table.Bump(true)
	rep.EpochBumpNs = time.Since(t0).Nanoseconds()
	rep.EpochBumpWrites = table.EntryWrites() - w0
	if rep.EpochBumpWrites != 0 {
		return nil, fmt.Errorf("epoch bump wrote %d entries; the flip must be O(1)", rep.EpochBumpWrites)
	}
	const sample = 4096
	for i := 0; i < sample; i++ {
		k := uint64(i*(cfg.Flows/sample))*0x9e3779b97f4a7c15 + 1
		if _, ok := table.Lookup(k); ok {
			rep.DrainedSampleHits++
		}
	}
	if rep.DrainedSampleHits != 0 {
		return nil, fmt.Errorf("%d flows still routed on the drained generation", rep.DrainedSampleHits)
	}
	logf("idleconns: epoch bump over %d flows: %dns, %d entry writes, %d drained-generation hits\n",
		cfg.Flows, rep.EpochBumpNs, rep.EpochBumpWrites, rep.DrainedSampleHits)

	// --- Reconnect storm. ---
	// Terminating generation 1 severs every parked connection at once;
	// each client re-dials the shared VIP, now answered by generation 2.
	oldEdge.Shutdown()
	storm0 := time.Now()
	var ok atomic.Int64
	var wg sync.WaitGroup
	sem := make(chan struct{}, 256) // don't out-dial the accept queue
	for i := range conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			waitClosed(conns[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			c, err := net.DialTimeout("tcp", addr, 10*time.Second)
			if err != nil {
				return
			}
			if err := oneRequest(c, addr); err != nil {
				c.Close()
				return
			}
			conns[i].Close()
			conns[i] = c // keep for final cleanup
			ok.Add(1)
		}(i)
	}
	wg.Wait()
	rep.ReconnectAttempted = len(conns)
	rep.ReconnectOK = int(ok.Load())
	rep.ReconnectMs = float64(time.Since(storm0).Microseconds()) / 1e3
	if rep.ReconnectOK < rep.ReconnectAttempted {
		return nil, fmt.Errorf("reconnect storm: only %d/%d clients re-established",
			rep.ReconnectOK, rep.ReconnectAttempted)
	}
	logf("idleconns: reconnect storm absorbed: %d/%d clients back in %.1fms\n",
		rep.ReconnectOK, rep.ReconnectAttempted, rep.ReconnectMs)

	rep.PeakRSSKB = peakRSSKB()
	logf("idleconns: peak RSS %d KB\n", rep.PeakRSSKB)
	return rep, nil
}

// oneRequest runs a single keep-alive GET on an established conn.
func oneRequest(conn net.Conn, addr string) error {
	if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/static/ping", nil, 0)); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return err
	}
	if resp.StatusCode != 200 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	_, err = http1.ReadFullBody(resp.Body)
	conn.SetReadDeadline(time.Time{})
	return err
}

// waitClosed blocks until the peer closes the connection (the terminate
// sweep), bounded by a deadline so a stuck conn can't hang the storm.
func waitClosed(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(15 * time.Second))
	var buf [1]byte
	for {
		if _, err := conn.Read(buf[:]); err != nil {
			return
		}
	}
}

// peakRSSKB reads VmHWM (peak resident set) from /proc/self/status.
func peakRSSKB() int64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				kb, _ := strconv.ParseInt(fields[0], 10, 64)
				return kb
			}
		}
	}
	return 0
}
