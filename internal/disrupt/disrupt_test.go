package disrupt

import (
	"fmt"
	"sync"
	"testing"
)

func TestKindTaxonomy(t *testing.T) {
	want := map[Kind]string{
		KindAccept: "accept", KindHandoff: "handoff", KindDrain: "drain",
		KindUndo: "undo", KindReset: "reset", KindTimeout: "timeout",
		KindRetry: "retry", KindReattach: "reattach", KindFault: "fault",
	}
	for k, name := range want {
		if k.String() != name {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatalf("out-of-range kind name = %q", Kind(200).String())
	}
	for _, k := range []Kind{KindReset, KindTimeout, KindFault} {
		if !k.Terminal() {
			t.Fatalf("%s not terminal", k)
		}
	}
	for _, k := range []Kind{KindAccept, KindHandoff, KindDrain, KindUndo, KindRetry, KindReattach} {
		if k.Terminal() {
			t.Fatalf("%s terminal", k)
		}
	}
}

func TestLedgerAttribution(t *testing.T) {
	l := New("edge-01", 64)
	l.SetPhase("serving", 1)
	l.Record(KindAccept, 1, "web", "", "")
	l.Record(KindReset, 1, "web", "edge:upstream", "dial refused")
	l.SetPhase("draining", 1)
	l.Record(KindReset, 2, "web", "edge:upstream", "")
	l.Record(KindReset, 3, "web", "edge:no-origin", "")
	l.SetPhase("committed-awaiting-ready", 2)
	l.Record(KindTimeout, 4, "mqtt", "dcr:reconnect-timeout", "")

	r := l.Report()
	if r.Node != "edge-01" {
		t.Fatalf("node = %q", r.Node)
	}
	if r.Total != 5 || r.Terminal != 4 || r.Unattributed != 0 {
		t.Fatalf("total=%d terminal=%d unattributed=%d", r.Total, r.Terminal, r.Unattributed)
	}
	if r.ByKind["reset"] != 3 || r.ByKind["accept"] != 1 || r.ByKind["timeout"] != 1 {
		t.Fatalf("by kind: %v", r.ByKind)
	}
	wantCells := map[string]int64{
		"edge:upstream/serving/1":                          1,
		"edge:upstream/draining/1":                         1,
		"edge:no-origin/draining/1":                        1,
		"dcr:reconnect-timeout/committed-awaiting-ready/2": 1,
	}
	if len(r.Cells) != len(wantCells) {
		t.Fatalf("cells: %+v", r.Cells)
	}
	var attributed int64
	for _, c := range r.Cells {
		key := fmt.Sprintf("%s/%s/%d", c.Cause, c.Phase, c.Generation)
		if wantCells[key] != c.Count {
			t.Fatalf("cell %s = %d, want %d", key, c.Count, wantCells[key])
		}
		if c.Node != "edge-01" {
			t.Fatalf("cell node = %q", c.Node)
		}
		attributed += c.Count
	}
	if attributed != r.Terminal {
		t.Fatalf("attributed %d != terminal %d", attributed, r.Terminal)
	}

	// Phase stamping on the event stream itself.
	evs := l.Recent(10)
	if len(evs) != 5 {
		t.Fatalf("recent = %d events", len(evs))
	}
	if evs[1].Phase != "serving" || evs[1].Generation != 1 {
		t.Fatalf("event phase stamp: %+v", evs[1])
	}
	if evs[4].Phase != "committed-awaiting-ready" || evs[4].Generation != 2 {
		t.Fatalf("event phase stamp: %+v", evs[4])
	}
}

func TestLedgerUnattributed(t *testing.T) {
	l := New("edge-02", 16)
	l.Record(KindReset, 1, "web", "", "terminal with no cause")
	l.Record(KindRetry, 2, "web", "", "non-terminal needs no cause")
	r := l.Report()
	if r.Unattributed != 1 {
		t.Fatalf("unattributed = %d, want 1", r.Unattributed)
	}
	if len(r.Cells) != 0 {
		t.Fatalf("unattributed event produced a cell: %+v", r.Cells)
	}
}

func TestLedgerRingWrap(t *testing.T) {
	l := New("edge-03", 8) // power of two already
	for i := 0; i < 100; i++ {
		l.Record(KindAccept, uint64(i), "web", "", "")
	}
	evs := l.Recent(100)
	if len(evs) != 8 {
		t.Fatalf("recent after wrap = %d events, want 8", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(92 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if r := l.Report(); r.Total != 100 {
		t.Fatalf("aggregate total = %d, want 100 (ring must not bound totals)", r.Total)
	}
}

func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.Record(KindReset, 1, "web", "cause", "")
	l.SetPhase("draining", 1)
	if p, g := l.Phase(); p != "" || g != 0 {
		t.Fatal("nil phase")
	}
	if r := l.Report(); r.Total != 0 {
		t.Fatal("nil report")
	}
	if evs := l.Recent(5); evs != nil {
		t.Fatal("nil recent")
	}
	if l.Node() != "" {
		t.Fatal("nil node")
	}
}

func TestReportMerge(t *testing.T) {
	a := New("edge-01", 16)
	a.SetPhase("draining", 2)
	a.Record(KindReset, 1, "web", "edge:upstream", "")
	a.Record(KindReset, 2, "web", "edge:upstream", "")
	b := New("edge-02", 16)
	b.SetPhase("serving", 1)
	b.Record(KindTimeout, 1, "mqtt", "dcr:reconnect-timeout", "")
	b.Record(KindReset, 9, "web", "", "bug: no cause")

	m := a.Report().Merge(b.Report())
	if m.Total != 4 || m.Terminal != 4 || m.Unattributed != 1 {
		t.Fatalf("merged total=%d terminal=%d unattributed=%d", m.Total, m.Terminal, m.Unattributed)
	}
	if len(m.Cells) != 2 {
		t.Fatalf("merged cells: %+v", m.Cells)
	}
	nodes := map[string]bool{}
	for _, c := range m.Cells {
		nodes[c.Node] = true
	}
	if !nodes["edge-01"] || !nodes["edge-02"] {
		t.Fatalf("merge lost per-node identity: %+v", m.Cells)
	}
	cp := m.CausePhaseTotals()
	if len(cp) != 2 {
		t.Fatalf("cause-phase totals: %+v", cp)
	}
	if m.ByKind["reset"] != 3 {
		t.Fatalf("merged by-kind: %v", m.ByKind)
	}
}

// TestLedgerConcurrency is the -race test the satellite asks for:
// concurrent writers racing a reader mid-"takeover" (phase flips while
// events stream in). Asserts nothing is lost from the aggregates.
func TestLedgerConcurrency(t *testing.T) {
	l := New("edge-chaos", 256)
	const writers, perWriter = 8, 2000

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Flip phases like a takeover in progress.
			switch i % 3 {
			case 0:
				l.SetPhase("serving", i%5)
			case 1:
				l.SetPhase("draining", i%5)
			case 2:
				l.SetPhase("rolling-back", i%5)
			}
			r := l.Report()
			if r.Unattributed != 0 {
				panic("unattributed event appeared")
			}
			_ = l.Recent(64)
		}
	}()

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(seed int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				switch i % 4 {
				case 0:
					l.Record(KindAccept, uint64(i), "web", "", "")
				case 1:
					l.Record(KindReset, uint64(i), "web", "edge:upstream", "")
				case 2:
					l.Record(KindRetry, uint64(i), "web", "", "")
				case 3:
					l.Record(KindHandoff, uint64(i), "web", "", "")
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	r := l.Report()
	if want := int64(writers * perWriter); r.Total != want {
		t.Fatalf("total = %d, want %d", r.Total, want)
	}
	if want := int64(writers * perWriter / 4); r.Terminal != want {
		t.Fatalf("terminal = %d, want %d", r.Terminal, want)
	}
	var attributed int64
	for _, c := range r.Cells {
		attributed += c.Count
	}
	if attributed != r.Terminal || r.Unattributed != 0 {
		t.Fatalf("attributed=%d terminal=%d unattributed=%d", attributed, r.Terminal, r.Unattributed)
	}
}

func BenchmarkLedgerRecord(b *testing.B) {
	l := New("bench", 4096)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Record(KindAccept, 1, "web", "", "")
		}
	})
}
