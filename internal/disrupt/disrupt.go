// Package disrupt is the disruption ledger: a lock-light, ring-buffered
// per-connection event stream that turns "some requests failed during
// the release" into "drain-undo reset 12 connections on node edge-07,
// generation 3, while it was rolling back".
//
// The paper's evaluation (§6) is a disruption *accounting* exercise —
// every reset, timeout, and proxied-away connection during a release is
// counted and attributed to a release phase. The ledger is that
// substrate at runtime: proxy pumps, the takeover state machine, and
// the fault injectors all record events here, and every terminal
// failure carries a (cause, phase, generation, node) attribution tuple.
// An event with a terminal kind and no cause is a bug in the recording
// site; Report surfaces those as Unattributed so tests can pin the
// count to zero.
//
// Design: recording claims a slot with one atomic increment and takes
// only that slot's striped mutex (writers contend only on ring wrap),
// so the hot path is O(1) and allocation-free for callers that pass
// pre-built strings. Aggregation (cause × phase × generation counts)
// uses a small map under its own mutex — attribution events are rare
// next to data-plane operations. All methods are nil-receiver safe, so
// wiring can be unconditional.
package disrupt

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the event taxonomy. Accept/Handoff/Drain/Undo/Reattach trace
// a connection's path through a release; Reset/Timeout are terminal
// failures; Retry marks a recoverable failure that was absorbed by a
// retry mechanism (PPR replay, DCR reconnect, backoff redial); Fault is
// the fault injector's attribution channel — every injected fault lands
// in the ledger as one Fault event whose cause names the injected op.
type Kind uint8

const (
	KindAccept Kind = iota
	KindHandoff
	KindDrain
	KindUndo
	KindReset
	KindTimeout
	KindRetry
	KindReattach
	KindFault

	kindCount
)

var kindNames = [kindCount]string{
	"accept", "handoff", "drain", "undo", "reset", "timeout", "retry", "reattach", "fault",
}

// String returns the lower-case event name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Terminal reports whether the kind is a client-visible failure that
// must carry a cause attribution.
func (k Kind) Terminal() bool {
	return k == KindReset || k == KindTimeout || k == KindFault
}

// Event is one ledger entry. Terminal events (Reset, Timeout, Fault)
// must have Cause set; Phase/Generation/Node are stamped by the ledger
// from its current release position.
type Event struct {
	Seq        uint64 `json:"seq"`
	UnixNano   int64  `json:"unix_nano"`
	Kind       string `json:"kind"`
	Conn       uint64 `json:"conn,omitempty"`
	VIP        string `json:"vip,omitempty"`
	Cause      string `json:"cause,omitempty"`
	Phase      string `json:"phase,omitempty"`
	Generation int    `json:"generation"`
	Node       string `json:"node"`
	Detail     string `json:"detail,omitempty"`
}

// Cell is one cell of the attribution table: how many terminal events
// share a (cause, phase, generation, node) tuple.
type Cell struct {
	Cause      string `json:"cause"`
	Phase      string `json:"phase"`
	Generation int    `json:"generation"`
	Node       string `json:"node"`
	Count      int64  `json:"count"`
}

type attrKey struct {
	cause string
	phase string
	gen   int
}

type slot struct {
	mu sync.Mutex
	ev Event
	ok bool // slot has been written at least once
}

type phaseInfo struct {
	phase string
	gen   int
}

// Ledger records events for one node. One ledger outlives the node's
// process generations (like the node's metrics registry): the release
// phase and generation are updated by whoever drives the release state
// machine via SetPhase, and stamped onto every event at record time —
// attribution reflects where the release *was* when the failure
// happened, which is the whole point.
type Ledger struct {
	node  string
	mask  uint64
	seq   atomic.Uint64
	slots []slot
	phase atomic.Pointer[phaseInfo]

	kinds [kindCount]atomic.Int64

	attrMu sync.Mutex
	attr   map[attrKey]int64

	unattributed atomic.Int64
}

// DefaultCapacity is the ring size used when New is given cap <= 0.
const DefaultCapacity = 4096

// New returns a ledger for the named node. capacity is rounded up to a
// power of two; the ring retains that many most-recent events (the
// aggregate attribution counts are not ring-bounded).
func New(node string, capacity int) *Ledger {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	l := &Ledger{
		node:  node,
		mask:  uint64(size - 1),
		slots: make([]slot, size),
		attr:  make(map[attrKey]int64),
	}
	l.phase.Store(&phaseInfo{phase: "serving"})
	return l
}

// Node returns the node name, or "" on a nil ledger.
func (l *Ledger) Node() string {
	if l == nil {
		return ""
	}
	return l.node
}

// SetPhase moves the ledger's release position. Subsequent events are
// attributed to this (phase, generation) until the next transition.
func (l *Ledger) SetPhase(phase string, generation int) {
	if l == nil {
		return
	}
	l.phase.Store(&phaseInfo{phase: phase, gen: generation})
}

// Phase returns the current release position.
func (l *Ledger) Phase() (string, int) {
	if l == nil {
		return "", 0
	}
	p := l.phase.Load()
	return p.phase, p.gen
}

// Record appends one event. conn is a per-node connection ordinal (0 if
// not connection-scoped), vip names the listener the connection arrived
// on, cause attributes terminal events ("" is a recording bug for a
// terminal kind and is counted as unattributed), and detail is free
// text. Safe for unbounded concurrent use; nil-receiver safe.
func (l *Ledger) Record(kind Kind, conn uint64, vip, cause, detail string) {
	if l == nil {
		return
	}
	p := l.phase.Load()
	seq := l.seq.Add(1) - 1
	s := &l.slots[seq&l.mask]
	s.mu.Lock()
	s.ev = Event{
		Seq:        seq,
		UnixNano:   time.Now().UnixNano(),
		Kind:       kind.String(),
		Conn:       conn,
		VIP:        vip,
		Cause:      cause,
		Phase:      p.phase,
		Generation: p.gen,
		Node:       l.node,
		Detail:     detail,
	}
	s.ok = true
	s.mu.Unlock()

	if int(kind) < len(l.kinds) {
		l.kinds[kind].Add(1)
	}
	if kind.Terminal() {
		if cause == "" {
			l.unattributed.Add(1)
			return
		}
		k := attrKey{cause: cause, phase: p.phase, gen: p.gen}
		l.attrMu.Lock()
		l.attr[k]++
		l.attrMu.Unlock()
	}
}

// Recent returns up to n most-recent events, oldest first.
func (l *Ledger) Recent(n int) []Event {
	if l == nil || n <= 0 {
		return nil
	}
	end := l.seq.Load()
	span := uint64(len(l.slots))
	if uint64(n) < span {
		span = uint64(n)
	}
	start := uint64(0)
	if end > span {
		start = end - span
	}
	out := make([]Event, 0, span)
	for seq := start; seq < end; seq++ {
		s := &l.slots[seq&l.mask]
		s.mu.Lock()
		ev, ok := s.ev, s.ok
		s.mu.Unlock()
		// A racing writer may have lapped this slot; keep only events
		// from the window we asked for.
		if ok && ev.Seq >= start {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Report summarises the ledger: totals by kind, the terminal-event
// attribution table, the unattributed count, and a recent-event tail.
type Report struct {
	Node         string           `json:"node,omitempty"`
	Phase        string           `json:"phase,omitempty"`
	Generation   int              `json:"generation,omitempty"`
	Total        int64            `json:"total"`
	Terminal     int64            `json:"terminal"`
	Unattributed int64            `json:"unattributed"`
	ByKind       map[string]int64 `json:"by_kind,omitempty"`
	Cells        []Cell           `json:"cells,omitempty"`
	Recent       []Event          `json:"recent,omitempty"`
}

// ReportRecent builds the node's disruption report, including the ring
// tail (up to recent events; pass 0 to omit the tail).
func (l *Ledger) ReportRecent(recent int) Report {
	if l == nil {
		return Report{}
	}
	phase, gen := l.Phase()
	r := Report{
		Node:       l.node,
		Phase:      phase,
		Generation: gen,
		ByKind:     make(map[string]int64, kindCount),
	}
	for k := Kind(0); k < kindCount; k++ {
		n := l.kinds[k].Load()
		if n == 0 {
			continue
		}
		r.ByKind[k.String()] = n
		r.Total += n
		if k.Terminal() {
			r.Terminal += n
		}
	}
	r.Unattributed = l.unattributed.Load()
	l.attrMu.Lock()
	r.Cells = make([]Cell, 0, len(l.attr))
	for k, n := range l.attr {
		r.Cells = append(r.Cells, Cell{
			Cause: k.cause, Phase: k.phase, Generation: k.gen, Node: l.node, Count: n,
		})
	}
	l.attrMu.Unlock()
	sortCells(r.Cells)
	if recent > 0 {
		r.Recent = l.Recent(recent)
	}
	return r
}

// Report is ReportRecent with a 64-event tail — the shape served at
// /debug/disruption.
func (l *Ledger) Report() Report { return l.ReportRecent(64) }

// Merge folds o into r: totals add, attribution cells concatenate
// (cells keep their per-node identity so a fleet-merged report still
// answers "which node"), and recent tails are dropped — a fleet report
// is an accounting document, not a log.
func (r Report) Merge(o Report) Report {
	out := r
	out.Node = joinNonEmpty(r.Node, o.Node)
	out.Phase, out.Generation = "", 0
	out.Total += o.Total
	out.Terminal += o.Terminal
	out.Unattributed += o.Unattributed
	out.ByKind = make(map[string]int64, len(r.ByKind)+len(o.ByKind))
	for k, v := range r.ByKind {
		out.ByKind[k] = v
	}
	for k, v := range o.ByKind {
		out.ByKind[k] += v
	}
	out.Cells = make([]Cell, 0, len(r.Cells)+len(o.Cells))
	out.Cells = append(out.Cells, r.Cells...)
	out.Cells = append(out.Cells, o.Cells...)
	sortCells(out.Cells)
	out.Recent = nil
	return out
}

// CausePhaseTotals collapses the cells to (cause, phase) → count, the
// shape of the paper's §6 tables.
func (r Report) CausePhaseTotals() []Cell {
	type cp struct{ cause, phase string }
	m := make(map[cp]int64)
	for _, c := range r.Cells {
		m[cp{c.Cause, c.Phase}] += c.Count
	}
	out := make([]Cell, 0, len(m))
	for k, n := range m {
		out = append(out, Cell{Cause: k.cause, Phase: k.phase, Count: n})
	}
	sortCells(out)
	return out
}

func sortCells(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.Cause != b.Cause {
			return a.Cause < b.Cause
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Generation < b.Generation
	})
}

func joinNonEmpty(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "+" + b
	}
}
