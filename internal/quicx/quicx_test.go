package quicx

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"testing/quick"
	"time"

	"zdr/internal/netx"
)

func echoHandler(conn ConnID, payload []byte) []byte {
	return append([]byte("echo:"), payload...)
}

func TestMarshalRoundTrip(t *testing.T) {
	in := Packet{Type: PktData, Conn: 0xdeadbeef, Payload: []byte("payload")}
	out, err := Unmarshal(Marshal(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Conn != in.Conn || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("%+v != %+v", out, in)
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2}); err == nil {
		t.Fatal("accepted short packet")
	}
}

func TestMarshalProperty(t *testing.T) {
	f := func(conn uint64, payload []byte) bool {
		p := Packet{Type: PktData, Conn: ConnID(conn), Payload: payload}
		got, err := Unmarshal(Marshal(p))
		return err == nil && got.Conn == p.Conn && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForwardEncapsulation(t *testing.T) {
	from := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 54321}
	raw := Marshal(Packet{Type: PktData, Conn: 7, Payload: []byte("x")})
	wrapped := wrapForwarded(raw, from)
	inner, addr, err := unwrapForwarded(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inner, raw) || addr.String() != from.String() {
		t.Fatalf("inner=%v addr=%v", inner, addr)
	}
	if _, _, err := unwrapForwarded(raw); err == nil {
		t.Fatal("accepted non-forwarded packet")
	}
}

func newVIP(t *testing.T) *net.UDPConn {
	t.Helper()
	pc, err := netx.ListenUDPReusePort("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return pc
}

func TestServerEcho(t *testing.T) {
	vip := newVIP(t)
	srv := NewServer("s1", vip, echoHandler, nil)
	srv.Start()
	defer srv.Close()

	c, err := Dial(vip.LocalAddr().String(), 42)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Open([]byte("hi"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:hi" {
		t.Fatalf("reply = %q", reply)
	}
	reply, err = c.Send([]byte("more"), 2*time.Second)
	if err != nil || string(reply) != "echo:more" {
		t.Fatalf("reply=%q err=%v", reply, err)
	}
	if srv.FlowCount() != 1 {
		t.Fatalf("flows = %d", srv.FlowCount())
	}
}

func TestServerUnknownFlowCountsMisrouted(t *testing.T) {
	vip := newVIP(t)
	srv := NewServer("s1", vip, echoHandler, nil)
	srv.Start()
	defer srv.Close()

	c, err := Dial(vip.LocalAddr().String(), 99)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Data without Initial: server has no state → misrouted.
	if _, err := c.Send([]byte("orphan"), 200*time.Millisecond); err == nil {
		t.Fatal("expected timeout for unknown flow")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Metrics().CounterValue("quicx.misrouted") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("misroute never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFlowClose(t *testing.T) {
	vip := newVIP(t)
	srv := NewServer("s1", vip, echoHandler, nil)
	srv.Start()
	defer srv.Close()
	c, err := Dial(vip.LocalAddr().String(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(nil, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.FlowCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("flow never closed; count=%d", srv.FlowCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTakeoverWithUserSpaceRouting is the §4.1 UDP scenario end to end:
// flows open on the old instance; the VIP socket is handed to a new
// instance; the new instance forwards old flows to the draining instance
// via the host-local socket; old flows keep working and new flows land on
// the new instance. Zero mis-routing.
func TestTakeoverWithUserSpaceRouting(t *testing.T) {
	vip := newVIP(t)
	oldSrv := NewServer("old", vip, func(c ConnID, p []byte) []byte {
		return append([]byte("old:"), p...)
	}, nil)
	oldSrv.Start()
	defer oldSrv.Close()

	// Client opens a flow on the old instance.
	c1, err := Dial(vip.LocalAddr().String(), 1001)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if reply, err := c1.Open([]byte("a"), 2*time.Second); err != nil || string(reply) != "old:a" {
		t.Fatalf("open: %q %v", reply, err)
	}

	// Socket Takeover: dup the FD (as the real hand-off does) and build
	// the new instance on it.
	fd, err := netx.PacketConnFD(vip)
	if err != nil {
		t.Fatal(err)
	}
	vip2, err := netx.PacketConnFromFD(fd, "vip-new")
	if err != nil {
		t.Fatal(err)
	}
	newSrv := NewServer("new", vip2, func(c ConnID, p []byte) []byte {
		return append([]byte("new:"), p...)
	}, nil)
	defer newSrv.Close()

	// Old drains: stops reading the VIP, listens on the forward socket.
	fwdAddr, err := oldSrv.StartDraining()
	if err != nil {
		t.Fatal(err)
	}
	newSrv.SetForward(fwdAddr)
	newSrv.Start()

	// The old flow must still be served by the OLD instance.
	ok := false
	for i := 0; i < 20; i++ {
		reply, err := c1.Send([]byte("b"), 500*time.Millisecond)
		if err == nil {
			if string(reply) != "old:b" {
				t.Fatalf("old flow answered by wrong instance: %q", reply)
			}
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("old flow never served during drain")
	}

	// A new flow must land on the NEW instance.
	c2, err := Dial(vip.LocalAddr().String(), 2002)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ok = false
	for i := 0; i < 20; i++ {
		reply, err := c2.Open([]byte("c"), 500*time.Millisecond)
		if err == nil {
			if string(reply) != "new:c" {
				t.Fatalf("new flow answered by wrong instance: %q", reply)
			}
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("new flow never served")
	}

	if got := newSrv.Metrics().CounterValue("quicx.misrouted"); got != 0 {
		t.Fatalf("new instance misrouted %d packets", got)
	}
	if got := oldSrv.Metrics().CounterValue("quicx.misrouted"); got != 0 {
		t.Fatalf("old instance misrouted %d packets", got)
	}
	if fwd := newSrv.Metrics().CounterValue("quicx.forwarded"); fwd == 0 {
		t.Fatal("forwarding path never used")
	}
}

func TestReuseportModelNoChangeNoMisroute(t *testing.T) {
	m := NewReuseportModel(4, 1)
	for i := 0; i < 100; i++ {
		f := FlowHash(uint32(i), 1, 2, 3)
		if err := m.OpenFlow(f); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 10; p++ {
			mis, err := m.DeliverPacket(f)
			if err != nil || mis {
				t.Fatalf("flow %d misrouted on stable ring (err=%v)", i, err)
			}
		}
	}
}

func TestReuseportModelFluxMisroutes(t *testing.T) {
	out, err := SimulateReuseportRelease(4, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Adding an equal number of sockets remaps roughly half the flows;
	// after the purge, flows owned by the old process are all lost.
	if out.FluxMisrouted == 0 || out.PurgeMisrouted == 0 {
		t.Fatalf("no misrouting modeled: %+v", out)
	}
	fluxRate := float64(out.FluxMisrouted) / float64(1000*5)
	if fluxRate < 0.2 || fluxRate > 0.8 {
		t.Fatalf("flux misroute rate %v implausible", fluxRate)
	}
}

func TestTakeoverModelVsReuseportModel(t *testing.T) {
	trad, err := SimulateReuseportRelease(4, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	zdr, err := SimulateTakeoverRelease(4, 1000, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	tradTotal := trad.FluxMisrouted + trad.PurgeMisrouted
	zdrTotal := zdr.FluxMisrouted + zdr.PurgeMisrouted
	if zdrTotal == 0 {
		t.Fatal("model should show a small takeover window")
	}
	// Fig. 10: ~100x fewer misrouted packets in the worst case.
	if tradTotal < 100*zdrTotal {
		t.Fatalf("takeover advantage only %dx (trad=%d zdr=%d)", tradTotal/zdrTotal, tradTotal, zdrTotal)
	}
}

func TestReuseportModelUnbindEmptiesRing(t *testing.T) {
	m := NewReuseportModel(2, 1)
	m.Unbind(1)
	if m.RingSize() != 0 {
		t.Fatalf("ring = %d", m.RingSize())
	}
	if err := m.OpenFlow(1); err == nil {
		t.Fatal("open on empty ring should fail")
	}
	m.Bind(3, 2)
	if m.RingSize() != 3 {
		t.Fatalf("ring = %d", m.RingSize())
	}
}

func TestDeliverUnopenedFlowErrors(t *testing.T) {
	m := NewReuseportModel(2, 1)
	if _, err := m.DeliverPacket(123); err == nil {
		t.Fatal("expected error for unopened flow")
	}
}

func TestFlowHashDeterministicAndSpread(t *testing.T) {
	if FlowHash(1, 2, 3, 4) != FlowHash(1, 2, 3, 4) {
		t.Fatal("hash not deterministic")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[FlowHash(uint32(i), 1000, 5, 443)%16] = true
	}
	if len(seen) < 12 {
		t.Fatalf("flow hash poorly spread: %d/16 buckets", len(seen))
	}
}

func BenchmarkServerEcho(b *testing.B) {
	vip, err := netx.ListenUDPReusePort("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer("bench", vip, echoHandler, nil)
	srv.Start()
	defer srv.Close()
	c, err := Dial(vip.LocalAddr().String(), 7)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Open(nil, 2*time.Second); err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte("q"), 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Send(payload, 2*time.Second); err != nil {
			b.Fatalf("iter %d: %v", i, err)
		}
	}
}

func BenchmarkReuseportModelRelease(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateReuseportRelease(8, 1000, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleSimulateReuseportRelease() {
	out, _ := SimulateReuseportRelease(4, 10000, 1)
	fmt.Println(out.FluxMisrouted > 0)
	// Output: true
}

func TestPrepareDrainIdempotent(t *testing.T) {
	vip := newVIP(t)
	srv := NewServer("s", vip, echoHandler, nil)
	defer srv.Close()
	a1, err := srv.PrepareDrain()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := srv.PrepareDrain()
	if err != nil || a1.String() != a2.String() {
		t.Fatalf("PrepareDrain not idempotent: %v %v (%v)", a1, a2, err)
	}
	// StartDraining must reuse the prepared socket.
	a3, err := srv.StartDraining()
	if err != nil || a3.String() != a1.String() {
		t.Fatalf("StartDraining returned %v, want %v (%v)", a3, a1, err)
	}
	// Draining twice is safe and stable.
	a4, err := srv.StartDraining()
	if err != nil || a4.String() != a1.String() {
		t.Fatalf("second StartDraining returned %v (%v)", a4, err)
	}
}
