package quicx

import (
	"fmt"
)

// ReuseportModel is a deterministic model of the Linux kernel's
// SO_REUSEPORT UDP socket selection, used to regenerate the mis-routing
// baseline of Fig. 2d and Fig. 10.
//
// From §4.1: "When SO_REUSEPORT socket option is used for an UDP address
// (VIP), Kernel's internal representation of the socket ring associated
// with respective UDP VIP is in flux during a release — new process binds
// to same address and new entries are added to socket ring, while the old
// process shutdowns and gets its entries purged from the socket ring. This
// flux breaks the consistency in picking up a socket for the same 4-tuple
// combination."
//
// The model: each bound socket occupies a ring slot; the kernel picks
// slot = hash(4-tuple) mod len(ring). A packet is mis-routed when the
// selected socket belongs to a process that holds no state for the flow.
// Socket Takeover avoids the flux entirely — the FD (and hence the ring)
// is unchanged across the restart — which the model reproduces by simply
// not mutating the ring.
type ReuseportModel struct {
	ring   []int // ring[i] = owning process ID
	owners map[uint64]int
	// flowOwner records, per flow hash, the process that holds its state
	// (the process its packets selected when the flow started).
	flowOwner map[uint64]int
	misrouted int64
	delivered int64
}

// NewReuseportModel creates a model with n sockets owned by process pid.
func NewReuseportModel(n int, pid int) *ReuseportModel {
	m := &ReuseportModel{owners: map[uint64]int{}, flowOwner: map[uint64]int{}}
	for i := 0; i < n; i++ {
		m.ring = append(m.ring, pid)
	}
	return m
}

// RingSize returns the current number of ring entries.
func (m *ReuseportModel) RingSize() int { return len(m.ring) }

// Bind adds n sockets for process pid (the new process binding the VIP).
func (m *ReuseportModel) Bind(n int, pid int) {
	for i := 0; i < n; i++ {
		m.ring = append(m.ring, pid)
	}
}

// Unbind purges all of pid's entries (the old process shutting down).
func (m *ReuseportModel) Unbind(pid int) {
	kept := m.ring[:0]
	for _, p := range m.ring {
		if p != pid {
			kept = append(kept, p)
		}
	}
	m.ring = kept
}

// pick returns the owning process for a flow hash under the current ring.
func (m *ReuseportModel) pick(flow uint64) (int, error) {
	if len(m.ring) == 0 {
		return 0, fmt.Errorf("quicx: empty socket ring")
	}
	return m.ring[flow%uint64(len(m.ring))], nil
}

// OpenFlow establishes state for flow at whichever process the ring picks
// now.
func (m *ReuseportModel) OpenFlow(flow uint64) error {
	pid, err := m.pick(flow)
	if err != nil {
		return err
	}
	m.flowOwner[flow] = pid
	return nil
}

// DeliverPacket routes one packet for flow and records whether it reached
// the process holding the flow's state.
func (m *ReuseportModel) DeliverPacket(flow uint64) (misrouted bool, err error) {
	pid, err := m.pick(flow)
	if err != nil {
		return false, err
	}
	owner, ok := m.flowOwner[flow]
	if !ok {
		return false, fmt.Errorf("quicx: packet for unopened flow %d", flow)
	}
	m.delivered++
	if pid != owner {
		m.misrouted++
		return true, nil
	}
	return false, nil
}

// Misrouted returns the cumulative mis-routed packet count.
func (m *ReuseportModel) Misrouted() int64 { return m.misrouted }

// Delivered returns the cumulative delivered packet count.
func (m *ReuseportModel) Delivered() int64 { return m.delivered }

// ResetCounters clears the packet counters (flow state is kept).
func (m *ReuseportModel) ResetCounters() { m.misrouted, m.delivered = 0, 0 }

// FlowHash is a convenient deterministic 4-tuple hash for experiments.
func FlowHash(srcIP uint32, srcPort uint16, dstIP uint32, dstPort uint16) uint64 {
	h := uint64(srcIP)<<32 | uint64(dstIP)
	h ^= uint64(srcPort)<<16 | uint64(dstPort)
	// splitmix64 finalizer for diffusion.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ReleaseOutcome summarises one modeled release (for Fig. 2d / Fig. 10).
type ReleaseOutcome struct {
	// Phase counters: packets mis-routed while both processes were bound
	// (flux phase) and after the old process unbound.
	FluxMisrouted  int64
	PurgeMisrouted int64
	Delivered      int64
}

// SimulateReuseportRelease models a traditional SO_REUSEPORT release:
// flows open on the old process (pid 1), the new process (pid 2) binds the
// same number of sockets, packetsPerFlow packets arrive during the flux,
// the old process unbinds, and packetsPerFlow more arrive. Flows whose
// packets land on a process without their state are mis-routed.
func SimulateReuseportRelease(sockets, flows, packetsPerFlow int) (ReleaseOutcome, error) {
	var out ReleaseOutcome
	m := NewReuseportModel(sockets, 1)
	flowIDs := make([]uint64, flows)
	for i := range flowIDs {
		flowIDs[i] = FlowHash(0x0a000001+uint32(i), uint16(4000+i%2000), 0x0a0000fe, 443)
		if err := m.OpenFlow(flowIDs[i]); err != nil {
			return out, err
		}
	}
	// Flux phase: new process binds alongside.
	m.Bind(sockets, 2)
	for p := 0; p < packetsPerFlow; p++ {
		for _, f := range flowIDs {
			mis, err := m.DeliverPacket(f)
			if err != nil {
				return out, err
			}
			if mis {
				out.FluxMisrouted++
			}
		}
	}
	// Purge phase: old process gone; ALL surviving old flows lose state.
	m.Unbind(1)
	for p := 0; p < packetsPerFlow; p++ {
		for _, f := range flowIDs {
			mis, err := m.DeliverPacket(f)
			if err != nil {
				return out, err
			}
			if mis {
				out.PurgeMisrouted++
			}
		}
	}
	out.Delivered = m.Delivered()
	return out, nil
}

// SimulateTakeoverRelease models the same release under Socket Takeover:
// the FD hand-off leaves the ring unchanged, and connection-ID user-space
// routing delivers the (ring-identical) packets to the owning process, so
// only packets arriving in the sub-millisecond window before the new
// process installs its forwarding table can mis-route. windowPackets
// models that window (0 for an atomic installation).
func SimulateTakeoverRelease(sockets, flows, packetsPerFlow, windowPackets int) (ReleaseOutcome, error) {
	var out ReleaseOutcome
	m := NewReuseportModel(sockets, 1)
	flowIDs := make([]uint64, flows)
	for i := range flowIDs {
		flowIDs[i] = FlowHash(0x0a000001+uint32(i), uint16(4000+i%2000), 0x0a0000fe, 443)
		if err := m.OpenFlow(flowIDs[i]); err != nil {
			return out, err
		}
	}
	// Takeover: ring unchanged (FDs passed). The new process adopts the
	// sockets; user-space routing covers old flows. Mis-routing is limited
	// to the installation window.
	for i := 0; i < windowPackets && i < len(flowIDs); i++ {
		out.FluxMisrouted++ // window packets reached the new process pre-table
	}
	total := int64(0)
	for p := 0; p < 2*packetsPerFlow; p++ {
		for range flowIDs {
			total++ // every post-window packet reaches its owner
		}
	}
	out.Delivered = total + int64(windowPackets)
	return out, nil
}
