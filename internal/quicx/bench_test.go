package quicx

import (
	"net"
	"testing"
	"time"
)

// sinkPacketConn swallows writes; reads are never issued by the benches.
type sinkPacketConn struct{}

func (sinkPacketConn) ReadFrom(p []byte) (int, net.Addr, error) {
	select {} // the benchmarks never start the read loop
}
func (sinkPacketConn) WriteTo(p []byte, addr net.Addr) (int, error) { return len(p), nil }
func (sinkPacketConn) Close() error                                 { return nil }
func (sinkPacketConn) LocalAddr() net.Addr                          { return &net.UDPAddr{} }
func (sinkPacketConn) SetDeadline(t time.Time) error                { return nil }
func (sinkPacketConn) SetReadDeadline(t time.Time) error            { return nil }
func (sinkPacketConn) SetWriteDeadline(t time.Time) error           { return nil }

// BenchmarkHandleData is the per-datagram hot path: parse, flow-table
// lookup, handler, reply marshal + send.
func BenchmarkHandleData(b *testing.B) {
	srv := NewServer("bench", sinkPacketConn{}, func(conn ConnID, payload []byte) []byte {
		return payload
	}, nil)
	defer srv.Close()
	from := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 4242}
	srv.handlePacket(Marshal(Packet{Type: PktInitial, Conn: 7}), from)
	if srv.FlowCount() != 1 {
		b.Fatal("flow not opened")
	}
	data := Marshal(Packet{Type: PktData, Conn: 7, Payload: make([]byte, 1024)})
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.handlePacket(data, from)
	}
}
