package quicx

import (
	"testing"
	"time"

	"zdr/internal/faults"
)

// TestServerSideDropsAbsorbedByRetries exercises the seam NewServer's
// net.PacketConn parameter exists for: the server's VIP socket is wrapped
// with a deterministic drop schedule, so datagrams vanish on the server
// side (both inbound requests and outbound replies). Bounded client
// retransmission must absorb every loss — and the schedule must
// demonstrably fire, otherwise the test proves nothing.
func TestServerSideDropsAbsorbedByRetries(t *testing.T) {
	vip := newVIP(t)
	drops := faults.NewInjector(faults.Scenario{Seed: 606, DropRate: 0.3, MaxOps: 512})
	srv := NewServer("s-drop", drops.PacketConn(vip), echoHandler, nil)
	srv.Start()
	defer srv.Close()

	c, err := Dial(vip.LocalAddr().String(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const retryBudget = 15
	retry := func(what string, fn func() ([]byte, error)) []byte {
		t.Helper()
		var lastErr error
		for attempt := 0; attempt < retryBudget; attempt++ {
			reply, err := fn()
			if err == nil {
				return reply
			}
			lastErr = err
		}
		t.Fatalf("%s lost beyond the retry budget: %v", what, lastErr)
		return nil
	}

	if reply := retry("open", func() ([]byte, error) {
		return c.Open([]byte("hi"), 150*time.Millisecond)
	}); string(reply) != "echo:hi" {
		t.Fatalf("open reply = %q", reply)
	}
	for i := 0; i < 10; i++ {
		if reply := retry("send", func() ([]byte, error) {
			return c.Send([]byte("d"), 150*time.Millisecond)
		}); string(reply) != "echo:d" {
			t.Fatalf("send %d reply = %q", i, reply)
		}
	}
	if drops.Injected(faults.OpDropPacket) == 0 {
		t.Fatal("no server-side datagrams dropped — the schedule never fired")
	}
}
