// Package quicx implements the QUIC-style UDP substrate of §4.1: a
// datagram protocol in which every packet carries a connection ID, a
// per-flow stateful server, and the user-space routing that lets a
// restarting proxy keep serving its UDP flows.
//
// The paper's problem statement: UDP has no kernel separation between
// listening and accepted sockets, so after Socket Takeover hands the VIP
// socket(s) to the new process, *all* packets — including those belonging
// to flows whose state lives in the old, draining process — arrive at the
// new process. "The new process employs user-space routing and forwards
// packets to the old process through a pre-configured host local
// addresses. Decisions ... are made based on information present in each
// UDP packet, such as connection ID." This package implements exactly
// that: a Server with a flow table keyed by connection ID, and a
// Forwarder that tunnels unknown-flow packets (with the original source
// address prepended) to the draining instance's local socket.
//
// The package also contains ReuseportModel (reuseportmodel.go), the
// deterministic model of the kernel's SO_REUSEPORT socket-ring flux used
// to regenerate the mis-routing baseline of Fig. 2d and Fig. 10.
package quicx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"zdr/internal/bufpool"
	"zdr/internal/metrics"
	"zdr/internal/netx"
)

// PacketType is the first byte of every datagram.
type PacketType uint8

// Packet types.
const (
	// PktInitial opens a flow: the server creates state for the conn ID.
	PktInitial PacketType = 1
	// PktData is a payload packet on an existing flow.
	PktData PacketType = 2
	// PktClose tears a flow down.
	PktClose PacketType = 3
	// pktForwarded wraps another packet with its original source address
	// (used on the drain-forwarding path, never on the wire to clients).
	pktForwarded PacketType = 9
)

// ConnID identifies a flow, present in every packet header (§4.1: "such as
// connection ID that is present in each QUIC packet header").
type ConnID uint64

// headerLen is type(1) + connID(8).
const headerLen = 9

// maxDatagram bounds handled packets.
const maxDatagram = 64 << 10

// Packet is a parsed datagram.
type Packet struct {
	Type    PacketType
	Conn    ConnID
	Payload []byte
}

// Marshal serializes p into a fresh buffer.
func Marshal(p Packet) []byte {
	return AppendPacket(make([]byte, 0, headerLen+len(p.Payload)), p)
}

// AppendPacket serializes p onto dst and returns the extended slice. With
// a dst of sufficient capacity (headerLen + len(p.Payload)) it does not
// allocate — the server's reply path appends into a pooled buffer.
func AppendPacket(dst []byte, p Packet) []byte {
	dst = append(dst, byte(p.Type))
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.Conn))
	return append(dst, p.Payload...)
}

// Unmarshal parses a datagram.
func Unmarshal(b []byte) (Packet, error) {
	if len(b) < headerLen {
		return Packet{}, errors.New("quicx: short packet")
	}
	return Packet{
		Type:    PacketType(b[0]),
		Conn:    ConnID(binary.BigEndian.Uint64(b[1:9])),
		Payload: b[headerLen:],
	}, nil
}

// wrapForwarded encapsulates raw with the original client address.
func wrapForwarded(raw []byte, from net.Addr) []byte {
	addr := from.String()
	return appendForwarded(make([]byte, 0, 3+len(addr)+len(raw)), raw, addr)
}

// appendForwarded is wrapForwarded onto dst (no allocation given capacity).
func appendForwarded(dst, raw []byte, addr string) []byte {
	dst = append(dst, byte(pktForwarded))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(addr)))
	dst = append(dst, addr...)
	return append(dst, raw...)
}

// unwrapForwarded reverses wrapForwarded.
func unwrapForwarded(b []byte) (raw []byte, from *net.UDPAddr, err error) {
	if len(b) < 3 || PacketType(b[0]) != pktForwarded {
		return nil, nil, errors.New("quicx: not a forwarded packet")
	}
	n := int(binary.BigEndian.Uint16(b[1:3]))
	if len(b) < 3+n {
		return nil, nil, errors.New("quicx: truncated forwarded packet")
	}
	addr, err := net.ResolveUDPAddr("udp", string(b[3:3+n]))
	if err != nil {
		return nil, nil, err
	}
	return b[3+n:], addr, nil
}

// Handler processes a flow packet and returns an optional reply payload.
// The payload slice aliases the server's receive buffer and is valid only
// for the duration of the call: a handler that retains bytes past its
// return must copy them. (Returning payload, or a slice of it, as the
// reply is fine — the reply is marshalled before the buffer is reused.)
type Handler func(conn ConnID, payload []byte) (reply []byte)

// Server is a connection-ID-routed UDP server. One Server represents one
// proxy instance's UDP stack; during a restart two Servers (old draining,
// new active) cooperate via forwarding.
type Server struct {
	name string
	reg  *metrics.Registry

	handler Handler

	mu    sync.Mutex
	flows map[ConnID]net.Addr // flow state: conn -> last client addr
	// forwardTo, when set, is where packets for unknown flows are
	// tunneled (the draining instance's local address). Nil means no
	// forwarding: unknown-flow data packets count as misrouted.
	forwardTo *net.UDPAddr
	// acceptNew is false while draining: PktInitial is NOT handled
	// (the new instance owns new flows).
	acceptNew bool
	// drainMain tells the VIP read loop to exit: after takeover the new
	// instance reads the shared socket; this instance only writes replies
	// through its still-open handle.
	drainMain bool
	closed    bool
	// mainLoops counts live VIP read loops (0 or 1). UndoDrain and the
	// loop's own exit decision share the mutex, so an undo never leaves
	// the socket with zero readers or spawns a second one.
	mainLoops int
	// fwdLoop records that the forward read loop has been spawned; it
	// runs until Close, so a drain → undo → drain cycle must not spawn
	// another.
	fwdLoop bool

	// sockets
	main net.PacketConn // the VIP socket (shared across takeover)
	fwd  *net.UDPConn   // host-local forward receive socket (drain side)

	// out is the batched sender over the shared VIP socket: replies and
	// forwards from both read loops coalesce through it, one sendmmsg
	// per drained burst instead of one WriteTo per packet. Created
	// lazily so DisableBatch can run between NewServer and Start.
	out *netx.BatchPacketConn
	// noBatch forces one-syscall-per-packet I/O in both directions —
	// the before/after lever for throughput benchmarks.
	noBatch bool

	wg sync.WaitGroup
}

// NewServer creates a server for the given VIP socket. Accepting the
// net.PacketConn interface (rather than *net.UDPConn) lets callers
// interpose fault-injection or instrumentation wrappers on the server-
// side UDP path; the shared VIP *net.UDPConn handle used for the FD
// hand-off stays with the caller. reg may be nil.
func NewServer(name string, vip net.PacketConn, handler Handler, reg *metrics.Registry) *Server {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Server{
		name:      name,
		reg:       reg,
		handler:   handler,
		flows:     make(map[ConnID]net.Addr),
		acceptNew: true,
		main:      vip,
	}
}

// Metrics returns the server's registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// DisableBatch forces one-syscall-per-packet socket I/O (the pre-batching
// data plane) so benchmarks can measure the recvmmsg/sendmmsg win. Must
// be called before Start.
func (s *Server) DisableBatch() {
	s.mu.Lock()
	s.noBatch = true
	s.mu.Unlock()
}

// sender returns the batched VIP writer, creating it on first use. Both
// read loops share it: the VIP socket outlives any one loop generation,
// so the send rings follow the socket, not the loop.
func (s *Server) sender() *netx.BatchPacketConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.out == nil {
		s.out = netx.NewBatchPacketConn(s.main, netx.BatchConfig{
			Registry:           s.reg,
			Prefix:             "quicx.batch",
			DisableKernelBatch: s.noBatch,
		})
	}
	return s.out
}

// Start begins reading the VIP socket.
func (s *Server) Start() {
	s.mu.Lock()
	s.mainLoops++
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.readLoop(s.main, false)
	}()
}

// FlowCount returns the number of live flows.
func (s *Server) FlowCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.flows)
}

// SetForward directs unknown-flow packets to addr (the draining
// instance's forward socket). Passing nil disables forwarding.
func (s *Server) SetForward(addr *net.UDPAddr) {
	s.mu.Lock()
	s.forwardTo = addr
	s.mu.Unlock()
}

// PrepareDrain binds the host-local forward socket ahead of time and
// returns its address — the paper's "pre-configured host local address"
// that the new instance is told about during the hand-off (it rides in
// the takeover manifest metadata). Idempotent.
func (s *Server) PrepareDrain() (*net.UDPAddr, error) {
	s.mu.Lock()
	if s.fwd != nil {
		addr := s.fwd.LocalAddr().(*net.UDPAddr)
		s.mu.Unlock()
		return addr, nil
	}
	s.mu.Unlock()
	fwd, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("quicx: bind forward socket: %w", err)
	}
	s.mu.Lock()
	if s.fwd != nil { // raced; keep the first
		addr := s.fwd.LocalAddr().(*net.UDPAddr)
		s.mu.Unlock()
		fwd.Close()
		return addr, nil
	}
	s.fwd = fwd
	s.mu.Unlock()
	return fwd.LocalAddr().(*net.UDPAddr), nil
}

// StartDraining puts the server in drain mode: it stops reading the VIP
// socket conceptually (the caller hands the socket to the new instance;
// this server keeps serving existing flows via its forward socket and
// writes replies through its still-shared copy of the VIP socket). It
// returns the local forward address the new instance should tunnel to.
func (s *Server) StartDraining() (*net.UDPAddr, error) {
	fwdAddr, err := s.PrepareDrain()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	fwd := s.fwd
	alreadyDraining := s.drainMain
	s.mu.Unlock()
	if alreadyDraining {
		return fwdAddr, nil
	}
	s.mu.Lock()
	s.acceptNew = false
	s.drainMain = true
	startFwd := !s.fwdLoop
	s.fwdLoop = true
	s.mu.Unlock()
	// Kick the blocked VIP read so the loop observes drainMain. Reads stop;
	// writes through the shared socket are unaffected.
	s.main.SetReadDeadline(time.Now())
	if startFwd {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.readLoop(fwd, true)
		}()
	}
	return fwdAddr, nil
}

// UndoDrain reverses StartDraining (the takeover's drain-undo path): the
// server resumes reading the VIP socket and accepting new flows. The
// forward socket and its read loop are left running — re-arming them is
// idempotent via StartDraining's fwdLoop guard, and a subsequent retried
// hand-off reuses them. The main-loop handover is race-free: the old read
// loop's exit decision and this spawn share the mutex, so the socket ends
// up with exactly one reader whether or not the old loop had already
// observed the drain flag.
func (s *Server) UndoDrain() {
	s.mu.Lock()
	if s.closed || !s.drainMain {
		s.mu.Unlock()
		return
	}
	s.drainMain = false
	s.acceptNew = true
	spawn := s.mainLoops == 0
	if spawn {
		s.mainLoops++
	}
	s.mu.Unlock()
	// Clear the poison deadline StartDraining used to kick the loop.
	s.main.SetReadDeadline(time.Time{})
	if spawn {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.readLoop(s.main, false)
		}()
	}
}

// Close stops the server. The VIP socket is closed too (harmless post-
// takeover: the FD is shared, and net.UDPConn.Close only drops this
// handle's reference).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	fwd := s.fwd
	s.mu.Unlock()
	s.main.Close()
	if fwd != nil {
		fwd.Close()
	}
	s.wg.Wait()
	// Loops are gone; release the shared sender's rings (a late sender()
	// call from a loop could have created it after the flag flipped, so
	// re-read under the lock).
	s.mu.Lock()
	out := s.out
	s.out = nil
	s.mu.Unlock()
	if out != nil {
		out.Release()
	}
}

func (s *Server) readLoop(conn net.PacketConn, forwarded bool) {
	s.mu.Lock()
	noBatch := s.noBatch
	s.mu.Unlock()
	// The receive ring belongs to this loop and is released when it
	// exits — the loop-per-generation ownership rule: after a drain →
	// undo cycle the replacement reader builds its own ring, just as a
	// succeeding process builds its own. On a fault-wrapped conn the
	// ring degrades to one ReadFrom per packet, keeping every datagram
	// visible to the wrapper.
	bc := netx.NewBatchPacketConn(conn, netx.BatchConfig{
		Registry:           s.reg,
		Prefix:             "quicx.batch",
		DisableKernelBatch: noBatch,
	})
	defer bc.Release()
	out := s.sender()
	for {
		msgs, err := bc.ReadBatch()
		if err != nil {
			if !forwarded {
				// The exit decision and the mainLoops decrement are one
				// critical section: UndoDrain's decision to spawn a
				// replacement reader keys off mainLoops under the same
				// lock, so the two can never double-spawn or strand the
				// socket readerless.
				s.mu.Lock()
				if s.drainMain || s.closed {
					s.mainLoops--
					s.mu.Unlock()
					return // hand the VIP socket's read side to the new instance
				}
				s.mu.Unlock()
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					continue // spurious deadline; keep serving
				}
				s.mu.Lock()
				s.mainLoops--
				s.mu.Unlock()
			}
			return
		}
		// handlePacket is synchronous and everything downstream (handler,
		// reply marshal, forward encapsulation) finishes with the bytes
		// before it returns, so each datagram is processed in place — no
		// per-packet copy; Messages alias the ring until the next
		// ReadBatch. Replies and forwards queue on the batched sender
		// and go out as one sendmmsg when the burst is drained.
		for _, m := range msgs {
			if m.Addr == nil {
				s.reg.Counter("quicx.malformed").Inc()
				continue
			}
			if forwarded {
				inner, origFrom, err := unwrapForwarded(m.Buf)
				if err != nil {
					s.reg.Counter("quicx.forward.bad").Inc()
					continue
				}
				s.handlePacket(inner, origFrom)
				continue
			}
			s.handlePacket(m.Buf, m.Addr)
		}
		out.Flush()
	}
}

func (s *Server) handlePacket(raw []byte, from net.Addr) {
	p, err := Unmarshal(raw)
	if err != nil {
		s.reg.Counter("quicx.malformed").Inc()
		return
	}
	s.reg.Counter("quicx.rx").Inc()
	switch p.Type {
	case PktInitial:
		s.mu.Lock()
		accept := s.acceptNew
		if accept {
			s.flows[p.Conn] = from
		}
		fwdTo := s.forwardTo
		s.mu.Unlock()
		if !accept {
			// Draining instance: new flows belong to the new instance.
			// With user-space routing this shouldn't happen (the new
			// instance reads the VIP), but a forwarding loop guard
			// matters: count and drop.
			s.reg.Counter("quicx.initial.while.draining").Inc()
			_ = fwdTo
			return
		}
		s.reg.Counter("quicx.flows.opened").Inc()
		s.reply(p.Conn, from, s.handler(p.Conn, p.Payload))
	case PktData:
		s.mu.Lock()
		addr, known := s.flows[p.Conn]
		fwdTo := s.forwardTo
		s.mu.Unlock()
		if !known {
			if fwdTo != nil {
				// User-space routing (§4.1): tunnel to the draining
				// instance, preserving the client address.
				addr := from.String()
				bp := bufpool.Get(3 + len(addr) + len(raw))
				fw := appendForwarded((*bp)[:0], raw, addr)
				err := s.sender().QueueTo(fw, fwdTo)
				bufpool.Put(bp)
				if err == nil {
					s.reg.Counter("quicx.forwarded").Inc()
					return
				}
			}
			// No state and nowhere to forward: this is a mis-routed
			// packet — the client's flow state is gone.
			s.reg.Counter("quicx.misrouted").Inc()
			return
		}
		if addr.String() != from.String() {
			// Client migrated (NAT rebind); update like QUIC does.
			s.mu.Lock()
			s.flows[p.Conn] = from
			s.mu.Unlock()
		}
		s.reply(p.Conn, from, s.handler(p.Conn, p.Payload))
	case PktClose:
		s.mu.Lock()
		_, known := s.flows[p.Conn]
		delete(s.flows, p.Conn)
		s.mu.Unlock()
		if known {
			s.reg.Counter("quicx.flows.closed").Inc()
		}
	default:
		s.reg.Counter("quicx.malformed").Inc()
	}
}

func (s *Server) reply(conn ConnID, to net.Addr, payload []byte) {
	if payload == nil {
		return
	}
	bp := bufpool.Get(headerLen + len(payload))
	pkt := AppendPacket((*bp)[:0], Packet{Type: PktData, Conn: conn, Payload: payload})
	// QueueTo copies pkt into its send ring (or writes through
	// immediately on the fallback path), so the scratch can be returned
	// right away; the read loop flushes the ring after each burst.
	err := s.sender().QueueTo(pkt, to)
	bufpool.Put(bp)
	if err == nil {
		s.reg.Counter("quicx.tx").Inc()
	}
}

// Client is a minimal flow client for tests and experiments.
type Client struct {
	conn net.Conn
	id   ConnID
}

// Dial opens a UDP "connection" to addr with the given conn ID.
func Dial(addr string, id ConnID) (*Client, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, id: id}, nil
}

// ID returns the client's connection ID.
func (c *Client) ID() ConnID { return c.id }

// Open sends PktInitial and waits for the handshake reply.
func (c *Client) Open(payload []byte, timeout time.Duration) ([]byte, error) {
	return c.roundTrip(PktInitial, payload, timeout)
}

// Send sends PktData and waits for the reply.
func (c *Client) Send(payload []byte, timeout time.Duration) ([]byte, error) {
	return c.roundTrip(PktData, payload, timeout)
}

// SendNoReply fires a data packet without waiting.
func (c *Client) SendNoReply(payload []byte) error {
	_, err := c.conn.Write(Marshal(Packet{Type: PktData, Conn: c.id, Payload: payload}))
	return err
}

// Close sends PktClose and releases the socket.
func (c *Client) Close() error {
	c.conn.Write(Marshal(Packet{Type: PktClose, Conn: c.id}))
	return c.conn.Close()
}

func (c *Client) roundTrip(t PacketType, payload []byte, timeout time.Duration) ([]byte, error) {
	if _, err := c.conn.Write(Marshal(Packet{Type: t, Conn: c.id, Payload: payload})); err != nil {
		return nil, err
	}
	c.conn.SetReadDeadline(time.Now().Add(timeout))
	bp := bufpool.Get(maxDatagram)
	defer bufpool.Put(bp)
	n, err := c.conn.Read(*bp)
	if err != nil {
		return nil, err
	}
	p, err := Unmarshal((*bp)[:n])
	if err != nil {
		return nil, err
	}
	if p.Conn != c.id {
		return nil, fmt.Errorf("quicx: reply for conn %d, want %d", p.Conn, c.id)
	}
	// The payload aliases the pooled buffer: copy before returning it.
	out := make([]byte, len(p.Payload))
	copy(out, p.Payload)
	return out, nil
}
