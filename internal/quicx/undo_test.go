package quicx

// UndoDrain coverage: the UDP half of the takeover drain-undo path. A
// drained server must be able to resume reading the VIP socket with
// exactly one reader — whether or not the old read loop had already
// observed the drain flag when the undo raced in — and a subsequent
// re-drain must not spawn a second forward loop.

import (
	"net"
	"testing"
	"time"
)

func (s *Server) readLoops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mainLoops
}

func openFlow(t *testing.T, vip *net.UDPConn, conn ConnID) {
	t.Helper()
	c, err := Dial(vip.LocalAddr().String(), conn)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Open([]byte("hi"), 2*time.Second)
	if err != nil {
		t.Fatalf("flow %d: %v", conn, err)
	}
	if string(reply) != "echo:hi" {
		t.Fatalf("flow %d reply = %q", conn, reply)
	}
}

// TestUndoDrainResumesVIPReads cycles drain → undo → drain → undo and
// proves the VIP keeps serving new flows after every undo with exactly
// one live read loop.
func TestUndoDrainResumesVIPReads(t *testing.T) {
	vip := newVIP(t)
	srv := NewServer("s1", vip, echoHandler, nil)
	srv.Start()
	defer srv.Close()
	openFlow(t, vip, 1)

	for cycle := 0; cycle < 2; cycle++ {
		if _, err := srv.StartDraining(); err != nil {
			t.Fatal(err)
		}
		// Undo races the old loop's deadline-kicked exit on purpose: the
		// mutex-shared handover must land on exactly one reader either way.
		srv.UndoDrain()
		openFlow(t, vip, ConnID(10+cycle))

		deadline := time.Now().Add(2 * time.Second)
		for srv.readLoops() != 1 {
			if time.Now().After(deadline) {
				t.Fatalf("cycle %d: read loops = %d, want 1", cycle, srv.readLoops())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestUndoDrainNoops pins the guard edges: undoing a server that is not
// draining, and undoing after Close, must both be no-ops.
func TestUndoDrainNoops(t *testing.T) {
	vip := newVIP(t)
	srv := NewServer("s1", vip, echoHandler, nil)
	srv.Start()
	srv.UndoDrain() // not draining: nothing to undo
	openFlow(t, vip, 3)
	if n := srv.readLoops(); n != 1 {
		t.Fatalf("read loops after spurious undo = %d, want 1", n)
	}
	if _, err := srv.StartDraining(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.UndoDrain() // closed: must not resurrect a reader
	if n := srv.readLoops(); n != 0 {
		t.Fatalf("read loops after undo-on-closed = %d, want 0", n)
	}
}
