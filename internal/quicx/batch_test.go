package quicx

import (
	"fmt"
	"net"
	"testing"
	"time"

	"zdr/internal/metrics"
)

// TestBurstPacketsPerSyscall pins the batching win: a 64-packet burst
// already queued in the socket buffer must be drained and answered with
// at least a 4x reduction in syscalls per packet in each direction —
// recvmmsg on the way in, one coalesced sendmmsg flush per drained burst
// on the way out.
func TestBurstPacketsPerSyscall(t *testing.T) {
	vip, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	srv := NewServer("burst", vip, func(conn ConnID, payload []byte) []byte {
		return payload
	}, reg)
	defer srv.Close()

	// Land the whole burst before the server reads a single packet, so
	// the ratio is deterministic rather than racing the sender.
	client, err := net.Dial("udp", vip.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	const burst = 64
	if _, err := client.Write(Marshal(Packet{Type: PktInitial, Conn: 7, Payload: []byte("open")})); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < burst; i++ {
		if _, err := client.Write(Marshal(Packet{Type: PktData, Conn: 7, Payload: []byte(fmt.Sprintf("d%02d", i))})); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // let the kernel queue the burst

	srv.Start()
	deadline := time.Now().Add(3 * time.Second)
	for reg.CounterValue("quicx.rx") < burst {
		if time.Now().After(deadline) {
			t.Fatalf("server saw %d/%d packets", reg.CounterValue("quicx.rx"), burst)
		}
		time.Sleep(5 * time.Millisecond)
	}

	recvCalls := reg.CounterValue("quicx.batch.recvmmsg_calls")
	if recvCalls == 0 || recvCalls > burst/4 {
		t.Errorf("recvmmsg_calls = %d for a %d-packet burst, want 1..%d (>=4x fewer syscalls)", recvCalls, burst, burst/4)
	}
	if tx := reg.CounterValue("quicx.tx"); tx != burst {
		t.Fatalf("tx = %d, want %d replies", tx, burst)
	}
	flushes := reg.CounterValue("quicx.batch.sendmmsg_flushes")
	if flushes == 0 || flushes > burst/4 {
		t.Errorf("sendmmsg_flushes = %d for %d replies, want 1..%d (coalesced bursts)", flushes, burst, burst/4)
	}
	if ratio := reg.GaugeValue("quicx.batch.pkts_per_recvmmsg"); ratio < 4000 {
		t.Errorf("pkts_per_recvmmsg = %d milli-pkts/call, want >= 4000", ratio)
	}
}

// TestDisableBatchOneSyscallPerPacket locks the before/after lever the
// throughput benchmark depends on: with batching disabled the server
// falls back to exactly one read syscall and one write syscall per
// packet.
func TestDisableBatchOneSyscallPerPacket(t *testing.T) {
	vip, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	srv := NewServer("unbatched", vip, func(conn ConnID, payload []byte) []byte {
		return payload
	}, reg)
	srv.DisableBatch()
	defer srv.Close()
	srv.Start()

	client, err := Dial(vip.LocalAddr().String(), 9)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open([]byte("hi"), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	const pkts = 16
	for i := 0; i < pkts; i++ {
		if _, err := client.Send([]byte("ping"), 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	rx := reg.CounterValue("quicx.rx")
	if calls := reg.CounterValue("quicx.batch.recvmmsg_calls"); calls != rx {
		t.Errorf("unbatched recv calls = %d for %d packets, want equal", calls, rx)
	}
	tx := reg.CounterValue("quicx.tx")
	if flushes := reg.CounterValue("quicx.batch.sendmmsg_flushes"); flushes != tx {
		t.Errorf("unbatched send flushes = %d for %d replies, want equal", flushes, tx)
	}
}
