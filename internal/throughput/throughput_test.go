package throughput

import "testing"

// The relay measurement is the acceptance evidence for the splice path:
// same topology, same byte count, syscall counts from the relay pump
// only. Splice must move the bytes in far fewer kernel crossings than
// the pooled copy (copy pays a read+write per 256K tier buffer; splice
// moves up to 1M per call pair and never crosses into userspace).
func TestRelaySpliceBeatsCopyOnSyscalls(t *testing.T) {
	const total = 32 << 20
	spliced, err := RunTCPRelay(total, true)
	if err != nil {
		t.Fatalf("splice run: %v", err)
	}
	copied, err := RunTCPRelay(total, false)
	if err != nil {
		t.Fatalf("copy run: %v", err)
	}
	if spliced.Bytes != total || copied.Bytes != total {
		t.Fatalf("byte counts: splice=%d copy=%d want %d", spliced.Bytes, copied.Bytes, total)
	}
	if spliced.Syscalls == 0 || copied.Syscalls == 0 {
		t.Fatalf("missing syscall accounting: splice=%d copy=%d", spliced.Syscalls, copied.Syscalls)
	}
	// Loopback Gbps is too noisy for CI, but the syscall ratio is
	// structural: require splice to halve the copy path's crossings.
	if spliced.SyscallsPerMB*2 > copied.SyscallsPerMB {
		t.Fatalf("splice %.2f syscalls/MB not < half of copy %.2f", spliced.SyscallsPerMB, copied.SyscallsPerMB)
	}
}

func TestQuicBurstBatchedReducesSyscalls(t *testing.T) {
	const bursts, burstSize = 8, 64
	batched, err := RunQuicBurst(bursts, burstSize, true)
	if err != nil {
		t.Fatalf("batched run: %v", err)
	}
	unbatched, err := RunQuicBurst(bursts, burstSize, false)
	if err != nil {
		t.Fatalf("unbatched run: %v", err)
	}
	// Unbatched is exactly one recv and one send flush per packet.
	if got := unbatched.SyscallsPerPkt; got < 1.9 {
		t.Fatalf("unbatched syscalls/pkt = %.2f, want ~2", got)
	}
	// The acceptance bar: ≥4× fewer syscalls per packet on 64-packet
	// bursts. In practice batching lands near 2/64 per direction.
	if batched.SyscallsPerPkt*4 > unbatched.SyscallsPerPkt {
		t.Fatalf("batched %.3f syscalls/pkt not ≤ ¼ of unbatched %.3f", batched.SyscallsPerPkt, unbatched.SyscallsPerPkt)
	}
}

func TestSuiteShape(t *testing.T) {
	ms, err := Suite(4<<20, 2, 32)
	if err != nil {
		t.Fatalf("suite: %v", err)
	}
	want := []string{"tcp_relay_splice", "tcp_relay_copy", "quic_burst_batched", "quic_burst_unbatched"}
	if len(ms) != len(want) {
		t.Fatalf("got %d measurements, want %d", len(ms), len(want))
	}
	for i, name := range want {
		if ms[i].Name != name {
			t.Fatalf("measurement %d = %q, want %q", i, ms[i].Name, name)
		}
		if ms[i].Seconds <= 0 {
			t.Fatalf("%s: no duration recorded", name)
		}
	}
}
