// Package throughput measures the data plane's bulk-transfer rate and
// syscall economy — the before/after evidence for the kernel-assisted
// paths: splice(2) relaying versus the pooled userspace copy on TCP
// pumps, and recvmmsg/sendmmsg batching versus packet-at-a-time I/O on
// the quicx router. zdr-bench -throughput runs the suite and records it
// in BENCH_baseline.json; the -compare gate holds the splice speedup and
// the syscalls-per-unit costs to their baseline.
package throughput

import (
	"fmt"
	"io"
	"net"
	"sort"
	"time"

	"zdr/internal/metrics"
	"zdr/internal/netx"
	"zdr/internal/quicx"
)

// Measurement is one suite entry, JSON-shaped for BENCH_baseline.json.
type Measurement struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	// TCP relay entries.
	Bytes         int64   `json:"bytes,omitempty"`
	Gbps          float64 `json:"gbps,omitempty"`
	Syscalls      int64   `json:"syscalls,omitempty"`
	SyscallsPerMB float64 `json:"syscalls_per_mb,omitempty"`
	// UDP burst entries.
	Packets        int64   `json:"packets,omitempty"`
	RecvCalls      int64   `json:"recvmmsg_calls,omitempty"`
	SendFlushes    int64   `json:"sendmmsg_flushes,omitempty"`
	SyscallsPerPkt float64 `json:"syscalls_per_pkt,omitempty"`
}

// Suite runs the four standard measurements: TCP relay with splice and
// with the pooled copy, then a quicx burst workload batched and
// unbatched. Each relay runs three trials and reports the Gbps median —
// single loopback runs are scheduler-noisy in a way the packet bursts
// are not.
func Suite(relayBytes int64, bursts, burstSize int) ([]Measurement, error) {
	var out []Measurement
	for _, m := range []struct {
		name   string
		splice bool
	}{{"tcp_relay_splice", true}, {"tcp_relay_copy", false}} {
		var trials []Measurement
		for i := 0; i < 3; i++ {
			r, err := RunTCPRelay(relayBytes, m.splice)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", m.name, err)
			}
			trials = append(trials, r)
		}
		sort.Slice(trials, func(i, j int) bool { return trials[i].Gbps < trials[j].Gbps })
		r := trials[1]
		r.Name = m.name
		out = append(out, r)
	}
	for _, m := range []struct {
		name    string
		batched bool
	}{{"quic_burst_batched", true}, {"quic_burst_unbatched", false}} {
		r, err := RunQuicBurst(bursts, burstSize, m.batched)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.name, err)
		}
		r.Name = m.name
		out = append(out, r)
	}
	return out, nil
}

// chunked writes total bytes into w in fixed chunks, then half-closes.
func pump(w *net.TCPConn, total int64) {
	chunk := make([]byte, 1<<20)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	for left := total; left > 0; {
		n := int64(len(chunk))
		if n > left {
			n = left
		}
		if _, err := w.Write(chunk[:n]); err != nil {
			return
		}
		left -= n
	}
	w.CloseWrite()
}

// RunTCPRelay stands up client → relay → sink on loopback, pushes
// totalBytes through the relay pump, and reports Gbps plus relay-side
// syscalls. useSplice selects the kernel path (bare TCP conns through
// netx.Relay); otherwise the conns are wrapped so the selector takes the
// pooled copy, with the wrappers counting one syscall per Read/Write —
// the same accounting basis as the splice path's splice-call counter.
func RunTCPRelay(totalBytes int64, useSplice bool) (Measurement, error) {
	in, src, err := tcpPair()
	if err != nil {
		return Measurement{}, err
	}
	defer in.Close()
	defer src.Close()
	dst, out, err := tcpPair()
	if err != nil {
		return Measurement{}, err
	}
	defer dst.Close()
	defer out.Close()

	go pump(in, totalBytes)
	// Source and sink use 1 MiB buffers so the harness's own copies stay
	// off the critical path and the relay pump dominates the measurement.
	sunk := make(chan int64, 1)
	go func() {
		n, _ := io.CopyBuffer(io.Discard, struct{ io.Reader }{out}, make([]byte, 1<<20))
		sunk <- n
	}()

	var syscalls int64
	start := time.Now()
	var n int64
	if useSplice {
		before := netx.ReadRelayStats()
		n, err = netx.Relay(dst, src)
		after := netx.ReadRelayStats()
		syscalls = after.SpliceCalls - before.SpliceCalls
		if after.SpliceBytes-before.SpliceBytes < n {
			return Measurement{}, fmt.Errorf("splice path not taken (%d of %d bytes)", after.SpliceBytes-before.SpliceBytes, n)
		}
	} else {
		cr := &countingReader{r: src}
		cw := &countingWriter{w: dst}
		n, err = netx.Relay(cw, cr)
		syscalls = cr.calls + cw.calls
	}
	sec := time.Since(start).Seconds()
	dst.CloseWrite()
	if err != nil {
		return Measurement{}, err
	}
	if got := <-sunk; got != totalBytes || n != totalBytes {
		return Measurement{}, fmt.Errorf("moved %d bytes, sink saw %d, want %d", n, got, totalBytes)
	}
	return Measurement{
		Seconds:       sec,
		Bytes:         n,
		Gbps:          float64(n) * 8 / sec / 1e9,
		Syscalls:      syscalls,
		SyscallsPerMB: float64(syscalls) / (float64(n) / (1 << 20)),
	}, nil
}

// RunQuicBurst drives a quicx echo server with back-to-back bursts of
// burstSize data packets and reports the router's syscalls per packet,
// summing receive calls and send flushes server-side.
func RunQuicBurst(bursts, burstSize int, batched bool) (Measurement, error) {
	vip, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return Measurement{}, err
	}
	reg := metrics.NewRegistry()
	srv := quicx.NewServer("throughput", vip, func(conn quicx.ConnID, payload []byte) []byte {
		return payload
	}, reg)
	if !batched {
		srv.DisableBatch()
	}
	defer srv.Close()
	srv.Start()

	conn, err := net.Dial("udp", vip.LocalAddr().String())
	if err != nil {
		return Measurement{}, err
	}
	defer conn.Close()

	const connID = quicx.ConnID(1)
	payload := []byte("burst-payload-0123456789")
	open := quicx.Marshal(quicx.Packet{Type: quicx.PktInitial, Conn: connID, Payload: payload})
	data := quicx.Marshal(quicx.Packet{Type: quicx.PktData, Conn: connID, Payload: payload})
	rbuf := make([]byte, 2048)

	start := time.Now()
	for b := 0; b < bursts; b++ {
		for i := 0; i < burstSize; i++ {
			pkt := data
			if b == 0 && i == 0 {
				pkt = open
			}
			if _, err := conn.Write(pkt); err != nil {
				return Measurement{}, err
			}
		}
		// Drain the echoes before the next burst so neither socket
		// buffer overflows; tolerate stragglers via the deadline.
		conn.SetReadDeadline(time.Now().Add(time.Second))
		for i := 0; i < burstSize; i++ {
			if _, err := conn.Read(rbuf); err != nil {
				break
			}
		}
	}
	sec := time.Since(start).Seconds()

	rx := reg.CounterValue("quicx.rx")
	want := int64(bursts * burstSize)
	if rx < want*9/10 {
		return Measurement{}, fmt.Errorf("server saw %d of %d packets", rx, want)
	}
	recvCalls := reg.CounterValue("quicx.batch.recvmmsg_calls")
	flushes := reg.CounterValue("quicx.batch.sendmmsg_flushes")
	return Measurement{
		Seconds:        sec,
		Packets:        rx,
		RecvCalls:      recvCalls,
		SendFlushes:    flushes,
		SyscallsPerPkt: float64(recvCalls+flushes) / float64(rx),
	}, nil
}

func tcpPair() (*net.TCPConn, *net.TCPConn, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	r := <-ch
	if r.err != nil {
		client.Close()
		return nil, nil, r.err
	}
	return client.(*net.TCPConn), r.c.(*net.TCPConn), nil
}

// countingReader / countingWriter hide the underlying *net.TCPConn from
// the relay selector (forcing the copy path) and tally one syscall per
// Read/Write — the copy path's kernel crossings.
type countingReader struct {
	r     io.Reader
	calls int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	c.calls++
	return c.r.Read(p)
}

type countingWriter struct {
	w     io.Writer
	calls int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.calls++
	return c.w.Write(p)
}