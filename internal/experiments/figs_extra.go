package experiments

import (
	"fmt"
	"math"
	"time"

	"zdr/internal/cluster"
	"zdr/internal/workload"
)

// TblHeadlineBenefits regenerates the §1 summary of deployed benefits:
// "(i) we reduced the release times to 25 and 90 minutes, for the App.
// Server tier and the L7LB tiers respectively, (ii) we were able to
// increase the effective L7LB CPU capacity by 15-20%, and (iii) prevent
// millions of error codes from being propagated to the end-user."
func TblHeadlineBenefits() (Table, error) {
	// (i) release completion times per tier.
	l7 := cluster.CompletionTimes(cluster.CompletionTimeConfig{Tier: workload.TierL7LB, Samples: 30, Seed: 0x7B1})
	app := cluster.CompletionTimes(cluster.CompletionTimeConfig{Tier: workload.TierAppServer, Samples: 30, Seed: 0x7B1})
	med := func(ds []time.Duration) float64 {
		vals := make([]float64, len(ds))
		for i, d := range ds {
			vals[i] = d.Minutes()
		}
		return workload.Percentile(vals, 0.5)
	}

	// (ii) effective L7LB CPU capacity: the idle-CPU headroom ZDR keeps
	// serving with, vs what HardRestart burns during the release window.
	hard := cluster.RunRelease(cluster.Config{
		Machines: 100, BatchFraction: 0.20, DrainPeriod: 20 * time.Minute,
		Strategy: cluster.HardRestart, Tick: time.Minute, Seed: 0x7B2,
	})
	zdr := cluster.RunRelease(cluster.Config{
		Machines: 100, BatchFraction: 0.20, DrainPeriod: 20 * time.Minute,
		Strategy: cluster.ZeroDowntime, Tick: time.Minute, Seed: 0x7B2,
	})
	capacityGain := (zdr.MinCapacityFraction - hard.MinCapacityFraction) * 100

	// (iii) error codes prevented: persistent connections that a
	// traditional release would have terminated (each a client-visible
	// error + reconnect), scaled at the paper's per-machine counts.
	prevented := hard.DisruptedConns - zdr.DisruptedConns

	return Table{
		ID:      "T-B",
		Title:   "Headline deployed benefits (§1)",
		Columns: []string{"benefit", "paper", "measured"},
		Rows: [][]string{
			{"App Server release time (median)", "25 min", fmt.Sprintf("%.0f min", med(app))},
			{"L7LB release time (median)", "~90 min", fmt.Sprintf("%.0f min", med(l7))},
			{"effective L7LB capacity kept", "+15-20%", fmt.Sprintf("+%.0f%%", capacityGain)},
			{"user-facing disruptions prevented / release", "millions", fmt.Sprintf("%d (100 machines x 10k conns)", prevented)},
		},
		Notes: "capacity row compares the serving pool at the worst point of a 20%-batch release",
	}, nil
}

// TblPeakHourRelease regenerates the §6.2.2 operational argument: ZDR can
// release at peak hours; a traditional release at peak saturates the
// surviving machines.
func TblPeakHourRelease() (Table, error) {
	t := Table{
		ID:      "T-C",
		Title:   "Releasing at peak vs off-peak (20% batches)",
		Columns: []string{"strategy", "load", "survivor util", "saturated", "dropped load", "p99 latency x"},
		Notes:   "paper §6.2.2: Proxygen updates are mostly released during peak hours (12pm-5pm) — only possible because ZDR keeps the pool whole",
	}
	for _, c := range []struct {
		s    cluster.Strategy
		load float64
	}{
		{cluster.HardRestart, 0.45},
		{cluster.HardRestart, 0.85},
		{cluster.ZeroDowntime, 0.45},
		{cluster.ZeroDowntime, 0.85},
	} {
		o := cluster.ReleaseAtLoad(c.s, c.load)
		lat := fmt.Sprintf("%.2f", o.TailLatencyX)
		if math.IsInf(o.TailLatencyX, 1) {
			lat = "unbounded"
		}
		t.Rows = append(t.Rows, []string{
			o.Strategy.String(),
			pct(o.Load),
			pct(o.SurvivorUtilisation),
			fmt.Sprintf("%v", o.Saturated),
			pct(o.DroppedLoadFraction),
			lat,
		})
	}
	return t, nil
}
