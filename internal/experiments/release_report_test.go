package experiments

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"zdr/internal/core"
	"zdr/internal/netx"
	"zdr/internal/obs"
)

// TestReleaseReport is the CI artifact producer: it runs the traced
// two-tier release with a deterministic stall injected into takeover
// step E, asserts the ReleaseReport's phase accounting separates the
// stalled protocol step from the (short) drain phase, and proves the
// report survives its JSON round-trip bit-for-bit. The report is written
// to $ZDR_RELEASE_REPORT_DIR (CI uploads it) or a test temp dir.
func TestReleaseReport(t *testing.T) {
	const stall = 150 * time.Millisecond

	dir := os.Getenv("ZDR_RELEASE_REPORT_DIR")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "release-report.json")

	tab, rr, err := releasePhases(path, func(sp *obs.Span) {
		if sp.Name() == "takeover.step.E" {
			time.Sleep(stall)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Restarts != 2 || rr.Failed != 0 {
		t.Fatalf("restarts/failed = %d/%d, want 2/0", rr.Restarts, rr.Failed)
	}

	// Every takeover phase ran once per hand-off (2 hand-offs); the
	// two-phase confirmation spans are recorded on both sides of the
	// socket, so they count twice per hand-off. The one-shot step D never
	// occurs between two v2 generations.
	for _, step := range []string{
		"takeover.step.A", "takeover.step.B", "takeover.step.C",
		"takeover.step.E", "takeover.step.F",
	} {
		if got := rr.PhaseCount[step]; got != 2 {
			t.Errorf("PhaseCount[%s] = %d, want 2", step, got)
		}
	}
	for _, step := range []string{"takeover.prepare", "takeover.commit"} {
		if got := rr.PhaseCount[step]; got != 4 {
			t.Errorf("PhaseCount[%s] = %d, want 4 (receiver + sender views, 2 hand-offs)", step, got)
		}
	}
	if got := rr.PhaseCount["takeover.step.D"]; got != 0 {
		t.Errorf("PhaseCount[takeover.step.D] = %d, want 0 on an all-v2 release", got)
	}

	// Phase accounting localises the stall: step E absorbed it on both
	// hand-offs, while the drain phase (10ms DrainWait per slot) stayed
	// far below the stall.
	if got := rr.Phase("takeover.step.E"); got < 2*stall {
		t.Errorf("Phase(takeover.step.E) = %v, want >= %v", got, 2*stall)
	}
	// Comparative rather than absolute (drain is ~20ms of work but CI
	// scheduling noise can inflate it): the stalled protocol step must
	// dominate the drain phase.
	if drain, stepE := rr.Phase("slot.drain"), rr.Phase("takeover.step.E"); drain >= stepE {
		t.Errorf("Phase(slot.drain) = %v not below Phase(takeover.step.E) = %v — stall misattributed", drain, stepE)
	}
	if rr.Phase("release") < rr.Phase("takeover.step.E") {
		t.Error("release envelope shorter than a phase inside it")
	}

	// The JSON on disk reloads to a deep-equal report.
	back, err := core.ReadReleaseReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rr, back) {
		t.Fatal("ReleaseReport did not survive the JSON round-trip")
	}

	// And the table consumed the same phases.
	var sawStepE bool
	for _, row := range tab.Rows {
		if row[0] == "takeover.step.E" {
			sawStepE = true
			if ms := num(t, row[2]); ms < float64(2*stall/time.Millisecond) {
				t.Errorf("table total for step E = %vms, want >= %v", ms, 2*stall)
			}
		}
	}
	if !sawStepE {
		t.Fatal("phase table has no takeover.step.E row")
	}
}

// TestReleaseReportTwoPhaseAbort is the second CI artifact producer: a
// release in which the first hand-off attempt dies at the PREPARE-ACK
// instant (injected via the netx FD hook), is classified as a pre-commit
// abort, and is absorbed by the slot's default single retry — Failed = 0.
// The written report must carry the abort's evidence: a failed
// takeover.prepare span whose trace has no takeover.commit, alongside
// the successful attempts' commit spans.
func TestReleaseReportTwoPhaseAbort(t *testing.T) {
	dir := os.Getenv("ZDR_RELEASE_REPORT_DIR")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "release-report-two-phase.json")

	// Fail exactly one PREPARE-ACK write (frame kind 5 on the takeover
	// wire): the first hand-off aborts, every later one succeeds.
	var injected atomic.Int64
	netx.SetFDHook(func(op string, data []byte, fds []int) error {
		if op == "write" && len(data) > 0 && data[0] == 5 && injected.Add(1) == 1 {
			return errors.New("injected receiver death at prepare-ack")
		}
		return nil
	})
	defer netx.SetFDHook(nil)

	_, rr, err := releasePhases(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if injected.Load() == 0 {
		t.Fatal("prepare-ack injection never fired")
	}
	if rr.Restarts != 2 || rr.Failed != 0 {
		t.Fatalf("restarts/failed = %d/%d, want 2/0 (abort absorbed by the retry)", rr.Restarts, rr.Failed)
	}

	// Aborted attempt: +1 receiver-side and +1 sender-side failed
	// takeover.prepare on top of the 4 successful views; commits stay 4.
	if got := rr.PhaseCount["takeover.prepare"]; got != 6 {
		t.Errorf("PhaseCount[takeover.prepare] = %d, want 6 (4 committed views + 2 aborted)", got)
	}
	if got := rr.PhaseCount["takeover.commit"]; got != 4 {
		t.Errorf("PhaseCount[takeover.commit] = %d, want 4", got)
	}

	// Per hand-off attempt (the prepare span's parent — takeover.handoff
	// on the receiver, takeover.serve on the sender): an aborted prepare
	// must never sit alongside a commit. The receiver's retry lives in
	// the same release trace, so the scope is the parent span, not the
	// trace.
	abortedAttempts := 0
	obs.Walk(rr.Spans, func(n *obs.SpanNode) {
		var aborted, committed bool
		for _, c := range n.Children {
			if c.Name == "takeover.prepare" && c.Error != "" {
				aborted = true
			}
			if c.Name == "takeover.commit" {
				committed = true
			}
		}
		if aborted {
			abortedAttempts++
			if committed {
				t.Errorf("%s records an aborted takeover.prepare alongside a takeover.commit", n.Name)
			}
		}
	})
	if abortedAttempts != 2 {
		t.Errorf("aborted takeover.prepare found under %d spans, want 2 (receiver + sender views)", abortedAttempts)
	}

	// The artifact on disk reloads intact.
	back, err := core.ReadReleaseReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rr, back) {
		t.Fatal("two-phase abort report did not survive the JSON round-trip")
	}
}

func TestTblReleasePhasesShape(t *testing.T) {
	tab, err := TblReleasePhases()
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "T-D" {
		t.Fatalf("ID = %q", tab.ID)
	}
	want := map[string]bool{"release": false, "takeover.handoff": false, "slot.drain": false}
	for _, row := range tab.Rows {
		if _, ok := want[row[0]]; ok {
			want[row[0]] = true
		}
	}
	for phase, ok := range want {
		if !ok {
			t.Errorf("phase table missing %q row", phase)
		}
	}
}
