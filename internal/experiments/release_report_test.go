package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"zdr/internal/core"
	"zdr/internal/obs"
)

// TestReleaseReport is the CI artifact producer: it runs the traced
// two-tier release with a deterministic stall injected into takeover
// step E, asserts the ReleaseReport's phase accounting separates the
// stalled protocol step from the (short) drain phase, and proves the
// report survives its JSON round-trip bit-for-bit. The report is written
// to $ZDR_RELEASE_REPORT_DIR (CI uploads it) or a test temp dir.
func TestReleaseReport(t *testing.T) {
	const stall = 150 * time.Millisecond

	dir := os.Getenv("ZDR_RELEASE_REPORT_DIR")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "release-report.json")

	tab, rr, err := releasePhases(path, func(sp *obs.Span) {
		if sp.Name() == "takeover.step.E" {
			time.Sleep(stall)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Restarts != 2 || rr.Failed != 0 {
		t.Fatalf("restarts/failed = %d/%d, want 2/0", rr.Restarts, rr.Failed)
	}

	// Every Fig. 5 step ran exactly once per hand-off (2 hand-offs).
	for _, step := range []string{
		"takeover.step.A", "takeover.step.B", "takeover.step.C",
		"takeover.step.D", "takeover.step.E", "takeover.step.F",
	} {
		if got := rr.PhaseCount[step]; got != 2 {
			t.Errorf("PhaseCount[%s] = %d, want 2", step, got)
		}
	}

	// Phase accounting localises the stall: step E absorbed it on both
	// hand-offs, while the drain phase (10ms DrainWait per slot) stayed
	// far below the stall.
	if got := rr.Phase("takeover.step.E"); got < 2*stall {
		t.Errorf("Phase(takeover.step.E) = %v, want >= %v", got, 2*stall)
	}
	// Comparative rather than absolute (drain is ~20ms of work but CI
	// scheduling noise can inflate it): the stalled protocol step must
	// dominate the drain phase.
	if drain, stepE := rr.Phase("slot.drain"), rr.Phase("takeover.step.E"); drain >= stepE {
		t.Errorf("Phase(slot.drain) = %v not below Phase(takeover.step.E) = %v — stall misattributed", drain, stepE)
	}
	if rr.Phase("release") < rr.Phase("takeover.step.E") {
		t.Error("release envelope shorter than a phase inside it")
	}

	// The JSON on disk reloads to a deep-equal report.
	back, err := core.ReadReleaseReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rr, back) {
		t.Fatal("ReleaseReport did not survive the JSON round-trip")
	}

	// And the table consumed the same phases.
	var sawStepE bool
	for _, row := range tab.Rows {
		if row[0] == "takeover.step.E" {
			sawStepE = true
			if ms := num(t, row[2]); ms < float64(2*stall/time.Millisecond) {
				t.Errorf("table total for step E = %vms, want >= %v", ms, 2*stall)
			}
		}
	}
	if !sawStepE {
		t.Fatal("phase table has no takeover.step.E row")
	}
}

func TestTblReleasePhasesShape(t *testing.T) {
	tab, err := TblReleasePhases()
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "T-D" {
		t.Fatalf("ID = %q", tab.ID)
	}
	want := map[string]bool{"release": false, "takeover.handoff": false, "slot.drain": false}
	for _, row := range tab.Rows {
		if _, ok := want[row[0]]; ok {
			want[row[0]] = true
		}
	}
	for phase, ok := range want {
		if !ok {
			t.Errorf("phase table missing %q row", phase)
		}
	}
}
