package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTblFleetRollout is the fleet-disruption CI artifact producer: it
// regenerates T-E (gated vs ungated push of a bad build to a live
// fleet), asserts the gate's blast-radius claim numerically, and writes
// the rendered table to $ZDR_RELEASE_REPORT_DIR for CI to upload.
func TestTblFleetRollout(t *testing.T) {
	tab, err := TblFleetRollout()
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "T-E" {
		t.Fatalf("ID = %q", tab.ID)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	rows := map[string][]string{}
	for _, row := range tab.Rows {
		rows[row[0]] = row
	}

	// Control: a good build promotes everywhere with a clean client view.
	good := rows["gated, good build"]
	if good[1] != "done" || good[2] != "6" || good[3] != "0" {
		t.Fatalf("gated good build row %v, want done/6 promoted/0 rolled back", good)
	}
	if num(t, good[4]) != 0 {
		t.Fatalf("good build produced %s client 5xx", good[4])
	}

	// Gated bad build: the canary (batch of 1) is refused and rolled
	// back; nobody is promoted; the rollout ends aborted (the scenario's
	// operator abandons the pause).
	gatedBad := rows["gated, bad build"]
	if gatedBad[1] != "aborted" || gatedBad[2] != "0" || gatedBad[3] != "1" {
		t.Fatalf("gated bad build row %v, want aborted/0 promoted/1 rolled back", gatedBad)
	}

	// Ungated bad build: the pre-gate process promotes the broken build
	// fleet-wide.
	ungatedBad := rows["ungated, bad build"]
	if ungatedBad[1] != "done" || ungatedBad[2] != "6" {
		t.Fatalf("ungated bad build row %v, want done/6 promoted", ungatedBad)
	}

	// The blast-radius claim: the gated rollout's client-visible errors
	// (one canary, one observation window) stay below the ungated push's
	// (six nodes serving 503s from promotion onward).
	if g, u := num(t, gatedBad[4]), num(t, ungatedBad[4]); g >= u {
		t.Fatalf("gated bad build 5xx (%v) not below ungated (%v) — the gate bought nothing", g, u)
	}
	if u := num(t, ungatedBad[4]); u == 0 {
		t.Fatal("ungated bad build produced no client 5xx — load loop starved")
	}

	// Zero transport failures in every scenario: promotion, drain-undo
	// rollback, and the bad build itself are all socket-preserving.
	for name, row := range rows {
		if num(t, row[5]) != 0 {
			t.Fatalf("%s: %s transport failures, want 0", name, row[5])
		}
	}

	if dir := os.Getenv("ZDR_RELEASE_REPORT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "fleet-rollout.txt"), []byte(tab.Render()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
