package experiments

import (
	"fmt"
	"time"

	"zdr/internal/cluster"
	"zdr/internal/quicx"
	"zdr/internal/workload"
)

// Fig2aReleaseCadence regenerates Fig. 2a: per-week release counts for
// Edge (L7LB) and DataCenter (App Server) clusters over a 3-month window,
// 10 clusters each.
func Fig2aReleaseCadence() (Table, error) {
	rng := workload.NewRNG(0xF2A)
	const clusters, weeks = 10, 13
	var l7, app []float64
	for c := 0; c < clusters; c++ {
		for w := 0; w < weeks; w++ {
			l7 = append(l7, float64(workload.ReleasesPerWeek(rng, workload.TierL7LB)))
			app = append(app, float64(workload.ReleasesPerWeek(rng, workload.TierAppServer)))
		}
	}
	q := func(v []float64, p float64) string { return f2(workload.Percentile(v, p)) }
	t := Table{
		ID:      "F2a",
		Title:   "Releases per week (10 clusters, 13 weeks)",
		Columns: []string{"tier", "p10", "p50", "p90"},
		Rows: [][]string{
			{"L7LB (Proxygen)", q(l7, 0.1), q(l7, 0.5), q(l7, 0.9)},
			{"App Server", q(app, 0.1), q(app, 0.5), q(app, 0.9)},
		},
		Notes: "paper: L7LB >= 3/week on average; App Server ~100/week at the median",
	}
	return t, nil
}

// Fig2bReleaseCauses regenerates Fig. 2b: root causes of L7LB releases.
func Fig2bReleaseCauses() (Table, error) {
	rng := workload.NewRNG(0xF2B)
	const samples = 100_000
	counts := map[workload.ReleaseCause]int{}
	for i := 0; i < samples; i++ {
		counts[workload.SampleCause(rng)]++
	}
	t := Table{
		ID:      "F2b",
		Title:   "Root causes of L7LB releases",
		Columns: []string{"cause", "share"},
		Notes:   "paper: binary (code) updates ~47%, configuration next; both require a restart",
	}
	for c := workload.CauseBinary; c <= workload.CauseRollback; c++ {
		t.Rows = append(t.Rows, []string{c.String(), pct(float64(counts[c]) / samples)})
	}
	return t, nil
}

// Fig2cCommitsPerRelease regenerates Fig. 2c: distinct commits per App
// Server release.
func Fig2cCommitsPerRelease() (Table, error) {
	rng := workload.NewRNG(0xF2C)
	var v []float64
	for i := 0; i < 50_000; i++ {
		v = append(v, float64(workload.CommitsPerRelease(rng)))
	}
	t := Table{
		ID:      "F2c",
		Title:   "Code commits per App Server release",
		Columns: []string{"p10", "p50", "p90", "min", "max"},
		Rows: [][]string{{
			f2(workload.Percentile(v, 0.1)),
			f2(workload.Percentile(v, 0.5)),
			f2(workload.Percentile(v, 0.9)),
			f2(workload.Percentile(v, 0)),
			f2(workload.Percentile(v, 1)),
		}},
		Notes: "paper: each update carries 10-100 distinct commits",
	}
	return t, nil
}

// Fig2dReuseportMisrouting regenerates Fig. 2d: UDP packets mis-routed
// during a SO_REUSEPORT socket handover (kernel socket-ring flux model),
// for several flow counts.
func Fig2dReuseportMisrouting() (Table, error) {
	t := Table{
		ID:      "F2d",
		Title:   "UDP packets mis-routed during SO_REUSEPORT socket handover",
		Columns: []string{"flows", "flux misrouted", "purge misrouted", "misroute rate"},
		Notes:   "paper: the ring flux 'significantly increases the likelihood of UDP packets being misrouted'",
	}
	for _, flows := range []int{1_000, 10_000, 100_000} {
		out, err := quicx.SimulateReuseportRelease(8, flows, 5)
		if err != nil {
			return t, err
		}
		total := out.FluxMisrouted + out.PurgeMisrouted
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", flows),
			fmt.Sprintf("%d", out.FluxMisrouted),
			fmt.Sprintf("%d", out.PurgeMisrouted),
			pct(float64(total) / float64(out.Delivered)),
		})
	}
	return t, nil
}

// Fig3aCapacityTimeline regenerates Fig. 3a: an Edge cluster's capacity
// during a traditional rolling release with 15-20% batches.
func Fig3aCapacityTimeline() (Table, error) {
	res := cluster.RunRelease(cluster.Config{
		Machines:      100,
		BatchFraction: 0.20,
		DrainPeriod:   20 * time.Minute,
		BatchGap:      3 * time.Minute,
		Strategy:      cluster.HardRestart,
		Tick:          time.Minute,
		Seed:          0xF3A,
	})
	t := Table{
		ID:      "F3a",
		Title:   "Cluster capacity during a traditional rolling update (20% batches)",
		Columns: []string{"minute", "capacity"},
		Notes:   fmt.Sprintf("paper: persistently <85%% capacity during the update; measured min %.0f%%, completion %v", res.MinCapacityFraction*100, res.CompletionTime),
	}
	for i, s := range res.Timeline {
		if i%5 != 0 {
			continue // sample every 5 minutes for the table
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", int(s.T.Minutes())), pct(s.CapacityFraction)})
	}
	return t, nil
}

// Fig3bReconnectCPU regenerates Fig. 3b: app-tier CPU while clients
// reconnect after a fraction of Origin proxies hard-restart.
func Fig3bReconnectCPU() (Table, error) {
	t := Table{
		ID:      "F3b",
		Title:   "App-tier CPU surge from client reconnections",
		Columns: []string{"% proxies restarted", "baseline CPU", "peak CPU", "extra CPU"},
		Notes:   "paper: when 10% of Origin Proxygen restart, the app cluster spends ~20% of CPU cycles rebuilding state",
	}
	for _, frac := range []float64{0.05, 0.10, 0.20} {
		res := cluster.RunReconnectStorm(cluster.ReconnectStormConfig{ProxyFractionRestarted: frac})
		t.Rows = append(t.Rows, []string{
			pct(frac), pct(res.BaselineCPU), pct(res.PeakCPU), pct(res.ExtraCPUFraction),
		})
	}
	return t, nil
}

// Fig15RestartHours regenerates Fig. 15: the hour-of-day PDF of releases
// per tier.
func Fig15RestartHours() (Table, error) {
	rng := workload.NewRNG(0xF15)
	const samples = 100_000
	l7 := make([]int, 24)
	app := make([]int, 24)
	for i := 0; i < samples; i++ {
		l7[workload.RestartHour(rng, workload.TierL7LB)]++
		app[workload.RestartHour(rng, workload.TierAppServer)]++
	}
	t := Table{
		ID:      "F15",
		Title:   "PDF of restart hour-of-day per tier",
		Columns: []string{"hour", "Proxygen", "App Server"},
		Notes:   "paper: Proxygen releases concentrate 12:00-17:00 (peak hours); App Server restarts run continuously (flat)",
	}
	for h := 0; h < 24; h += 2 {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%02d:00", h),
			f4(float64(l7[h]+l7[h+1]) / samples),
			f4(float64(app[h]+app[h+1]) / samples),
		})
	}
	return t, nil
}
