package experiments

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"zdr/internal/appserver"
	"zdr/internal/http1"
	"zdr/internal/mqtt"
	"zdr/internal/proxy"
)

// Testbed is a real localhost deployment of the full topology: MQTT
// broker, app servers, Origin proxies, one Edge proxy. The real-socket
// experiments (F9, F12, F17, T-A) run against it.
type Testbed struct {
	Broker     *mqtt.Broker
	BrokerAddr string
	Apps       []*appserver.Server
	AppAddrs   []string
	Origins    []*proxy.Proxy
	Edge       *proxy.Proxy

	brokerLn net.Listener
}

// TestbedConfig sizes the deployment.
type TestbedConfig struct {
	Apps        int
	Origins     int
	AppMode     appserver.Mode
	DrainPeriod time.Duration
}

// NewTestbed deploys the topology.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	if cfg.Apps <= 0 {
		cfg.Apps = 1
	}
	if cfg.Origins <= 0 {
		cfg.Origins = 1
	}
	if cfg.DrainPeriod <= 0 {
		cfg.DrainPeriod = 200 * time.Millisecond
	}
	tb := &Testbed{}
	ok := false
	defer func() {
		if !ok {
			tb.Close()
		}
	}()

	tb.Broker = mqtt.NewBroker("broker-1", nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	tb.brokerLn = ln
	tb.BrokerAddr = ln.Addr().String()
	go tb.Broker.Serve(ln)

	for i := 0; i < cfg.Apps; i++ {
		as := appserver.New(appserver.Config{
			Name:         fmt.Sprintf("as-%d", i),
			Mode:         cfg.AppMode,
			DrainPeriod:  50 * time.Millisecond,
			GraceWindow:  300 * time.Millisecond,
			GraceSilence: 60 * time.Millisecond,
		}, nil)
		addr, err := as.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		tb.Apps = append(tb.Apps, as)
		tb.AppAddrs = append(tb.AppAddrs, addr)
	}

	var originAddrs []string
	for i := 0; i < cfg.Origins; i++ {
		o := proxy.New(proxy.Config{
			Name:        fmt.Sprintf("origin-%d", i),
			Role:        proxy.RoleOrigin,
			AppServers:  tb.AppAddrs,
			Brokers:     []string{tb.BrokerAddr},
			DrainPeriod: cfg.DrainPeriod,
		}, nil)
		if err := o.Listen(); err != nil {
			return nil, err
		}
		tb.Origins = append(tb.Origins, o)
		originAddrs = append(originAddrs, o.Addr(proxy.VIPTunnel))
	}

	tb.Edge = proxy.New(proxy.Config{
		Name:          "edge-0",
		Role:          proxy.RoleEdge,
		Origins:       originAddrs,
		DrainPeriod:   cfg.DrainPeriod,
		StaticContent: map[string][]byte{"/static/ping": []byte("pong")},
	}, nil)
	if err := tb.Edge.Listen(); err != nil {
		return nil, err
	}
	ok = true
	return tb, nil
}

// Close tears everything down.
func (tb *Testbed) Close() {
	if tb.Edge != nil {
		tb.Edge.Close()
	}
	for _, o := range tb.Origins {
		o.Close()
	}
	for _, as := range tb.Apps {
		as.Close()
	}
	if tb.brokerLn != nil {
		tb.brokerLn.Close()
	}
	if tb.Broker != nil {
		tb.Broker.Close()
	}
}

// ErrorClass classifies a client-observed failure (Fig. 12's categories).
type ErrorClass int

// Error classes.
const (
	ErrNone ErrorClass = iota
	ErrConnReset
	ErrStreamAbort
	ErrTimeout
	ErrWriteTimeout
)

// String names the class as the paper does.
func (e ErrorClass) String() string {
	switch e {
	case ErrConnReset:
		return "conn. rst."
	case ErrStreamAbort:
		return "stream abort"
	case ErrTimeout:
		return "timeout"
	case ErrWriteTimeout:
		return "write timeout"
	default:
		return "ok"
	}
}

// DoRequest issues one HTTP request through the edge and classifies the
// outcome.
func (tb *Testbed) DoRequest(target string, timeout time.Duration) ErrorClass {
	conn, err := net.DialTimeout("tcp", tb.Edge.Addr(proxy.VIPWeb), timeout)
	if err != nil {
		return ErrConnReset
	}
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", target, nil, 0)); err != nil {
		if isTimeout(err) {
			return ErrWriteTimeout
		}
		return ErrConnReset
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		if isTimeout(err) {
			return ErrTimeout
		}
		return ErrConnReset
	}
	if _, err := http1.ReadFullBody(resp.Body); err != nil {
		if isTimeout(err) {
			return ErrTimeout
		}
		return ErrConnReset
	}
	if resp.StatusCode >= 500 {
		return ErrStreamAbort
	}
	return ErrNone
}

func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// DialMQTT connects an MQTT client through the edge.
func (tb *Testbed) DialMQTT(userID string, timeout time.Duration) (*mqtt.Client, error) {
	conn, err := net.DialTimeout("tcp", tb.Edge.Addr(proxy.VIPMQTT), timeout)
	if err != nil {
		return nil, err
	}
	c := mqtt.NewClient(conn, userID, true)
	if _, err := c.Connect(0, timeout); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// ServingOrigin returns the index of the Origin currently relaying MQTT
// connections, or -1.
func (tb *Testbed) ServingOrigin() int {
	for i, o := range tb.Origins {
		if o.Metrics().GaugeValue("origin.mqtt.active") > 0 {
			return i
		}
	}
	return -1
}
