package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"zdr/internal/core"
	"zdr/internal/obs"
	"zdr/internal/proxy"
)

// releasePhaseOrder is the canonical presentation order for the phase
// table: the release envelope, then the per-slot restart machinery, then
// the six Fig. 5 takeover steps, then the drain tails.
var releasePhaseOrder = []string{
	"release", "release.batch", "slot.restart", "takeover.handoff",
	"takeover.serve",
	"takeover.step.A", "takeover.step.B", "takeover.step.C",
	"takeover.prepare", "takeover.commit",
	"takeover.step.D", "takeover.step.E", "takeover.step.F",
	"slot.drain", "proxy.drain",
}

// TblReleasePhases regenerates the release-phase breakdown: a traced
// two-tier rolling release (Origin then Edge, real sockets, real Socket
// Takeover hand-offs) whose ReleaseReport is folded into a table of
// per-phase durations. It is the experiments-side consumer of the
// machine-readable release report.
func TblReleasePhases() (Table, error) {
	tab, _, err := releasePhases("", nil)
	return tab, err
}

// releasePhases runs the traced release and builds the table. When
// reportPath is non-empty the ReleaseReport JSON is written there; hook
// (optional) is installed as the tracer's span-start hook, which is how
// tests inject deterministic stalls into individual takeover steps.
func releasePhases(reportPath string, hook func(*obs.Span)) (Table, *core.ReleaseReport, error) {
	dir, err := os.MkdirTemp("", "zdr-release-*")
	if err != nil {
		return Table{}, nil, err
	}
	defer os.RemoveAll(dir)

	tracer := obs.NewTracer("experiments")
	if hook != nil {
		tracer.SetSpanStartHook(hook)
	}

	originGen := 0
	origin := &core.ProxySlot{
		SlotName:  "origin",
		Path:      filepath.Join(dir, "origin.sock"),
		DrainWait: 10 * time.Millisecond,
		Build: func() *proxy.Proxy {
			originGen++
			return proxy.New(proxy.Config{
				Name:       fmt.Sprintf("origin-g%d", originGen),
				Role:       proxy.RoleOrigin,
				AppServers: []string{"127.0.0.1:9"}, // no traffic flows
				Trace:      tracer,
			}, nil)
		},
	}
	if err := origin.Start(); err != nil {
		return Table{}, nil, err
	}
	defer origin.Close()

	tunnelAddr := origin.Current().Addr(proxy.VIPTunnel)
	edgeGen := 0
	edge := &core.ProxySlot{
		SlotName:  "edge",
		Path:      filepath.Join(dir, "edge.sock"),
		DrainWait: 10 * time.Millisecond,
		Build: func() *proxy.Proxy {
			edgeGen++
			return proxy.New(proxy.Config{
				Name:    fmt.Sprintf("edge-g%d", edgeGen),
				Role:    proxy.RoleEdge,
				Origins: []string{tunnelAddr},
				Trace:   tracer,
			}, nil)
		},
	}
	if err := edge.Start(); err != nil {
		return Table{}, nil, err
	}
	defer edge.Close()

	rep, err := core.Run(core.Plan{BatchFraction: 0.5, Trace: tracer, ReportPath: reportPath},
		[]core.Restartable{origin, edge}, nil)
	if err != nil {
		return Table{}, nil, err
	}
	rr := rep.Release

	// Canonical phases first, anything else (future spans) alphabetically.
	var names []string
	seen := map[string]bool{}
	for _, n := range releasePhaseOrder {
		if rr.PhaseCount[n] > 0 {
			names = append(names, n)
			seen[n] = true
		}
	}
	var extra []string
	for n := range rr.PhaseCount {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	names = append(names, extra...)

	tab := Table{
		ID:      "T-D",
		Title:   "Release-phase durations from the machine-readable ReleaseReport",
		Columns: []string{"phase", "count", "total (ms)", "mean (ms)"},
		Notes: "per-phase time from the traced release span tree; takeover.step.* rows are " +
			"Fig. 5's steps, takeover.prepare/takeover.commit the two-phase confirmation " +
			"(recorded on both sides of the hand-off socket)",
	}
	for _, n := range names {
		total := rr.Phase(n)
		count := rr.PhaseCount[n]
		mean := time.Duration(0)
		if count > 0 {
			mean = total / time.Duration(count)
		}
		tab.Rows = append(tab.Rows, []string{
			n,
			fmt.Sprintf("%d", count),
			f2(float64(total) / float64(time.Millisecond)),
			f2(float64(mean) / float64(time.Millisecond)),
		})
	}
	return tab, rr, nil
}
