package experiments

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"zdr/internal/core"
	"zdr/internal/fleet"
	"zdr/internal/http1"
	"zdr/internal/metrics"
	"zdr/internal/proxy"
)

// TblFleetRollout regenerates the fleet control-plane comparison (§6 at
// simulation scale): the same broken build pushed to the same live
// fleet under the pre-gate release process (ungated: every node
// restarts and is promoted regardless of health) versus the health-gated
// canary rollout (the canary batch fails its gate and rolls back via
// drain-undo before anyone else is touched). A gated rollout of a good
// build rides along as the control. The client-visible error counts are
// the point: gating confines the bad build's blast radius to the canary
// batch's observation window, and in every scenario — promote, rollback,
// fleet-wide bad build — transport-level failures stay at zero, because
// the data plane never leaves the Socket Takeover protocol.
func TblFleetRollout() (Table, error) {
	type scenario struct {
		name  string
		gated bool
		bad   bool
	}
	scenarios := []scenario{
		{"gated, good build", true, false},
		{"gated, bad build", true, true},
		{"ungated, bad build", false, true},
	}
	tab := Table{
		ID:      "T-E",
		Title:   "Fleet rollout disruption: health-gated canary vs ungated push",
		Columns: []string{"scenario", "state", "promoted", "rolled back", "client 5xx", "transport fails"},
		Notes: "6-node fleet under continuous client load; the bad build answers every request " +
			"503. Gating pauses the rollout at the canary batch (blast radius = canary's " +
			"observation window) where the ungated push promotes the broken build fleet-wide; " +
			"transport failures are zero everywhere — rollback is drain-undo, not a rebind",
	}
	for _, sc := range scenarios {
		res, err := fleetRollout(sc.gated, sc.bad)
		if err != nil {
			return Table{}, fmt.Errorf("%s: %w", sc.name, err)
		}
		tab.Rows = append(tab.Rows, []string{
			sc.name,
			res.state,
			fmt.Sprintf("%d", res.promoted),
			fmt.Sprintf("%d", res.rolledBack),
			fmt.Sprintf("%d", res.serverErr),
			fmt.Sprintf("%d", res.transport),
		})
	}
	return tab, nil
}

// fleetRolloutResult is one scenario's outcome.
type fleetRolloutResult struct {
	state      string
	promoted   int
	rolledBack int
	ok         int64
	serverErr  int64
	transport  int64
}

// fleetRollout pushes a build to a small live fleet and reports the
// rollout outcome plus the client's view of it. It is the experiments-
// side miniature of internal/fleet's chaos suite.
func fleetRollout(gated, bad bool) (fleetRolloutResult, error) {
	const nodes = 6
	var res fleetRolloutResult

	dir, err := os.MkdirTemp("", "zdr-fleet-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	type simNode struct {
		slot    *core.ProxySlot
		win     *fleet.CanaryWindow
		good    atomic.Bool
		webAddr string
	}
	sims := make([]*simNode, nodes)
	fnodes := make([]*fleet.Node, nodes)
	for i := range sims {
		name := fmt.Sprintf("edge-%02d", i)
		s := &simNode{}
		if gated {
			s.win = fleet.NewCanaryWindow(5 * time.Second)
		}
		s.good.Store(true)
		reg := metrics.NewRegistry()
		gen := 0
		s.slot = &core.ProxySlot{
			SlotName:  name,
			Path:      filepath.Join(dir, name+".sock"),
			DrainWait: 5 * time.Millisecond,
			Build: func() *proxy.Proxy {
				gen++
				cfg := proxy.Config{
					Name:                 fmt.Sprintf("%s-g%d", name, gen),
					Role:                 proxy.RoleEdge,
					TakeoverReadyTimeout: 30 * time.Second,
				}
				if s.win != nil {
					cfg.ReadyGate = s.win.Gate
				}
				if s.good.Load() {
					cfg.StaticContent = map[string][]byte{"/hello": []byte("ok")}
				}
				return proxy.New(cfg, reg)
			},
		}
		if err := s.slot.Start(); err != nil {
			return res, err
		}
		defer s.slot.Close()
		s.webAddr = s.slot.Current().Addr(proxy.VIPWeb)
		fnodes[i] = fleet.ProxyNode(fmt.Sprintf("vip-%02d", i), s.slot, reg,
			func() string { return s.webAddr }, "/hello", s.win)
		sims[i] = s
	}

	// Continuous client load against every node, with the two failure
	// classes separated: 5xx (the bad build) vs transport (forbidden).
	var okN, errN, transportN atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, s := range sims {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, err := fleetGET(addr)
				switch {
				case err != nil:
					transportN.Add(1)
				case code == 200:
					okN.Add(1)
				default:
					errN.Add(1)
				}
				time.Sleep(time.Millisecond)
			}
		}(s.webAddr)
	}
	time.Sleep(100 * time.Millisecond) // error-free baseline history

	for _, s := range sims {
		s.good.Store(!bad)
	}

	o, err := fleet.New(fleet.Config{
		Name:          "tbl-fleet",
		CanarySize:    1,
		GrowthFactor:  2,
		HealthWindow:  150 * time.Millisecond,
		ProbeInterval: 10 * time.Millisecond,
		WindowTimeout: 10 * time.Second,
		Ungated:       !gated,
	}, fnodes)
	if err != nil {
		return res, err
	}
	// A gate refusal pauses the rollout awaiting an operator; this
	// experiment's operator always abandons.
	abandoned := make(chan struct{})
	go func() {
		defer close(abandoned)
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			if o.Status().State == fleet.StatePaused {
				o.Decide(false)
				return
			}
		}
	}()
	if err := o.Run(); err != nil {
		return res, err
	}

	time.Sleep(50 * time.Millisecond) // post-rollout serving tail
	close(stop)
	wg.Wait()
	<-abandoned

	st := o.Status()
	res.state = st.State
	for _, n := range st.Nodes {
		if n.Promoted {
			res.promoted++
		}
		if n.RolledBack {
			res.rolledBack++
		}
	}
	res.ok = okN.Load()
	res.serverErr = errN.Load()
	res.transport = transportN.Load()
	return res, nil
}

// fleetGET issues one plain-HTTP GET /hello and returns the status code.
func fleetGET(addr string) (int, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/hello", nil, 0)); err != nil {
		return 0, err
	}
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return 0, err
	}
	if _, err := http1.ReadFullBody(resp.Body); err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}
