// Package experiments regenerates every table and figure in the paper's
// motivation and evaluation sections. Each experiment is a function
// returning a Table — the same rows/series the paper reports — built
// either from the virtual-time fleet simulator (cluster-scale figures) or
// from real sockets on localhost (protocol-level figures).
//
// The per-experiment index lives in DESIGN.md §3; EXPERIMENTS.md records
// paper-vs-measured values. `cmd/zdr-exp` prints every table, and the
// repo-root bench suite wraps each experiment in a testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one regenerated figure or table.
type Table struct {
	// ID matches the per-experiment index (e.g. "F8", "F12").
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, already formatted.
	Rows [][]string
	// Notes records the paper's expectation and how the measured shape
	// compares.
	Notes string
}

// Render formats the table as aligned plain text.
func (t Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Notes)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "\n*%s*\n", t.Notes)
	}
	return sb.String()
}

// Experiment couples an ID to its generator.
type Experiment struct {
	ID  string
	Run func() (Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"F2a", Fig2aReleaseCadence},
		{"F2b", Fig2bReleaseCauses},
		{"F2c", Fig2cCommitsPerRelease},
		{"F2d", Fig2dReuseportMisrouting},
		{"F3a", Fig3aCapacityTimeline},
		{"F3b", Fig3bReconnectCPU},
		{"F8", Fig8IdleCPU},
		{"F9", Fig9DCRTimeline},
		{"F10", Fig10UDPMisrouting},
		{"F11", Fig11PPRDisruption},
		{"F12", Fig12ProxyErrors},
		{"F13", Fig13ReleaseTimeline},
		{"F15", Fig15RestartHours},
		{"F16", Fig16CompletionTime},
		{"F17", Fig17TakeoverOverhead},
		{"T-A", TblPPRRetries},
		{"T-B", TblHeadlineBenefits},
		{"T-C", TblPeakHourRelease},
		{"T-D", TblReleasePhases},
		{"T-E", TblFleetRollout},
		{"T-F", TblDisruptionAttribution},
	}
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
