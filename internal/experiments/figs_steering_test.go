package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTblSteeringRelease is the steering-policy CI artifact producer: it
// regenerates T-G (the same rolling release under Maglev-only vs Prequal
// drain-aware steering), asserts the drain-avoidance claim numerically,
// and writes the rendered table to $ZDR_RELEASE_REPORT_DIR for CI to
// upload.
func TestTblSteeringRelease(t *testing.T) {
	tab, err := TblSteeringRelease()
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "T-G" {
		t.Fatalf("ID = %q", tab.ID)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	rows := map[string][]string{}
	for _, row := range tab.Rows {
		rows[row[0]] = row
	}
	maglev, prequal := rows["maglev"], rows["prequal"]
	if maglev == nil || prequal == nil {
		t.Fatalf("missing policy rows in %v", tab.Rows)
	}

	// Maglev keeps hashing fresh flows onto the draining edge until the
	// health checker evicts it — the §6 disruption window must be visible
	// or the scenario never exercised it.
	if num(t, maglev[3]) == 0 {
		t.Fatal("maglev run saw no drain arrivals — release window never stressed the placement")
	}

	// The tentpole claim: Prequal hears the drain advertisement on the
	// load-probe channel and bleeds new flows off the draining generation
	// strictly before health eviction could.
	if m, p := num(t, maglev[3]), num(t, prequal[3]); p >= m {
		t.Fatalf("prequal drain arrivals (%v) not below maglev (%v) — advertisement bought nothing", p, m)
	}

	// Drain-aware steering must not trade availability for avoidance.
	if m, p := num(t, maglev[4]), num(t, prequal[4]); p > m {
		t.Fatalf("prequal disrupted %v requests, maglev only %v", p, m)
	}

	// ...and no tail-latency regression: static local GETs should land in
	// the same ballpark; allow generous scheduler slack.
	if m, p := num(t, maglev[6]), num(t, prequal[6]); p > 4*m+5000 {
		t.Fatalf("prequal p99 %v us way above maglev %v us", p, m)
	}

	if dir := os.Getenv("ZDR_RELEASE_REPORT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "steering-release.txt"), []byte(tab.Render()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
