package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"zdr/internal/core"
	"zdr/internal/disrupt"
	"zdr/internal/faults"
	"zdr/internal/fleet"
	"zdr/internal/metrics"
	"zdr/internal/proxy"
)

// TblDisruptionAttribution regenerates the §6-style disruption
// attribution table (T-F): the same chaos — accept-path connection
// aborts on every node — applied while a build rolls out gated vs
// ungated, with every terminal failure attributed by the per-node
// disruption ledgers and merged fleet-wide through the telemetry
// pipeline. The books must balance exactly in both scenarios (every
// injected fault appears as one attributed (cause, phase) cell, nothing
// is unattributed); what differs is the release-phase column: the gated
// rollout holds canaries in committed-awaiting-ready while the gate
// watches, so chaos landing inside the observation window is attributed
// to that phase instead of blurring into steady-state serving.
func TblDisruptionAttribution() (Table, error) {
	tab, _, err := tblDisruptionAttribution("")
	return tab, err
}

// tblDisruptionAttribution builds the T-F table. When artifactDir is
// non-empty the fleet-merged TelemetryReport of each scenario is written
// there as telemetry-report-<scenario>.json (the CI artifacts).
func tblDisruptionAttribution(artifactDir string) (Table, map[string]disruptionRun, error) {
	tab := Table{
		ID:      "T-F",
		Title:   "Disruption attribution: terminal failures by cause x release phase, gated vs ungated",
		Columns: []string{"scenario", "cause", "release phase", "count", "per request"},
		Notes: "4-node fleet under load with accept-path chaos during the rollout; every row " +
			"is a fleet-merged ledger cell and the books balance exactly (injected == " +
			"attributed, unattributed == 0). Gated canaries sit in committed-awaiting-ready " +
			"while the gate watches, so in-window chaos is attributed to the release — the " +
			"ungated push has no such window and every failure lands in steady-state serving",
	}
	runs := map[string]disruptionRun{}
	for _, sc := range []struct {
		name  string
		gated bool
	}{{"gated", true}, {"ungated", false}} {
		run, err := disruptionRollout(sc.gated)
		if err != nil {
			return Table{}, nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		runs[sc.name] = run
		if artifactDir != "" {
			data, err := json.MarshalIndent(run.report, "", "  ")
			if err != nil {
				return Table{}, nil, err
			}
			path := filepath.Join(artifactDir, "telemetry-report-"+sc.name+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return Table{}, nil, err
			}
		}
		rep := run.report
		tab.Rows = append(tab.Rows, []string{
			sc.name, "(all terminal)", "-",
			fmt.Sprintf("%d", rep.Disruption.Terminal),
			f4(rep.DisruptionRate),
		})
		cells := append([]disrupt.Cell(nil), rep.CausePhase...)
		fleet.SortCellsByCount(cells)
		for _, c := range cells {
			tab.Rows = append(tab.Rows, []string{
				sc.name, c.Cause, c.Phase,
				fmt.Sprintf("%d", c.Count),
				f4(rate64(c.Count, rep.Requests)),
			})
		}
	}
	return tab, runs, nil
}

// disruptionRun is one scenario's outcome: the fleet-merged telemetry
// report and the injectors' own count of faults fired — the two sides of
// the reconciliation.
type disruptionRun struct {
	report   fleet.TelemetryReport
	injected int64
}

// disruptionRollout rolls a good build across a small live fleet whose
// accept paths randomly abort connections, then scrapes and merges the
// fleet telemetry. It is the experiments-side miniature of
// internal/fleet's telemetry chaos suite.
func disruptionRollout(gated bool) (disruptionRun, error) {
	const nodes = 4
	var run disruptionRun

	dir, err := os.MkdirTemp("", "zdr-disrupt-*")
	if err != nil {
		return run, err
	}
	defer os.RemoveAll(dir)

	type simNode struct {
		slot    *core.ProxySlot
		win     *fleet.CanaryWindow
		led     *disrupt.Ledger
		inj     *faults.Injector
		webAddr string
	}
	sims := make([]*simNode, nodes)
	fnodes := make([]*fleet.Node, nodes)
	for i := range sims {
		name := fmt.Sprintf("edge-%02d", i)
		s := &simNode{
			led: disrupt.New(name, 256),
			inj: faults.NewInjector(faults.Scenario{
				Seed:        uint64(i + 1),
				AbortRate:   0.12,
				AbortMinOps: 1,
			}),
		}
		if gated {
			s.win = fleet.NewCanaryWindow(5 * time.Second)
		}
		reg := metrics.NewRegistry()
		gen := 0
		s.slot = &core.ProxySlot{
			SlotName:  name,
			Path:      filepath.Join(dir, name+".sock"),
			DrainWait: 5 * time.Millisecond,
			Build: func() *proxy.Proxy {
				gen++
				cfg := proxy.Config{
					Name:                 fmt.Sprintf("%s-g%d", name, gen),
					Role:                 proxy.RoleEdge,
					TakeoverReadyTimeout: 30 * time.Second,
					AcceptFaults:         s.inj,
					Ledger:               s.led,
					Generation:           gen,
					StaticContent:        map[string][]byte{"/hello": []byte("ok")},
				}
				if s.win != nil {
					cfg.ReadyGate = s.win.Gate
				}
				return proxy.New(cfg, reg)
			},
		}
		if err := s.slot.Start(); err != nil {
			return run, err
		}
		defer s.slot.Close()
		s.webAddr = s.slot.Current().Addr(proxy.VIPWeb)
		fnodes[i] = fleet.ProxyNode(fmt.Sprintf("vip-%02d", i), s.slot, reg,
			func() string { return s.webAddr }, "/hello", s.win)
		fnodes[i].Disruption = s.led.Report
		sims[i] = s
	}

	// Continuous load; aborted connections are the injected chaos, so the
	// client outcome is irrelevant here — the ledgers keep the books.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, s := range sims {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				fleetGET(addr)
				time.Sleep(time.Millisecond)
			}
		}(s.webAddr)
	}
	time.Sleep(100 * time.Millisecond) // pre-release baseline history

	// The gate must tolerate the chaos (it hits old and new generation
	// alike); the telemetry channel is exercised, not tripped.
	o, err := fleet.New(fleet.Config{
		Name:          "tbl-disrupt",
		CanarySize:    1,
		GrowthFactor:  2,
		HealthWindow:  150 * time.Millisecond,
		ProbeInterval: 10 * time.Millisecond,
		WindowTimeout: 10 * time.Second,
		Ungated:       !gated,
		Gate: fleet.GateConfig{
			MaxErrorRateDelta:   0.9,
			MaxProbeFailureRate: 0.95,
			MaxDisruptionRate:   0.9,
		},
	}, fnodes)
	if err != nil {
		return run, err
	}
	if err := o.Run(); err != nil {
		return run, err
	}
	if st := o.Status(); st.State != fleet.StateDone {
		return run, fmt.Errorf("rollout state %q (%s), want done", st.State, st.Reason)
	}

	close(stop)
	wg.Wait()
	// Join in-flight handlers so every late fault is recorded before the
	// books are audited.
	for _, s := range sims {
		s.slot.Close()
	}

	for _, s := range sims {
		run.injected += int64(s.inj.InjectedTotal())
	}
	tele := &fleet.Telemetry{Nodes: fnodes}
	run.report = tele.Scrape()
	return run, nil
}

func rate64(events, requests int64) float64 {
	if requests <= 0 {
		return 0
	}
	return float64(events) / float64(requests)
}
