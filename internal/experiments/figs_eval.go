package experiments

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"zdr/internal/appserver"
	"zdr/internal/cluster"
	"zdr/internal/http1"
	"zdr/internal/mqtt"
	"zdr/internal/netx"
	"zdr/internal/proxy"
	"zdr/internal/quicx"
	"zdr/internal/takeover"
	"zdr/internal/workload"
)

// Fig8IdleCPU regenerates Fig. 8(b): normalised idle CPU during the drain
// phase, HardRestart (5% and 20% batches) vs Zero Downtime Release.
func Fig8IdleCPU() (Table, error) {
	run := func(strategy cluster.Strategy, frac float64) cluster.ReleaseResult {
		return cluster.RunRelease(cluster.Config{
			Machines:      100,
			BatchFraction: frac,
			DrainPeriod:   20 * time.Minute,
			Strategy:      strategy,
			Tick:          time.Minute,
			Seed:          0xF8,
		})
	}
	rows := [][]string{}
	for _, c := range []struct {
		label    string
		strategy cluster.Strategy
		frac     float64
	}{
		{"HardRestart 5%", cluster.HardRestart, 0.05},
		{"HardRestart 20%", cluster.HardRestart, 0.20},
		{"ZeroDowntime 5%", cluster.ZeroDowntime, 0.05},
		{"ZeroDowntime 20%", cluster.ZeroDowntime, 0.20},
	} {
		res := run(c.strategy, c.frac)
		rows = append(rows, []string{c.label, pct(res.MinIdleCPUFraction), pct(res.MinCapacityFraction)})
	}
	return Table{
		ID:      "F8",
		Title:   "Idle CPU during drain, normalised to pre-release baseline",
		Columns: []string{"strategy/batch", "min idle CPU", "min capacity"},
		Rows:    rows,
		Notes:   "paper: ZDR within ~1-3% of baseline; HardRestart degrades linearly with the restarted fraction",
	}, nil
}

// Fig9DCRTimeline regenerates Fig. 9 on real sockets: MQTT publish
// deliveries and new-connection CONNACKs around an Origin restart, with
// and without Downstream Connection Reuse.
func Fig9DCRTimeline() (Table, error) {
	type series struct {
		publishes []int64
		connacks  []int64
	}
	const (
		clients   = 12
		buckets   = 12
		bucketDur = 150 * time.Millisecond
		restartAt = 4 // bucket index
	)

	runScenario := func(withDCR bool) (series, error) {
		var s series
		tb, err := NewTestbed(TestbedConfig{Apps: 1, Origins: 2, DrainPeriod: 2 * time.Second})
		if err != nil {
			return s, err
		}
		defer tb.Close()

		conns := make([]*mqtt.Client, clients)
		for i := range conns {
			c, err := tb.DialMQTT(fmt.Sprintf("user-%02d", i), 5*time.Second)
			if err != nil {
				return s, fmt.Errorf("client %d: %w", i, err)
			}
			if err := c.Subscribe(5*time.Second, fmt.Sprintf("notif/user-%02d", i)); err != nil {
				return s, err
			}
			conns[i] = c
			defer c.Disconnect()
		}

		lastAcks := tb.Broker.Metrics().CounterValue("mqtt.connack.sent")
		for b := 0; b < buckets; b++ {
			if b == restartAt {
				serving := tb.ServingOrigin()
				if serving < 0 {
					return s, fmt.Errorf("no serving origin")
				}
				if withDCR {
					// Zero Downtime restart: drain → GOAWAY + solicitation.
					tb.Origins[serving].StartDraining()
				} else {
					// Traditional restart: the instance just dies.
					tb.Origins[serving].Close()
				}
			}
			var delivered int64
			deadline := time.Now().Add(bucketDur)
			for time.Now().Before(deadline) {
				for i := 0; i < clients; i++ {
					delivered += int64(tb.Broker.Publish(fmt.Sprintf("notif/user-%02d", i), []byte("m")))
				}
				time.Sleep(20 * time.Millisecond)

				if !withDCR {
					// Clients whose transport died re-connect organically
					// (the paper's woutDCR behaviour).
					for i, c := range conns {
						select {
						case <-c.Done():
							nc, err := tb.DialMQTT(fmt.Sprintf("user-%02d", i), 2*time.Second)
							if err == nil {
								nc.Subscribe(2*time.Second, fmt.Sprintf("notif/user-%02d", i))
								conns[i] = nc
							}
						default:
						}
					}
				}
			}
			acks := tb.Broker.Metrics().CounterValue("mqtt.connack.sent")
			s.publishes = append(s.publishes, delivered)
			s.connacks = append(s.connacks, acks-lastAcks)
			lastAcks = acks
		}
		return s, nil
	}

	dcr, err := runScenario(true)
	if err != nil {
		return Table{}, fmt.Errorf("DCR scenario: %w", err)
	}
	nodcr, err := runScenario(false)
	if err != nil {
		return Table{}, fmt.Errorf("woutDCR scenario: %w", err)
	}

	t := Table{
		ID:      "F9",
		Title:   "MQTT publishes delivered and new-connection ACKs around an Origin restart (real sockets)",
		Columns: []string{"bucket", "publishes (DCR)", "connacks (DCR)", "publishes (woutDCR)", "connacks (woutDCR)"},
		Notes:   "paper: with DCR no deterioration and no ACK spike; without DCR publishes drop sharply and a reconnect ACK spike follows (restart at bucket 4)",
	}
	for b := 0; b < buckets; b++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", b),
			fmt.Sprintf("%d", dcr.publishes[b]),
			fmt.Sprintf("%d", dcr.connacks[b]),
			fmt.Sprintf("%d", nodcr.publishes[b]),
			fmt.Sprintf("%d", nodcr.connacks[b]),
		})
	}
	return t, nil
}

// Fig10UDPMisrouting regenerates Fig. 10: mis-routed UDP packets per
// instance — a real Socket Takeover with connection-ID user-space routing
// vs the modeled traditional (ring-flux) release.
func Fig10UDPMisrouting() (Table, error) {
	const flows, packetsPerFlow = 500, 4

	// Real side: takeover with user-space routing on localhost.
	vip, err := netx.ListenUDPReusePort("127.0.0.1:0")
	if err != nil {
		return Table{}, err
	}
	oldSrv := quicx.NewServer("old", vip, func(c quicx.ConnID, p []byte) []byte { return p }, nil)
	oldSrv.Start()
	defer oldSrv.Close()

	addr := vip.LocalAddr().String()
	var conns []*quicx.Client
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < flows; i++ {
		c, err := quicx.Dial(addr, quicx.ConnID(i+1))
		if err != nil {
			return Table{}, err
		}
		conns = append(conns, c)
		if _, err := c.Open(nil, 2*time.Second); err != nil {
			return Table{}, fmt.Errorf("open flow %d: %w", i, err)
		}
	}

	// Takeover.
	fd, err := netx.PacketConnFD(vip)
	if err != nil {
		return Table{}, err
	}
	vip2, err := netx.PacketConnFromFD(fd, "vip-new")
	if err != nil {
		return Table{}, err
	}
	newSrv := quicx.NewServer("new", vip2, func(c quicx.ConnID, p []byte) []byte { return p }, nil)
	defer newSrv.Close()
	fwdAddr, err := oldSrv.StartDraining()
	if err != nil {
		return Table{}, err
	}
	newSrv.SetForward(fwdAddr)
	newSrv.Start()

	// Drive packets on the old flows during the drain.
	for p := 0; p < packetsPerFlow; p++ {
		for _, c := range conns {
			c.SendNoReply([]byte("data"))
		}
	}
	time.Sleep(300 * time.Millisecond) // let the forwarding settle

	realMis := newSrv.Metrics().CounterValue("quicx.misrouted") + oldSrv.Metrics().CounterValue("quicx.misrouted")
	forwarded := newSrv.Metrics().CounterValue("quicx.forwarded")

	// Model side: the traditional SO_REUSEPORT release.
	trad, err := quicx.SimulateReuseportRelease(8, flows, packetsPerFlow)
	if err != nil {
		return Table{}, err
	}
	tradMis := trad.FluxMisrouted + trad.PurgeMisrouted

	ratio := "inf"
	if realMis > 0 {
		ratio = fmt.Sprintf("%dx", tradMis/realMis)
	}
	return Table{
		ID:      "F10",
		Title:   "UDP packets mis-routed per instance during a release",
		Columns: []string{"approach", "packets", "misrouted", "forwarded in user-space"},
		Rows: [][]string{
			{"traditional (ring flux, modeled)", fmt.Sprintf("%d", trad.Delivered), fmt.Sprintf("%d", tradMis), "-"},
			{"socket takeover + connID routing (real)", fmt.Sprintf("%d", flows*packetsPerFlow), fmt.Sprintf("%d", realMis), fmt.Sprintf("%d", forwarded)},
		},
		Notes: fmt.Sprintf("paper: ~100x fewer misrouted packets in the worst case; measured advantage %s", ratio),
	}, nil
}

// Fig11PPRDisruption regenerates Fig. 11: percentage of POSTs across the
// web tier that restarts would have disrupted, over 7 days.
func Fig11PPRDisruption() (Table, error) {
	res := cluster.RunWebTierWeek(cluster.WebTierConfig{Seed: 0xF11})
	t := Table{
		ID:      "F11",
		Title:   "POST requests disrupted by App Server restarts over 7 days",
		Columns: []string{"day", "posts", "at-risk (379 hand-backs)", "% without PPR", "failed with PPR"},
		Notes:   "paper: median would-be disruption 0.0008% — tiny percentage, millions of requests; PPR reduces it to ~zero",
	}
	for d := range res.TotalPosts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d+1),
			fmt.Sprintf("%d", res.TotalPosts[d]),
			fmt.Sprintf("%d", res.WouldDisrupt[d]),
			fmt.Sprintf("%.5f%%", res.DisruptedPctWithoutPPR[d]),
			fmt.Sprintf("%d", res.PPRDisrupted[d]),
		})
	}
	return t, nil
}

// Fig12ProxyErrors regenerates Fig. 12 on real sockets: client-observed
// error classes during an Origin restart, traditional vs Zero Downtime.
func Fig12ProxyErrors() (Table, error) {
	const (
		requests  = 150
		restartAt = 30
		mqttConns = 8
	)

	runScenario := func(zdr bool) (map[ErrorClass]int, error) {
		counts := map[ErrorClass]int{}
		tb, err := NewTestbed(TestbedConfig{Apps: 2, Origins: 1, DrainPeriod: time.Second})
		if err != nil {
			return nil, err
		}
		defer tb.Close()

		var clients []*mqtt.Client
		for i := 0; i < mqttConns; i++ {
			c, err := tb.DialMQTT(fmt.Sprintf("u%d", i), 5*time.Second)
			if err != nil {
				return nil, err
			}
			clients = append(clients, c)
			defer c.Disconnect()
		}

		origin := tb.Origins[0]
		tunnelAddr := origin.Addr(proxy.VIPTunnel)
		healthAddr := origin.Addr(proxy.VIPHealth)
		takeoverPath := filepath.Join(os.TempDir(), fmt.Sprintf("zdr-f12-%d.sock", time.Now().UnixNano()))
		defer os.Remove(takeoverPath)
		if zdr {
			if err := origin.ServeTakeover(takeoverPath); err != nil {
				return nil, err
			}
		}

		var replacement *proxy.Proxy
		defer func() {
			if replacement != nil {
				replacement.Close()
			}
		}()
		for i := 0; i < requests; i++ {
			if i == restartAt {
				nextCfg := proxy.Config{
					Name:        "origin-0-next",
					Role:        proxy.RoleOrigin,
					AppServers:  tb.AppAddrs,
					Brokers:     []string{tb.BrokerAddr},
					DrainPeriod: time.Second,
				}
				if zdr {
					replacement = proxy.New(nextCfg, nil)
					if _, err := replacement.TakeoverFrom(takeoverPath); err != nil {
						return nil, err
					}
					go origin.Shutdown()
				} else {
					// Traditional: instance dies, replacement rebinds the
					// same VIPs after a gap.
					nextCfg.VIPAddrs = map[string]string{
						proxy.VIPTunnel: tunnelAddr,
						proxy.VIPHealth: healthAddr,
					}
					replacement = proxy.New(nextCfg, nil)
					origin.Close()
					go func(r *proxy.Proxy) {
						time.Sleep(300 * time.Millisecond)
						r.Listen()
					}(replacement)
				}
			}
			if class := tb.DoRequest("/api/item", 700*time.Millisecond); class != ErrNone {
				counts[class]++
			}
			time.Sleep(4 * time.Millisecond)
		}
		// MQTT connections that died count as connection resets.
		time.Sleep(300 * time.Millisecond)
		for _, c := range clients {
			select {
			case <-c.Done():
				counts[ErrConnReset]++
			default:
			}
		}
		return counts, nil
	}

	trad, err := runScenario(false)
	if err != nil {
		return Table{}, fmt.Errorf("traditional scenario: %w", err)
	}
	zdr, err := runScenario(true)
	if err != nil {
		return Table{}, fmt.Errorf("zdr scenario: %w", err)
	}

	t := Table{
		ID:      "F12",
		Title:   "Client-observed errors during an Origin restart (real sockets)",
		Columns: []string{"error class", "traditional", "zero downtime", "ratio"},
		Notes:   "paper: every class increases under traditional restarts, write timeouts by as much as 16x",
	}
	for _, class := range []ErrorClass{ErrConnReset, ErrStreamAbort, ErrTimeout, ErrWriteTimeout} {
		tc, zc := trad[class], zdr[class]
		ratio := "-"
		switch {
		case zc > 0:
			ratio = fmt.Sprintf("%.1fx", float64(tc)/float64(zc))
		case tc > 0:
			ratio = "inf"
		}
		t.Rows = append(t.Rows, []string{class.String(), fmt.Sprintf("%d", tc), fmt.Sprintf("%d", zc), ratio})
	}
	return t, nil
}

// Fig13ReleaseTimeline regenerates Fig. 13: system metrics for the
// restarted (GR) vs non-restarted (GNR) machine groups during a ZDR batch
// release.
func Fig13ReleaseTimeline() (Table, error) {
	res := cluster.RunRelease(cluster.Config{
		Machines:      100,
		BatchFraction: 0.20,
		DrainPeriod:   10 * time.Minute,
		Strategy:      cluster.ZeroDowntime,
		Tick:          time.Minute,
		Seed:          0xF13,
	})
	t := Table{
		ID:      "F13",
		Title:   "Release timeline: restarted (GR) vs non-restarted (GNR) groups under ZDR",
		Columns: []string{"minute", "RPS GR", "RPS GNR", "CPU GR", "MQTT conns"},
		Notes:   "paper: virtually no change in cluster-wide RPS and MQTT connections; small CPU bump in the restarted group from the parallel instance",
	}
	for i, s := range res.Timeline {
		if i%3 != 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", int(s.T.Minutes())),
			f2(s.RPSRestartedGroup),
			f2(s.RPSNonRestartedGroup),
			f2(s.CPURestartedGroup),
			f2(s.MQTTConnsNormalized),
		})
	}
	return t, nil
}

// Fig16CompletionTime regenerates Fig. 16: distribution of global release
// completion times per tier.
func Fig16CompletionTime() (Table, error) {
	l7 := cluster.CompletionTimes(cluster.CompletionTimeConfig{Tier: workload.TierL7LB, Samples: 40, Seed: 0xF16})
	app := cluster.CompletionTimes(cluster.CompletionTimeConfig{Tier: workload.TierAppServer, Samples: 40, Seed: 0xF16})
	q := func(ds []time.Duration, p float64) string {
		vals := make([]float64, len(ds))
		for i, d := range ds {
			vals[i] = d.Minutes()
		}
		return fmt.Sprintf("%.0f min", workload.Percentile(vals, p))
	}
	return Table{
		ID:      "F16",
		Title:   "Release completion time per tier",
		Columns: []string{"tier", "p25", "p50", "p75"},
		Rows: [][]string{
			{"Proxygen (ZDR, 20-min drains)", q(l7, 0.25), q(l7, 0.5), q(l7, 0.75)},
			{"App Server (drain+replace)", q(app, 0.25), q(app, 0.5), q(app, 0.75)},
		},
		Notes: "paper: Proxygen releases ~1.5h at the median; App Server releases ~25 min",
	}, nil
}

// Fig17TakeoverOverhead regenerates Fig. 17: the cost of Socket Takeover —
// real hand-off latency on this machine plus the modeled CPU envelope of
// running two instances in parallel.
func Fig17TakeoverOverhead() (Table, error) {
	const iterations = 25
	var durations []float64
	for i := 0; i < iterations; i++ {
		set, err := takeover.Listen(
			takeover.VIP{Name: "web", Network: takeover.NetworkTCP, Addr: "127.0.0.1:0"},
			takeover.VIP{Name: "mqtt", Network: takeover.NetworkTCP, Addr: "127.0.0.1:0"},
			takeover.VIP{Name: "quic", Network: takeover.NetworkUDP, Addr: "127.0.0.1:0"},
		)
		if err != nil {
			return Table{}, err
		}
		a, b, err := netx.SocketPair()
		if err != nil {
			set.Close()
			return Table{}, err
		}
		done := make(chan error, 1)
		go func() {
			_, err := takeover.Handoff(a, set, takeover.HandoffOptions{})
			done <- err
		}()
		start := time.Now()
		got, _, err := takeover.Receive(b, takeover.ReceiveOptions{})
		if err != nil {
			return Table{}, err
		}
		if err := <-done; err != nil {
			return Table{}, err
		}
		durations = append(durations, float64(time.Since(start).Microseconds()))
		got.Close()
		set.Close()
		a.Close()
		b.Close()
	}
	return Table{
		ID:      "F17",
		Title:   "Socket Takeover overhead",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"hand-off latency p50 (3 VIPs, real)", fmt.Sprintf("%.0f us", workload.Percentile(durations, 0.5))},
			{"hand-off latency p99 (3 VIPs, real)", fmt.Sprintf("%.0f us", workload.Percentile(durations, 0.99))},
			{"parallel-instance CPU overhead, median (model)", "4%"},
			{"parallel-instance CPU spike at takeover (model)", "10%, decaying over ~60s"},
		},
		Notes: "paper: median CPU/RAM overhead below 5%, spike persisting 60-70s; machine stays available throughout",
	}, nil
}

// TblPPRRetries validates the §4.4 claim that a 10-retry budget never
// exhausts: repeated uploads with the serving app server restarting
// mid-body all succeed.
func TblPPRRetries() (Table, error) {
	const uploads = 5
	tb, err := NewTestbed(TestbedConfig{Apps: 3, Origins: 1})
	if err != nil {
		return Table{}, err
	}
	defer tb.Close()

	appSlots := make([]*appserver.Server, len(tb.Apps))
	copy(appSlots, tb.Apps)
	succeeded, replays := 0, int64(0)
	for u := 0; u < uploads; u++ {
		// Refresh restarted app servers so the pool never runs dry.
		for i, as := range appSlots {
			if as.Draining() {
				na := appserver.New(appserver.Config{
					Name:         fmt.Sprintf("as-%d-r%d", i, u),
					Mode:         appserver.ModePPR,
					DrainPeriod:  50 * time.Millisecond,
					GraceWindow:  300 * time.Millisecond,
					GraceSilence: 60 * time.Millisecond,
				}, nil)
				if _, err := na.Listen(tb.AppAddrs[i]); err == nil {
					appSlots[i] = na
					defer na.Close()
				}
			}
		}
		before := requestsServed(appSlots)
		ok, err := pprUpload(tb, appSlots, before)
		if err != nil {
			return Table{}, fmt.Errorf("upload %d: %w", u, err)
		}
		if ok {
			succeeded++
		}
	}
	replays = tb.Origins[0].Metrics().CounterValue("origin.http.ppr_replays")
	exhausted := tb.Origins[0].Metrics().CounterValue("origin.http.ppr_exhausted")
	return Table{
		ID:      "T-A",
		Title:   "PPR retry budget under repeated mid-upload restarts",
		Columns: []string{"uploads", "succeeded", "379 replays", "budget exhaustions"},
		Rows: [][]string{{
			fmt.Sprintf("%d", uploads),
			fmt.Sprintf("%d", succeeded),
			fmt.Sprintf("%d", replays),
			fmt.Sprintf("%d", exhausted),
		}},
		Notes: "paper: 10 retries 'found enough to never result in a failure due to unavailability of an active server'",
	}, nil
}

func requestsServed(apps []*appserver.Server) []int64 {
	out := make([]int64, len(apps))
	for i, as := range apps {
		out[i] = as.Metrics().CounterValue("appserver.requests")
	}
	return out
}

// pprUpload runs one paced upload through the testbed, restarting the
// serving app server mid-body, and verifies the echoed response.
func pprUpload(tb *Testbed, apps []*appserver.Server, before []int64) (bool, error) {
	conn, err := net.DialTimeout("tcp", tb.Edge.Addr(proxy.VIPWeb), 2*time.Second)
	if err != nil {
		return false, err
	}
	defer conn.Close()

	const total, piece = 3000, 100
	body := bytes.Repeat([]byte("u"), total)
	if _, err := fmt.Fprintf(conn, "POST /up HTTP/1.1\r\nContent-Length: %d\r\n\r\n", total); err != nil {
		return false, err
	}
	restarted := false
	for off := 0; off < total; off += piece {
		if !restarted && off >= total/4 {
			for i, as := range apps {
				if as.Metrics().CounterValue("appserver.requests") > before[i] && !as.Draining() {
					go as.Shutdown()
					restarted = true
					break
				}
			}
		}
		if _, err := conn.Write(body[off : off+piece]); err != nil {
			return false, err
		}
		time.Sleep(15 * time.Millisecond)
	}
	conn.SetReadDeadline(time.Now().Add(15 * time.Second))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return false, err
	}
	echoed, err := http1.ReadFullBody(resp.Body)
	if err != nil {
		return false, err
	}
	return resp.StatusCode == 200 && bytes.Equal(echoed, body), nil
}
