package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zdr/internal/fleet"
)

// TestDisruptionAttributionArtifact is the telemetry CI artifact
// producer: it regenerates T-F, writes each scenario's fleet-merged
// TelemetryReport JSON plus the rendered table to
// $ZDR_RELEASE_REPORT_DIR (CI uploads them) or a test temp dir, and
// audits the books — in BOTH scenarios every injected fault must appear
// as one attributed ledger event and nothing may be unattributed.
func TestDisruptionAttributionArtifact(t *testing.T) {
	dir := os.Getenv("ZDR_RELEASE_REPORT_DIR")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	tab, runs, err := tblDisruptionAttribution(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "T-F" {
		t.Fatalf("ID = %q", tab.ID)
	}
	if err := os.WriteFile(filepath.Join(dir, "disruption-attribution.txt"),
		[]byte(tab.Render()), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, sc := range []string{"gated", "ungated"} {
		run, ok := runs[sc]
		if !ok {
			t.Fatalf("no %s run", sc)
		}
		rep := run.report
		if run.injected == 0 {
			t.Fatalf("%s: chaos injected nothing; scenario is vacuous", sc)
		}
		if rep.ScrapedNodes != rep.TotalNodes || rep.TotalNodes == 0 {
			t.Fatalf("%s: scraped %d of %d nodes", sc, rep.ScrapedNodes, rep.TotalNodes)
		}
		if rep.Requests == 0 || rep.Latency.Count == 0 {
			t.Fatalf("%s: no traffic merged: %+v", sc, rep)
		}
		// The books: injected == attributed, nothing unattributed.
		if got := rep.Disruption.ByKind["fault"]; got != run.injected {
			t.Fatalf("%s: ledger fault events = %d, injectors fired %d", sc, got, run.injected)
		}
		if rep.Disruption.Unattributed != 0 {
			t.Fatalf("%s: unattributed terminal events: %d", sc, rep.Disruption.Unattributed)
		}
		var attributed int64
		for _, c := range rep.CausePhase {
			if strings.HasPrefix(c.Cause, "injected:") {
				attributed += c.Count
			}
		}
		if attributed != run.injected {
			t.Fatalf("%s: cause-phase cells attribute %d of %d injected faults: %+v",
				sc, attributed, run.injected, rep.CausePhase)
		}

		// The artifact on disk reloads to the same headline numbers.
		data, err := os.ReadFile(filepath.Join(dir, "telemetry-report-"+sc+".json"))
		if err != nil {
			t.Fatal(err)
		}
		var back fleet.TelemetryReport
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.Requests != rep.Requests || back.Disruption.Terminal != rep.Disruption.Terminal ||
			back.ScrapedNodes != rep.ScrapedNodes || len(back.CausePhase) != len(rep.CausePhase) {
			t.Fatalf("%s: artifact did not survive the JSON round-trip:\n got %+v\nwant %+v", sc, back, rep)
		}
	}

	// Table shape: both scenarios present, each with its total row and at
	// least one injected-fault attribution cell.
	seenTotal := map[string]bool{}
	seenInjected := map[string]bool{}
	for _, row := range tab.Rows {
		if row[1] == "(all terminal)" {
			seenTotal[row[0]] = true
		}
		if strings.HasPrefix(row[1], "injected:") {
			seenInjected[row[0]] = true
		}
	}
	for _, sc := range []string{"gated", "ungated"} {
		if !seenTotal[sc] || !seenInjected[sc] {
			t.Fatalf("table missing %s rows (total %v, injected %v):\n%s",
				sc, seenTotal[sc], seenInjected[sc], tab.Render())
		}
	}
}
