package experiments

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync/atomic"
	"time"

	"zdr/internal/http1"
	"zdr/internal/katran"
	"zdr/internal/metrics"
	"zdr/internal/proxy"
)

// TblSteeringRelease regenerates the steering-policy release comparison:
// the same rolling restart of one edge (fresh-socket model: drain, exit,
// rebind — the disruptive §6 baseline) under the same request schedule,
// steered by the default Maglev placement policy versus Prequal-assisted
// drain-aware steering.
//
// The point is the disruption window §6 measures: under Maglev the
// draining instance keeps absorbing new flows until the health checker
// evicts it (consecutive probe failures × probe interval), and every
// one of those arrivals is a refused connection. Under Prequal the
// instance's own LOAD probe channel advertises phase=draining within
// one probe interval — long before any health verdict — so new flows
// bleed off it almost immediately, at no tail-latency cost.
func TblSteeringRelease() (Table, error) {
	tab := Table{
		ID:      "T-G",
		Title:   "Rolling release under Maglev-only vs Prequal drain-aware steering",
		Columns: []string{"policy", "requests", "ok", "drain arrivals", "disrupted", "p50", "p99"},
		Notes: "4-edge fleet, one edge fresh-socket-restarted mid-run (drain 400ms, rebind, " +
			"readmit) under an identical seeded request schedule; 'drain arrivals' counts fresh " +
			"flows steered to the restarting edge while its release was in flight. Maglev keeps " +
			"feeding it until health-check eviction (2 failures x 100ms); Prequal hears the " +
			"drain advertisement on its persistent load-probe channel within ~5ms and steers " +
			"away first — strictly fewer arrivals, no p99 regression",
	}
	for _, policy := range []string{"maglev", "prequal"} {
		res, err := steeringRelease(policy)
		if err != nil {
			return Table{}, fmt.Errorf("%s: %w", policy, err)
		}
		tab.Rows = append(tab.Rows, []string{
			policy,
			fmt.Sprintf("%d", res.total),
			fmt.Sprintf("%d", res.ok),
			fmt.Sprintf("%d", res.drainArrivals),
			fmt.Sprintf("%d", res.disrupted),
			fmt.Sprintf("%.0f us", float64(res.p50.Microseconds())),
			fmt.Sprintf("%.0f us", float64(res.p99.Microseconds())),
		})
	}
	return tab, nil
}

// steeringResult is one policy run's outcome.
type steeringResult struct {
	total         int
	ok            int
	disrupted     int
	drainArrivals int
	p50, p99      time.Duration
}

// steeringRelease runs one rolling-release scenario under the named
// steering policy. Everything that varies between runs is pinned — the
// flow schedule is sequential, the Prequal sampler is seeded, and the
// release fires at the same request index — so the two policies see the
// same world.
func steeringRelease(policyName string) (steeringResult, error) {
	const (
		nEdges       = 4
		totalReqs    = 600
		reqPeriod    = 2 * time.Millisecond
		releaseAtReq = 150 // ≈300ms into the run
		drainPeriod  = 400 * time.Millisecond
	)
	var res steeringResult

	newEdge := func(name string, gen int, vipAddrs map[string]string) (*proxy.Proxy, error) {
		p := proxy.New(proxy.Config{
			Name:          name,
			Role:          proxy.RoleEdge,
			Origins:       []string{"127.0.0.1:1"},
			DrainPeriod:   drainPeriod,
			StaticContent: map[string][]byte{"/s": []byte("static")},
			VIPAddrs:      vipAddrs,
			Generation:    gen,
		}, nil)
		if err := p.Listen(); err != nil {
			return nil, err
		}
		return p, nil
	}

	edges := make([]*proxy.Proxy, nEdges)
	for i := range edges {
		e, err := newEdge(fmt.Sprintf("edge-%d", i), 1, nil)
		if err != nil {
			return res, err
		}
		defer e.Close()
		edges[i] = e
	}

	reg := metrics.NewRegistry()
	lb := katran.New("l4-"+policyName, katran.Config{
		HealthyAfter:   1,
		UnhealthyAfter: 2,
		ProbeTimeout:   150 * time.Millisecond,
		FlowCacheSize:  1 << 12,
		Policy: katran.NewPolicy(policyName, katran.PrequalConfig{
			ProbeInterval: 5 * time.Millisecond,
			ProbeTimeout:  150 * time.Millisecond,
			MaxAge:        100 * time.Millisecond,
			ReuseBudget:   8,
			PowerD:        3,
			Seed:          7,
		}, reg),
	}, reg)
	defer lb.Close()
	for _, e := range edges {
		lb.AddBackend(katran.Backend{
			Name:       e.Name(),
			Addr:       e.Addr(proxy.VIPWeb),
			HealthAddr: e.Addr(proxy.VIPHealth),
		}, true)
	}
	lb.StartHealthChecks(100 * time.Millisecond)
	time.Sleep(120 * time.Millisecond) // probe pools warm, health confirmed

	victim := edges[1]
	victimWeb := victim.Addr(proxy.VIPWeb)
	victimHealth := victim.Addr(proxy.VIPHealth)

	// releaseActive brackets the victim's disruption window: from drain
	// start until the replacement generation is bound and serving.
	var releaseActive atomic.Bool
	releaseDone := make(chan error, 1)
	gen2Ch := make(chan *proxy.Proxy, 1)
	release := func() {
		releaseActive.Store(true)
		victim.Shutdown() // drain 400ms, serve established conns, exit
		// Fresh-socket restart: the replacement rebinds the SAME VIPs
		// (the traditional restart model — the §6 baseline the paper
		// replaces with Socket Takeover). The rebind can race the old
		// instance's teardown; retry briefly.
		var gen2 *proxy.Proxy
		var err error
		deadline := time.Now().Add(2 * time.Second)
		for {
			gen2, err = newEdge("edge-1-g2", 2, map[string]string{
				proxy.VIPWeb:    victimWeb,
				proxy.VIPHealth: victimHealth,
			})
			if err == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		releaseActive.Store(false)
		gen2Ch <- gen2
		releaseDone <- err
	}

	latencies := make([]time.Duration, 0, totalReqs)
	for i := 0; i < totalReqs; i++ {
		if i == releaseAtReq {
			go release()
		}
		res.total++
		b, err := lb.Steer(uint64(1_000_000 + i)) // fresh flow per request
		if err != nil {
			res.disrupted++
			time.Sleep(reqPeriod)
			continue
		}
		if b.Name == victim.Name() && releaseActive.Load() {
			res.drainArrivals++
		}
		t0 := time.Now()
		if err := steerGET(b.Addr); err != nil {
			res.disrupted++
		} else {
			res.ok++
			latencies = append(latencies, time.Since(t0))
		}
		time.Sleep(reqPeriod)
	}
	if gen2 := <-gen2Ch; gen2 != nil {
		defer gen2.Close()
	}
	if err := <-releaseDone; err != nil {
		return res, fmt.Errorf("replacement generation never bound: %w", err)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		res.p50 = latencies[n/2]
		res.p99 = latencies[n*99/100]
	}
	return res, nil
}

// steerGET issues one GET /s to a steered edge and drains the response.
func steerGET(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/s", nil, 0)); err != nil {
		return err
	}
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return err
	}
	if _, err := http1.ReadFullBody(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != 200 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
