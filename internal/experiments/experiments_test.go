package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// num parses a formatted cell back to a float (stripping %, x, units).
func num(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSpace(cell)
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "x")
	s = strings.TrimSuffix(s, " min")
	s = strings.TrimSuffix(s, " us")
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func TestTableRender(t *testing.T) {
	tab := Table{
		ID: "X", Title: "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "n",
	}
	out := tab.Render()
	if !strings.Contains(out, "== X: demo ==") || !strings.Contains(out, "333") || !strings.Contains(out, "note: n") {
		t.Fatalf("render:\n%s", out)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | bb |") {
		t.Fatalf("markdown:\n%s", md)
	}
}

func TestAllListsEveryFigure(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		ids[e.ID] = true
	}
	for _, want := range []string{"F2a", "F2b", "F2c", "F2d", "F3a", "F3b", "F8", "F9", "F10", "F11", "F12", "F13", "F15", "F16", "F17", "T-A"} {
		if !ids[want] {
			t.Fatalf("experiment %s missing from All()", want)
		}
	}
}

func TestFig2aShape(t *testing.T) {
	tab, err := Fig2aReleaseCadence()
	if err != nil {
		t.Fatal(err)
	}
	l7med := num(t, tab.Rows[0][2])
	appMed := num(t, tab.Rows[1][2])
	if l7med < 2 || l7med > 6 {
		t.Fatalf("L7LB median %v", l7med)
	}
	if appMed < 80 || appMed > 130 {
		t.Fatalf("App median %v", appMed)
	}
}

func TestFig2bShape(t *testing.T) {
	tab, err := Fig2bReleaseCauses()
	if err != nil {
		t.Fatal(err)
	}
	// binary-update row first; ~47%
	bin := num(t, tab.Rows[0][1])
	if bin < 44 || bin > 50 {
		t.Fatalf("binary share %v%%", bin)
	}
}

func TestFig2cShape(t *testing.T) {
	tab, err := Fig2cCommitsPerRelease()
	if err != nil {
		t.Fatal(err)
	}
	if num(t, tab.Rows[0][3]) < 10 || num(t, tab.Rows[0][4]) > 100 {
		t.Fatalf("commit range outside [10,100]: %v", tab.Rows[0])
	}
}

func TestFig2dShape(t *testing.T) {
	tab, err := Fig2dReuseportMisrouting()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if num(t, row[1]) == 0 && num(t, row[2]) == 0 {
			t.Fatalf("no misrouting for %s flows", row[0])
		}
	}
}

func TestFig3aShape(t *testing.T) {
	tab, err := Fig3aCapacityTimeline()
	if err != nil {
		t.Fatal(err)
	}
	min := 101.0
	for _, row := range tab.Rows {
		if v := num(t, row[1]); v < min {
			min = v
		}
	}
	if min > 85 {
		t.Fatalf("capacity never dropped below 85%% (min %v)", min)
	}
}

func TestFig3bShape(t *testing.T) {
	tab, err := Fig3bReconnectCPU()
	if err != nil {
		t.Fatal(err)
	}
	// The 10% row must show ~20% extra CPU.
	extra := num(t, tab.Rows[1][3])
	if extra < 15 || extra > 25 {
		t.Fatalf("10%% restart extra CPU = %v%%, want ~20%%", extra)
	}
}

func TestFig8Shape(t *testing.T) {
	tab, err := Fig8IdleCPU()
	if err != nil {
		t.Fatal(err)
	}
	hard5 := num(t, tab.Rows[0][1])
	hard20 := num(t, tab.Rows[1][1])
	zdr20 := num(t, tab.Rows[3][1])
	if !(zdr20 > hard5 && hard5 > hard20) {
		t.Fatalf("idle CPU ordering wrong: zdr20=%v hard5=%v hard20=%v", zdr20, hard5, hard20)
	}
	if zdr20 < 90 {
		t.Fatalf("ZDR idle CPU %v%%, want near baseline", zdr20)
	}
}

func TestFig9Shape(t *testing.T) {
	tab, err := Fig9DCRTimeline()
	if err != nil {
		t.Fatal(err)
	}
	// Sum over post-restart buckets: DCR deliveries must be far above
	// woutDCR's trough, and woutDCR must show a CONNACK spike.
	var dcrMin, noMin float64 = 1e18, 1e18
	var noAckSpike float64
	for i, row := range tab.Rows {
		if i < 4 || i > 7 { // around the restart
			continue
		}
		if v := num(t, row[1]); v < dcrMin {
			dcrMin = v
		}
		if v := num(t, row[3]); v < noMin {
			noMin = v
		}
		if v := num(t, row[4]); v > noAckSpike {
			noAckSpike = v
		}
	}
	if dcrMin == 0 {
		t.Fatalf("DCR publishes dropped to zero:\n%s", tab.Render())
	}
	if noMin >= dcrMin {
		t.Fatalf("woutDCR trough (%v) not below DCR trough (%v):\n%s", noMin, dcrMin, tab.Render())
	}
	if noAckSpike == 0 {
		t.Fatalf("no reconnect ACK spike in woutDCR:\n%s", tab.Render())
	}
}

func TestFig10Shape(t *testing.T) {
	tab, err := Fig10UDPMisrouting()
	if err != nil {
		t.Fatal(err)
	}
	trad := num(t, tab.Rows[0][2])
	zdr := num(t, tab.Rows[1][2])
	if zdr != 0 {
		t.Fatalf("real takeover misrouted %v packets", zdr)
	}
	if trad < 100 {
		t.Fatalf("traditional model misrouted only %v", trad)
	}
	if num(t, tab.Rows[1][3]) == 0 {
		t.Fatal("user-space forwarding unused")
	}
}

func TestFig11Shape(t *testing.T) {
	tab, err := Fig11PPRDisruption()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("days = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		pct := num(t, row[3])
		if pct <= 0 || pct > 0.5 {
			t.Fatalf("day %s: %v%% without PPR", row[0], pct)
		}
		if num(t, row[4]) != 0 {
			t.Fatalf("day %s: PPR failures", row[0])
		}
	}
}

func TestFig12Shape(t *testing.T) {
	tab, err := Fig12ProxyErrors()
	if err != nil {
		t.Fatal(err)
	}
	var tradTotal, zdrTotal float64
	for _, row := range tab.Rows {
		tradTotal += num(t, row[1])
		zdrTotal += num(t, row[2])
	}
	if tradTotal == 0 {
		t.Fatalf("traditional restart produced no errors:\n%s", tab.Render())
	}
	if zdrTotal*3 >= tradTotal {
		t.Fatalf("ZDR errors (%v) not clearly below traditional (%v):\n%s", zdrTotal, tradTotal, tab.Render())
	}
}

func TestFig13Shape(t *testing.T) {
	tab, err := Fig13ReleaseTimeline()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if v := num(t, row[1]); v < 0.9 {
			t.Fatalf("GR RPS fell to %v under ZDR", v)
		}
		if v := num(t, row[4]); v < 0.99 {
			t.Fatalf("MQTT conns fell to %v under ZDR", v)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	tab, err := Fig15RestartHours()
	if err != nil {
		t.Fatal(err)
	}
	// Proxygen density at 14:00 must dwarf 02:00; app server roughly flat.
	var l7Peak, l7Night, appPeak, appNight float64
	for _, row := range tab.Rows {
		switch row[0] {
		case "14:00":
			l7Peak, appPeak = num(t, row[1]), num(t, row[2])
		case "02:00":
			l7Night, appNight = num(t, row[1]), num(t, row[2])
		}
	}
	if l7Peak < 5*l7Night {
		t.Fatalf("Proxygen peak density %v not concentrated vs night %v", l7Peak, l7Night)
	}
	if appNight == 0 || appPeak/appNight > 1.5 {
		t.Fatalf("App Server density not flat: peak %v night %v", appPeak, appNight)
	}
}

func TestFig16Shape(t *testing.T) {
	tab, err := Fig16CompletionTime()
	if err != nil {
		t.Fatal(err)
	}
	l7 := num(t, tab.Rows[0][2])
	app := num(t, tab.Rows[1][2])
	if l7 < 60 || l7 > 180 {
		t.Fatalf("Proxygen median %v min, want ~90", l7)
	}
	if app < 10 || app > 50 {
		t.Fatalf("App Server median %v min, want ~25", app)
	}
	if app >= l7 {
		t.Fatal("App Server releases should be faster")
	}
}

func TestFig17Shape(t *testing.T) {
	tab, err := Fig17TakeoverOverhead()
	if err != nil {
		t.Fatal(err)
	}
	p50 := num(t, tab.Rows[0][1])
	p99 := num(t, tab.Rows[1][1])
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("hand-off latency p50=%v p99=%v", p50, p99)
	}
	// A hand-off is a couple of syscalls; it must be well under 100ms.
	if p99 > 100_000 {
		t.Fatalf("hand-off p99 = %v us, implausibly slow", p99)
	}
}

func TestTblPPRRetriesShape(t *testing.T) {
	tab, err := TblPPRRetries()
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	if num(t, row[0]) != num(t, row[1]) {
		t.Fatalf("not all uploads succeeded: %v", row)
	}
	if num(t, row[2]) == 0 {
		t.Fatalf("no replays happened — restarts missed the uploads: %v", row)
	}
	if num(t, row[3]) != 0 {
		t.Fatalf("retry budget exhausted: %v", row)
	}
}

func TestTblHeadlineBenefitsShape(t *testing.T) {
	tab, err := TblHeadlineBenefits()
	if err != nil {
		t.Fatal(err)
	}
	app := num(t, strings.TrimSuffix(tab.Rows[0][2], " min"))
	l7 := num(t, strings.TrimSuffix(tab.Rows[1][2], " min"))
	if app < 10 || app > 50 {
		t.Fatalf("app release time %v min", app)
	}
	if l7 < 60 || l7 > 180 {
		t.Fatalf("l7 release time %v min", l7)
	}
	gain := num(t, strings.TrimPrefix(tab.Rows[2][2], "+"))
	if gain < 15 || gain > 25 {
		t.Fatalf("capacity gain %v%%, want ~20%%", gain)
	}
}

func TestTblPeakHourReleaseShape(t *testing.T) {
	tab, err := TblPeakHourRelease()
	if err != nil {
		t.Fatal(err)
	}
	// Row order: hard@45, hard@85, zdr@45, zdr@85.
	if tab.Rows[1][3] != "true" {
		t.Fatalf("HardRestart at peak must saturate: %v", tab.Rows[1])
	}
	if tab.Rows[0][3] != "false" || tab.Rows[2][3] != "false" || tab.Rows[3][3] != "false" {
		t.Fatalf("only HardRestart@peak should saturate:\n%s", tab.Render())
	}
}
