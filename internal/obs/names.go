package obs

// Canonical span names for the release path. Every span recorded by
// internal/takeover, internal/core, and internal/proxy uses one of these
// constants, so the taxonomy asserted by chaos trace audits and release
// reports has a single authoritative list.
//
// Fig. 5 hand-off steps (receiver-rooted trace, sender spans stitched in
// via the ack frame's trace context):
//
//	takeover.step.A   dial the old instance's takeover socket
//	takeover.step.B   manifest + FD frames read
//	takeover.step.C   listeners reconstructed from the FDs
//	takeover.step.D   arm + single ACK (one-shot peers only)
//	takeover.step.E   sender's drain-start confirmation awaited
//	takeover.step.F   health-check responsibility assumed
//
// Two-phase (ProtoTwoPhase) spans, recorded on BOTH sides with a "side"
// attribute:
//
//	takeover.prepare  arm + PREPARE-ACK (receiver) / manifest→commit (sender)
//	takeover.commit   commit delivery and drain cut-over
//
// Drain-undo (ProtoDrainUndo) spans:
//
//	takeover.ready    the post-commit lease window: receiver runs its
//	                  readiness gate and sends READY; sender awaits it
//	takeover.undo     lease broke before READY — the sender re-arms its
//	                  listeners from the retained dups and resumes
//	                  serving (attrs: retained_fds, cause)
const (
	SpanTakeoverServe   = "takeover.serve"
	SpanTakeoverHandoff = "takeover.handoff"
	SpanTakeoverStepA   = "takeover.step.A"
	SpanTakeoverStepB   = "takeover.step.B"
	SpanTakeoverStepC   = "takeover.step.C"
	SpanTakeoverStepD   = "takeover.step.D"
	SpanTakeoverStepE   = "takeover.step.E"
	SpanTakeoverStepF   = "takeover.step.F"
	SpanTakeoverPrepare = "takeover.prepare"
	SpanTakeoverCommit  = "takeover.commit"
	SpanTakeoverReady   = "takeover.ready"
	SpanTakeoverUndo    = "takeover.undo"
	SpanProxyDrain      = "proxy.drain"
	SpanSlotRestart     = "slot.restart"
	SpanSlotDrain       = "slot.drain"
	SpanRelease         = "release"
	SpanReleaseBatch    = "release.batch"
)

// Fleet rollout spans, recorded by the internal/fleet orchestrator:
//
//	rollout           one staged fleet release end to end
//	rollout.batch     one canary/expansion batch (attrs: batch, nodes)
//	rollout.gate      the health-gate observation window + decision
//	rollout.rollback  a failed batch unwinding via drain-undo
const (
	SpanRollout         = "rollout"
	SpanRolloutBatch    = "rollout.batch"
	SpanRolloutGate     = "rollout.gate"
	SpanRolloutRollback = "rollout.rollback"
)
