package obs

import (
	"math"
	runtimemetrics "runtime/metrics"
	"time"

	"zdr/internal/metrics"
)

// Runtime gauge names published by StartRuntimeStats.
const (
	GaugeGoroutines      = "runtime.goroutines"
	GaugeHeapBytes       = "runtime.heap_bytes"
	GaugeGCPauseP99Ns    = "runtime.gc_pause_p99_ns"
	GaugeSchedLatP99Ns   = "runtime.sched_latency_p99_ns"
	runtimeSampleDefault = time.Second
)

// runtimeSamples are the runtime/metrics series the sampler reads. The
// two histograms are cumulative since process start, which is the right
// shape for a p99 gauge: it answers "what has the tail looked like",
// matching how the paper's release engineers watch a host during a
// rollout rather than a windowed SLO query.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// StartRuntimeStats samples the Go runtime into reg every interval
// (default 1s): goroutine count, live heap bytes, and the p99 of GC
// pause and scheduler latency (nanoseconds, from runtime/metrics
// histograms). Daemons start it behind their -profile flag alongside
// the pprof endpoints. The returned stop function is idempotent.
func StartRuntimeStats(reg *metrics.Registry, interval time.Duration) (stop func()) {
	if reg == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = runtimeSampleDefault
	}
	samples := make([]runtimemetrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	sampleOnce := func() {
		runtimemetrics.Read(samples)
		for _, s := range samples {
			switch s.Name {
			case "/sched/goroutines:goroutines":
				reg.Gauge(GaugeGoroutines).Set(asInt64(s.Value))
			case "/memory/classes/heap/objects:bytes":
				reg.Gauge(GaugeHeapBytes).Set(asInt64(s.Value))
			case "/gc/pauses:seconds":
				reg.Gauge(GaugeGCPauseP99Ns).Set(histP99Ns(s.Value))
			case "/sched/latencies:seconds":
				reg.Gauge(GaugeSchedLatP99Ns).Set(histP99Ns(s.Value))
			}
		}
	}
	sampleOnce()
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				sampleOnce()
			}
		}
	}()
	var stopped bool
	return func() {
		if !stopped {
			stopped = true
			close(done)
		}
	}
}

func asInt64(v runtimemetrics.Value) int64 {
	if v.Kind() != runtimemetrics.KindUint64 {
		return 0
	}
	u := v.Uint64()
	if u > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(u)
}

// histP99Ns estimates the 0.99 quantile of a runtime/metrics seconds
// histogram and returns it in nanoseconds.
func histP99Ns(v runtimemetrics.Value) int64 {
	if v.Kind() != runtimemetrics.KindFloat64Histogram {
		return 0
	}
	h := v.Float64Histogram()
	if h == nil {
		return 0
	}
	q := runtimeHistQuantile(h, 0.99)
	if math.IsNaN(q) || math.IsInf(q, 0) || q < 0 {
		return 0
	}
	return int64(q * 1e9)
}

// runtimeHistQuantile reads the q-quantile from a runtime/metrics
// histogram: Counts[i] covers [Buckets[i], Buckets[i+1]). The answer is
// the upper boundary of the bucket holding the target rank (a finite
// conservative bound; ±Inf edges fall back to the nearest finite one).
func runtimeHistQuantile(h *runtimemetrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 || len(h.Buckets) < 2 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				return h.Buckets[i]
			}
			return ub
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
