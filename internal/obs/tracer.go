// Package obs is the observability layer: a span-based release tracer,
// Prometheus text exposition for metrics.Registry, and a stdlib-only
// admin HTTP endpoint (/metrics, /healthz, /debug/release).
//
// The tracer is deliberately tiny — Dapper-shaped, in-process, with a
// textual context (`zdr1-<trace-id>-<span-id>`) that crosses process and
// tier boundaries in the `x-zdr-trace` header (HTTP/1.1 and h2t stream
// headers), MQTT CONNECT properties, and the takeover manifest/ack.
// Every method is safe on a nil *Tracer or nil *Span, so instrumented
// code pays nothing when tracing is off.
package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the header/property key carrying a SpanContext across
// tiers: HTTP/1.1 requests, h2t stream headers, MQTT CONNECT properties,
// and takeover manifest metadata all use the same key.
const TraceHeader = "x-zdr-trace"

// SpanContext identifies a position in a trace. The zero value is "no
// trace".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context refers to a real span.
func (c SpanContext) Valid() bool { return c.TraceID != 0 && c.SpanID != 0 }

// String renders the wire form "zdr1-<trace-id>-<span-id>" (hex), or ""
// for an invalid context.
func (c SpanContext) String() string {
	if !c.Valid() {
		return ""
	}
	return fmt.Sprintf("zdr1-%016x-%016x", c.TraceID, c.SpanID)
}

// ParseSpanContext parses the wire form produced by String. It returns
// false for empty or malformed input.
func ParseSpanContext(s string) (SpanContext, bool) {
	if len(s) != 5+16+1+16 || s[:5] != "zdr1-" || s[21] != '-' {
		return SpanContext{}, false
	}
	tid, err1 := strconv.ParseUint(s[5:21], 16, 64)
	sid, err2 := strconv.ParseUint(s[22:], 16, 64)
	if err1 != nil || err2 != nil {
		return SpanContext{}, false
	}
	c := SpanContext{TraceID: tid, SpanID: sid}
	if !c.Valid() {
		return SpanContext{}, false
	}
	return c, true
}

// SpanRecord is the immutable, JSON-friendly form of a finished (or
// in-flight) span. Timestamps are wall-clock UnixNano so records
// round-trip through JSON and compare with reflect.DeepEqual.
type SpanRecord struct {
	Name          string            `json:"name"`
	Service       string            `json:"service,omitempty"`
	TraceID       string            `json:"trace_id"`
	SpanID        string            `json:"span_id"`
	ParentID      string            `json:"parent_id,omitempty"`
	StartUnixNano int64             `json:"start_unix_nano"`
	EndUnixNano   int64             `json:"end_unix_nano,omitempty"` // 0 while in flight
	Attrs         map[string]string `json:"attrs,omitempty"`
	Error         string            `json:"error,omitempty"`
}

// Duration is the span's wall-clock duration (0 while in flight).
func (r SpanRecord) Duration() time.Duration {
	if r.EndUnixNano == 0 {
		return 0
	}
	return time.Duration(r.EndUnixNano - r.StartUnixNano)
}

// SpanNode is a SpanRecord with its children, forming the span tree
// embedded in release reports.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode `json:"children,omitempty"`
}

// Span is a live span. All methods are nil-safe.
type Span struct {
	tracer *Tracer
	ctx    SpanContext
	parent uint64

	mu    sync.Mutex
	name  string
	start time.Time
	attrs map[string]string
	err   string
	ended bool
}

// Context returns the span's context (zero for a nil span), for
// propagation to children local or remote.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.name
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[k] = v
}

// Fail marks the span as errored. Fail(nil) is a no-op, so it composes
// with `defer func() { sp.Fail(err); sp.End() }()`.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err.Error()
	s.mu.Unlock()
}

// StartChild opens a child span under this span. On a nil span it
// returns nil, so call chains degrade to no-ops when tracing is off.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.startSpan(name, s.ctx.TraceID, s.ctx.SpanID)
}

// End finishes the span and moves it into the tracer's finished set.
// Double-End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := s.recordLocked()
	rec.EndUnixNano = s.start.Add(time.Since(s.start)).UnixNano()
	s.mu.Unlock()
	s.tracer.finish(s.ctx.SpanID, rec)
}

// recordLocked snapshots the span. Callers hold s.mu.
func (s *Span) recordLocked() SpanRecord {
	rec := SpanRecord{
		Name:          s.name,
		Service:       s.tracer.service,
		TraceID:       fmt.Sprintf("%016x", s.ctx.TraceID),
		SpanID:        fmt.Sprintf("%016x", s.ctx.SpanID),
		StartUnixNano: s.start.UnixNano(),
		Error:         s.err,
	}
	if s.parent != 0 {
		rec.ParentID = fmt.Sprintf("%016x", s.parent)
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			rec.Attrs[k] = v
		}
	}
	return rec
}

// DefaultFinishedCap is the default bound on retained finished spans.
// It is far above what a traced release produces (a few dozen spans per
// hand-off) while keeping a long-lived daemon tracing per-request spans
// (appserver.request) at a fixed memory ceiling instead of growing until
// Finished() happens to be drained.
const DefaultFinishedCap = 16384

// Tracer records spans for one service instance. The zero of *Tracer
// (nil) is a valid no-op tracer. Finished spans are retained in a
// bounded ring (SetFinishedCap): when it fills, the oldest records are
// dropped and counted in Dropped.
type Tracer struct {
	service string

	mu       sync.Mutex
	open     map[uint64]*Span
	finished []SpanRecord // ring once len reaches cap; head marks the oldest
	head     int
	cap      int
	dropped  uint64
	onStart  func(*Span)
}

// NewTracer returns a tracer whose spans carry the given service name,
// retaining up to DefaultFinishedCap finished spans.
func NewTracer(service string) *Tracer {
	return &Tracer{service: service, open: map[uint64]*Span{}, cap: DefaultFinishedCap}
}

// SetFinishedCap bounds the finished-span ring to n records (n <= 0
// restores DefaultFinishedCap). If more than n spans are currently
// retained, the oldest are dropped immediately and counted in Dropped.
func (t *Tracer) SetFinishedCap(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultFinishedCap
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if over := len(t.finished) - n; over > 0 {
		lin := t.finishedLocked()
		t.finished = lin[over:]
		t.dropped += uint64(over)
	} else if t.head != 0 {
		t.finished = t.finishedLocked()
	}
	t.head = 0
	t.cap = n
}

// Dropped reports how many finished spans have been evicted from the
// ring since the last Reset.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SetSpanStartHook installs fn to run synchronously inside every
// StartSpan/StartChild, after the span exists but before control returns
// to the instrumented code. The chaos suite uses it to inject stalls
// attributed to exactly one span.
func (t *Tracer) SetSpanStartHook(fn func(*Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onStart = fn
	t.mu.Unlock()
}

// StartSpan opens a span. If parent is valid the span joins that trace
// as a remote child; otherwise a fresh trace is started. Nil tracers
// return nil spans.
func (t *Tracer) StartSpan(name string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	if parent.Valid() {
		return t.startSpan(name, parent.TraceID, parent.SpanID)
	}
	return t.startSpan(name, newID(), 0)
}

func (t *Tracer) startSpan(name string, traceID, parentID uint64) *Span {
	s := &Span{
		tracer: t,
		ctx:    SpanContext{TraceID: traceID, SpanID: newID()},
		parent: parentID,
		name:   name,
		start:  time.Now(),
	}
	t.mu.Lock()
	t.open[s.ctx.SpanID] = s
	hook := t.onStart
	t.mu.Unlock()
	if hook != nil {
		hook(s)
	}
	return s
}

func (t *Tracer) finish(id uint64, rec SpanRecord) {
	t.mu.Lock()
	delete(t.open, id)
	// cap <= 0 (a Tracer literal that bypassed NewTracer) means unbounded,
	// preserving the zero value's historical behaviour.
	if t.cap <= 0 || len(t.finished) < t.cap {
		t.finished = append(t.finished, rec)
	} else {
		// Ring full: drop-oldest. Memory stays flat no matter how long
		// the daemon traces for.
		t.finished[t.head] = rec
		t.head++
		if t.head == len(t.finished) {
			t.head = 0
		}
		t.dropped++
	}
	t.mu.Unlock()
}

// Finished returns the retained finished spans in End order (oldest
// first). When more spans ended than the ring holds, only the newest
// SetFinishedCap records are returned; see Dropped.
func (t *Tracer) Finished() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.finishedLocked()
}

// finishedLocked linearises the ring (oldest first). Callers hold t.mu.
func (t *Tracer) finishedLocked() []SpanRecord {
	out := make([]SpanRecord, 0, len(t.finished))
	out = append(out, t.finished[t.head:]...)
	out = append(out, t.finished[:t.head]...)
	return out
}

// InFlight snapshots the spans that have started but not ended, for
// /debug/release.
func (t *Tracer) InFlight() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, 0, len(t.open))
	for _, s := range t.open {
		spans = append(spans, s)
	}
	t.mu.Unlock()
	out := make([]SpanRecord, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		out = append(out, s.recordLocked())
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUnixNano != out[j].StartUnixNano {
			return out[i].StartUnixNano < out[j].StartUnixNano
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// Reset discards all finished spans and zeroes the dropped counter
// (open spans keep running).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.finished = nil
	t.head = 0
	t.dropped = 0
	t.mu.Unlock()
}

// BuildTree assembles records into forests: children are attached to
// their parent when the parent is present, ordered by start time (ties
// keep record order). Spans whose parent is absent (root spans, or
// children of a remote span not in recs) become roots.
func BuildTree(recs []SpanRecord) []*SpanNode {
	nodes := make([]*SpanNode, len(recs))
	byID := make(map[string]*SpanNode, len(recs))
	for i, r := range recs {
		nodes[i] = &SpanNode{SpanRecord: r}
		byID[r.SpanID] = nodes[i]
	}
	var roots []*SpanNode
	for _, n := range nodes {
		if p, ok := byID[n.ParentID]; ok && n.ParentID != "" && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortNodes func(ns []*SpanNode)
	sortNodes = func(ns []*SpanNode) {
		sort.SliceStable(ns, func(i, j int) bool {
			return ns[i].StartUnixNano < ns[j].StartUnixNano
		})
		for _, n := range ns {
			sortNodes(n.Children)
		}
	}
	sortNodes(roots)
	return roots
}

// Walk visits every node in the forest depth-first.
func Walk(roots []*SpanNode, fn func(*SpanNode)) {
	for _, n := range roots {
		fn(n)
		Walk(n.Children, fn)
	}
}

// ID generation: a per-process random base (crypto/rand, falling back to
// the clock) mixed with an atomic counter through splitmix64. Never
// returns 0, never repeats within a process, and needs no locking.
var (
	idBase    = seedIDBase()
	idCounter atomic.Uint64
)

func seedIDBase() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}

func newID() uint64 {
	for {
		x := idBase + idCounter.Add(1)*0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}
