package obs

import (
	"encoding/json"
	"errors"
	"reflect"
	"strconv"
	"testing"
	"time"
)

func TestSpanContextStringParseRoundTrip(t *testing.T) {
	c := SpanContext{TraceID: 0xdeadbeef, SpanID: 0x1234567890abcdef}
	s := c.String()
	got, ok := ParseSpanContext(s)
	if !ok || got != c {
		t.Fatalf("ParseSpanContext(%q) = %+v, %v; want %+v", s, got, ok, c)
	}
}

func TestSpanContextInvalid(t *testing.T) {
	if s := (SpanContext{}).String(); s != "" {
		t.Fatalf("zero context String() = %q, want empty", s)
	}
	for _, bad := range []string{
		"",
		"zdr1-",
		"zdr1-0000000000000000-0000000000000001",  // zero trace id
		"zdr1-0000000000000001-0000000000000000",  // zero span id
		"zdr2-0000000000000001-0000000000000002",  // wrong version
		"zdr1-000000000000000g-0000000000000002",  // bad hex
		"zdr1-0000000000000001_0000000000000002",  // bad separator
		"zdr1-0000000000000001-00000000000000020", // too long
		"zdr1-0000000000000001-000000000000002",   // too short
	} {
		if _, ok := ParseSpanContext(bad); ok {
			t.Errorf("ParseSpanContext(%q) accepted malformed input", bad)
		}
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x", SpanContext{})
	if sp != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	// Every method must be callable on the nils.
	tr.SetSpanStartHook(func(*Span) {})
	tr.Reset()
	if got := tr.Finished(); got != nil {
		t.Fatalf("nil tracer Finished() = %v", got)
	}
	if got := tr.InFlight(); got != nil {
		t.Fatalf("nil tracer InFlight() = %v", got)
	}
	sp.SetAttr("k", "v")
	sp.Fail(errors.New("boom"))
	sp.End()
	if sp.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
	if sp.Name() != "" {
		t.Fatal("nil span has a name")
	}
	if child := sp.StartChild("y"); child != nil {
		t.Fatal("nil span returned a non-nil child")
	}
}

func TestTracerSpanLifecycle(t *testing.T) {
	tr := NewTracer("svc")
	root := tr.StartSpan("release", SpanContext{})
	if !root.Context().Valid() {
		t.Fatal("root context invalid")
	}
	child := root.StartChild("slot.restart")
	child.SetAttr("slot", "edge")
	if got := tr.InFlight(); len(got) != 2 {
		t.Fatalf("InFlight = %d spans, want 2", len(got))
	}
	child.Fail(errors.New("kaput"))
	child.End()
	child.End() // double End is a no-op
	root.End()
	fin := tr.Finished()
	if len(fin) != 2 {
		t.Fatalf("Finished = %d spans, want 2", len(fin))
	}
	// End order: child first.
	if fin[0].Name != "slot.restart" || fin[1].Name != "release" {
		t.Fatalf("finish order = %q, %q", fin[0].Name, fin[1].Name)
	}
	if fin[0].ParentID != fin[1].SpanID {
		t.Fatalf("child ParentID %q != root SpanID %q", fin[0].ParentID, fin[1].SpanID)
	}
	if fin[0].TraceID != fin[1].TraceID {
		t.Fatal("child left the root's trace")
	}
	if fin[0].Error != "kaput" || fin[0].Attrs["slot"] != "edge" {
		t.Fatalf("child record = %+v", fin[0])
	}
	if fin[0].Duration() < 0 || fin[0].EndUnixNano < fin[0].StartUnixNano {
		t.Fatalf("non-positive child duration: %+v", fin[0])
	}
	if got := tr.InFlight(); len(got) != 0 {
		t.Fatalf("InFlight after End = %d spans", len(got))
	}
	tr.Reset()
	if got := tr.Finished(); len(got) != 0 {
		t.Fatal("Reset kept finished spans")
	}
}

func TestStartSpanJoinsRemoteParent(t *testing.T) {
	remoteTr := NewTracer("edge")
	remote := remoteTr.StartSpan("proxy.drain", SpanContext{})
	wire := remote.Context().String()

	parsed, ok := ParseSpanContext(wire)
	if !ok {
		t.Fatal(ok)
	}
	local := NewTracer("origin")
	sp := local.StartSpan("dcr.reconnect", parsed)
	sp.End()
	rec := local.Finished()[0]
	wantTrace := remote.Context().TraceID
	if got, _ := ParseSpanContext("zdr1-" + rec.TraceID + "-" + rec.SpanID); got.TraceID != wantTrace {
		t.Fatalf("joined trace id %s, want %016x", rec.TraceID, wantTrace)
	}
	if got, _ := ParseSpanContext("zdr1-" + rec.TraceID + "-" + rec.ParentID); got.SpanID != remote.Context().SpanID {
		t.Fatalf("parent id %s, want %016x", rec.ParentID, remote.Context().SpanID)
	}
}

func TestSpanStartHookRunsSynchronously(t *testing.T) {
	tr := NewTracer("svc")
	var seen []string
	tr.SetSpanStartHook(func(sp *Span) {
		seen = append(seen, sp.Name())
		time.Sleep(5 * time.Millisecond) // stall charged to the span
	})
	sp := tr.StartSpan("takeover.step.C", SpanContext{})
	sp.End()
	if len(seen) != 1 || seen[0] != "takeover.step.C" {
		t.Fatalf("hook saw %v", seen)
	}
	if d := tr.Finished()[0].Duration(); d < 5*time.Millisecond {
		t.Fatalf("stall not attributed to the span: duration %v", d)
	}
}

func TestSpanRecordJSONRoundTrip(t *testing.T) {
	tr := NewTracer("svc")
	root := tr.StartSpan("release", SpanContext{})
	c1 := root.StartChild("slot.restart")
	c1.SetAttr("slot", "origin")
	c2 := c1.StartChild("takeover.handoff")
	c2.Fail(errors.New("injected"))
	c2.End()
	c1.End()
	root.End()

	recs := tr.Finished()
	b, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	var back []SpanRecord
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, back) {
		t.Fatalf("records did not survive JSON round-trip:\n%+v\n%+v", recs, back)
	}

	tree := BuildTree(recs)
	tb, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var treeBack []*SpanNode
	if err := json.Unmarshal(tb, &treeBack); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tree, treeBack) {
		t.Fatal("span tree did not survive JSON round-trip")
	}
}

func TestBuildTree(t *testing.T) {
	tr := NewTracer("svc")
	root := tr.StartSpan("release", SpanContext{})
	b1 := root.StartChild("release.batch")
	time.Sleep(time.Millisecond) // order batches by start time
	b2 := root.StartChild("release.batch")
	b2.End()
	b1.End()
	root.End()
	// A span whose parent is remote (not in the record set) becomes a root.
	orphan := tr.StartSpan("dcr.reconnect", SpanContext{TraceID: 7, SpanID: 9})
	orphan.End()

	roots := BuildTree(tr.Finished())
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2 (release + orphan)", len(roots))
	}
	var release *SpanNode
	for _, r := range roots {
		if r.Name == "release" {
			release = r
		}
	}
	if release == nil {
		t.Fatal("release root missing")
	}
	if len(release.Children) != 2 {
		t.Fatalf("release children = %d, want 2", len(release.Children))
	}
	if release.Children[0].StartUnixNano > release.Children[1].StartUnixNano {
		t.Fatal("children not ordered by start time")
	}

	var walked int
	Walk(roots, func(*SpanNode) { walked++ })
	if walked != 4 {
		t.Fatalf("Walk visited %d nodes, want 4", walked)
	}
}

// TestFinishedRingBoundsMemory is the regression test for the unbounded
// finished-span growth bug: a long-lived daemon tracing per-request
// spans (appserver.request) must hold no more than the configured cap no
// matter how many spans end, with evictions counted, drop-oldest order
// preserved, and memory flat.
func TestFinishedRingBoundsMemory(t *testing.T) {
	const (
		total = 100_000
		cap   = 1024
	)
	tr := NewTracer("appserver")
	tr.SetFinishedCap(cap)
	for i := 0; i < total; i++ {
		sp := tr.StartSpan("appserver.request", SpanContext{})
		sp.SetAttr("seq", strconv.Itoa(i))
		sp.End()
	}
	fin := tr.Finished()
	if len(fin) != cap {
		t.Fatalf("retained %d spans, want cap %d", len(fin), cap)
	}
	if got := tr.Dropped(); got != total-cap {
		t.Fatalf("Dropped() = %d, want %d", got, total-cap)
	}
	// Drop-oldest: the survivors are exactly the newest cap spans, in End
	// order.
	for i, rec := range fin {
		if want := strconv.Itoa(total - cap + i); rec.Attrs["seq"] != want {
			t.Fatalf("fin[%d].seq = %s, want %s", i, rec.Attrs["seq"], want)
		}
	}

	// Shrinking the cap evicts the oldest immediately.
	tr.SetFinishedCap(16)
	if got := len(tr.Finished()); got != 16 {
		t.Fatalf("after shrink: retained %d, want 16", got)
	}
	if got := tr.Dropped(); got != total-16 {
		t.Fatalf("after shrink: Dropped() = %d, want %d", got, total-16)
	}
	if last := tr.Finished()[15]; last.Attrs["seq"] != strconv.Itoa(total-1) {
		t.Fatalf("newest span evicted by shrink: seq = %s", last.Attrs["seq"])
	}

	tr.Reset()
	if tr.Dropped() != 0 || len(tr.Finished()) != 0 {
		t.Fatal("Reset did not clear the ring and dropped counter")
	}
}

// TestFinishedRingDefaultCap pins the default bound: NewTracer must not
// retain more than DefaultFinishedCap spans.
func TestFinishedRingDefaultCap(t *testing.T) {
	tr := NewTracer("svc")
	for i := 0; i < DefaultFinishedCap+100; i++ {
		tr.StartSpan("s", SpanContext{}).End()
	}
	if got := len(tr.Finished()); got != DefaultFinishedCap {
		t.Fatalf("retained %d spans, want %d", got, DefaultFinishedCap)
	}
	if got := tr.Dropped(); got != 100 {
		t.Fatalf("Dropped() = %d, want 100", got)
	}
}

func TestNewIDUniqueAndNonZero(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		id := newID()
		if id == 0 {
			t.Fatal("newID returned 0")
		}
		if seen[id] {
			t.Fatalf("newID repeated %x", id)
		}
		seen[id] = true
	}
}
