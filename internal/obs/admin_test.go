package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"zdr/internal/metrics"
)

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"proxy.http.status.200": "zdr_proxy_http_status_200",
		"core.restarts":         "zdr_core_restarts",
		"weird-name/with:colon": "zdr_weird_name_with:colon",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// promLine matches one sample line of the text exposition format:
// a metric name, an optional label set, and a float value.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? (\S+)$`)

// promTypeLine matches a # TYPE comment.
var promTypeLine = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)

// checkPromText validates every line of a text exposition body and
// returns the parsed samples (full name incl. labels -> value).
func checkPromText(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if m := promTypeLine.FindStringSubmatch(line); m != nil {
			if typed[m[1]] {
				t.Errorf("line %d: duplicate TYPE for %s", i+1, m[1])
			}
			typed[m[1]] = true
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d is not valid exposition text: %q", i+1, line)
			continue
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			t.Errorf("line %d: bad value %q: %v", i+1, m[4], err)
		}
		samples[m[1]+m[2]] = v
	}
	return samples
}

func TestRenderPrometheusValidExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("proxy.takeovers").Add(3)
	reg.Counter("edge.http.errors.upstream") // zero-valued
	reg.Gauge("origin.mqtt.relays").Set(-2)
	h := reg.Histogram("edge.http.latency_us")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}

	body := RenderPrometheus(reg.Snapshot())
	samples := checkPromText(t, body)

	if got := samples["zdr_proxy_takeovers"]; got != 3 {
		t.Errorf("zdr_proxy_takeovers = %v, want 3", got)
	}
	if got := samples["zdr_origin_mqtt_relays"]; got != -2 {
		t.Errorf("zdr_origin_mqtt_relays = %v, want -2", got)
	}
	if got := samples["zdr_edge_http_latency_us_count"]; got != 100 {
		t.Errorf("_count = %v, want 100", got)
	}
	if got := samples["zdr_edge_http_latency_us_sum"]; got != 5050 {
		t.Errorf("_sum = %v, want 5050", got)
	}
	q50 := samples[`zdr_edge_http_latency_us{quantile="0.5"}`]
	q99 := samples[`zdr_edge_http_latency_us{quantile="0.99"}`]
	if q50 <= 0 || q99 < q50 {
		t.Errorf("quantiles not monotone: p50=%v p99=%v", q50, q99)
	}
	// Rendering is deterministic.
	if again := RenderPrometheus(reg.Snapshot()); again != body {
		t.Error("RenderPrometheus output is not stable across identical snapshots")
	}
}

func TestAdminMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("core.restarts").Add(7)
	a := &Admin{Service: "test", Registry: reg}
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	samples := checkPromText(t, string(body))
	if samples["zdr_core_restarts"] != 7 {
		t.Fatalf("zdr_core_restarts = %v", samples["zdr_core_restarts"])
	}
}

func TestAdminHealthzFlipsWithDraining(t *testing.T) {
	draining := false
	a := &Admin{Service: "test", Draining: func() bool { return draining }}
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	get := func() (int, string) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get(); code != 200 || body != "ok\n" {
		t.Fatalf("healthy: %d %q", code, body)
	}
	draining = true
	if code, body := get(); code != 503 || body != "draining\n" {
		t.Fatalf("draining: %d %q", code, body)
	}
	draining = false
	if code, _ := get(); code != 200 {
		t.Fatalf("recovered: %d", code)
	}
}

func TestAdminDebugRelease(t *testing.T) {
	tr := NewTracer("test")
	open := tr.StartSpan("proxy.drain", SpanContext{})
	defer open.End()
	a := &Admin{
		Service: "test",
		Tracer:  tr,
		ReleaseState: func() ReleaseState {
			return ReleaseState{
				Service:  "test",
				Draining: true,
				Slots: []SlotState{{
					Name: "edge", Generation: 2, TakeoverArmed: true, Takeovers: 1,
				}},
			}
		},
	}
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/release")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var state ReleaseState
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	if !state.Draining || len(state.Slots) != 1 || state.Slots[0].Generation != 2 {
		t.Fatalf("state = %+v", state)
	}
	// The tracer's open span is folded in when the callback leaves
	// InFlightSpans empty.
	if len(state.InFlightSpans) != 1 || state.InFlightSpans[0].Name != "proxy.drain" {
		t.Fatalf("in-flight spans = %+v", state.InFlightSpans)
	}
}

func TestAdminServerStartServes(t *testing.T) {
	a := &Admin{Service: "test", Registry: metrics.NewRegistry()}
	srv, err := a.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// TestAdminDebugPages: Debug entries mount one JSON page each under
// /debug/<name> — how daemons expose subsystem state (e.g. the release
// orchestrator's /debug/rollout) without obs knowing the types.
func TestAdminDebugPages(t *testing.T) {
	calls := 0
	a := &Admin{
		Service: "test",
		Debug: map[string]func() any{
			"rollout": func() any {
				calls++
				return map[string]any{"state": "running", "batch": calls}
			},
		},
	}
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	get := func() map[string]any {
		resp, err := http.Get(srv.URL + "/debug/rollout")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type %q", ct)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if out := get(); out["state"] != "running" || out["batch"] != float64(1) {
		t.Fatalf("first fetch = %v", out)
	}
	// Each request re-invokes the callback: the page is live state, not a
	// snapshot taken at mount time.
	if out := get(); out["batch"] != float64(2) {
		t.Fatalf("second fetch = %v, want batch 2", out)
	}
}
