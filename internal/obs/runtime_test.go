package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zdr/internal/metrics"
)

func TestRenderPrometheusAtomicHistogramBuckets(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.AtomicHistogram("edge.http.latency", 0.001, 0.01, 0.1)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5) // overflow bucket

	body := RenderPrometheus(reg.Snapshot())
	samples := checkPromText(t, body)

	if !strings.Contains(body, "# TYPE zdr_edge_http_latency histogram\n") {
		t.Fatalf("missing histogram TYPE line:\n%s", body)
	}
	// Buckets are cumulative and end at +Inf.
	for label, want := range map[string]float64{
		`zdr_edge_http_latency_bucket{le="0.001"}`: 1,
		`zdr_edge_http_latency_bucket{le="0.01"}`:  1,
		`zdr_edge_http_latency_bucket{le="0.1"}`:   2,
		`zdr_edge_http_latency_bucket{le="+Inf"}`:  3,
		`zdr_edge_http_latency_count`:              3,
	} {
		if samples[label] != want {
			t.Fatalf("%s = %v, want %v\n%s", label, samples[label], want, body)
		}
	}
	if s := samples["zdr_edge_http_latency_sum"]; s < 5.05 || s > 5.06 {
		t.Fatalf("sum = %v", s)
	}
}

func TestAdminPprofGatedByProfile(t *testing.T) {
	get := func(a *Admin, path string) int {
		srv := httptest.NewServer(a.Handler())
		defer srv.Close()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := get(&Admin{Service: "test"}, "/debug/pprof/"); code != 404 {
		t.Fatalf("pprof served without Profile: %d", code)
	}
	if code := get(&Admin{Service: "test", Profile: true}, "/debug/pprof/"); code != 200 {
		t.Fatalf("pprof index with Profile: %d", code)
	}
	if code := get(&Admin{Service: "test", Profile: true}, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline with Profile: %d", code)
	}
}

func TestStartRuntimeStats(t *testing.T) {
	reg := metrics.NewRegistry()
	stop := StartRuntimeStats(reg, 10*time.Millisecond)
	defer stop()
	// The first sample is synchronous, so the gauges exist immediately.
	if g := reg.GaugeValue(GaugeGoroutines); g <= 0 {
		t.Fatalf("goroutines gauge = %d", g)
	}
	if g := reg.GaugeValue(GaugeHeapBytes); g <= 0 {
		t.Fatalf("heap bytes gauge = %d", g)
	}
	// Pause/latency p99 gauges must exist and be non-negative (they can
	// legitimately be 0 early in a process's life).
	for _, name := range []string{GaugeGCPauseP99Ns, GaugeSchedLatP99Ns} {
		if g := reg.GaugeValue(name); g < 0 {
			t.Fatalf("%s = %d", name, g)
		}
	}
	stop()
	stop() // idempotent
}

func TestStartRuntimeStatsNilRegistry(t *testing.T) {
	stop := StartRuntimeStats(nil, 0)
	stop()
}
