package obs

import (
	"sort"
	"strconv"
	"strings"

	"zdr/internal/metrics"
)

// PromName maps a dotted registry name ("proxy.http.status.200") to a
// Prometheus-legal metric name ("zdr_proxy_http_status_200"): every
// character outside [a-zA-Z0-9_:] becomes '_', and everything is
// prefixed with "zdr_" to namespace the exposition.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("zdr_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// RenderPrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as their native
// types, sampled histograms as summaries with quantile labels plus _sum
// and _count series, and atomic bucket histograms as native histograms
// with cumulative le-labelled buckets (including the +Inf bucket), so a
// scraper can histogram_quantile() across nodes. Output is sorted by
// metric name, so it is stable.
func RenderPrometheus(snap metrics.RegistrySnapshot) string {
	var b strings.Builder

	counterNames := sortedKeys(snap.Counters)
	for _, n := range counterNames {
		pn := PromName(n)
		b.WriteString("# TYPE " + pn + " counter\n")
		b.WriteString(pn + " " + strconv.FormatInt(snap.Counters[n], 10) + "\n")
	}

	gaugeNames := sortedKeys(snap.Gauges)
	for _, n := range gaugeNames {
		pn := PromName(n)
		b.WriteString("# TYPE " + pn + " gauge\n")
		b.WriteString(pn + " " + strconv.FormatInt(snap.Gauges[n], 10) + "\n")
	}

	histNames := make([]string, 0, len(snap.Histograms))
	for n := range snap.Histograms {
		histNames = append(histNames, n)
	}
	sort.Strings(histNames)
	for _, n := range histNames {
		s := snap.Histograms[n]
		pn := PromName(n)
		b.WriteString("# TYPE " + pn + " summary\n")
		for _, q := range []struct {
			label string
			v     float64
		}{
			{"0.5", s.P50}, {"0.9", s.P90}, {"0.99", s.P99}, {"0.999", s.P999},
		} {
			b.WriteString(pn + `{quantile="` + q.label + `"} ` + promFloat(q.v) + "\n")
		}
		b.WriteString(pn + "_sum " + promFloat(s.Mean*float64(s.Count)) + "\n")
		b.WriteString(pn + "_count " + strconv.FormatInt(s.Count, 10) + "\n")
	}

	ahNames := make([]string, 0, len(snap.AtomicHistograms))
	for n := range snap.AtomicHistograms {
		ahNames = append(ahNames, n)
	}
	sort.Strings(ahNames)
	for _, n := range ahNames {
		s := snap.AtomicHistograms[n]
		pn := PromName(n)
		b.WriteString("# TYPE " + pn + " histogram\n")
		var cum int64
		for i, c := range s.Counts {
			cum += c
			le := "+Inf"
			if i < len(s.Bounds) {
				le = promFloat(s.Bounds[i])
			}
			b.WriteString(pn + `_bucket{le="` + le + `"} ` + strconv.FormatInt(cum, 10) + "\n")
		}
		b.WriteString(pn + "_sum " + promFloat(s.Sum) + "\n")
		b.WriteString(pn + "_count " + strconv.FormatInt(s.Count, 10) + "\n")
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
