package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"

	"zdr/internal/metrics"
)

// SlotState describes one release slot (or single-instance daemon) for
// /debug/release.
type SlotState struct {
	Name       string `json:"name"`
	Generation int    `json:"generation"`
	// Phase is the release state machine position: "serving",
	// "handing-off", "committed-awaiting-ready" (a ProtoDrainUndo
	// hand-off committed, lease not yet resolved), "rolling-back" (the
	// committed hand-off is unwinding — the readiness gate rejected
	// promotion and the old generation is re-arming from its retained
	// FDs), "rolled-back" (the unwind completed; sticky until the next
	// restart attempt) or "draining".
	Phase          string `json:"phase,omitempty"`
	Draining       bool   `json:"draining"`
	TakeoverArmed  bool   `json:"takeover_armed"`
	ArmError       string `json:"arm_error,omitempty"`
	Takeovers      int64  `json:"takeovers"`
	TakeoverAborts int64  `json:"takeover_aborts"`
	TakeoverUndos  int64  `json:"takeover_undos,omitempty"`
	Drains         int64  `json:"drains"`
}

// ReleaseState is the JSON body served at /debug/release: the release
// state machine as seen from one process.
type ReleaseState struct {
	Service       string       `json:"service"`
	Draining      bool         `json:"draining"`
	Slots         []SlotState  `json:"slots,omitempty"`
	InFlightSpans []SpanRecord `json:"in_flight_spans,omitempty"`
}

// Admin serves the admin exposition endpoints over plain net/http:
//
//	/metrics        Prometheus text format from Registry
//	/healthz        200 "ok" normally, 503 "draining" while Draining()
//	/debug/release  ReleaseState JSON (in-flight spans filled from Tracer)
//	/debug/<name>   one JSON page per Debug entry (e.g. the release
//	                orchestrator's /debug/rollout)
//
// All fields are optional; absent ones degrade to empty output.
type Admin struct {
	Service      string
	Registry     *metrics.Registry
	Tracer       *Tracer
	Draining     func() bool
	ReleaseState func() ReleaseState
	// Extra registries are rendered into /metrics after Registry.
	// Daemons use it for process-wide accounting that lives outside any
	// one server's registry — e.g. netx's relay counters, which every
	// pump in the process shares.
	Extra []*metrics.Registry
	// Debug mounts extra JSON pages under /debug/: each entry name is
	// served at /debug/<name> by marshalling the function's return value.
	// Daemons use it to expose subsystem state (rollout status, fleet
	// topology) without the obs package knowing the types.
	Debug map[string]func() any
	// Profile mounts the net/http/pprof endpoints under /debug/pprof/.
	// Daemons gate it behind a -profile flag: the handlers are cheap to
	// serve but operators should opt in to exposing them.
	Profile bool
}

// Handler returns the admin HTTP handler.
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if a.Registry != nil {
			w.Write([]byte(RenderPrometheus(a.Registry.Snapshot())))
		}
		for _, reg := range a.Extra {
			w.Write([]byte(RenderPrometheus(reg.Snapshot())))
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if a.Draining != nil && a.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/release", func(w http.ResponseWriter, req *http.Request) {
		state := ReleaseState{Service: a.Service}
		if a.ReleaseState != nil {
			state = a.ReleaseState()
		} else if a.Draining != nil {
			state.Draining = a.Draining()
		}
		if len(state.InFlightSpans) == 0 {
			state.InFlightSpans = a.Tracer.InFlight()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(state)
	})
	if a.Profile {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	for name, fn := range a.Debug {
		fn := fn
		mux.HandleFunc("/debug/"+name, func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(fn()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	return mux
}

// AdminServer is a running admin listener.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// Start binds addr (e.g. "127.0.0.1:9090"; port 0 picks a free port) and
// serves the admin endpoints until Close.
func (a *Admin) Start(addr string) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: a.Handler()}
	go srv.Serve(ln)
	return &AdminServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address.
func (s *AdminServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *AdminServer) Close() error { return s.srv.Close() }
