package h2t

import (
	"bytes"
	"io"
	"net"
	"testing"
)

// BenchmarkFrameRoundTrip pushes 4 KiB DATA frames through a session pair
// over an in-memory pipe: the tunnel's per-frame cost (header encode,
// payload read, receive-buffer delivery) on both sides.
func BenchmarkFrameRoundTrip(b *testing.B) {
	cc, sc := net.Pipe()
	client := NewSession(cc, true)
	server := NewSession(sc, false)
	defer client.Close()
	defer server.Close()

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		st, err := server.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, st)
	}()

	st, err := client.OpenStream(map[string]string{"proto": "bench"}, false)
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xab}, 4096)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st.CloseWrite()
	<-drained
}

// BenchmarkHeaderEncodeDecode covers the HEADERS open path (small map, a
// handful of routing fields).
func BenchmarkHeaderEncodeDecode(b *testing.B) {
	hdr := map[string]string{
		":method":        "POST",
		":path":          "/upload",
		"content-length": "1048576",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc, err := EncodeHeaders(hdr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeHeaders(enc); err != nil {
			b.Fatal(err)
		}
	}
}
