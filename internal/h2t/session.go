package h2t

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"zdr/internal/bufpool"
)

// Session errors.
var (
	// ErrGoAway is returned by OpenStream once either side has announced
	// GOAWAY: no new streams may start, existing streams drain.
	ErrGoAway = errors.New("h2t: session is draining (GOAWAY)")
	// ErrSessionClosed is returned once the session is dead.
	ErrSessionClosed = errors.New("h2t: session closed")
	// ErrStreamReset is delivered to readers of a stream the peer reset.
	ErrStreamReset = errors.New("h2t: stream reset by peer")
	// ErrStreamClosed is returned for writes on a finished stream.
	ErrStreamClosed = errors.New("h2t: stream closed")
	// ErrStreamLimit is returned by OpenStream when the peer's advertised
	// SETTINGS max-concurrent-streams would be exceeded.
	ErrStreamLimit = errors.New("h2t: peer stream limit reached")
)

// Control is a DCR control frame delivered on a stream.
type Control struct {
	Type    FrameType
	Payload []byte
}

// Session multiplexes streams over a single reliable conn. One side is the
// client (initiates with odd stream IDs), the other the server (even IDs);
// both may open and accept streams.
type Session struct {
	conn     net.Conn
	isClient bool

	// Write-side scratch, guarded by wmu: the frame header and the two-
	// element vector handed to net.Buffers.WriteTo live on the session so
	// a frame write is a single vectored syscall with zero allocations.
	wmu   sync.Mutex // serializes writeFrame
	whdr  [frameHeaderLen]byte
	wvec  [2][]byte
	wbufs net.Buffers

	mu         sync.Mutex
	streams    map[uint32]*Stream
	nextID     uint32
	goAwaySent bool
	goAwayRecv bool
	closed     bool
	closeErr   error
	// peerMaxStreams is the peer's advertised SETTINGS limit on streams
	// we may have open concurrently (0 = unlimited).
	peerMaxStreams uint32

	acceptCh chan *Stream
	goAwayCh chan struct{}
	done     chan struct{}

	pingMu   sync.Mutex
	pingSeq  uint64
	pingWait map[uint64]chan struct{}
}

// An Option customises a Session before it starts serving.
type Option func(*sessionOptions)

type sessionOptions struct {
	wrap func(net.Conn) net.Conn
}

// WithConnWrapper interposes wrap between the session and its transport.
// It is the seam internal/faults uses to inject transport-level faults
// beneath the framing layer without the session knowing.
func WithConnWrapper(wrap func(net.Conn) net.Conn) Option {
	return func(o *sessionOptions) { o.wrap = wrap }
}

// NewSession starts a session over conn. Exactly one endpoint must pass
// isClient=true. The session owns conn.
func NewSession(conn net.Conn, isClient bool, opts ...Option) *Session {
	var o sessionOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.wrap != nil {
		if wrapped := o.wrap(conn); wrapped != nil {
			conn = wrapped
		}
	}
	s := &Session{
		conn:     conn,
		isClient: isClient,
		streams:  make(map[uint32]*Stream),
		acceptCh: make(chan *Stream, 64),
		goAwayCh: make(chan struct{}),
		done:     make(chan struct{}),
		pingWait: make(map[uint64]chan struct{}),
	}
	if isClient {
		s.nextID = 1
	} else {
		s.nextID = 2
	}
	go s.readLoop()
	return s
}

func (s *Session) writeFrame(f Frame) error {
	if len(f.Payload) > maxFramePayload {
		return ErrFrameTooLarge
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.whdr[0] = uint8(f.Type)
	s.whdr[1] = f.Flags
	binary.BigEndian.PutUint32(s.whdr[2:6], f.StreamID)
	binary.BigEndian.PutUint32(s.whdr[6:10], uint32(len(f.Payload)))
	if len(f.Payload) == 0 {
		_, err := s.conn.Write(s.whdr[:])
		return err
	}
	// Header + payload go out in one writev (net.Buffers fast path on TCP
	// conns; sequential writes elsewhere), so the peer never sees a header
	// without its payload in a separate segment and nothing is allocated
	// to concatenate them.
	s.wvec[0] = s.whdr[:]
	s.wvec[1] = f.Payload
	s.wbufs = s.wvec[:]
	_, err := s.wbufs.WriteTo(s.conn)
	s.wvec[1] = nil // do not retain the caller's payload
	return err
}

// OpenStream starts a new stream with the given headers. If endStream is
// true the local direction is immediately half-closed (a request with no
// body). Fails with ErrGoAway while draining.
func (s *Session) OpenStream(hdr map[string]string, endStream bool) (*Stream, error) {
	payload, err := EncodeHeaders(hdr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	if s.goAwaySent || s.goAwayRecv {
		s.mu.Unlock()
		return nil, ErrGoAway
	}
	if s.peerMaxStreams > 0 {
		mine := uint32(0)
		for id := range s.streams {
			if !s.peerInitiated(id) {
				mine++
			}
		}
		if mine >= s.peerMaxStreams {
			s.mu.Unlock()
			return nil, ErrStreamLimit
		}
	}
	id := s.nextID
	s.nextID += 2
	st := newStream(s, id, hdr)
	if endStream {
		st.localEnd = true
	}
	s.streams[id] = st
	s.mu.Unlock()

	var flags uint8
	if endStream {
		flags |= FlagEndStream
	}
	if err := s.writeFrame(Frame{Type: FrameHeaders, Flags: flags, StreamID: id, Payload: payload}); err != nil {
		s.dropStream(id)
		return nil, err
	}
	return st, nil
}

// Accept blocks until a peer-initiated stream arrives or the session dies.
func (s *Session) Accept() (*Stream, error) {
	select {
	case st := <-s.acceptCh:
		return st, nil
	case <-s.done:
		// Drain anything that raced with shutdown.
		select {
		case st := <-s.acceptCh:
			return st, nil
		default:
		}
		return nil, s.closeReason()
	}
}

func (s *Session) closeReason() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closeErr != nil {
		return s.closeErr
	}
	return ErrSessionClosed
}

// GoAway announces graceful drain: the peer must open no more streams and
// this side refuses to open more; in-flight streams continue.
func (s *Session) GoAway() error {
	s.mu.Lock()
	already := s.goAwaySent
	s.goAwaySent = true
	s.mu.Unlock()
	if already {
		return nil
	}
	return s.writeFrame(Frame{Type: FrameGoAway})
}

// AdvertiseSettings tells the peer how many concurrent streams it may keep
// open toward this side (0 = unlimited). A proxy uses it to bound per-
// tunnel fan-in.
func (s *Session) AdvertiseSettings(maxConcurrentStreams uint32) error {
	var payload [4]byte
	binary.BigEndian.PutUint32(payload[:], maxConcurrentStreams)
	return s.writeFrame(Frame{Type: FrameSettings, Payload: payload[:]})
}

// GoAwayReceived returns a channel closed when the peer announces GOAWAY.
func (s *Session) GoAwayReceived() <-chan struct{} { return s.goAwayCh }

// Draining reports whether either side has announced GOAWAY.
func (s *Session) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.goAwaySent || s.goAwayRecv
}

// NumStreams returns the number of live streams.
func (s *Session) NumStreams() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.streams)
}

// Ping round-trips a PING frame, bounding the wait by timeout.
func (s *Session) Ping(timeout time.Duration) error {
	s.pingMu.Lock()
	s.pingSeq++
	seq := s.pingSeq
	ch := make(chan struct{})
	s.pingWait[seq] = ch
	s.pingMu.Unlock()
	defer func() {
		s.pingMu.Lock()
		delete(s.pingWait, seq)
		s.pingMu.Unlock()
	}()

	var payload [8]byte
	binary.BigEndian.PutUint64(payload[:], seq)
	if err := s.writeFrame(Frame{Type: FramePing, Payload: payload[:]}); err != nil {
		return err
	}
	select {
	case <-ch:
		return nil
	case <-s.done:
		return s.closeReason()
	case <-time.After(timeout):
		return fmt.Errorf("h2t: ping timeout after %v", timeout)
	}
}

// Close tears the session down immediately; all streams error out.
func (s *Session) Close() error {
	return s.shutdown(ErrSessionClosed)
}

// Done returns a channel closed when the session has terminated.
func (s *Session) Done() <-chan struct{} { return s.done }

func (s *Session) shutdown(reason error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.closeErr = reason
	streams := make([]*Stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.streams = map[uint32]*Stream{}
	s.mu.Unlock()

	for _, st := range streams {
		st.buf.fail(reason)
	}
	err := s.conn.Close()
	close(s.done)
	return err
}

func (s *Session) dropStream(id uint32) {
	s.mu.Lock()
	delete(s.streams, id)
	s.mu.Unlock()
}

func (s *Session) lookup(id uint32) *Stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[id]
}

// peerInitiated reports whether id's parity marks a peer-opened stream.
func (s *Session) peerInitiated(id uint32) bool {
	odd := id%2 == 1
	return odd != s.isClient
}

func (s *Session) readLoop() {
	// One pooled scratch buffer serves every frame on the session; frame
	// payloads alias it, so handleFrame must copy anything it retains
	// past the current iteration (recvBuffer.append copies; control
	// frames are copied explicitly in handleFrame).
	scratch := bufpool.Get(maxFramePayload)
	defer bufpool.Put(scratch)
	for {
		f, err := readFrameInto(s.conn, *scratch)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				s.shutdown(ErrSessionClosed)
			} else {
				s.shutdown(fmt.Errorf("h2t: read: %w", err))
			}
			return
		}
		s.handleFrame(f)
	}
}

func (s *Session) handleFrame(f Frame) {
	switch f.Type {
	case FrameHeaders:
		s.handleHeaders(f)
	case FrameData:
		if st := s.lookup(f.StreamID); st != nil {
			st.buf.append(f.Payload)
			if f.Flags&FlagEndStream != 0 {
				s.remoteEnd(st)
			}
		}
	case FrameRST:
		if st := s.lookup(f.StreamID); st != nil {
			st.buf.fail(ErrStreamReset)
			s.dropStream(f.StreamID)
		}
	case FrameGoAway:
		s.mu.Lock()
		first := !s.goAwayRecv
		s.goAwayRecv = true
		s.mu.Unlock()
		if first {
			close(s.goAwayCh)
		}
	case FrameSettings:
		if len(f.Payload) == 4 {
			s.mu.Lock()
			s.peerMaxStreams = binary.BigEndian.Uint32(f.Payload)
			s.mu.Unlock()
		}
	case FramePing:
		if f.Flags&FlagAck != 0 {
			if len(f.Payload) == 8 {
				seq := binary.BigEndian.Uint64(f.Payload)
				s.pingMu.Lock()
				if ch, ok := s.pingWait[seq]; ok {
					close(ch)
					delete(s.pingWait, seq)
				}
				s.pingMu.Unlock()
			}
			return
		}
		// Echo back with ACK.
		s.writeFrame(Frame{Type: FramePing, Flags: FlagAck, Payload: f.Payload})
	case FrameReconnectSolicitation, FrameConnectAck, FrameConnectRefuse:
		if st := s.lookup(f.StreamID); st != nil {
			// The payload aliases the read loop's scratch buffer but the
			// Control sits in a channel past this iteration: copy it.
			// Control frames are per-reconnect, not per-byte, so this
			// allocation is off the hot path.
			var payload []byte
			if len(f.Payload) > 0 {
				payload = append(payload, f.Payload...)
			}
			st.deliverControl(Control{Type: f.Type, Payload: payload})
		}
	default:
		// Unknown frame types are ignored for forward compatibility.
	}
}

func (s *Session) handleHeaders(f Frame) {
	hdr, err := DecodeHeaders(f.Payload)
	if err != nil {
		s.shutdown(fmt.Errorf("h2t: bad header block: %w", err))
		return
	}
	if st := s.lookup(f.StreamID); st != nil {
		// Subsequent HEADERS on a live stream: response/trailer headers.
		st.deliverHeaders(hdr)
		if f.Flags&FlagEndStream != 0 {
			s.remoteEnd(st)
		}
		return
	}
	if !s.peerInitiated(f.StreamID) {
		// HEADERS for a stream we opened but already dropped; ignore.
		return
	}
	st := newStream(s, f.StreamID, hdr)
	if f.Flags&FlagEndStream != 0 {
		st.remoteEnd = true
		st.buf.setEOF()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.streams[f.StreamID] = st
	s.mu.Unlock()
	select {
	case s.acceptCh <- st:
	default:
		// Accept queue overflow: refuse the stream rather than block the
		// reader (the peer sees RST, maps to "server overloaded").
		s.dropStream(f.StreamID)
		s.writeFrame(Frame{Type: FrameRST, StreamID: f.StreamID})
	}
}

// remoteEnd records the peer's half-close and reaps the stream when both
// directions are finished.
func (s *Session) remoteEnd(st *Stream) {
	st.buf.setEOF()
	st.mu.Lock()
	st.remoteEnd = true
	done := st.localEnd
	st.mu.Unlock()
	if done {
		s.dropStream(st.id)
	}
}

// Stream is one logical bidirectional stream.
type Stream struct {
	sess *Session
	id   uint32
	hdr  map[string]string
	buf  *recvBuffer

	hdrCh  chan map[string]string
	ctrlCh chan Control

	mu        sync.Mutex
	localEnd  bool
	remoteEnd bool
	reset     bool
}

func newStream(s *Session, id uint32, hdr map[string]string) *Stream {
	return &Stream{
		sess:   s,
		id:     id,
		hdr:    hdr,
		buf:    newRecvBuffer(),
		hdrCh:  make(chan map[string]string, 4),
		ctrlCh: make(chan Control, 16),
	}
}

// ID returns the stream ID.
func (st *Stream) ID() uint32 { return st.id }

// Headers returns the headers the stream was opened with.
func (st *Stream) Headers() map[string]string { return st.hdr }

// Read reads decoded DATA payloads.
func (st *Stream) Read(p []byte) (int, error) { return st.buf.Read(p) }

// Write sends p as DATA frames, splitting at the frame size limit.
func (st *Stream) Write(p []byte) (int, error) {
	st.mu.Lock()
	if st.localEnd || st.reset {
		st.mu.Unlock()
		return 0, ErrStreamClosed
	}
	st.mu.Unlock()
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > maxFramePayload {
			n = maxFramePayload
		}
		if err := st.sess.writeFrame(Frame{Type: FrameData, StreamID: st.id, Payload: p[:n]}); err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

// CloseWrite half-closes the local direction (END_STREAM).
func (st *Stream) CloseWrite() error {
	st.mu.Lock()
	if st.localEnd || st.reset {
		st.mu.Unlock()
		return nil
	}
	st.localEnd = true
	done := st.remoteEnd
	st.mu.Unlock()
	err := st.sess.writeFrame(Frame{Type: FrameData, Flags: FlagEndStream, StreamID: st.id})
	if done {
		st.sess.dropStream(st.id)
	}
	return err
}

// Reset aborts the stream (RST_STREAM to the peer, error to local readers).
func (st *Stream) Reset() error {
	st.mu.Lock()
	if st.reset {
		st.mu.Unlock()
		return nil
	}
	st.reset = true
	st.mu.Unlock()
	st.buf.fail(ErrStreamReset)
	st.sess.dropStream(st.id)
	return st.sess.writeFrame(Frame{Type: FrameRST, StreamID: st.id})
}

// SendHeaders sends an additional HEADERS frame (e.g. response headers).
func (st *Stream) SendHeaders(h map[string]string, endStream bool) error {
	payload, err := EncodeHeaders(h)
	if err != nil {
		return err
	}
	var flags uint8
	if endStream {
		flags |= FlagEndStream
		st.mu.Lock()
		st.localEnd = true
		done := st.remoteEnd
		st.mu.Unlock()
		if done {
			defer st.sess.dropStream(st.id)
		}
	}
	return st.sess.writeFrame(Frame{Type: FrameHeaders, Flags: flags, StreamID: st.id, Payload: payload})
}

// RecvHeaders waits for a HEADERS frame from the peer (response headers),
// bounded by timeout.
func (st *Stream) RecvHeaders(timeout time.Duration) (map[string]string, error) {
	select {
	case h := <-st.hdrCh:
		return h, nil
	case <-st.sess.done:
		return nil, st.sess.closeReason()
	case <-time.After(timeout):
		return nil, fmt.Errorf("h2t: timeout waiting for headers on stream %d", st.id)
	}
}

// SendControl sends a DCR control frame on this stream.
func (st *Stream) SendControl(t FrameType, payload []byte) error {
	switch t {
	case FrameReconnectSolicitation, FrameConnectAck, FrameConnectRefuse:
	default:
		return fmt.Errorf("h2t: %v is not a control frame", t)
	}
	return st.sess.writeFrame(Frame{Type: t, StreamID: st.id, Payload: payload})
}

// Controls returns the channel of DCR control frames received on this
// stream.
func (st *Stream) Controls() <-chan Control { return st.ctrlCh }

func (st *Stream) deliverHeaders(h map[string]string) {
	select {
	case st.hdrCh <- h:
	default: // never block the session reader
	}
}

func (st *Stream) deliverControl(c Control) {
	select {
	case st.ctrlCh <- c:
	default: // drop over backpressure; control frames are advisory
	}
}
