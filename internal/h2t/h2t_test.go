package h2t

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func sessionPair(t *testing.T) (client, server *Session) {
	t.Helper()
	cc, sc := net.Pipe()
	client = NewSession(cc, true)
	server = NewSession(sc, false)
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Type: FrameData, Flags: FlagEndStream, StreamID: 7, Payload: []byte("payload")}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Flags != in.Flags || out.StreamID != in.StreamID || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: FrameData, Payload: make([]byte, maxFramePayload+1)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameTypeString(t *testing.T) {
	if FrameGoAway.String() != "GOAWAY" || FrameType(0xee).String() == "" {
		t.Fatal("String() broken")
	}
}

func TestHeaderCodecRoundTrip(t *testing.T) {
	in := map[string]string{":method": "POST", ":path": "/up", "user-id": "u-42", "empty": ""}
	b, err := EncodeHeaders(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeHeaders(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("%v != %v", out, in)
	}
}

func TestHeaderCodecProperty(t *testing.T) {
	f := func(m map[string]string) bool {
		for k, v := range m {
			if len(k) > 0xffff || len(v) > 0xffff {
				return true // skip oversize inputs
			}
		}
		b, err := EncodeHeaders(m)
		if err != nil {
			return false
		}
		out, err := DecodeHeaders(b)
		if err != nil {
			return false
		}
		if m == nil {
			return len(out) == 0
		}
		return reflect.DeepEqual(m, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderCodecRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {0}, {0, 5, 1}, {0, 1, 0, 3, 'a'}} {
		if _, err := DecodeHeaders(b); err == nil {
			t.Errorf("accepted %v", b)
		}
	}
	// Trailing bytes must be rejected.
	good, _ := EncodeHeaders(map[string]string{"a": "b"})
	if _, err := DecodeHeaders(append(good, 0xff)); err == nil {
		t.Error("accepted trailing bytes")
	}
}

func TestOpenAcceptEcho(t *testing.T) {
	client, server := sessionPair(t)

	// Server: accept, read all, echo back upper-cased headers + body.
	go func() {
		st, err := server.Accept()
		if err != nil {
			return
		}
		body, _ := io.ReadAll(st)
		st.SendHeaders(map[string]string{"status": "200"}, false)
		st.Write(body)
		st.CloseWrite()
	}()

	st, err := client.OpenStream(map[string]string{":path": "/echo"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("hello tunnel")); err != nil {
		t.Fatal(err)
	}
	if err := st.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	h, err := st.RecvHeaders(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if h["status"] != "200" {
		t.Fatalf("headers = %v", h)
	}
	body, err := io.ReadAll(st)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "hello tunnel" {
		t.Fatalf("body = %q", body)
	}
}

func TestManyConcurrentStreams(t *testing.T) {
	client, server := sessionPair(t)
	const n = 50

	go func() {
		for {
			st, err := server.Accept()
			if err != nil {
				return
			}
			go func(st *Stream) {
				b, _ := io.ReadAll(st)
				st.Write(b)
				st.CloseWrite()
			}(st)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := client.OpenStream(nil, false)
			if err != nil {
				errs <- err
				return
			}
			msg := bytes.Repeat([]byte{byte(i)}, 1000+i)
			st.Write(msg)
			st.CloseWrite()
			got, err := io.ReadAll(st)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, msg) {
				errs <- errors.New("echo mismatch")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestLargeBodySplitsFrames(t *testing.T) {
	client, server := sessionPair(t)
	go func() {
		st, err := server.Accept()
		if err != nil {
			return
		}
		b, _ := io.ReadAll(st)
		st.Write(b)
		st.CloseWrite()
	}()
	st, err := client.OpenStream(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("Z"), 3*maxFramePayload+17)
	go func() {
		st.Write(big)
		st.CloseWrite()
	}()
	got, err := io.ReadAll(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatalf("large body mismatch: %d vs %d", len(got), len(big))
	}
}

func TestGoAwayStopsNewStreams(t *testing.T) {
	client, server := sessionPair(t)

	// A stream already in flight survives the drain.
	acceptCh := make(chan *Stream, 1)
	go func() {
		st, err := server.Accept()
		if err == nil {
			acceptCh <- st
		}
	}()
	st, err := client.OpenStream(nil, false)
	if err != nil {
		t.Fatal(err)
	}

	if err := server.GoAway(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-client.GoAwayReceived():
	case <-time.After(2 * time.Second):
		t.Fatal("client never saw GOAWAY")
	}
	if !client.Draining() || !server.Draining() {
		t.Fatal("both sides should report draining")
	}
	if _, err := client.OpenStream(nil, false); !errors.Is(err, ErrGoAway) {
		t.Fatalf("OpenStream after GOAWAY = %v, want ErrGoAway", err)
	}
	if _, err := server.OpenStream(nil, false); !errors.Is(err, ErrGoAway) {
		t.Fatalf("server OpenStream after its own GOAWAY = %v, want ErrGoAway", err)
	}

	// The in-flight stream still completes.
	srvSt := <-acceptCh
	go func() {
		io.ReadAll(srvSt)
		srvSt.Write([]byte("late but fine"))
		srvSt.CloseWrite()
	}()
	st.CloseWrite()
	b, err := io.ReadAll(st)
	if err != nil || string(b) != "late but fine" {
		t.Fatalf("in-flight stream failed after GOAWAY: %q %v", b, err)
	}
}

func TestResetDeliversError(t *testing.T) {
	client, server := sessionPair(t)
	go func() {
		st, err := server.Accept()
		if err != nil {
			return
		}
		st.Reset()
	}()
	st, err := client.OpenStream(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	_, err = st.Read(buf)
	if !errors.Is(err, ErrStreamReset) {
		t.Fatalf("read after reset = %v, want ErrStreamReset", err)
	}
}

func TestPing(t *testing.T) {
	client, _ := sessionPair(t)
	if err := client.Ping(2 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSessionCloseFailsStreams(t *testing.T) {
	client, server := sessionPair(t)
	go func() {
		st, err := server.Accept()
		if err != nil {
			return
		}
		_ = st
		// Never respond; client stream must fail on session close.
	}()
	st, err := client.OpenStream(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		client.Close()
	}()
	buf := make([]byte, 1)
	if _, err := st.Read(buf); err == nil {
		t.Fatal("read succeeded after session close")
	}
	if _, err := client.OpenStream(nil, false); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("OpenStream after close = %v", err)
	}
	select {
	case <-client.Done():
	case <-time.After(time.Second):
		t.Fatal("Done never closed")
	}
}

func TestPeerDisconnectFailsStreams(t *testing.T) {
	client, server := sessionPair(t)
	st, err := client.OpenStream(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	server.Close() // simulates peer crash
	buf := make([]byte, 1)
	if _, err := st.Read(buf); err == nil {
		t.Fatal("read succeeded after peer death")
	}
}

func TestControlFramesDCR(t *testing.T) {
	client, server := sessionPair(t)
	go func() {
		st, err := server.Accept()
		if err != nil {
			return
		}
		// Origin solicits a reconnect (restart incoming), §4.2 step A.
		st.SendControl(FrameReconnectSolicitation, []byte("draining"))
	}()
	st, err := client.OpenStream(map[string]string{"proto": "mqtt"}, false)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-st.Controls():
		if c.Type != FrameReconnectSolicitation || string(c.Payload) != "draining" {
			t.Fatalf("control = %+v", c)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("control frame never arrived")
	}
	// Reply with an ack the other way.
	if err := st.SendControl(FrameConnectAck, []byte("u-7")); err != nil {
		t.Fatal(err)
	}
	if err := st.SendControl(FrameData, nil); err == nil {
		t.Fatal("SendControl accepted a non-control frame type")
	}
}

func TestStreamsReapedAfterBothEnds(t *testing.T) {
	client, server := sessionPair(t)
	go func() {
		for {
			st, err := server.Accept()
			if err != nil {
				return
			}
			go func(st *Stream) {
				io.ReadAll(st)
				st.CloseWrite()
			}(st)
		}
	}()
	for i := 0; i < 20; i++ {
		st, err := client.OpenStream(nil, false)
		if err != nil {
			t.Fatal(err)
		}
		st.CloseWrite()
		if _, err := io.ReadAll(st); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for client.NumStreams() > 0 || server.NumStreams() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("streams leaked: client=%d server=%d", client.NumStreams(), server.NumStreams())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestWriteAfterCloseWrite(t *testing.T) {
	client, server := sessionPair(t)
	go func() {
		st, _ := server.Accept()
		if st != nil {
			io.Copy(io.Discard, st)
		}
	}()
	st, err := client.OpenStream(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	st.CloseWrite()
	if _, err := st.Write([]byte("x")); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("write after CloseWrite = %v", err)
	}
}

func BenchmarkStreamEcho(b *testing.B) {
	cc, sc := net.Pipe()
	client := NewSession(cc, true)
	server := NewSession(sc, false)
	defer client.Close()
	defer server.Close()
	go func() {
		for {
			st, err := server.Accept()
			if err != nil {
				return
			}
			go func(st *Stream) {
				buf, _ := io.ReadAll(st)
				st.Write(buf)
				st.CloseWrite()
			}(st)
		}
	}()
	payload := bytes.Repeat([]byte("b"), 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := client.OpenStream(nil, false)
		if err != nil {
			b.Fatal(err)
		}
		st.Write(payload)
		st.CloseWrite()
		if _, err := io.ReadAll(st); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSettingsStreamLimit: the peer's advertised max-concurrent-streams is
// enforced on OpenStream and releases as streams finish.
func TestSettingsStreamLimit(t *testing.T) {
	client, server := sessionPair(t)
	if err := server.AdvertiseSettings(2); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			st, err := server.Accept()
			if err != nil {
				return
			}
			go func(st *Stream) {
				io.ReadAll(st)
				st.CloseWrite()
			}(st)
		}
	}()
	// Wait for the SETTINGS frame to land.
	deadline := time.Now().Add(2 * time.Second)
	for {
		client.mu.Lock()
		limit := client.peerMaxStreams
		client.mu.Unlock()
		if limit == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SETTINGS never applied")
		}
		time.Sleep(5 * time.Millisecond)
	}

	st1, err := client.OpenStream(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := client.OpenStream(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.OpenStream(nil, false); !errors.Is(err, ErrStreamLimit) {
		t.Fatalf("third open = %v, want ErrStreamLimit", err)
	}
	// Finish one stream; capacity frees up.
	st1.CloseWrite()
	io.ReadAll(st1)
	deadline = time.Now().Add(2 * time.Second)
	for {
		st3, err := client.OpenStream(nil, false)
		if err == nil {
			st3.CloseWrite()
			break
		}
		if !errors.Is(err, ErrStreamLimit) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("stream slot never freed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st2.CloseWrite()
}

func TestSettingsZeroMeansUnlimited(t *testing.T) {
	client, server := sessionPair(t)
	go func() {
		for {
			st, err := server.Accept()
			if err != nil {
				return
			}
			_ = st
		}
	}()
	for i := 0; i < 100; i++ {
		if _, err := client.OpenStream(nil, true); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
}

// TestUnknownFrameTypeIgnored: forward compatibility — an unrecognised
// frame type must not kill the session.
func TestUnknownFrameTypeIgnored(t *testing.T) {
	cc, sc := net.Pipe()
	client := NewSession(cc, true)
	defer client.Close()
	go func() {
		// Raw peer: write an unknown frame, then behave as a server.
		WriteFrame(sc, Frame{Type: FrameType(0x7f), StreamID: 9, Payload: []byte("future")})
		srv := NewSession(sc, false)
		st, err := srv.Accept()
		if err != nil {
			return
		}
		st.SendHeaders(map[string]string{"status": "200"}, true)
	}()
	st, err := client.OpenStream(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.RecvHeaders(2 * time.Second); err != nil {
		t.Fatalf("session died on unknown frame: %v", err)
	}
}
