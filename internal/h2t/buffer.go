package h2t

import (
	"io"
	"sync"
)

// recvBuffer is an unbounded byte buffer with blocking reads. The session
// reader goroutine appends DATA payloads; stream consumers Read. Unbounded
// buffering stands in for HTTP/2 flow control (see package comment).
// Buffered bytes are data[off:]. Consuming by advancing off (rather than
// reslicing data) keeps the backing array, so a stream that is drained as
// fast as it fills reuses one allocation for its whole life instead of
// growing a fresh array every time append follows a reslice.
type recvBuffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   []byte
	off    int
	eof    bool  // peer half-closed cleanly
	err    error // terminal error (RST / session death)
	closed bool  // local reader gave up
}

func newRecvBuffer() *recvBuffer {
	b := &recvBuffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// append adds data; no-op after terminal state.
func (b *recvBuffer) append(p []byte) {
	if len(p) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.eof || b.err != nil || b.closed {
		return
	}
	if b.off == len(b.data) {
		// Fully drained: rewind and reuse the backing array.
		b.data = b.data[:0]
		b.off = 0
	} else if b.off > 0 && len(b.data)+len(p) > cap(b.data) {
		// Would grow: compact first so the dead head isn't copied into
		// (and kept alive by) the new, larger array.
		n := copy(b.data, b.data[b.off:])
		b.data = b.data[:n]
		b.off = 0
	}
	b.data = append(b.data, p...)
	b.cond.Broadcast()
}

// setEOF marks a clean end of stream after buffered data drains.
func (b *recvBuffer) setEOF() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.eof = true
	b.cond.Broadcast()
}

// fail terminates the stream with err (delivered after buffered data).
func (b *recvBuffer) fail(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err == nil && !b.eof {
		b.err = err
	}
	b.cond.Broadcast()
}

// close abandons the buffer from the consumer side.
func (b *recvBuffer) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.data = nil
	b.off = 0
	b.cond.Broadcast()
}

// Read implements io.Reader, blocking until data, EOF, or error.
func (b *recvBuffer) Read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.off < len(b.data) {
			n := copy(p, b.data[b.off:])
			b.off += n
			if b.off == len(b.data) {
				b.data = b.data[:0]
				b.off = 0
			}
			return n, nil
		}
		if b.closed {
			return 0, io.ErrClosedPipe
		}
		if b.err != nil {
			return 0, b.err
		}
		if b.eof {
			return 0, io.EOF
		}
		b.cond.Wait()
	}
}
