// Package h2t implements the HTTP/2-style multiplexed tunnel that connects
// Edge and Origin Proxygen (§2.2: "Edge and Origin maintain long-lived
// HTTP/2 connections over which user requests and MQTT connections are
// forwarded").
//
// It is a simplified HTTP/2: binary frames multiplex many logical streams
// over one TCP connection, with HEADERS / DATA / RST_STREAM / GOAWAY /
// PING frame types. GOAWAY gives the tunnel the graceful-shutdown
// semantics (§3, Option-3) that Downstream Connection Reuse and Socket
// Takeover lean on: a draining proxy announces GOAWAY, the peer stops
// opening streams on the connection but in-flight streams run to
// completion over the draining period.
//
// Three DCR control frames ride alongside (§4.2): RECONNECT_SOLICITATION
// (restarting Origin → Edge, per tunneled MQTT stream), and the
// CONNECT_ACK / CONNECT_REFUSE verdicts for a re_connect attempt.
//
// Deliberate simplifications vs. RFC 7540 (documented in DESIGN.md): no
// HPACK (headers use a plain length-prefixed encoding), no flow-control
// windows (streams buffer without bound; experiment workloads are small),
// no priorities, no server push.
package h2t

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// FrameType identifies a frame.
type FrameType uint8

// Frame types.
const (
	FrameHeaders  FrameType = 0x1
	FrameData     FrameType = 0x2
	FrameRST      FrameType = 0x3
	FrameGoAway   FrameType = 0x4
	FramePing     FrameType = 0x5
	FrameSettings FrameType = 0x6

	// DCR control frames (§4.2).
	FrameReconnectSolicitation FrameType = 0x10
	FrameConnectAck            FrameType = 0x11
	FrameConnectRefuse         FrameType = 0x12
)

// String returns a debug name.
func (t FrameType) String() string {
	switch t {
	case FrameHeaders:
		return "HEADERS"
	case FrameData:
		return "DATA"
	case FrameRST:
		return "RST_STREAM"
	case FrameGoAway:
		return "GOAWAY"
	case FramePing:
		return "PING"
	case FrameSettings:
		return "SETTINGS"
	case FrameReconnectSolicitation:
		return "RECONNECT_SOLICITATION"
	case FrameConnectAck:
		return "CONNECT_ACK"
	case FrameConnectRefuse:
		return "CONNECT_REFUSE"
	default:
		return fmt.Sprintf("UNKNOWN(%#x)", uint8(t))
	}
}

// Frame flags.
const (
	// FlagEndStream on HEADERS or DATA half-closes the sender's direction.
	FlagEndStream uint8 = 0x1
	// FlagAck marks a PING response.
	FlagAck uint8 = 0x2
)

// maxFramePayload bounds a single frame. DATA larger than this is split.
const maxFramePayload = 1 << 16

// frameHeaderLen is the fixed wire header: type(1) flags(1) stream(4) len(4).
const frameHeaderLen = 10

// Frame is one wire frame.
type Frame struct {
	Type     FrameType
	Flags    uint8
	StreamID uint32
	Payload  []byte
}

// ErrFrameTooLarge is returned for frames exceeding maxFramePayload.
var ErrFrameTooLarge = errors.New("h2t: frame payload too large")

// WriteFrame serializes f to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > maxFramePayload {
		return ErrFrameTooLarge
	}
	var hdr [frameHeaderLen]byte
	hdr[0] = uint8(f.Type)
	hdr[1] = f.Flags
	binary.BigEndian.PutUint32(hdr[2:6], f.StreamID)
	binary.BigEndian.PutUint32(hdr[6:10], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame parses one frame from r. The returned payload is freshly
// allocated and owned by the caller; the session read loop uses
// readFrameInto instead to avoid that per-frame allocation.
func ReadFrame(r io.Reader) (Frame, error) {
	return readFrameInto(r, nil)
}

// readFrameInto parses one frame from r. When scratch is non-nil and large
// enough (len >= maxFramePayload), the payload is read into it and
// f.Payload aliases scratch — valid only until the caller's next read.
// Anything that outlives that window must copy the bytes out.
func readFrameInto(r io.Reader, scratch []byte) (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	f := Frame{
		Type:     FrameType(hdr[0]),
		Flags:    hdr[1],
		StreamID: binary.BigEndian.Uint32(hdr[2:6]),
	}
	n := binary.BigEndian.Uint32(hdr[6:10])
	if n > maxFramePayload {
		return Frame{}, ErrFrameTooLarge
	}
	if n > 0 {
		if int(n) <= len(scratch) {
			f.Payload = scratch[:n]
		} else {
			f.Payload = make([]byte, n)
		}
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, err
		}
	}
	return f, nil
}

// EncodeHeaders serializes a header map: u16 count, then length-prefixed
// key/value pairs. Header maps are small (a handful of routing fields).
func EncodeHeaders(h map[string]string) ([]byte, error) {
	if len(h) > 0xffff {
		return nil, errors.New("h2t: too many headers")
	}
	size := 2
	for k, v := range h {
		if len(k) > 0xffff || len(v) > 0xffff {
			return nil, errors.New("h2t: header field too long")
		}
		size += 4 + len(k) + len(v)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h)))
	for k, v := range h {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(v)))
		buf = append(buf, v...)
	}
	return buf, nil
}

// DecodeHeaders parses EncodeHeaders output.
func DecodeHeaders(b []byte) (map[string]string, error) {
	if len(b) < 2 {
		return nil, errors.New("h2t: short header block")
	}
	n := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	h := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k, rest, err := takeString(b)
		if err != nil {
			return nil, err
		}
		v, rest2, err := takeString(rest)
		if err != nil {
			return nil, err
		}
		h[k] = v
		b = rest2
	}
	if len(b) != 0 {
		return nil, errors.New("h2t: trailing bytes in header block")
	}
	return h, nil
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errors.New("h2t: truncated header block")
	}
	n := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	if len(b) < n {
		return "", nil, errors.New("h2t: truncated header string")
	}
	return string(b[:n]), b[n:], nil
}
