package consistent

import (
	"fmt"
	"testing"
	"testing/quick"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("proxy-%03d", i)
	}
	return out
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(10)
	if got := r.Pick("k"); got != "" {
		t.Fatalf("empty ring pick = %q, want \"\"", got)
	}
	if len(r.Members()) != 0 {
		t.Fatal("empty ring has members")
	}
}

func TestRingSingleMember(t *testing.T) {
	r := NewRing(10, "only")
	for i := 0; i < 100; i++ {
		if got := r.Pick(fmt.Sprintf("key-%d", i)); got != "only" {
			t.Fatalf("pick = %q, want only", got)
		}
	}
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing(50, names(8)...)
	b := NewRing(50, names(8)...)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if a.Pick(k) != b.Pick(k) {
			t.Fatalf("rings differ for %s", k)
		}
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := NewRing(20, "a", "b")
	r.Add("a") // duplicate
	if got := len(r.Members()); got != 2 {
		t.Fatalf("members = %d, want 2", got)
	}
	r.Remove("zz") // absent
	if got := len(r.Members()); got != 2 {
		t.Fatalf("members = %d, want 2", got)
	}
	r.Remove("a")
	if got := len(r.Members()); got != 1 {
		t.Fatalf("members = %d, want 1", got)
	}
	for i := 0; i < 50; i++ {
		if r.Pick(fmt.Sprintf("k%d", i)) != "b" {
			t.Fatal("all keys should land on the sole remaining member")
		}
	}
}

func TestRingMinimalDisruptionOnRemove(t *testing.T) {
	members := names(20)
	full := NewRing(100, members...)
	minus := NewRing(100, members...)
	minus.Remove("proxy-007")
	d := Disruption(full, minus, 20_000)
	// Removing 1 of 20 members should move roughly 1/20 of keys; allow
	// generous slack but fail on a rehash-everything bug (d close to 1).
	if d < 0.01 || d > 0.15 {
		t.Fatalf("disruption = %v, want ~0.05", d)
	}
	// Keys that moved must have belonged to the removed member.
	for i := 0; i < 20_000; i++ {
		k := fmt.Sprintf("flow-%d", i)
		if full.Pick(k) != minus.Pick(k) && full.Pick(k) != "proxy-007" {
			t.Fatalf("key %s moved away from a surviving member", k)
		}
	}
}

func TestMaglevEmpty(t *testing.T) {
	g := NewMaglev(0)
	if g.Pick("k") != "" {
		t.Fatal("empty maglev should pick \"\"")
	}
}

func TestMaglevCoversTable(t *testing.T) {
	g := NewMaglev(503, names(10)...)
	seen := make(map[string]bool)
	for i := 0; i < 50_000; i++ {
		seen[g.Pick(fmt.Sprintf("k%d", i))] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d members ever picked, want 10", len(seen))
	}
}

func TestMaglevBalance(t *testing.T) {
	g := NewMaglev(2039, names(16)...)
	minS, maxS := LoadSpread(g, 100_000)
	if minS < 0.7 || maxS > 1.3 {
		t.Fatalf("maglev load spread min=%v max=%v, want within ±30%% of even", minS, maxS)
	}
}

func TestMaglevMinimalDisruption(t *testing.T) {
	members := names(16)
	a := NewMaglev(2039, members...)
	b := NewMaglev(2039, append(members[:7:7], members[8:]...)...) // drop proxy-007
	d := Disruption(a, b, 20_000)
	// Maglev guarantees ~1/N plus small reshuffle noise.
	if d > 0.25 {
		t.Fatalf("maglev disruption = %v, too high", d)
	}
	if d < 0.01 {
		t.Fatalf("maglev disruption = %v, suspiciously low", d)
	}
}

func TestMaglevPickUintMatchesPick(t *testing.T) {
	g := NewMaglev(503, names(5)...)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("flow-%d", i)
		if g.Pick(k) != g.PickUint(hashKey(k)) {
			t.Fatal("PickUint disagrees with Pick for the same hash")
		}
	}
}

func TestMaglevRebuildIsPureFunctionOfSet(t *testing.T) {
	a := NewMaglev(503, "c", "a", "b")
	b := NewMaglev(503, "b", "c", "a")
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%d", i)
		if a.Pick(k) != b.Pick(k) {
			t.Fatal("member order changed the maglev table")
		}
	}
}

// Property: picks are always drawn from the member set (quick.Check over
// arbitrary keys and small member sets).
func TestPickersAlwaysReturnMembers(t *testing.T) {
	members := names(5)
	ring := NewRing(50, members...)
	mag := NewMaglev(503, members...)
	inSet := func(s string) bool {
		for _, m := range members {
			if m == s {
				return true
			}
		}
		return false
	}
	f := func(key string) bool {
		return inSet(ring.Pick(key)) && inSet(mag.Pick(key))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: consistency — the same key always maps to the same member while
// membership is unchanged.
func TestPickStable(t *testing.T) {
	mag := NewMaglev(503, names(8)...)
	f := func(key string) bool {
		return mag.Pick(key) == mag.Pick(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFnvStable(t *testing.T) {
	// Lock the hash down: experiments depend on stable placement between
	// runs. (Value computed from the FNV-1a reference algorithm.)
	if got := fnv64a(""); got != 14695981039346656037 {
		t.Fatalf("fnv64a(\"\") = %d", got)
	}
	if fnv64a("a") == fnv64a("b") {
		t.Fatal("degenerate hash")
	}
}

func BenchmarkRingPick(b *testing.B) {
	r := NewRing(100, names(64)...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Pick("flow-12345")
	}
}

func BenchmarkMaglevPick(b *testing.B) {
	g := NewMaglev(2039, names(64)...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Pick("flow-12345")
	}
}

func BenchmarkMaglevRebuild(b *testing.B) {
	members := names(64)
	g := NewMaglev(2039, members...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Rebuild(members)
	}
}
