package consistent_test

import (
	"fmt"

	"zdr/internal/consistent"
)

// ExampleMaglev shows the steering primitive Katran uses: a flow hash maps
// to the same backend on every LB instance, and removing a backend moves
// only (roughly) its own share of flows.
func ExampleMaglev() {
	lb := consistent.NewMaglev(0, "proxy-a", "proxy-b", "proxy-c")
	fmt.Println(lb.Pick("flow-1") == lb.Pick("flow-1"))

	smaller := consistent.NewMaglev(0, "proxy-a", "proxy-b")
	moved := consistent.Disruption(lb, smaller, 10_000)
	fmt.Println(moved > 0.2 && moved < 0.5) // ~1/3 of flows owned by proxy-c
	// Output:
	// true
	// true
}

// ExampleRing shows the user-id → broker mapping DCR relies on: every
// Origin resolves the same user to the same broker.
func ExampleRing() {
	origin1 := consistent.NewRing(0, "broker-1", "broker-2", "broker-3")
	origin2 := consistent.NewRing(0, "broker-1", "broker-2", "broker-3")
	fmt.Println(origin1.Pick("user-12345") == origin2.Pick("user-12345"))
	// Output: true
}
