// Package consistent implements the two consistent-hashing schemes the
// infrastructure relies on.
//
// The paper uses consistent hashing in two places:
//
//   - Katran, the L4 load balancer, picks an L7 proxy for each packet with
//     a Maglev-style lookup table so that flows keep hitting the same proxy
//     even as the set of healthy proxies changes (§2.1, §5.1).
//   - Origin Proxygen locates the MQTT broker holding a user's connection
//     context by consistently hashing the globally unique user-id (§4.2),
//     which is what makes Downstream Connection Reuse possible: any healthy
//     Origin proxy resolves the same user to the same broker.
//
// Both a classic hash Ring (virtual nodes) and a Maglev table are provided;
// they share the Picker interface so callers can swap them.
package consistent

import (
	"fmt"
	"sort"
)

// Picker maps a key to one of a set of member names.
type Picker interface {
	// Pick returns the member for key, or "" if there are no members.
	Pick(key string) string
	// Members returns the current member set in sorted order.
	Members() []string
}

// fnv64a is a small local FNV-1a so the package has zero dependencies and
// the hash is stable across runs (important: experiments must be
// reproducible).
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix64 is the splitmix64 finalizer. FNV-1a alone does not diffuse entropy
// into the high bits well enough for binary search over the full 64-bit
// space (ring placement was observed to skew >95% of keys onto one member
// without it), so every hash used for placement is finalized through it.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// hashKey hashes a lookup key to a well-mixed 64-bit value.
func hashKey(s string) uint64 { return mix64(fnv64a(s)) }

// hashPair hashes a member name and a virtual-node index together.
func hashPair(a string, n int) uint64 {
	return mix64(fnv64a(a) ^ (uint64(n)+1)*0x9e3779b97f4a7c15)
}

// Ring is a classic consistent-hash ring with virtual nodes.
type Ring struct {
	replicas int
	keys     []uint64          // sorted virtual node hashes
	owner    map[uint64]string // virtual node hash -> member
	members  []string          // sorted
}

// NewRing builds a ring with the given number of virtual nodes per member.
// replicas <= 0 defaults to 100.
func NewRing(replicas int, members ...string) *Ring {
	if replicas <= 0 {
		replicas = 100
	}
	r := &Ring{replicas: replicas, owner: make(map[uint64]string)}
	for _, m := range members {
		r.add(m)
	}
	sort.Slice(r.keys, func(i, j int) bool { return r.keys[i] < r.keys[j] })
	sort.Strings(r.members)
	return r
}

func (r *Ring) add(member string) {
	for i := 0; i < r.replicas; i++ {
		h := hashPair(member, i)
		if _, dup := r.owner[h]; dup {
			continue // vanishingly rare; the vnode is simply shared
		}
		r.owner[h] = member
		r.keys = append(r.keys, h)
	}
	r.members = append(r.members, member)
}

// Add inserts a member into the ring.
func (r *Ring) Add(member string) {
	for _, m := range r.members {
		if m == member {
			return
		}
	}
	r.add(member)
	sort.Slice(r.keys, func(i, j int) bool { return r.keys[i] < r.keys[j] })
	sort.Strings(r.members)
}

// Remove deletes a member and all its virtual nodes.
func (r *Ring) Remove(member string) {
	idx := -1
	for i, m := range r.members {
		if m == member {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	r.members = append(r.members[:idx], r.members[idx+1:]...)
	kept := r.keys[:0]
	for _, k := range r.keys {
		if r.owner[k] == member {
			delete(r.owner, k)
		} else {
			kept = append(kept, k)
		}
	}
	r.keys = kept
}

// Pick implements Picker.
func (r *Ring) Pick(key string) string {
	if len(r.keys) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= h })
	if i == len(r.keys) {
		i = 0
	}
	return r.owner[r.keys[i]]
}

// Members implements Picker.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Maglev is a Maglev-style consistent-hash lookup table (the scheme Katran
// uses). The table size M should be a prime noticeably larger than the
// number of members; lookups are a single modulo + array index.
type Maglev struct {
	m       int
	table   []int32 // index into members
	members []string
}

// DefaultMaglevSize is a prime comfortably larger than any member set used
// in the experiments.
const DefaultMaglevSize = 2039

// NewMaglev builds a lookup table of size m (0 means DefaultMaglevSize)
// over the given members. m must be prime for good permutation coverage;
// this is not enforced, but non-prime sizes degrade balance.
func NewMaglev(m int, members ...string) *Maglev {
	if m <= 0 {
		m = DefaultMaglevSize
	}
	g := &Maglev{m: m}
	g.Rebuild(members)
	return g
}

// Rebuild recomputes the lookup table for a new member set. Members are
// sorted first so the table is a pure function of the set.
func (g *Maglev) Rebuild(members []string) {
	g.members = append([]string(nil), members...)
	sort.Strings(g.members)
	n := len(g.members)
	g.table = make([]int32, g.m)
	for i := range g.table {
		g.table[i] = -1
	}
	if n == 0 {
		return
	}
	// Per-member permutation parameters, as in the Maglev paper.
	offsets := make([]uint64, n)
	skips := make([]uint64, n)
	next := make([]uint64, n)
	for i, name := range g.members {
		offsets[i] = hashKey(name) % uint64(g.m)
		skips[i] = hashKey(name+"#skip")%uint64(g.m-1) + 1
	}
	filled := 0
	for filled < g.m {
		for i := 0; i < n && filled < g.m; i++ {
			// Walk member i's permutation to its next empty slot.
			for {
				c := (offsets[i] + next[i]*skips[i]) % uint64(g.m)
				next[i]++
				if g.table[c] < 0 {
					g.table[c] = int32(i)
					filled++
					break
				}
			}
		}
	}
}

// Pick implements Picker.
func (g *Maglev) Pick(key string) string {
	if len(g.members) == 0 {
		return ""
	}
	return g.members[g.table[hashKey(key)%uint64(g.m)]]
}

// PickUint is Pick for callers that already have a numeric flow hash.
func (g *Maglev) PickUint(h uint64) string {
	if len(g.members) == 0 {
		return ""
	}
	return g.members[g.table[h%uint64(g.m)]]
}

// Members implements Picker.
func (g *Maglev) Members() []string {
	out := make([]string, len(g.members))
	copy(out, g.members)
	return out
}

// TableSize returns the lookup-table size M.
func (g *Maglev) TableSize() int { return g.m }

// Disruption reports, for the key space sampled with n keys, the fraction
// of keys that map differently between two pickers. It quantifies the
// "minimal disruption" property the paper depends on for connection
// stickiness across membership changes.
func Disruption(a, b Picker, n int) float64 {
	if n <= 0 {
		n = 10_000
	}
	moved := 0
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("flow-%d", i)
		if a.Pick(k) != b.Pick(k) {
			moved++
		}
	}
	return float64(moved) / float64(n)
}

// LoadSpread reports min/max share of n sampled keys across members for a
// picker, as fractions of a perfectly even share (1.0 = perfectly even).
func LoadSpread(p Picker, n int) (minShare, maxShare float64) {
	members := p.Members()
	if len(members) == 0 || n <= 0 {
		return 0, 0
	}
	counts := make(map[string]int, len(members))
	for i := 0; i < n; i++ {
		counts[p.Pick(fmt.Sprintf("flow-%d", i))]++
	}
	even := float64(n) / float64(len(members))
	minShare, maxShare = 1e18, 0
	for _, m := range members {
		share := float64(counts[m]) / even
		if share < minShare {
			minShare = share
		}
		if share > maxShare {
			maxShare = share
		}
	}
	return minShare, maxShare
}
