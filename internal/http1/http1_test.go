package http1

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalKey(t *testing.T) {
	cases := map[string]string{
		"content-length":    "Content-Length",
		"CONTENT-LENGTH":    "Content-Length",
		"x-fb-debug":        "X-Fb-Debug",
		"a":                 "A",
		"":                  "",
		"Already-Canonical": "Already-Canonical",
	}
	for in, want := range cases {
		if got := CanonicalKey(in); got != want {
			t.Errorf("CanonicalKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHeaderOps(t *testing.T) {
	h := Header{}
	h.Set("x-one", "1")
	h.Add("X-ONE", "2")
	if got := h["X-One"]; len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Fatalf("values = %v", got)
	}
	if h.Get("x-ONE") != "1" {
		t.Fatal("Get not case-insensitive")
	}
	if !h.Has("X-One") {
		t.Fatal("Has failed")
	}
	cp := h.Clone()
	cp.Add("X-One", "3")
	if len(h["X-One"]) != 2 {
		t.Fatal("Clone aliases storage")
	}
	h.Del("x-one")
	if h.Has("X-One") {
		t.Fatal("Del failed")
	}
}

func TestPseudoHeaderEcho(t *testing.T) {
	if got := EchoPseudoHeader(":path"); got != "Pseudo-Echo-Path" {
		t.Fatalf("echo = %q", got)
	}
	name, ok := UnechoPseudoHeader("pseudo-echo-path")
	if !ok || name != ":path" {
		t.Fatalf("unecho = %q %v", name, ok)
	}
	if _, ok := UnechoPseudoHeader("Content-Length"); ok {
		t.Fatal("unecho accepted a normal header")
	}
}

func TestRequestRoundTripContentLength(t *testing.T) {
	body := "hello world"
	req := NewRequest("POST", "/upload", strings.NewReader(body), int64(len(body)))
	req.Header.Set("Host", "example.com")
	var buf bytes.Buffer
	n, err := WriteRequest(&buf, req)
	if err != nil || n != int64(len(body)) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "POST" || got.Target != "/upload" || got.Proto != "HTTP/1.1" {
		t.Fatalf("head = %+v", got)
	}
	if got.Header.Get("Host") != "example.com" {
		t.Fatal("host header lost")
	}
	if got.ContentLength != int64(len(body)) {
		t.Fatalf("content length = %d", got.ContentLength)
	}
	b, _ := ReadFullBody(got.Body)
	if string(b) != body {
		t.Fatalf("body = %q", b)
	}
}

func TestRequestRoundTripChunked(t *testing.T) {
	body := strings.Repeat("chunky!", 1000)
	req := NewRequest("POST", "/up", strings.NewReader(body), -1)
	var buf bytes.Buffer
	if _, err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Transfer-Encoding: chunked") {
		t.Fatal("chunked framing header missing")
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.ContentLength != -1 {
		t.Fatalf("content length = %d, want -1 (chunked)", got.ContentLength)
	}
	b, _ := ReadFullBody(got.Body)
	if string(b) != body {
		t.Fatalf("chunked body mismatch: %d vs %d bytes", len(b), len(body))
	}
}

func TestRequestNoBody(t *testing.T) {
	req := NewRequest("GET", "/", nil, 0)
	var buf bytes.Buffer
	if _, err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Body != nil {
		t.Fatal("GET should have nil body")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	body := "response payload"
	resp := NewResponse(200, strings.NewReader(body), int64(len(body)))
	resp.Header.Set("X-Served-By", "proxy-1")
	var buf bytes.Buffer
	if _, err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 200 || got.StatusMessage != "OK" {
		t.Fatalf("status = %d %q", got.StatusCode, got.StatusMessage)
	}
	b, _ := ReadFullBody(got.Body)
	if string(b) != body {
		t.Fatalf("body = %q", b)
	}
}

func TestResponse379RoundTrip(t *testing.T) {
	partial := "partially-uploaded-data"
	resp := NewResponse(StatusPartialPostReplay, strings.NewReader(partial), int64(len(partial)))
	resp.Header.Set(EchoPseudoHeader(":path"), "/upload")
	var buf bytes.Buffer
	if _, err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "HTTP/1.1 379 PartialPOST\r\n") {
		t.Fatalf("status line = %q", strings.SplitN(buf.String(), "\r\n", 2)[0])
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !IsPartialPostReplay(got) {
		t.Fatal("379+PartialPOST not recognised")
	}
	if got.Header.Get("Pseudo-Echo-Path") != "/upload" {
		t.Fatal("pseudo echo header lost")
	}
}

func TestIsPartialPostReplayRequiresMessage(t *testing.T) {
	// §5.2: a buggy upstream returning a bare 379 must NOT trigger PPR.
	r := &Response{StatusCode: 379, StatusMessage: "Random Garbage"}
	if IsPartialPostReplay(r) {
		t.Fatal("379 with wrong status message must not trigger PPR")
	}
	r.StatusMessage = StatusMessagePartialPost
	if !IsPartialPostReplay(r) {
		t.Fatal("genuine PPR response not recognised")
	}
}

func TestResponseNoBodyCodes(t *testing.T) {
	var buf bytes.Buffer
	resp := NewResponse(204, nil, 0)
	if _, err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Body != nil {
		t.Fatal("204 must have no body")
	}
}

func TestMalformedRequestLine(t *testing.T) {
	for _, in := range []string{
		"GARBAGE\r\n\r\n",
		"GET /\r\n\r\n",
		"GET / SPDY/3\r\n\r\n",
	} {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(in))); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestMalformedResponseLine(t *testing.T) {
	for _, in := range []string{
		"HTTP/1.1 xx OK\r\n\r\n",
		"HTTP/1.1\r\n\r\n",
		"ICY 200 OK\r\n\r\n",
		"HTTP/1.1 99 Too Small\r\n\r\n",
	} {
		if _, err := ReadResponse(bufio.NewReader(strings.NewReader(in))); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestMalformedHeader(t *testing.T) {
	in := "GET / HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n"
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(in))); err == nil {
		t.Fatal("accepted header without colon")
	}
}

func TestBadContentLength(t *testing.T) {
	in := "POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(in))); err == nil {
		t.Fatal("accepted negative content-length")
	}
}

func TestChunkedWriterFraming(t *testing.T) {
	var buf bytes.Buffer
	cw := NewChunkedWriter(&buf)
	cw.Write([]byte("abc"))
	cw.Write(nil) // zero-length writes are elided, not terminal chunks
	cw.Write([]byte("defgh"))
	if cw.BytesWritten() != 8 {
		t.Fatalf("bytes written = %d", cw.BytesWritten())
	}
	cw.Close()
	want := "3\r\nabc\r\n5\r\ndefgh\r\n0\r\n\r\n"
	if buf.String() != want {
		t.Fatalf("framing = %q, want %q", buf.String(), want)
	}
	if _, err := cw.Write([]byte("x")); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := cw.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
}

func TestChunkedReaderState(t *testing.T) {
	// One 10-byte chunk; read 4 bytes and examine mid-chunk state — the
	// state PPR must track (§5.2).
	raw := "a\r\n0123456789\r\n0\r\n\r\n"
	cr := NewChunkedReader(bufio.NewReader(strings.NewReader(raw)))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(cr, buf); err != nil {
		t.Fatal(err)
	}
	if cr.Offset() != 4 || !cr.InChunk() || cr.Done() {
		t.Fatalf("mid-chunk state: offset=%d inChunk=%v done=%v", cr.Offset(), cr.InChunk(), cr.Done())
	}
	rest, err := io.ReadAll(cr)
	if err != nil {
		t.Fatal(err)
	}
	if string(rest) != "456789" {
		t.Fatalf("rest = %q", rest)
	}
	if !cr.Done() || cr.InChunk() || cr.Offset() != 10 {
		t.Fatalf("final state: offset=%d inChunk=%v done=%v", cr.Offset(), cr.InChunk(), cr.Done())
	}
}

func TestChunkedReaderExtensionsIgnored(t *testing.T) {
	raw := "5;ext=1\r\nhello\r\n0\r\n\r\n"
	cr := NewChunkedReader(bufio.NewReader(strings.NewReader(raw)))
	b, err := io.ReadAll(cr)
	if err != nil || string(b) != "hello" {
		t.Fatalf("b=%q err=%v", b, err)
	}
}

func TestChunkedReaderMalformed(t *testing.T) {
	for _, raw := range []string{
		"zz\r\nhello\r\n",          // bad size
		"5\r\nhelloXX0\r\n\r\n",    // missing chunk CRLF
		"-5\r\nhello\r\n0\r\n\r\n", // negative
	} {
		cr := NewChunkedReader(bufio.NewReader(strings.NewReader(raw)))
		if _, err := io.ReadAll(cr); err == nil {
			t.Errorf("accepted %q", raw)
		}
	}
}

// Property: chunked encode→decode is the identity for arbitrary bodies and
// arbitrary write segmentation.
func TestChunkedRoundTripProperty(t *testing.T) {
	f := func(body []byte, seg uint8) bool {
		var buf bytes.Buffer
		cw := NewChunkedWriter(&buf)
		step := int(seg%32) + 1
		for off := 0; off < len(body); off += step {
			end := off + step
			if end > len(body) {
				end = len(body)
			}
			if _, err := cw.Write(body[off:end]); err != nil {
				return false
			}
		}
		if err := cw.Close(); err != nil {
			return false
		}
		cr := NewChunkedReader(bufio.NewReader(&buf))
		got, err := io.ReadAll(cr)
		if err != nil {
			return false
		}
		return bytes.Equal(got, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: request round-trip preserves method, target and body for
// token-ish methods/targets.
func TestRequestRoundTripProperty(t *testing.T) {
	f := func(body []byte, chunked bool) bool {
		cl := int64(len(body))
		if chunked {
			cl = -1
		}
		var rd io.Reader
		if len(body) > 0 {
			rd = bytes.NewReader(body)
		}
		req := NewRequest("POST", "/p", rd, cl)
		var buf bytes.Buffer
		if _, err := WriteRequest(&buf, req); err != nil {
			return false
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		b, err := ReadFullBody(got.Body)
		if err != nil {
			return false
		}
		return bytes.Equal(b, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedMessages(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		req := NewRequest("POST", "/n", strings.NewReader("abc"), 3)
		if _, err := WriteRequest(&buf, req); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for i := 0; i < 3; i++ {
		req, err := ReadRequest(br)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		b, _ := ReadFullBody(req.Body)
		if string(b) != "abc" {
			t.Fatalf("message %d body = %q", i, b)
		}
	}
}

func BenchmarkWriteRequestContentLength(b *testing.B) {
	body := bytes.Repeat([]byte("x"), 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := NewRequest("POST", "/upload", bytes.NewReader(body), int64(len(body)))
		WriteRequest(io.Discard, req)
	}
}

func BenchmarkChunkedRoundTrip(b *testing.B) {
	body := bytes.Repeat([]byte("y"), 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		cw := NewChunkedWriter(&buf)
		cw.Write(body)
		cw.Close()
		cr := NewChunkedReader(bufio.NewReader(&buf))
		io.Copy(io.Discard, cr)
	}
}
