package http1

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"zdr/internal/bufpool"
)

// StatusPartialPostReplay is the non-standard status code the app server
// sends to the downstream proxy to hand back an incomplete POST (§4.3).
// It must never propagate to an end user.
const StatusPartialPostReplay = 379

// StatusMessagePartialPost is the reason phrase that must accompany 379
// for PPR to engage (§5.2: 379 alone is ambiguous because the code sits in
// an unreserved IANA range another service might use).
const StatusMessagePartialPost = "PartialPOST"

// Common status reason phrases.
var reasonPhrases = map[int]string{
	200: "OK",
	204: "No Content",
	307: "Temporary Redirect",
	379: StatusMessagePartialPost,
	400: "Bad Request",
	404: "Not Found",
	500: "Internal Server Error",
	502: "Bad Gateway",
	503: "Service Unavailable",
	504: "Gateway Timeout",
}

// ReasonPhrase returns the default reason phrase for code.
func ReasonPhrase(code int) string {
	if p, ok := reasonPhrases[code]; ok {
		return p
	}
	return "Unknown"
}

// Request is an HTTP/1.1 request with an explicit body stream.
type Request struct {
	Method string
	Target string // request-target, e.g. "/upload"
	Proto  string // "HTTP/1.1"
	Header Header
	// Body is the decoded body stream (nil for bodyless requests).
	Body io.Reader
	// ContentLength is the declared body length; -1 means chunked.
	ContentLength int64
}

// NewRequest builds a request with the given body. If body is nil the
// request has no body; otherwise contentLength -1 selects chunked encoding.
func NewRequest(method, target string, body io.Reader, contentLength int64) *Request {
	return &Request{
		Method:        method,
		Target:        target,
		Proto:         "HTTP/1.1",
		Header:        Header{},
		Body:          body,
		ContentLength: contentLength,
	}
}

// Response is an HTTP/1.1 response with an explicit body stream.
type Response struct {
	StatusCode    int
	StatusMessage string
	Proto         string
	Header        Header
	Body          io.Reader
	ContentLength int64 // -1 means chunked
}

// NewResponse builds a response.
func NewResponse(code int, body io.Reader, contentLength int64) *Response {
	return &Response{
		StatusCode:    code,
		StatusMessage: ReasonPhrase(code),
		Proto:         "HTTP/1.1",
		Header:        Header{},
		Body:          body,
		ContentLength: contentLength,
	}
}

// ErrMalformed is wrapped by all parse errors.
var ErrMalformed = errors.New("http1: malformed message")

// ReadRequest parses a request head from br and prepares Body for
// streaming. The body must be fully consumed before the next message is
// read from the same reader.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return nil, fmt.Errorf("%w: bad request line %q", ErrMalformed, line)
	}
	req := &Request{Method: parts[0], Target: parts[1], Proto: parts[2], Header: Header{}}
	if err := readHeaders(br, req.Header); err != nil {
		return nil, err
	}
	req.ContentLength, req.Body, err = bodyFromHeaders(br, req.Header, req.Method == "HEAD")
	if err != nil {
		return nil, err
	}
	return req, nil
}

// ReadResponse parses a response head from br.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, fmt.Errorf("%w: bad status line %q", ErrMalformed, line)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil || code < 100 || code > 999 {
		return nil, fmt.Errorf("%w: bad status code in %q", ErrMalformed, line)
	}
	resp := &Response{StatusCode: code, Proto: parts[0], Header: Header{}}
	if len(parts) == 3 {
		resp.StatusMessage = parts[2]
	}
	if err := readHeaders(br, resp.Header); err != nil {
		return nil, err
	}
	noBody := code == 204 || code == 304 || code/100 == 1
	resp.ContentLength, resp.Body, err = bodyFromHeaders(br, resp.Header, noBody)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func readHeaders(br *bufio.Reader, h Header) error {
	const maxHeaders = 256
	for i := 0; ; i++ {
		if i > maxHeaders {
			return fmt.Errorf("%w: too many header fields", ErrMalformed)
		}
		line, err := readLine(br)
		if err != nil {
			return err
		}
		if line == "" {
			return nil
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return fmt.Errorf("%w: bad header field %q", ErrMalformed, line)
		}
		h.Add(strings.TrimSpace(line[:colon]), strings.TrimSpace(line[colon+1:]))
	}
}

func bodyFromHeaders(br *bufio.Reader, h Header, noBody bool) (int64, io.Reader, error) {
	if noBody {
		return 0, nil, nil
	}
	if strings.EqualFold(h.Get("Transfer-Encoding"), "chunked") {
		return -1, NewChunkedReader(br), nil
	}
	if cl := h.Get("Content-Length"); cl != "" {
		n, err := strconv.ParseInt(cl, 10, 64)
		if err != nil || n < 0 {
			return 0, nil, fmt.Errorf("%w: bad Content-Length %q", ErrMalformed, cl)
		}
		if n == 0 {
			return 0, nil, nil
		}
		return n, io.LimitReader(br, n), nil
	}
	return 0, nil, nil
}

// WriteRequest serializes req to w, streaming the body with the framing
// selected by ContentLength. It returns the number of body bytes written,
// which PPR uses to know how much of an upload reached a given server.
func WriteRequest(w io.Writer, req *Request) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s %s\r\n", req.Method, req.Target, orDefault(req.Proto, "HTTP/1.1"))
	h := req.Header.Clone()
	applyFraming(h, req.Body, req.ContentLength)
	h.writeTo(&sb)
	sb.WriteString("\r\n")
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return 0, err
	}
	return writeBody(w, req.Body, req.ContentLength)
}

// WriteResponse serializes resp to w, streaming the body.
func WriteResponse(w io.Writer, resp *Response) (int64, error) {
	msg := resp.StatusMessage
	if msg == "" {
		msg = ReasonPhrase(resp.StatusCode)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %d %s\r\n", orDefault(resp.Proto, "HTTP/1.1"), resp.StatusCode, msg)
	h := resp.Header.Clone()
	applyFraming(h, resp.Body, resp.ContentLength)
	h.writeTo(&sb)
	sb.WriteString("\r\n")
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return 0, err
	}
	return writeBody(w, resp.Body, resp.ContentLength)
}

func applyFraming(h Header, body io.Reader, contentLength int64) {
	h.Del("Content-Length")
	h.Del("Transfer-Encoding")
	switch {
	case body == nil:
		h.Set("Content-Length", "0")
	case contentLength >= 0:
		h.Set("Content-Length", strconv.FormatInt(contentLength, 10))
	default:
		h.Set("Transfer-Encoding", "chunked")
	}
}

func writeBody(w io.Writer, body io.Reader, contentLength int64) (int64, error) {
	if body == nil {
		return 0, nil
	}
	if contentLength >= 0 {
		n, err := io.Copy(w, io.LimitReader(body, contentLength))
		if err == nil && n != contentLength {
			err = fmt.Errorf("http1: body short: wrote %d of %d", n, contentLength)
		}
		return n, err
	}
	cw := NewChunkedWriter(w)
	n, err := io.Copy(cw, body)
	if err != nil {
		return n, err
	}
	return n, cw.Close()
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

// ReadFullBody consumes and returns the entire body of a parsed message.
func ReadFullBody(body io.Reader) ([]byte, error) {
	return ReadFullBodySized(body, 0)
}

// ReadFullBodySized is ReadFullBody with a size hint (a Content-Length, or
// <= 0 when unknown). It is the PPR capture path (§5.2): the proxy buffers
// a partially processed body handed back by a restarting app server, so it
// runs once per replayed request. Reads go through a pooled scratch buffer
// and the result is sized from the hint, avoiding bytes.Buffer's repeated
// grow-and-copy; the preallocation from an untrusted hint is capped so a
// lying peer can't make us reserve arbitrary memory.
func ReadFullBodySized(body io.Reader, sizeHint int64) ([]byte, error) {
	if body == nil {
		return nil, nil
	}
	const maxPrealloc = 1 << 20
	hint := sizeHint
	if hint > maxPrealloc {
		hint = maxPrealloc
	}
	var out []byte
	if hint > 0 {
		out = make([]byte, 0, hint)
	}
	var p *[]byte
	defer func() { bufpool.Put(p) }()
	for {
		// While the result has spare capacity, read straight into it —
		// with an accurate hint the whole body lands in one allocation
		// with no intermediate copy.
		if len(out) < cap(out) {
			n, err := body.Read(out[len(out):cap(out)])
			out = out[:len(out)+n]
			if err == io.EOF {
				return out, nil
			}
			if err != nil {
				return nil, err
			}
			continue
		}
		// No capacity left (no/low hint, or the peer sent more than
		// declared): stage through a pooled scratch buffer and append.
		if p == nil {
			p = bufpool.Get(bufpool.TierXLarge)
		}
		n, err := body.Read(*p)
		if n > 0 {
			out = append(out, (*p)[:n]...)
		}
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// IsPartialPostReplay reports whether resp is a genuine PPR hand-back:
// code 379 AND the PartialPOST status message (§5.2's double check — a
// buggy upstream once returned randomized status codes including 379).
func IsPartialPostReplay(resp *Response) bool {
	return resp.StatusCode == StatusPartialPostReplay &&
		resp.StatusMessage == StatusMessagePartialPost
}
