package http1

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// BenchmarkChunkedCopy proxies one 64 KiB body through the chunked
// encoder and decoder in 8 KiB chunks — the PPR body-forwarding pattern
// (proxy→app-server uploads stream exactly this way).
func BenchmarkChunkedCopy(b *testing.B) {
	src := bytes.Repeat([]byte{0x5a}, 64<<10)
	chunk := make([]byte, 8<<10)
	var wire bytes.Buffer
	wire.Grow(80 << 10)
	br := bufio.NewReader(nil)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire.Reset()
		cw := NewChunkedWriter(&wire)
		for off := 0; off < len(src); off += len(chunk) {
			if _, err := cw.Write(src[off : off+len(chunk)]); err != nil {
				b.Fatal(err)
			}
		}
		if err := cw.Close(); err != nil {
			b.Fatal(err)
		}
		br.Reset(&wire)
		cr := NewChunkedReader(br)
		for {
			_, err := cr.Read(chunk)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkReadFullBodySized measures the PPR capture path as the proxy
// actually drives it: consuming a 256 KiB partial body with the response's
// Content-Length as the size hint, so the body is read straight into a
// single exactly-sized allocation.
func BenchmarkReadFullBodySized(b *testing.B) {
	body := bytes.Repeat([]byte{0x11}, 256<<10)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := ReadFullBodySized(bytes.NewReader(body), int64(len(body)))
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(body) {
			b.Fatalf("read %d of %d", len(got), len(body))
		}
	}
}

// BenchmarkReadFullBody measures the same capture with no size hint.
func BenchmarkReadFullBody(b *testing.B) {
	body := bytes.Repeat([]byte{0x11}, 256<<10)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := ReadFullBody(bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(body) {
			b.Fatalf("read %d of %d", len(got), len(body))
		}
	}
}
