// Package http1 is a minimal HTTP/1.1 implementation built for Partial
// Post Replay (§4.3, §5.2 of the paper).
//
// The standard library's net/http deliberately hides the state PPR needs —
// exactly how much of a request body has been forwarded upstream, and
// where within a chunked transfer encoding the forwarding stopped — so the
// proxy and app server in this repository speak HTTP/1.1 through this
// package instead. It supports:
//
//   - request/response parsing and serialization,
//   - Content-Length and chunked transfer encodings (with resumable
//     encoder/decoder state),
//   - the non-standard status code 379 with status message "PartialPOST"
//     used by PPR (the code was picked from an unreserved IANA range; the
//     status message disambiguates it from other private uses — §5.2),
//   - pseudo-header echo rules for replaying HTTP/2-style requests.
package http1

import (
	"fmt"
	"sort"
	"strings"
)

// Header is a case-insensitive multimap of header fields. Keys are stored
// in canonical form (Title-Case per segment).
type Header map[string][]string

// CanonicalKey converts a header name to its canonical Title-Case form,
// e.g. "content-length" -> "Content-Length".
func CanonicalKey(k string) string {
	b := []byte(k)
	upper := true
	for i, c := range b {
		switch {
		case upper && 'a' <= c && c <= 'z':
			b[i] = c - 'a' + 'A'
		case !upper && 'A' <= c && c <= 'Z':
			b[i] = c - 'A' + 'a'
		}
		upper = c == '-'
	}
	return string(b)
}

// Set replaces all values of key with value.
func (h Header) Set(key, value string) { h[CanonicalKey(key)] = []string{value} }

// Add appends value to key.
func (h Header) Add(key, value string) {
	ck := CanonicalKey(key)
	h[ck] = append(h[ck], value)
}

// Get returns the first value of key, or "".
func (h Header) Get(key string) string {
	v := h[CanonicalKey(key)]
	if len(v) == 0 {
		return ""
	}
	return v[0]
}

// Del removes key.
func (h Header) Del(key string) { delete(h, CanonicalKey(key)) }

// Has reports whether key is present.
func (h Header) Has(key string) bool {
	_, ok := h[CanonicalKey(key)]
	return ok
}

// Clone returns a deep copy of the header.
func (h Header) Clone() Header {
	out := make(Header, len(h))
	for k, vs := range h {
		out[k] = append([]string(nil), vs...)
	}
	return out
}

// writeTo serializes the header fields in sorted key order (deterministic
// output simplifies testing and diffing captures).
func (h Header) writeTo(sb *strings.Builder) {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range h[k] {
			fmt.Fprintf(sb, "%s: %s\r\n", k, v)
		}
	}
}

// PseudoEchoPrefix is prepended to HTTP/2+ pseudo-header names when an app
// server echoes them back in a 379 response (§5.2: "request pseudo-headers
// are echoed in the response message with a special prefix").
const PseudoEchoPrefix = "Pseudo-Echo-"

// EchoPseudoHeader converts a pseudo-header name like ":path" to its echo
// form "Pseudo-Echo-Path".
func EchoPseudoHeader(name string) string {
	return PseudoEchoPrefix + CanonicalKey(strings.TrimPrefix(name, ":"))
}

// UnechoPseudoHeader reverses EchoPseudoHeader; ok is false if name is not
// an echoed pseudo-header.
func UnechoPseudoHeader(name string) (pseudo string, ok bool) {
	ck := CanonicalKey(name)
	if !strings.HasPrefix(ck, PseudoEchoPrefix) {
		return "", false
	}
	return ":" + strings.ToLower(strings.TrimPrefix(ck, PseudoEchoPrefix)), true
}
