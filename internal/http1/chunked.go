package http1

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
)

// ChunkedWriter encodes a body stream with chunked transfer encoding. It
// exposes its framing state so a proxy implementing Partial Post Replay
// can report exactly where forwarding stopped (§5.2: "A proxy implementing
// PPR must remember the exact state of forwarding the body ... whether it
// is in the middle or at the beginning of a chunk").
type ChunkedWriter struct {
	w io.Writer
	// bytesWritten counts decoded body bytes emitted so far.
	bytesWritten int64
	closed       bool
	// Per-chunk scratch: the hex size header and the three-element vector
	// handed to net.Buffers live on the writer so encoding a chunk
	// allocates nothing and reaches the socket in one writev.
	hdr  [18]byte // 16 hex digits + CRLF
	vec  [3][]byte
	bufs net.Buffers
}

var crlf = []byte("\r\n")

// NewChunkedWriter wraps w.
func NewChunkedWriter(w io.Writer) *ChunkedWriter { return &ChunkedWriter{w: w} }

// Write emits p as a single chunk (header + payload + CRLF).
func (cw *ChunkedWriter) Write(p []byte) (int, error) {
	if cw.closed {
		return 0, errors.New("http1: write on closed chunked writer")
	}
	if len(p) == 0 {
		return 0, nil
	}
	hdr := strconv.AppendUint(cw.hdr[:0], uint64(len(p)), 16)
	hdr = append(hdr, '\r', '\n')
	cw.vec[0] = hdr
	cw.vec[1] = p
	cw.vec[2] = crlf
	cw.bufs = cw.vec[:]
	_, err := cw.bufs.WriteTo(cw.w)
	cw.vec[1] = nil // do not retain the caller's payload
	if err != nil {
		return 0, err
	}
	cw.bytesWritten += int64(len(p))
	return len(p), nil
}

// BytesWritten returns the number of decoded body bytes emitted.
func (cw *ChunkedWriter) BytesWritten() int64 { return cw.bytesWritten }

// Close emits the terminal zero-length chunk.
func (cw *ChunkedWriter) Close() error {
	if cw.closed {
		return nil
	}
	cw.closed = true
	_, err := io.WriteString(cw.w, "0\r\n\r\n")
	return err
}

// ChunkedReader decodes a chunked transfer encoding. Like ChunkedWriter it
// exposes framing state: Offset reports decoded body bytes consumed, and
// InChunk reports whether the reader stopped mid-chunk.
type ChunkedReader struct {
	br        *bufio.Reader
	remaining int64  // bytes left in the current chunk payload
	offset    int64  // total decoded bytes returned
	lineBuf   []byte // partial framing line retained across timeouts
	done      bool
	err       error
}

// NewChunkedReader wraps br.
func NewChunkedReader(br *bufio.Reader) *ChunkedReader { return &ChunkedReader{br: br} }

// Offset returns the number of decoded body bytes returned so far.
func (cr *ChunkedReader) Offset() int64 { return cr.offset }

// InChunk reports whether the decoder is positioned in the middle of a
// chunk payload.
func (cr *ChunkedReader) InChunk() bool { return cr.remaining > 0 }

// Done reports whether the terminal chunk has been consumed.
func (cr *ChunkedReader) Done() bool { return cr.done }

// errLineTooLong bounds framing lines to fence off malformed peers.
var errLineTooLong = errors.New("http1: chunk framing line too long")

// readLineResumable reads a CRLF-terminated framing line, preserving any
// partial line across timeout errors so a read interrupted by a deadline
// (the PPR drain kick) can resume without corrupting the framing state.
//
// The returned slice is valid only until the next read on cr — it aliases
// either bufio's internal buffer (the common, zero-allocation case) or
// cr.lineBuf. Callers consume it immediately.
func (cr *ChunkedReader) readLineResumable() ([]byte, error) {
	for {
		frag, err := cr.br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			// Line longer than bufio's buffer: spill and keep reading.
			cr.lineBuf = append(cr.lineBuf, frag...)
			if len(cr.lineBuf) > 64<<10 {
				return nil, errLineTooLong
			}
			continue
		}
		if err != nil {
			// Retain the partial line (timeouts resume here; terminal
			// errors make the retained bytes moot).
			cr.lineBuf = append(cr.lineBuf, frag...)
			if len(cr.lineBuf) > 64<<10 {
				return nil, errLineTooLong
			}
			return nil, err
		}
		var line []byte
		if len(cr.lineBuf) > 0 {
			line = append(cr.lineBuf, frag...)
			cr.lineBuf = cr.lineBuf[:0]
			if len(line) > 64<<10 {
				return nil, errLineTooLong
			}
		} else {
			line = frag
		}
		line = line[:len(line)-1] // strip \n
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		return line, nil
	}
}

// parseHexUint parses a bare hexadecimal chunk size (no sign, no prefix).
func parseHexUint(b []byte) (int64, bool) {
	if len(b) == 0 || len(b) > 16 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		var d uint64
		switch {
		case '0' <= c && c <= '9':
			d = uint64(c - '0')
		case 'a' <= c && c <= 'f':
			d = uint64(c-'a') + 10
		case 'A' <= c && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		n = n<<4 | d
	}
	if n > 1<<62 {
		return 0, false
	}
	return int64(n), true
}

func (cr *ChunkedReader) beginChunk() error {
	line, err := cr.readLineResumable()
	if err != nil {
		return err
	}
	// Ignore chunk extensions.
	if i := bytes.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	n, ok := parseHexUint(line)
	if !ok {
		return fmt.Errorf("http1: malformed chunk header %q", line)
	}
	if n == 0 {
		// Terminal chunk: consume the trailer (we support only the empty
		// trailer — a bare CRLF).
		tl, err := cr.readLineResumable()
		if err != nil {
			return err
		}
		if len(tl) != 0 {
			return fmt.Errorf("http1: unsupported chunk trailer %q", tl)
		}
		cr.done = true
		return io.EOF
	}
	cr.remaining = n
	return nil
}

// isTimeout reports whether err is a resumable network timeout.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Read implements io.Reader over the decoded body. Network timeouts are
// resumable: framing state (including partial chunk-header lines) is
// preserved, so a caller using read deadlines as interruption points can
// keep decoding afterwards. All other errors are terminal.
func (cr *ChunkedReader) Read(p []byte) (int, error) {
	if cr.err != nil {
		return 0, cr.err
	}
	if cr.done {
		return 0, io.EOF
	}
	if cr.remaining == 0 {
		if err := cr.beginChunk(); err != nil {
			if err == io.EOF && cr.done {
				cr.err = err
				return 0, err
			}
			if !isTimeout(err) {
				cr.err = err
			}
			return 0, err
		}
	}
	if int64(len(p)) > cr.remaining {
		p = p[:cr.remaining]
	}
	n, err := cr.br.Read(p)
	cr.remaining -= int64(n)
	cr.offset += int64(n)
	if err != nil {
		if !isTimeout(err) {
			cr.err = err
		}
		return n, err
	}
	if cr.remaining == 0 {
		// Consume the chunk-terminating CRLF.
		if line, err := cr.readLineResumable(); err != nil {
			if !isTimeout(err) {
				cr.err = err
			}
			return n, err
		} else if len(line) != 0 {
			cr.err = fmt.Errorf("http1: chunk not terminated by CRLF, got %q", line)
			return n, cr.err
		}
	}
	return n, nil
}

// readLine reads a CRLF- (or bare-LF-) terminated line, without the
// terminator. Lines are bounded to 64 KiB to fence off malformed peers.
func readLine(br *bufio.Reader) (string, error) {
	const maxLine = 64 << 10
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > maxLine {
		return "", errors.New("http1: header line too long")
	}
	line = line[:len(line)-1] // strip \n
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, nil
}
