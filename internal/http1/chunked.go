package http1

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
)

// ChunkedWriter encodes a body stream with chunked transfer encoding. It
// exposes its framing state so a proxy implementing Partial Post Replay
// can report exactly where forwarding stopped (§5.2: "A proxy implementing
// PPR must remember the exact state of forwarding the body ... whether it
// is in the middle or at the beginning of a chunk").
type ChunkedWriter struct {
	w io.Writer
	// bytesWritten counts decoded body bytes emitted so far.
	bytesWritten int64
	closed       bool
}

// NewChunkedWriter wraps w.
func NewChunkedWriter(w io.Writer) *ChunkedWriter { return &ChunkedWriter{w: w} }

// Write emits p as a single chunk (header + payload + CRLF).
func (cw *ChunkedWriter) Write(p []byte) (int, error) {
	if cw.closed {
		return 0, errors.New("http1: write on closed chunked writer")
	}
	if len(p) == 0 {
		return 0, nil
	}
	if _, err := fmt.Fprintf(cw.w, "%x\r\n", len(p)); err != nil {
		return 0, err
	}
	if _, err := cw.w.Write(p); err != nil {
		return 0, err
	}
	if _, err := io.WriteString(cw.w, "\r\n"); err != nil {
		return 0, err
	}
	cw.bytesWritten += int64(len(p))
	return len(p), nil
}

// BytesWritten returns the number of decoded body bytes emitted.
func (cw *ChunkedWriter) BytesWritten() int64 { return cw.bytesWritten }

// Close emits the terminal zero-length chunk.
func (cw *ChunkedWriter) Close() error {
	if cw.closed {
		return nil
	}
	cw.closed = true
	_, err := io.WriteString(cw.w, "0\r\n\r\n")
	return err
}

// ChunkedReader decodes a chunked transfer encoding. Like ChunkedWriter it
// exposes framing state: Offset reports decoded body bytes consumed, and
// InChunk reports whether the reader stopped mid-chunk.
type ChunkedReader struct {
	br        *bufio.Reader
	remaining int64  // bytes left in the current chunk payload
	offset    int64  // total decoded bytes returned
	lineBuf   []byte // partial framing line retained across timeouts
	done      bool
	err       error
}

// NewChunkedReader wraps br.
func NewChunkedReader(br *bufio.Reader) *ChunkedReader { return &ChunkedReader{br: br} }

// Offset returns the number of decoded body bytes returned so far.
func (cr *ChunkedReader) Offset() int64 { return cr.offset }

// InChunk reports whether the decoder is positioned in the middle of a
// chunk payload.
func (cr *ChunkedReader) InChunk() bool { return cr.remaining > 0 }

// Done reports whether the terminal chunk has been consumed.
func (cr *ChunkedReader) Done() bool { return cr.done }

// readLineResumable reads a CRLF-terminated framing line, preserving any
// partial line across timeout errors so a read interrupted by a deadline
// (the PPR drain kick) can resume without corrupting the framing state.
func (cr *ChunkedReader) readLineResumable() (string, error) {
	for {
		frag, err := cr.br.ReadString('\n')
		cr.lineBuf = append(cr.lineBuf, frag...)
		if err != nil {
			return "", err
		}
		if len(cr.lineBuf) > 64<<10 {
			return "", errors.New("http1: chunk framing line too long")
		}
		line := cr.lineBuf[:len(cr.lineBuf)-1] // strip \n
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		out := string(line)
		cr.lineBuf = cr.lineBuf[:0]
		return out, nil
	}
}

func (cr *ChunkedReader) beginChunk() error {
	line, err := cr.readLineResumable()
	if err != nil {
		return err
	}
	// Ignore chunk extensions.
	if i := indexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	n, err := strconv.ParseInt(line, 16, 64)
	if err != nil || n < 0 {
		return fmt.Errorf("http1: malformed chunk header %q", line)
	}
	if n == 0 {
		// Terminal chunk: consume the trailer (we support only the empty
		// trailer — a bare CRLF).
		tl, err := cr.readLineResumable()
		if err != nil {
			return err
		}
		if tl != "" {
			return fmt.Errorf("http1: unsupported chunk trailer %q", tl)
		}
		cr.done = true
		return io.EOF
	}
	cr.remaining = n
	return nil
}

// isTimeout reports whether err is a resumable network timeout.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Read implements io.Reader over the decoded body. Network timeouts are
// resumable: framing state (including partial chunk-header lines) is
// preserved, so a caller using read deadlines as interruption points can
// keep decoding afterwards. All other errors are terminal.
func (cr *ChunkedReader) Read(p []byte) (int, error) {
	if cr.err != nil {
		return 0, cr.err
	}
	if cr.done {
		return 0, io.EOF
	}
	if cr.remaining == 0 {
		if err := cr.beginChunk(); err != nil {
			if err == io.EOF && cr.done {
				cr.err = err
				return 0, err
			}
			if !isTimeout(err) {
				cr.err = err
			}
			return 0, err
		}
	}
	if int64(len(p)) > cr.remaining {
		p = p[:cr.remaining]
	}
	n, err := cr.br.Read(p)
	cr.remaining -= int64(n)
	cr.offset += int64(n)
	if err != nil {
		if !isTimeout(err) {
			cr.err = err
		}
		return n, err
	}
	if cr.remaining == 0 {
		// Consume the chunk-terminating CRLF.
		if line, err := cr.readLineResumable(); err != nil {
			if !isTimeout(err) {
				cr.err = err
			}
			return n, err
		} else if line != "" {
			cr.err = fmt.Errorf("http1: chunk not terminated by CRLF, got %q", line)
			return n, cr.err
		}
	}
	return n, nil
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// readLine reads a CRLF- (or bare-LF-) terminated line, without the
// terminator. Lines are bounded to 64 KiB to fence off malformed peers.
func readLine(br *bufio.Reader) (string, error) {
	const maxLine = 64 << 10
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > maxLine {
		return "", errors.New("http1: header line too long")
	}
	line = line[:len(line)-1] // strip \n
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, nil
}
