package takeover

// Drain-undo (ProtoDrainUndo) coverage: the post-commit lease between the
// sender's retained FD dups and the receiver's READY frame. These tests
// pin the three contracts the revision adds on top of two-phase:
//
//   1. A committed hand-off whose receiver never confirms serving is
//      UNDONE — the sender re-arms the very same kernel sockets from its
//      retained dups (verified by SO_COOKIE identity) and resumes,
//      classified ErrUndone on the receiver so orchestrators may retry.
//   2. The lease frames are invisible to pre-v3 peers: mixed-version
//      hand-offs negotiate down to plain two-phase (or one-shot) and the
//      wire after COMMIT stays byte-identical to the old protocol.
//   3. Every descriptor the recovery window creates is accounted for:
//      retained dups are closed after READY, consumed (not leaked) by a
//      successful undo, measured against /proc/self/fd ground truth.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"zdr/internal/faults"
	"zdr/internal/netx"
	"zdr/internal/obs"
)

// cookieOf returns the kernel socket cookie of a TCP listener — the
// identity that proves a re-armed listener is the same socket, not a
// fresh bind on the same address.
func cookieOf(t *testing.T, ln *net.TCPListener) uint64 {
	t.Helper()
	c, err := netx.SocketCookie(ln)
	if err != nil {
		t.Fatalf("socket cookie: %v", err)
	}
	return c
}

// TestDrainUndoHappyPath drives the full v3 lease by hand on a
// socketpair: the sender retains dups past COMMIT, the receiver's
// readiness gate runs, READY releases the lease, and the drain-start
// confirmation completes the epilogue. Afterwards the retained set closes
// to the FD baseline.
func TestDrainUndoHappyPath(t *testing.T) {
	set := mustListen(t,
		VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"},
		VIP{Name: "quic", Network: NetworkUDP, Addr: "127.0.0.1:0"},
	)
	before, err := netx.OpenFDCount()
	if err != nil {
		t.Fatal(err)
	}
	a, b := pair(t)

	type sendOut struct {
		res *Result
		err error
	}
	sendCh := make(chan sendOut, 1)
	go func() {
		res, err := Handoff(a, set, HandoffOptions{Timeout: 2 * time.Second, Proto: ProtoDrainUndo})
		if err == nil {
			// A bare v3 sender owns the lease: await READY, then release
			// it with the drain-start confirmation (what
			// Server.ListenAndServe does automatically).
			if lerr := awaitReady(a, 2*time.Second); lerr != nil {
				err = lerr
			} else if lerr := writeFrame(a, msgDrainStarted, nil, nil); lerr != nil {
				err = lerr
			}
		}
		sendCh <- sendOut{res, err}
	}()

	gateRan := false
	got, res, err := Receive(b, ReceiveOptions{
		Timeout: 2 * time.Second,
		Ready: func(s *ListenerSet, r *Result) error {
			gateRan = true
			if !r.Committed {
				t.Error("Ready gate ran before commit")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("v3 receive: %v", err)
	}
	defer got.Close()
	if !gateRan {
		t.Fatal("readiness gate never ran on a v3 hand-off")
	}
	if res.Proto != ProtoDrainUndo || !res.Ready || !res.DrainConfirmed {
		t.Fatalf("res = proto %d ready %v drainConfirmed %v, want v3/true/true",
			res.Proto, res.Ready, res.DrainConfirmed)
	}

	out := <-sendCh
	if out.err != nil {
		t.Fatalf("v3 sender: %v", out.err)
	}
	if out.res.Retained == nil {
		t.Fatal("v3 sender retained nothing past commit")
	}
	if n := out.res.Retained.Len(); n != 2 {
		t.Fatalf("retained %d fds, want 2", n)
	}
	// Lease released: the dups close and the FD ledger balances (the
	// receiver's adopted set and the original set are still open — only
	// the hand-off's own copies must be gone).
	out.res.Retained.Close()
	a.Close()
	b.Close()
	set.Close()
	got.Close()
	// before counted the 2 original sockets; with original, adopted and
	// retained copies all closed, the ledger lands exactly 2 below it.
	if n := waitFDCount(t, before-2); n != before-2 {
		t.Fatalf("fd ledger after happy-path v3: %d, want %d", n, before-2)
	}
}

// TestDrainUndoReadyGateStepsDown is the tentpole's core failure edge in
// unit form: the receiver commits, then its readiness gate fails. The
// receiver must disarm and classify ErrUndone; the sender's lease breaks
// and Rearm must restore accepting listeners that are the SAME kernel
// sockets (SO_COOKIE identity), with a client connection queued during
// the recovery window accepted, not reset.
func TestDrainUndoReadyGateStepsDown(t *testing.T) {
	set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	origCookie := cookieOf(t, set.TCP("web"))
	addr := set.TCP("web").Addr().String()
	before, err := netx.OpenFDCount()
	if err != nil {
		t.Fatal(err)
	}
	a, b := pair(t)

	type sendOut struct {
		res *Result
		err error
	}
	sendCh := make(chan sendOut, 1)
	go func() {
		res, err := Handoff(a, set, HandoffOptions{Timeout: 2 * time.Second, Proto: ProtoDrainUndo})
		sendCh <- sendOut{res, err}
	}()

	disarmed := false
	_, _, rerr := Receive(b, ReceiveOptions{
		Timeout: 2 * time.Second,
		Arm:     func(*ListenerSet, *Result) error { return nil },
		Disarm:  func(s *ListenerSet) { disarmed = true; s.Close() },
		Ready: func(*ListenerSet, *Result) error {
			return errors.New("healthz never went green")
		},
	})
	if !errors.Is(rerr, ErrUndone) {
		t.Fatalf("failed readiness gate classified %v, want ErrUndone", rerr)
	}
	if errors.Is(rerr, ErrAborted) {
		t.Fatal("post-commit undo must not masquerade as a pre-commit abort")
	}
	if !disarmed {
		t.Fatal("receiver stepped down without running Disarm")
	}
	b.Close()

	out := <-sendCh
	if out.err != nil {
		t.Fatalf("sender: %v", out.err)
	}
	if out.res.Retained == nil {
		t.Fatal("sender retained nothing to undo from")
	}
	// The lease breaks: the sender's await fails against the dead session.
	if lerr := awaitReady(a, time.Second); lerr == nil {
		t.Fatal("awaitReady succeeded against a stepped-down receiver")
	}
	a.Close()

	// The old instance stopped accepting at commit; a client arriving in
	// the recovery window sits in the kernel backlog of the still-open
	// socket.
	dialErr := make(chan error, 1)
	go func() {
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			c.Close()
		}
		dialErr <- err
	}()

	rearmed, err := out.res.Retained.Rearm()
	if err != nil {
		t.Fatalf("rearm: %v", err)
	}
	defer rearmed.Close()
	if cookieOf(t, rearmed.TCP("web")) != origCookie {
		t.Fatal("re-armed listener is not the original kernel socket")
	}
	conn, err := rearmed.TCP("web").Accept()
	if err != nil {
		t.Fatalf("accept on re-armed listener: %v", err)
	}
	conn.Close()
	if err := <-dialErr; err != nil {
		t.Fatalf("client queued during the recovery window was reset: %v", err)
	}

	// Ledger: original set + re-armed dups are the only live sockets.
	set.Close()
	rearmed.Close()
	if n := waitFDCount(t, before-1); n != before-1 {
		t.Fatalf("fd ledger after undo: %d, want %d", n, before-1)
	}
}

// TestServerLeaseBreakUndo runs the whole machine: a Server offering v3
// (OnUndo set) against Connect with a failing readiness gate. The server
// must re-arm, report the undo through OnUndo/OnHandoffError, record a
// takeover.undo span carrying the retained-FD count, and keep serving
// hand-offs so the very next attempt (healthy gate) succeeds.
func TestServerLeaseBreakUndo(t *testing.T) {
	set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	origCookie := cookieOf(t, set.TCP("web"))
	path := filepath.Join(t.TempDir(), "takeover.sock")
	tracer := obs.NewTracer("undo-test")

	var (
		mu         sync.Mutex
		undoCause  error
		undoCookie uint64
		handErrs   []error
		drains     int
	)
	srv := &Server{
		Set:    set,
		Tracer: tracer,
		OnDrainStart: func(Result) {
			mu.Lock()
			drains++
			mu.Unlock()
		},
		OnUndo: func(rearmed *ListenerSet, cause error) {
			mu.Lock()
			undoCause = cause
			undoCookie, _ = netx.SocketCookie(rearmed.TCP("web"))
			mu.Unlock()
			rearmed.Close()
		},
		OnHandoffError: func(err error) {
			mu.Lock()
			handErrs = append(handErrs, err)
			mu.Unlock()
		},
	}
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.ListenAndServe(path) }()
	defer srv.Close()

	// Attempt 1: receiver commits, then refuses to confirm serving.
	_, _, err := Connect(path, ConnectOptions{ReceiveOptions: ReceiveOptions{
		Timeout: 2 * time.Second,
		Ready:   func(*ListenerSet, *Result) error { return errors.New("injected unready receiver") },
	}})
	if !errors.Is(err, ErrUndone) {
		t.Fatalf("connect against unready gate classified %v, want ErrUndone", err)
	}

	// Attempt 2: a fresh, healthy receiver. The un-drained server must
	// still be accepting hand-offs on the same path.
	got, res, err := Connect(path, ConnectOptions{ReceiveOptions: ReceiveOptions{
		Timeout: 2 * time.Second,
		Ready:   func(*ListenerSet, *Result) error { return nil },
	}})
	if err != nil {
		t.Fatalf("retry after undo: %v", err)
	}
	defer got.Close()
	if res.Proto != ProtoDrainUndo || !res.Ready || !res.DrainConfirmed {
		t.Fatalf("retry res = proto %d ready %v drain %v", res.Proto, res.Ready, res.DrainConfirmed)
	}
	if err := <-srvDone; err != nil {
		t.Fatalf("server exit: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if drains != 2 {
		t.Fatalf("OnDrainStart ran %d time(s), want 2 (undone + final)", drains)
	}
	if undoCause == nil {
		t.Fatal("OnUndo never ran")
	}
	if undoCookie != origCookie {
		t.Fatalf("OnUndo re-armed cookie %d, want original %d", undoCookie, origCookie)
	}
	if len(handErrs) != 1 || !errors.Is(handErrs[0], ErrUndone) {
		t.Fatalf("OnHandoffError calls = %v, want exactly one ErrUndone", handErrs)
	}

	var undoSpans, readySpans int
	for _, r := range tracer.Finished() {
		switch r.Name {
		case obs.SpanTakeoverUndo:
			undoSpans++
			if r.Attrs["retained_fds"] != strconv.Itoa(1) {
				t.Fatalf("takeover.undo retained_fds = %q, want \"1\"", r.Attrs["retained_fds"])
			}
			if r.Attrs["cause"] == "" {
				t.Fatal("takeover.undo span has no cause attr")
			}
		case obs.SpanTakeoverReady:
			readySpans++
		}
	}
	if undoSpans != 1 {
		t.Fatalf("takeover.undo spans = %d, want 1", undoSpans)
	}
	if readySpans < 2 {
		t.Fatalf("takeover.ready spans = %d, want >= 2 (both sides, both attempts)", readySpans)
	}
}

// TestServerReadyTimeoutUndo covers the wedged-receiver instant: commit
// lands, the receiver neither confirms nor dies. The sender's lease
// expires (ReadyTimeout) and the hand-off is undone exactly as for a
// crash; the wedged receiver's late READY meets a closed session and
// classifies ErrUndone on its side too.
func TestServerReadyTimeoutUndo(t *testing.T) {
	set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	path := filepath.Join(t.TempDir(), "takeover.sock")

	undone := make(chan error, 1)
	srv := &Server{
		Set:          set,
		ReadyTimeout: 150 * time.Millisecond,
		OnUndo: func(rearmed *ListenerSet, cause error) {
			rearmed.Close()
			undone <- cause
		},
	}
	go srv.ListenAndServe(path)
	defer srv.Close()

	_, _, err := Connect(path, ConnectOptions{ReceiveOptions: ReceiveOptions{
		Timeout: 2 * time.Second,
		Ready: func(*ListenerSet, *Result) error {
			time.Sleep(600 * time.Millisecond) // wedge past the lease
			return nil
		},
	}})
	if !errors.Is(err, ErrUndone) {
		t.Fatalf("wedged receiver classified %v, want ErrUndone", err)
	}
	select {
	case cause := <-undone:
		if cause == nil {
			t.Fatal("undo with nil cause")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sender never undid the wedged hand-off")
	}
}

// legacyAckV2 is the pre-drain-undo confirmation: OK/Adopted/Trace and
// crucially NO proto field — a real v2 binary answers a v3 offer with
// this exact shape, and the sender must read the absence as "this peer
// will never run the lease epilogue".
type legacyAckV2 struct {
	OK      bool   `json:"ok"`
	Adopted int    `json:"adopted"`
	Err     string `json:"err,omitempty"`
	Trace   string `json:"trace,omitempty"`
}

// legacyReceiveV2 replicates the pre-v3 two-phase receiver byte for byte:
// manifest+FDs, PREPARE-ACK without a proto field, COMMIT await, return.
// It neither writes READY nor waits for the drain-start confirmation.
func legacyReceiveV2(conn *net.UnixConn, timeout time.Duration) (*ListenerSet, error) {
	conn.SetDeadline(time.Now().Add(timeout))
	defer conn.SetDeadline(time.Time{})
	kind, payload, fds, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	if kind != msgManifest {
		closeFDs(fds)
		return nil, fmt.Errorf("legacy v2 receiver: expected manifest, got frame kind %d", kind)
	}
	var m manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		closeFDs(fds)
		return nil, err
	}
	if m.Magic != magic || m.Version != version {
		closeFDs(fds)
		return nil, errors.New("legacy v2 receiver: bad manifest")
	}
	set, _, err := adoptFDs(m.VIPs, fds)
	if err != nil {
		set.Close()
		return nil, err
	}
	ackPayload, err := json.Marshal(legacyAckV2{OK: true, Adopted: set.Len()})
	if err != nil {
		set.Close()
		return nil, err
	}
	if m.Proto == 0 {
		// v1 sender: single ack is the whole exchange.
		if err := writeFrame(conn, msgAck, ackPayload, nil); err != nil {
			set.Close()
			return nil, err
		}
		return set, nil
	}
	if err := writeFrame(conn, msgPrepareAck, ackPayload, nil); err != nil {
		set.Close()
		return nil, err
	}
	kind, _, stray, err := readFrame(conn)
	closeFDs(stray)
	if err != nil {
		set.Close()
		return nil, err
	}
	if kind != msgCommit {
		set.Close()
		return nil, fmt.Errorf("legacy v2 receiver: expected commit, got frame kind %d", kind)
	}
	return set, nil
}

// TestV3SenderToV2Receiver pins the downgrade: a ProtoDrainUndo offer
// against a frozen v2 receiver double must negotiate down to plain
// two-phase — no retained FDs, no lease — and the sender must write
// nothing after COMMIT that a v2 binary would not expect (no READY wait
// means no drain-start probe either on the bare sender).
func TestV3SenderToV2Receiver(t *testing.T) {
	set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	a, b := pair(t)

	type recvOut struct {
		set *ListenerSet
		err error
	}
	recvCh := make(chan recvOut, 1)
	go func() {
		s, err := legacyReceiveV2(b, 2*time.Second)
		recvCh <- recvOut{s, err}
	}()

	res, err := Handoff(a, set, HandoffOptions{Timeout: 2 * time.Second, Proto: ProtoDrainUndo})
	if err != nil {
		t.Fatalf("v3 sender against v2 receiver: %v", err)
	}
	if res.Proto != ProtoTwoPhase {
		t.Fatalf("negotiated proto = %d, want %d (downgraded two-phase)", res.Proto, ProtoTwoPhase)
	}
	if res.Retained != nil {
		t.Fatal("sender retained FDs for a peer that will never release the lease")
	}

	out := <-recvCh
	if out.err != nil {
		t.Fatalf("legacy v2 receiver: %v", out.err)
	}
	defer out.set.Close()
	// Nothing after COMMIT: a READY-expecting sender would now be reading,
	// and a confused one might write lease frames the v2 peer cannot parse.
	b.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 16)
	if n, _ := b.Read(buf); n != 0 {
		t.Fatalf("v3 sender wrote %d byte(s) after commit to a v2 peer (frame kind %d)", n, buf[0])
	}
	assertListenerServes(t, out.set, "web")
}

// TestV2SenderToV3Receiver pins the other direction: a v2 sender (no v3
// offer) against the newest receiver. The receiver must not run its
// readiness gate, must not write READY, and must report the negotiated
// two-phase revision.
func TestV2SenderToV3Receiver(t *testing.T) {
	set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	a, b := pair(t)

	sendCh := make(chan *Result, 1)
	sendErr := make(chan error, 1)
	go func() {
		// Proto: ProtoTwoPhase is wire-identical to the previous release's
		// sender: manifest proto=2, commit, no lease.
		res, err := Handoff(a, set, HandoffOptions{Timeout: 2 * time.Second, Proto: ProtoTwoPhase})
		sendCh <- res
		sendErr <- err
	}()

	got, res, err := Receive(b, ReceiveOptions{
		Timeout: 2 * time.Second,
		Ready: func(*ListenerSet, *Result) error {
			t.Error("readiness gate ran against a v2 sender")
			return nil
		},
	})
	if err != nil {
		t.Fatalf("v3 receiver against v2 sender: %v", err)
	}
	defer got.Close()
	if res.Proto != ProtoTwoPhase || res.Ready {
		t.Fatalf("res = proto %d ready %v, want two-phase, no READY", res.Proto, res.Ready)
	}
	if err := <-sendErr; err != nil {
		t.Fatalf("v2 sender: %v", err)
	}
	if sres := <-sendCh; sres.Retained != nil {
		t.Fatal("two-phase sender retained FDs")
	}
	// The receiver must not have written a READY frame the v2 sender
	// would misparse.
	a.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 16)
	if n, _ := a.Read(buf); n != 0 {
		t.Fatalf("v3 receiver wrote %d byte(s) a v2 sender never reads (frame kind %d)", n, buf[0])
	}
}

// TestV3SenderToV1Receiver: the oldest peer in the fleet. The v1 double
// answers with a bare single ACK; the v3 offer must complete as a
// one-shot hand-off with no commit frame, no lease, no retained FDs.
func TestV3SenderToV1Receiver(t *testing.T) {
	set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	a, b := pair(t)

	type recvOut struct {
		set *ListenerSet
		err error
	}
	recvCh := make(chan recvOut, 1)
	go func() {
		s, err := legacyReceiveV1(b, 2*time.Second)
		recvCh <- recvOut{s, err}
	}()

	res, err := Handoff(a, set, HandoffOptions{Timeout: 2 * time.Second, Proto: ProtoDrainUndo})
	if err != nil {
		t.Fatalf("v3 sender against v1 receiver: %v", err)
	}
	if res.Proto != ProtoOneShot || res.Retained != nil {
		t.Fatalf("res = proto %d retained %v, want one-shot, nil", res.Proto, res.Retained)
	}
	out := <-recvCh
	if out.err != nil {
		t.Fatalf("legacy v1 receiver: %v", out.err)
	}
	defer out.set.Close()
	b.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 16)
	if n, _ := b.Read(buf); n != 0 {
		t.Fatalf("v3 sender wrote %d byte(s) after a v1 ack (frame kind %d)", n, buf[0])
	}
	assertListenerServes(t, out.set, "web")
}

// TestDeprecatedWrappersDelegate pins the consolidation satellite: every
// legacy entry-point name must remain a compile-clean delegation to its
// canonical options-struct form with identical behaviour.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	t.Run("HandoffMeta-ReceiveTraced", func(t *testing.T) {
		set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
		a, b := pair(t)
		sendErr := make(chan error, 1)
		go func() {
			_, err := HandoffMeta(a, set, map[string]string{"k": "v"}, 2*time.Second)
			sendErr <- err
		}()
		got, res, err := ReceiveTraced(b, 2*time.Second, nil)
		if err != nil {
			t.Fatalf("ReceiveTraced: %v", err)
		}
		defer got.Close()
		if res.Meta["k"] != "v" {
			t.Fatalf("meta lost through wrappers: %v", res.Meta)
		}
		if err := <-sendErr; err != nil {
			t.Fatalf("HandoffMeta: %v", err)
		}
	})
	t.Run("HandoffWith-ReceiveWith", func(t *testing.T) {
		set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
		a, b := pair(t)
		sendErr := make(chan error, 1)
		go func() {
			_, err := HandoffWith(a, set, HandoffOptions{Timeout: 2 * time.Second})
			sendErr <- err
		}()
		got, res, err := ReceiveWith(b, ReceiveOptions{Timeout: 2 * time.Second})
		if err != nil {
			t.Fatalf("ReceiveWith: %v", err)
		}
		defer got.Close()
		if res.Proto != ProtoTwoPhase {
			t.Fatalf("wrapper negotiated proto %d, want default two-phase", res.Proto)
		}
		if err := <-sendErr; err != nil {
			t.Fatalf("HandoffWith: %v", err)
		}
	})
	t.Run("ConnectBackoff-ConnectWith", func(t *testing.T) {
		set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
		path := filepath.Join(t.TempDir(), "takeover.sock")
		srv := &Server{Set: set}
		go srv.ListenAndServe(path)
		defer srv.Close()
		got, res, err := ConnectBackoff(path, 2*time.Second, faults.Backoff{})
		if err != nil {
			t.Fatalf("ConnectBackoff: %v", err)
		}
		defer got.Close()
		if !res.Committed {
			t.Fatal("wrapper hand-off not committed")
		}
		// ConnectWith must default its embedded Timeout from the positional
		// argument (the old signature's contract).
		if _, _, err := ConnectWith(filepath.Join(t.TempDir(), "absent.sock"),
			300*time.Millisecond, faults.Backoff{Attempts: 1}, ReceiveOptions{}); err == nil {
			t.Fatal("ConnectWith against an absent path succeeded")
		}
	})
}

// TestErrorTaxonomy pins the DESIGN.md §7 error lattice with errors.Is:
// the four sentinel classes are mutually exclusive and survive both the
// %w chains the package builds and the faults.Permanent wrapper Connect
// applies.
func TestErrorTaxonomy(t *testing.T) {
	undone := undoneErr(io.EOF)
	aborted := abortErr(io.EOF)
	cases := []struct {
		name string
		err  error
		is   []error
		not  []error
	}{
		{"undone", undone, []error{ErrUndone, io.EOF}, []error{ErrAborted, ErrRejected, ErrBadMagic}},
		{"aborted", aborted, []error{ErrAborted, io.EOF}, []error{ErrUndone, ErrRejected, ErrBadMagic}},
		{"undone-idempotent", undoneErr(undone), []error{ErrUndone}, []error{ErrAborted}},
		{"aborted-idempotent", abortErr(aborted), []error{ErrAborted}, []error{ErrUndone}},
		{"rejected", fmt.Errorf("%w: nacked", ErrRejected), []error{ErrRejected}, []error{ErrAborted, ErrUndone}},
		{"bad-magic", ErrBadMagic, []error{ErrBadMagic}, []error{ErrAborted, ErrUndone, ErrRejected}},
		// Connect wraps protocol failures in faults.Permanent before the
		// backoff unwraps them; classification must survive the round trip.
		{"undone-through-permanent", faults.Permanent(undone), []error{ErrUndone}, []error{ErrAborted}},
		{"aborted-through-permanent", faults.Permanent(aborted), []error{ErrAborted}, []error{ErrUndone}},
	}
	for _, tc := range cases {
		for _, want := range tc.is {
			if !errors.Is(tc.err, want) {
				t.Errorf("%s: errors.Is(%v, %v) = false, want true", tc.name, tc.err, want)
			}
		}
		for _, not := range tc.not {
			if errors.Is(tc.err, not) {
				t.Errorf("%s: errors.Is(%v, %v) = true, want false", tc.name, tc.err, not)
			}
		}
	}
	if undoneErr(nil) != nil || abortErr(nil) != nil {
		t.Fatal("classifiers must pass nil through")
	}
}

// TestRetainedSetLifecycle pins the RetainedSet contract: nil-safety,
// idempotent Close, single-consumption Rearm, and the full-count check
// that refuses a partial re-arm.
func TestRetainedSetLifecycle(t *testing.T) {
	var nilSet *RetainedSet
	if nilSet.Len() != 0 || nilSet.VIPs() != nil || nilSet.Close() != nil {
		t.Fatal("nil RetainedSet accessors must be safe no-ops")
	}
	if _, err := nilSet.Rearm(); err == nil {
		t.Fatal("nil Rearm succeeded")
	}

	set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	fds, err := set.fds()
	if err != nil {
		t.Fatal(err)
	}
	r := newRetainedSet(set.VIPs(), fds)
	if r.Len() != 1 || r.VIPs()[0].Name != "web" {
		t.Fatalf("retained set = len %d vips %v", r.Len(), r.VIPs())
	}
	rearmed, err := r.Rearm()
	if err != nil {
		t.Fatalf("rearm: %v", err)
	}
	rearmed.Close()
	if r.Len() != 0 {
		t.Fatal("Rearm did not consume the set")
	}
	if _, err := r.Rearm(); err == nil {
		t.Fatal("second Rearm succeeded on a consumed set")
	}
	if err := r.Close(); err != nil || r.Close() != nil {
		t.Fatal("Close after Rearm must be an idempotent no-op")
	}

	// Partial set: more VIPs than FDs must refuse to re-arm and close
	// everything rather than resume with a hole in the VIP coverage.
	fds2, err := set.fds()
	if err != nil {
		t.Fatal(err)
	}
	short := newRetainedSet(append(set.VIPs(), VIP{Name: "ghost", Network: NetworkTCP, Addr: "127.0.0.1:0"}), fds2)
	if _, err := short.Rearm(); err == nil {
		t.Fatal("partial re-arm succeeded")
	}
}
