package takeover

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"zdr/internal/netx"
)

func mustListen(t *testing.T, vips ...VIP) *ListenerSet {
	t.Helper()
	s, err := Listen(vips...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func pair(t *testing.T) (a, b *net.UnixConn) {
	t.Helper()
	a, b, err := netx.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestListenerSetBasics(t *testing.T) {
	s := mustListen(t,
		VIP{Name: "https", Network: NetworkTCP, Addr: "127.0.0.1:0"},
		VIP{Name: "quic", Network: NetworkUDP, Addr: "127.0.0.1:0"},
	)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.TCP("https") == nil || s.UDP("quic") == nil {
		t.Fatal("lookups failed")
	}
	if s.TCP("quic") != nil || s.UDP("https") != nil {
		t.Fatal("cross-network lookup should be nil")
	}
	if s.TCP("absent") != nil {
		t.Fatal("absent lookup should be nil")
	}
	vips := s.VIPs()
	if vips[0].Name != "https" || vips[1].Name != "quic" {
		t.Fatalf("vip order = %v", vips)
	}
}

func TestListenerSetRejectsDuplicateNames(t *testing.T) {
	s := mustListen(t, VIP{Name: "a", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	ln, err := netx.ListenTCPReusePort("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := s.AddTCP("a", ln); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestListenRejectsUnknownNetwork(t *testing.T) {
	if _, err := Listen(VIP{Name: "x", Network: "sctp", Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("expected error for unknown network")
	}
}

// TestHandoffEndToEnd is the core Socket Takeover test: old instance holds
// bound TCP+UDP VIPs, hands them to a new instance over a socketpair, the
// new instance serves connections on the very same sockets.
func TestHandoffEndToEnd(t *testing.T) {
	old := mustListen(t,
		VIP{Name: "https", Network: NetworkTCP, Addr: "127.0.0.1:0"},
		VIP{Name: "quic", Network: NetworkUDP, Addr: "127.0.0.1:0"},
	)
	tcpAddr := old.TCP("https").Addr().String()
	udpAddr := old.UDP("quic").LocalAddr().String()

	a, b := pair(t)
	var (
		wg      sync.WaitGroup
		sendRes *Result
		sendErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		sendRes, sendErr = Handoff(a, old, HandoffOptions{})
	}()
	got, recvRes, err := Receive(b, ReceiveOptions{})
	wg.Wait()
	if err != nil || sendErr != nil {
		t.Fatalf("receive err=%v send err=%v", err, sendErr)
	}
	defer got.Close()
	if recvRes.OrphanedFDs != 0 {
		t.Fatalf("orphaned fds = %d", recvRes.OrphanedFDs)
	}
	if len(sendRes.VIPs) != 2 || sendRes.VIPs[0].Name != "https" {
		t.Fatalf("send result vips = %v", sendRes.VIPs)
	}
	if got.TCP("https").Addr().String() != tcpAddr {
		t.Fatalf("reconstructed tcp bound to %s, want %s", got.TCP("https").Addr(), tcpAddr)
	}
	if got.UDP("quic").LocalAddr().String() != udpAddr {
		t.Fatalf("reconstructed udp bound to %s, want %s", got.UDP("quic").LocalAddr(), udpAddr)
	}

	// Old instance terminates (closes its sockets); new instance must
	// still serve both protocols with zero downtime.
	old.Close()

	acceptErr := make(chan error, 1)
	go func() {
		c, err := got.TCP("https").Accept()
		if err == nil {
			c.Write([]byte("hi"))
			c.Close()
		}
		acceptErr <- err
	}()
	c, err := net.DialTimeout("tcp", tcpAddr, 2*time.Second)
	if err != nil {
		t.Fatalf("tcp dial after takeover: %v", err)
	}
	buf := make([]byte, 2)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err != nil {
		t.Fatalf("tcp read after takeover: %v", err)
	}
	c.Close()
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}

	uc, err := net.Dial("udp", udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer uc.Close()
	uc.Write([]byte("ping"))
	got.UDP("quic").SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := got.UDP("quic").ReadFromUDP(buf[:2])
	if err != nil || n == 0 {
		t.Fatalf("udp read after takeover: n=%d err=%v", n, err)
	}
}

// TestHandoffManyVIPs transfers a realistic VIP count in one message.
func TestHandoffManyVIPs(t *testing.T) {
	var vips []VIP
	for i := 0; i < 20; i++ {
		vips = append(vips, VIP{Name: fmt.Sprintf("vip-%02d", i), Network: NetworkTCP, Addr: "127.0.0.1:0"})
	}
	old := mustListen(t, vips...)
	a, b := pair(t)
	go Handoff(a, old, HandoffOptions{})
	got, res, err := Receive(b, ReceiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if got.Len() != 20 || res.OrphanedFDs != 0 {
		t.Fatalf("len=%d orphans=%d", got.Len(), res.OrphanedFDs)
	}
	for i, v := range got.VIPs() {
		if v.Name != fmt.Sprintf("vip-%02d", i) {
			t.Fatalf("order broken at %d: %s", i, v.Name)
		}
	}
}

// TestReceiveRejectsBadMagic covers the §5.1 mis-deployment guard.
func TestReceiveRejectsBadMagic(t *testing.T) {
	a, b := pair(t)
	go func() {
		payload := []byte(`{"magic":1,"version":1,"vips":[]}`)
		writeFrame(a, msgManifest, payload, nil)
		readFrame(a) // drain the nack
	}()
	_, _, err := Receive(b, ReceiveOptions{Timeout: time.Second})
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReceiveRejectsBadVersion(t *testing.T) {
	a, b := pair(t)
	go func() {
		payload := []byte(`{"magic":23108,"version":9,"vips":[]}`)
		writeFrame(a, msgManifest, payload, nil)
		readFrame(a)
	}()
	_, _, err := Receive(b, ReceiveOptions{Timeout: time.Second})
	if err == nil || errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want version error", err)
	}
}

// TestReceiveClosesStrayFDs: more FDs than manifest entries → the receiver
// must close the strays (orphan prevention) and still succeed.
func TestReceiveClosesStrayFDs(t *testing.T) {
	set := mustListen(t,
		VIP{Name: "a", Network: NetworkTCP, Addr: "127.0.0.1:0"},
		VIP{Name: "b", Network: NetworkTCP, Addr: "127.0.0.1:0"},
	)
	a, b := pair(t)
	go func() {
		// Manifest declares only VIP "a" but both FDs ride along.
		m := manifest{Magic: magic, Version: version, VIPs: set.VIPs()[:1]}
		payload, _ := mustJSON(m)
		fds, _ := set.fds()
		writeFrame(a, msgManifest, payload, fds)
		for _, fd := range fds {
			closeFDs([]int{fd})
		}
		readFrame(a)
	}()
	got, res, err := Receive(b, ReceiveOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if got.Len() != 1 {
		t.Fatalf("adopted %d, want 1", got.Len())
	}
	if res.OrphanedFDs != 1 {
		t.Fatalf("orphans = %d, want 1", res.OrphanedFDs)
	}
}

// TestReceiveFailsOnMissingFDs: manifest promises more sockets than were
// attached → hard error, old instance keeps serving.
func TestReceiveFailsOnMissingFDs(t *testing.T) {
	set := mustListen(t, VIP{Name: "a", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	a, b := pair(t)
	handErr := make(chan error, 1)
	go func() {
		m := manifest{Magic: magic, Version: version, VIPs: append(set.VIPs(), VIP{Name: "ghost", Network: NetworkTCP, Addr: "127.0.0.1:1"})}
		payload, _ := mustJSON(m)
		fds, _ := set.fds()
		err := writeFrame(a, msgManifest, payload, fds)
		closeFDs(fds)
		if err != nil {
			handErr <- err
			return
		}
		_, ackPayload, _, err := readFrame(a)
		if err != nil {
			handErr <- err
			return
		}
		if string(ackPayload) == "" {
			handErr <- errors.New("empty ack")
			return
		}
		handErr <- nil
	}()
	_, _, err := Receive(b, ReceiveOptions{Timeout: time.Second})
	if err == nil {
		t.Fatal("expected error for missing fds")
	}
	if err := <-handErr; err != nil {
		t.Fatalf("sender side: %v", err)
	}
}

func TestHandoffTimeout(t *testing.T) {
	set := mustListen(t, VIP{Name: "a", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	a, _ := pair(t)
	// Nobody ever reads on b → ack never arrives → Handoff must time out.
	start := time.Now()
	_, err := Handoff(a, set, HandoffOptions{Timeout: 200 * time.Millisecond})
	if err == nil {
		t.Fatal("expected timeout")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout not honoured")
	}
}

// TestServerConnect exercises the filesystem-path flow the real deployment
// uses (steps A–F with a named socket).
func TestServerConnect(t *testing.T) {
	set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	path := filepath.Join(t.TempDir(), "takeover.sock")

	drained := make(chan Result, 1)
	srv := &Server{Set: set, OnDrainStart: func(r Result) { drained <- r }}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe(path) }()

	// Wait for the socket file to appear.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, err := Connect(path, ConnectOptions{ReceiveOptions: ReceiveOptions{Timeout: 500 * time.Millisecond}}); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("connect never succeeded: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case r := <-drained:
		if len(r.VIPs) != 1 || r.VIPs[0].Name != "web" {
			t.Fatalf("drain result = %+v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnDrainStart never fired")
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
}

// TestTakeoverUnderLoad drives continuous TCP connections through a restart
// and requires zero failures — the paper's headline property.
func TestTakeoverUnderLoad(t *testing.T) {
	old := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	addr := old.TCP("web").Addr().String()

	// Old instance serving loop: echo one byte then close.
	serve := func(ln *net.TCPListener) {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1)
				if _, err := c.Read(buf); err == nil {
					c.Write(buf)
				}
			}(c)
		}
	}
	go serve(old.TCP("web"))

	// Client load: sequential request loop, every one must succeed.
	stop := make(chan struct{})
	clientErr := make(chan error, 1)
	var served int
	go func() {
		defer close(clientErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			c, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				clientErr <- fmt.Errorf("dial: %w", err)
				return
			}
			c.SetDeadline(time.Now().Add(2 * time.Second))
			if _, err := c.Write([]byte("x")); err != nil {
				clientErr <- fmt.Errorf("write: %w", err)
				c.Close()
				return
			}
			buf := make([]byte, 1)
			if _, err := c.Read(buf); err != nil {
				clientErr <- fmt.Errorf("read: %w", err)
				c.Close()
				return
			}
			c.Close()
			served++
		}
	}()

	time.Sleep(50 * time.Millisecond) // let some load flow to the old instance

	// Restart: hand off to the new instance mid-load.
	a, b := pair(t)
	go Handoff(a, old, HandoffOptions{})
	newSet, _, err := Receive(b, ReceiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer newSet.Close()
	go serve(newSet.TCP("web"))
	// Old instance drains (stops accepting) and terminates. Closing its
	// listener copy does not close the shared socket.
	old.Close()

	time.Sleep(100 * time.Millisecond) // load now flows to the new instance
	close(stop)
	if err, ok := <-clientErr; ok && err != nil {
		t.Fatalf("client observed a failure across restart: %v", err)
	}
	if served < 10 {
		t.Fatalf("only %d requests served; load generator broken?", served)
	}
}

func mustJSON(v any) ([]byte, error) {
	return json.Marshal(v)
}

// TestHandoffMeta: side-band metadata (e.g. the UDP user-space-routing
// forward address) rides the manifest to the receiver.
func TestHandoffMeta(t *testing.T) {
	set := mustListen(t, VIP{Name: "a", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	a, b := pair(t)
	go HandoffMeta(a, set, map[string]string{"quic-forward": "127.0.0.1:9999"}, 0)
	got, res, err := Receive(b, ReceiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if res.Meta["quic-forward"] != "127.0.0.1:9999" {
		t.Fatalf("meta = %v", res.Meta)
	}
}

// TestHandoffNilMeta: plain Handoff leaves Meta empty.
func TestHandoffNilMeta(t *testing.T) {
	set := mustListen(t, VIP{Name: "a", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	a, b := pair(t)
	go Handoff(a, set, HandoffOptions{})
	got, res, err := Receive(b, ReceiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if len(res.Meta) != 0 {
		t.Fatalf("meta = %v, want empty", res.Meta)
	}
}

// TestCloseTCPKeepsUDP: the drain path must retain UDP handles.
func TestCloseTCPKeepsUDP(t *testing.T) {
	set := mustListen(t,
		VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"},
		VIP{Name: "quic", Network: NetworkUDP, Addr: "127.0.0.1:0"},
	)
	if err := set.CloseTCP(); err != nil {
		t.Fatal(err)
	}
	if set.TCP("web") != nil {
		t.Fatal("TCP handle survived CloseTCP")
	}
	pc := set.UDP("quic")
	if pc == nil {
		t.Fatal("UDP handle removed by CloseTCP")
	}
	// The UDP socket must still be writable.
	if _, err := pc.WriteToUDP([]byte("x"), pc.LocalAddr().(*net.UDPAddr)); err != nil {
		t.Fatalf("UDP socket dead after CloseTCP: %v", err)
	}
}

// TestHandoffVeryManyVIPs transfers more sockets than fit in one
// SCM_RIGHTS message, exercising the FD continuation frames.
func TestHandoffVeryManyVIPs(t *testing.T) {
	var vips []VIP
	for i := 0; i < 150; i++ {
		vips = append(vips, VIP{Name: fmt.Sprintf("vip-%03d", i), Network: NetworkTCP, Addr: "127.0.0.1:0"})
	}
	old := mustListen(t, vips...)
	a, b := pair(t)
	handErr := make(chan error, 1)
	go func() {
		_, err := Handoff(a, old, HandoffOptions{Timeout: 10 * time.Second})
		handErr <- err
	}()
	got, res, err := Receive(b, ReceiveOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if err := <-handErr; err != nil {
		t.Fatal(err)
	}
	if got.Len() != 150 || res.OrphanedFDs != 0 {
		t.Fatalf("len=%d orphans=%d", got.Len(), res.OrphanedFDs)
	}
	// Order must be preserved across chunk boundaries.
	for i, v := range got.VIPs() {
		want := fmt.Sprintf("vip-%03d", i)
		if v.Name != want {
			t.Fatalf("vip %d = %s, want %s", i, v.Name, want)
		}
		if got.TCP(v.Name).Addr().String() != old.TCP(want).Addr().String() {
			t.Fatalf("vip %s bound to the wrong socket", v.Name)
		}
	}
}
