// Package takeover implements Socket Takeover (§4.1): zero-downtime restart
// of an L7 proxy by passing every listening-socket file descriptor from the
// running (old) instance to a freshly spun (new) instance over a UNIX
// domain socket, using sendmsg(2) with SCM_RIGHTS ancillary data.
//
// The workflow follows Fig. 5 of the paper:
//
//	(A) The old instance, already bound and accepting on all VIP sockets,
//	    spawns a takeover server bound to a pre-specified path; the new
//	    instance starts and connects to it.
//	(B) The takeover server sends the list of FDs it has bound — TCP
//	    listeners and UDP packet sockets, one entry per VIP — with
//	    sendmsg() and SCM_RIGHTS.
//	(C) The new instance listens on the VIPs corresponding to the FDs
//	    (reconstructing net.Listener/net.UDPConn values from them) and
//	    arms them: accept loops running, health checks green.
//	(D) The new instance confirms to the old server so it can start
//	    draining existing connections. Since ProtoTwoPhase this
//	    confirmation is split in two: the receiver sends PREPARE-ACK once
//	    it is armed, and the sender answers with COMMIT — only then does
//	    draining begin. Any failure before the COMMIT is delivered (arm
//	    error, receiver crash, timeout) aborts the hand-off: the sender
//	    keeps serving, the receiver disarms, and no client ever sees a
//	    reset. ProtoOneShot peers keep the original single-ACK exchange,
//	    where the ACK itself is the commit point.
//	(E) On commit, the old instance stops handling new connections and
//	    drains.
//	(F) The new instance takes over health-check responsibility.
//
// ProtoDrainUndo extends the commit with a post-commit recovery window:
// the sender retains dup'd FDs for every handed-off listener past COMMIT
// and keeps the UNIX-socket session open as a liveness lease. The receiver
// sends a READY frame once its proxy is confirmed serving; the sender
// answers with the drain-started confirmation, which releases the lease
// (retained dups closed, drain proceeds). If the lease breaks before READY
// — receiver crash, kill -9, armed-then-wedged — the sender un-drains:
// it re-arms its listeners from the retained dups and resumes accepting.
// No reset, no rebind. The retained dups keep the kernel sockets alive
// throughout the window, so SYNs queue in the backlog instead of failing.
//
// Because the FDs are shared file-table entries, the listening sockets are
// never closed during the restart: TCP SYNs continue to be queued and UDP
// packets continue to be delivered, no matter which instant the restart is
// observed at. The kernel socket ring for SO_REUSEPORT VIPs is unchanged
// (no entries added or purged), which is what eliminates the mis-routing
// flux of Fig. 2d.
//
// §5.1 pitfalls are handled explicitly:
//
//   - Orphaned FDs: the receiving side must act on every FD it was sent —
//     either adopt it or close it. Entries the receiver does not recognise
//     are closed and counted in Result.OrphanedFDs rather than silently
//     leaked (a leak leaves a live socket whose accept queue nobody drains,
//     which manifests as user-facing timeouts).
//   - A magic protocol header and version byte guard against a
//     mis-deployed peer speaking something else on the socket.
package takeover

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"syscall"
	"time"

	"zdr/internal/faults"
	"zdr/internal/netx"
	"zdr/internal/obs"
)

// Network names for VIP entries.
const (
	NetworkTCP = "tcp"
	NetworkUDP = "udp"
)

// protocol constants.
const (
	magic = 0x5a44 // "ZD"
	// version is the wire epoch byte. It stays 1: v1 receivers hard-reject
	// any other value with no retry, so protocol revisions are negotiated
	// in-band via the manifest's proto field instead (see ProtoTwoPhase).
	version     = 1
	maxManifest = 1 << 20

	msgManifest     = 1
	msgAck          = 2 // receiver → sender: one-shot confirmation (v1 step D)
	msgFDChunk      = 3
	msgDrainStarted = 4 // sender → receiver: accepting stopped, drain begun (step E)
	msgPrepareAck   = 5 // receiver → sender: armed and serving, awaiting commit
	msgCommit       = 6 // sender → receiver: hand-off committed, drain begins now
	msgAbort        = 7 // sender → receiver: hand-off abandoned before commit
	msgReady        = 8 // receiver → sender: confirmed serving, release the lease (v3)

	// fdsPerFrame bounds descriptors per sendmsg; Linux caps SCM_RIGHTS
	// at 253 per message, and netx enforces its own lower bound. Larger
	// VIP sets are split across continuation frames.
	fdsPerFrame = 64
)

// Protocol revisions, negotiated via the manifest's proto field (sender's
// offer) and the prepare-ack's proto field (receiver's answer). A v1
// receiver never sees the manifest field (unknown JSON keys are ignored)
// and answers with its classic single ACK, which the sender accepts as a
// negotiated-down one-shot hand-off; a v1 sender never writes the field,
// so newer receivers fall back to the one-shot exchange too. A v2
// receiver answers PREPARE-ACK without a proto field, which a v3 sender
// reads as "two-phase, no lease". All directions interoperate without a
// flag day.
const (
	// ProtoOneShot is the original protocol: the receiver's ACK is the
	// commit point, so an adopt failure after the ACK leaves only
	// RestartFresh (a rebind) as recovery.
	ProtoOneShot = 1
	// ProtoTwoPhase splits the confirmation into PREPARE-ACK (receiver
	// armed) and COMMIT (sender stops accepting): every failure before
	// COMMIT rolls both sides back with zero client-visible resets.
	ProtoTwoPhase = 2
	// ProtoDrainUndo adds a post-commit recovery window on top of
	// ProtoTwoPhase: the sender retains dup'd listener FDs past COMMIT
	// and holds the session open as a liveness lease until the receiver's
	// READY frame; a broken lease un-drains the sender (re-arm from the
	// retained dups) instead of falling through to RestartFresh. Offering
	// it promises exactly that undo behaviour, so only lease-driving
	// senders (Server with OnUndo, or an explicit Proto) advertise it.
	ProtoDrainUndo = 3

	// maxProto is the newest revision this build understands.
	maxProto = ProtoDrainUndo
)

// DefaultHandshakeTimeout bounds each protocol step.
const DefaultHandshakeTimeout = 5 * time.Second

// DefaultReadyTimeout bounds the sender's post-commit wait for the
// receiver's READY frame (the drain-undo lease). A receiver that has not
// confirmed serving within this window is presumed dead and the hand-off
// is undone.
const DefaultReadyTimeout = 5 * time.Second

// Manifest metadata keys used by the protocol itself (everything else in
// Meta passes through opaquely).
const (
	// TraceMetaKey carries the sender's span context in the manifest
	// metadata, so the receiver's spans can join the sender's trace.
	TraceMetaKey = obs.TraceHeader
	// metaDrainNotify announces that the sender will send a
	// msgDrainStarted frame once it has stopped accepting (step E). The
	// receiver only waits for the confirmation when the key is present,
	// which keeps bare Handoff/Receive pairs compatible. On ProtoDrainUndo
	// the confirmation doubles as the lease release and is mandatory
	// regardless of this key.
	metaDrainNotify = "zdr-drain-notify"
)

// VIP describes one service address (Virtual IP) the proxy serves.
type VIP struct {
	// Name identifies the VIP (e.g. "https", "quic"). Names must be
	// unique within a ListenerSet.
	Name string `json:"name"`
	// Network is NetworkTCP or NetworkUDP.
	Network string `json:"network"`
	// Addr is the bind address, e.g. "127.0.0.1:8443".
	Addr string `json:"addr"`
}

type entry struct {
	vip VIP
	ln  *net.TCPListener
	pc  *net.UDPConn
}

// ListenerSet is an ordered collection of bound VIP sockets. It is the unit
// Socket Takeover transfers.
type ListenerSet struct {
	mu      sync.Mutex
	entries []entry
}

// NewListenerSet returns an empty set.
func NewListenerSet() *ListenerSet { return &ListenerSet{} }

// Listen binds all the given VIPs (with SO_REUSEPORT) and returns the set.
// On error, any sockets bound so far are closed.
func Listen(vips ...VIP) (*ListenerSet, error) {
	s := NewListenerSet()
	for _, v := range vips {
		var err error
		switch v.Network {
		case NetworkTCP:
			var ln *net.TCPListener
			ln, err = netx.ListenTCPReusePort(v.Addr)
			if err == nil {
				err = s.AddTCP(v.Name, ln)
			}
		case NetworkUDP:
			var pc *net.UDPConn
			pc, err = netx.ListenUDPReusePort(v.Addr)
			if err == nil {
				err = s.AddUDP(v.Name, pc)
			}
		default:
			err = fmt.Errorf("takeover: unknown network %q", v.Network)
		}
		if err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// AddTCP registers an already-bound TCP listener under name.
func (s *ListenerSet) AddTCP(name string, ln *net.TCPListener) error {
	return s.add(entry{vip: VIP{Name: name, Network: NetworkTCP, Addr: ln.Addr().String()}, ln: ln})
}

// AddUDP registers an already-bound UDP socket under name.
func (s *ListenerSet) AddUDP(name string, pc *net.UDPConn) error {
	return s.add(entry{vip: VIP{Name: name, Network: NetworkUDP, Addr: pc.LocalAddr().String()}, pc: pc})
}

func (s *ListenerSet) add(e entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, have := range s.entries {
		if have.vip.Name == e.vip.Name {
			return fmt.Errorf("takeover: duplicate VIP name %q", e.vip.Name)
		}
	}
	s.entries = append(s.entries, e)
	return nil
}

// TCP returns the listener registered under name, or nil.
func (s *ListenerSet) TCP(name string) *net.TCPListener {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.vip.Name == name && e.ln != nil {
			return e.ln
		}
	}
	return nil
}

// UDP returns the packet socket registered under name, or nil.
func (s *ListenerSet) UDP(name string) *net.UDPConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.vip.Name == name && e.pc != nil {
			return e.pc
		}
	}
	return nil
}

// VIPs returns the VIP descriptors in registration order.
func (s *ListenerSet) VIPs() []VIP {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]VIP, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.vip
	}
	return out
}

// Len returns the number of registered VIP sockets.
func (s *ListenerSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// CloseTCP closes only the TCP listener handles, leaving UDP sockets
// open. A draining instance uses this: closing its TCP handles stops its
// accept loops (the shared sockets stay alive in the new instance), while
// its UDP handles must stay open so user-space-routed replies to draining
// flows can still be written through the shared socket (§4.1).
func (s *ListenerSet) CloseTCP() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	kept := s.entries[:0]
	for _, e := range s.entries {
		if e.ln != nil {
			if err := e.ln.Close(); err != nil && first == nil {
				first = err
			}
			continue
		}
		kept = append(kept, e)
	}
	s.entries = kept
	return first
}

// Close closes every socket in the set, returning the first error.
func (s *ListenerSet) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, e := range s.entries {
		var err error
		if e.ln != nil {
			err = e.ln.Close()
		}
		if e.pc != nil {
			err = e.pc.Close()
		}
		if err != nil && first == nil {
			first = err
		}
	}
	s.entries = nil
	return first
}

// fds extracts duplicated FDs for every entry, in order. Caller owns them.
func (s *ListenerSet) fds() ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fds := make([]int, 0, len(s.entries))
	closeAll := func() {
		for _, fd := range fds {
			syscall.Close(fd)
		}
	}
	for _, e := range s.entries {
		var fd int
		var err error
		if e.ln != nil {
			fd, err = netx.ListenerFD(e.ln)
		} else {
			fd, err = netx.PacketConnFD(e.pc)
		}
		if err != nil {
			closeAll()
			return nil, err
		}
		fds = append(fds, fd)
	}
	return fds, nil
}

// adoptFDs reconstructs listeners/packet sockets from fds according to
// vips, consuming every descriptor (adopted into the set or closed —
// §5.1 orphan prevention). It returns the set, the number of descriptors
// it had to close, and the first adoption error.
func adoptFDs(vips []VIP, fds []int) (*ListenerSet, int, error) {
	set := NewListenerSet()
	orphans := 0
	var firstErr error
	for i, fd := range fds {
		if i >= len(vips) {
			// More FDs than manifest entries: close the strays rather
			// than leak live sockets (§5.1).
			syscall.Close(fd)
			orphans++
			continue
		}
		v := vips[i]
		var err error
		switch v.Network {
		case NetworkTCP:
			var ln *net.TCPListener
			ln, err = netx.ListenerFromFD(fd, v.Name)
			if err == nil {
				err = set.AddTCP(v.Name, ln)
				if err != nil {
					ln.Close()
				}
			}
		case NetworkUDP:
			var pc *net.UDPConn
			pc, err = netx.PacketConnFromFD(fd, v.Name)
			if err == nil {
				err = set.AddUDP(v.Name, pc)
				if err != nil {
					pc.Close()
				}
			}
		default:
			syscall.Close(fd)
			err = fmt.Errorf("takeover: vip %q has unknown network %q", v.Name, v.Network)
		}
		if err != nil {
			orphans++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return set, orphans, firstErr
}

// RetainedSet holds the sender's dup'd listener FDs through the
// ProtoDrainUndo post-commit window. The dups keep the kernel sockets
// alive (and their accept backlogs queuing) no matter what happens to the
// receiver. Exactly one of two things must happen to a RetainedSet:
//
//   - Close — the receiver confirmed serving (READY received, lease
//     released): drop the dups, the drain proceeds.
//   - Rearm — the lease broke: rebuild a live ListenerSet from the dups
//     so the sender can resume accepting on the very same kernel sockets.
//
// Server.ListenAndServe drives this lifecycle itself; only bare
// Handoff callers that force ProtoDrainUndo need to manage it.
type RetainedSet struct {
	mu   sync.Mutex
	vips []VIP
	fds  []int
}

func newRetainedSet(vips []VIP, fds []int) *RetainedSet {
	return &RetainedSet{
		vips: append([]VIP(nil), vips...),
		fds:  append([]int(nil), fds...),
	}
}

// Len returns the number of descriptors still retained.
func (r *RetainedSet) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.fds)
}

// VIPs returns the VIP descriptors the retained FDs correspond to.
func (r *RetainedSet) VIPs() []VIP {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]VIP(nil), r.vips...)
}

// Close releases every retained descriptor. Idempotent and nil-safe.
func (r *RetainedSet) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	closeFDs(r.fds)
	r.fds, r.vips = nil, nil
	return nil
}

// Rearm consumes the retained descriptors and rebuilds a live ListenerSet
// from them — the un-drain: because the dups share the original file-table
// entries, the re-armed listeners are the same kernel sockets the clients
// have been connecting to all along, and every SYN queued during the
// recovery window is accepted, not reset. After Rearm (success or failure)
// the set is empty; on failure everything it could not adopt is closed.
func (r *RetainedSet) Rearm() (*ListenerSet, error) {
	if r == nil {
		return nil, errors.New("takeover: no retained descriptors")
	}
	r.mu.Lock()
	vips, fds := r.vips, r.fds
	r.vips, r.fds = nil, nil
	r.mu.Unlock()
	if len(fds) == 0 {
		return nil, errors.New("takeover: no retained descriptors")
	}
	set, _, err := adoptFDs(vips, fds)
	if err != nil {
		set.Close()
		return nil, fmt.Errorf("takeover: re-arming retained listeners: %w", err)
	}
	if set.Len() != len(vips) {
		set.Close()
		return nil, fmt.Errorf("takeover: re-armed %d of %d retained listeners", set.Len(), len(vips))
	}
	return set, nil
}

// manifest is the wire payload accompanying the FDs.
type manifest struct {
	Magic   uint16 `json:"magic"`
	Version uint8  `json:"version"`
	// Proto is the protocol revision the sender offers (ProtoTwoPhase or
	// ProtoDrainUndo). Absent/zero means a v1 sender: the receiver runs
	// the one-shot exchange. v1 receivers ignore the field entirely,
	// which is what makes the negotiation backward-compatible in both
	// directions.
	Proto uint8 `json:"proto,omitempty"`
	VIPs  []VIP `json:"vips"`
	// Meta carries side-band hand-off data the new instance needs before
	// serving — e.g. the old instance's pre-configured host-local UDP
	// forwarding address for user-space routing of draining flows (§4.1).
	Meta map[string]string `json:"meta,omitempty"`
}

// ack is the confirmation from the new instance (step D).
type ack struct {
	OK      bool   `json:"ok"`
	Adopted int    `json:"adopted"`
	Err     string `json:"err,omitempty"`
	// Trace is the receiver's span context, so the sender's drain joins
	// the receiver-rooted hand-off trace.
	Trace string `json:"trace,omitempty"`
	// Proto is the protocol revision the receiver accepted. Pre-v3
	// receivers never set it, so a zero on a PREPARE-ACK downgrades a
	// ProtoDrainUndo offer to plain two-phase: the sender must not hold
	// a lease a v2 receiver will never release.
	Proto int `json:"proto,omitempty"`
}

// Result summarises a completed hand-off, from the sender's perspective
// (Handoff) or receiver's (Receive).
type Result struct {
	// VIPs transferred, in order.
	VIPs []VIP
	// Meta is the sender's side-band hand-off data (receiver side).
	Meta map[string]string
	// OrphanedFDs counts descriptors the receiver closed because it did
	// not adopt them (receiver side only).
	OrphanedFDs int
	// Duration is the wall time of the protocol exchange.
	Duration time.Duration
	// PeerTrace is the peer's span context in wire form, or "" if the
	// peer was untraced: on the sender side, the receiver's hand-off span
	// (from the ack); on the receiver side, whatever the sender put under
	// TraceMetaKey in the manifest metadata.
	PeerTrace string
	// DrainConfirmed reports that the sender confirmed it stopped
	// accepting and began draining (receiver side). On v2 it requires a
	// sender that announces metaDrainNotify (i.e. Server.ListenAndServe)
	// and is best-effort; on ProtoDrainUndo the confirmation is the lease
	// release and always true on success.
	DrainConfirmed bool
	// Proto is the negotiated protocol revision (ProtoOneShot,
	// ProtoTwoPhase or ProtoDrainUndo).
	Proto int
	// Committed reports the hand-off passed its commit point: the sender
	// has stopped accepting and is draining. Always true on a successful
	// hand-off; it exists so failure paths can be classified (see
	// ErrAborted and ErrUndone).
	Committed bool
	// Ready reports that this receiver delivered its READY frame
	// (ProtoDrainUndo, receiver side).
	Ready bool
	// Retained holds the sender's dup'd FDs through the post-commit
	// window (sender side, ProtoDrainUndo only; nil otherwise). The
	// caller owns it and must Close it once the receiver is confirmed
	// serving, or Rearm it to un-drain. Server.ListenAndServe drives
	// this lease automatically.
	Retained *RetainedSet
}

var (
	// ErrRejected is returned by Handoff when the new instance refused
	// the socket set.
	ErrRejected = errors.New("takeover: peer rejected hand-off")
	// ErrBadMagic indicates the peer is not speaking the takeover
	// protocol (§5.1: guard against a mis-deployed binary).
	ErrBadMagic = errors.New("takeover: bad protocol magic")
	// ErrAborted marks a receiver-side hand-off failure that happened
	// before the commit point: the sender never began draining (or rolled
	// back to serving), no client saw a reset, and the caller may safely
	// retry with a freshly built receiver. Failures NOT wrapped in
	// ErrAborted or ErrUndone (e.g. post-commit promotion errors on
	// pre-v3 protocols) fall through to the RestartFresh remediation
	// instead.
	ErrAborted = errors.New("takeover: hand-off aborted before commit")
	// ErrUndone marks a hand-off that passed its commit point and was
	// then rolled back through the drain-undo lease (ProtoDrainUndo): the
	// receiver could not confirm serving — crash, wedge, failed readiness
	// gate, lost READY — so the sender re-armed its retained listener
	// dups and resumed serving. Like ErrAborted, no client saw a reset
	// and the caller may retry with a fresh receiver; unlike ErrAborted,
	// the failure happened after COMMIT, in the window that previously
	// required RestartFresh.
	ErrUndone = errors.New("takeover: hand-off undone after commit")
)

// abortErr classifies err as a pre-commit abort.
func abortErr(err error) error {
	if err == nil || errors.Is(err, ErrAborted) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrAborted, err)
}

// undoneErr classifies err as a post-commit undo.
func undoneErr(err error) error {
	if err == nil || errors.Is(err, ErrUndone) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrUndone, err)
}

func writeFrame(conn *net.UnixConn, kind byte, payload []byte, fds []int) error {
	hdr := make([]byte, 5+len(payload))
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	copy(hdr[5:], payload)
	return netx.WriteFDs(conn, hdr, fds)
}

func readFrame(conn *net.UnixConn) (kind byte, payload []byte, fds []int, err error) {
	// SOCK_STREAM has no message boundaries: consecutive frames (e.g. the
	// two-phase COMMIT immediately followed by the drain-started
	// confirmation) coalesce into one socket read, and a large payload
	// splits across many. Read exactly the 5-byte header, then exactly
	// the declared payload length, never consuming bytes of the next
	// frame. SCM_RIGHTS ancillary data rides the first byte of its
	// sendmsg's segment, so collecting FDs from every recvmsg along the
	// way picks them up regardless of how the stream fragments.
	fail := func(err error) (byte, []byte, []int, error) {
		closeFDs(fds)
		return 0, nil, nil, err
	}
	readExact := func(buf []byte) error {
		for off := 0; off < len(buf); {
			data, more, err := netx.ReadFDs(conn, buf[off:])
			fds = append(fds, more...)
			if err != nil {
				return err
			}
			if len(data) == 0 {
				return fmt.Errorf("takeover: empty read mid-frame")
			}
			off += len(data)
		}
		return nil
	}
	hdr := make([]byte, 5)
	if err := readExact(hdr); err != nil {
		return fail(err)
	}
	kind = hdr[0]
	want := int(binary.BigEndian.Uint32(hdr[1:5]))
	if want > maxManifest {
		return fail(fmt.Errorf("takeover: oversized frame (%d bytes)", want))
	}
	payload = make([]byte, want)
	if err := readExact(payload); err != nil {
		return fail(err)
	}
	return kind, payload, fds, nil
}

func closeFDs(fds []int) {
	for _, fd := range fds {
		syscall.Close(fd)
	}
}

// HandoffOptions configures the sender side of a hand-off.
type HandoffOptions struct {
	// Meta is side-band hand-off data delivered to the receiver's
	// Result.Meta.
	Meta map[string]string
	// Timeout bounds the exchange; zero means DefaultHandshakeTimeout.
	Timeout time.Duration
	// Trace, when non-nil, gets a "takeover.prepare" child span covering
	// the manifest+FD transfer through commit delivery. An aborted
	// hand-off fails that span and records no "takeover.commit" span.
	Trace *obs.Span
	// Proto is the protocol revision to offer; zero means ProtoTwoPhase.
	// ProtoOneShot forces the legacy single-ACK exchange (wire-identical
	// to a v1 sender). ProtoDrainUndo promises the caller will drive the
	// post-commit lease itself: close or re-arm Result.Retained (Server
	// does this automatically and is the normal way to offer v3).
	Proto int
}

// Handoff runs the sender side (old instance) of the takeover protocol on
// an established UNIX socket connection: it sends the manifest and FDs for
// every socket in set, then waits for the new instance's confirmation and
// delivers the COMMIT. It is the canonical sender entry point; the
// HandoffMeta/HandoffWith names are deprecated wrappers around it.
//
// On success the old instance should stop accepting new connections and
// begin draining (step E); its copies of the listening sockets remain open
// until it exits, which is harmless because both instances share the file
// table entries. On an error the hand-off aborted before this instance
// stopped accepting: it is still fully in charge and must keep serving.
//
// When ProtoDrainUndo is negotiated, Result.Retained holds dup'd FDs for
// every transferred listener; the caller owns the post-commit lease (see
// RetainedSet).
func Handoff(conn *net.UnixConn, set *ListenerSet, opts HandoffOptions) (*Result, error) {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultHandshakeTimeout
	}
	proto := opts.Proto
	if proto == 0 {
		proto = ProtoTwoPhase
	}
	if proto < ProtoOneShot || proto > maxProto {
		return nil, fmt.Errorf("takeover: unknown protocol revision %d", proto)
	}
	start := time.Now()
	deadline := start.Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	defer conn.SetDeadline(time.Time{})

	sp := opts.Trace.StartChild(obs.SpanTakeoverPrepare)
	sp.SetAttr("side", "sender")
	fail := func(err error) (*Result, error) {
		sp.Fail(err)
		sp.End()
		return nil, err
	}
	// abort additionally tells a still-live receiver to disarm right away
	// instead of waiting out its commit deadline. Best-effort: if the
	// connection is dead the receiver's read fails just as promptly.
	abort := func(err error) (*Result, error) {
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		writeFrame(conn, msgAbort, []byte(err.Error()), nil)
		return fail(err)
	}

	m := manifest{Magic: magic, Version: version, VIPs: set.VIPs(), Meta: opts.Meta}
	if proto >= ProtoTwoPhase {
		// A forced one-shot offer stays byte-identical to a v1 sender
		// (field absent).
		m.Proto = uint8(proto)
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return fail(err)
	}
	fds, err := set.fds()
	if err != nil {
		return fail(err)
	}
	// Our dups; the receiver has its own after sendmsg. On a negotiated
	// ProtoDrainUndo hand-off they instead survive as Result.Retained —
	// the post-commit recovery window.
	retained := false
	defer func() {
		if !retained {
			closeFDs(fds)
		}
	}()
	first := fds
	if len(first) > fdsPerFrame {
		first = first[:fdsPerFrame]
	}
	if err := writeFrame(conn, msgManifest, payload, first); err != nil {
		return fail(err)
	}
	// Continuation frames for large VIP sets.
	for off := fdsPerFrame; off < len(fds); off += fdsPerFrame {
		end := off + fdsPerFrame
		if end > len(fds) {
			end = len(fds)
		}
		if err := writeFrame(conn, msgFDChunk, nil, fds[off:end]); err != nil {
			return fail(err)
		}
	}

	kind, ackPayload, stray, err := readFrame(conn)
	if err != nil {
		return abort(fmt.Errorf("takeover: waiting for confirmation: %w", err))
	}
	closeFDs(stray)
	if kind != msgAck && kind != msgPrepareAck {
		return abort(fmt.Errorf("takeover: expected ack, got frame kind %d", kind))
	}
	var a ack
	if err := json.Unmarshal(ackPayload, &a); err != nil {
		return abort(fmt.Errorf("takeover: bad ack: %w", err))
	}
	if !a.OK {
		// The receiver already rolled itself back; no abort frame needed.
		return fail(fmt.Errorf("%w: %s", ErrRejected, a.Err))
	}
	res := &Result{VIPs: m.VIPs, PeerTrace: a.Trace, Proto: ProtoOneShot}
	if kind == msgPrepareAck {
		if proto < ProtoTwoPhase {
			return abort(fmt.Errorf("takeover: unexpected prepare-ack on a one-shot hand-off"))
		}
		// The receiver's answer caps the revision: a pre-v3 receiver
		// omits the proto field (zero), and the sender must not hold a
		// lease such a peer will never release.
		negotiated := ProtoTwoPhase
		if proto >= ProtoDrainUndo && a.Proto >= ProtoDrainUndo {
			negotiated = ProtoDrainUndo
		}
		// This write is the commit point: if COMMIT cannot be delivered
		// the receiver disarms and this instance keeps serving — nobody
		// drains, nobody resets.
		if err := writeFrame(conn, msgCommit, nil, nil); err != nil {
			return fail(fmt.Errorf("takeover: delivering commit: %w", err))
		}
		res.Proto = negotiated
		if negotiated >= ProtoDrainUndo {
			res.Retained = newRetainedSet(m.VIPs, fds)
			retained = true
			sp.SetAttr("retained_fds", strconv.Itoa(len(fds)))
		}
	}
	// A one-shot receiver's single ACK is already the commit point — a v1
	// peer negotiates the two-phase offer down rather than failing it.
	res.Committed = true
	res.Duration = time.Since(start)
	sp.SetAttr("proto", strconv.Itoa(res.Proto))
	sp.End()
	return res, nil
}

// Deprecated: HandoffMeta is a legacy wrapper; use Handoff with
// HandoffOptions{Meta, Timeout}.
func HandoffMeta(conn *net.UnixConn, set *ListenerSet, meta map[string]string, timeout time.Duration) (*Result, error) {
	return Handoff(conn, set, HandoffOptions{Meta: meta, Timeout: timeout})
}

// Deprecated: HandoffWith is the pre-consolidation name for Handoff.
func HandoffWith(conn *net.UnixConn, set *ListenerSet, opts HandoffOptions) (*Result, error) {
	return Handoff(conn, set, opts)
}

// ReceiveOptions configures the receiver side of a hand-off.
type ReceiveOptions struct {
	// Timeout bounds the exchange; zero means DefaultHandshakeTimeout.
	Timeout time.Duration
	// Trace, when non-nil, gets the Fig. 5 step spans as children:
	//
	//	takeover.step.B   manifest + FD frames read
	//	takeover.step.C   listeners reconstructed from the FDs
	//	takeover.prepare  Arm run, PREPARE-ACK sent   (two-phase)
	//	takeover.commit   sender's COMMIT awaited     (two-phase)
	//	takeover.step.D   Arm run, single ACK sent    (one-shot peers)
	//	takeover.ready    Ready gate run, READY sent  (ProtoDrainUndo)
	//	takeover.step.E   sender's drain-start confirmation awaited
	//
	// On v2 step E is only awaited when the sender announced it
	// (metaDrainNotify in the manifest) and its failure is recorded on
	// the span without failing the hand-off. On ProtoDrainUndo the
	// drain-start confirmation is the lease release and mandatory: its
	// absence means the sender undid the hand-off, so this side disarms
	// and returns ErrUndone.
	Trace *obs.Span
	// Proto caps the revision this receiver accepts; zero means the
	// newest supported (ProtoDrainUndo). ProtoTwoPhase emulates a v2
	// receiver, ProtoOneShot a v1 receiver (compat testing).
	Proto int
	// Arm, when non-nil, runs after the listener set is reconstructed and
	// must leave this instance fully serving (accept loops running,
	// health checks green) before returning nil: its success is exactly
	// what the confirmation — PREPARE-ACK or one-shot ACK — attests to.
	// An error rolls the hand-off back: the sender is nacked and keeps
	// serving, the set is closed, and the error is wrapped in ErrAborted.
	Arm func(set *ListenerSet, res *Result) error
	// Disarm, when non-nil, unwinds a successful Arm after a pre-commit
	// abort (commit timeout, peer abort or crash) or a post-commit undo
	// (failed Ready gate, broken lease). When nil the listener set is
	// merely closed.
	Disarm func(set *ListenerSet)
	// Ready, when non-nil, is the ProtoDrainUndo readiness gate: it runs
	// after COMMIT arrives and must confirm this instance is genuinely
	// serving (e.g. /healthz green) before the READY frame goes out. An
	// error steps this instance down — Disarm runs, the sender's lease
	// breaks, the sender un-drains, and the error is wrapped in
	// ErrUndone. Never invoked on pre-v3 negotiations.
	Ready func(set *ListenerSet, res *Result) error
}

// Receive runs the receiver side (new instance): it reads the manifest and
// FDs, reconstructs a ListenerSet, closes any FD it cannot adopt (orphan
// prevention, §5.1), arms, and confirms to the old instance. It is the
// canonical receiver entry point; the ReceiveTraced/ReceiveWith names are
// deprecated wrappers around it.
//
// An error wrapped in ErrAborted means the hand-off died before its commit
// point; one wrapped in ErrUndone means it was rolled back through the
// post-commit lease. In both cases the sender keeps (or resumes) serving
// undisturbed and the caller may retry with a fresh receiver.
func Receive(conn *net.UnixConn, opts ReceiveOptions) (*ListenerSet, *Result, error) {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultHandshakeTimeout
	}
	rcap := opts.Proto
	if rcap == 0 {
		rcap = maxProto
	}
	if rcap < ProtoOneShot || rcap > maxProto {
		return nil, nil, fmt.Errorf("takeover: unknown protocol revision %d", rcap)
	}
	parent := opts.Trace
	start := time.Now()
	if err := conn.SetDeadline(start.Add(timeout)); err != nil {
		return nil, nil, err
	}
	defer conn.SetDeadline(time.Time{})

	spB := parent.StartChild(obs.SpanTakeoverStepB)
	failB := func(err error) {
		spB.Fail(err)
		spB.End()
	}
	kind, payload, fds, err := readFrame(conn)
	if err != nil {
		failB(err)
		return nil, nil, err
	}
	if kind != msgManifest {
		closeFDs(fds)
		err = fmt.Errorf("takeover: expected manifest, got frame kind %d", kind)
		failB(err)
		return nil, nil, err
	}
	var m manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		closeFDs(fds)
		err = fmt.Errorf("takeover: bad manifest: %w", err)
		failB(err)
		return nil, nil, err
	}
	if m.Magic != magic {
		closeFDs(fds)
		sendAck(conn, ack{OK: false, Err: "bad magic"})
		failB(ErrBadMagic)
		return nil, nil, ErrBadMagic
	}
	if m.Version != version {
		closeFDs(fds)
		sendAck(conn, ack{OK: false, Err: fmt.Sprintf("unsupported version %d", m.Version)})
		err = fmt.Errorf("takeover: unsupported protocol version %d", m.Version)
		failB(err)
		return nil, nil, err
	}
	// Collect continuation frames until every declared VIP has its FD. A
	// sender that declared more VIPs than it attached FDs for never sends
	// a continuation; bound the wait so the mismatch surfaces as the
	// missing-FDs error below rather than a hang.
	for len(fds) < len(m.VIPs) && len(fds) >= fdsPerFrame && len(fds)%fdsPerFrame == 0 {
		kind, _, more, err := readFrame(conn)
		if err != nil {
			sendAck(conn, ack{OK: false, Err: "fd continuation: " + err.Error()})
			closeFDs(fds)
			err = fmt.Errorf("takeover: reading fd continuation: %w", err)
			failB(err)
			return nil, nil, err
		}
		if kind != msgFDChunk {
			closeFDs(fds)
			closeFDs(more)
			sendAck(conn, ack{OK: false, Err: "unexpected frame during fd transfer"})
			err = fmt.Errorf("takeover: expected fd chunk, got frame kind %d", kind)
			failB(err)
			return nil, nil, err
		}
		if len(more) == 0 {
			break
		}
		fds = append(fds, more...)
	}
	spB.SetAttr("vips", fmt.Sprintf("%d", len(m.VIPs)))
	spB.SetAttr("fds", fmt.Sprintf("%d", len(fds)))
	spB.End()

	spC := parent.StartChild(obs.SpanTakeoverStepC)
	set, orphans, firstErr := adoptFDs(m.VIPs, fds)
	if len(fds) < len(m.VIPs) {
		if firstErr == nil {
			firstErr = fmt.Errorf("takeover: manifest lists %d vips but only %d fds arrived", len(m.VIPs), len(fds))
		}
	}
	if firstErr != nil {
		set.Close()
		sendAck(conn, ack{OK: false, Err: firstErr.Error()})
		spC.Fail(firstErr)
		spC.End()
		return nil, nil, firstErr
	}
	spC.SetAttr("adopted", fmt.Sprintf("%d", set.Len()))
	spC.End()

	res := &Result{VIPs: m.VIPs, Meta: m.Meta, OrphanedFDs: orphans, PeerTrace: m.Meta[TraceMetaKey], Proto: ProtoOneShot}
	if int(m.Proto) >= ProtoTwoPhase && rcap >= ProtoTwoPhase {
		res.Proto = ProtoTwoPhase
		if int(m.Proto) >= ProtoDrainUndo && rcap >= ProtoDrainUndo {
			res.Proto = ProtoDrainUndo
		}
	}
	twoPhase := res.Proto >= ProtoTwoPhase

	// Arm before confirming: the confirmation — PREPARE-ACK on the
	// two-phase protocol, the single ACK for one-shot peers — attests
	// that this instance is already serving every VIP.
	armSpan, ackKind := obs.SpanTakeoverStepD, byte(msgAck)
	if twoPhase {
		armSpan, ackKind = obs.SpanTakeoverPrepare, msgPrepareAck
	}
	spD := parent.StartChild(armSpan)
	spD.SetAttr("side", "receiver")
	armed := false
	disarm := func() {
		if armed && opts.Disarm != nil {
			opts.Disarm(set)
		} else {
			set.Close()
		}
	}
	if opts.Arm != nil {
		if err := opts.Arm(set, res); err != nil {
			err = fmt.Errorf("takeover: arming receiver: %w", err)
			sendAckKind(conn, ackKind, ack{OK: false, Err: err.Error()})
			set.Close()
			spD.Fail(err)
			spD.End()
			return nil, nil, abortErr(err)
		}
		armed = true
	}
	a := ack{OK: true, Adopted: set.Len(), Trace: parent.Context().String()}
	if twoPhase {
		// Answer with the accepted revision so a v3 sender knows whether
		// this side will run the READY/lease epilogue. A one-shot ack
		// stays byte-identical to v1 (field omitted when zero — and the
		// one-shot path never sets it).
		a.Proto = res.Proto
	}
	if err := sendAckKind(conn, ackKind, a); err != nil {
		disarm()
		spD.Fail(err)
		spD.End()
		return nil, nil, abortErr(err)
	}
	spD.End()

	if twoPhase {
		// Await COMMIT. Until it arrives the sender may abort — with an
		// explicit msgAbort, by crashing (read error/EOF), or by simply
		// never answering (deadline) — and in every one of those cases
		// this instance disarms: from the clients' point of view the
		// hand-off never happened, and the sender keeps serving.
		spCommit := parent.StartChild(obs.SpanTakeoverCommit)
		spCommit.SetAttr("side", "receiver")
		kind, payload, stray, err := readFrame(conn)
		closeFDs(stray)
		switch {
		case err != nil:
			err = fmt.Errorf("takeover: waiting for commit: %w", err)
		case kind == msgAbort:
			err = fmt.Errorf("takeover: peer aborted before commit: %s", payload)
		case kind != msgCommit:
			err = fmt.Errorf("takeover: expected commit, got frame kind %d", kind)
		}
		if err != nil {
			disarm()
			spCommit.Fail(err)
			spCommit.End()
			return nil, nil, abortErr(err)
		}
		spCommit.End()
	}
	res.Committed = true

	if res.Proto >= ProtoDrainUndo {
		// READY/lease epilogue: prove this instance is genuinely serving,
		// deliver READY, and wait for the drain-start confirmation that
		// releases the sender's lease. Unlike the v2 best-effort step E,
		// every failure here means the sender will (or already did)
		// un-drain from its retained dups — so this side must step down:
		// a half of the lease handshake that cannot complete belongs to
		// the generation that yields.
		spReady := parent.StartChild(obs.SpanTakeoverReady)
		spReady.SetAttr("side", "receiver")
		var rerr error
		if opts.Ready != nil {
			if err := opts.Ready(set, res); err != nil {
				rerr = fmt.Errorf("takeover: readiness gate: %w", err)
			}
		}
		if rerr == nil {
			if err := writeFrame(conn, msgReady, nil, nil); err != nil {
				rerr = fmt.Errorf("takeover: delivering ready: %w", err)
			} else {
				res.Ready = true
			}
		}
		if rerr != nil {
			spReady.Fail(rerr)
			spReady.End()
		} else {
			spReady.End()
			spE := parent.StartChild(obs.SpanTakeoverStepE)
			kind, _, stray, err := readFrame(conn)
			closeFDs(stray)
			switch {
			case err != nil:
				rerr = fmt.Errorf("takeover: waiting for lease release: %w", err)
			case kind != msgDrainStarted:
				rerr = fmt.Errorf("takeover: expected drain-start confirmation, got frame kind %d", kind)
			default:
				res.DrainConfirmed = true
			}
			if rerr != nil {
				spE.Fail(rerr)
			}
			spE.End()
		}
		if rerr != nil {
			disarm()
			return nil, nil, undoneErr(rerr)
		}
	} else if m.Meta[metaDrainNotify] == "1" {
		// Step E: the old instance stops accepting and begins draining; it
		// confirms with a msgDrainStarted frame. Best-effort — the sockets
		// are already ours, so a timeout here degrades to an errored span
		// and DrainConfirmed=false, not a failed hand-off.
		spE := parent.StartChild(obs.SpanTakeoverStepE)
		kind, _, stray, err := readFrame(conn)
		closeFDs(stray)
		switch {
		case err != nil:
			spE.Fail(fmt.Errorf("takeover: waiting for drain-start confirmation: %w", err))
		case kind != msgDrainStarted:
			spE.Fail(fmt.Errorf("takeover: expected drain-start confirmation, got frame kind %d", kind))
		default:
			res.DrainConfirmed = true
		}
		spE.End()
	}
	res.Duration = time.Since(start)
	return set, res, nil
}

// Deprecated: ReceiveTraced is a legacy wrapper; use Receive with
// ReceiveOptions{Timeout, Trace}.
func ReceiveTraced(conn *net.UnixConn, timeout time.Duration, parent *obs.Span) (*ListenerSet, *Result, error) {
	return Receive(conn, ReceiveOptions{Timeout: timeout, Trace: parent})
}

// Deprecated: ReceiveWith is the pre-consolidation name for Receive.
func ReceiveWith(conn *net.UnixConn, opts ReceiveOptions) (*ListenerSet, *Result, error) {
	return Receive(conn, opts)
}

func sendAck(conn *net.UnixConn, a ack) error {
	return sendAckKind(conn, msgAck, a)
}

func sendAckKind(conn *net.UnixConn, kind byte, a ack) error {
	payload, err := json.Marshal(a)
	if err != nil {
		return err
	}
	return writeFrame(conn, kind, payload, nil)
}

// Server is the takeover server the old instance spawns (step A). It
// listens on a filesystem path and performs one hand-off per accepted
// connection.
type Server struct {
	// Set is the listener set to transfer.
	Set *ListenerSet
	// Meta is side-band hand-off data sent with the manifest (e.g. the
	// UDP user-space-routing forward address).
	Meta map[string]string
	// OnDrainStart, if non-nil, is invoked after a committed hand-off —
	// the point at which the old instance must stop accepting and start
	// draining (step E). On a ProtoDrainUndo hand-off the drain may still
	// be rolled back by OnUndo if the receiver never confirms serving.
	OnDrainStart func(Result)
	// OnReady, if non-nil, is invoked when the receiver's READY frame
	// releases the drain-undo lease: the hand-off is final, the retained
	// dups are closed, and the drain proceeds to completion.
	OnReady func(Result)
	// OnUndo, if non-nil, is invoked when the drain-undo lease breaks
	// before READY (receiver crash, wedge, failed readiness gate): the
	// listeners have been re-armed from the retained dups and the
	// callback must resume accepting on them — reversing whatever
	// OnDrainStart did. cause is the lease failure. Offering
	// ProtoDrainUndo requires this callback (without it the server caps
	// its offer at ProtoTwoPhase).
	OnUndo func(rearmed *ListenerSet, cause error)
	// OnHandoffError, if non-nil, is invoked after a failed hand-off
	// attempt (receiver died mid-handshake, arm failure nack, prepare-ack
	// or commit-delivery timeout, protocol error, post-commit undo). The
	// server has already rolled back: its dup'd FDs are closed or
	// re-armed, the instance is serving, and it keeps accepting further
	// hand-off attempts. The callback is the abort's observability hook
	// (§5.1 — aborted releases must be visible, not silent).
	OnHandoffError func(error)
	// HandshakeTimeout bounds each hand-off; zero means the default.
	HandshakeTimeout time.Duration
	// ReadyTimeout bounds the post-commit wait for the receiver's READY
	// frame; zero means DefaultReadyTimeout. On expiry the hand-off is
	// undone exactly as if the receiver had crashed.
	ReadyTimeout time.Duration
	// Tracer, if non-nil, records the sender-side view of every hand-off
	// attempt: a "takeover.serve" root span with a "takeover.prepare"
	// child (through commit delivery) and — only on committed hand-offs —
	// a "takeover.commit" child covering the drain cut-over. A
	// ProtoDrainUndo hand-off adds a "takeover.ready" child for the lease
	// window and, if the lease breaks, a "takeover.undo" child carrying
	// the retained-FD count. An aborted attempt therefore shows a failed
	// takeover.prepare and no takeover.commit.
	Tracer *obs.Tracer
	// Proto forces the offered protocol revision (compat testing); zero
	// means ProtoDrainUndo when OnUndo is set, ProtoTwoPhase otherwise.
	Proto int

	mu sync.Mutex
	ul *net.UnixListener
}

func (s *Server) offeredProto() int {
	if s.Proto != 0 {
		return s.Proto
	}
	if s.OnUndo != nil {
		return ProtoDrainUndo
	}
	return ProtoTwoPhase
}

func (s *Server) readyTimeout() time.Duration {
	if s.ReadyTimeout > 0 {
		return s.ReadyTimeout
	}
	return DefaultReadyTimeout
}

// awaitReady blocks until the receiver's READY frame arrives or the lease
// breaks (read error, EOF, timeout, unexpected frame).
func awaitReady(conn *net.UnixConn, timeout time.Duration) error {
	conn.SetDeadline(time.Now().Add(timeout))
	defer conn.SetDeadline(time.Time{})
	kind, _, stray, err := readFrame(conn)
	closeFDs(stray)
	switch {
	case err != nil:
		return fmt.Errorf("takeover: waiting for ready: %w", err)
	case kind != msgReady:
		return fmt.Errorf("takeover: expected ready, got frame kind %d", kind)
	}
	return nil
}

// ListenAndServe binds the pre-specified UNIX path and serves hand-offs
// until Close. It removes a stale socket file first.
func (s *Server) ListenAndServe(path string) error {
	if err := removeStaleSocket(path); err != nil {
		return err
	}
	ul, err := net.ListenUnix("unix", &net.UnixAddr{Name: path, Net: "unix"})
	if err != nil {
		return fmt.Errorf("takeover: listen %s: %w", path, err)
	}
	s.mu.Lock()
	s.ul = ul
	s.mu.Unlock()
	defer s.Close() // release the path so the next generation can bind it
	for {
		conn, err := ul.AcceptUnix()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		meta := make(map[string]string, len(s.Meta)+1)
		for k, v := range s.Meta {
			meta[k] = v
		}
		meta[metaDrainNotify] = "1"
		sp := s.Tracer.StartSpan(obs.SpanTakeoverServe, obs.SpanContext{})
		sp.SetAttr("path", path)
		res, err := Handoff(conn, s.Set, HandoffOptions{
			Meta:    meta,
			Timeout: s.HandshakeTimeout,
			Trace:   sp,
			Proto:   s.offeredProto(),
		})
		if err != nil {
			conn.Close()
			sp.Fail(err)
			sp.End()
			// An aborted hand-off leaves this instance fully in charge;
			// keep serving so a retried deploy can connect again.
			if s.OnHandoffError != nil {
				s.OnHandoffError(err)
			}
			continue
		}
		// Committed: this instance stops accepting and drains.
		spCommit := sp.StartChild(obs.SpanTakeoverCommit)
		spCommit.SetAttr("side", "sender")
		spCommit.SetAttr("proto", strconv.Itoa(res.Proto))
		if s.OnDrainStart != nil {
			s.OnDrainStart(*res)
		}
		spCommit.End()

		if res.Retained == nil {
			// v1/v2 peer: the commit is final — a failure past this point
			// is the caller's RestartFresh territory, never a silent
			// retry. End the spans before the drain-started confirmation
			// goes out: the frame releases the receiver, and a release
			// report assembled right after must not catch this trace
			// still in flight. The confirmation itself is best-effort — a
			// receiver that doesn't wait (bare Receive) has already hung
			// up.
			sp.End()
			conn.SetDeadline(time.Now().Add(time.Second))
			writeFrame(conn, msgDrainStarted, nil, nil)
			conn.Close()
			return nil
		}

		// ProtoDrainUndo: the commit is fenced by a liveness lease. Hold
		// the session open until the receiver's READY frame proves it is
		// serving, then release the lease by delivering the drain-start
		// confirmation. Either half failing rolls the hand-off back: the
		// receiver steps down (it treats a missing confirmation as undo)
		// and this instance re-arms from the retained dups.
		spReady := sp.StartChild(obs.SpanTakeoverReady)
		spReady.SetAttr("side", "sender")
		spansOpen := true
		cause := awaitReady(conn, s.readyTimeout())
		if cause == nil {
			if s.OnReady != nil {
				s.OnReady(*res)
			}
			// Same discipline as the v2 path: close the trace before the
			// confirmation releases the receiver.
			spReady.End()
			sp.End()
			spansOpen = false
			conn.SetDeadline(time.Now().Add(time.Second))
			if werr := writeFrame(conn, msgDrainStarted, nil, nil); werr != nil {
				cause = fmt.Errorf("takeover: delivering drain-start: %w", werr)
			}
		} else {
			spReady.Fail(cause)
			spReady.End()
		}
		if cause == nil {
			res.Retained.Close()
			conn.Close()
			return nil
		}
		conn.Close()

		// Undo: re-arm from the retained dups and resume serving. The
		// kernel sockets were alive (and queuing SYNs) the whole time.
		var spUndo *obs.Span
		if spansOpen {
			spUndo = sp.StartChild(obs.SpanTakeoverUndo)
		} else {
			spUndo = s.Tracer.StartSpan(obs.SpanTakeoverUndo, obs.SpanContext{})
		}
		spUndo.SetAttr("retained_fds", strconv.Itoa(res.Retained.Len()))
		spUndo.SetAttr("cause", cause.Error())
		rearmed, rerr := res.Retained.Rearm()
		if rerr != nil {
			// No way back: this instance is draining and its listeners
			// cannot be restored — the one edge left for RestartFresh.
			err := fmt.Errorf("takeover: drain-undo failed, RestartFresh required: %w (lease: %v)", rerr, cause)
			spUndo.Fail(err)
			spUndo.End()
			if spansOpen {
				sp.Fail(err)
				sp.End()
			}
			if s.OnHandoffError != nil {
				s.OnHandoffError(err)
			}
			return err
		}
		if s.OnUndo != nil {
			s.OnUndo(rearmed, cause)
		} else {
			// Nobody to hand the re-armed set to (forced Proto without a
			// callback): the server's own handles in s.Set are still
			// open, so just drop the dups.
			rearmed.Close()
		}
		spUndo.End()
		undone := undoneErr(cause)
		if spansOpen {
			sp.Fail(undone)
			sp.End()
		}
		if s.OnHandoffError != nil {
			s.OnHandoffError(undone)
		}
		// Un-drained: this instance is fully in charge again; keep
		// serving hand-offs so a redeploy can retry.
	}
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ul != nil {
		err := s.ul.Close()
		s.ul = nil
		return err
	}
	return nil
}

// DefaultConnectBackoff paces Connect's dial retries: the old instance's
// takeover socket may not exist yet (deploy ordering) or may be briefly
// busy with another hand-off attempt.
var DefaultConnectBackoff = faults.Backoff{
	Base:     20 * time.Millisecond,
	Max:      250 * time.Millisecond,
	Factor:   2,
	Attempts: 8,
}

// ConnectOptions configures Connect: the dial-retry policy plus the
// embedded receive options (Timeout bounds both the overall dial budget
// and each protocol exchange).
type ConnectOptions struct {
	// Backoff paces dial retries; the zero value means
	// DefaultConnectBackoff.
	Backoff faults.Backoff
	ReceiveOptions
}

// Connect dials the old instance's takeover server at path and receives
// the socket set (steps A–F, receiver side). It is the canonical
// dial-and-receive entry point; the ConnectBackoff/ConnectTraced/
// ConnectWith names are deprecated wrappers around it.
//
// Dial failures are retried per opts.Backoff until opts.Timeout; protocol
// failures behind a successful dial are not retried (the sender rolled
// back — a blind retry would race its abort handling) and are returned
// with their ErrAborted/ErrUndone classification intact so the
// orchestrator can decide between retrying with a fresh receiver and
// giving up.
func Connect(path string, opts ConnectOptions) (*ListenerSet, *Result, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultHandshakeTimeout
	}
	bo := opts.Backoff
	if bo == (faults.Backoff{}) {
		bo = DefaultConnectBackoff
	}
	ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
	defer cancel()
	var (
		set *ListenerSet
		res *Result
	)
	err := bo.Retry(ctx, func() error {
		spA := opts.Trace.StartChild(obs.SpanTakeoverStepA)
		spA.SetAttr("path", path)
		d := net.Dialer{Timeout: opts.Timeout}
		c, err := d.DialContext(ctx, "unix", path)
		if err != nil {
			err = fmt.Errorf("takeover: connect %s: %w", path, err)
			spA.Fail(err)
			spA.End()
			return err
		}
		spA.End()
		conn := c.(*net.UnixConn)
		defer conn.Close()
		s, r, err := Receive(conn, opts.ReceiveOptions)
		if err != nil {
			return faults.Permanent(err)
		}
		set, res = s, r
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return set, res, nil
}

// Deprecated: ConnectBackoff is a legacy wrapper; use Connect with
// ConnectOptions{Backoff, ReceiveOptions: ReceiveOptions{Timeout}}.
func ConnectBackoff(path string, timeout time.Duration, bo faults.Backoff) (*ListenerSet, *Result, error) {
	return Connect(path, ConnectOptions{Backoff: bo, ReceiveOptions: ReceiveOptions{Timeout: timeout}})
}

// Deprecated: ConnectTraced is a legacy wrapper; use Connect with
// ConnectOptions carrying Trace.
func ConnectTraced(path string, timeout time.Duration, bo faults.Backoff, parent *obs.Span) (*ListenerSet, *Result, error) {
	return Connect(path, ConnectOptions{Backoff: bo, ReceiveOptions: ReceiveOptions{Timeout: timeout, Trace: parent}})
}

// Deprecated: ConnectWith is the pre-consolidation name for Connect.
func ConnectWith(path string, timeout time.Duration, bo faults.Backoff, opts ReceiveOptions) (*ListenerSet, *Result, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = timeout
	}
	return Connect(path, ConnectOptions{Backoff: bo, ReceiveOptions: opts})
}

func removeStaleSocket(path string) error {
	if _, err := os.Stat(path); err == nil {
		// Only remove if nothing is listening (stale from a crash).
		if c, err := net.DialTimeout("unix", path, 100*time.Millisecond); err == nil {
			c.Close()
			return fmt.Errorf("takeover: %s already has a live server", path)
		}
		return os.Remove(path)
	}
	return nil
}
