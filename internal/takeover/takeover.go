// Package takeover implements Socket Takeover (§4.1): zero-downtime restart
// of an L7 proxy by passing every listening-socket file descriptor from the
// running (old) instance to a freshly spun (new) instance over a UNIX
// domain socket, using sendmsg(2) with SCM_RIGHTS ancillary data.
//
// The workflow follows Fig. 5 of the paper:
//
//	(A) The old instance, already bound and accepting on all VIP sockets,
//	    spawns a takeover server bound to a pre-specified path; the new
//	    instance starts and connects to it.
//	(B) The takeover server sends the list of FDs it has bound — TCP
//	    listeners and UDP packet sockets, one entry per VIP — with
//	    sendmsg() and SCM_RIGHTS.
//	(C) The new instance listens on the VIPs corresponding to the FDs
//	    (reconstructing net.Listener/net.UDPConn values from them) and
//	    arms them: accept loops running, health checks green.
//	(D) The new instance confirms to the old server so it can start
//	    draining existing connections. On the current protocol revision
//	    (ProtoTwoPhase) this confirmation is split in two: the receiver
//	    sends PREPARE-ACK once it is armed, and the sender answers with
//	    COMMIT — only then does draining begin. Any failure before the
//	    COMMIT is delivered (arm error, receiver crash, timeout) aborts
//	    the hand-off: the sender keeps serving, the receiver disarms, and
//	    no client ever sees a reset. ProtoOneShot peers keep the original
//	    single-ACK exchange, where the ACK itself is the commit point.
//	(E) On commit, the old instance stops handling new connections and
//	    drains.
//	(F) The new instance takes over health-check responsibility.
//
// Because the FDs are shared file-table entries, the listening sockets are
// never closed during the restart: TCP SYNs continue to be queued and UDP
// packets continue to be delivered, no matter which instant the restart is
// observed at. The kernel socket ring for SO_REUSEPORT VIPs is unchanged
// (no entries added or purged), which is what eliminates the mis-routing
// flux of Fig. 2d.
//
// §5.1 pitfalls are handled explicitly:
//
//   - Orphaned FDs: the receiving side must act on every FD it was sent —
//     either adopt it or close it. Entries the receiver does not recognise
//     are closed and counted in Result.OrphanedFDs rather than silently
//     leaked (a leak leaves a live socket whose accept queue nobody drains,
//     which manifests as user-facing timeouts).
//   - A magic protocol header and version byte guard against a
//     mis-deployed peer speaking something else on the socket.
package takeover

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"syscall"
	"time"

	"zdr/internal/faults"
	"zdr/internal/netx"
	"zdr/internal/obs"
)

// Network names for VIP entries.
const (
	NetworkTCP = "tcp"
	NetworkUDP = "udp"
)

// protocol constants.
const (
	magic = 0x5a44 // "ZD"
	// version is the wire epoch byte. It stays 1: v1 receivers hard-reject
	// any other value with no retry, so protocol revisions are negotiated
	// in-band via the manifest's proto field instead (see ProtoTwoPhase).
	version     = 1
	maxManifest = 1 << 20

	msgManifest     = 1
	msgAck          = 2 // receiver → sender: one-shot confirmation (v1 step D)
	msgFDChunk      = 3
	msgDrainStarted = 4 // sender → receiver: accepting stopped, drain begun (step E)
	msgPrepareAck   = 5 // receiver → sender: armed and serving, awaiting commit
	msgCommit       = 6 // sender → receiver: hand-off committed, drain begins now
	msgAbort        = 7 // sender → receiver: hand-off abandoned before commit

	// fdsPerFrame bounds descriptors per sendmsg; Linux caps SCM_RIGHTS
	// at 253 per message, and netx enforces its own lower bound. Larger
	// VIP sets are split across continuation frames.
	fdsPerFrame = 64
)

// Protocol revisions, negotiated via the manifest's proto field. A v2
// sender always offers ProtoTwoPhase; a v1 receiver never sees the field
// (unknown JSON keys are ignored) and answers with its classic single
// ACK, which the sender accepts as a negotiated-down one-shot hand-off.
// A v1 sender never writes the field, so a v2 receiver falls back to the
// one-shot exchange too. Both directions interoperate without a flag day.
const (
	// ProtoOneShot is the original protocol: the receiver's ACK is the
	// commit point, so an adopt failure after the ACK leaves only
	// RestartFresh (a rebind) as recovery.
	ProtoOneShot = 1
	// ProtoTwoPhase splits the confirmation into PREPARE-ACK (receiver
	// armed) and COMMIT (sender stops accepting): every failure before
	// COMMIT rolls both sides back with zero client-visible resets.
	ProtoTwoPhase = 2
)

// DefaultHandshakeTimeout bounds each protocol step.
const DefaultHandshakeTimeout = 5 * time.Second

// Manifest metadata keys used by the protocol itself (everything else in
// Meta passes through opaquely).
const (
	// TraceMetaKey carries the sender's span context in the manifest
	// metadata, so the receiver's spans can join the sender's trace.
	TraceMetaKey = obs.TraceHeader
	// metaDrainNotify announces that the sender will send a
	// msgDrainStarted frame once it has stopped accepting (step E). The
	// receiver only waits for the confirmation when the key is present,
	// which keeps bare Handoff/Receive pairs compatible.
	metaDrainNotify = "zdr-drain-notify"
)

// VIP describes one service address (Virtual IP) the proxy serves.
type VIP struct {
	// Name identifies the VIP (e.g. "https", "quic"). Names must be
	// unique within a ListenerSet.
	Name string `json:"name"`
	// Network is NetworkTCP or NetworkUDP.
	Network string `json:"network"`
	// Addr is the bind address, e.g. "127.0.0.1:8443".
	Addr string `json:"addr"`
}

type entry struct {
	vip VIP
	ln  *net.TCPListener
	pc  *net.UDPConn
}

// ListenerSet is an ordered collection of bound VIP sockets. It is the unit
// Socket Takeover transfers.
type ListenerSet struct {
	mu      sync.Mutex
	entries []entry
}

// NewListenerSet returns an empty set.
func NewListenerSet() *ListenerSet { return &ListenerSet{} }

// Listen binds all the given VIPs (with SO_REUSEPORT) and returns the set.
// On error, any sockets bound so far are closed.
func Listen(vips ...VIP) (*ListenerSet, error) {
	s := NewListenerSet()
	for _, v := range vips {
		var err error
		switch v.Network {
		case NetworkTCP:
			var ln *net.TCPListener
			ln, err = netx.ListenTCPReusePort(v.Addr)
			if err == nil {
				err = s.AddTCP(v.Name, ln)
			}
		case NetworkUDP:
			var pc *net.UDPConn
			pc, err = netx.ListenUDPReusePort(v.Addr)
			if err == nil {
				err = s.AddUDP(v.Name, pc)
			}
		default:
			err = fmt.Errorf("takeover: unknown network %q", v.Network)
		}
		if err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// AddTCP registers an already-bound TCP listener under name.
func (s *ListenerSet) AddTCP(name string, ln *net.TCPListener) error {
	return s.add(entry{vip: VIP{Name: name, Network: NetworkTCP, Addr: ln.Addr().String()}, ln: ln})
}

// AddUDP registers an already-bound UDP socket under name.
func (s *ListenerSet) AddUDP(name string, pc *net.UDPConn) error {
	return s.add(entry{vip: VIP{Name: name, Network: NetworkUDP, Addr: pc.LocalAddr().String()}, pc: pc})
}

func (s *ListenerSet) add(e entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, have := range s.entries {
		if have.vip.Name == e.vip.Name {
			return fmt.Errorf("takeover: duplicate VIP name %q", e.vip.Name)
		}
	}
	s.entries = append(s.entries, e)
	return nil
}

// TCP returns the listener registered under name, or nil.
func (s *ListenerSet) TCP(name string) *net.TCPListener {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.vip.Name == name && e.ln != nil {
			return e.ln
		}
	}
	return nil
}

// UDP returns the packet socket registered under name, or nil.
func (s *ListenerSet) UDP(name string) *net.UDPConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.vip.Name == name && e.pc != nil {
			return e.pc
		}
	}
	return nil
}

// VIPs returns the VIP descriptors in registration order.
func (s *ListenerSet) VIPs() []VIP {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]VIP, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.vip
	}
	return out
}

// Len returns the number of registered VIP sockets.
func (s *ListenerSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// CloseTCP closes only the TCP listener handles, leaving UDP sockets
// open. A draining instance uses this: closing its TCP handles stops its
// accept loops (the shared sockets stay alive in the new instance), while
// its UDP handles must stay open so user-space-routed replies to draining
// flows can still be written through the shared socket (§4.1).
func (s *ListenerSet) CloseTCP() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	kept := s.entries[:0]
	for _, e := range s.entries {
		if e.ln != nil {
			if err := e.ln.Close(); err != nil && first == nil {
				first = err
			}
			continue
		}
		kept = append(kept, e)
	}
	s.entries = kept
	return first
}

// Close closes every socket in the set, returning the first error.
func (s *ListenerSet) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, e := range s.entries {
		var err error
		if e.ln != nil {
			err = e.ln.Close()
		}
		if e.pc != nil {
			err = e.pc.Close()
		}
		if err != nil && first == nil {
			first = err
		}
	}
	s.entries = nil
	return first
}

// fds extracts duplicated FDs for every entry, in order. Caller owns them.
func (s *ListenerSet) fds() ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fds := make([]int, 0, len(s.entries))
	closeAll := func() {
		for _, fd := range fds {
			syscall.Close(fd)
		}
	}
	for _, e := range s.entries {
		var fd int
		var err error
		if e.ln != nil {
			fd, err = netx.ListenerFD(e.ln)
		} else {
			fd, err = netx.PacketConnFD(e.pc)
		}
		if err != nil {
			closeAll()
			return nil, err
		}
		fds = append(fds, fd)
	}
	return fds, nil
}

// manifest is the wire payload accompanying the FDs.
type manifest struct {
	Magic   uint16 `json:"magic"`
	Version uint8  `json:"version"`
	// Proto is the protocol revision the sender offers (ProtoTwoPhase).
	// Absent/zero means a v1 sender: the receiver runs the one-shot
	// exchange. v1 receivers ignore the field entirely, which is what
	// makes the negotiation backward-compatible in both directions.
	Proto uint8 `json:"proto,omitempty"`
	VIPs  []VIP `json:"vips"`
	// Meta carries side-band hand-off data the new instance needs before
	// serving — e.g. the old instance's pre-configured host-local UDP
	// forwarding address for user-space routing of draining flows (§4.1).
	Meta map[string]string `json:"meta,omitempty"`
}

// ack is the confirmation from the new instance (step D).
type ack struct {
	OK      bool   `json:"ok"`
	Adopted int    `json:"adopted"`
	Err     string `json:"err,omitempty"`
	// Trace is the receiver's span context, so the sender's drain joins
	// the receiver-rooted hand-off trace.
	Trace string `json:"trace,omitempty"`
}

// Result summarises a completed hand-off, from the sender's perspective
// (Handoff) or receiver's (Receive).
type Result struct {
	// VIPs transferred, in order.
	VIPs []VIP
	// Meta is the sender's side-band hand-off data (receiver side).
	Meta map[string]string
	// OrphanedFDs counts descriptors the receiver closed because it did
	// not adopt them (receiver side only).
	OrphanedFDs int
	// Duration is the wall time of the protocol exchange.
	Duration time.Duration
	// PeerTrace is the peer's span context in wire form, or "" if the
	// peer was untraced: on the sender side, the receiver's hand-off span
	// (from the ack); on the receiver side, whatever the sender put under
	// TraceMetaKey in the manifest metadata.
	PeerTrace string
	// DrainConfirmed reports that the sender confirmed it stopped
	// accepting and began draining (receiver side; requires a sender that
	// announces metaDrainNotify, i.e. Server.ListenAndServe).
	DrainConfirmed bool
	// Proto is the negotiated protocol revision (ProtoOneShot or
	// ProtoTwoPhase).
	Proto int
	// Committed reports the hand-off passed its commit point: the sender
	// has stopped accepting and is draining. Always true on a successful
	// hand-off; it exists so failure paths can be classified (see
	// ErrAborted).
	Committed bool
}

var (
	// ErrRejected is returned by Handoff when the new instance refused
	// the socket set.
	ErrRejected = errors.New("takeover: peer rejected hand-off")
	// ErrBadMagic indicates the peer is not speaking the takeover
	// protocol (§5.1: guard against a mis-deployed binary).
	ErrBadMagic = errors.New("takeover: bad protocol magic")
	// ErrAborted marks a receiver-side hand-off failure that happened
	// before the commit point: the sender never began draining (or rolled
	// back to serving), no client saw a reset, and the caller may safely
	// retry with a freshly built receiver. Failures NOT wrapped in
	// ErrAborted (e.g. post-commit promotion errors) fall through to the
	// RestartFresh remediation instead.
	ErrAborted = errors.New("takeover: hand-off aborted before commit")
)

// abortErr classifies err as a pre-commit abort.
func abortErr(err error) error {
	if err == nil || errors.Is(err, ErrAborted) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrAborted, err)
}

func writeFrame(conn *net.UnixConn, kind byte, payload []byte, fds []int) error {
	hdr := make([]byte, 5+len(payload))
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	copy(hdr[5:], payload)
	return netx.WriteFDs(conn, hdr, fds)
}

func readFrame(conn *net.UnixConn) (kind byte, payload []byte, fds []int, err error) {
	// SOCK_STREAM has no message boundaries: consecutive frames (e.g. the
	// two-phase COMMIT immediately followed by the drain-started
	// confirmation) coalesce into one socket read, and a large payload
	// splits across many. Read exactly the 5-byte header, then exactly
	// the declared payload length, never consuming bytes of the next
	// frame. SCM_RIGHTS ancillary data rides the first byte of its
	// sendmsg's segment, so collecting FDs from every recvmsg along the
	// way picks them up regardless of how the stream fragments.
	fail := func(err error) (byte, []byte, []int, error) {
		closeFDs(fds)
		return 0, nil, nil, err
	}
	readExact := func(buf []byte) error {
		for off := 0; off < len(buf); {
			data, more, err := netx.ReadFDs(conn, buf[off:])
			fds = append(fds, more...)
			if err != nil {
				return err
			}
			if len(data) == 0 {
				return fmt.Errorf("takeover: empty read mid-frame")
			}
			off += len(data)
		}
		return nil
	}
	hdr := make([]byte, 5)
	if err := readExact(hdr); err != nil {
		return fail(err)
	}
	kind = hdr[0]
	want := int(binary.BigEndian.Uint32(hdr[1:5]))
	if want > maxManifest {
		return fail(fmt.Errorf("takeover: oversized frame (%d bytes)", want))
	}
	payload = make([]byte, want)
	if err := readExact(payload); err != nil {
		return fail(err)
	}
	return kind, payload, fds, nil
}

func closeFDs(fds []int) {
	for _, fd := range fds {
		syscall.Close(fd)
	}
}

// Handoff runs the sender side (old instance) of the takeover protocol on
// an established UNIX socket connection: it sends the manifest and FDs for
// every socket in set, then waits for the new instance's confirmation.
// A nil timeout means DefaultHandshakeTimeout.
//
// On success the old instance should stop accepting new connections and
// begin draining (step E); its copies of the listening sockets remain open
// until it exits, which is harmless because both instances share the file
// table entries.
func Handoff(conn *net.UnixConn, set *ListenerSet, timeout time.Duration) (*Result, error) {
	return HandoffWith(conn, set, HandoffOptions{Timeout: timeout})
}

// HandoffMeta is Handoff with side-band metadata delivered to the
// receiver's Result.Meta.
func HandoffMeta(conn *net.UnixConn, set *ListenerSet, meta map[string]string, timeout time.Duration) (*Result, error) {
	return HandoffWith(conn, set, HandoffOptions{Meta: meta, Timeout: timeout})
}

// HandoffOptions configures the sender side of a hand-off.
type HandoffOptions struct {
	// Meta is side-band hand-off data delivered to the receiver's
	// Result.Meta.
	Meta map[string]string
	// Timeout bounds the exchange; zero means DefaultHandshakeTimeout.
	Timeout time.Duration
	// Parent, when non-nil, gets a "takeover.prepare" child span covering
	// the manifest+FD transfer through commit delivery. An aborted
	// hand-off fails that span and records no "takeover.commit" span.
	Parent *obs.Span
	// Proto is the protocol revision to offer; zero means ProtoTwoPhase.
	// ProtoOneShot forces the legacy single-ACK exchange (wire-identical
	// to a v1 sender).
	Proto int
}

// HandoffWith is Handoff with explicit options. On an error the hand-off
// aborted before this instance stopped accepting: it is still fully in
// charge and must keep serving.
func HandoffWith(conn *net.UnixConn, set *ListenerSet, opts HandoffOptions) (*Result, error) {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultHandshakeTimeout
	}
	proto := opts.Proto
	if proto == 0 {
		proto = ProtoTwoPhase
	}
	if proto != ProtoOneShot && proto != ProtoTwoPhase {
		return nil, fmt.Errorf("takeover: unknown protocol revision %d", proto)
	}
	start := time.Now()
	deadline := start.Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	defer conn.SetDeadline(time.Time{})

	sp := opts.Parent.StartChild("takeover.prepare")
	sp.SetAttr("side", "sender")
	fail := func(err error) (*Result, error) {
		sp.Fail(err)
		sp.End()
		return nil, err
	}
	// abort additionally tells a still-live receiver to disarm right away
	// instead of waiting out its commit deadline. Best-effort: if the
	// connection is dead the receiver's read fails just as promptly.
	abort := func(err error) (*Result, error) {
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		writeFrame(conn, msgAbort, []byte(err.Error()), nil)
		return fail(err)
	}

	m := manifest{Magic: magic, Version: version, VIPs: set.VIPs(), Meta: opts.Meta}
	if proto == ProtoTwoPhase {
		// A forced one-shot offer stays byte-identical to a v1 sender
		// (field absent).
		m.Proto = ProtoTwoPhase
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return fail(err)
	}
	fds, err := set.fds()
	if err != nil {
		return fail(err)
	}
	defer closeFDs(fds) // our dups; receiver has its own after sendmsg
	first := fds
	if len(first) > fdsPerFrame {
		first = first[:fdsPerFrame]
	}
	if err := writeFrame(conn, msgManifest, payload, first); err != nil {
		return fail(err)
	}
	// Continuation frames for large VIP sets.
	for off := fdsPerFrame; off < len(fds); off += fdsPerFrame {
		end := off + fdsPerFrame
		if end > len(fds) {
			end = len(fds)
		}
		if err := writeFrame(conn, msgFDChunk, nil, fds[off:end]); err != nil {
			return fail(err)
		}
	}

	kind, ackPayload, stray, err := readFrame(conn)
	if err != nil {
		return abort(fmt.Errorf("takeover: waiting for confirmation: %w", err))
	}
	closeFDs(stray)
	if kind != msgAck && kind != msgPrepareAck {
		return abort(fmt.Errorf("takeover: expected ack, got frame kind %d", kind))
	}
	var a ack
	if err := json.Unmarshal(ackPayload, &a); err != nil {
		return abort(fmt.Errorf("takeover: bad ack: %w", err))
	}
	if !a.OK {
		// The receiver already rolled itself back; no abort frame needed.
		return fail(fmt.Errorf("%w: %s", ErrRejected, a.Err))
	}
	res := &Result{VIPs: m.VIPs, PeerTrace: a.Trace, Proto: ProtoOneShot}
	if kind == msgPrepareAck {
		if proto != ProtoTwoPhase {
			return abort(fmt.Errorf("takeover: unexpected prepare-ack on a one-shot hand-off"))
		}
		// The receiver is armed and serving. This write is the commit
		// point: if COMMIT cannot be delivered the receiver disarms and
		// this instance keeps serving — nobody drains, nobody resets.
		if err := writeFrame(conn, msgCommit, nil, nil); err != nil {
			return fail(fmt.Errorf("takeover: delivering commit: %w", err))
		}
		res.Proto = ProtoTwoPhase
	}
	// A one-shot receiver's single ACK is already the commit point — a v1
	// peer negotiates the two-phase offer down rather than failing it.
	res.Committed = true
	res.Duration = time.Since(start)
	sp.SetAttr("proto", strconv.Itoa(res.Proto))
	sp.End()
	return res, nil
}

// Receive runs the receiver side (new instance): it reads the manifest and
// FDs, reconstructs a ListenerSet, closes any FD it cannot adopt (orphan
// prevention, §5.1), and confirms to the old instance.
func Receive(conn *net.UnixConn, timeout time.Duration) (*ListenerSet, *Result, error) {
	return ReceiveWith(conn, ReceiveOptions{Timeout: timeout})
}

// ReceiveTraced is Receive with Fig. 5 step spans recorded as children of
// parent (nil parent disables tracing).
func ReceiveTraced(conn *net.UnixConn, timeout time.Duration, parent *obs.Span) (*ListenerSet, *Result, error) {
	return ReceiveWith(conn, ReceiveOptions{Timeout: timeout, Parent: parent})
}

// ReceiveOptions configures the receiver side of a hand-off.
type ReceiveOptions struct {
	// Timeout bounds the exchange; zero means DefaultHandshakeTimeout.
	Timeout time.Duration
	// Parent, when non-nil, gets the Fig. 5 step spans as children:
	//
	//	takeover.step.B   manifest + FD frames read
	//	takeover.step.C   listeners reconstructed from the FDs
	//	takeover.prepare  Arm run, PREPARE-ACK sent   (two-phase)
	//	takeover.commit   sender's COMMIT awaited     (two-phase)
	//	takeover.step.D   Arm run, single ACK sent    (one-shot peers)
	//	takeover.step.E   sender's drain-start confirmation awaited
	//
	// Step E is only awaited when the sender announced it (metaDrainNotify
	// in the manifest); its failure is recorded on the span but does not
	// fail the hand-off — the sockets are already adopted.
	Parent *obs.Span
	// Arm, when non-nil, runs after the listener set is reconstructed and
	// must leave this instance fully serving (accept loops running,
	// health checks green) before returning nil: its success is exactly
	// what the confirmation — PREPARE-ACK or one-shot ACK — attests to.
	// An error rolls the hand-off back: the sender is nacked and keeps
	// serving, the set is closed, and the error is wrapped in ErrAborted.
	Arm func(set *ListenerSet, res *Result) error
	// Disarm, when non-nil, unwinds a successful Arm after a pre-commit
	// abort (commit timeout, peer abort or crash). When nil the listener
	// set is merely closed.
	Disarm func(set *ListenerSet)
}

// ReceiveWith is Receive with explicit options. An error wrapped in
// ErrAborted means the hand-off died before its commit point: the sender
// keeps serving undisturbed and the caller may retry with a fresh
// receiver.
func ReceiveWith(conn *net.UnixConn, opts ReceiveOptions) (*ListenerSet, *Result, error) {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultHandshakeTimeout
	}
	parent := opts.Parent
	start := time.Now()
	if err := conn.SetDeadline(start.Add(timeout)); err != nil {
		return nil, nil, err
	}
	defer conn.SetDeadline(time.Time{})

	spB := parent.StartChild("takeover.step.B")
	failB := func(err error) {
		spB.Fail(err)
		spB.End()
	}
	kind, payload, fds, err := readFrame(conn)
	if err != nil {
		failB(err)
		return nil, nil, err
	}
	if kind != msgManifest {
		closeFDs(fds)
		err = fmt.Errorf("takeover: expected manifest, got frame kind %d", kind)
		failB(err)
		return nil, nil, err
	}
	var m manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		closeFDs(fds)
		err = fmt.Errorf("takeover: bad manifest: %w", err)
		failB(err)
		return nil, nil, err
	}
	if m.Magic != magic {
		closeFDs(fds)
		sendAck(conn, ack{OK: false, Err: "bad magic"})
		failB(ErrBadMagic)
		return nil, nil, ErrBadMagic
	}
	if m.Version != version {
		closeFDs(fds)
		sendAck(conn, ack{OK: false, Err: fmt.Sprintf("unsupported version %d", m.Version)})
		err = fmt.Errorf("takeover: unsupported protocol version %d", m.Version)
		failB(err)
		return nil, nil, err
	}
	// Collect continuation frames until every declared VIP has its FD. A
	// sender that declared more VIPs than it attached FDs for never sends
	// a continuation; bound the wait so the mismatch surfaces as the
	// missing-FDs error below rather than a hang.
	for len(fds) < len(m.VIPs) && len(fds) >= fdsPerFrame && len(fds)%fdsPerFrame == 0 {
		kind, _, more, err := readFrame(conn)
		if err != nil {
			sendAck(conn, ack{OK: false, Err: "fd continuation: " + err.Error()})
			closeFDs(fds)
			err = fmt.Errorf("takeover: reading fd continuation: %w", err)
			failB(err)
			return nil, nil, err
		}
		if kind != msgFDChunk {
			closeFDs(fds)
			closeFDs(more)
			sendAck(conn, ack{OK: false, Err: "unexpected frame during fd transfer"})
			err = fmt.Errorf("takeover: expected fd chunk, got frame kind %d", kind)
			failB(err)
			return nil, nil, err
		}
		if len(more) == 0 {
			break
		}
		fds = append(fds, more...)
	}
	spB.SetAttr("vips", fmt.Sprintf("%d", len(m.VIPs)))
	spB.SetAttr("fds", fmt.Sprintf("%d", len(fds)))
	spB.End()

	spC := parent.StartChild("takeover.step.C")
	set := NewListenerSet()
	orphans := 0
	var firstErr error
	for i, fd := range fds {
		if i >= len(m.VIPs) {
			// More FDs than manifest entries: close the strays rather
			// than leak live sockets (§5.1).
			syscall.Close(fd)
			orphans++
			continue
		}
		v := m.VIPs[i]
		var err error
		switch v.Network {
		case NetworkTCP:
			var ln *net.TCPListener
			ln, err = netx.ListenerFromFD(fd, v.Name)
			if err == nil {
				err = set.AddTCP(v.Name, ln)
				if err != nil {
					ln.Close()
				}
			}
		case NetworkUDP:
			var pc *net.UDPConn
			pc, err = netx.PacketConnFromFD(fd, v.Name)
			if err == nil {
				err = set.AddUDP(v.Name, pc)
				if err != nil {
					pc.Close()
				}
			}
		default:
			syscall.Close(fd)
			err = fmt.Errorf("takeover: vip %q has unknown network %q", v.Name, v.Network)
		}
		if err != nil {
			orphans++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if len(fds) < len(m.VIPs) {
		if firstErr == nil {
			firstErr = fmt.Errorf("takeover: manifest lists %d vips but only %d fds arrived", len(m.VIPs), len(fds))
		}
	}
	if firstErr != nil {
		set.Close()
		sendAck(conn, ack{OK: false, Err: firstErr.Error()})
		spC.Fail(firstErr)
		spC.End()
		return nil, nil, firstErr
	}
	spC.SetAttr("adopted", fmt.Sprintf("%d", set.Len()))
	spC.End()

	res := &Result{VIPs: m.VIPs, Meta: m.Meta, OrphanedFDs: orphans, PeerTrace: m.Meta[TraceMetaKey], Proto: ProtoOneShot}
	twoPhase := m.Proto >= ProtoTwoPhase
	if twoPhase {
		res.Proto = ProtoTwoPhase
	}

	// Arm before confirming: the confirmation — PREPARE-ACK on the
	// two-phase protocol, the single ACK for one-shot peers — attests
	// that this instance is already serving every VIP.
	armSpan, ackKind := "takeover.step.D", byte(msgAck)
	if twoPhase {
		armSpan, ackKind = "takeover.prepare", msgPrepareAck
	}
	spD := parent.StartChild(armSpan)
	spD.SetAttr("side", "receiver")
	armed := false
	disarm := func() {
		if armed && opts.Disarm != nil {
			opts.Disarm(set)
		} else {
			set.Close()
		}
	}
	if opts.Arm != nil {
		if err := opts.Arm(set, res); err != nil {
			err = fmt.Errorf("takeover: arming receiver: %w", err)
			sendAckKind(conn, ackKind, ack{OK: false, Err: err.Error()})
			set.Close()
			spD.Fail(err)
			spD.End()
			return nil, nil, abortErr(err)
		}
		armed = true
	}
	if err := sendAckKind(conn, ackKind, ack{OK: true, Adopted: set.Len(), Trace: parent.Context().String()}); err != nil {
		disarm()
		spD.Fail(err)
		spD.End()
		return nil, nil, abortErr(err)
	}
	spD.End()

	if twoPhase {
		// Await COMMIT. Until it arrives the sender may abort — with an
		// explicit msgAbort, by crashing (read error/EOF), or by simply
		// never answering (deadline) — and in every one of those cases
		// this instance disarms: from the clients' point of view the
		// hand-off never happened, and the sender keeps serving.
		spCommit := parent.StartChild("takeover.commit")
		spCommit.SetAttr("side", "receiver")
		kind, payload, stray, err := readFrame(conn)
		closeFDs(stray)
		switch {
		case err != nil:
			err = fmt.Errorf("takeover: waiting for commit: %w", err)
		case kind == msgAbort:
			err = fmt.Errorf("takeover: peer aborted before commit: %s", payload)
		case kind != msgCommit:
			err = fmt.Errorf("takeover: expected commit, got frame kind %d", kind)
		}
		if err != nil {
			disarm()
			spCommit.Fail(err)
			spCommit.End()
			return nil, nil, abortErr(err)
		}
		spCommit.End()
	}
	res.Committed = true

	if m.Meta[metaDrainNotify] == "1" {
		// Step E: the old instance stops accepting and begins draining; it
		// confirms with a msgDrainStarted frame. Best-effort — the sockets
		// are already ours, so a timeout here degrades to an errored span
		// and DrainConfirmed=false, not a failed hand-off.
		spE := parent.StartChild("takeover.step.E")
		kind, _, stray, err := readFrame(conn)
		closeFDs(stray)
		switch {
		case err != nil:
			spE.Fail(fmt.Errorf("takeover: waiting for drain-start confirmation: %w", err))
		case kind != msgDrainStarted:
			spE.Fail(fmt.Errorf("takeover: expected drain-start confirmation, got frame kind %d", kind))
		default:
			res.DrainConfirmed = true
		}
		spE.End()
	}
	res.Duration = time.Since(start)
	return set, res, nil
}

func sendAck(conn *net.UnixConn, a ack) error {
	return sendAckKind(conn, msgAck, a)
}

func sendAckKind(conn *net.UnixConn, kind byte, a ack) error {
	payload, err := json.Marshal(a)
	if err != nil {
		return err
	}
	return writeFrame(conn, kind, payload, nil)
}

// Server is the takeover server the old instance spawns (step A). It
// listens on a filesystem path and performs one hand-off per accepted
// connection.
type Server struct {
	// Set is the listener set to transfer.
	Set *ListenerSet
	// Meta is side-band hand-off data sent with the manifest (e.g. the
	// UDP user-space-routing forward address).
	Meta map[string]string
	// OnDrainStart, if non-nil, is invoked after a successful hand-off —
	// the point at which the old instance must stop accepting and start
	// draining (step E).
	OnDrainStart func(Result)
	// OnHandoffError, if non-nil, is invoked after a failed hand-off
	// attempt (receiver died mid-handshake, arm failure nack, prepare-ack
	// or commit-delivery timeout, protocol error). The server has already
	// rolled back: its dup'd FDs are closed, the instance never started
	// draining, and it keeps accepting further hand-off attempts. The
	// callback is the abort's observability hook (§5.1 — aborted releases
	// must be visible, not silent).
	OnHandoffError func(error)
	// HandshakeTimeout bounds each hand-off; zero means the default.
	HandshakeTimeout time.Duration
	// Tracer, if non-nil, records the sender-side view of every hand-off
	// attempt: a "takeover.serve" root span with a "takeover.prepare"
	// child (through commit delivery) and — only on committed hand-offs —
	// a "takeover.commit" child covering the drain cut-over. An aborted
	// attempt therefore shows a failed takeover.prepare and no
	// takeover.commit.
	Tracer *obs.Tracer
	// Proto forces the offered protocol revision (compat testing); zero
	// means ProtoTwoPhase.
	Proto int

	mu sync.Mutex
	ul *net.UnixListener
}

// ListenAndServe binds the pre-specified UNIX path and serves hand-offs
// until Close. It removes a stale socket file first.
func (s *Server) ListenAndServe(path string) error {
	if err := removeStaleSocket(path); err != nil {
		return err
	}
	ul, err := net.ListenUnix("unix", &net.UnixAddr{Name: path, Net: "unix"})
	if err != nil {
		return fmt.Errorf("takeover: listen %s: %w", path, err)
	}
	s.mu.Lock()
	s.ul = ul
	s.mu.Unlock()
	defer s.Close() // release the path so the next generation can bind it
	for {
		conn, err := ul.AcceptUnix()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		meta := make(map[string]string, len(s.Meta)+1)
		for k, v := range s.Meta {
			meta[k] = v
		}
		meta[metaDrainNotify] = "1"
		sp := s.Tracer.StartSpan("takeover.serve", obs.SpanContext{})
		sp.SetAttr("path", path)
		res, err := HandoffWith(conn, s.Set, HandoffOptions{
			Meta:    meta,
			Timeout: s.HandshakeTimeout,
			Parent:  sp,
			Proto:   s.Proto,
		})
		if err != nil {
			conn.Close()
			sp.Fail(err)
			sp.End()
			// An aborted hand-off leaves this instance fully in charge;
			// keep serving so a retried deploy can connect again.
			if s.OnHandoffError != nil {
				s.OnHandoffError(err)
			}
			continue
		}
		// Committed: from here on the hand-off cannot roll back — this
		// instance stops accepting and drains. A failure past this point
		// is the caller's RestartFresh territory, never a silent retry.
		spCommit := sp.StartChild("takeover.commit")
		spCommit.SetAttr("side", "sender")
		spCommit.SetAttr("proto", strconv.Itoa(res.Proto))
		if s.OnDrainStart != nil {
			s.OnDrainStart(*res)
		}
		// End the spans before the drain-started confirmation goes out: the
		// frame releases the receiver, and a release report assembled right
		// after must not catch this trace still in flight.
		spCommit.End()
		sp.End()
		// Step E confirmation: accepting has stopped and draining has
		// begun. Best-effort — a receiver that doesn't wait (bare
		// Receive) has already hung up.
		conn.SetDeadline(time.Now().Add(time.Second))
		writeFrame(conn, msgDrainStarted, nil, nil)
		conn.Close()
		return nil
	}
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ul != nil {
		err := s.ul.Close()
		s.ul = nil
		return err
	}
	return nil
}

// DefaultConnectBackoff paces Connect's dial retries: the old instance's
// takeover socket may not exist yet (deploy ordering) or may be briefly
// busy with another hand-off attempt.
var DefaultConnectBackoff = faults.Backoff{
	Base:     20 * time.Millisecond,
	Max:      250 * time.Millisecond,
	Factor:   2,
	Attempts: 8,
}

// Connect dials the old instance's takeover server at path and receives
// the socket set (steps B–D, receiver side). Dial failures are retried
// with DefaultConnectBackoff until timeout; protocol failures behind a
// successful dial are not retried (the sender rolled back — a blind
// retry would race its abort handling).
func Connect(path string, timeout time.Duration) (*ListenerSet, *Result, error) {
	return ConnectBackoff(path, timeout, DefaultConnectBackoff)
}

// ConnectBackoff is Connect with an explicit dial-retry policy.
func ConnectBackoff(path string, timeout time.Duration, bo faults.Backoff) (*ListenerSet, *Result, error) {
	return ConnectTraced(path, timeout, bo, nil)
}

// ConnectTraced is ConnectBackoff with Fig. 5 step spans recorded as
// children of parent: takeover.step.A covers the dial (one span per
// attempt when dials are retried), and the receive side records the
// remaining steps (see ReceiveOptions.Parent).
func ConnectTraced(path string, timeout time.Duration, bo faults.Backoff, parent *obs.Span) (*ListenerSet, *Result, error) {
	return ConnectWith(path, timeout, bo, ReceiveOptions{Parent: parent})
}

// ConnectWith is ConnectBackoff with explicit receive options (arming
// callbacks, tracing). Only dial failures are retried; protocol failures
// behind a successful dial — including pre-commit aborts — are returned
// to the caller, preserving their ErrAborted classification so the
// orchestrator can decide between retrying with a fresh receiver and
// giving up.
func ConnectWith(path string, timeout time.Duration, bo faults.Backoff, opts ReceiveOptions) (*ListenerSet, *Result, error) {
	if timeout <= 0 {
		timeout = DefaultHandshakeTimeout
	}
	if opts.Timeout <= 0 {
		opts.Timeout = timeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var (
		set *ListenerSet
		res *Result
	)
	err := bo.Retry(ctx, func() error {
		spA := opts.Parent.StartChild("takeover.step.A")
		spA.SetAttr("path", path)
		d := net.Dialer{Timeout: timeout}
		c, err := d.DialContext(ctx, "unix", path)
		if err != nil {
			err = fmt.Errorf("takeover: connect %s: %w", path, err)
			spA.Fail(err)
			spA.End()
			return err
		}
		spA.End()
		conn := c.(*net.UnixConn)
		defer conn.Close()
		s, r, err := ReceiveWith(conn, opts)
		if err != nil {
			return faults.Permanent(err)
		}
		set, res = s, r
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return set, res, nil
}

func removeStaleSocket(path string) error {
	if _, err := os.Stat(path); err == nil {
		// Only remove if nothing is listening (stale from a crash).
		if c, err := net.DialTimeout("unix", path, 100*time.Millisecond); err == nil {
			c.Close()
			return fmt.Errorf("takeover: %s already has a live server", path)
		}
		return os.Remove(path)
	}
	return nil
}
