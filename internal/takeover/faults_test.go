package takeover

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"zdr/internal/netx"
)

// countOpenFDs walks /proc/self/fd — the lsof-style accounting the §5.1
// orphan-prevention tests are built on. The walk itself opens one fd (the
// directory), which readDir excludes by construction... it cannot, so
// callers compare two counts taken the same way and the bias cancels.
func countOpenFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Fatalf("reading /proc/self/fd: %v", err)
	}
	return len(ents)
}

// waitFDCount polls until the open-FD count settles at want (closes of
// netpoll-registered sockets are asynchronous to the Close call).
func waitFDCount(t *testing.T, want int) int {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	got := countOpenFDs(t)
	for got != want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		got = countOpenFDs(t)
	}
	return got
}

// TestReceiverCrashMidHandoff is the §5.1 abort scenario at the protocol
// layer: the receiver dies between the manifest frame (FDs already sent)
// and the ACK. The sender must (a) return an error, (b) leave the old
// instance fully in charge — its sockets still accept — and (c) close
// every dup'd FD it made for the transfer (no leaked dups).
func TestReceiverCrashMidHandoff(t *testing.T) {
	set := mustListen(t,
		VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"},
		VIP{Name: "quic", Network: NetworkUDP, Addr: "127.0.0.1:0"},
	)
	before := countOpenFDs(t)

	a, b := pair(t)
	received := make(chan []int, 1)
	go func() {
		// Fake receiver: read the manifest frame — at this point the
		// kernel has installed the dup'd FDs in our file table, the
		// moment the paper's crash window opens — then die without ACK.
		_, _, fds, _ := readFrame(b)
		b.Close()
		received <- fds
	}()

	if _, err := Handoff(a, set, HandoffOptions{Timeout: 2 * time.Second}); err == nil {
		t.Fatal("handoff succeeded with a receiver that died before ACK")
	}
	a.Close()
	// The "crashed" receiver's kernel cleanup: its process exit would
	// close its copies; emulate that here since both ends share a file
	// table in-process.
	closeFDs(<-received)

	// (b) The old instance never lost its sockets: the TCP VIP accepts.
	acceptCh := make(chan error, 1)
	go func() {
		c, err := set.TCP("web").Accept()
		if err == nil {
			c.Close()
		}
		acceptCh <- err
	}()
	probe, err := net.DialTimeout("tcp", set.TCP("web").Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("old instance's VIP stopped accepting after the aborted handoff: %v", err)
	}
	probe.Close()
	if err := <-acceptCh; err != nil {
		t.Fatalf("accept after aborted handoff: %v", err)
	}

	// (c) FD accounting: sender dups and receiver copies are all gone.
	if got := waitFDCount(t, before); got != before {
		t.Fatalf("fd leak: %d open before handoff, %d after abort", before, got)
	}
}

// TestServerSurvivesReceiverCrash runs the same crash through the real
// takeover Server: the abort must fire OnHandoffError, must NOT fire
// OnDrainStart, and the server must keep serving so a retried deploy
// completes the takeover afterwards.
func TestServerSurvivesReceiverCrash(t *testing.T) {
	set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	path := filepath.Join(t.TempDir(), "to.sock")

	aborted := make(chan error, 1)
	drained := make(chan struct{}, 1)
	srv := &Server{
		Set:              set,
		HandshakeTimeout: 2 * time.Second,
		OnDrainStart:     func(Result) { drained <- struct{}{} },
		OnHandoffError: func(err error) {
			select {
			case aborted <- err:
			default:
			}
		},
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(path) }()
	defer srv.Close()
	waitForSocketFile(t, path)

	before := countOpenFDs(t)

	// Fake receiver: connect, take the manifest + FDs, die without ACK.
	c, err := net.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	uc := c.(*net.UnixConn)
	_, _, fds, err := readFrame(uc)
	if err != nil {
		t.Fatalf("fake receiver reading manifest: %v", err)
	}
	closeFDs(fds)
	uc.Close()

	select {
	case err := <-aborted:
		if err == nil {
			t.Fatal("OnHandoffError fired with nil error")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("sender never noticed the receiver crash")
	}
	select {
	case <-drained:
		t.Fatal("aborted handoff started draining the old instance")
	default:
	}
	if got := waitFDCount(t, before); got != before {
		t.Fatalf("fd leak after abort: %d open before, %d after", before, got)
	}

	// A retried deploy now completes against the same, still-armed server.
	got, res, err := Connect(path, ConnectOptions{ReceiveOptions: ReceiveOptions{Timeout: 2 * time.Second}})
	if err != nil {
		t.Fatalf("retried takeover after abort: %v", err)
	}
	defer got.Close()
	if res.OrphanedFDs != 0 || got.Len() != 1 {
		t.Fatalf("retried takeover adopted %d vips with %d orphans", got.Len(), res.OrphanedFDs)
	}
	select {
	case <-drained:
	case <-time.After(2 * time.Second):
		t.Fatal("successful retry did not start the drain")
	}
	if err := <-done; err != nil {
		t.Fatalf("server exit: %v", err)
	}
}

// TestHandoffSendmsgFailureMidChunk uses the netx FD hook to fail the
// SECOND continuation frame of a large transfer: the sender errors and
// closes its dups; the receiver detects the short FD set, closes every
// FD it already adopted (orphan prevention), and nacks.
func TestHandoffSendmsgFailureMidChunk(t *testing.T) {
	vips := make([]VIP, 0, 96)
	for i := 0; i < 96; i++ {
		vips = append(vips, VIP{Name: vipName(i), Network: NetworkTCP, Addr: "127.0.0.1:0"})
	}
	set := mustListen(t, vips...)
	before := countOpenFDs(t)

	writes := 0
	netx.SetFDHook(func(op string, data []byte, fds []int) error {
		if op != "write" || len(fds) == 0 {
			return nil
		}
		writes++
		if writes == 2 {
			return errors.New("injected sendmsg failure")
		}
		return nil
	})
	defer netx.SetFDHook(nil)

	a, b := pair(t)
	recvErr := make(chan error, 1)
	go func() {
		_, _, err := Receive(b, ReceiveOptions{Timeout: 2 * time.Second})
		recvErr <- err
	}()
	_, err := Handoff(a, set, HandoffOptions{Timeout: 2 * time.Second})
	if err == nil {
		t.Fatal("handoff succeeded despite a failed fd chunk")
	}
	if !strings.Contains(err.Error(), "injected sendmsg failure") && !errors.Is(err, ErrRejected) {
		t.Fatalf("unexpected sender error: %v", err)
	}
	a.Close()
	if err := <-recvErr; err == nil {
		t.Fatal("receiver adopted a short fd set")
	}
	b.Close()
	netx.SetFDHook(nil)

	if got := waitFDCount(t, before); got != before {
		t.Fatalf("fd leak after mid-chunk failure: %d before, %d after", before, got)
	}
}

func vipName(i int) string {
	return "vip-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func waitForSocketFile(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); err == nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("takeover socket %s never appeared", path)
}
