package takeover

// FD-lifecycle audit for the two-phase abort edges. Every descriptor the
// hand-off creates — the sender's dups, the kernel's SCM_RIGHTS copies,
// the receiver's reconstructed listeners — must be closed exactly once on
// every pre-commit abort path, measured against /proc/self/fd ground
// truth (netx.OpenFDCount). A leak leaves a live socket whose accept
// queue nobody drains (§5.1); a double-close races fd reuse and can kill
// an unrelated connection.

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"zdr/internal/netx"
)

// assertOldSetServes dials the sender's TCP VIP: after any abort the old
// instance must still be fully in charge.
func assertOldSetServes(t *testing.T, set *ListenerSet, name string) {
	t.Helper()
	acceptCh := make(chan error, 1)
	go func() {
		c, err := set.TCP(name).Accept()
		if err == nil {
			c.Close()
		}
		acceptCh <- err
	}()
	probe, err := net.DialTimeout("tcp", set.TCP(name).Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("old instance's VIP stopped accepting after the abort: %v", err)
	}
	probe.Close()
	if err := <-acceptCh; err != nil {
		t.Fatalf("accept after abort: %v", err)
	}
}

// TestAbortFDAuditArmFailure audits the edge the two-phase protocol
// exists for: the receiver adopts the FDs but fails to arm. The receiver
// must close every adopted socket and nack; the sender must classify the
// nack as a rejection (not start draining); and the process FD count must
// return to its pre-handoff baseline with zero orphans double-closed.
func TestAbortFDAuditArmFailure(t *testing.T) {
	set := mustListen(t,
		VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"},
		VIP{Name: "quic", Network: NetworkUDP, Addr: "127.0.0.1:0"},
	)
	before, err := netx.OpenFDCount()
	if err != nil {
		t.Fatal(err)
	}

	a, b := pair(t)
	sendErr := make(chan error, 1)
	go func() {
		_, err := HandoffWith(a, set, HandoffOptions{Timeout: 2 * time.Second})
		sendErr <- err
	}()

	disarmed := false
	got, res, err := ReceiveWith(b, ReceiveOptions{
		Timeout: 2 * time.Second,
		Arm: func(s *ListenerSet, r *Result) error {
			if s.Len() != 2 {
				t.Errorf("Arm saw %d sockets, want 2", s.Len())
			}
			return errors.New("injected arm failure")
		},
		Disarm: func(s *ListenerSet) { disarmed = true; s.Close() },
	})
	if err == nil {
		t.Fatal("receiver completed a hand-off whose Arm failed")
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("arm failure not classified as pre-commit abort: %v", err)
	}
	if got != nil || res != nil {
		t.Fatalf("aborted receive returned set=%v res=%v", got, res)
	}
	if disarmed {
		t.Fatal("Disarm ran for a failed Arm (arm must unwind itself)")
	}

	serr := <-sendErr
	if serr == nil {
		t.Fatal("sender committed against a receiver that never armed")
	}
	if !errors.Is(serr, ErrRejected) {
		t.Fatalf("sender error = %v, want ErrRejected", serr)
	}
	a.Close()
	b.Close()

	if got, _ := netx.OpenFDCount(); waitFDCount(t, before) != before {
		t.Fatalf("fd leak on arm-failure abort: %d before, %d after", before, got)
	}
	assertOldSetServes(t, set, "web")
	set.Close()
}

// TestAbortFDAuditPrepareAckLost audits the receiver-crash-shaped edge:
// the receiver arms, but its PREPARE-ACK never reaches the sender (the
// injected sendmsg failure stands in for a crash at the worst instant).
// The receiver must run Disarm — it was armed — and the audit must find
// every FD returned: the receiver's adopted listeners closed by Disarm,
// the sender's dups closed on its abort path.
func TestAbortFDAuditPrepareAckLost(t *testing.T) {
	set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	before, err := netx.OpenFDCount()
	if err != nil {
		t.Fatal(err)
	}

	netx.SetFDHook(func(op string, data []byte, fds []int) error {
		if op == "write" && len(data) > 0 && data[0] == msgPrepareAck {
			return errors.New("injected prepare-ack loss")
		}
		return nil
	})
	defer netx.SetFDHook(nil)

	a, b := pair(t)
	sendErr := make(chan error, 1)
	go func() {
		_, err := HandoffWith(a, set, HandoffOptions{Timeout: 2 * time.Second})
		sendErr <- err
		a.Close()
	}()

	disarmed := false
	_, _, err = ReceiveWith(b, ReceiveOptions{
		Timeout: 2 * time.Second,
		Arm:     func(*ListenerSet, *Result) error { return nil },
		Disarm:  func(s *ListenerSet) { disarmed = true; s.Close() },
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("lost prepare-ack not classified as abort: %v", err)
	}
	if !disarmed {
		t.Fatal("receiver armed but Disarm never ran")
	}
	b.Close()
	if err := <-sendErr; err == nil {
		t.Fatal("sender committed without ever seeing a prepare-ack")
	}
	netx.SetFDHook(nil)

	if got := waitFDCount(t, before); got != before {
		t.Fatalf("fd leak on lost prepare-ack: %d before, %d after", before, got)
	}
	assertOldSetServes(t, set, "web")
	set.Close()
}

// TestAbortFDAuditCommitLost audits the last abortable instant: the
// receiver is armed and acked, but the sender's COMMIT delivery fails.
// The sender must roll back (error, no drain); the receiver, seeing the
// connection die instead of a COMMIT, must disarm. Zero FDs may survive
// on either side.
func TestAbortFDAuditCommitLost(t *testing.T) {
	set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	before, err := netx.OpenFDCount()
	if err != nil {
		t.Fatal(err)
	}

	netx.SetFDHook(func(op string, data []byte, fds []int) error {
		if op == "write" && len(data) > 0 && data[0] == msgCommit {
			return errors.New("injected commit loss")
		}
		return nil
	})
	defer netx.SetFDHook(nil)

	a, b := pair(t)
	sendErr := make(chan error, 1)
	go func() {
		_, err := HandoffWith(a, set, HandoffOptions{Timeout: 2 * time.Second})
		sendErr <- err
		// The real sender (Server.ListenAndServe) closes the connection on
		// any hand-off error; that close is what tells a waiting receiver
		// the commit is never coming.
		a.Close()
	}()

	disarmed := false
	_, _, err = ReceiveWith(b, ReceiveOptions{
		Timeout: 2 * time.Second,
		Arm:     func(*ListenerSet, *Result) error { return nil },
		Disarm:  func(s *ListenerSet) { disarmed = true; s.Close() },
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("lost commit not classified as abort: %v", err)
	}
	if !strings.Contains(err.Error(), "waiting for commit") {
		t.Fatalf("receiver failed outside the commit wait: %v", err)
	}
	if !disarmed {
		t.Fatal("receiver armed but Disarm never ran after the lost commit")
	}
	b.Close()

	serr := <-sendErr
	if serr == nil {
		t.Fatal("sender reported success for an undelivered commit")
	}
	if !strings.Contains(serr.Error(), "delivering commit") {
		t.Fatalf("sender failed outside commit delivery: %v", serr)
	}
	netx.SetFDHook(nil)

	if got := waitFDCount(t, before); got != before {
		t.Fatalf("fd leak on lost commit: %d before, %d after", before, got)
	}
	assertOldSetServes(t, set, "web")
	set.Close()
}
