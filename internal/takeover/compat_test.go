package takeover

// Cross-version compatibility: the two-phase protocol (ProtoTwoPhase)
// must interoperate with v1 peers in both directions without a flag day.
// The legacy doubles below replicate the v1 wire behaviour exactly — a
// manifest without the proto field, a single ACK as the only
// confirmation — so these tests fail if the negotiation ever starts
// depending on a field or frame a real v1 binary would not produce.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"zdr/internal/netx"
)

// legacyManifest is the v1 manifest: no proto field. A real v1 binary
// unmarshals the v2 sender's manifest into this shape, silently ignoring
// the unknown "proto" key — which is exactly what makes the negotiation
// backward-compatible.
type legacyManifest struct {
	Magic   uint16            `json:"magic"`
	Version uint8             `json:"version"`
	VIPs    []VIP             `json:"vips"`
	Meta    map[string]string `json:"meta,omitempty"`
}

// legacyReceiveV1 replicates the pre-two-phase receiver: read the
// manifest and FDs, adopt them, send the single ACK, and return — it
// neither sends PREPARE-ACK nor waits for COMMIT.
func legacyReceiveV1(conn *net.UnixConn, timeout time.Duration) (*ListenerSet, error) {
	conn.SetDeadline(time.Now().Add(timeout))
	defer conn.SetDeadline(time.Time{})
	kind, payload, fds, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	if kind != msgManifest {
		closeFDs(fds)
		return nil, fmt.Errorf("legacy receiver: expected manifest, got frame kind %d", kind)
	}
	var m legacyManifest
	if err := json.Unmarshal(payload, &m); err != nil {
		closeFDs(fds)
		return nil, err
	}
	if m.Magic != magic {
		closeFDs(fds)
		return nil, errors.New("legacy receiver: bad magic")
	}
	if m.Version != version {
		// The v1 hard-reject that in-band proto negotiation avoids: a
		// version bump here would abort every mixed-version deploy.
		sendAck(conn, ack{OK: false, Err: fmt.Sprintf("unsupported version %d", m.Version)})
		closeFDs(fds)
		return nil, fmt.Errorf("legacy receiver: unsupported version %d", m.Version)
	}
	if len(fds) != len(m.VIPs) {
		closeFDs(fds)
		sendAck(conn, ack{OK: false, Err: "fd/vip count mismatch"})
		return nil, fmt.Errorf("legacy receiver: %d fds for %d vips", len(fds), len(m.VIPs))
	}
	set := NewListenerSet()
	for i, fd := range fds {
		ln, err := netx.ListenerFromFD(fd, m.VIPs[i].Name)
		if err != nil {
			set.Close()
			closeFDs(fds[i+1:])
			sendAck(conn, ack{OK: false, Err: err.Error()})
			return nil, err
		}
		if err := set.AddTCP(m.VIPs[i].Name, ln); err != nil {
			ln.Close()
			set.Close()
			closeFDs(fds[i+1:])
			return nil, err
		}
	}
	if err := sendAck(conn, ack{OK: true, Adopted: set.Len()}); err != nil {
		set.Close()
		return nil, err
	}
	return set, nil
}

// legacyHandoffV1 replicates the pre-two-phase sender: manifest without
// a proto field, then exactly one confirmation frame, which must be the
// single ACK. It returns the frame kind it received so tests can assert
// a v2 receiver never answered a v1 sender with a PREPARE-ACK.
func legacyHandoffV1(conn *net.UnixConn, set *ListenerSet, timeout time.Duration) (byte, error) {
	conn.SetDeadline(time.Now().Add(timeout))
	defer conn.SetDeadline(time.Time{})
	m := legacyManifest{Magic: magic, Version: version, VIPs: set.VIPs()}
	payload, err := json.Marshal(m)
	if err != nil {
		return 0, err
	}
	fds, err := set.fds()
	if err != nil {
		return 0, err
	}
	defer closeFDs(fds)
	if err := writeFrame(conn, msgManifest, payload, fds); err != nil {
		return 0, err
	}
	kind, ackPayload, stray, err := readFrame(conn)
	if err != nil {
		return 0, err
	}
	closeFDs(stray)
	if kind != msgAck {
		return kind, fmt.Errorf("legacy sender: expected single-ack frame kind %d, got %d", msgAck, kind)
	}
	var a ack
	if err := json.Unmarshal(ackPayload, &a); err != nil {
		return kind, err
	}
	if !a.OK {
		return kind, fmt.Errorf("legacy sender: nacked: %s", a.Err)
	}
	return kind, nil
}

// assertListenerServes proves an adopted listener really accepts: the
// negotiation must transfer working sockets, not just survive the JSON.
func assertListenerServes(t *testing.T, set *ListenerSet, name string) {
	t.Helper()
	ln := set.TCP(name)
	if ln == nil {
		t.Fatalf("adopted set has no TCP listener %q", name)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
	}()
	c, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dialing adopted listener: %v", err)
	}
	c.Close()
	<-done
}

// TestV2SenderToV1Receiver: a two-phase sender offering ProtoTwoPhase to
// a v1 receiver must negotiate down to the one-shot exchange — complete
// the hand-off on the v1 receiver's single ACK, write no COMMIT frame —
// rather than fail into RestartFresh.
func TestV2SenderToV1Receiver(t *testing.T) {
	set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	a, b := pair(t)

	type recvOut struct {
		set *ListenerSet
		err error
	}
	recvCh := make(chan recvOut, 1)
	go func() {
		s, err := legacyReceiveV1(b, 2*time.Second)
		recvCh <- recvOut{s, err}
	}()

	res, err := HandoffWith(a, set, HandoffOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("v2 sender against v1 receiver: %v", err)
	}
	if res.Proto != ProtoOneShot {
		t.Fatalf("negotiated proto = %d, want %d (one-shot)", res.Proto, ProtoOneShot)
	}
	if !res.Committed {
		t.Fatal("negotiated-down hand-off not marked committed")
	}

	out := <-recvCh
	if out.err != nil {
		t.Fatalf("legacy receiver: %v", out.err)
	}
	defer out.set.Close()
	// A v1 receiver returns immediately after its ACK: any COMMIT frame a
	// confused sender wrote would rot in the socket buffer unread, and —
	// worse — a v1 Server would misparse it. Prove the sender wrote
	// nothing after the manifest by reading with a short deadline.
	b.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 16)
	if n, _ := b.Read(buf); n != 0 {
		t.Fatalf("v2 sender wrote %d byte(s) after the v1 ack (frame kind %d)", n, buf[0])
	}
	assertListenerServes(t, out.set, "web")
}

// TestV1SenderToV2Receiver: a v1 sender (no proto field in the manifest)
// against a two-phase receiver must get its classic single ACK — not a
// PREPARE-ACK it cannot parse — with the receiver's Arm still running
// before the confirmation.
func TestV1SenderToV2Receiver(t *testing.T) {
	set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	a, b := pair(t)

	type sendOut struct {
		kind byte
		err  error
	}
	sendCh := make(chan sendOut, 1)
	go func() {
		kind, err := legacyHandoffV1(a, set, 2*time.Second)
		sendCh <- sendOut{kind, err}
	}()

	armed := false
	got, res, err := ReceiveWith(b, ReceiveOptions{
		Timeout: 2 * time.Second,
		Arm: func(s *ListenerSet, r *Result) error {
			armed = true
			if r.Proto != ProtoOneShot {
				t.Errorf("Arm saw proto %d, want %d", r.Proto, ProtoOneShot)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("v2 receiver against v1 sender: %v", err)
	}
	defer got.Close()
	if !armed {
		t.Fatal("Arm never ran")
	}
	if res.Proto != ProtoOneShot {
		t.Fatalf("negotiated proto = %d, want %d (one-shot)", res.Proto, ProtoOneShot)
	}
	if !res.Committed {
		t.Fatal("one-shot hand-off not marked committed on the receiver")
	}

	out := <-sendCh
	if out.err != nil {
		t.Fatalf("legacy sender: %v", out.err)
	}
	if out.kind != msgAck {
		t.Fatalf("legacy sender got frame kind %d, want %d (single ack)", out.kind, msgAck)
	}
	assertListenerServes(t, got, "web")
}

// TestForcedOneShotServer covers the operator escape hatch: a Server
// pinned to ProtoOneShot speaks wire-identical v1 even to a two-phase
// receiver, which must fall back rather than wait for a COMMIT that will
// never come.
func TestForcedOneShotServer(t *testing.T) {
	set := mustListen(t, VIP{Name: "web", Network: NetworkTCP, Addr: "127.0.0.1:0"})
	a, b := pair(t)

	handCh := make(chan error, 1)
	go func() {
		res, err := HandoffWith(a, set, HandoffOptions{Timeout: 2 * time.Second, Proto: ProtoOneShot})
		if err == nil && res.Proto != ProtoOneShot {
			err = fmt.Errorf("forced one-shot negotiated proto %d", res.Proto)
		}
		handCh <- err
	}()

	got, res, err := ReceiveWith(b, ReceiveOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("receive from forced one-shot sender: %v", err)
	}
	defer got.Close()
	if res.Proto != ProtoOneShot || !res.Committed {
		t.Fatalf("res = proto %d committed %v, want one-shot committed", res.Proto, res.Committed)
	}
	if err := <-handCh; err != nil {
		t.Fatal(err)
	}
}
