package takeover_test

import (
	"fmt"

	"zdr/internal/netx"
	"zdr/internal/takeover"
)

// Example performs a complete in-process Socket Takeover: the "old
// instance" binds two VIPs and hands them to the "new instance" over a
// socketpair; the sockets are never closed.
func Example() {
	old, err := takeover.Listen(
		takeover.VIP{Name: "web", Network: takeover.NetworkTCP, Addr: "127.0.0.1:0"},
		takeover.VIP{Name: "quic", Network: takeover.NetworkUDP, Addr: "127.0.0.1:0"},
	)
	if err != nil {
		panic(err)
	}
	defer old.Close()

	a, b, err := netx.SocketPair()
	if err != nil {
		panic(err)
	}
	defer a.Close()
	defer b.Close()

	go takeover.Handoff(a, old, takeover.HandoffOptions{})
	adopted, res, err := takeover.Receive(b, takeover.ReceiveOptions{})
	if err != nil {
		panic(err)
	}
	defer adopted.Close()

	fmt.Println("vips:", len(res.VIPs))
	fmt.Println("orphans:", res.OrphanedFDs)
	fmt.Println("same address:", adopted.TCP("web").Addr().String() == old.TCP("web").Addr().String())
	// Output:
	// vips: 2
	// orphans: 0
	// same address: true
}
