// Package workload generates the synthetic workloads and release
// schedules used to regenerate the paper's motivation and evaluation
// figures. Every generator is driven by an explicit deterministic PRNG so
// experiments reproduce bit-for-bit.
//
// Models (with the paper's anchors):
//
//   - Release cadence (Fig. 2a): L7LB clusters release ~3+ times/week;
//     App Server tiers release ~100 times/week at the median.
//   - Release root causes (Fig. 2b): binary updates ~47%, the rest
//     dominated by configuration changes (which at Facebook also require
//     a restart), plus a small experiments/rollback tail.
//   - Commits per release (Fig. 2c): 10–100 distinct commits.
//   - Restart hour-of-day (Fig. 15): Proxygen releases concentrate in
//     peak hours (12:00–17:00); App Server releases run continuously.
//   - Request/connection properties: long-tailed POST sizes and
//     connection lifetimes — "at the tail (p99.9) most requests are
//     sufficiently large enough to outlive the draining period" (§2.5).
//   - Diurnal traffic (Fig. 13/15 context, [44]).
package workload

import (
	"math"
)

// RNG is a splitmix64 deterministic PRNG (stdlib-only, stable across
// runs and platforms).
type RNG struct {
	state uint64
}

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a standard normal deviate (Box–Muller).
func (r *RNG) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns exp(mu + sigma*N(0,1)) — the classic heavy-ish tail
// for request sizes and durations.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Pareto returns a Pareto(xm, alpha) deviate — the long tail that makes
// p99.9 requests outlive draining periods.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Exponential returns an Exp(rate) deviate.
func (r *RNG) Exponential(rate float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Tier identifies a release tier.
type Tier int

// Tiers.
const (
	TierL7LB Tier = iota
	TierAppServer
)

// ReleaseCause is a root cause from Fig. 2b.
type ReleaseCause int

// Causes.
const (
	CauseBinary ReleaseCause = iota
	CauseConfig
	CauseExperiment
	CauseRollback
)

// String names the cause.
func (c ReleaseCause) String() string {
	switch c {
	case CauseBinary:
		return "binary-update"
	case CauseConfig:
		return "config-change"
	case CauseExperiment:
		return "experiment"
	default:
		return "rollback"
	}
}

// ReleasesPerWeek samples a week's release count for a tier (Fig. 2a).
// L7LB: centred on ~3/week. App Server: centred on ~100/week with spread.
func ReleasesPerWeek(r *RNG, tier Tier) int {
	switch tier {
	case TierL7LB:
		// 2–6 releases, median ~3.
		n := 2 + int(r.LogNormal(0.4, 0.5))
		if n > 8 {
			n = 8
		}
		return n
	default:
		// Median ~100, long right tail, floor of 40.
		n := int(r.LogNormal(math.Log(100), 0.35))
		if n < 40 {
			n = 40
		}
		if n > 300 {
			n = 300
		}
		return n
	}
}

// SampleCause draws a release root cause with Fig. 2b's mix: binary ~47%,
// config ~40%, experiments ~8%, rollbacks ~5%.
func SampleCause(r *RNG) ReleaseCause {
	u := r.Float64()
	switch {
	case u < 0.47:
		return CauseBinary
	case u < 0.87:
		return CauseConfig
	case u < 0.95:
		return CauseExperiment
	default:
		return CauseRollback
	}
}

// CommitsPerRelease samples the number of distinct commits in an App
// Server release: 10–100 (Fig. 2c), log-spread.
func CommitsPerRelease(r *RNG) int {
	n := int(r.LogNormal(math.Log(30), 0.6))
	if n < 10 {
		n = 10
	}
	if n > 100 {
		n = 100
	}
	return n
}

// RestartHour samples the local hour-of-day of a release (Fig. 15):
// Proxygen releases concentrate in the 12:00–17:00 peak window (operators
// are hands-on during peak hours, §6.2.2); App Server releases are a
// continuous cycle and spread uniformly.
func RestartHour(r *RNG, tier Tier) int {
	if tier == TierAppServer {
		return r.Intn(24)
	}
	// 75% of Proxygen releases land in 12..17, the rest spread over the
	// working day 9..20.
	if r.Float64() < 0.75 {
		return 12 + r.Intn(6)
	}
	return 9 + r.Intn(12)
}

// DiurnalLoad returns the relative traffic level (0..1] at hourOfDay,
// the classic single-peak curve ([44]): trough ~04:00, peak ~16:00.
func DiurnalLoad(hourOfDay float64) float64 {
	// Cosine centred on 16:00 with amplitude 0.4 around 0.6.
	phase := 2 * math.Pi * (hourOfDay - 16) / 24
	v := 0.6 + 0.4*math.Cos(phase)
	if v < 0.05 {
		v = 0.05
	}
	return v
}

// PostSizeBytes samples an HTTP POST body size: lognormal body (~32 KiB
// median) with a Pareto tail so p99.9 uploads are large enough to outlive
// any drain period (§2.5).
func PostSizeBytes(r *RNG) int64 {
	if r.Float64() < 0.995 {
		return int64(r.LogNormal(math.Log(32<<10), 1.0))
	}
	v := r.Pareto(1<<20, 0.8) // tail: ≥1 MiB, very heavy
	if v > 1<<31 {
		v = 1 << 31
	}
	return int64(v)
}

// RequestDuration samples an API request service time in milliseconds
// (short-lived median, modest tail).
func RequestDurationMillis(r *RNG) float64 {
	return r.LogNormal(math.Log(40), 0.7)
}

// ConnLifetimeSeconds samples a connection lifetime: most connections are
// short, but MQTT-style connections live effectively forever relative to
// drain periods.
func ConnLifetimeSeconds(r *RNG, persistent bool) float64 {
	if persistent {
		return 3600 + r.Exponential(1.0/3600)*1 // hours
	}
	return r.LogNormal(math.Log(30), 1.2)
}

// Percentile computes the p-quantile (0..1) of values by sorting a copy.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	cp := append([]float64(nil), values...)
	// insertion-free: simple quickselect would be nicer; sort is fine at
	// experiment scale.
	sortFloat64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 1 {
		return cp[len(cp)-1]
	}
	pos := p * float64(len(cp)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(cp) {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

func sortFloat64s(v []float64) {
	// Shell sort: avoids importing sort for one helper and is plenty
	// fast at experiment sizes.
	n := len(v)
	for gap := n / 2; gap > 0; gap /= 2 {
		for i := gap; i < n; i++ {
			t := v[i]
			j := i
			for ; j >= gap && v[j-gap] > t; j -= gap {
				v[j] = v[j-gap]
			}
			v[j] = t
		}
	}
}
