package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	if NewRNG(42).Uint64() == c.Uint64() {
		t.Fatal("different seeds collided immediately")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestIntnPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformish(t *testing.T) {
	r := NewRNG(7)
	counts := make([]int, 10)
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("digit %d count %d far from uniform", d, c)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(11)
	var sum, sumSq float64
	const n = 200_000
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal moments off: mean=%v var=%v", mean, variance)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(13)
	var vals []float64
	for i := 0; i < 50_000; i++ {
		vals = append(vals, r.LogNormal(math.Log(100), 0.5))
	}
	med := Percentile(vals, 0.5)
	if med < 90 || med > 110 {
		t.Fatalf("lognormal median = %v, want ~100", med)
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRNG(17)
	over := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		v := r.Pareto(1, 1.0)
		if v < 1 {
			t.Fatalf("pareto below xm: %v", v)
		}
		if v > 10 {
			over++
		}
	}
	// P(X>10) = (1/10)^1 = 0.1 for alpha=1.
	frac := float64(over) / n
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("pareto tail fraction = %v, want ~0.1", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(19)
	var sum float64
	const n = 100_000
	for i := 0; i < n; i++ {
		sum += r.Exponential(0.5)
	}
	mean := sum / n
	if mean < 1.9 || mean > 2.1 {
		t.Fatalf("exp mean = %v, want ~2", mean)
	}
}

func TestReleasesPerWeekShape(t *testing.T) {
	r := NewRNG(23)
	var l7, app []float64
	for i := 0; i < 10_000; i++ {
		l7 = append(l7, float64(ReleasesPerWeek(r, TierL7LB)))
		app = append(app, float64(ReleasesPerWeek(r, TierAppServer)))
	}
	l7med, appMed := Percentile(l7, 0.5), Percentile(app, 0.5)
	if l7med < 2 || l7med > 6 {
		t.Fatalf("L7LB median releases/week = %v, want ~3", l7med)
	}
	if appMed < 80 || appMed > 130 {
		t.Fatalf("AppServer median releases/week = %v, want ~100", appMed)
	}
	if appMed < 10*l7med {
		t.Fatalf("app tier should release an order of magnitude more often (l7=%v app=%v)", l7med, appMed)
	}
}

func TestSampleCauseMix(t *testing.T) {
	r := NewRNG(29)
	counts := map[ReleaseCause]int{}
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[SampleCause(r)]++
	}
	binFrac := float64(counts[CauseBinary]) / n
	if binFrac < 0.44 || binFrac > 0.50 {
		t.Fatalf("binary fraction = %v, want ~0.47 (Fig 2b)", binFrac)
	}
	if counts[CauseConfig] == 0 || counts[CauseExperiment] == 0 || counts[CauseRollback] == 0 {
		t.Fatal("cause mix missing categories")
	}
	for c := CauseBinary; c <= CauseRollback; c++ {
		if c.String() == "" {
			t.Fatal("cause name empty")
		}
	}
}

func TestCommitsPerReleaseRange(t *testing.T) {
	r := NewRNG(31)
	for i := 0; i < 10_000; i++ {
		n := CommitsPerRelease(r)
		if n < 10 || n > 100 {
			t.Fatalf("commits = %d out of [10,100] (Fig 2c)", n)
		}
	}
}

func TestRestartHourDistributions(t *testing.T) {
	r := NewRNG(37)
	peak := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		h := RestartHour(r, TierL7LB)
		if h < 0 || h > 23 {
			t.Fatalf("hour = %d", h)
		}
		if h >= 12 && h < 18 {
			peak++
		}
	}
	if frac := float64(peak) / n; frac < 0.6 {
		t.Fatalf("only %v of proxygen releases in peak hours, want most (Fig 15)", frac)
	}
	counts := make([]int, 24)
	for i := 0; i < n; i++ {
		counts[RestartHour(r, TierAppServer)]++
	}
	for h, c := range counts {
		if c < n/24-n/60 || c > n/24+n/60 {
			t.Fatalf("app server hour %d count %d not flat (Fig 15)", h, c)
		}
	}
}

func TestDiurnalLoadShape(t *testing.T) {
	peak := DiurnalLoad(16)
	trough := DiurnalLoad(4)
	if peak <= trough {
		t.Fatalf("peak %v <= trough %v", peak, trough)
	}
	if math.Abs(peak-1.0) > 1e-9 {
		t.Fatalf("peak = %v, want 1.0", peak)
	}
	for h := 0.0; h < 24; h += 0.5 {
		v := DiurnalLoad(h)
		if v <= 0 || v > 1 {
			t.Fatalf("DiurnalLoad(%v) = %v out of (0,1]", h, v)
		}
	}
}

func TestPostSizeTailOutlivesDrain(t *testing.T) {
	r := NewRNG(41)
	var sizes []float64
	for i := 0; i < 200_000; i++ {
		sizes = append(sizes, float64(PostSizeBytes(r)))
	}
	med := Percentile(sizes, 0.5)
	p999 := Percentile(sizes, 0.999)
	if med > 1<<20 {
		t.Fatalf("median POST %v too large", med)
	}
	// §2.5: the p99.9 must be dramatically larger than the median — large
	// enough to outlive a 10-15s app server drain on a slow uplink.
	if p999 < 20*med {
		t.Fatalf("p999/median = %v, tail not heavy enough", p999/med)
	}
}

func TestConnLifetimes(t *testing.T) {
	r := NewRNG(43)
	if ConnLifetimeSeconds(r, true) < 3600 {
		t.Fatal("persistent connection should be hours-long")
	}
	short := 0
	for i := 0; i < 10_000; i++ {
		if ConnLifetimeSeconds(r, false) < 300 {
			short++
		}
	}
	if short < 9_000 {
		t.Fatalf("only %d/10000 ephemeral connections under 5 minutes", short)
	}
}

func TestPercentile(t *testing.T) {
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	v := []float64{5, 1, 3, 2, 4}
	if Percentile(v, 0) != 1 || Percentile(v, 1) != 5 || Percentile(v, 0.5) != 3 {
		t.Fatalf("percentiles wrong: %v %v %v", Percentile(v, 0), Percentile(v, 0.5), Percentile(v, 1))
	}
	// The input must not be mutated.
	if v[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(data []float64, a, b float64) bool {
		for _, d := range data {
			if math.IsNaN(d) || math.IsInf(d, 0) {
				return true
			}
		}
		pa, pb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(data, pa) <= Percentile(data, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
