package cluster

import (
	"math"
	"testing"
	"time"

	"zdr/internal/workload"
)

func TestHardRestartReducesCapacity(t *testing.T) {
	res := RunRelease(Config{
		Machines:      100,
		BatchFraction: 0.2,
		DrainPeriod:   10 * time.Minute,
		Strategy:      HardRestart,
		Tick:          30 * time.Second,
	})
	// Fig. 3a: with 20% batches the cluster sits at ~80% capacity.
	if res.MinCapacityFraction > 0.85 {
		t.Fatalf("min capacity = %v, want <= 0.80 for 20%% batches", res.MinCapacityFraction)
	}
	if res.MinCapacityFraction < 0.75 {
		t.Fatalf("min capacity = %v, suspiciously low", res.MinCapacityFraction)
	}
}

func TestZeroDowntimePreservesCapacity(t *testing.T) {
	res := RunRelease(Config{
		Machines:      100,
		BatchFraction: 0.2,
		DrainPeriod:   10 * time.Minute,
		Strategy:      ZeroDowntime,
		Tick:          30 * time.Second,
	})
	// §6.1.2: the machine stays available; capacity never drops.
	if res.MinCapacityFraction < 0.999 {
		t.Fatalf("ZDR capacity dropped to %v", res.MinCapacityFraction)
	}
}

// TestIdleCPUShape reproduces Fig. 8(b)'s contrast: HardRestart idle CPU
// degrades linearly with batch size; ZDR stays within a few percent.
func TestIdleCPUShape(t *testing.T) {
	run := func(strategy Strategy, frac float64) float64 {
		return RunRelease(Config{
			Machines:      100,
			BatchFraction: frac,
			DrainPeriod:   10 * time.Minute,
			Strategy:      strategy,
			Tick:          time.Minute,
		}).MinIdleCPUFraction
	}
	hard5, hard20 := run(HardRestart, 0.05), run(HardRestart, 0.20)
	zdr20 := run(ZeroDowntime, 0.20)

	if zdr20 < 0.90 {
		t.Fatalf("ZDR idle CPU dropped to %v, want within ~10%% of baseline", zdr20)
	}
	if hard20 >= hard5 {
		t.Fatalf("HardRestart idle CPU should degrade with batch size: 5%%=%v 20%%=%v", hard5, hard20)
	}
	// 20% offline at 70% load burns 2/3 of the idle headroom.
	if hard20 > 0.5 {
		t.Fatalf("HardRestart@20%% idle = %v, want <= 0.5", hard20)
	}
	if zdr20 <= hard20 {
		t.Fatal("ZDR must preserve more idle CPU than HardRestart")
	}
}

// TestFig13GroupSeries: under ZDR, the restarted group's RPS stays ~1 and
// its CPU shows the parallel-instance bump; under HardRestart the group
// goes dark and the rest absorb its load.
func TestFig13GroupSeries(t *testing.T) {
	zdr := RunRelease(Config{
		Machines: 50, BatchFraction: 0.2, DrainPeriod: 5 * time.Minute,
		Strategy: ZeroDowntime, Tick: 15 * time.Second,
	})
	var maxCPU float64
	for _, s := range zdr.Timeline {
		if s.RPSRestartedGroup < 0.95 {
			t.Fatalf("ZDR restarted group RPS fell to %v", s.RPSRestartedGroup)
		}
		if s.CPURestartedGroup > maxCPU {
			maxCPU = s.CPURestartedGroup
		}
	}
	if maxCPU < 1.01 {
		t.Fatalf("ZDR restarted group never showed the takeover CPU bump (max %v)", maxCPU)
	}

	hard := RunRelease(Config{
		Machines: 50, BatchFraction: 0.2, DrainPeriod: 5 * time.Minute,
		Strategy: HardRestart, Tick: 15 * time.Second,
	})
	sawDark, sawShift := false, false
	for _, s := range hard.Timeline {
		if s.RPSRestartedGroup < 0.01 {
			sawDark = true
		}
		if s.RPSNonRestartedGroup > 1.1 {
			sawShift = true
		}
	}
	if !sawDark || !sawShift {
		t.Fatalf("HardRestart group dynamics missing: dark=%v shift=%v", sawDark, sawShift)
	}
}

func TestDisruptedConnections(t *testing.T) {
	hard := RunRelease(Config{
		Machines: 100, BatchFraction: 0.2, DrainPeriod: 5 * time.Minute,
		Strategy: HardRestart, Tick: 30 * time.Second, MQTTConnsPerMachine: 1000,
	})
	zdr := RunRelease(Config{
		Machines: 100, BatchFraction: 0.2, DrainPeriod: 5 * time.Minute,
		Strategy: ZeroDowntime, Tick: 30 * time.Second, MQTTConnsPerMachine: 1000,
	})
	if zdr.DisruptedConns != 0 {
		t.Fatalf("ZDR disrupted %d connections", zdr.DisruptedConns)
	}
	// HardRestart eventually terminates the persistent share (80%) of
	// every machine's connections.
	want := int64(100 * 1000 * 8 / 10)
	if hard.DisruptedConns != want {
		t.Fatalf("HardRestart disrupted %d, want %d", hard.DisruptedConns, want)
	}
}

func TestReleaseDeterministic(t *testing.T) {
	cfg := Config{Machines: 60, BatchFraction: 0.15, DrainPeriod: 8 * time.Minute, Strategy: ZeroDowntime, Seed: 99}
	a, b := RunRelease(cfg), RunRelease(cfg)
	if len(a.Timeline) != len(b.Timeline) {
		t.Fatal("nondeterministic timeline length")
	}
	for i := range a.Timeline {
		if a.Timeline[i] != b.Timeline[i] {
			t.Fatalf("tick %d differs", i)
		}
	}
}

func TestCompletionTimeOrdering(t *testing.T) {
	// Fig. 16: Proxygen releases (long drains) are much slower than App
	// Server releases despite bigger app fleets.
	l7 := CompletionTimes(CompletionTimeConfig{Tier: workload.TierL7LB, Samples: 20, Seed: 5})
	app := CompletionTimes(CompletionTimeConfig{Tier: workload.TierAppServer, Samples: 20, Seed: 5})
	med := func(ds []time.Duration) time.Duration {
		vals := make([]float64, len(ds))
		for i, d := range ds {
			vals[i] = float64(d)
		}
		return time.Duration(workload.Percentile(vals, 0.5))
	}
	l7med, appMed := med(l7), med(app)
	if l7med < time.Hour || l7med > 3*time.Hour {
		t.Fatalf("Proxygen median completion = %v, want ~1.5h", l7med)
	}
	if appMed < 10*time.Minute || appMed > 50*time.Minute {
		t.Fatalf("AppServer median completion = %v, want ~25min", appMed)
	}
	if appMed >= l7med {
		t.Fatal("App Server releases should complete faster than Proxygen releases")
	}
}

func TestReconnectStormMatchesPaperDatapoint(t *testing.T) {
	// §2.5 / Fig. 3b: restarting 10% of Origin proxies costs the app tier
	// ~20% extra CPU rebuilding state.
	res := RunReconnectStorm(ReconnectStormConfig{ProxyFractionRestarted: 0.10})
	if res.ExtraCPUFraction < 0.15 || res.ExtraCPUFraction > 0.25 {
		t.Fatalf("extra CPU = %v, want ~0.20", res.ExtraCPUFraction)
	}
	// More restarts, more storm.
	bigger := RunReconnectStorm(ReconnectStormConfig{ProxyFractionRestarted: 0.20})
	if bigger.ExtraCPUFraction <= res.ExtraCPUFraction {
		t.Fatal("storm should scale with restarted fraction")
	}
	if len(res.Timeline) == 0 || res.PeakCPU <= res.BaselineCPU {
		t.Fatalf("timeline broken: %+v", res)
	}
}

func TestWebTierWeekShape(t *testing.T) {
	res := RunWebTierWeek(WebTierConfig{Seed: 7})
	if len(res.TotalPosts) != 7 {
		t.Fatalf("days = %d", len(res.TotalPosts))
	}
	for day := 0; day < 7; day++ {
		if res.TotalPosts[day] == 0 {
			t.Fatalf("day %d: no posts", day)
		}
		// Fig. 11: the would-be disruption percentage is tiny but
		// non-zero (median 0.0008% in the paper).
		pct := res.DisruptedPctWithoutPPR[day]
		if pct <= 0 {
			t.Fatalf("day %d: no would-be disruptions; restarts missing?", day)
		}
		if pct > 0.5 {
			t.Fatalf("day %d: %v%% disrupted, implausibly high", day, pct)
		}
		// With PPR and a 10-retry budget, disruptions effectively vanish.
		if res.PPRDisrupted[day] != 0 {
			t.Fatalf("day %d: PPR still lost %d requests", day, res.PPRDisrupted[day])
		}
	}
}

func TestStrategyString(t *testing.T) {
	if HardRestart.String() != "HardRestart" || ZeroDowntime.String() != "ZeroDowntime" {
		t.Fatal("strategy names wrong")
	}
}

func TestReleaseResultString(t *testing.T) {
	res := RunRelease(Config{Machines: 10, BatchFraction: 0.5, DrainPeriod: time.Minute, Strategy: ZeroDowntime})
	if res.String() == "" {
		t.Fatal("empty string")
	}
}

func BenchmarkRunRelease(b *testing.B) {
	cfg := Config{Machines: 200, BatchFraction: 0.2, DrainPeriod: 20 * time.Minute, Strategy: ZeroDowntime, Tick: 30 * time.Second}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunRelease(cfg)
	}
}

func TestTailLatencyCurve(t *testing.T) {
	base := TailLatency(time.Millisecond, 0.5)
	loaded := TailLatency(time.Millisecond, 0.9)
	if loaded <= base {
		t.Fatal("latency must rise with utilisation")
	}
	if got := TailLatency(time.Millisecond, 0.995); got != 100*time.Millisecond {
		t.Fatalf("saturated latency = %v, want clamped 100x", got)
	}
	if TailLatency(time.Millisecond, -1) != time.Millisecond {
		t.Fatal("negative utilisation should clamp to unloaded")
	}
}

func TestLatencyImpactTenPercent(t *testing.T) {
	// The §2.5 companion observation: taking 10% of capacity away at
	// realistic load visibly inflates the tail.
	x := LatencyImpact(0.7, 0.10)
	if x < 1.1 || x > 3 {
		t.Fatalf("10%% capacity loss latency multiplier = %v, want noticeable", x)
	}
	if LatencyImpact(0.7, 0.0) != 1 {
		t.Fatal("no capacity loss must mean no impact")
	}
	if !math.IsInf(LatencyImpact(0.5, 1.0), 1) {
		t.Fatal("whole-fleet loss must be infinite impact")
	}
}

// TestPeakHourRelease is the §6.2.2 contrast: HardRestart at peak load
// saturates the survivors; ZDR releases safely at peak.
func TestPeakHourRelease(t *testing.T) {
	peak := 0.85
	hard := ReleaseAtLoad(HardRestart, peak)
	zdr := ReleaseAtLoad(ZeroDowntime, peak)
	if !hard.Saturated || hard.DroppedLoadFraction <= 0 {
		t.Fatalf("HardRestart at peak should saturate: %+v", hard)
	}
	if zdr.Saturated {
		t.Fatalf("ZDR at peak should not saturate: %+v", zdr)
	}
	if zdr.TailLatencyX > 2 {
		t.Fatalf("ZDR peak-hour latency multiplier = %v, want small", zdr.TailLatencyX)
	}
	// Off-peak, even HardRestart is fine — which is why traditional
	// operations shipped at night.
	offpeak := ReleaseAtLoad(HardRestart, 0.45)
	if offpeak.Saturated {
		t.Fatalf("HardRestart off-peak should not saturate: %+v", offpeak)
	}
}

// TestRunDayPeakVsNight: a HardRestart release scheduled at the 16:00 peak
// saturates the pool; the same release at 04:00 is safe; ZDR is safe at
// any hour — the §6.2.2 operational story over a diurnal day.
func TestRunDayPeakVsNight(t *testing.T) {
	hardPeak := RunDay(DayConfig{Strategy: HardRestart, ReleaseHour: 15})
	if hardPeak.SaturatedHours == 0 {
		t.Fatalf("HardRestart at peak never saturated: worst util %v", hardPeak.WorstUtilisation)
	}
	hardNight := RunDay(DayConfig{Strategy: HardRestart, ReleaseHour: 3})
	if hardNight.SaturatedHours != 0 {
		t.Fatalf("HardRestart at night saturated %d hours", hardNight.SaturatedHours)
	}
	for _, hour := range []int{3, 15} {
		zdr := RunDay(DayConfig{Strategy: ZeroDowntime, ReleaseHour: hour})
		if zdr.SaturatedHours != 0 {
			t.Fatalf("ZDR at hour %d saturated %d hours", hour, zdr.SaturatedHours)
		}
	}
}

func TestRunDayShape(t *testing.T) {
	res := RunDay(DayConfig{Strategy: ZeroDowntime, ReleaseHour: 13})
	if len(res.Hours) != 24 {
		t.Fatalf("hours = %d", len(res.Hours))
	}
	if res.Hours[16].Load <= res.Hours[4].Load {
		t.Fatal("diurnal curve missing: peak load not above trough")
	}
	active := 0
	for _, h := range res.Hours {
		if h.ReleaseActive {
			active++
		}
	}
	// 5 batches x 20 min ≈ 2 hours of release activity.
	if active < 1 || active > 4 {
		t.Fatalf("release active for %d hours", active)
	}
}

// TestCanaryFirstStaging: with CanarySize set, the release follows the
// fleet orchestrator's batch plan — a small first batch, exponential
// growth to the BatchFraction cap. The ramp trades completion time for
// a smaller first-exposure blast radius; capacity behaviour per strategy
// is unchanged.
func TestCanaryFirstStaging(t *testing.T) {
	base := Config{
		Machines:      100,
		BatchFraction: 0.2,
		DrainPeriod:   10 * time.Minute,
		Strategy:      ZeroDowntime,
		Tick:          30 * time.Second,
	}
	flat := RunRelease(base)

	canary := base
	canary.CanarySize = 1
	staged := RunRelease(canary)

	// Batch plan 1,2,4,8,16,20,20,... = 9 batches vs 5 flat ones: the
	// staged release takes strictly longer.
	if staged.CompletionTime <= flat.CompletionTime {
		t.Fatalf("staged completion %v not above flat %v", staged.CompletionTime, flat.CompletionTime)
	}
	// Zero-downtime invariants hold regardless of staging.
	if staged.MinCapacityFraction < 0.999 {
		t.Fatalf("staged canary release dropped capacity to %v", staged.MinCapacityFraction)
	}
	if staged.DisruptedConns != 0 {
		t.Fatalf("staged zero-downtime release disrupted %d conns", staged.DisruptedConns)
	}

	// A hard-restart release staged canary-first dips far less at the
	// start: the first offline batch is one machine, not twenty.
	hardStaged := canary
	hardStaged.Strategy = HardRestart
	hs := RunRelease(hardStaged)
	if first := hs.Timeline[0].CapacityFraction; first < 0.98 {
		t.Fatalf("canary batch took %v of the fleet offline, want ~1 machine", 1-first)
	}
	if hs.MinCapacityFraction > 0.85 {
		t.Fatalf("staged hard restart min capacity %v — never reached the 20%% cap", hs.MinCapacityFraction)
	}
}
