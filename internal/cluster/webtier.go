package cluster

import (
	"time"

	"zdr/internal/workload"
)

// WebTierConfig parameterises the Fig. 11 experiment: a week of App
// Server restarts observed from the downstream Origin proxy's vantage
// point, counting POST requests that would have been disrupted without
// Partial Post Replay.
type WebTierConfig struct {
	// Days of observation (paper: 7).
	Days int
	// RestartsPerDay at the web tier (paper: "tens of times a day").
	RestartsPerDay int
	// PostsPerMinute across the tier (paper: "billions ... per minute";
	// scaled down — only the *fraction* disrupted matters).
	PostsPerMinute int
	// DrainPeriod of an app server (10–15 s).
	DrainPeriod time.Duration
	// BatchFraction of servers per restart batch.
	BatchFraction float64
	// MeanUploadBandwidthBps converts POST sizes to durations.
	MeanUploadBandwidthBps float64
	// PPRRetries is the replay budget (10); with at least one healthy
	// server, replays always succeed, so PPR disruptions are only those
	// that exhaust the budget.
	PPRRetries int
	// Seed drives the PRNG.
	Seed uint64
}

func (c *WebTierConfig) fill() {
	if c.Days <= 0 {
		c.Days = 7
	}
	if c.RestartsPerDay <= 0 {
		c.RestartsPerDay = 10
	}
	if c.PostsPerMinute <= 0 {
		c.PostsPerMinute = 200_000
	}
	if c.DrainPeriod <= 0 {
		c.DrainPeriod = 12 * time.Second
	}
	if c.BatchFraction <= 0 {
		c.BatchFraction = 0.05
	}
	if c.MeanUploadBandwidthBps <= 0 {
		c.MeanUploadBandwidthBps = 2e6 / 8 // 2 Mbit/s uplink
	}
	if c.PPRRetries <= 0 {
		c.PPRRetries = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// WebTierResult reports the Fig. 11 quantities, per day.
type WebTierResult struct {
	// TotalPosts per day.
	TotalPosts []int64
	// WouldDisrupt is the per-day count of POSTs that were in flight at a
	// restart and outlived the drain — each one generates a 379 hand-back
	// and would have been a user-visible failure without PPR.
	WouldDisrupt []int64
	// PPRDisrupted is the per-day count still failing with PPR enabled
	// (replay-budget exhaustion; ~0 with a healthy tier, §4.4).
	PPRDisrupted []int64
	// DisruptedPctWithoutPPR is per-day WouldDisrupt/TotalPosts*100.
	DisruptedPctWithoutPPR []float64
}

// RunWebTierWeek runs the Fig. 11 simulation.
func RunWebTierWeek(cfg WebTierConfig) WebTierResult {
	cfg.fill()
	rng := workload.NewRNG(cfg.Seed)
	var res WebTierResult

	minutesPerDay := 24 * 60
	for day := 0; day < cfg.Days; day++ {
		var total, would, pprFail int64
		// Restart moments for the day, in minutes.
		restartAt := make(map[int]bool)
		for r := 0; r < cfg.RestartsPerDay; r++ {
			h := workload.RestartHour(rng, workload.TierAppServer)
			restartAt[h*60+rng.Intn(60)] = true
		}
		for minute := 0; minute < minutesPerDay; minute++ {
			posts := int64(float64(cfg.PostsPerMinute) * workload.DiurnalLoad(float64(minute)/60))
			total += posts
			if !restartAt[minute] {
				continue
			}
			// A restart hits BatchFraction of servers; POSTs in flight on
			// them at that instant are at risk. The number in flight is
			// (arrival rate) × (mean duration) scaled to the batch.
			// Sample individual at-risk uploads to apply the tail.
			atRisk := int(float64(posts) / 60 * cfg.BatchFraction * 30) // ~30s window of in-flight arrivals
			for i := 0; i < atRisk; i++ {
				size := workload.PostSizeBytes(rng)
				duration := time.Duration(float64(size) / cfg.MeanUploadBandwidthBps * float64(time.Second))
				// Uniform progress at restart time.
				remaining := time.Duration(rng.Float64() * float64(duration))
				if remaining > cfg.DrainPeriod {
					would++
					// With PPR the request replays; it only fails if
					// every retry lands on a restarting server — with one
					// batch restarting, chance BatchFraction^retries ≈ 0.
					p := 1.0
					for k := 0; k < cfg.PPRRetries; k++ {
						p *= cfg.BatchFraction
					}
					if rng.Float64() < p {
						pprFail++
					}
				}
			}
		}
		res.TotalPosts = append(res.TotalPosts, total)
		res.WouldDisrupt = append(res.WouldDisrupt, would)
		res.PPRDisrupted = append(res.PPRDisrupted, pprFail)
		pct := 0.0
		if total > 0 {
			pct = float64(would) / float64(total) * 100
		}
		res.DisruptedPctWithoutPPR = append(res.DisruptedPctWithoutPPR, pct)
	}
	return res
}

// CompletionTimeConfig parameterises Fig. 16: the distribution of global
// release completion times per tier.
type CompletionTimeConfig struct {
	// Tier selects the parameter set.
	Tier workload.Tier
	// Samples is how many releases to simulate.
	Samples int
	// Seed drives the PRNG.
	Seed uint64
}

// CompletionTimes simulates Fig. 16's distribution: each sample is a full
// rolling release with tier-appropriate parameters (Proxygen: 20-minute
// drains, ~5 batches; App Server: 10–15 s drains, cache-priming restart
// overhead, many more batches).
func CompletionTimes(cfg CompletionTimeConfig) []time.Duration {
	if cfg.Samples <= 0 {
		cfg.Samples = 50
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rng := workload.NewRNG(cfg.Seed)
	out := make([]time.Duration, 0, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		var rc Config
		switch cfg.Tier {
		case workload.TierL7LB:
			rc = Config{
				Machines:      80 + rng.Intn(40),
				BatchFraction: 0.15 + 0.1*rng.Float64(), // 15–25%
				DrainPeriod:   20 * time.Minute,
				BatchGap:      time.Duration(1+rng.Intn(3)) * time.Minute,
				Strategy:      ZeroDowntime,
				Tick:          30 * time.Second,
				Seed:          rng.Uint64() | 1,
			}
		default:
			rc = Config{
				Machines:        200 + rng.Intn(100),
				BatchFraction:   0.05 + 0.05*rng.Float64(), // 5–10%
				DrainPeriod:     time.Duration(10+rng.Intn(6)) * time.Second,
				RestartOverhead: time.Duration(45+rng.Intn(30)) * time.Second, // cache priming
				Strategy:        HardRestart,                                  // §4.4: no takeover at this tier
				Tick:            5 * time.Second,
				Seed:            rng.Uint64() | 1,
			}
		}
		out = append(out, RunRelease(rc).CompletionTime)
	}
	return out
}
