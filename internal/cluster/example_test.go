package cluster_test

import (
	"fmt"
	"time"

	"zdr/internal/cluster"
)

// Example contrasts the two release strategies on the same fleet — the
// repository's one-paragraph version of the paper.
func Example() {
	base := cluster.Config{
		Machines:      100,
		BatchFraction: 0.20,
		DrainPeriod:   20 * time.Minute,
		Tick:          time.Minute,
		Seed:          7,
	}
	hard := base
	hard.Strategy = cluster.HardRestart
	zdr := base
	zdr.Strategy = cluster.ZeroDowntime

	h, z := cluster.RunRelease(hard), cluster.RunRelease(zdr)
	fmt.Printf("HardRestart:  capacity dips to %.0f%%, %d connections disrupted\n",
		h.MinCapacityFraction*100, h.DisruptedConns)
	fmt.Printf("ZeroDowntime: capacity dips to %.0f%%, %d connections disrupted\n",
		z.MinCapacityFraction*100, z.DisruptedConns)
	// Output:
	// HardRestart:  capacity dips to 80%, 800000 connections disrupted
	// ZeroDowntime: capacity dips to 100%, 0 connections disrupted
}

// ExampleReleaseAtLoad shows why the paper's mechanisms unlock peak-hour
// releases (§6.2.2).
func ExampleReleaseAtLoad() {
	hard := cluster.ReleaseAtLoad(cluster.HardRestart, 0.85)
	zdr := cluster.ReleaseAtLoad(cluster.ZeroDowntime, 0.85)
	fmt.Println("HardRestart at peak saturates:", hard.Saturated)
	fmt.Println("ZeroDowntime at peak saturates:", zdr.Saturated)
	// Output:
	// HardRestart at peak saturates: true
	// ZeroDowntime at peak saturates: false
}
