package cluster

import (
	"time"

	"zdr/internal/workload"
)

// DayConfig parameterises a 24-hour operational simulation: a diurnal
// load curve with one Proxygen release scheduled at a given local hour
// (§6.2.2: with ZDR, releases happen at peak; traditionally they were
// pushed to the night).
type DayConfig struct {
	// Machines in the edge cluster. Default 100.
	Machines int
	// PeakLoad is the utilisation at the 16:00 peak (the diurnal curve
	// scales from it). Default 0.85.
	PeakLoad float64
	// ReleaseHour is the local hour the rolling release starts. Use
	// workload.RestartHour to sample a realistic one.
	ReleaseHour int
	// BatchFraction / DrainPeriod as in Config. Defaults 0.2 / 20 min.
	BatchFraction float64
	DrainPeriod   time.Duration
	// Strategy selects HardRestart or ZeroDowntime.
	Strategy Strategy
}

func (c *DayConfig) fill() {
	if c.Machines <= 0 {
		c.Machines = 100
	}
	if c.PeakLoad <= 0 || c.PeakLoad >= 1 {
		c.PeakLoad = 0.85
	}
	if c.BatchFraction <= 0 || c.BatchFraction > 1 {
		c.BatchFraction = 0.2
	}
	if c.DrainPeriod <= 0 {
		c.DrainPeriod = 20 * time.Minute
	}
}

// HourSample is one hour of the simulated day.
type HourSample struct {
	Hour int
	// Load is offered load as a fraction of full-fleet capacity.
	Load float64
	// Capacity is the serving pool fraction (1.0 unless a HardRestart
	// batch is in progress this hour).
	Capacity float64
	// Utilisation is load/capacity on the serving pool.
	Utilisation float64
	// Saturated marks utilisation >= 1 (requests dropped/queued).
	Saturated bool
	// ReleaseActive marks hours overlapped by the rolling release.
	ReleaseActive bool
}

// DayResult is the full 24-hour timeline.
type DayResult struct {
	Hours          []HourSample
	SaturatedHours int
	// WorstUtilisation is the day's peak serving-pool utilisation.
	WorstUtilisation float64
}

// RunDay simulates the day. The release spans consecutive hours until all
// batches finish (batches of BatchFraction, one drain period each).
func RunDay(cfg DayConfig) DayResult {
	cfg.fill()
	batches := int(1/cfg.BatchFraction + 0.999)
	releaseHours := int((time.Duration(batches)*cfg.DrainPeriod + time.Hour - 1) / time.Hour)
	if releaseHours < 1 {
		releaseHours = 1
	}

	var res DayResult
	for h := 0; h < 24; h++ {
		load := cfg.PeakLoad * workload.DiurnalLoad(float64(h))
		sample := HourSample{Hour: h, Load: load, Capacity: 1}
		if h >= cfg.ReleaseHour && h < cfg.ReleaseHour+releaseHours {
			sample.ReleaseActive = true
			if cfg.Strategy == HardRestart {
				sample.Capacity = 1 - cfg.BatchFraction
			}
		}
		sample.Utilisation = sample.Load / sample.Capacity
		if cfg.Strategy == ZeroDowntime && sample.ReleaseActive {
			// Parallel-instance overhead on the restarted batch.
			sample.Utilisation *= 1.04
		}
		if sample.Utilisation >= 1 {
			sample.Saturated = true
			res.SaturatedHours++
		}
		if sample.Utilisation > res.WorstUtilisation {
			res.WorstUtilisation = sample.Utilisation
		}
		res.Hours = append(res.Hours, sample)
	}
	return res
}
