// Package cluster is a deterministic virtual-time simulator of the
// paper's production fleets. The paper's cluster-scale evaluation ran on
// 10–66 live Facebook clusters; this package reproduces those experiments'
// *shape* — capacity during rolling updates, CPU overheads, completion
// times, disruption counts — from the same underlying parameters (fleet
// size, batch fraction, drain period, restart cost, workload mix).
//
// Everything runs on a virtual clock in fixed ticks, driven by an explicit
// PRNG seed, so every figure regenerates identically.
package cluster

import (
	"fmt"
	"time"

	"zdr/internal/workload"
)

// Strategy selects the release mechanism being simulated.
type Strategy int

// Strategies.
const (
	// HardRestart is the traditional rolling update (§2.3): a draining
	// instance fails health checks, serves no new connections, and is
	// taken fully offline for the drain + restart window.
	HardRestart Strategy = iota
	// ZeroDowntime is the paper's mechanism: the new instance takes the
	// sockets over; the machine never leaves the serving pool, at the
	// cost of briefly running two instances (CPU/memory overhead, §6.3).
	ZeroDowntime
)

// String names the strategy.
func (s Strategy) String() string {
	if s == HardRestart {
		return "HardRestart"
	}
	return "ZeroDowntime"
}

// Config parameterises a simulated rolling release.
type Config struct {
	// Machines is the cluster size. Default 100.
	Machines int
	// BatchFraction is the fraction restarted concurrently (paper: 5%,
	// 15%, 20%). Default 0.2.
	BatchFraction float64
	// DrainPeriod is the per-batch drain (paper: 20 min for Proxygen,
	// 10–15 s for App Servers).
	DrainPeriod time.Duration
	// RestartOverhead is the non-drain part of a restart: spawn, warm-up,
	// cache priming (dominant for HHVM).
	RestartOverhead time.Duration
	// BatchGap is idle time between batches (visible as the capacity
	// recovery notches in Fig. 3a).
	BatchGap time.Duration
	// Strategy selects HardRestart or ZeroDowntime.
	Strategy Strategy
	// Load is the offered load as a fraction of total fleet capacity
	// right before the release (baseline utilisation). Default 0.7.
	Load float64
	// TakeoverCPUOverhead is the extra per-machine CPU (fraction of one
	// machine) while two instances run in parallel. §6.3: median < 5%.
	// Default 0.04.
	TakeoverCPUOverhead float64
	// TakeoverSpike is the initial extra CPU at the instant of takeover,
	// decaying to TakeoverCPUOverhead over TakeoverSpikeDecay (the 60–70 s
	// tail in Fig. 17). The per-batch average is modest because takeovers
	// within a batch stagger in practice. Defaults 0.10 / 60 s.
	TakeoverSpike      float64
	TakeoverSpikeDecay time.Duration
	// CanarySize, when > 0, stages the release canary-first the way the
	// fleet orchestrator (internal/fleet) plans batches: the first batch
	// has CanarySize machines and each next one grows by BatchGrowth,
	// capped at BatchFraction of the fleet. 0 keeps the classic fixed
	// BatchFraction batches.
	CanarySize int
	// BatchGrowth is the canary-first growth factor. Default 2.
	BatchGrowth int
	// Tick is the simulation step. Default 10 s.
	Tick time.Duration
	// Seed drives the PRNG. Default 1.
	Seed uint64
	// MQTTConnsPerMachine scales the connection-count series (Fig. 13).
	MQTTConnsPerMachine int
}

func (c *Config) fill() {
	if c.Machines <= 0 {
		c.Machines = 100
	}
	if c.BatchFraction <= 0 || c.BatchFraction > 1 {
		c.BatchFraction = 0.2
	}
	if c.DrainPeriod <= 0 {
		c.DrainPeriod = 20 * time.Minute
	}
	if c.Load <= 0 || c.Load >= 1 {
		c.Load = 0.7
	}
	if c.TakeoverCPUOverhead <= 0 {
		c.TakeoverCPUOverhead = 0.04
	}
	if c.TakeoverSpike <= 0 {
		c.TakeoverSpike = 0.10
	}
	if c.TakeoverSpikeDecay <= 0 {
		c.TakeoverSpikeDecay = time.Minute
	}
	if c.BatchGrowth < 2 {
		c.BatchGrowth = 2
	}
	if c.Tick <= 0 {
		c.Tick = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MQTTConnsPerMachine <= 0 {
		c.MQTTConnsPerMachine = 10_000
	}
}

// machineState tracks one machine through the release.
type machineState int

const (
	stateActive           machineState = iota
	stateDrainingOffline               // HardRestart: out of the pool
	stateRestarting                    // HardRestart: binary swap
	stateTakeoverParallel              // ZeroDowntime: two instances
)

type machine struct {
	state      machineState
	stateSince time.Duration // virtual time of last transition
	restarted  bool
}

// TickSample is one point on the release timeline.
type TickSample struct {
	// T is virtual time since release start.
	T time.Duration
	// CapacityFraction is the serving pool's capacity relative to the
	// full fleet (Fig. 3a).
	CapacityFraction float64
	// IdleCPUFraction is total idle CPU normalised by the pre-release
	// idle CPU (Fig. 8b).
	IdleCPUFraction float64
	// RPSRestartedGroup / RPSNonRestartedGroup are per-machine RPS
	// normalised to pre-release values for the batch being restarted (GR)
	// and the rest (GNR) — Fig. 13.
	RPSRestartedGroup    float64
	RPSNonRestartedGroup float64
	// CPURestartedGroup is the GR group's CPU relative to baseline.
	CPURestartedGroup float64
	// MQTTConnsNormalized is the cluster-wide MQTT connection count
	// normalised to pre-release (Fig. 13).
	MQTTConnsNormalized float64
}

// ReleaseResult is a full simulated rolling release.
type ReleaseResult struct {
	Config         Config
	CompletionTime time.Duration
	Timeline       []TickSample
	// MinCapacityFraction is the lowest point of the capacity timeline.
	MinCapacityFraction float64
	// MinIdleCPUFraction is the lowest normalised idle-CPU point.
	MinIdleCPUFraction float64
	// DisruptedConns counts connections terminated by the release
	// (HardRestart: everything still alive at drain end).
	DisruptedConns int64
}

// RunRelease simulates one rolling release over the whole fleet.
func RunRelease(cfg Config) ReleaseResult {
	cfg.fill()
	rng := workload.NewRNG(cfg.Seed)
	n := cfg.Machines
	machines := make([]machine, n)

	maxBatch := int(float64(n) * cfg.BatchFraction)
	if maxBatch < 1 {
		maxBatch = 1
	}
	// Canary-first staging ramps the batch size toward the cap; classic
	// releases run at the cap from the first batch.
	batch := maxBatch
	if cfg.CanarySize > 0 {
		batch = cfg.CanarySize
		if batch > maxBatch {
			batch = maxBatch
		}
	}

	res := ReleaseResult{Config: cfg, MinCapacityFraction: 1, MinIdleCPUFraction: 1}

	// Per-connection disruption accounting: each machine carries
	// MQTTConnsPerMachine persistent connections; a HardRestart kills the
	// ones that outlive the drain (§2.5: at the tail most persistent
	// connections do).
	connsPerMachine := cfg.MQTTConnsPerMachine
	totalConns := int64(n * connsPerMachine)
	liveConns := totalConns

	now := time.Duration(0)
	next := 0 // next machine index to restart
	var batchStart time.Duration
	var current []int // indices being restarted

	startBatch := func() {
		current = current[:0]
		for i := 0; i < batch && next < n; i++ {
			current = append(current, next)
			if cfg.Strategy == HardRestart {
				machines[next].state = stateDrainingOffline
			} else {
				machines[next].state = stateTakeoverParallel
			}
			machines[next].stateSince = now
			next++
		}
		batchStart = now
		if cfg.CanarySize > 0 && batch < maxBatch {
			batch *= cfg.BatchGrowth
			if batch > maxBatch {
				batch = maxBatch
			}
		}
	}
	startBatch()

	for len(current) > 0 {
		// Advance machine states.
		elapsed := now - batchStart
		switch cfg.Strategy {
		case HardRestart:
			for _, i := range current {
				m := &machines[i]
				if m.state == stateDrainingOffline && elapsed >= cfg.DrainPeriod {
					// Drain over: surviving connections are terminated.
					killed := int64(connsPerMachine)
					// Long-lived (MQTT) connections never finish within a
					// drain; short ones mostly do. Model: 80% of the
					// machine's connections are persistent.
					persistent := int64(float64(killed) * 0.8)
					res.DisruptedConns += persistent
					liveConns -= persistent
					m.state = stateRestarting
					m.stateSince = now
				}
				if m.state == stateRestarting && now-m.stateSince >= cfg.RestartOverhead && elapsed >= cfg.DrainPeriod {
					if !m.restarted {
						m.restarted = true
						m.state = stateActive
					}
				}
			}
		case ZeroDowntime:
			for _, i := range current {
				m := &machines[i]
				// The machine never leaves the pool; the parallel phase
				// lasts the drain period, after which the old instance
				// exits. No connections are disrupted: DCR re-routes the
				// persistent ones and PPR replays in-flight requests.
				if elapsed >= cfg.DrainPeriod {
					if !m.restarted {
						m.restarted = true
						m.state = stateActive
					}
				}
			}
		}

		// Batch complete?
		done := true
		for _, i := range current {
			if !machines[i].restarted {
				done = false
				break
			}
		}

		// Sample the fleet.
		res.Timeline = append(res.Timeline, sampleTick(cfg, machines, now, batchStart, current, liveConns, totalConns, rng))
		last := &res.Timeline[len(res.Timeline)-1]
		if last.CapacityFraction < res.MinCapacityFraction {
			res.MinCapacityFraction = last.CapacityFraction
		}
		if last.IdleCPUFraction < res.MinIdleCPUFraction {
			res.MinIdleCPUFraction = last.IdleCPUFraction
		}

		now += cfg.Tick
		if done {
			// Reconnections restore the connection count (clients retry),
			// spread over the next batch.
			liveConns = totalConns
			if next >= n {
				break
			}
			now += cfg.BatchGap
			startBatch()
		}
	}
	res.CompletionTime = now
	return res
}

// sampleTick computes one timeline point.
func sampleTick(cfg Config, machines []machine, now, batchStart time.Duration, current []int, liveConns, totalConns int64, rng *workload.RNG) TickSample {
	n := len(machines)
	online := 0
	var takeoverCPU float64
	inBatch := make(map[int]bool, len(current))
	for _, i := range current {
		inBatch[i] = true
	}
	for i := range machines {
		switch machines[i].state {
		case stateDrainingOffline, stateRestarting:
			// Out of the serving pool (fails health checks).
		default:
			online++
		}
		if machines[i].state == stateTakeoverParallel {
			// CPU overhead decays from the spike to the steady overhead.
			el := now - machines[i].stateSince
			frac := float64(el) / float64(cfg.TakeoverSpikeDecay)
			if frac > 1 {
				frac = 1
			}
			takeoverCPU += cfg.TakeoverSpike*(1-frac) + cfg.TakeoverCPUOverhead*frac
		}
	}

	capacity := float64(online) / float64(n)

	// Idle CPU: demand redistributes over online machines.
	demand := cfg.Load * float64(n) // in machine-units of CPU
	perMachine := demand / float64(online)
	if perMachine > 1 {
		perMachine = 1 // saturated
	}
	idle := float64(online)*(1-perMachine) - takeoverCPU
	if idle < 0 {
		idle = 0
	}
	baselineIdle := float64(n) * (1 - cfg.Load)
	idleFrac := idle / baselineIdle

	// Group series (Fig. 13), normalised to baseline per-machine values.
	baseRPS := cfg.Load
	grRPS, gnrRPS := 1.0, 1.0
	grCPU := 1.0
	if len(current) > 0 {
		switch cfg.Strategy {
		case HardRestart:
			// GR machines serve nothing; their load lands on GNR.
			grRPS = 0
			gnrRPS = (demand / float64(online)) / baseRPS
			grCPU = 0
		case ZeroDowntime:
			// GR machines keep serving; CPU carries the parallel-instance
			// overhead.
			grRPS = 1
			gnrRPS = 1
			grCPU = 1 + (takeoverCPU/float64(len(current)))/cfg.Load
		}
	}
	// Small measurement noise so series look like Fig. 13's bands.
	noise := func(v float64) float64 { return v * (1 + 0.01*(rng.Float64()-0.5)) }

	return TickSample{
		T:                    now,
		CapacityFraction:     capacity,
		IdleCPUFraction:      idleFrac,
		RPSRestartedGroup:    noise(grRPS),
		RPSNonRestartedGroup: noise(gnrRPS),
		CPURestartedGroup:    noise(grCPU),
		MQTTConnsNormalized:  float64(liveConns) / float64(totalConns),
	}
}

// ReconnectStormResult models Fig. 3b: the app-tier CPU surge while
// clients whose proxies hard-restarted rebuild TCP/TLS and application
// state.
type ReconnectStormResult struct {
	// BaselineCPU is the pre-restart app-tier CPU fraction.
	BaselineCPU float64
	// PeakCPU is the highest app-tier CPU fraction during the storm.
	PeakCPU float64
	// ExtraCPUFraction is the peak increase relative to baseline
	// (paper: restarting 10% of Origin proxies costs ~20% extra CPU).
	ExtraCPUFraction float64
	// Timeline is the CPU fraction per tick.
	Timeline []float64
}

// ReconnectStormConfig parameterises the storm.
type ReconnectStormConfig struct {
	// ProxyFractionRestarted is the fraction of Origin proxies hard-
	// restarted at t=0 (paper's datapoint: 0.10).
	ProxyFractionRestarted float64
	// BaselineCPU is the steady app-tier utilisation. Default 0.5.
	BaselineCPU float64
	// HandshakeCostRatio is the CPU cost of one reconnection handshake
	// (TCP+TLS+session rebuild) relative to serving one steady-state
	// request-second. Calibrated default 2.0 (§2.5 cites [11, 18]).
	HandshakeCostRatio float64
	// ReconnectSpreadTicks is how many ticks the reconnect wave spans.
	ReconnectSpreadTicks int
	// Ticks is the total timeline length.
	Ticks int
}

// RunReconnectStorm simulates the Fig. 3b experiment.
func RunReconnectStorm(cfg ReconnectStormConfig) ReconnectStormResult {
	if cfg.BaselineCPU <= 0 {
		cfg.BaselineCPU = 0.5
	}
	if cfg.HandshakeCostRatio <= 0 {
		cfg.HandshakeCostRatio = 2.0
	}
	if cfg.ReconnectSpreadTicks <= 0 {
		cfg.ReconnectSpreadTicks = 6
	}
	if cfg.Ticks <= 0 {
		cfg.Ticks = 30
	}
	res := ReconnectStormResult{BaselineCPU: cfg.BaselineCPU}
	// The restarted proxies carried ProxyFractionRestarted of all user
	// connections; all of them reconnect, spread over the wave.
	totalReconnectLoad := cfg.ProxyFractionRestarted * cfg.HandshakeCostRatio * cfg.BaselineCPU * 2
	for t := 0; t < cfg.Ticks; t++ {
		cpu := cfg.BaselineCPU
		if t >= 2 && t < 2+cfg.ReconnectSpreadTicks {
			cpu += totalReconnectLoad / float64(cfg.ReconnectSpreadTicks) * triangle(t-2, cfg.ReconnectSpreadTicks) * float64(cfg.ReconnectSpreadTicks) / 2
		}
		if cpu > 1 {
			cpu = 1
		}
		if cpu > res.PeakCPU {
			res.PeakCPU = cpu
		}
		res.Timeline = append(res.Timeline, cpu)
	}
	res.ExtraCPUFraction = (res.PeakCPU - res.BaselineCPU) / res.BaselineCPU
	return res
}

// triangle is a unit triangular pulse over [0, width).
func triangle(i, width int) float64 {
	half := float64(width) / 2
	x := float64(i)
	if x < half {
		return x / half
	}
	return (float64(width) - x) / half
}

// String renders a release result compactly (debugging aid).
func (r ReleaseResult) String() string {
	return fmt.Sprintf("%s machines=%d batch=%.0f%% drain=%v: completion=%v minCap=%.2f minIdle=%.2f disrupted=%d",
		r.Config.Strategy, r.Config.Machines, r.Config.BatchFraction*100, r.Config.DrainPeriod,
		r.CompletionTime, r.MinCapacityFraction, r.MinIdleCPUFraction, r.DisruptedConns)
}
