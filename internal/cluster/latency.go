package cluster

import (
	"math"
	"time"
)

// TailLatency models per-request latency as a function of utilisation
// with an M/M/1-style queueing approximation: W = S / (1 - ρ), where S is
// the unloaded service time and ρ the machine utilisation. The paper's
// complementary experiment to Fig. 3a ("we analyzed the tail latency and
// observed significant increase due to a 10% reduced cluster capacity")
// is exactly this curve: taking capacity offline raises ρ on the
// survivors, and the tail blows up as ρ → 1.
func TailLatency(serviceTime time.Duration, utilisation float64) time.Duration {
	if utilisation < 0 {
		utilisation = 0
	}
	// Clamp below 1: a saturated machine's latency is effectively
	// unbounded; cap at 100x for finite reporting.
	if utilisation >= 0.99 {
		return serviceTime * 100
	}
	return time.Duration(float64(serviceTime) / (1 - utilisation))
}

// LatencyImpact reports the p99-style latency multiplier when a fraction
// of the fleet is taken offline at a given baseline load: survivors run at
// load/(1-offline) utilisation.
func LatencyImpact(load, offlineFraction float64) float64 {
	if offlineFraction >= 1 {
		return math.Inf(1)
	}
	before := TailLatency(time.Millisecond, load)
	after := TailLatency(time.Millisecond, load/(1-offlineFraction))
	return float64(after) / float64(before)
}

// PeakHourOutcome summarises a release attempted at a given load level
// (§6.2.2: "The traditional way is to release updates during off-peak
// hours so that the load and possible disruptions are low ... the ability
// to release during these hours go a long way").
type PeakHourOutcome struct {
	Strategy Strategy
	// Load is the baseline utilisation at release time.
	Load float64
	// SurvivorUtilisation is the per-machine load on the serving pool at
	// the worst point of the release.
	SurvivorUtilisation float64
	// Saturated reports whether the pool could not absorb the offered
	// load (requests dropped / queued unboundedly).
	Saturated bool
	// DroppedLoadFraction is the offered load that found no capacity at
	// the worst point (0 when not saturated).
	DroppedLoadFraction float64
	// TailLatencyX is the worst-point p99 latency multiplier vs a quiet
	// fleet.
	TailLatencyX float64
}

// ReleaseAtLoad evaluates one strategy releasing with 20% batches at the
// given utilisation.
func ReleaseAtLoad(strategy Strategy, load float64) PeakHourOutcome {
	const batch = 0.20
	out := PeakHourOutcome{Strategy: strategy, Load: load}
	switch strategy {
	case HardRestart:
		survivors := 1 - batch
		util := load / survivors
		out.SurvivorUtilisation = util
		if util >= 1 {
			out.Saturated = true
			out.DroppedLoadFraction = (load - survivors) / load
			out.TailLatencyX = math.Inf(1)
			return out
		}
		out.TailLatencyX = LatencyImpact(load, batch)
	case ZeroDowntime:
		// The pool keeps every machine; only the parallel-instance CPU
		// overhead (few %) raises utilisation.
		util := load * 1.04
		out.SurvivorUtilisation = util
		if util >= 1 {
			out.Saturated = true
			out.DroppedLoadFraction = (util - 1) / util
			out.TailLatencyX = math.Inf(1)
			return out
		}
		before := TailLatency(time.Millisecond, load)
		after := TailLatency(time.Millisecond, util)
		out.TailLatencyX = float64(after) / float64(before)
	}
	return out
}
