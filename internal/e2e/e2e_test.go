// Package e2e tests the production deployment shape: separate OS
// processes exchanging listening sockets through the real zdr-proxy
// binary. Everything else in the repository exercises the mechanisms
// in-process; this package proves the FD hand-off works across an actual
// process boundary, exactly as deployed (§4.1, Fig. 5).
package e2e

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"zdr/internal/http1"
	"zdr/internal/katran"
	"zdr/internal/mqtt"
)

var proxyBin, appserverBin, brokerBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "zdr-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, b := range []struct {
		out *string
		pkg string
	}{
		{&proxyBin, "zdr/cmd/zdr-proxy"},
		{&appserverBin, "zdr/cmd/zdr-appserver"},
		{&brokerBin, "zdr/cmd/zdr-broker"},
	} {
		*b.out = filepath.Join(dir, filepath.Base(b.pkg))
		cmd := exec.Command("go", "build", "-o", *b.out, b.pkg)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "building", b.pkg, ":", err)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func startProc(t *testing.T, bin, outFile string, args ...string) *proc {
	t.Helper()
	f, err := os.Create(outFile)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = f
	cmd.Stderr = f
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, out: f, path: outFile}
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		p.cmd.Wait()
		f.Close()
	})
	return p
}

// proc wraps one zdr-proxy process.
type proc struct {
	cmd  *exec.Cmd
	out  *os.File
	path string
}

func startProxy(t *testing.T, outFile string, args ...string) *proc {
	t.Helper()
	f, err := os.Create(outFile)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(proxyBin, args...)
	cmd.Stdout = f
	cmd.Stderr = f
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, out: f, path: outFile}
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		p.cmd.Wait()
		f.Close()
	})
	return p
}

// waitOutput polls the process log for a substring.
func (p *proc) waitOutput(t *testing.T, substr string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		b, _ := os.ReadFile(p.path)
		if strings.Contains(string(b), substr) {
			return string(b)
		}
		if time.Now().After(deadline) {
			t.Fatalf("process output never contained %q; log so far:\n%s", substr, b)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// TestCrossProcessTakeover: generation 1 and generation 2 are separate OS
// processes. Gen 2 receives the sockets via SCM_RIGHTS over the takeover
// path, gen 1 drains and exits, and a client hammering the web VIP sees
// zero failures.
func TestCrossProcessTakeover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dir := t.TempDir()
	addrs := freeAddrs(t, 3)
	webAddr, mqttAddr, healthAddr := addrs[0], addrs[1], addrs[2]
	takeoverPath := filepath.Join(dir, "edge.sock")

	common := []string{
		"-role", "edge",
		"-origin", "127.0.0.1:1", // static-only edge; origin never dialed
		"-web", webAddr, "-mqtt", mqttAddr, "-health", healthAddr,
		"-drain", "500ms",
		"-takeover-path", takeoverPath,
	}

	gen1 := startProxy(t, filepath.Join(dir, "gen1.log"), append([]string{"-name", "gen1"}, common...)...)
	gen1.waitOutput(t, "takeover path", 5*time.Second)

	// The edge serves /static/ping from its built-in nothing... it has no
	// static content via flags, so use the health VIP as the probe target
	// and MQTT VIP reachability as the serving signal. For HTTP we accept
	// 5xx responses — the point is the LISTENER never goes away and every
	// request gets an answer.
	var served, failed atomic.Int64
	stop := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			conn, err := net.DialTimeout("tcp", webAddr, 2*time.Second)
			if err != nil {
				failed.Add(1)
				return
			}
			if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/x", nil, 0)); err != nil {
				failed.Add(1)
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			resp, err := http1.ReadResponse(bufio.NewReader(conn))
			if err != nil {
				failed.Add(1)
				conn.Close()
				return
			}
			http1.ReadFullBody(resp.Body)
			conn.Close()
			served.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(200 * time.Millisecond)

	if err := katran.ProbeHC(healthAddr, time.Second); err != nil {
		t.Fatalf("gen1 health probe: %v", err)
	}

	// Generation 2: a different PROCESS takes the sockets over.
	gen2 := startProxy(t, filepath.Join(dir, "gen2.log"),
		append([]string{"-name", "gen2", "-takeover-from", takeoverPath}, common...)...)
	gen2.waitOutput(t, "took over", 5*time.Second)
	gen2.waitOutput(t, "takeover path", 5*time.Second) // re-armed for the next release

	// Gen 1 exits after its drain (SIGTERM then wait).
	gen1.cmd.Process.Signal(syscall.SIGTERM)
	waitExit := make(chan error, 1)
	go func() { waitExit <- gen1.cmd.Wait() }()
	select {
	case <-waitExit:
	case <-time.After(10 * time.Second):
		t.Fatal("gen1 never exited after SIGTERM")
	}

	// Load continues against gen2's process.
	time.Sleep(300 * time.Millisecond)
	close(stop)
	<-loadDone
	if failed.Load() > 0 {
		t.Fatalf("%d requests failed across the cross-process takeover (served %d)", failed.Load(), served.Load())
	}
	if served.Load() < 50 {
		t.Fatalf("only %d requests served; load generator broken?", served.Load())
	}
	// Health checks now answered by gen2 (step F).
	if err := katran.ProbeHC(healthAddr, time.Second); err != nil {
		t.Fatalf("health probe after takeover: %v", err)
	}
}

// TestCrossProcessTakeoverAbort is the §5.1 crash window across a real
// process boundary: a "new generation" dials the takeover path, takes
// part of the hand-off, and dies before the ACK. The running process must
// roll back — stay active, keep serving, count the abort in its STATS
// dump — and a real second-generation process must then take over cleanly.
func TestCrossProcessTakeoverAbort(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dir := t.TempDir()
	addrs := freeAddrs(t, 2)
	webAddr, healthAddr := addrs[0], addrs[1]
	takeoverPath := filepath.Join(dir, "edge.sock")

	common := []string{
		"-role", "edge",
		"-origin", "127.0.0.1:1", // static-only edge; origin never dialed
		"-web", webAddr, "-health", healthAddr,
		"-drain", "500ms",
		"-takeover-path", takeoverPath,
	}
	gen1 := startProxy(t, filepath.Join(dir, "gen1.log"), append([]string{"-name", "gen1"}, common...)...)
	gen1.waitOutput(t, "takeover path", 5*time.Second)

	var served, failed atomic.Int64
	stop := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			conn, err := net.DialTimeout("tcp", webAddr, 2*time.Second)
			if err != nil {
				failed.Add(1)
				return
			}
			if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/x", nil, 0)); err != nil {
				failed.Add(1)
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			resp, err := http1.ReadResponse(bufio.NewReader(conn))
			if err != nil {
				failed.Add(1)
				conn.Close()
				return
			}
			http1.ReadFullBody(resp.Body)
			conn.Close()
			served.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(150 * time.Millisecond)

	// The dying receiver: this TEST process connects to the takeover
	// path, reads the start of the manifest — the moment the FDs are in
	// flight — and slams the connection shut without ACKing.
	crash, err := net.Dial("unix", takeoverPath)
	if err != nil {
		t.Fatalf("dialing takeover path: %v", err)
	}
	crash.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := crash.Read(make([]byte, 256)); err != nil {
		t.Fatalf("fake receiver read: %v", err)
	}
	crash.Close()

	// The abort shows up in the release signal (§6): STATS must count it
	// while the instance stays active (never started draining).
	stats := func() string {
		conn, err := net.DialTimeout("tcp", healthAddr, time.Second)
		if err != nil {
			return ""
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		conn.Write([]byte("STATS\n"))
		var out []byte
		buf := make([]byte, 64<<10)
		for {
			n, err := conn.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				return string(out)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	var dump string
	for {
		dump = stats()
		if strings.Contains(dump, "counter proxy.takeover_aborts 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abort never counted; STATS:\n%s", dump)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !strings.Contains(dump, "status active") {
		t.Fatalf("gen1 not active after aborted handoff; STATS:\n%s", dump)
	}

	// The real release now goes through: a second PROCESS takes over.
	gen2 := startProxy(t, filepath.Join(dir, "gen2.log"),
		append([]string{"-name", "gen2", "-takeover-from", takeoverPath}, common...)...)
	gen2.waitOutput(t, "took over", 5*time.Second)
	gen2.waitOutput(t, "takeover path", 5*time.Second)

	gen1.cmd.Process.Signal(syscall.SIGTERM)
	waitExit := make(chan error, 1)
	go func() { waitExit <- gen1.cmd.Wait() }()
	select {
	case <-waitExit:
	case <-time.After(10 * time.Second):
		t.Fatal("gen1 never exited after SIGTERM")
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	<-loadDone
	if failed.Load() > 0 {
		t.Fatalf("%d requests failed across the aborted + real takeover (served %d)", failed.Load(), served.Load())
	}
	if served.Load() < 50 {
		t.Fatalf("only %d requests served; load generator broken?", served.Load())
	}
}

// TestCrossProcessTopology runs the full paper topology as five separate
// OS processes — broker, app server, Origin proxy (two generations), Edge
// proxy — and exercises both user protocols across a cross-process Origin
// takeover: an HTTP request path and a persistent MQTT connection kept
// alive by DCR-capable infrastructure.
func TestCrossProcessTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	dir := t.TempDir()
	a := freeAddrs(t, 7)
	brokerAddr, asAddr := a[0], a[1]
	tunnelAddr, originHealth := a[2], a[3]
	webAddr, mqttAddr, edgeHealth := a[4], a[5], a[6]
	takeoverPath := filepath.Join(dir, "origin.sock")

	broker := startProc(t, brokerBin, filepath.Join(dir, "broker.log"), "-addr", brokerAddr, "-name", "broker-1")
	broker.waitOutput(t, "serving MQTT", 5*time.Second)

	appsrv := startProc(t, appserverBin, filepath.Join(dir, "as.log"),
		"-addr", asAddr, "-name", "as-1", "-mode", "ppr", "-drain", "200ms")
	appsrv.waitOutput(t, "serving on", 5*time.Second)

	originArgs := []string{
		"-role", "origin",
		"-app", asAddr, "-broker", brokerAddr,
		"-tunnel", tunnelAddr, "-health", originHealth,
		"-drain", "500ms",
		"-takeover-path", takeoverPath,
	}
	origin1 := startProxy(t, filepath.Join(dir, "origin1.log"), append([]string{"-name", "origin1"}, originArgs...)...)
	origin1.waitOutput(t, "takeover path", 5*time.Second)

	edge := startProxy(t, filepath.Join(dir, "edge.log"),
		"-role", "edge", "-origin", tunnelAddr,
		"-web", webAddr, "-mqtt", mqttAddr, "-health", edgeHealth,
		"-drain", "500ms")
	edge.waitOutput(t, "listening", 5*time.Second)

	// HTTP through the whole chain.
	get := func() (int, string, error) {
		conn, err := net.DialTimeout("tcp", webAddr, 2*time.Second)
		if err != nil {
			return 0, "", err
		}
		defer conn.Close()
		if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/hello", nil, 0)); err != nil {
			return 0, "", err
		}
		conn.SetReadDeadline(time.Now().Add(3 * time.Second))
		resp, err := http1.ReadResponse(bufio.NewReader(conn))
		if err != nil {
			return 0, "", err
		}
		body, err := http1.ReadFullBody(resp.Body)
		if err != nil {
			return 0, "", err
		}
		return resp.StatusCode, string(body), nil
	}
	code, body, err := get()
	if err != nil || code != 200 || !strings.Contains(body, "as-1") {
		t.Fatalf("pre-restart request: code=%d body=%q err=%v", code, body, err)
	}

	// Persistent MQTT connection through edge → origin1 → broker.
	mc, err := net.DialTimeout("tcp", mqttAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	client := mqtt.NewClient(mc, "user-e2e", true)
	if _, err := client.Connect(0, 5*time.Second); err != nil {
		t.Fatalf("mqtt connect: %v", err)
	}
	defer client.Disconnect()
	if err := client.Ping(3 * time.Second); err != nil {
		t.Fatalf("mqtt ping: %v", err)
	}

	// Cross-process Origin takeover.
	origin2 := startProxy(t, filepath.Join(dir, "origin2.log"),
		append([]string{"-name", "origin2", "-takeover-from", takeoverPath}, originArgs...)...)
	origin2.waitOutput(t, "took over", 5*time.Second)

	// origin1 drains and exits.
	origin1.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { origin1.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("origin1 never exited")
	}

	// HTTP must keep working via origin2 (the edge re-dials the same
	// tunnel address, landing on the new process).
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body, err = get()
		if err == nil && code == 200 && strings.Contains(body, "as-1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-restart request never succeeded: code=%d body=%q err=%v", code, body, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The MQTT connection must have survived via DCR (origin1 solicited,
	// the edge re_connected through the shared tunnel address → origin2,
	// the broker spliced the session).
	select {
	case <-client.Done():
		t.Fatal("MQTT connection dropped across the cross-process origin restart")
	default:
	}
	if err := client.Ping(5 * time.Second); err != nil {
		t.Fatalf("post-restart mqtt ping: %v", err)
	}
}
