package fleet

import (
	"strings"
	"testing"

	"zdr/internal/disrupt"
	"zdr/internal/faults"
	"zdr/internal/metrics"
	"zdr/internal/obs"
)

// fakeTelemetryNode builds a Node backed by an in-memory registry and
// ledger — no sockets, just the scrape surface.
func fakeTelemetryNode(name string, requests, errors int64, lat []float64, causes map[string]int64) *Node {
	reg := metrics.NewRegistry()
	reg.Counter("edge.http.requests").Add(requests)
	reg.Counter("edge.http.errors.no_origin").Add(errors)
	h := reg.AtomicHistogram("edge.http.latency")
	for _, v := range lat {
		h.Observe(v)
	}
	led := disrupt.New(name, 64)
	led.SetPhase("serving", 1)
	for cause, n := range causes {
		for i := int64(0); i < n; i++ {
			led.Record(disrupt.KindReset, 0, "web", cause, "")
		}
	}
	return &Node{
		Name:       name,
		State:      func() obs.SlotState { return obs.SlotState{Name: name, Generation: 1, Phase: "serving"} },
		Metrics:    reg.Snapshot,
		Disruption: led.Report,
	}
}

func TestTelemetryScrapeMergesFleet(t *testing.T) {
	nodes := []*Node{
		fakeTelemetryNode("n1", 1000, 3, []float64{0.001, 0.001, 0.002}, map[string]int64{"edge:no-origin": 3}),
		fakeTelemetryNode("n2", 500, 0, []float64{0.004, 0.008}, map[string]int64{"dcr:stream-lost": 2}),
		{Name: "n3"}, // no telemetry surface at all
	}
	tele := &Telemetry{Nodes: nodes}
	rep := tele.Scrape()

	if rep.TotalNodes != 3 || rep.ScrapedNodes != 2 {
		t.Fatalf("coverage %d/%d, want 2/3", rep.ScrapedNodes, rep.TotalNodes)
	}
	if rep.Requests != 1500 || rep.Errors != 3 {
		t.Fatalf("requests/errors = %d/%d", rep.Requests, rep.Errors)
	}
	if rep.Latency.Count != 5 {
		t.Fatalf("merged latency count = %d, want 5", rep.Latency.Count)
	}
	// Quantiles are bucket-interpolated: the p99 lands inside the bucket
	// holding the 0.008 sample, i.e. (0.0064, 0.0128].
	if rep.LatencyP99 <= rep.LatencyP50 || rep.LatencyP99 > 0.0128 {
		t.Fatalf("quantiles p50=%v p99=%v", rep.LatencyP50, rep.LatencyP99)
	}
	if rep.Disruption.Terminal != 5 || rep.Disruption.Unattributed != 0 {
		t.Fatalf("merged disruption: %+v", rep.Disruption)
	}
	if got := rep.DisruptionRate; got != float64(5)/1500 {
		t.Fatalf("disruption rate = %v", got)
	}
	// Cells keep per-node identity; CausePhase collapses to (cause, phase).
	byNode := map[string]bool{}
	for _, c := range rep.Disruption.Cells {
		byNode[c.Node] = true
	}
	if !byNode["n1"] || !byNode["n2"] {
		t.Fatalf("merged cells lost node identity: %+v", rep.Disruption.Cells)
	}
	if len(rep.CausePhase) != 2 {
		t.Fatalf("cause-phase cells: %+v", rep.CausePhase)
	}
	// The unscraped node is present in the rows but contributes nothing.
	var n3 NodeTelemetry
	for _, nt := range rep.Nodes {
		if nt.Node == "n3" {
			n3 = nt
		}
	}
	if n3.Scraped {
		t.Fatal("surface-less node reported as scraped")
	}
}

// TestTelemetryControlPartition: a partitioned control plane loses every
// scrape — coverage degrades to zero, nothing is invented.
func TestTelemetryControlPartition(t *testing.T) {
	in := faults.NewInjector(faults.Scenario{Seed: 1})
	in.SetPartitioned(true)
	tele := &Telemetry{
		Nodes:   []*Node{fakeTelemetryNode("n1", 100, 0, []float64{0.001}, nil)},
		Control: in,
	}
	rep := tele.Scrape()
	if rep.ScrapedNodes != 0 || rep.Requests != 0 || rep.Latency.Count != 0 {
		t.Fatalf("partitioned scrape invented data: %+v", rep)
	}
	if len(rep.Nodes) != 1 || rep.Nodes[0].Scraped {
		t.Fatalf("node rows: %+v", rep.Nodes)
	}
	if in.Injected(faults.OpDropRPC) == 0 {
		t.Fatal("partition never dropped a scrape RPC")
	}
}

func TestTelemetryWindowBetween(t *testing.T) {
	mk := func(req int64, terminal int64, lat []float64) NodeTelemetry {
		nt := NodeTelemetry{Scraped: true, Requests: req}
		nt.Disruption.Terminal = terminal
		h := metrics.NewAtomicHistogram(nil)
		for _, v := range lat {
			h.Observe(v)
		}
		nt.Latency = h.Snapshot()
		return nt
	}
	before := mk(100, 1, []float64{0.001, 0.001})
	after := mk(300, 6, []float64{0.001, 0.001, 0.050, 0.050, 0.050})
	w := telemetryWindowBetween(before, after)
	if !w.Scraped || w.Requests != 200 || w.Terminal != 5 {
		t.Fatalf("window = %+v", w)
	}
	if w.DisruptionRate() != float64(5)/200 {
		t.Fatalf("rate = %v", w.DisruptionRate())
	}
	// The windowed p99 reflects only the new (slow) samples, while the
	// baseline p99 is the cumulative pre-window distribution.
	if w.P99 < 0.02 || w.BaselineP99 > 0.01 {
		t.Fatalf("p99=%v baseline=%v", w.P99, w.BaselineP99)
	}
	// A lost bracketing scrape abstains instead of guessing.
	if w := telemetryWindowBetween(NodeTelemetry{}, after); w.Scraped {
		t.Fatalf("half-scraped window conclusive: %+v", w)
	}
	// Restarted counters clamp to zero rather than going negative.
	if w := telemetryWindowBetween(after, before); w.Requests != 0 || w.Terminal != 0 {
		t.Fatalf("negative delta not clamped: %+v", w)
	}
}

// TestEvalNodeDisruptionRate: the telemetry channel rolls back on a
// windowed ledger disruption rate the HTTP counters never saw (e.g.
// connection resets with clean 200s).
func TestEvalNodeDisruptionRate(t *testing.T) {
	g := GateConfig{MaxDisruptionRate: 0.02}
	clean := TelemetryWindow{Scraped: true, Requests: 1000, Terminal: 10} // 1%
	v := evalNode(g, "n1", delta(100, 0, 100, 0), ProbeWindow{}, ProbeWindow{Sent: 5}, clean)
	if v.Decision != Promote {
		t.Fatalf("1%% disruption under 2%% bound: %s (%s)", v.Decision, v.Reason)
	}
	dirty := TelemetryWindow{Scraped: true, Requests: 1000, Terminal: 100} // 10%
	v = evalNode(g, "n1", delta(100, 0, 100, 0), ProbeWindow{}, ProbeWindow{Sent: 5}, dirty)
	if v.Decision != Rollback {
		t.Fatalf("10%% disruption: %s", v.Decision)
	}
	if !strings.Contains(v.Reason, "disruption rate") {
		t.Fatalf("reason %q does not name the channel", v.Reason)
	}
	// Zero bound disables the channel entirely.
	v = evalNode(GateConfig{}, "n1", delta(100, 0, 100, 0), ProbeWindow{}, ProbeWindow{Sent: 5}, dirty)
	if v.Decision != Promote {
		t.Fatalf("disabled channel gated: %s (%s)", v.Decision, v.Reason)
	}
}

// TestEvalNodeTelemetryLatency: the data-plane histogram p99 shares
// MaxP99Factor with the probe channel.
func TestEvalNodeTelemetryLatency(t *testing.T) {
	g := GateConfig{MaxP99Factor: 3}
	ok := TelemetryWindow{Scraped: true, Requests: 500, P99: 0.002, BaselineP99: 0.001}
	v := evalNode(g, "n1", delta(100, 0, 100, 0), ProbeWindow{}, ProbeWindow{Sent: 5}, ok)
	if v.Decision != Promote {
		t.Fatalf("2x data-plane p99 under 3x factor: %s (%s)", v.Decision, v.Reason)
	}
	slow := TelemetryWindow{Scraped: true, Requests: 500, P99: 0.010, BaselineP99: 0.001}
	v = evalNode(g, "n1", delta(100, 0, 100, 0), ProbeWindow{}, ProbeWindow{Sent: 5}, slow)
	if v.Decision != Rollback {
		t.Fatalf("10x data-plane p99: %s", v.Decision)
	}
}

// TestEvalNodeTelemetryRescuesInconclusive: a scraped window with
// traffic is a conclusive health channel even when counters and probes
// are both silent.
func TestEvalNodeTelemetryRescuesInconclusive(t *testing.T) {
	silentCounters := delta(1000, 5, 0, 0)
	tel := TelemetryWindow{Scraped: true, Requests: 50}
	v := evalNode(GateConfig{MaxDisruptionRate: 0.05}, "n1", silentCounters, ProbeWindow{}, ProbeWindow{}, tel)
	if v.Decision != Promote {
		t.Fatalf("clean telemetry did not rescue: %s (%s)", v.Decision, v.Reason)
	}
	// All three channels silent still pauses.
	v = evalNode(GateConfig{}, "n1", silentCounters, ProbeWindow{}, ProbeWindow{}, TelemetryWindow{})
	if v.Decision != Pause {
		t.Fatalf("fully silent node: %s, want pause", v.Decision)
	}
}

func TestBatchTelemetryWorstNodeTail(t *testing.T) {
	bt := batchTelemetry(2, []string{"a", "b", "c"}, []TelemetryWindow{
		{Scraped: true, Requests: 100, Terminal: 1, P99: 0.002, BaselineP99: 0.001},
		{Scraped: true, Requests: 300, Terminal: 5, P99: 0.040, BaselineP99: 0.002},
		{}, // lost scrape
	})
	if bt.Batch != 2 || bt.ScrapedNodes != 2 {
		t.Fatalf("batch roll-up: %+v", bt)
	}
	if bt.Requests != 400 || bt.Terminal != 6 {
		t.Fatalf("totals: %+v", bt)
	}
	if bt.P99 != 0.040 || bt.BaselineP99 != 0.002 {
		t.Fatalf("tail must be the worst node's: %+v", bt)
	}
	if bt.DisruptionRate != float64(6)/400 {
		t.Fatalf("rate = %v", bt.DisruptionRate)
	}
}
