package fleet

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"zdr/internal/core"
	"zdr/internal/disrupt"
	"zdr/internal/http1"
	"zdr/internal/metrics"
	"zdr/internal/obs"
)

// Node is one fleet member under orchestrator control: a restart target
// plus the health surface the gate decides on.
type Node struct {
	// Name identifies the node in the journal, status, and spans.
	Name string
	// VIP names the VIP group the node serves. Conflict fencing never
	// drains two nodes of the same group concurrently (the fleet-level
	// form of the multi-Origin DCR invariant), and concurrent rollouts
	// over overlapping groups are refused. Empty means unfenced.
	VIP string
	// Target is restarted to release the node. During a gated rollout the
	// restart blocks inside the canary window (committed-awaiting-ready)
	// until the orchestrator's verdict resolves it.
	Target core.Restartable
	// Counters snapshots the node's cumulative serving counters (the
	// same shape as a ReleaseReport's CountersBefore/After). The registry
	// must be shared across generations so windows bracket a restart.
	Counters func() map[string]int64
	// Probe issues one synchronous health probe against the node's
	// serving path (Prequal-style: the gate reads probe latency and
	// failures, not raw load). A nil Probe disables the probe channel.
	Probe func() error
	// Window must be installed as the ReadyGate of every proxy
	// generation the target builds; the orchestrator holds canaries open
	// through it. Nil makes the node ungateable (ungated rollouts only).
	Window *CanaryWindow
	// State reports the node's release state machine position
	// (generation, phase) for status pages and crash resume. Typically
	// (*core.ProxySlot).State.
	State func() obs.SlotState
	// Metrics snapshots the node's full metrics registry — counters,
	// gauges, and the mergeable atomic latency histograms the telemetry
	// pipeline aggregates fleet-wide. Nil excludes the node from latency
	// merges and the gate's telemetry channel.
	Metrics func() metrics.RegistrySnapshot
	// Disruption reports the node's disruption ledger. Nil excludes the
	// node from disruption accounting (the gate's disruption-rate channel
	// then abstains for it).
	Disruption func() disrupt.Report
}

// generation returns the node's current generation (0 when unknown).
func (n *Node) generation() int {
	if n.State == nil {
		return 0
	}
	return n.State().Generation
}

// phase returns the node's release phase ("" when unknown).
func (n *Node) phase() string {
	if n.State == nil {
		return ""
	}
	return n.State().Phase
}

// ProxyNode assembles a Node around a core.ProxySlot: counters from the
// slot's shared registry, HTTP probes against addr()+path, and the
// canary window win — the same window the slot's Build closure must
// wire as proxy.Config.ReadyGate on every generation (see
// cmd/zdr-operator for the full pattern). The proxies'
// TakeoverReadyTimeout must exceed win's MaxHold.
func ProxyNode(vip string, slot *core.ProxySlot, reg *metrics.Registry, addr func() string, path string, win *CanaryWindow) *Node {
	// A gate-rejected hand-off must surface to the orchestrator, not be
	// retried by the slot: the retry's Gate call would find the window's
	// one-shot entry already consumed and silently promote the rejected
	// build.
	slot.AbortRetries = -1
	return &Node{
		Name:     slot.SlotName,
		VIP:      vip,
		Target:   slot,
		Counters: func() map[string]int64 { return reg.Snapshot().Counters },
		Probe:    func() error { return HTTPProbe(addr(), path, 2*time.Second) },
		Window:   win,
		State:    slot.State,
		Metrics:  reg.Snapshot,
		// Disruption is left nil: assign the node's ledger Report (e.g.
		// led.Report) when the slot's generations share a disrupt.Ledger.
	}
}

// HTTPProbe issues one GET against addr and classifies the outcome: any
// transport failure or a >= 500 status is a probe failure.
func HTTPProbe(addr, path string, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", path, nil, 0)); err != nil {
		return err
	}
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return err
	}
	if _, err := http1.ReadFullBody(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode >= 500 {
		return fmt.Errorf("fleet: probe status %d", resp.StatusCode)
	}
	return nil
}

// DefaultRequestKeys are the cumulative request counters summed into the
// gate's request total — the serving paths a proxy node exposes.
var DefaultRequestKeys = []string{
	"edge.http.requests",
	"edge.quic.requests",
	"origin.http.requests",
}

// DefaultErrorKeys are the cumulative error counters summed into the
// gate's error total.
var DefaultErrorKeys = []string{
	"edge.http.errors.no_origin",
	"edge.http.errors.open_stream",
	"edge.http.errors.upstream",
	"origin.http.attempt_errors",
	"origin.http.ppr_exhausted",
}
