// Telemetry pipeline: the operator-side scrape-and-merge layer over the
// per-node observability surfaces (metrics registries with mergeable
// atomic histograms, disruption ledgers). It answers the fleet-wide
// questions the paper's §6 evaluation asks — what is the live disruption
// rate, what does the latency tail look like, and exactly which (cause,
// phase) cells the failures land in — from per-node data merged
// bucket-wise and cell-wise, never from re-sampled approximations.
package fleet

import (
	"sort"

	"zdr/internal/disrupt"
	"zdr/internal/faults"
	"zdr/internal/metrics"
)

// DefaultLatencyKeys are the request-boundary atomic histograms merged
// into the fleet latency distribution. edge.tunnel.latency is excluded
// deliberately: it is a sub-span of edge.http.latency and would double
// count every tunneled request.
var DefaultLatencyKeys = []string{
	"edge.http.latency",
	"edge.quic.latency",
	"origin.http.latency",
}

// NodeTelemetry is one node's scrape: request/error totals, the node's
// merged latency distribution, and its disruption report. Scraped is
// false when the scrape RPC was dropped by a faulted control plane or
// the node exposes no telemetry surface — merged reports then degrade
// to partial coverage instead of inventing zeros.
type NodeTelemetry struct {
	Node       string                 `json:"node"`
	Generation int                    `json:"generation,omitempty"`
	Phase      string                 `json:"phase,omitempty"`
	Scraped    bool                   `json:"scraped"`
	Requests   int64                  `json:"requests"`
	Errors     int64                  `json:"errors"`
	Latency    metrics.AtomicSnapshot `json:"latency"`
	Disruption disrupt.Report         `json:"disruption"`
}

// TelemetryReport is the fleet-merged view: per-node rows plus the
// cross-node aggregation — bucket-wise histogram merge, cell-wise ledger
// merge, and the derived headline numbers (disruption rate, latency
// quantiles). CausePhase is the §6-table shape: terminal failures
// collapsed to (cause, phase) cells.
type TelemetryReport struct {
	Nodes        []NodeTelemetry        `json:"nodes,omitempty"`
	TotalNodes   int                    `json:"total_nodes"`
	ScrapedNodes int                    `json:"scraped_nodes"`
	Requests     int64                  `json:"requests"`
	Errors       int64                  `json:"errors"`
	Latency      metrics.AtomicSnapshot `json:"latency"`
	LatencyP50   float64                `json:"latency_p50_s"`
	LatencyP99   float64                `json:"latency_p99_s"`
	LatencyP999  float64                `json:"latency_p999_s"`
	Disruption   disrupt.Report         `json:"disruption"`
	// DisruptionRate is terminal ledger events / requests (0 with no
	// requests).
	DisruptionRate float64        `json:"disruption_rate"`
	CausePhase     []disrupt.Cell `json:"cause_phase,omitempty"`
}

// Telemetry scrapes a node set and merges the results fleet-wide. The
// zero value over Nodes is usable; cmd/zdr-operator serves Scrape() at
// /debug/telemetry.
type Telemetry struct {
	// Nodes is the scrape set.
	Nodes []*Node
	// Control, when non-nil, injects faults into the scrape RPCs — the
	// telemetry plane rides the same lossy operator↔node channel as the
	// rollout control plane, and a partition degrades coverage
	// (ScrapedNodes < TotalNodes), never invents data.
	Control *faults.Injector
	// LatencyKeys selects the atomic histograms merged into the latency
	// distribution. Empty uses DefaultLatencyKeys.
	LatencyKeys []string
	// RequestKeys / ErrorKeys select the counters summed into the
	// request/error totals. Empty uses DefaultRequestKeys/DefaultErrorKeys.
	RequestKeys []string
	ErrorKeys   []string
}

// Scrape reads every node and merges the fleet report.
func (t *Telemetry) Scrape() TelemetryReport {
	latKeys := t.LatencyKeys
	if len(latKeys) == 0 {
		latKeys = DefaultLatencyKeys
	}
	reqKeys := t.RequestKeys
	if len(reqKeys) == 0 {
		reqKeys = DefaultRequestKeys
	}
	errKeys := t.ErrorKeys
	if len(errKeys) == 0 {
		errKeys = DefaultErrorKeys
	}
	rep := TelemetryReport{TotalNodes: len(t.Nodes)}
	for _, n := range t.Nodes {
		nt := NodeTelemetry{Node: n.Name}
		if err := t.Control.RPC("scrape " + n.Name); err == nil {
			nt = scrapeNode(n, latKeys, reqKeys, errKeys)
		} else if n.State != nil {
			s := n.State()
			nt.Generation, nt.Phase = s.Generation, s.Phase
		}
		rep.Nodes = append(rep.Nodes, nt)
		if !nt.Scraped {
			continue
		}
		rep.ScrapedNodes++
		rep.Requests += nt.Requests
		rep.Errors += nt.Errors
		rep.Latency.Merge(nt.Latency)
		rep.Disruption = rep.Disruption.Merge(nt.Disruption)
	}
	rep.LatencyP50 = rep.Latency.Quantile(0.50)
	rep.LatencyP99 = rep.Latency.Quantile(0.99)
	rep.LatencyP999 = rep.Latency.Quantile(0.999)
	rep.DisruptionRate = rate(rep.Disruption.Terminal, rep.Requests)
	rep.CausePhase = rep.Disruption.CausePhaseTotals()
	return rep
}

// scrapeNode reads one node's telemetry surface directly (control-plane
// faults are the caller's concern). A node exposing neither Metrics nor
// Disruption is reported unscraped.
func scrapeNode(n *Node, latKeys, reqKeys, errKeys []string) NodeTelemetry {
	nt := NodeTelemetry{Node: n.Name}
	if n.State != nil {
		s := n.State()
		nt.Generation, nt.Phase = s.Generation, s.Phase
	}
	if n.Metrics == nil && n.Disruption == nil {
		return nt
	}
	nt.Scraped = true
	if n.Metrics != nil {
		snap := n.Metrics()
		for _, k := range reqKeys {
			nt.Requests += snap.Counters[k]
		}
		for _, k := range errKeys {
			nt.Errors += snap.Counters[k]
		}
		for _, k := range latKeys {
			if s, ok := snap.AtomicHistograms[k]; ok {
				nt.Latency.Merge(s)
			}
		}
	}
	if n.Disruption != nil {
		nt.Disruption = n.Disruption()
		// The ring tail is a per-node debugging aid, not fleet accounting.
		nt.Disruption.Recent = nil
	}
	return nt
}

// TelemetryWindow is the windowed node-local telemetry the health gate's
// third channel judges: ledger disruption and data-plane latency deltas
// across the canary observation window, against the node's own
// pre-release history. Scraped is false when either bracketing scrape
// was lost — the channel then abstains.
type TelemetryWindow struct {
	Scraped      bool  `json:"scraped"`
	Requests     int64 `json:"requests"`
	Terminal     int64 `json:"terminal"`
	Unattributed int64 `json:"unattributed"`
	// P99 is the windowed data-plane p99 (seconds) from the node's own
	// atomic histograms; BaselineP99 is the cumulative pre-restart p99.
	P99         float64 `json:"p99_s"`
	BaselineP99 float64 `json:"baseline_p99_s"`
}

// DisruptionRate is terminal window events / window requests (0 with no
// requests).
func (w TelemetryWindow) DisruptionRate() float64 {
	return rate(w.Terminal, w.Requests)
}

// telemetryWindowBetween computes the observation-window deltas from two
// scrapes of the same node. Negative deltas (restarted counters, racing
// snapshots) clamp to zero.
func telemetryWindowBetween(before, after NodeTelemetry) TelemetryWindow {
	if !before.Scraped || !after.Scraped {
		return TelemetryWindow{}
	}
	w := TelemetryWindow{
		Scraped:      true,
		Requests:     clamp0(after.Requests - before.Requests),
		Terminal:     clamp0(after.Disruption.Terminal - before.Disruption.Terminal),
		Unattributed: clamp0(after.Disruption.Unattributed - before.Disruption.Unattributed),
		BaselineP99:  before.Latency.Quantile(0.99),
	}
	w.P99 = after.Latency.Sub(before.Latency).Quantile(0.99)
	return w
}

// BatchTelemetry is the live per-batch roll-up surfaced in Status while
// a rollout runs: the batch's windowed request/disruption totals and the
// merged canary-window latency tail.
type BatchTelemetry struct {
	Batch          int      `json:"batch"`
	Nodes          []string `json:"nodes,omitempty"`
	ScrapedNodes   int      `json:"scraped_nodes"`
	Requests       int64    `json:"requests"`
	Terminal       int64    `json:"terminal"`
	Unattributed   int64    `json:"unattributed"`
	DisruptionRate float64  `json:"disruption_rate"`
	P99            float64  `json:"p99_s"`
	BaselineP99    float64  `json:"baseline_p99_s"`
}

// batchTelemetry folds per-node windows into the batch roll-up. The p99
// columns take the worst node — a batch's tail is its slowest member,
// and averaging would hide exactly the node the gate should catch.
func batchTelemetry(idx int, names []string, windows []TelemetryWindow) BatchTelemetry {
	bt := BatchTelemetry{Batch: idx, Nodes: append([]string(nil), names...)}
	for _, w := range windows {
		if !w.Scraped {
			continue
		}
		bt.ScrapedNodes++
		bt.Requests += w.Requests
		bt.Terminal += w.Terminal
		bt.Unattributed += w.Unattributed
		if w.P99 > bt.P99 {
			bt.P99 = w.P99
		}
		if w.BaselineP99 > bt.BaselineP99 {
			bt.BaselineP99 = w.BaselineP99
		}
	}
	bt.DisruptionRate = rate(bt.Terminal, bt.Requests)
	return bt
}

func rate(events, requests int64) float64 {
	if requests <= 0 {
		return 0
	}
	return float64(events) / float64(requests)
}

func clamp0(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// SortCellsByCount orders attribution cells largest-first (ties by
// cause/phase) — the presentation order of the §6-style tables.
func SortCellsByCount(cells []disrupt.Cell) {
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Cause != b.Cause {
			return a.Cause < b.Cause
		}
		return a.Phase < b.Phase
	})
}
