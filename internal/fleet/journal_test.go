package fleet

import (
	"os"
	"path/filepath"
	"testing"
)

// TestJournalRoundTrip: appended records replay intact and in order.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rollout.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: RecBegin, Rollout: "r1", Nodes: []string{"a", "b", "c"}},
		{Kind: RecBatchStart, Rollout: "r1", Batch: 0, Nodes: []string{"a"}},
		{Kind: RecNodePromoted, Rollout: "r1", Node: "a", Batch: 0},
		{Kind: RecGate, Rollout: "r1", Batch: 0, Decision: "promote",
			Verdicts: []NodeVerdict{{Node: "a", Outcome: "promote"}}},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Kind != recs[i].Kind || got[i].Node != recs[i].Node || got[i].Decision != recs[i].Decision {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
		if got[i].TS == 0 {
			t.Fatalf("record %d: Append did not stamp TS", i)
		}
	}
	if len(got[3].Verdicts) != 1 || got[3].Verdicts[0].Node != "a" {
		t.Fatalf("gate verdicts did not round-trip: %+v", got[3].Verdicts)
	}
}

// TestJournalTornTail: a crash mid-append leaves a truncated final line;
// Replay trusts everything before it and skips the tear.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rollout.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Kind: RecBegin, Rollout: "r1", Nodes: []string{"a"}})
	j.Append(Record{Kind: RecBatchStart, Rollout: "r1", Nodes: []string{"a"}})
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"node-promoted","node":"a","ba`) // torn mid-write
	f.Close()
	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want 2 (torn tail skipped)", len(got))
	}
	if got[1].Kind != RecBatchStart {
		t.Fatalf("last trusted record = %q, want batch-start", got[1].Kind)
	}
}

// TestReplayMissingFile: a never-written journal replays empty, not as
// an error — first boot and post-crash boot share one code path.
func TestReplayMissingFile(t *testing.T) {
	got, err := Replay(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || got != nil {
		t.Fatalf("missing journal: recs=%v err=%v", got, err)
	}
}

// TestRecoverProgress folds a mid-rollout journal into the resume point:
// promoted nodes skipped, the interrupted batch re-examined in rollout
// order.
func TestRecoverProgress(t *testing.T) {
	p := Recover([]Record{
		{Kind: RecBegin, Rollout: "r1", Nodes: []string{"a", "b", "c", "d"}},
		{Kind: RecBatchStart, Batch: 0, Nodes: []string{"a"}},
		{Kind: RecNodePromoted, Node: "a", Batch: 0},
		{Kind: RecGate, Batch: 0, Decision: "promote"},
		{Kind: RecBatchStart, Batch: 1, Nodes: []string{"b", "c"}},
		{Kind: RecNodeRolledBack, Node: "b", Batch: 1},
		// operator died here: c has no terminal record, d never started
	})
	if p.Rollout != "r1" {
		t.Fatalf("rollout = %q", p.Rollout)
	}
	if !p.Promoted["a"] || len(p.Promoted) != 1 {
		t.Fatalf("promoted = %v", p.Promoted)
	}
	if !p.RolledBack["b"] || len(p.RolledBack) != 1 {
		t.Fatalf("rolled back = %v", p.RolledBack)
	}
	if len(p.InFlight) != 1 || p.InFlight[0] != "c" {
		t.Fatalf("in-flight = %v, want [c]", p.InFlight)
	}
	if p.Paused || p.Done != "" {
		t.Fatalf("paused=%v done=%q on an open rollout", p.Paused, p.Done)
	}
}

// TestRecoverPauseResume: the latest pause/resume wins, and a terminal
// record closes the rollout.
func TestRecoverPauseResume(t *testing.T) {
	p := Recover([]Record{
		{Kind: RecBegin, Rollout: "r1", Nodes: []string{"a"}},
		{Kind: RecPause, Batch: 0},
	})
	if !p.Paused {
		t.Fatal("pause not recovered")
	}
	p = Recover([]Record{
		{Kind: RecBegin, Rollout: "r1", Nodes: []string{"a"}},
		{Kind: RecPause, Batch: 0},
		{Kind: RecResume},
		{Kind: RecNodePromoted, Node: "a"},
		{Kind: RecDone, Decision: StateDone},
	})
	if p.Paused {
		t.Fatal("resume did not clear pause")
	}
	if p.Done != StateDone {
		t.Fatalf("done = %q", p.Done)
	}
}

// TestRecoverEmpty: an empty journal recovers a zero progress.
func TestRecoverEmpty(t *testing.T) {
	p := Recover(nil)
	if p.Rollout != "" || len(p.Promoted) != 0 || len(p.InFlight) != 0 {
		t.Fatalf("empty journal recovered %+v", p)
	}
}
