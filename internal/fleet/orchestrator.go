// Package fleet is the release control plane: a reconciler that drives
// staged, health-gated rollouts across a fleet of core.Restartable
// nodes (§6 scaled down to an in-process simulation).
//
// The mechanism under the mechanism is drain-undo (takeover
// ProtoDrainUndo): every node's proxy generations install a CanaryWindow
// as their readiness gate, so a restart commits the hand-off, serves
// live traffic in committed-awaiting-ready, and then waits for the
// orchestrator's verdict. Promote releases READY and the old generation
// drains; Rollback fails the gate and the old generation re-arms from
// its retained FDs with zero failed requests. The canary is therefore
// not a separate traffic-splitting layer — it IS the release protocol's
// post-commit window, held open long enough to judge the new build.
//
// Rollouts are canary-first (a small first batch, then exponentially
// growing ones), health-gated per batch against each node's own
// pre-release baseline (counter deltas + orchestrator-side probes),
// conflict-fenced per VIP group, and journaled to disk so a crashed
// operator resumes — or safely abandons, letting MaxHold self-rollback
// reclaim the canaries — without guessing.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"zdr/internal/core"
	"zdr/internal/faults"
	"zdr/internal/obs"
)

// Rollout states reported by Status.
const (
	StateIdle    = "idle"
	StateRunning = "running"
	StatePaused  = "paused"
	StateDone    = "done"
	StateAborted = "aborted"
	StateStopped = "stopped" // operator closed/crashed mid-rollout
)

// ErrClosed reports that Close tore the orchestrator down mid-rollout.
var ErrClosed = errors.New("fleet: orchestrator closed")

// ErrNotPaused reports a Decide call outside a pause.
var ErrNotPaused = errors.New("fleet: rollout is not paused")

// ErrDecidePending reports a Decide call while a decision for the
// current pause is already queued and not yet consumed.
var ErrDecidePending = errors.New("fleet: a decision for this pause is already pending")

// ErrGateRejected is the verdict delivered into a canary window when the
// health gate votes against the batch; it surfaces (wrapped) from the
// node's Restart as the drain-undo cause.
var ErrGateRejected = errors.New("fleet: health gate rejected the new build")

// Config parameterises a rollout.
type Config struct {
	// Name identifies the rollout (journal records, fence ownership).
	Name string
	// CanarySize is the first batch's size. Default 1.
	CanarySize int
	// GrowthFactor multiplies the batch size after each promoted batch.
	// Default 2.
	GrowthFactor int
	// MaxBatchSize caps batch growth. 0 = no cap.
	MaxBatchSize int
	// BaselineWindow is the pre-restart probe window per batch (baseline
	// p99). 0 skips baseline probing (the latency term then never fires).
	BaselineWindow time.Duration
	// HealthWindow is the post-commit observation window per batch. Must
	// comfortably undercut every node window's MaxHold. Default 2s.
	HealthWindow time.Duration
	// ProbeInterval paces orchestrator-side probes. Default 50ms.
	ProbeInterval time.Duration
	// WindowTimeout bounds the wait for a restarted node to enter its
	// canary window. Default 10s.
	WindowTimeout time.Duration
	// BatchDelay pauses between promoted batches.
	BatchDelay time.Duration
	// Gate is the health-gate parameterisation.
	Gate GateConfig
	// Ungated disables canary windows and gating entirely: batches are
	// restarted and immediately promoted. This is the paper's pre-gate
	// release process, kept for the §6-style disruption comparison.
	Ungated bool
	// Journal, when non-nil, receives the rollout's write-ahead log.
	Journal *Journal
	// Resume, when non-nil, is a Recover()ed journal: promoted nodes are
	// skipped and the interrupted batch is re-driven after its abandoned
	// canaries settle.
	Resume *Progress
	// Trace, when non-nil, records the rollout span tree.
	Trace *obs.Tracer
	// Control, when non-nil, injects faults into the operator↔node
	// control channel (every RPC the orchestrator issues).
	Control *faults.Injector
	// Fence, when non-nil, serialises this rollout against others over
	// shared VIP groups.
	Fence *Fence
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "rollout"
	}
	if c.CanarySize <= 0 {
		c.CanarySize = 1
	}
	if c.GrowthFactor < 2 {
		c.GrowthFactor = 2
	}
	if c.HealthWindow <= 0 {
		c.HealthWindow = 2 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 50 * time.Millisecond
	}
	if c.WindowTimeout <= 0 {
		c.WindowTimeout = 10 * time.Second
	}
	return c
}

// NodeStatus is one node's row in Status.
type NodeStatus struct {
	Name       string `json:"name"`
	VIP        string `json:"vip,omitempty"`
	Generation int    `json:"generation"`
	Phase      string `json:"phase,omitempty"`
	Promoted   bool   `json:"promoted"`
	RolledBack bool   `json:"rolled_back"`
}

// Status is the rollout's operator-visible state (served at
// /debug/rollout by cmd/zdr-operator).
type Status struct {
	Name        string        `json:"rollout"`
	State       string        `json:"state"`
	Reason      string        `json:"reason,omitempty"`
	Batch       int           `json:"batch"`
	Batches     [][]string    `json:"batches,omitempty"`
	Nodes       []NodeStatus  `json:"nodes"`
	LastGate    []NodeVerdict `json:"last_gate,omitempty"`
	GateOutcome string        `json:"gate_outcome,omitempty"`
	// Telemetry is the live per-batch disruption/latency roll-up, one
	// entry per batch driven so far (gated and ungated alike).
	Telemetry []BatchTelemetry `json:"telemetry,omitempty"`
}

// Orchestrator drives one rollout over a fixed node set.
type Orchestrator struct {
	cfg   Config
	nodes []*Node

	mu         sync.Mutex
	state      string
	reason     string
	batch      int
	batches    [][]*Node
	promoted   map[string]bool
	rolledBack map[string]bool
	lastGate   []NodeVerdict
	gateOut    string
	telemetry  []BatchTelemetry
	// inflight maps node name → the done channel of a restart that
	// outlived its settle timeout. The node must not be re-driven until
	// that restart resolves.
	inflight map[string]chan error

	decide chan bool
	closed chan struct{}
	once   sync.Once
}

// New validates the configuration and prepares (but does not start) a
// rollout over nodes.
func New(cfg Config, nodes []*Node) (*Orchestrator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Gate.Validate(); err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, errors.New("fleet: no nodes")
	}
	seen := map[string]bool{}
	for _, n := range nodes {
		if n.Name == "" {
			return nil, errors.New("fleet: node with empty name")
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("fleet: duplicate node %q", n.Name)
		}
		seen[n.Name] = true
		if n.Target == nil {
			return nil, fmt.Errorf("fleet: node %q has no restart target", n.Name)
		}
		if !cfg.Ungated && n.Window == nil {
			return nil, fmt.Errorf("fleet: node %q has no canary window (required for gated rollouts)", n.Name)
		}
	}
	return &Orchestrator{
		cfg:        cfg,
		nodes:      nodes,
		state:      StateIdle,
		promoted:   map[string]bool{},
		rolledBack: map[string]bool{},
		inflight:   map[string]chan error{},
		decide:     make(chan bool, 1),
		closed:     make(chan struct{}),
	}, nil
}

// Close tears the orchestrator down without journaling a terminal
// record — deliberately indistinguishable (to the journal) from the
// operator process dying. Canaries left holding their windows
// self-roll-back once MaxHold expires; a later orchestrator resumes
// from the journal.
func (o *Orchestrator) Close() {
	o.once.Do(func() { close(o.closed) })
}

// Decide resolves a paused rollout: resume=true re-drives the remaining
// (and rolled-back) nodes, resume=false aborts the rollout. The state
// check and the send are atomic under o.mu, so concurrent Decide calls
// cannot queue a second, stale decision that would silently auto-resolve
// a later pause.
func (o *Orchestrator) Decide(resume bool) error {
	select {
	case <-o.closed:
		return ErrClosed
	default:
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.state != StatePaused {
		return ErrNotPaused
	}
	select {
	case o.decide <- resume:
		return nil
	default:
		return ErrDecidePending
	}
}

// Status snapshots the rollout for the admin endpoint.
func (o *Orchestrator) Status() Status {
	o.mu.Lock()
	st := Status{
		Name:        o.cfg.Name,
		State:       o.state,
		Reason:      o.reason,
		Batch:       o.batch,
		LastGate:    append([]NodeVerdict(nil), o.lastGate...),
		GateOutcome: o.gateOut,
		Telemetry:   append([]BatchTelemetry(nil), o.telemetry...),
	}
	for _, b := range o.batches {
		var names []string
		for _, n := range b {
			names = append(names, n.Name)
		}
		st.Batches = append(st.Batches, names)
	}
	promoted := make(map[string]bool, len(o.promoted))
	for k, v := range o.promoted {
		promoted[k] = v
	}
	rolledBack := make(map[string]bool, len(o.rolledBack))
	for k, v := range o.rolledBack {
		rolledBack[k] = v
	}
	o.mu.Unlock()
	for _, n := range o.nodes {
		ns := NodeStatus{
			Name:       n.Name,
			VIP:        n.VIP,
			Promoted:   promoted[n.Name],
			RolledBack: rolledBack[n.Name],
		}
		if n.State != nil {
			s := n.State()
			ns.Generation = s.Generation
			ns.Phase = s.Phase
		}
		st.Nodes = append(st.Nodes, ns)
	}
	return st
}

func (o *Orchestrator) setState(state, reason string) {
	o.mu.Lock()
	o.state = state
	o.reason = reason
	o.mu.Unlock()
}

// pauseState enters StatePaused, first discarding any decision that
// slipped into the buffer after the previous pause resolved (a Decide
// racing the paused→running transition), so each pause consumes exactly
// one fresh decision.
func (o *Orchestrator) pauseState(reason string) {
	o.mu.Lock()
	select {
	case <-o.decide:
	default:
	}
	o.state = StatePaused
	o.reason = reason
	o.mu.Unlock()
}

// inflightResolved reports whether name is clear of any previous
// restart that outlived its settle timeout, clearing the record once
// that restart finally resolves.
func (o *Orchestrator) inflightResolved(name string) bool {
	o.mu.Lock()
	ch := o.inflight[name]
	o.mu.Unlock()
	if ch == nil {
		return true
	}
	select {
	case <-ch:
		o.mu.Lock()
		delete(o.inflight, name)
		o.mu.Unlock()
		return true
	default:
		return false
	}
}

// rpc passes one control-plane call through the fault injector. Every
// operator→node interaction funnels here, so a partitioned or lossy
// control channel degrades the rollout, never the data plane.
func (o *Orchestrator) rpc(op string) error {
	return o.cfg.Control.RPC(op)
}

// scrape reads one node's telemetry surface with the gate's counter-key
// selection. Callers gate it behind rpc() first, so a partitioned
// control plane loses the scrape (the telemetry channel abstains) rather
// than fabricating a clean window.
func (o *Orchestrator) scrape(n *Node) NodeTelemetry {
	g := o.cfg.Gate.withDefaults()
	return scrapeNode(n, DefaultLatencyKeys, g.RequestKeys, g.ErrorKeys)
}

// Run executes the rollout to a terminal state: StateDone (all nodes
// promoted), StateAborted (operator Decide), or StatePaused left
// standing when Close unwinds a pause wait. Close mid-flight returns
// ErrClosed with the journal reflecting exactly what had been committed.
func (o *Orchestrator) Run() error {
	if o.cfg.Fence != nil {
		var vips []string
		for _, n := range o.nodes {
			vips = append(vips, n.VIP)
		}
		if err := o.cfg.Fence.Acquire(o.cfg.Name, vips); err != nil {
			return err
		}
		defer o.cfg.Fence.Release(o.cfg.Name)
	}

	resuming := o.cfg.Resume != nil && o.cfg.Resume.Rollout == o.cfg.Name
	if resuming {
		for _, name := range sortedKeys(o.cfg.Resume.Promoted) {
			o.mu.Lock()
			o.promoted[name] = true
			o.mu.Unlock()
		}
		if err := o.journal(Record{Kind: RecResume, Reason: "journal recovery"}); err != nil {
			return err
		}
		if err := o.reconcileAbandoned(o.cfg.Resume); err != nil {
			return err
		}
	} else {
		var names []string
		for _, n := range o.nodes {
			names = append(names, n.Name)
		}
		if err := o.journal(Record{Kind: RecBegin, Nodes: names}); err != nil {
			return err
		}
	}

	// A window left armed by a dead operator must not leak into this run.
	for _, n := range o.nodes {
		if n.Window != nil {
			n.Window.disarm()
		}
	}

	root := o.cfg.Trace.StartSpan(obs.SpanRollout, obs.SpanContext{})
	root.SetAttr("rollout", o.cfg.Name)
	root.SetAttr("nodes", strconv.Itoa(len(o.nodes)))
	defer root.End()

	o.setState(StateRunning, "")
	err := o.run(root)
	root.Fail(err)
	return err
}

func (o *Orchestrator) run(root *obs.Span) error {
	for {
		remaining := o.remaining()
		if len(remaining) == 0 {
			if err := o.journal(Record{Kind: RecDone, Decision: StateDone}); err != nil {
				return err
			}
			o.setState(StateDone, "")
			return nil
		}
		batches := planBatches(remaining, o.cfg.CanarySize, o.cfg.GrowthFactor, o.cfg.MaxBatchSize)
		o.mu.Lock()
		o.batches = batches
		o.mu.Unlock()
		paused := false
		for i, batch := range batches {
			o.mu.Lock()
			o.batch = i
			o.mu.Unlock()
			decision, verdicts, err := o.runBatch(i, batch, root)
			if err != nil {
				o.setState(StateStopped, err.Error())
				return err
			}
			o.mu.Lock()
			o.lastGate = verdicts
			o.gateOut = decision.String()
			o.mu.Unlock()
			if decision != Promote {
				reason := pauseReason(decision, verdicts)
				if err := o.journal(Record{Kind: RecPause, Batch: i, Reason: reason}); err != nil {
					return err
				}
				o.pauseState(reason)
				resume, err := o.awaitDecide()
				if err != nil {
					return err // Close during pause: state stays paused on disk
				}
				if !resume {
					if err := o.journal(Record{Kind: RecDone, Decision: StateAborted}); err != nil {
						return err
					}
					o.setState(StateAborted, reason)
					return nil
				}
				if err := o.journal(Record{Kind: RecResume, Reason: "operator resume"}); err != nil {
					return err
				}
				o.setState(StateRunning, "")
				paused = true
				break // re-plan over what is still unpromoted
			}
			if o.cfg.BatchDelay > 0 && i < len(batches)-1 {
				select {
				case <-time.After(o.cfg.BatchDelay):
				case <-o.closed:
					o.setState(StateStopped, ErrClosed.Error())
					return ErrClosed
				}
			}
		}
		if !paused {
			continue // loop re-checks remaining; normally it is empty now
		}
	}
}

// remaining lists nodes not yet promoted, preserving rollout order.
// Rolled-back nodes remain candidates: an operator resume re-drives
// them.
func (o *Orchestrator) remaining() []*Node {
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []*Node
	for _, n := range o.nodes {
		if !o.promoted[n.Name] {
			out = append(out, n)
		}
	}
	return out
}

func (o *Orchestrator) awaitDecide() (bool, error) {
	select {
	case resume := <-o.decide:
		return resume, nil
	case <-o.closed:
		return false, ErrClosed
	}
}

// reconcileAbandoned settles the batch a dead operator left mid-flight.
// First it waits for each node to exit its transition phases (the
// MaxHold self-rollback resolves a held window; an in-progress hand-off
// completes or unwinds on its own) — re-driving a node that is still
// transitioning would race its previous restart. Then it reconciles the
// journal against reality: a node whose observed generation advanced
// past its journaled pre-restart generation received its promote
// verdict before the crash and only the journal record was lost, so it
// is promoted now rather than restarted a second time.
func (o *Orchestrator) reconcileAbandoned(p *Progress) error {
	byName := map[string]*Node{}
	for _, n := range o.nodes {
		byName[n.Name] = n
	}
	deadline := time.Now().Add(o.cfg.WindowTimeout + DefaultMaxHold)
	for _, name := range p.InFlight {
		n := byName[name]
		if n == nil || n.State == nil {
			continue
		}
		for {
			switch n.phase() {
			// "" and "serving" are the steady states (slot idle / proxy
			// serving); "rolled-back" is the settled undo marker.
			case "", "serving", "rolled-back":
			default:
				if time.Now().Before(deadline) {
					select {
					case <-time.After(10 * time.Millisecond):
						continue
					case <-o.closed:
						return ErrClosed
					}
				}
				return fmt.Errorf("fleet: abandoned canary %s stuck in phase %q", name, n.phase())
			}
			break
		}
		startGen, known := p.InFlightGens[name]
		if known && n.generation() > startGen {
			if err := o.journal(Record{Kind: RecNodePromoted, Node: name,
				Reason: "reconciled: promoted before operator death"}); err != nil {
				return err
			}
			o.mu.Lock()
			o.promoted[name] = true
			o.mu.Unlock()
		}
	}
	return nil
}

// canary is one node's in-batch bookkeeping.
type canary struct {
	node        *Node
	before      map[string]int64
	telBefore   NodeTelemetry
	baseline    ProbeWindow
	entered     <-chan struct{}
	verdict     chan<- error
	done        chan error
	inWindow    bool
	delivered   bool
	preRejected bool   // rollback verdict pre-loaded before window entry (timeout)
	failed      string // pre-window failure (rpc drop, restart abort, timeout)
}

// runBatch drives one batch through restart → observe → gate → settle
// and returns the gate decision. Journal invariants: RecBatchStart
// precedes any node action; every node that entered its window gets a
// terminal RecNodePromoted or RecNodeRolledBack before RecGate.
func (o *Orchestrator) runBatch(idx int, batch []*Node, root *obs.Span) (Decision, []NodeVerdict, error) {
	var names []string
	gens := map[string]int{}
	for _, n := range batch {
		names = append(names, n.Name)
		gens[n.Name] = n.generation()
	}
	if err := o.journal(Record{Kind: RecBatchStart, Batch: idx, Nodes: names, Gens: gens}); err != nil {
		return Pause, nil, err
	}
	sp := root.StartChild(obs.SpanRolloutBatch)
	sp.SetAttr("batch", strconv.Itoa(idx))
	sp.SetAttr("nodes", strings.Join(names, ","))
	defer sp.End()

	if o.cfg.Ungated {
		verdicts, err := o.runUngatedBatch(idx, batch, sp)
		return Promote, verdicts, err
	}

	// Baseline: per-node counter snapshot + probe window, before any
	// restart. Each node is judged against itself.
	cans := make([]*canary, len(batch))
	var wg sync.WaitGroup
	for i, n := range batch {
		c := &canary{node: n, done: make(chan error, 1)}
		cans[i] = c
		if err := o.rpc("snapshot " + n.Name); err == nil && n.Counters != nil {
			c.before = n.Counters()
		}
		if err := o.rpc("scrape " + n.Name); err == nil {
			c.telBefore = o.scrape(n)
		}
		if o.cfg.BaselineWindow > 0 {
			wg.Add(1)
			go func(c *canary) {
				defer wg.Done()
				c.baseline = o.probeWindow(c.node, o.cfg.BaselineWindow)
			}(c)
		}
	}
	wg.Wait()

	// Restart every node; each blocks inside its canary window. A node
	// whose previous restart outlived its settle timeout is skipped —
	// re-arming its window and restarting it again would race the still
	// in-flight restart.
	for _, c := range cans {
		if !o.inflightResolved(c.node.Name) {
			c.failed = "previous restart still in flight"
			continue
		}
		if err := o.rpc("restart " + c.node.Name); err != nil {
			c.failed = fmt.Sprintf("restart rpc: %v", err)
			continue
		}
		c.entered, c.verdict = c.node.Window.arm()
		go func(c *canary) {
			c.done <- c.node.Target.Restart(core.WithTrace(sp))
		}(c)
	}
	// Wait for each to reach committed-awaiting-ready (or fail early).
	// The deadline is absolute so every canary in the batch observes
	// WindowTimeout, not just whichever node consumes the timer first.
	deadline := time.Now().Add(o.cfg.WindowTimeout)
	for _, c := range cans {
		if c.failed != "" {
			continue
		}
		select {
		case <-c.entered:
			c.inWindow = true
		case err := <-c.done:
			// Restart resolved without entering the window: a pre-commit
			// abort (old generation never stopped serving). Benign; the
			// restart is over, so disarming cannot race it.
			c.node.Window.disarm()
			c.failed = fmt.Sprintf("restart did not reach canary window: %v", err)
		case <-time.After(time.Until(deadline)):
			// The restart is still in flight. Disarming here would let a
			// late-arriving Gate pass straight through — silently
			// promoting an unjudged build with no journal record — so
			// instead pre-load a rollback verdict (the channel is
			// buffered: delivery never blocks). If the node ever reaches
			// its window, drain-undo unwinds it; the window is disarmed
			// only once the restart resolves (settle loop below).
			c.verdict <- fmt.Errorf("%w: timeout waiting for canary window", ErrGateRejected)
			c.preRejected = true
			c.failed = "timeout waiting for canary window"
		case <-o.closed:
			return Pause, nil, ErrClosed
		}
	}

	// Observation window: the new generations serve live traffic while
	// the old ones hold their FDs as the instant rollback.
	gateSp := sp.StartChild(obs.SpanRolloutGate)
	windows := make([]ProbeWindow, len(cans))
	var obsWG sync.WaitGroup
	for i, c := range cans {
		if !c.inWindow {
			continue
		}
		obsWG.Add(1)
		go func(i int, c *canary) {
			defer obsWG.Done()
			windows[i] = o.probeWindow(c.node, o.cfg.HealthWindow)
		}(i, c)
	}
	obsWG.Wait()

	// Evaluate: counter deltas vs the node's own baseline, plus the
	// probe window. Nodes that never entered their window vote Pause —
	// the control plane could not judge them, so a human must.
	verdicts := make([]NodeVerdict, len(cans))
	telWindows := make([]TelemetryWindow, len(cans))
	for i, c := range cans {
		if !c.inWindow {
			verdicts[i] = NodeVerdict{
				Node:     c.node.Name,
				Decision: Pause,
				Outcome:  Pause.String(),
				Reason:   c.failed,
			}
			continue
		}
		var after map[string]int64
		if err := o.rpc("counters " + c.node.Name); err == nil && c.node.Counters != nil {
			after = c.node.Counters()
		}
		g := o.cfg.Gate.withDefaults()
		delta := core.HealthDeltaBetween(c.before, after, g.RequestKeys, g.ErrorKeys)
		if c.before == nil || after == nil {
			// Either snapshot RPC dropped (or the node exposes no
			// counters): the channel abstains. Judging a missing baseline
			// would compare the node's full cumulative history against
			// zero and roll back healthy nodes with any lifetime errors.
			delta.Inconclusive = true
		}
		var telAfter NodeTelemetry
		if err := o.rpc("scrape " + c.node.Name); err == nil {
			telAfter = o.scrape(c.node)
		}
		telWindows[i] = telemetryWindowBetween(c.telBefore, telAfter)
		verdicts[i] = evalNode(o.cfg.Gate, c.node.Name, delta, c.baseline, windows[i], telWindows[i])
	}
	o.mu.Lock()
	o.telemetry = append(o.telemetry, batchTelemetry(idx, names, telWindows))
	o.mu.Unlock()
	decision := aggregate(verdicts)
	gateSp.SetAttr("decision", decision.String())
	if decision != Promote {
		gateSp.Fail(fmt.Errorf("fleet: batch %d gate: %s", idx, pauseReason(decision, verdicts)))
	}
	gateSp.End()

	// Settle every node that holds a window. Promote → nil verdict, the
	// READY frame goes out and the old generation drains. Anything else →
	// error verdict, drain-undo re-arms the old generation. A dropped
	// verdict RPC delivers nothing: MaxHold self-rollback reclaims the
	// node, and it is accounted rolled-back like the rest. A node that
	// SHOULD have promoted but could not (verdict lost, restart error)
	// downgrades the batch to Pause — the control plane is unhealthy, so
	// the rollout must not march on.
	var rbSp *obs.Span
	rollbackSpan := func() *obs.Span {
		if rbSp == nil {
			rbSp = sp.StartChild(obs.SpanRolloutRollback)
			rbSp.SetAttr("batch", strconv.Itoa(idx))
		}
		return rbSp
	}
	defer func() {
		if rbSp != nil {
			rbSp.End()
		}
	}()
	// Deliver every verdict before waiting on any settle: a held window
	// ages against its MaxHold the whole time, so queueing node N's
	// verdict behind node N-1's drain would spuriously self-roll-back the
	// tail of a large batch.
	for _, c := range cans {
		if !c.inWindow {
			continue
		}
		if err := o.rpc("verdict " + c.node.Name); err == nil {
			if decision == Promote {
				c.verdict <- nil
			} else {
				c.verdict <- fmt.Errorf("%w (batch %d)", ErrGateRejected, idx)
			}
			c.delivered = true
		}
	}
	for _, c := range cans {
		if !c.inWindow && !c.preRejected {
			continue
		}
		settleTimeout := o.cfg.WindowTimeout
		if !c.delivered && !c.preRejected {
			// The node never hears from us again; wait out its MaxHold.
			settleTimeout += maxHold(c.node)
		}
		var restartErr error
		settled := true
		select {
		case restartErr = <-c.done:
		case <-time.After(settleTimeout):
			settled = false
			restartErr = fmt.Errorf("fleet: node %s did not settle within %s", c.node.Name, settleTimeout)
		case <-o.closed:
			if c.inWindow {
				c.node.Window.disarm()
			}
			return Pause, nil, ErrClosed
		}
		if settled {
			c.node.Window.disarm()
		} else {
			// The restart is still in flight: keep the window armed (a
			// pre-rejected node's queued verdict still fails a late Gate)
			// and remember the outstanding done channel so this node is
			// not re-driven concurrently with it.
			o.mu.Lock()
			o.inflight[c.node.Name] = c.done
			o.mu.Unlock()
		}
		promoted := c.delivered && decision == Promote && (restartErr == nil || errors.Is(restartErr, core.ErrTakeoverNotArmed))
		if promoted {
			// ErrTakeoverNotArmed means the new generation serves but is
			// not yet releasable; that is a promotion with a warning, not
			// a rollback.
			if err := o.journal(Record{Kind: RecNodePromoted, Node: c.node.Name, Batch: idx}); err != nil {
				return Pause, verdicts, err
			}
			o.mu.Lock()
			o.promoted[c.node.Name] = true
			o.mu.Unlock()
			continue
		}
		reason := "gate rollback"
		switch {
		case c.preRejected:
			reason = c.failed // timeout waiting for canary window
		case !c.delivered:
			reason = "verdict lost, MaxHold self-rollback"
		case decision == Promote:
			reason = fmt.Sprintf("promote failed: %v", restartErr)
		}
		if decision == Promote {
			decision = Pause
			verdicts = append(verdicts, NodeVerdict{
				Node: c.node.Name, Decision: Pause, Outcome: Pause.String(), Reason: reason,
			})
		}
		rollbackSpan()
		if err := o.journal(Record{Kind: RecNodeRolledBack, Node: c.node.Name, Batch: idx, Reason: reason}); err != nil {
			return Pause, verdicts, err
		}
		o.mu.Lock()
		o.rolledBack[c.node.Name] = true
		o.mu.Unlock()
	}
	if err := o.journal(Record{Kind: RecGate, Batch: idx, Decision: decision.String(), Verdicts: verdicts}); err != nil {
		return Pause, verdicts, err
	}
	return decision, verdicts, nil
}

// runUngatedBatch restarts the batch with no window and no gate — the
// pre-gate release process kept for disruption comparisons. Every node
// is promoted regardless of health.
func (o *Orchestrator) runUngatedBatch(idx int, batch []*Node, sp *obs.Span) ([]NodeVerdict, error) {
	befores := make([]NodeTelemetry, len(batch))
	for i, n := range batch {
		if err := o.rpc("scrape " + n.Name); err == nil {
			befores[i] = o.scrape(n)
		}
	}
	errs := make([]error, len(batch))
	var wg sync.WaitGroup
	for i, n := range batch {
		if err := o.rpc("restart " + n.Name); err != nil {
			errs[i] = err
			continue
		}
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			errs[i] = n.Target.Restart(core.WithTrace(sp))
		}(i, n)
	}
	wg.Wait()
	// The telemetry window brackets the restart itself: with no canary
	// window, whatever the ungated restart disrupted is exactly what the
	// gated-vs-ungated §6 comparison wants counted.
	telWindows := make([]TelemetryWindow, len(batch))
	names := make([]string, len(batch))
	for i, n := range batch {
		names[i] = n.Name
		var after NodeTelemetry
		if err := o.rpc("scrape " + n.Name); err == nil {
			after = o.scrape(n)
		}
		telWindows[i] = telemetryWindowBetween(befores[i], after)
	}
	o.mu.Lock()
	o.telemetry = append(o.telemetry, batchTelemetry(idx, names, telWindows))
	o.mu.Unlock()
	verdicts := make([]NodeVerdict, len(batch))
	for i, n := range batch {
		verdicts[i] = NodeVerdict{Node: n.Name, Decision: Promote, Outcome: Promote.String()}
		if errs[i] != nil {
			verdicts[i].Reason = errs[i].Error()
		}
		if err := o.journal(Record{Kind: RecNodePromoted, Node: n.Name, Batch: idx, Reason: verdicts[i].Reason}); err != nil {
			return verdicts, err
		}
		o.mu.Lock()
		o.promoted[n.Name] = true
		o.mu.Unlock()
	}
	if err := o.journal(Record{Kind: RecGate, Batch: idx, Decision: Promote.String(), Verdicts: verdicts}); err != nil {
		return verdicts, err
	}
	return verdicts, nil
}

// probeWindow issues probes against one node for the given window and
// aggregates them. Dropped probe RPCs are not counted at all — a lossy
// control plane must not masquerade as node badness (it surfaces as an
// inconclusive channel instead).
func (o *Orchestrator) probeWindow(n *Node, window time.Duration) ProbeWindow {
	var pw ProbeWindow
	if n.Probe == nil || window <= 0 {
		return pw
	}
	var lat []time.Duration
	deadline := time.Now().Add(window)
	for {
		if err := o.rpc("probe " + n.Name); err == nil {
			start := time.Now()
			err := n.Probe()
			pw.Sent++
			if err != nil {
				pw.Failures++
			} else {
				lat = append(lat, time.Since(start))
			}
		}
		if !time.Now().Before(deadline) {
			break
		}
		select {
		case <-time.After(o.cfg.ProbeInterval):
		case <-o.closed:
			pw.P99 = quantile(lat, 0.99)
			return pw
		}
		if !time.Now().Before(deadline) {
			break
		}
	}
	pw.P99 = quantile(lat, 0.99)
	return pw
}

// quantile returns the q-quantile of samples (0 when empty).
func quantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(len(sorted))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// maxHold is the node window's effective hold bound.
func maxHold(n *Node) time.Duration {
	if n.Window == nil || n.Window.MaxHold <= 0 {
		return DefaultMaxHold
	}
	return n.Window.MaxHold
}

// journal appends to the rollout's write-ahead log (no-op when
// unjournaled). Records carry the rollout name for attribution.
func (o *Orchestrator) journal(rec Record) error {
	if o.cfg.Journal == nil {
		return nil
	}
	rec.Rollout = o.cfg.Name
	return o.cfg.Journal.Append(rec)
}

// planBatches slices nodes into canary-first batches: the first batch
// has canary nodes, each next batch grows by growth (capped at
// maxBatch; 0 = uncapped). Within a batch VIP groups are disjoint —
// two nodes sharing a VIP are never drained concurrently — so same-VIP
// peers are deferred to later batches.
func planBatches(nodes []*Node, canary, growth, maxBatch int) [][]*Node {
	var batches [][]*Node
	remaining := append([]*Node(nil), nodes...)
	size := canary
	if size < 1 {
		size = 1
	}
	for len(remaining) > 0 {
		take := size
		if maxBatch > 0 && take > maxBatch {
			take = maxBatch
		}
		var batch, deferred []*Node
		used := map[string]bool{}
		for _, n := range remaining {
			if len(batch) < take && (n.VIP == "" || !used[n.VIP]) {
				batch = append(batch, n)
				used[n.VIP] = true
			} else {
				deferred = append(deferred, n)
			}
		}
		batches = append(batches, batch)
		remaining = deferred
		if growth < 2 {
			growth = 2
		}
		size *= growth
	}
	return batches
}

func pauseReason(d Decision, verdicts []NodeVerdict) string {
	for _, v := range verdicts {
		if v.Decision == d && v.Reason != "" {
			return fmt.Sprintf("%s: %s (%s)", d, v.Node, v.Reason)
		}
	}
	return d.String()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
