package fleet

import (
	"errors"
	"testing"
	"time"
)

// TestCanaryWindowUnarmed pins the pass-through contract: with no
// rollout in progress the gate never blocks a restart.
func TestCanaryWindowUnarmed(t *testing.T) {
	w := NewCanaryWindow(0)
	done := make(chan error, 1)
	go func() { done <- w.Gate() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("unarmed gate: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("unarmed gate blocked")
	}
}

// TestCanaryWindowPromote: an armed window blocks the gate until the
// orchestrator delivers nil, then passes.
func TestCanaryWindowPromote(t *testing.T) {
	w := NewCanaryWindow(5 * time.Second)
	entered, verdict := w.arm()
	done := make(chan error, 1)
	go func() { done <- w.Gate() }()
	select {
	case <-entered:
	case <-time.After(time.Second):
		t.Fatal("gate never signalled entry")
	}
	select {
	case <-done:
		t.Fatal("gate passed before verdict")
	case <-time.After(20 * time.Millisecond):
	}
	verdict <- nil
	if err := <-done; err != nil {
		t.Fatalf("promote verdict: %v", err)
	}
}

// TestCanaryWindowRollback: an error verdict surfaces from the gate
// (failing readiness → drain-undo on the real path).
func TestCanaryWindowRollback(t *testing.T) {
	w := NewCanaryWindow(5 * time.Second)
	entered, verdict := w.arm()
	done := make(chan error, 1)
	go func() { done <- w.Gate() }()
	<-entered
	verdict <- ErrGateRejected
	if err := <-done; !errors.Is(err, ErrGateRejected) {
		t.Fatalf("gate returned %v, want ErrGateRejected", err)
	}
}

// TestCanaryWindowMaxHold: an abandoned canary (operator dead or
// partitioned, no verdict ever arrives) self-rolls-back after MaxHold.
func TestCanaryWindowMaxHold(t *testing.T) {
	w := NewCanaryWindow(30 * time.Millisecond)
	w.arm()
	start := time.Now()
	err := w.Gate()
	if !errors.Is(err, ErrOperatorLost) {
		t.Fatalf("abandoned gate returned %v, want ErrOperatorLost", err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("gate gave up before MaxHold")
	}
}

// TestCanaryWindowOneShot: the window's entry is consumed by the first
// Gate call; a second call (a slot-level retry of a rejected hand-off)
// must NOT be silently waved through while armed — it waits for a fresh
// arm cycle's verdict or self-rolls-back. This is the invariant behind
// ProxyNode forcing AbortRetries off.
func TestCanaryWindowOneShot(t *testing.T) {
	w := NewCanaryWindow(20 * time.Millisecond)
	_, verdict := w.arm()
	verdict <- nil // buffered: deliver before the gate runs
	if err := w.Gate(); err != nil {
		t.Fatalf("first gate: %v", err)
	}
	// Entry consumed: a second Gate call on the same arm cycle (what a
	// slot-level hand-off retry would do) passes through instead of
	// re-entering a canary the orchestrator no longer tracks. ProxyNode
	// disables slot retries so this degenerate pass-through is never a
	// promotion path for a rejected build.
	if err := w.Gate(); err != nil {
		t.Fatalf("second gate after consumption: %v", err)
	}
	w.disarm()
}
