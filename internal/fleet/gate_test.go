package fleet

import (
	"strings"
	"testing"
	"time"

	"zdr/internal/core"
)

func delta(baseReq, baseErr, req, errs int64) core.HealthDelta {
	before := map[string]int64{"edge.http.requests": baseReq, "edge.http.errors.no_origin": baseErr}
	after := map[string]int64{"edge.http.requests": baseReq + req, "edge.http.errors.no_origin": baseErr + errs}
	return core.HealthDeltaBetween(before, after, []string{"edge.http.requests"}, []string{"edge.http.errors.no_origin"})
}

// TestEvalNodeCanaryOfOne pins the smallest possible rollout: a single
// canary node both evaluates and aggregates alone — a batch of one is a
// complete gate, not a degenerate case.
func TestEvalNodeCanaryOfOne(t *testing.T) {
	v := evalNode(GateConfig{}, "n1", delta(1000, 0, 500, 0), ProbeWindow{}, ProbeWindow{Sent: 10}, TelemetryWindow{})
	if v.Decision != Promote {
		t.Fatalf("healthy canary of one: %s (%s)", v.Decision, v.Reason)
	}
	if got := aggregate([]NodeVerdict{v}); got != Promote {
		t.Fatalf("aggregate of one promote = %s", got)
	}
	bad := evalNode(GateConfig{}, "n1", delta(1000, 0, 500, 100), ProbeWindow{}, ProbeWindow{}, TelemetryWindow{})
	if bad.Decision != Rollback {
		t.Fatalf("20%% error canary of one: %s", bad.Decision)
	}
	if got := aggregate([]NodeVerdict{bad}); got != Rollback {
		t.Fatalf("aggregate of one rollback = %s", got)
	}
}

// TestEvalNodeErrorRateDelta: the counter channel compares the window's
// error rate against the node's OWN baseline, so a node that was already
// erroring at 1% before the release does not trip the gate at 1% after.
func TestEvalNodeErrorRateDelta(t *testing.T) {
	// Baseline 1% errors, window 1% errors: delta ~0, promote.
	v := evalNode(GateConfig{}, "n1", delta(1000, 10, 1000, 10), ProbeWindow{}, ProbeWindow{}, TelemetryWindow{})
	if v.Decision != Promote {
		t.Fatalf("unchanged error rate: %s (%s)", v.Decision, v.Reason)
	}
	// Baseline 0%, window 5%: delta 0.05 > default 0.01, rollback.
	v = evalNode(GateConfig{}, "n1", delta(1000, 0, 1000, 50), ProbeWindow{}, ProbeWindow{}, TelemetryWindow{})
	if v.Decision != Rollback {
		t.Fatalf("5%% error jump: %s", v.Decision)
	}
	if !strings.Contains(v.Reason, "error rate") {
		t.Fatalf("reason %q does not name the failing channel", v.Reason)
	}
}

// TestEvalNodeMixedBatch: one provably bad node condemns the batch even
// when its peers are healthy — nodes in a batch run the same build.
func TestEvalNodeMixedBatch(t *testing.T) {
	verdicts := []NodeVerdict{
		evalNode(GateConfig{}, "n1", delta(100, 0, 200, 0), ProbeWindow{}, ProbeWindow{Sent: 5}, TelemetryWindow{}),
		evalNode(GateConfig{}, "n2", delta(100, 0, 200, 40), ProbeWindow{}, ProbeWindow{Sent: 5}, TelemetryWindow{}),
		evalNode(GateConfig{}, "n3", delta(100, 0, 200, 0), ProbeWindow{}, ProbeWindow{Sent: 5}, TelemetryWindow{}),
	}
	if verdicts[0].Decision != Promote || verdicts[2].Decision != Promote {
		t.Fatalf("healthy peers voted %s/%s", verdicts[0].Decision, verdicts[2].Decision)
	}
	if verdicts[1].Decision != Rollback {
		t.Fatalf("bad node voted %s", verdicts[1].Decision)
	}
	if got := aggregate(verdicts); got != Rollback {
		t.Fatalf("mixed batch aggregated to %s, want rollback", got)
	}
}

// TestEvalNodeInconclusive: both channels silent (no traffic, no
// probes) → Pause. The gate cannot tell a healthy idle node from a
// black hole, so promotion needs a human.
func TestEvalNodeInconclusive(t *testing.T) {
	v := evalNode(GateConfig{}, "n1", delta(1000, 5, 0, 0), ProbeWindow{}, ProbeWindow{}, TelemetryWindow{})
	if v.Decision != Pause {
		t.Fatalf("silent node: %s, want pause", v.Decision)
	}
	// Probes alone rescue an idle node: no counter traffic but clean
	// probes promote.
	v = evalNode(GateConfig{}, "n1", delta(1000, 5, 0, 0), ProbeWindow{}, ProbeWindow{Sent: 20}, TelemetryWindow{})
	if v.Decision != Promote {
		t.Fatalf("idle node with clean probes: %s (%s)", v.Decision, v.Reason)
	}
	mixed := []NodeVerdict{
		evalNode(GateConfig{}, "a", delta(100, 0, 100, 0), ProbeWindow{}, ProbeWindow{Sent: 5}, TelemetryWindow{}),
		evalNode(GateConfig{}, "b", delta(100, 0, 0, 0), ProbeWindow{}, ProbeWindow{}, TelemetryWindow{}),
	}
	if got := aggregate(mixed); got != Pause {
		t.Fatalf("promote+pause batch aggregated to %s, want pause", got)
	}
}

// TestEvalNodeAwaitingReady: the gate is evaluated precisely while the
// node is committed-awaiting-ready — that phase is the canary window,
// not an error state. A verdict must still be computable from whatever
// the channels saw.
func TestEvalNodeAwaitingReady(t *testing.T) {
	// The node entered its window and served: counters moved. Nothing
	// about the phase blocks evaluation.
	v := evalNode(GateConfig{}, "n1", delta(500, 0, 300, 1), ProbeWindow{}, ProbeWindow{Sent: 8, Failures: 0}, TelemetryWindow{})
	if v.Decision != Promote {
		t.Fatalf("awaiting-ready node with healthy window: %s (%s)", v.Decision, v.Reason)
	}
	// Same phase, but the window shows the new build failing probes.
	v = evalNode(GateConfig{}, "n1", delta(500, 0, 300, 0), ProbeWindow{}, ProbeWindow{Sent: 10, Failures: 9}, TelemetryWindow{})
	if v.Decision != Rollback {
		t.Fatalf("awaiting-ready node with failing probes: %s", v.Decision)
	}
}

// TestEvalNodeProbeLatency: probe p99 regression beyond MaxP99Factor
// rolls back even with clean counters.
func TestEvalNodeProbeLatency(t *testing.T) {
	g := GateConfig{MaxP99Factor: 3}
	base := ProbeWindow{Sent: 10, P99: 10 * time.Millisecond}
	v := evalNode(g, "n1", delta(100, 0, 100, 0), base, ProbeWindow{Sent: 10, P99: 20 * time.Millisecond}, TelemetryWindow{})
	if v.Decision != Promote {
		t.Fatalf("2x p99 under 3x factor: %s (%s)", v.Decision, v.Reason)
	}
	v = evalNode(g, "n1", delta(100, 0, 100, 0), base, ProbeWindow{Sent: 10, P99: 100 * time.Millisecond}, TelemetryWindow{})
	if v.Decision != Rollback {
		t.Fatalf("10x p99: %s", v.Decision)
	}
}

// TestEvalNodeMinWindowRequests: a trickle below MinWindowRequests
// abstains the counter channel instead of gating on noise.
func TestEvalNodeMinWindowRequests(t *testing.T) {
	g := GateConfig{MinWindowRequests: 100}
	// 2 requests, 1 error — a 50% "error rate" from two samples. The
	// counter channel abstains; clean probes promote.
	v := evalNode(g, "n1", delta(1000, 0, 2, 1), ProbeWindow{}, ProbeWindow{Sent: 10}, TelemetryWindow{})
	if v.Decision != Promote {
		t.Fatalf("sub-threshold window gated: %s (%s)", v.Decision, v.Reason)
	}
	// Without probes the node is inconclusive → pause, not rollback.
	v = evalNode(g, "n1", delta(1000, 0, 2, 1), ProbeWindow{}, ProbeWindow{}, TelemetryWindow{})
	if v.Decision != Pause {
		t.Fatalf("sub-threshold window without probes: %s, want pause", v.Decision)
	}
}

// TestGateConfigValidate rejects nonsense latency factors.
func TestGateConfigValidate(t *testing.T) {
	if err := (GateConfig{MaxP99Factor: 0.5}).Validate(); err == nil {
		t.Fatal("factor 0.5 accepted")
	}
	if err := (GateConfig{MaxP99Factor: 0}).Validate(); err != nil {
		t.Fatalf("disabled factor rejected: %v", err)
	}
	if err := (GateConfig{MaxP99Factor: 2}).Validate(); err != nil {
		t.Fatalf("factor 2 rejected: %v", err)
	}
}

// TestAggregateEmpty: an empty batch promotes vacuously.
func TestAggregateEmpty(t *testing.T) {
	if got := aggregate(nil); got != Promote {
		t.Fatalf("empty batch = %s", got)
	}
}

// TestDecisionString pins the wire names the journal and admin JSON use.
func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{Promote: "promote", Pause: "pause", Rollback: "rollback"} {
		if d.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(d), d.String(), want)
		}
	}
}
