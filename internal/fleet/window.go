package fleet

import (
	"errors"
	"sync"
	"time"
)

// ErrOperatorLost is returned by a canary window's Gate when no verdict
// arrived within MaxHold: the orchestrator crashed, was partitioned away,
// or simply forgot the node. The readiness gate failing makes drain-undo
// unwind the hand-off, so an abandoned canary self-rolls-back to the old
// generation instead of serving an unjudged build forever.
var ErrOperatorLost = errors.New("fleet: no gate verdict before MaxHold, self-rolling-back")

// DefaultMaxHold bounds how long an armed canary window waits for the
// orchestrator's verdict before self-rolling-back.
const DefaultMaxHold = 30 * time.Second

// CanaryWindow is the synchronization point between the orchestrator and
// one node's restart: installed as the proxy's ReadyGate (via the slot's
// Build closure), it turns the drain-undo protocol's committed-awaiting-
// ready state into a health-gated canary.
//
// Unarmed (no rollout in progress), Gate passes immediately and restarts
// behave exactly as before. Armed by the orchestrator, Gate blocks the
// new generation's READY frame — the node serves live traffic while the
// old generation retains its FDs as an instant rollback — until the
// orchestrator delivers a verdict: nil promotes (READY is sent, the old
// generation drains), an error rolls back (drain-undo re-arms the old
// generation with zero failed requests).
type CanaryWindow struct {
	// MaxHold bounds the wait for a verdict; zero means DefaultMaxHold.
	// Must stay below the sender's TakeoverReadyTimeout, so the receiver
	// side always resolves the window before the sender's lease expires.
	MaxHold time.Duration

	mu      sync.Mutex
	armed   bool
	entered chan struct{}
	verdict chan error
}

// NewCanaryWindow returns a window with the given hold bound (0 =
// DefaultMaxHold).
func NewCanaryWindow(maxHold time.Duration) *CanaryWindow {
	return &CanaryWindow{MaxHold: maxHold}
}

// Gate implements the proxy ReadyGate contract. Install as
// proxy.Config.ReadyGate on every generation the slot builds.
func (w *CanaryWindow) Gate() error {
	w.mu.Lock()
	if !w.armed || w.entered == nil {
		w.mu.Unlock()
		return nil
	}
	entered, verdict := w.entered, w.verdict
	w.entered = nil // consumed: one canary per arm
	w.mu.Unlock()
	close(entered)
	hold := w.MaxHold
	if hold <= 0 {
		hold = DefaultMaxHold
	}
	select {
	case err := <-verdict:
		return err
	case <-time.After(hold):
		return ErrOperatorLost
	}
}

// arm prepares the window for one canary restart. It returns the channel
// closed when the node enters its canary (the restart committed and the
// gate is holding) and the channel the orchestrator delivers the verdict
// on (buffered: delivery never blocks, even to a node that already
// self-rolled-back).
func (w *CanaryWindow) arm() (entered <-chan struct{}, verdict chan<- error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.armed = true
	w.entered = make(chan struct{})
	w.verdict = make(chan error, 1)
	return w.entered, w.verdict
}

// disarm returns the window to pass-through behaviour.
func (w *CanaryWindow) disarm() {
	w.mu.Lock()
	w.armed = false
	w.entered = nil
	w.verdict = nil
	w.mu.Unlock()
}
