package fleet

import (
	"errors"
	"testing"
)

// TestFenceConflict: two rollouts over overlapping VIP groups cannot
// both hold the fence — the second is refused with the contended VIP
// named.
func TestFenceConflict(t *testing.T) {
	f := NewFence()
	if err := f.Acquire("r1", []string{"vip-a", "vip-b"}); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	err := f.Acquire("r2", []string{"vip-b", "vip-c"})
	if err == nil {
		t.Fatal("overlapping acquire succeeded")
	}
	var fe *ErrFenced
	if !errors.As(err, &fe) {
		t.Fatalf("error type %T, want *ErrFenced", err)
	}
	if fe.VIP != "vip-b" || fe.Holder != "r1" {
		t.Fatalf("fenced on %q by %q, want vip-b by r1", fe.VIP, fe.Holder)
	}
}

// TestFenceAllOrNothing: a refused acquire claims nothing, so the
// non-contended VIPs stay free for others.
func TestFenceAllOrNothing(t *testing.T) {
	f := NewFence()
	f.Acquire("r1", []string{"vip-b"})
	if err := f.Acquire("r2", []string{"vip-a", "vip-b"}); err == nil {
		t.Fatal("contended acquire succeeded")
	}
	if h := f.Holder("vip-a"); h != "" {
		t.Fatalf("vip-a leaked to %q on a failed acquire", h)
	}
	if err := f.Acquire("r3", []string{"vip-a"}); err != nil {
		t.Fatalf("vip-a should be free: %v", err)
	}
}

// TestFenceReacquireAndRelease: re-acquiring held VIPs (crash resume)
// is a no-op; Release frees everything the rollout held.
func TestFenceReacquireAndRelease(t *testing.T) {
	f := NewFence()
	f.Acquire("r1", []string{"vip-a", "vip-b"})
	if err := f.Acquire("r1", []string{"vip-a", "vip-b", "vip-c"}); err != nil {
		t.Fatalf("same-rollout reacquire: %v", err)
	}
	f.Release("r1")
	for _, v := range []string{"vip-a", "vip-b", "vip-c"} {
		if h := f.Holder(v); h != "" {
			t.Fatalf("%s still held by %q after release", v, h)
		}
	}
}

// TestFenceUnfencedNodes: empty VIPs ("" = node outside any group) are
// ignored, and a nil fence is a pass-through.
func TestFenceUnfencedNodes(t *testing.T) {
	f := NewFence()
	if err := f.Acquire("r1", []string{"", "", "vip-a"}); err != nil {
		t.Fatalf("acquire with empty vips: %v", err)
	}
	if err := f.Acquire("r2", []string{""}); err != nil {
		t.Fatalf("empty-only acquire fenced: %v", err)
	}
	var nilF *Fence
	if err := nilF.Acquire("r", []string{"v"}); err != nil {
		t.Fatalf("nil fence: %v", err)
	}
	nilF.Release("r")
}
