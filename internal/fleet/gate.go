package fleet

import (
	"fmt"
	"time"

	"zdr/internal/core"
)

// Decision is the outcome of one health-gate evaluation.
type Decision int

const (
	// Promote releases the canary window: the new generation sends READY
	// and the old generation drains.
	Promote Decision = iota
	// Pause stops the rollout for operator judgement. The batch that
	// triggered the pause is rolled back first (a paused canary must not
	// keep serving an unjudged build), but untouched nodes stay on the
	// old generation until a human calls Decide.
	Pause
	// Rollback unwinds the batch via drain-undo and pauses the rollout.
	Rollback
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Promote:
		return "promote"
	case Pause:
		return "pause"
	case Rollback:
		return "rollback"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// GateConfig parameterises the health gate. The gate compares each
// canary node's observation window against its own pre-release baseline
// (paper §6: disruption is measured as proxy errors + client-visible
// failures during the release, vs steady state).
type GateConfig struct {
	// MaxErrorRateDelta is the largest tolerated increase in the node's
	// error rate (errors/requests over the window) relative to its
	// baseline window. Exceeding it votes Rollback. Default 0.01 (one
	// extra failure per hundred requests).
	MaxErrorRateDelta float64
	// MaxP99Factor rolls a node back when its probe p99 latency exceeds
	// baseline-p99 × factor. Zero disables the latency term. Values in
	// (0,1] are rejected by Validate.
	MaxP99Factor float64
	// MaxProbeFailureRate is the largest tolerated probe-failure rate
	// during the canary window. Probes bypass the server's own counters,
	// so this channel still votes when the node is too broken to count.
	// Default 0.05.
	MaxProbeFailureRate float64
	// MinWindowRequests is the minimum request count (counter delta)
	// for the counter channel to be conclusive. Below it the counter
	// channel abstains. Default 1 (any traffic at all).
	MinWindowRequests int64
	// MaxDisruptionRate bounds the windowed disruption rate — terminal
	// ledger events (resets, timeouts, injected faults) per request over
	// the observation window, scraped from the node's own telemetry
	// surface. Exceeding it votes Rollback; zero disables the channel.
	// This is the §6 measure gated live: connection-level disruption, not
	// just HTTP error counters.
	MaxDisruptionRate float64
	// RequestKeys and ErrorKeys select the counters summed into the
	// request/error totals. Empty uses DefaultRequestKeys/DefaultErrorKeys.
	RequestKeys []string
	ErrorKeys   []string
}

func (g GateConfig) withDefaults() GateConfig {
	if g.MaxErrorRateDelta <= 0 {
		g.MaxErrorRateDelta = 0.01
	}
	if g.MaxProbeFailureRate <= 0 {
		g.MaxProbeFailureRate = 0.05
	}
	if g.MinWindowRequests <= 0 {
		g.MinWindowRequests = 1
	}
	if len(g.RequestKeys) == 0 {
		g.RequestKeys = DefaultRequestKeys
	}
	if len(g.ErrorKeys) == 0 {
		g.ErrorKeys = DefaultErrorKeys
	}
	return g
}

// Validate rejects configurations that cannot gate sanely.
func (g GateConfig) Validate() error {
	if g.MaxP99Factor != 0 && g.MaxP99Factor <= 1 {
		return fmt.Errorf("fleet: MaxP99Factor %v must be > 1 (or 0 to disable)", g.MaxP99Factor)
	}
	return nil
}

// ProbeWindow aggregates the orchestrator-side probes issued against one
// node during an observation window (the Prequal-style second health
// channel: probe latency and failures, independent of server counters).
type ProbeWindow struct {
	Sent     int           `json:"sent"`
	Failures int           `json:"failures"`
	P99      time.Duration `json:"p99_ns"`
}

// FailureRate is Failures/Sent (0 when no probes were sent).
func (p ProbeWindow) FailureRate() float64 {
	if p.Sent <= 0 {
		return 0
	}
	return float64(p.Failures) / float64(p.Sent)
}

// NodeVerdict is one node's gate evaluation: both health channels, the
// per-channel votes, and the aggregate decision.
type NodeVerdict struct {
	Node      string           `json:"node"`
	Decision  Decision         `json:"-"`
	Outcome   string           `json:"decision"`
	Reason    string           `json:"reason,omitempty"`
	Counters  core.HealthDelta `json:"counters"`
	Probes    ProbeWindow      `json:"probes"`
	Baseline  ProbeWindow      `json:"baseline_probes"`
	Telemetry TelemetryWindow  `json:"telemetry"`
}

// evalNode gates one canary node across three health channels: counters
// (windowed deltas vs the node's own baseline, guarded by
// core.HealthDeltaBetween), probes (failure rate + p99 vs the baseline
// window), and telemetry (windowed ledger disruption rate + data-plane
// histogram p99 from the node's own scrape). Channel semantics:
//
//   - any channel voting Rollback → Rollback (fail closed on badness)
//   - every channel inconclusive (no traffic, no probes, no scrape) →
//     Pause: the gate cannot tell a healthy idle node from a black hole,
//     so a human decides
//   - otherwise → Promote
//
// A node still in committed-awaiting-ready is exactly the state being
// gated — evaluation happens while the canary window holds — so phase is
// no obstacle to gating; it is the precondition.
func evalNode(g GateConfig, name string, delta core.HealthDelta, baseline, window ProbeWindow, tel TelemetryWindow) NodeVerdict {
	g = g.withDefaults()
	v := NodeVerdict{Node: name, Counters: delta, Probes: window, Baseline: baseline, Telemetry: tel}
	countersConclusive := !delta.Inconclusive && delta.Requests >= g.MinWindowRequests
	if countersConclusive && delta.ErrorRateDelta > g.MaxErrorRateDelta {
		v.Decision = Rollback
		v.Reason = fmt.Sprintf("error rate %.4f exceeds baseline %.4f by more than %.4f",
			delta.ErrorRate, delta.BaselineErrorRate, g.MaxErrorRateDelta)
		v.Outcome = v.Decision.String()
		return v
	}
	probesConclusive := window.Sent > 0
	if probesConclusive {
		if fr := window.FailureRate(); fr > g.MaxProbeFailureRate {
			v.Decision = Rollback
			v.Reason = fmt.Sprintf("probe failure rate %.4f exceeds %.4f", fr, g.MaxProbeFailureRate)
			v.Outcome = v.Decision.String()
			return v
		}
		if g.MaxP99Factor > 0 && baseline.P99 > 0 &&
			window.P99 > time.Duration(float64(baseline.P99)*g.MaxP99Factor) {
			v.Decision = Rollback
			v.Reason = fmt.Sprintf("probe p99 %s exceeds baseline %s x%.2f", window.P99, baseline.P99, g.MaxP99Factor)
			v.Outcome = v.Decision.String()
			return v
		}
	}
	telConclusive := tel.Scraped && tel.Requests >= g.MinWindowRequests
	if telConclusive {
		if g.MaxDisruptionRate > 0 {
			if dr := tel.DisruptionRate(); dr > g.MaxDisruptionRate {
				v.Decision = Rollback
				v.Reason = fmt.Sprintf("disruption rate %.4f (%d terminal / %d requests) exceeds %.4f",
					dr, tel.Terminal, tel.Requests, g.MaxDisruptionRate)
				v.Outcome = v.Decision.String()
				return v
			}
		}
		if g.MaxP99Factor > 0 && tel.BaselineP99 > 0 && tel.P99 > tel.BaselineP99*g.MaxP99Factor {
			v.Decision = Rollback
			v.Reason = fmt.Sprintf("data-plane p99 %.6fs exceeds baseline %.6fs x%.2f",
				tel.P99, tel.BaselineP99, g.MaxP99Factor)
			v.Outcome = v.Decision.String()
			return v
		}
	}
	if !countersConclusive && !probesConclusive && !telConclusive {
		v.Decision = Pause
		v.Reason = "inconclusive: no requests, no probes, and no telemetry in window"
		v.Outcome = v.Decision.String()
		return v
	}
	v.Decision = Promote
	v.Outcome = v.Decision.String()
	return v
}

// aggregate folds per-node verdicts into the batch decision: any
// Rollback rolls the whole batch back (nodes in a batch run the same
// build — one provably bad node condemns it); otherwise any Pause pauses;
// otherwise Promote. An empty batch promotes vacuously.
func aggregate(verdicts []NodeVerdict) Decision {
	out := Promote
	for _, v := range verdicts {
		switch v.Decision {
		case Rollback:
			return Rollback
		case Pause:
			out = Pause
		}
	}
	return out
}
