package fleet

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zdr/internal/core"
	"zdr/internal/faults"
	"zdr/internal/obs"
)

// fakeTarget simulates a node's restart state machine without sockets:
// Restart "commits", runs the canary window's gate (exactly where a real
// proxy generation runs its ReadyGate), and either promotes or unwinds.
type fakeTarget struct {
	name     string
	win      *CanaryWindow
	preGate  func() // runs before the commit + gate (simulates a slow hand-off)
	mu       sync.Mutex
	gen      int
	phase    string
	restarts int
	abortErr error // non-nil: fail before ever entering the window
}

func (f *fakeTarget) Name() string { return f.name }

func (f *fakeTarget) Restart(...core.RestartOption) error {
	f.mu.Lock()
	f.restarts++
	f.mu.Unlock()
	if f.abortErr != nil {
		return f.abortErr
	}
	if f.preGate != nil {
		f.preGate()
	}
	f.setPhase("committed-awaiting-ready")
	if err := f.win.Gate(); err != nil {
		f.setPhase("rolled-back")
		return fmt.Errorf("fake: hand-off undone: %w", err)
	}
	f.mu.Lock()
	f.gen++
	f.phase = ""
	f.mu.Unlock()
	return nil
}

func (f *fakeTarget) setPhase(p string) {
	f.mu.Lock()
	f.phase = p
	f.mu.Unlock()
}

func (f *fakeTarget) state() obs.SlotState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return obs.SlotState{Name: f.name, Generation: f.gen, Phase: f.phase}
}

func (f *fakeTarget) restartCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.restarts
}

// fakeCounters self-advance on every snapshot, so the orchestrator's
// before/after pair always brackets traffic. bad() controls whether the
// advance includes errors.
type fakeCounters struct {
	mu    sync.Mutex
	reqs  int64
	errs  int64
	bad   func() bool
	calls int
}

func (c *fakeCounters) snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls == 1 {
		// First snapshot: the node's error-free pre-rollout history — the
		// baseline the gate compares windows against.
		c.reqs += 1000
	} else {
		c.reqs += 200
		if c.bad != nil && c.bad() {
			c.errs += 40 // 20% of the window's traffic errors
		}
	}
	return map[string]int64{
		"edge.http.requests":         c.reqs,
		"edge.http.errors.no_origin": c.errs,
	}
}

// newFakeNode builds a gated fake node. bad (optional) makes its counter
// window erroring when it returns true.
func newFakeNode(name, vip string, bad func() bool) (*Node, *fakeTarget) {
	win := NewCanaryWindow(5 * time.Second)
	ft := &fakeTarget{name: name, win: win}
	ctrs := &fakeCounters{bad: bad}
	return &Node{
		Name:     name,
		VIP:      vip,
		Target:   ft,
		Counters: ctrs.snapshot,
		Probe:    func() error { return nil },
		Window:   win,
		State:    ft.state,
	}, ft
}

func fastConfig(name string) Config {
	return Config{
		Name:          name,
		CanarySize:    1,
		GrowthFactor:  2,
		HealthWindow:  30 * time.Millisecond,
		ProbeInterval: 5 * time.Millisecond,
		WindowTimeout: 5 * time.Second,
	}
}

func waitState(t *testing.T, o *Orchestrator, state string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if o.Status().State == state {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("orchestrator never reached %q (state %q, reason %q)",
		state, o.Status().State, o.Status().Reason)
}

// TestPlanBatchesCanaryGrowth pins the canary-first shape: a small
// first batch, then exponential growth up to the cap.
func TestPlanBatchesCanaryGrowth(t *testing.T) {
	var nodes []*Node
	for i := 0; i < 24; i++ {
		nodes = append(nodes, &Node{Name: fmt.Sprintf("n%02d", i)})
	}
	batches := planBatches(nodes, 2, 2, 8)
	var sizes []int
	for _, b := range batches {
		sizes = append(sizes, len(b))
	}
	want := []int{2, 4, 8, 8, 2}
	if len(sizes) != len(want) {
		t.Fatalf("batch sizes %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("batch sizes %v, want %v", sizes, want)
		}
	}
}

// TestPlanBatchesVIPDisjoint: two nodes sharing a VIP group are never
// co-scheduled — the batch planner defers the second to a later batch,
// the in-rollout form of the conflict fence.
func TestPlanBatchesVIPDisjoint(t *testing.T) {
	nodes := []*Node{
		{Name: "a1", VIP: "vip-a"},
		{Name: "a2", VIP: "vip-a"},
		{Name: "b1", VIP: "vip-b"},
		{Name: "a3", VIP: "vip-a"},
	}
	batches := planBatches(nodes, 4, 2, 0)
	for bi, b := range batches {
		seen := map[string]bool{}
		for _, n := range b {
			if n.VIP != "" && seen[n.VIP] {
				t.Fatalf("batch %d co-schedules two %s nodes: %v", bi, n.VIP, names(b))
			}
			seen[n.VIP] = true
		}
	}
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	if total != len(nodes) {
		t.Fatalf("planner lost nodes: %d of %d scheduled", total, len(nodes))
	}
	if len(batches) < 3 {
		t.Fatalf("three same-VIP nodes need >= 3 batches, got %d", len(batches))
	}
}

func names(b []*Node) []string {
	var out []string
	for _, n := range b {
		out = append(out, n.Name)
	}
	return out
}

// TestOrchestratorHappyPath: five healthy nodes promote through
// canary-first batches to a done rollout, with the journal recording
// every promotion.
func TestOrchestratorHappyPath(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "r.jsonl")
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var nodes []*Node
	var fts []*fakeTarget
	for i := 0; i < 5; i++ {
		n, ft := newFakeNode(fmt.Sprintf("n%d", i), "", nil)
		nodes = append(nodes, n)
		fts = append(fts, ft)
	}
	cfg := fastConfig("happy")
	cfg.Journal = j
	cfg.Trace = obs.NewTracer("test")
	o, err := New(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	st := o.Status()
	if st.State != StateDone {
		t.Fatalf("state %q, want done", st.State)
	}
	for i, ft := range fts {
		if ft.state().Generation != 1 {
			t.Fatalf("node %d generation %d, want 1", i, ft.state().Generation)
		}
	}
	recs, err := Replay(jpath)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range recs {
		counts[r.Kind]++
	}
	if counts[RecBegin] != 1 || counts[RecNodePromoted] != 5 || counts[RecDone] != 1 {
		t.Fatalf("journal counts %v", counts)
	}
	// Canary-first: batches of 1, 2, 2.
	if counts[RecBatchStart] != 3 {
		t.Fatalf("batch starts %d, want 3", counts[RecBatchStart])
	}
	// Span tree: one rollout root with batch children carrying gates.
	roots := obs.BuildTree(cfg.Trace.Finished())
	var sawGate bool
	obs.Walk(roots, func(n *obs.SpanNode) {
		if n.Name == obs.SpanRolloutGate {
			sawGate = true
		}
	})
	if !sawGate {
		t.Fatal("no rollout.gate span recorded")
	}
}

// TestOrchestratorBadCanaryPausesFleet: the canary batch fails its gate;
// the rollout rolls the canary back and auto-pauses with every other
// node still on the old generation.
func TestOrchestratorBadCanaryPausesFleet(t *testing.T) {
	var bad atomic.Bool
	bad.Store(true)
	var nodes []*Node
	var fts []*fakeTarget
	for i := 0; i < 4; i++ {
		var b func() bool
		if i == 0 {
			b = bad.Load // the canary (first node) errors
		}
		n, ft := newFakeNode(fmt.Sprintf("n%d", i), "", b)
		nodes = append(nodes, n)
		fts = append(fts, ft)
	}
	o, err := New(fastConfig("bad-canary"), nodes)
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- o.Run() }()
	waitState(t, o, StatePaused)
	st := o.Status()
	if st.GateOutcome != "rollback" {
		t.Fatalf("gate outcome %q, want rollback", st.GateOutcome)
	}
	if ph := fts[0].state().Phase; ph != "rolled-back" {
		t.Fatalf("canary phase %q, want rolled-back", ph)
	}
	if fts[0].state().Generation != 0 {
		t.Fatalf("canary promoted to gen %d despite gate", fts[0].state().Generation)
	}
	for i := 1; i < 4; i++ {
		if fts[i].restartCount() != 0 {
			t.Fatalf("node %d restarted while canary failed", i)
		}
	}
	if err := o.Decide(false); err != nil {
		t.Fatal(err)
	}
	if err := <-runDone; err != nil {
		t.Fatalf("run: %v", err)
	}
	if o.Status().State != StateAborted {
		t.Fatalf("state %q after abort", o.Status().State)
	}
}

// TestOrchestratorPauseResume: the operator fixes the build (the bad
// knob flips off) and resumes; the rolled-back canary is re-driven and
// the rollout completes.
func TestOrchestratorPauseResume(t *testing.T) {
	var bad atomic.Bool
	bad.Store(true)
	n0, ft0 := newFakeNode("n0", "", bad.Load)
	n1, ft1 := newFakeNode("n1", "", nil)
	o, err := New(fastConfig("pause-resume"), []*Node{n0, n1})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- o.Run() }()
	waitState(t, o, StatePaused)
	bad.Store(false) // "ship the fixed build"
	if err := o.Decide(true); err != nil {
		t.Fatal(err)
	}
	if err := <-runDone; err != nil {
		t.Fatalf("run after resume: %v", err)
	}
	if o.Status().State != StateDone {
		t.Fatalf("state %q, want done", o.Status().State)
	}
	if ft0.state().Generation != 1 || ft1.state().Generation != 1 {
		t.Fatalf("generations %d/%d, want 1/1", ft0.state().Generation, ft1.state().Generation)
	}
	if ft0.restartCount() != 2 {
		t.Fatalf("canary restarted %d times, want 2 (rollback then retry)", ft0.restartCount())
	}
}

// TestOrchestratorFenceRefusal: a rollout whose VIP set overlaps a held
// fence is refused before touching any node.
func TestOrchestratorFenceRefusal(t *testing.T) {
	fence := NewFence()
	if err := fence.Acquire("other-rollout", []string{"vip-a"}); err != nil {
		t.Fatal(err)
	}
	n, ft := newFakeNode("n0", "vip-a", nil)
	cfg := fastConfig("fenced")
	cfg.Fence = fence
	o, err := New(cfg, []*Node{n})
	if err != nil {
		t.Fatal(err)
	}
	err = o.Run()
	var fe *ErrFenced
	if !errors.As(err, &fe) {
		t.Fatalf("run returned %v, want *ErrFenced", err)
	}
	if ft.restartCount() != 0 {
		t.Fatal("fenced rollout restarted a node")
	}
}

// TestOrchestratorResumeSkipsPromoted: a resumed rollout never
// re-restarts nodes whose promotion was journaled.
func TestOrchestratorResumeSkipsPromoted(t *testing.T) {
	n0, ft0 := newFakeNode("n0", "", nil)
	n1, ft1 := newFakeNode("n1", "", nil)
	cfg := fastConfig("resumed")
	cfg.Resume = &Progress{
		Rollout:  "resumed",
		Nodes:    []string{"n0", "n1"},
		Promoted: map[string]bool{"n0": true},
	}
	o, err := New(cfg, []*Node{n0, n1})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Run(); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if ft0.restartCount() != 0 {
		t.Fatalf("promoted node restarted %d times on resume", ft0.restartCount())
	}
	if ft1.restartCount() != 1 {
		t.Fatalf("unpromoted node restarted %d times, want 1", ft1.restartCount())
	}
	if o.Status().State != StateDone {
		t.Fatalf("state %q", o.Status().State)
	}
}

// TestOrchestratorGateDuringAwaitingReady (the release-state edge case):
// the health window runs precisely while the canary is
// committed-awaiting-ready — probes observe that phase, and the gate
// still promotes on a healthy window.
func TestOrchestratorGateDuringAwaitingReady(t *testing.T) {
	win := NewCanaryWindow(5 * time.Second)
	ft := &fakeTarget{name: "n0", win: win}
	ctrs := &fakeCounters{}
	var sawAwaitingReady atomic.Bool
	node := &Node{
		Name:     "n0",
		Target:   ft,
		Counters: ctrs.snapshot,
		Probe: func() error {
			if ft.state().Phase == "committed-awaiting-ready" {
				sawAwaitingReady.Store(true)
			}
			return nil
		},
		Window: win,
		State:  ft.state,
	}
	o, err := New(fastConfig("awaiting-ready"), []*Node{node})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !sawAwaitingReady.Load() {
		t.Fatal("health window never observed committed-awaiting-ready — the gate did not run inside the canary window")
	}
	if ft.state().Generation != 1 {
		t.Fatalf("generation %d, want 1", ft.state().Generation)
	}
}

// TestOrchestratorUngated: the pre-gate release process promotes a bad
// build everywhere — kept as the §6 comparison arm, and as proof the
// gating is what blocks the disruption.
func TestOrchestratorUngated(t *testing.T) {
	alwaysBad := func() bool { return true }
	var nodes []*Node
	var fts []*fakeTarget
	for i := 0; i < 4; i++ {
		n, ft := newFakeNode(fmt.Sprintf("n%d", i), "", alwaysBad)
		n.Window = nil // ungated rollouts need no canary window
		nodes = append(nodes, n)
		fts = append(fts, ft)
	}
	cfg := fastConfig("ungated")
	cfg.Ungated = true
	o, err := New(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if o.Status().State != StateDone {
		t.Fatalf("state %q", o.Status().State)
	}
	for i, ft := range fts {
		if ft.state().Generation != 1 {
			t.Fatalf("node %d generation %d: ungated rollout must promote unconditionally", i, ft.state().Generation)
		}
	}
}

// TestOrchestratorPartitionedControlPlane: with the operator↔node
// channel severed before the rollout starts, no restart command gets
// through — the fleet stays untouched and the rollout pauses for a
// human.
func TestOrchestratorPartitionedControlPlane(t *testing.T) {
	in := faults.NewInjector(faults.Scenario{Seed: 1})
	in.SetPartitioned(true)
	n0, ft0 := newFakeNode("n0", "", nil)
	cfg := fastConfig("partitioned")
	cfg.Control = in
	o, err := New(cfg, []*Node{n0})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- o.Run() }()
	waitState(t, o, StatePaused)
	if ft0.restartCount() != 0 {
		t.Fatal("restart crossed a partitioned control plane")
	}
	if err := o.Decide(false); err != nil {
		t.Fatal(err)
	}
	if err := <-runDone; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// waitReason blocks until the paused rollout's reason contains want.
func waitReason(t *testing.T, o *Orchestrator, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := o.Status()
		if st.State == StatePaused && strings.Contains(st.Reason, want) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("orchestrator never paused with reason containing %q (state %q, reason %q)",
		want, o.Status().State, o.Status().Reason)
}

// TestOrchestratorLateWindowEntryRollsBack pins the window-timeout
// contract: a canary whose restart outlives WindowTimeout must NOT be
// silently promoted when it finally reaches its gate. The orchestrator
// pre-loads a rollback verdict instead of disarming, so the late Gate
// fails and drain-undo unwinds; and while that restart is still in
// flight, an operator resume must not re-drive the node concurrently.
func TestOrchestratorLateWindowEntryRollsBack(t *testing.T) {
	gateCh := make(chan struct{})
	n0, ft0 := newFakeNode("n0", "", nil)
	ft0.preGate = func() { <-gateCh }
	cfg := fastConfig("late-entry")
	cfg.WindowTimeout = 50 * time.Millisecond
	o, err := New(cfg, []*Node{n0})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- o.Run() }()
	waitReason(t, o, "timeout waiting for canary window")
	if ft0.state().Generation != 0 {
		t.Fatalf("timed-out canary promoted to gen %d", ft0.state().Generation)
	}
	// Resume while the first restart is still stuck pre-gate: the node
	// must be fenced off, not restarted a second time in parallel.
	if err := o.Decide(true); err != nil {
		t.Fatal(err)
	}
	waitReason(t, o, "previous restart still in flight")
	if got := ft0.restartCount(); got != 1 {
		t.Fatalf("stuck node restarted %d times, want 1 (no concurrent re-drive)", got)
	}
	// Release the stuck restart: its Gate must consume the pre-loaded
	// rollback verdict and unwind, never promote.
	close(gateCh)
	settleDeadline := time.Now().Add(5 * time.Second)
	for ft0.state().Phase != "rolled-back" {
		if !time.Now().Before(settleDeadline) {
			t.Fatalf("late canary never rolled back (phase %q, gen %d)",
				ft0.state().Phase, ft0.state().Generation)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if ft0.state().Generation != 0 {
		t.Fatalf("late canary gen %d after rollback, want 0", ft0.state().Generation)
	}
	// With the old restart resolved, a resume re-drives the node cleanly.
	if err := o.Decide(true); err != nil {
		t.Fatal(err)
	}
	if err := <-runDone; err != nil {
		t.Fatalf("run: %v", err)
	}
	if o.Status().State != StateDone {
		t.Fatalf("state %q, want done", o.Status().State)
	}
	if ft0.state().Generation != 1 {
		t.Fatalf("gen %d after clean re-drive, want 1", ft0.state().Generation)
	}
}

// TestOrchestratorWindowTimeoutPerCanary: WindowTimeout is a batch-wide
// absolute deadline every canary observes. With the old shared
// time.After channel the first timed-out canary consumed the only
// timer value and the second blocked forever.
func TestOrchestratorWindowTimeoutPerCanary(t *testing.T) {
	gateCh := make(chan struct{})
	var nodes []*Node
	var fts []*fakeTarget
	for i := 0; i < 2; i++ {
		n, ft := newFakeNode(fmt.Sprintf("n%d", i), "", nil)
		ft.preGate = func() { <-gateCh }
		nodes = append(nodes, n)
		fts = append(fts, ft)
	}
	cfg := fastConfig("slow-batch")
	cfg.CanarySize = 2
	cfg.WindowTimeout = 50 * time.Millisecond
	o, err := New(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- o.Run() }()
	waitState(t, o, StatePaused) // hangs here without the absolute deadline
	close(gateCh)                // both stuck restarts resolve via their queued rollbacks
	if err := o.Decide(false); err != nil {
		t.Fatal(err)
	}
	if err := <-runDone; err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, ft := range fts {
		if ft.state().Generation != 0 {
			t.Fatalf("node %d promoted to gen %d despite window timeout", i, ft.state().Generation)
		}
	}
}

// TestOrchestratorBaselineSnapshotDropAbstains: a dropped baseline
// snapshot must make the counter channel abstain, not judge the node's
// full cumulative history against a zero baseline. This node's lifetime
// error rate (50%) dwarfs MaxErrorRateDelta; only the missing-baseline
// guard keeps the healthy window from being spuriously rolled back.
func TestOrchestratorBaselineSnapshotDropAbstains(t *testing.T) {
	win := NewCanaryWindow(5 * time.Second)
	ft := &fakeTarget{name: "n0", win: win}
	var calls atomic.Int32
	node := &Node{
		Name:   "n0",
		Target: ft,
		Counters: func() map[string]int64 {
			if calls.Add(1) == 1 {
				return nil // baseline snapshot lost
			}
			return map[string]int64{
				"edge.http.requests":         10000,
				"edge.http.errors.no_origin": 5000,
			}
		},
		Probe:  func() error { return nil },
		Window: win,
		State:  ft.state,
	}
	o, err := New(fastConfig("no-baseline"), []*Node{node})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if o.Status().State != StateDone {
		t.Fatalf("state %q (reason %q): missing baseline must abstain, not roll back",
			o.Status().State, o.Status().Reason)
	}
	if ft.state().Generation != 1 {
		t.Fatalf("gen %d, want 1", ft.state().Generation)
	}
}

// TestDecideSingleFlight: each pause consumes exactly one decision — a
// second Decide cannot queue a stale value, and a decision left over
// from a resolved pause is discarded when the next pause begins.
func TestDecideSingleFlight(t *testing.T) {
	n, _ := newFakeNode("n0", "", nil)
	o, err := New(fastConfig("decide"), []*Node{n})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Decide(true); !errors.Is(err, ErrNotPaused) {
		t.Fatalf("Decide on idle rollout: %v, want ErrNotPaused", err)
	}
	o.setState(StatePaused, "test")
	if err := o.Decide(true); err != nil {
		t.Fatalf("first Decide: %v", err)
	}
	if err := o.Decide(true); !errors.Is(err, ErrDecidePending) {
		t.Fatalf("second Decide: %v, want ErrDecidePending", err)
	}
	// Entering a new pause discards the undelivered decision.
	o.pauseState("again")
	select {
	case <-o.decide:
		t.Fatal("stale decision survived pause entry")
	default:
	}
	o.Close()
	if err := o.Decide(true); !errors.Is(err, ErrClosed) {
		t.Fatalf("Decide after Close: %v, want ErrClosed", err)
	}
}

// TestOrchestratorUngatedRequiresNoWindow / gated requires windows.
func TestOrchestratorValidation(t *testing.T) {
	n := &Node{Name: "n0", Target: &fakeTarget{name: "n0"}}
	if _, err := New(fastConfig("v"), []*Node{n}); err == nil {
		t.Fatal("gated rollout accepted a windowless node")
	}
	if _, err := New(fastConfig("v"), nil); err == nil {
		t.Fatal("empty fleet accepted")
	}
	cfg := fastConfig("v")
	cfg.Gate.MaxP99Factor = 0.3
	if _, err := New(cfg, []*Node{n}); err == nil {
		t.Fatal("invalid gate config accepted")
	}
}
