package fleet

import (
	"fmt"
	"sort"
	"sync"
)

// ErrFenced reports a conflict-fence refusal: another rollout already
// holds one of the VIP groups this rollout needs. Draining two Origins
// that share a VIP simultaneously would leave the VIP's downstream-
// connection-reuse pool with no stable side, so overlapping rollouts are
// refused outright rather than interleaved. Test with errors.Is via
// fmt.Errorf wrapping.
type ErrFenced struct {
	VIP    string // the contended VIP group
	Holder string // the rollout holding it
}

func (e *ErrFenced) Error() string {
	return fmt.Sprintf("fleet: vip %q fenced by rollout %q", e.VIP, e.Holder)
}

// Fence serialises rollouts over VIP groups. A rollout acquires every
// VIP its nodes serve before touching any node — all or nothing, so two
// rollouts with overlapping VIP sets cannot both proceed (and cannot
// deadlock: failed acquisition releases everything).
type Fence struct {
	mu     sync.Mutex
	holder map[string]string // vip → rollout name
}

// NewFence returns an empty fence.
func NewFence() *Fence {
	return &Fence{holder: map[string]string{}}
}

// Acquire claims every vip for rollout. On conflict nothing is claimed
// and the error identifies the contended VIP and its holder. Empty vips
// ("" = unfenced node) are ignored. Re-acquiring a VIP already held by
// the same rollout is a no-op (resume after crash).
func (f *Fence) Acquire(rollout string, vips []string) error {
	if f == nil {
		return nil
	}
	uniq := map[string]bool{}
	for _, v := range vips {
		if v != "" {
			uniq[v] = true
		}
	}
	ordered := make([]string, 0, len(uniq))
	for v := range uniq {
		ordered = append(ordered, v)
	}
	sort.Strings(ordered)
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, v := range ordered {
		if h, held := f.holder[v]; held && h != rollout {
			return &ErrFenced{VIP: v, Holder: h}
		}
	}
	for _, v := range ordered {
		f.holder[v] = rollout
	}
	return nil
}

// Release drops every VIP held by rollout.
func (f *Fence) Release(rollout string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for v, h := range f.holder {
		if h == rollout {
			delete(f.holder, v)
		}
	}
}

// Holder reports which rollout holds vip ("" = unheld).
func (f *Fence) Holder(vip string) string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.holder[vip]
}
