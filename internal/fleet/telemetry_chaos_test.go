// Telemetry chaos: the acceptance scenario for the disruption-accounting
// pipeline. A 24-node fleet with per-node fault injectors and disruption
// ledgers is rolled out (gated) under live load while the injectors
// abort connections at random. Afterwards the fleet-merged
// TelemetryReport must reconcile EXACTLY: every injected fault appears
// as one attributed ledger event, nothing is unattributed, and the
// merged atomic histograms carry the fleet's latency distribution.
package fleet_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zdr/internal/core"
	"zdr/internal/disrupt"
	"zdr/internal/faults"
	"zdr/internal/fleet"
	"zdr/internal/metrics"
	"zdr/internal/proxy"
)

// telemetrySimNode is a simNode with the full telemetry surface wired:
// a per-node disruption ledger shared across generations and a per-node
// accept-path fault injector whose observer feeds the ledger.
type telemetrySimNode struct {
	name    string
	slot    *core.ProxySlot
	reg     *metrics.Registry
	win     *fleet.CanaryWindow
	led     *disrupt.Ledger
	inj     *faults.Injector
	node    *fleet.Node
	good    atomic.Bool
	webAddr string
}

func newTelemetrySimFleet(t *testing.T, n int, maxHold time.Duration) []*telemetrySimNode {
	t.Helper()
	dir := t.TempDir()
	sims := make([]*telemetrySimNode, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("edge-%02d", i)
		s := &telemetrySimNode{
			name: name,
			reg:  metrics.NewRegistry(),
			win:  fleet.NewCanaryWindow(maxHold),
			led:  disrupt.New(name, 512),
			inj: faults.NewInjector(faults.Scenario{
				Seed:        uint64(i + 1),
				AbortRate:   0.15,
				AbortMinOps: 1,
			}),
		}
		s.good.Store(true)
		gen := 0
		s.slot = &core.ProxySlot{
			SlotName:  name,
			Path:      filepath.Join(dir, name+".sock"),
			DrainWait: 5 * time.Millisecond,
			Build: func() *proxy.Proxy {
				gen++
				cfg := proxy.Config{
					Name:                 fmt.Sprintf("%s-g%d", name, gen),
					Role:                 proxy.RoleEdge,
					ReadyGate:            s.win.Gate,
					TakeoverReadyTimeout: 20 * time.Second,
					AcceptFaults:         s.inj,
					Ledger:               s.led,
					Generation:           gen,
				}
				if s.good.Load() {
					cfg.StaticContent = map[string][]byte{"/hello": []byte("hello from " + name)}
				}
				return proxy.New(cfg, s.reg)
			},
		}
		if err := s.slot.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.slot.Close)
		s.webAddr = s.slot.Current().Addr(proxy.VIPWeb)
		s.node = fleet.ProxyNode(fmt.Sprintf("vip-%02d", i), s.slot, s.reg, func() string { return s.webAddr }, "/hello", s.win)
		s.node.Disruption = s.led.Report
		sims[i] = s
	}
	return sims
}

// TestFleetChaosTelemetryAttribution rolls a good build across 24 nodes
// while every node's accept path randomly aborts connections, then
// demands exact books: injected == attributed, unattributed == 0.
func TestFleetChaosTelemetryAttribution(t *testing.T) {
	sims := newTelemetrySimFleet(t, 24, 10*time.Second)
	nodes := make([]*fleet.Node, len(sims))
	for i, s := range sims {
		nodes[i] = s.node
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, s := range sims {
		wg.Add(1)
		go func(s *telemetrySimNode) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				getHello(s.webAddr) // aborts are expected; outcome irrelevant
			}
		}(s)
	}
	time.Sleep(150 * time.Millisecond)

	// The gate must tolerate the injected chaos (it is background noise on
	// old AND new generation alike) while the telemetry channel watches.
	cfg := fleet.Config{
		Name:          "telemetry-chaos",
		CanarySize:    2,
		GrowthFactor:  2,
		HealthWindow:  300 * time.Millisecond,
		ProbeInterval: 20 * time.Millisecond,
		WindowTimeout: 10 * time.Second,
		Gate: fleet.GateConfig{
			MaxErrorRateDelta:   0.9,
			MaxProbeFailureRate: 0.95,
			MaxDisruptionRate:   0.9,
		},
	}
	o, err := fleet.New(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Run(); err != nil {
		t.Fatalf("rollout: %v (status %+v)", err, o.Status())
	}
	st := o.Status()
	if st.State != fleet.StateDone {
		t.Fatalf("rollout state %q (reason %q), want done", st.State, st.Reason)
	}

	// Live batch telemetry was collected for every batch, from scrapes.
	if len(st.Telemetry) == 0 {
		t.Fatal("no batch telemetry collected")
	}
	var batchRequests int64
	for _, bt := range st.Telemetry {
		if bt.ScrapedNodes != len(bt.Nodes) {
			t.Fatalf("batch %d scraped %d of %d nodes: %+v", bt.Batch, bt.ScrapedNodes, len(bt.Nodes), bt)
		}
		batchRequests += bt.Requests
	}
	if batchRequests == 0 {
		t.Fatal("batch telemetry windows saw no traffic")
	}

	close(stop)
	wg.Wait()
	// Join in-flight handlers so every late fault is recorded before the
	// books are audited.
	for _, s := range sims {
		s.slot.Close()
	}

	var injected int64
	for _, s := range sims {
		injected += int64(s.inj.InjectedTotal())
	}
	if injected == 0 {
		t.Fatal("chaos injected nothing; test is vacuous")
	}

	tele := &fleet.Telemetry{Nodes: nodes}
	rep := tele.Scrape()
	if rep.ScrapedNodes != len(sims) {
		t.Fatalf("scraped %d of %d nodes", rep.ScrapedNodes, len(sims))
	}
	if rep.Requests == 0 || rep.Latency.Count == 0 || rep.LatencyP99 <= 0 {
		t.Fatalf("fleet report missing traffic: requests=%d latency count=%d p99=%v",
			rep.Requests, rep.Latency.Count, rep.LatencyP99)
	}
	// The books: every injected fault is one attributed ledger event.
	if got := rep.Disruption.ByKind["fault"]; got != injected {
		t.Fatalf("ledger fault events = %d, injectors fired %d", got, injected)
	}
	if rep.Disruption.Unattributed != 0 {
		t.Fatalf("unattributed terminal events: %d", rep.Disruption.Unattributed)
	}
	var attributed int64
	for _, c := range rep.CausePhase {
		if strings.HasPrefix(c.Cause, "injected:") {
			attributed += c.Count
		}
	}
	if attributed != injected {
		t.Fatalf("cause-phase cells attribute %d of %d injected faults: %+v",
			attributed, injected, rep.CausePhase)
	}

	// The cross-generation phase stamp: after a promoted rollout every
	// ledger must sit at serving/2, not stuck on the old generation's
	// drain.
	for _, s := range sims {
		if phase, gen := s.led.Phase(); phase != "serving" || gen != 2 {
			t.Fatalf("%s ledger phase %s/%d after promote, want serving/2", s.name, phase, gen)
		}
	}
}
