package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Journal record kinds. The journal is the rollout's write-ahead log:
// every state transition is appended (and fsynced) BEFORE the transition
// executes, so a restarted operator can reconstruct where the rollout
// was and resume — or roll back — without guessing.
const (
	// RecBegin opens a rollout: name, node set, batch plan.
	RecBegin = "begin"
	// RecBatchStart marks a batch entering its canary window.
	RecBatchStart = "batch-start"
	// RecNodePromoted marks one node's verdict delivered as promote and
	// its window released. Promoted nodes are never revisited on resume.
	RecNodePromoted = "node-promoted"
	// RecNodeRolledBack marks one node rolled back via drain-undo.
	RecNodeRolledBack = "node-rolled-back"
	// RecGate records a batch's gate decision with its verdicts.
	RecGate = "gate"
	// RecPause marks the rollout paused awaiting operator Decide.
	RecPause = "pause"
	// RecResume marks an operator Decide(resume) or a journal recovery.
	RecResume = "resume"
	// RecDone closes the rollout with its terminal state.
	RecDone = "done"
)

// Record is one journal line.
type Record struct {
	Kind string `json:"kind"`
	// TS is the wall-clock append time (UnixNano).
	TS int64 `json:"ts"`
	// Rollout is the rollout name (on every record, so interleaved or
	// concatenated journals stay attributable).
	Rollout string `json:"rollout,omitempty"`
	// Nodes carries the full node list (RecBegin) or the batch members
	// (RecBatchStart).
	Nodes []string `json:"nodes,omitempty"`
	// Gens records each batch member's generation BEFORE its restart
	// (RecBatchStart). Recovery reconciles an in-flight node against it:
	// a higher observed generation means the verdict was delivered and
	// the promotion simply missed its journal record when the operator
	// died.
	Gens map[string]int `json:"gens,omitempty"`
	// Node is the subject of per-node records.
	Node string `json:"node,omitempty"`
	// Batch is the batch index (RecBatchStart, RecGate).
	Batch int `json:"batch,omitempty"`
	// Decision is the gate outcome (RecGate) or terminal state (RecDone).
	Decision string `json:"decision,omitempty"`
	// Verdicts carries the per-node gate evaluations (RecGate).
	Verdicts []NodeVerdict `json:"verdicts,omitempty"`
	// Reason annotates pauses, rollbacks, and recoveries.
	Reason string `json:"reason,omitempty"`
}

// Journal is an append-only, fsync-per-record JSONL file. Appends are
// serialised; a torn final line (operator died mid-write) is tolerated
// by Replay.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if needed) the journal at path for append.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f}, nil
}

// Append writes one record and fsyncs before returning, so the record
// survives an operator crash immediately after the call.
func (j *Journal) Append(rec Record) error {
	if j == nil {
		return nil
	}
	if rec.TS == 0 {
		rec.TS = time.Now().UnixNano()
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("fleet: journal closed")
	}
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Replay reads every complete record from a journal file. A truncated
// final line — the signature of a crash mid-append — is skipped, not an
// error: everything before it was fsynced and is trusted. A missing file
// replays empty.
func Replay(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail from a mid-write crash. Anything after it would
			// postdate the tear, and appends are serialised, so stop here.
			break
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, err
	}
	return recs, nil
}

// Progress is the resume point reconstructed from a journal.
type Progress struct {
	// Rollout is the journaled rollout's name ("" = empty journal).
	Rollout string
	// Nodes is the node list from RecBegin, in rollout order.
	Nodes []string
	// Promoted names nodes whose promotion was journaled; resume skips
	// them.
	Promoted map[string]bool
	// RolledBack names nodes whose rollback was journaled.
	RolledBack map[string]bool
	// InFlight names nodes of a batch that started but reached no
	// per-node terminal record — the batch the operator died inside.
	// These nodes are in an unknown state: possibly still holding a
	// canary window (which will self-roll-back via MaxHold), possibly
	// already promoted with the journal record lost, possibly back on
	// the old generation. Resume re-examines them against InFlightGens.
	InFlight []string
	// InFlightGens maps each in-flight node to its journaled pre-restart
	// generation (absent for journals predating the field).
	InFlightGens map[string]int
	// Paused reports whether the last gate decision left the rollout
	// paused with no subsequent resume.
	Paused bool
	// Done is the terminal state from RecDone ("" = rollout still open).
	Done string
}

// Recover folds journal records into a resume point.
func Recover(recs []Record) Progress {
	p := Progress{Promoted: map[string]bool{}, RolledBack: map[string]bool{}, InFlightGens: map[string]int{}}
	inflight := map[string]bool{}
	for _, r := range recs {
		switch r.Kind {
		case RecBegin:
			p.Rollout = r.Rollout
			p.Nodes = r.Nodes
		case RecBatchStart:
			for _, n := range r.Nodes {
				inflight[n] = true
				if g, ok := r.Gens[n]; ok {
					p.InFlightGens[n] = g
				}
			}
		case RecNodePromoted:
			p.Promoted[r.Node] = true
			delete(inflight, r.Node)
		case RecNodeRolledBack:
			p.RolledBack[r.Node] = true
			delete(inflight, r.Node)
		case RecPause:
			p.Paused = true
		case RecResume:
			p.Paused = false
		case RecDone:
			p.Done = r.Decision
		}
	}
	// Preserve rollout order for the re-examined batch.
	for _, n := range p.Nodes {
		if inflight[n] {
			p.InFlight = append(p.InFlight, n)
		}
	}
	for n := range p.InFlightGens {
		if !inflight[n] {
			delete(p.InFlightGens, n)
		}
	}
	return p
}
