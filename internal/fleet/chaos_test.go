// Fleet chaos: the acceptance scenarios for the release control plane.
// A 24-node simulated fleet of real Edge proxies (real sockets, real
// Socket Takeover hand-offs) is rolled out under live HTTP load:
//
//   - a bad build fails the canary batch's health gate → the rollout
//     auto-pauses, the canaries roll back via drain-undo with zero
//     transport-level client failures, and every other node never
//     leaves the old generation;
//   - the operator is killed mid-batch → abandoned canaries self-roll-
//     back via MaxHold, and a second operator resumes from the journal
//     and converges to the same terminal state as an uninterrupted run;
//   - the operator↔node control channel is partitioned mid-window → the
//     verdict is lost, the canary reclaims itself, the data plane never
//     drops a request.
package fleet_test

import (
	"bufio"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zdr/internal/core"
	"zdr/internal/faults"
	"zdr/internal/fleet"
	"zdr/internal/http1"
	"zdr/internal/metrics"
	"zdr/internal/obs"
	"zdr/internal/proxy"
)

// simNode is one fleet member: a real Edge ProxySlot whose generations
// share a registry (so gate windows bracket restarts) and install the
// node's canary window as their readiness gate.
type simNode struct {
	name string
	slot *core.ProxySlot
	reg  *metrics.Registry
	win  *fleet.CanaryWindow
	node *fleet.Node
	good atomic.Bool // whether the NEXT build serves content
	// webAddr is captured once after Start: the VIP address never
	// changes across takeovers (the very point of the protocol), and
	// querying the slot mid-hand-off is racy — the old generation's
	// listener set empties the moment its FDs transfer.
	webAddr string
}

func (s *simNode) addr() string { return s.webAddr }

// newSimFleet builds n Edge nodes. Good builds serve /hello from static
// content (the DSR path); a bad build omits it AND has no origins, so
// every request is answered 503 + edge.http.errors.no_origin — counter-
// visible badness with zero transport failures.
func newSimFleet(t *testing.T, n int, maxHold time.Duration) []*simNode {
	t.Helper()
	dir := t.TempDir()
	sims := make([]*simNode, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("edge-%02d", i)
		s := &simNode{name: name, reg: metrics.NewRegistry(), win: fleet.NewCanaryWindow(maxHold)}
		s.good.Store(true)
		gen := 0
		s.slot = &core.ProxySlot{
			SlotName:  name,
			Path:      filepath.Join(dir, name+".sock"),
			DrainWait: 5 * time.Millisecond,
			Build: func() *proxy.Proxy {
				gen++
				cfg := proxy.Config{
					Name: fmt.Sprintf("%s-g%d", name, gen),
					Role: proxy.RoleEdge,
					// The canary window IS the readiness gate: promote
					// releases READY, rollback triggers drain-undo.
					ReadyGate: s.win.Gate,
					// Sender-side lease: must outlast the orchestrator's
					// observation window plus MaxHold self-rollback.
					TakeoverReadyTimeout: 20 * time.Second,
				}
				if s.good.Load() {
					cfg.StaticContent = map[string][]byte{"/hello": []byte("hello from " + name)}
				}
				return proxy.New(cfg, s.reg)
			},
		}
		if err := s.slot.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.slot.Close)
		s.webAddr = s.slot.Current().Addr(proxy.VIPWeb)
		s.node = fleet.ProxyNode(fmt.Sprintf("vip-%02d", i), s.slot, s.reg, s.addr, "/hello", s.win)
		sims[i] = s
	}
	return sims
}

func fleetNodes(sims []*simNode) []*fleet.Node {
	out := make([]*fleet.Node, len(sims))
	for i, s := range sims {
		out[i] = s.node
	}
	return out
}

// loadCounts separates the two failure classes: transport failures
// (dial/read/reset — what Zero Downtime Release must keep at zero) and
// server errors (5xx — what a bad build produces and the gate detects).
type loadCounts struct {
	ok        atomic.Int64
	serverErr atomic.Int64
	transport atomic.Int64
	lastErr   atomic.Value
}

func getHello(addr string) (int, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return 0, fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/hello", nil, 0)); err != nil {
		return 0, fmt.Errorf("write: %w", err)
	}
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return 0, fmt.Errorf("read: %w", err)
	}
	if _, err := http1.ReadFullBody(resp.Body); err != nil {
		return 0, fmt.Errorf("body: %w", err)
	}
	return resp.StatusCode, nil
}

// hammer drives continuous GETs at one node until stop closes.
func hammer(s *simNode, counts *loadCounts, stop chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-stop:
			return
		default:
		}
		code, err := getHello(s.addr())
		switch {
		case err != nil:
			counts.transport.Add(1)
			counts.lastErr.Store(fmt.Errorf("%s: %w", s.name, err))
		case code == 200:
			counts.ok.Add(1)
		default:
			counts.serverErr.Add(1)
		}
	}
}

func waitOrchestratorState(t *testing.T, o *fleet.Orchestrator, state string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if o.Status().State == state {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := o.Status()
	t.Fatalf("orchestrator never reached %q (state %q, reason %q)", state, st.State, st.Reason)
}

// TestFleetChaosBadCanaryRollsBack is the headline acceptance scenario:
// a 24-node rollout of a broken build. The canary batch fails its gate,
// rolls back via drain-undo, the rollout pauses, and nobody else is
// touched — all under live client load with zero transport failures.
func TestFleetChaosBadCanaryRollsBack(t *testing.T) {
	sims := newSimFleet(t, 24, 10*time.Second)
	perNode := make([]*loadCounts, len(sims))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, s := range sims {
		perNode[i] = &loadCounts{}
		wg.Add(1)
		go hammer(s, perNode[i], stop, &wg)
	}
	// Let the baseline accumulate error-free history on every node.
	time.Sleep(150 * time.Millisecond)

	// Ship the bad build.
	for _, s := range sims {
		s.good.Store(false)
	}

	jpath := filepath.Join(t.TempDir(), "rollout.jsonl")
	j, err := fleet.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	tracer := obs.NewTracer("fleet-chaos")
	cfg := fleet.Config{
		Name:          "bad-build",
		CanarySize:    2,
		GrowthFactor:  2,
		HealthWindow:  300 * time.Millisecond,
		ProbeInterval: 20 * time.Millisecond,
		WindowTimeout: 10 * time.Second,
		Journal:       j,
		Trace:         tracer,
		Fence:         fleet.NewFence(),
	}
	o, err := fleet.New(cfg, fleetNodes(sims))
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- o.Run() }()
	waitOrchestratorState(t, o, fleet.StatePaused, 30*time.Second)

	st := o.Status()
	if st.GateOutcome != "rollback" {
		t.Fatalf("gate outcome %q, want rollback (reason %q)", st.GateOutcome, st.Reason)
	}
	canaries := map[string]bool{}
	if len(st.Batches) == 0 || len(st.Batches[0]) != 2 {
		t.Fatalf("canary batch %v, want 2 nodes", st.Batches)
	}
	for _, n := range st.Batches[0] {
		canaries[n] = true
	}
	for _, s := range sims {
		state := s.slot.State()
		if state.Generation != 1 {
			t.Fatalf("%s reached generation %d — nobody may be promoted", s.name, state.Generation)
		}
		if canaries[s.name] {
			if state.Phase != "rolled-back" {
				t.Fatalf("canary %s phase %q, want rolled-back", s.name, state.Phase)
			}
			// The rollback mechanism must be drain-undo, not a rebind.
			// The sender's undo settles asynchronously after its lease
			// breaks, so poll briefly.
			undoDeadline := time.Now().Add(3 * time.Second)
			for s.reg.Snapshot().Counters["proxy.takeover_undos"] != 1 && time.Now().Before(undoDeadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if got := s.reg.Snapshot().Counters["proxy.takeover_undos"]; got != 1 {
				t.Fatalf("canary %s takeover_undos = %d, want 1", s.name, got)
			}
		} else {
			if got := s.reg.Snapshot().Counters["proxy.takeover_commits"]; got != 0 {
				t.Fatalf("untouched node %s saw %d takeover commits", s.name, got)
			}
		}
	}

	// The paused rollout is then explicitly abandoned.
	if err := o.Decide(false); err != nil {
		t.Fatal(err)
	}
	if err := <-runDone; err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := o.Status().State; got != fleet.StateAborted {
		t.Fatalf("state %q after abort", got)
	}

	// Let the un-drained canaries serve a little longer, then audit load.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	for i, s := range sims {
		c := perNode[i]
		if tf := c.transport.Load(); tf != 0 {
			t.Fatalf("%s: %d transport-level failures (last: %v) — drain-undo must be invisible",
				s.name, tf, c.lastErr.Load())
		}
		if c.ok.Load() == 0 {
			t.Fatalf("%s: load loop starved", s.name)
		}
		if !canaries[s.name] {
			if se := c.serverErr.Load(); se != 0 {
				t.Fatalf("untouched node %s served %d errors — bad build leaked past the canary", s.name, se)
			}
		}
	}

	// Journal audit: both canaries rolled back, nobody promoted, and the
	// pause is on disk.
	recs, err := fleet.Replay(jpath)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range recs {
		counts[r.Kind]++
	}
	if counts[fleet.RecNodeRolledBack] != 2 || counts[fleet.RecNodePromoted] != 0 {
		t.Fatalf("journal counts %v: want 2 rollbacks, 0 promotions", counts)
	}
	if counts[fleet.RecPause] != 1 || counts[fleet.RecDone] != 1 {
		t.Fatalf("journal counts %v: want 1 pause, 1 done", counts)
	}

	// Trace audit: the rollout tree records the rollback.
	var sawRollback bool
	for _, r := range tracer.Finished() {
		if r.Name == obs.SpanRolloutRollback {
			sawRollback = true
		}
	}
	if !sawRollback {
		t.Fatal("no rollout.rollback span recorded")
	}
}

// TestFleetChaosOperatorCrashResume: the operator dies mid-batch; its
// abandoned canaries self-roll-back via MaxHold; a second operator
// recovers the journal, skips the promoted nodes, re-drives the rest,
// and lands in the same terminal state an uninterrupted rollout reaches
// — every node on generation 2, zero failed requests throughout.
func TestFleetChaosOperatorCrashResume(t *testing.T) {
	const fleetSize = 24
	sims := newSimFleet(t, fleetSize, 500*time.Millisecond)
	perNode := make([]*loadCounts, len(sims))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, s := range sims {
		perNode[i] = &loadCounts{}
		wg.Add(1)
		go hammer(s, perNode[i], stop, &wg)
	}
	time.Sleep(100 * time.Millisecond)

	jpath := filepath.Join(t.TempDir(), "rollout.jsonl")
	j, err := fleet.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleet.Config{
		Name:          "crash-resume",
		CanarySize:    1,
		GrowthFactor:  2,
		HealthWindow:  250 * time.Millisecond,
		ProbeInterval: 20 * time.Millisecond,
		WindowTimeout: 10 * time.Second,
		Journal:       j,
	}
	o1, err := fleet.New(cfg, fleetNodes(sims))
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- o1.Run() }()

	// Kill the operator once at least one node is promoted AND a later
	// batch is inside its canary window — mid-batch by construction.
	killDeadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(killDeadline) {
			t.Fatal("never caught the rollout mid-batch")
		}
		st := o1.Status()
		promoted := 0
		for _, n := range st.Nodes {
			if n.Promoted {
				promoted++
			}
		}
		inWindow := false
		for _, s := range sims {
			if s.slot.State().Phase == "committed-awaiting-ready" {
				inWindow = true
			}
		}
		if promoted >= 1 && inWindow {
			break
		}
		if st.State == fleet.StateDone {
			t.Fatal("rollout finished before the kill — shrink the windows")
		}
		time.Sleep(2 * time.Millisecond)
	}
	o1.Close() // simulated crash: no terminal journal record
	if err := <-runDone; err != fleet.ErrClosed {
		t.Fatalf("killed run returned %v, want ErrClosed", err)
	}
	j.Close()

	// Recover from the journal exactly as a fresh operator process would.
	recs, err := fleet.Replay(jpath)
	if err != nil {
		t.Fatal(err)
	}
	prog := fleet.Recover(recs)
	if prog.Rollout != "crash-resume" {
		t.Fatalf("recovered rollout %q", prog.Rollout)
	}
	if len(prog.Promoted) == 0 {
		t.Fatal("kill landed before any promotion — wanted mid-rollout")
	}
	if len(prog.Promoted) == fleetSize {
		t.Fatal("every node already promoted — kill landed too late")
	}

	j2, err := fleet.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	cfg2 := cfg
	cfg2.Journal = j2
	cfg2.Resume = &prog
	o2, err := fleet.New(cfg2, fleetNodes(sims))
	if err != nil {
		t.Fatal(err)
	}
	run2Done := make(chan error, 1)
	go func() { run2Done <- o2.Run() }()
	resumeDeadline := time.Now().Add(60 * time.Second)
wait2:
	for {
		select {
		case err := <-run2Done:
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			break wait2
		default:
		}
		if st := o2.Status(); st.State == fleet.StatePaused {
			t.Fatalf("resumed rollout paused: %q (gate %+v)", st.Reason, st.LastGate)
		}
		if time.Now().After(resumeDeadline) {
			st := o2.Status()
			t.Fatalf("resumed rollout never finished (state %q, reason %q)", st.State, st.Reason)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := o2.Status().State; got != fleet.StateDone {
		t.Fatalf("resumed rollout state %q, want done", got)
	}

	// Convergence: the terminal fleet state is indistinguishable from an
	// uninterrupted rollout — every node on generation 2, steady phase.
	for _, s := range sims {
		st := s.slot.State()
		if st.Generation != 2 {
			t.Fatalf("%s generation %d, want 2", s.name, st.Generation)
		}
		if st.Phase != "serving" {
			t.Fatalf("%s phase %q, want serving", s.name, st.Phase)
		}
	}

	close(stop)
	wg.Wait()
	for i, s := range sims {
		c := perNode[i]
		if tf := c.transport.Load(); tf != 0 {
			t.Fatalf("%s: %d transport failures across crash+resume (last: %v)",
				s.name, tf, c.lastErr.Load())
		}
		if se := c.serverErr.Load(); se != 0 {
			t.Fatalf("%s: %d server errors from a good build", s.name, se)
		}
	}
}

// TestFleetChaosControlPartitionMidWindow: the control channel is
// severed while canaries hold their windows. The verdict never arrives;
// MaxHold self-rollback reclaims the nodes; the rollout pauses; the data
// plane never failed a request. Control-plane loss must degrade the
// ROLLOUT, never the traffic.
func TestFleetChaosControlPartitionMidWindow(t *testing.T) {
	sims := newSimFleet(t, 4, 400*time.Millisecond)
	perNode := make([]*loadCounts, len(sims))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, s := range sims {
		perNode[i] = &loadCounts{}
		wg.Add(1)
		go hammer(s, perNode[i], stop, &wg)
	}
	time.Sleep(100 * time.Millisecond)

	in := faults.NewInjector(faults.Scenario{Seed: 7})
	cfg := fleet.Config{
		Name:          "partition",
		CanarySize:    1,
		HealthWindow:  300 * time.Millisecond,
		ProbeInterval: 20 * time.Millisecond,
		WindowTimeout: 10 * time.Second,
		Control:       in,
	}
	o, err := fleet.New(cfg, fleetNodes(sims))
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- o.Run() }()

	// Sever the control plane the moment the canary enters its window.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("canary never entered its window")
		}
		entered := false
		for _, s := range sims {
			if s.slot.State().Phase == "committed-awaiting-ready" {
				entered = true
			}
		}
		if entered {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	in.SetPartitioned(true)

	waitOrchestratorState(t, o, fleet.StatePaused, 30*time.Second)
	if in.Injected(faults.OpDropRPC) == 0 {
		t.Fatal("partition never dropped an RPC")
	}

	// The abandoned canary reclaimed itself: old generation serving, no
	// promotion anywhere.
	rolledBack := 0
	for _, s := range sims {
		st := s.slot.State()
		if st.Generation != 1 {
			t.Fatalf("%s generation %d under a partitioned control plane", s.name, st.Generation)
		}
		if st.Phase == "rolled-back" {
			rolledBack++
			// The sender's undo settles asynchronously; poll briefly.
			undoDeadline := time.Now().Add(3 * time.Second)
			for s.reg.Snapshot().Counters["proxy.takeover_undos"] != 1 && time.Now().Before(undoDeadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if got := s.reg.Snapshot().Counters["proxy.takeover_undos"]; got != 1 {
				t.Fatalf("%s takeover_undos = %d, want 1", s.name, got)
			}
		}
	}
	if rolledBack == 0 {
		t.Fatal("no node self-rolled-back after the partition")
	}

	// Heal the partition and abandon the rollout cleanly.
	in.SetPartitioned(false)
	if err := o.Decide(false); err != nil {
		t.Fatal(err)
	}
	if err := <-runDone; err != nil {
		t.Fatalf("run: %v", err)
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	for i, s := range sims {
		c := perNode[i]
		if tf := c.transport.Load(); tf != 0 {
			t.Fatalf("%s: %d transport failures (last: %v) — partition hit the data plane",
				s.name, tf, c.lastErr.Load())
		}
		if se := c.serverErr.Load(); se != 0 {
			t.Fatalf("%s: %d server errors from a good build", s.name, se)
		}
	}
}
