package netx

import (
	"bytes"
	"net"
	"syscall"
	"testing"
	"time"
)

func TestSocketPairRoundTrip(t *testing.T) {
	a, b, err := SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	msg := []byte("hello")
	if _, err := a.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := b.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], msg) {
		t.Fatalf("got %q", buf[:n])
	}
}

func TestWriteFDsTooMany(t *testing.T) {
	a, b, err := SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	fds := make([]int, 129)
	if err := WriteFDs(a, []byte("x"), fds); err == nil {
		t.Fatal("expected error for >128 fds")
	}
}

func TestReadFDsNoControlData(t *testing.T) {
	a, b, err := SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	if err := WriteFDs(a, []byte("plain"), nil); err != nil {
		t.Fatal(err)
	}
	data, fds, err := ReadFDs(b, make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "plain" || fds != nil {
		t.Fatalf("data=%q fds=%v", data, fds)
	}
}

// TestPassTCPListenerFD passes a live TCP listener's FD across a socketpair
// and accepts a connection on the reconstructed listener — the essence of
// Socket Takeover.
func TestPassTCPListenerFD(t *testing.T) {
	ln, err := ListenTCPReusePort("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	fd, err := ListenerFD(ln)
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	if err := WriteFDs(a, []byte("takeover"), []int{fd}); err != nil {
		t.Fatal(err)
	}
	data, fds, err := ReadFDs(b, make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "takeover" || len(fds) != 1 {
		t.Fatalf("data=%q fds=%v", data, fds)
	}
	ln2, err := ListenerFromFD(fds[0], "received")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()

	// "Old instance" closes its original FD copy; the dup from the message
	// keeps the socket alive — the paper's core claim: the listening socket
	// is never closed.
	ln.Close()

	done := make(chan error, 1)
	go func() {
		c, err := ln2.Accept()
		if err != nil {
			done <- err
			return
		}
		c.Close()
		done <- nil
	}()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial after original listener closed: %v", err)
	}
	c.Close()
	if err := <-done; err != nil {
		t.Fatalf("accept on reconstructed listener: %v", err)
	}
}

// TestPassUDPFD passes a UDP socket FD and receives a datagram through the
// reconstructed conn.
func TestPassUDPFD(t *testing.T) {
	pc, err := ListenUDPReusePort("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	addr := pc.LocalAddr().String()

	fd, err := PacketConnFD(pc)
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	if err := WriteFDs(a, []byte("udp"), []int{fd}); err != nil {
		t.Fatal(err)
	}
	_, fds, err := ReadFDs(b, make([]byte, 16))
	if err != nil || len(fds) != 1 {
		t.Fatalf("fds=%v err=%v", fds, err)
	}
	pc2, err := PacketConnFromFD(fds[0], "received-udp")
	if err != nil {
		t.Fatal(err)
	}
	defer pc2.Close()
	pc.Close() // old instance's handle gone; socket must stay alive

	client, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	pc2.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	n, _, err := pc2.ReadFromUDP(buf)
	if err != nil {
		t.Fatalf("read on reconstructed udp socket: %v", err)
	}
	if string(buf[:n]) != "ping" {
		t.Fatalf("got %q", buf[:n])
	}
}

// TestPassMultipleFDs sends several listener FDs in one message, as the
// takeover protocol does for all VIP sockets at once.
func TestPassMultipleFDs(t *testing.T) {
	const n = 5
	var lns []*net.TCPListener
	var fds []int
	for i := 0; i < n; i++ {
		ln, err := ListenTCPReusePort("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		lns = append(lns, ln)
		fd, err := ListenerFD(ln)
		if err != nil {
			t.Fatal(err)
		}
		fds = append(fds, fd)
	}
	a, b, err := SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	if err := WriteFDs(a, []byte("batch"), fds); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadFDs(b, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("received %d fds, want %d", len(got), n)
	}
	for i, fd := range got {
		ln2, err := ListenerFromFD(fd, "recv")
		if err != nil {
			t.Fatalf("fd %d: %v", i, err)
		}
		if ln2.Addr().String() != lns[i].Addr().String() {
			t.Fatalf("fd %d bound to %s, want %s (order must be preserved)", i, ln2.Addr(), lns[i].Addr())
		}
		ln2.Close()
	}
}

// TestReusePortCoexistence verifies that two listeners can bind the same
// address with SO_REUSEPORT — the configuration Proxygen uses for UDP VIPs.
func TestReusePortCoexistence(t *testing.T) {
	ln1, err := ListenTCPReusePort("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln1.Close()
	ln2, err := ListenTCPReusePort(ln1.Addr().String())
	if err != nil {
		t.Fatalf("second reuseport bind failed: %v", err)
	}
	ln2.Close()

	pc1, err := ListenUDPReusePort("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc1.Close()
	pc2, err := ListenUDPReusePort(pc1.LocalAddr().String())
	if err != nil {
		t.Fatalf("second udp reuseport bind failed: %v", err)
	}
	pc2.Close()
}

// TestSharedAcceptQueue documents the shared-file-table behaviour the paper
// relies on: after FD passing, old and new listeners drain the SAME accept
// queue, so every connection is served by exactly one of them.
func TestSharedAcceptQueue(t *testing.T) {
	ln, err := ListenTCPReusePort("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fd, err := ListenerFD(ln)
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := ListenerFromFD(fd, "dup")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()

	const total = 20
	accepted := make(chan string, total*2)
	acceptLoop := func(l *net.TCPListener, tag string) {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
			accepted <- tag
		}
	}
	go acceptLoop(ln, "old")
	go acceptLoop(ln2, "new")

	for i := 0; i < total; i++ {
		c, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		c.Close()
	}
	counts := map[string]int{}
	for i := 0; i < total; i++ {
		select {
		case tag := <-accepted:
			counts[tag]++
		case <-time.After(3 * time.Second):
			t.Fatalf("only %d/%d connections accepted; counts=%v", i, total, counts)
		}
	}
	if counts["old"]+counts["new"] != total {
		t.Fatalf("counts=%v", counts)
	}
}

// TestListenerFDKeepsNonblocking pins the property behind the wedged-drain
// fix: extracting an fd for SCM_RIGHTS transfer must not flip the original
// listener's open file description into blocking mode (os.File.Fd() does
// exactly that, and O_NONBLOCK is shared across dups). A blocking listener
// cannot be Closed while an Accept is in flight — an aborted hand-off
// would then wedge the old instance's drain forever.
func TestListenerFDKeepsNonblocking(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	tl := ln.(*net.TCPListener)

	fd, err := ListenerFD(tl)
	if err != nil {
		t.Fatal(err)
	}
	defer syscall.Close(fd)

	rc, err := tl.SyscallConn()
	if err != nil {
		t.Fatal(err)
	}
	var flags int
	var flagsErr error
	rc.Control(func(fd uintptr) {
		flags, flagsErr = unixFcntl(int(fd), syscall.F_GETFL, 0)
	})
	if flagsErr != nil {
		t.Fatal(flagsErr)
	}
	if flags&syscall.O_NONBLOCK == 0 {
		t.Fatal("ListenerFD flipped the original listener into blocking mode")
	}

	// The behavioural consequence: Close must interrupt a pending Accept
	// promptly instead of waiting for a connection that never comes.
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		c, err := tl.Accept()
		if err == nil {
			c.Close()
		}
	}()
	time.Sleep(20 * time.Millisecond) // let Accept park
	closed := make(chan struct{})
	go func() { tl.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked behind a pending Accept — listener is in blocking mode")
	}
	select {
	case <-acceptDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Accept never returned after Close")
	}
}

func unixFcntl(fd, cmd, arg int) (int, error) {
	r, _, e := syscall.Syscall(syscall.SYS_FCNTL, uintptr(fd), uintptr(cmd), uintptr(arg))
	if e != 0 {
		return 0, e
	}
	return int(r), nil
}
