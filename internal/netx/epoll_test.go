package netx

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, derr := net.Dial("tcp", ln.Addr().String())
	if derr != nil {
		t.Fatal(derr)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestEventLoopReadable(t *testing.T) {
	l, err := NewEventLoop(EventLoopConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	client, server := tcpPair(t)

	fired := make(chan Readiness, 1)
	w, err := l.Watch(server.(*net.TCPConn), func(w *Watch, r Readiness) {
		fired <- r
		// no Rearm: oneshot consumed
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Cancel()

	if l.Watched() != 1 {
		t.Fatalf("Watched = %d want 1", l.Watched())
	}
	// Idle: nothing may fire.
	select {
	case r := <-fired:
		t.Fatalf("idle watch fired: %+v", r)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := client.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-fired:
		if !r.Readable {
			t.Fatalf("want Readable, got %+v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watch did not fire on write")
	}
}

func TestEventLoopOneshotAndRearm(t *testing.T) {
	l, err := NewEventLoop(EventLoopConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	client, server := tcpPair(t)
	sc := server.(*net.TCPConn)

	var fires atomic.Int32
	rearmed := make(chan struct{}, 16)
	var w *Watch
	w, err = l.Watch(sc, func(w *Watch, r Readiness) {
		fires.Add(1)
		buf := make([]byte, 16)
		sc.SetReadDeadline(time.Now().Add(time.Second))
		sc.Read(buf) // drain so the next arm waits for fresh data
		if err := w.Rearm(); err == nil {
			rearmed <- struct{}{}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Cancel()

	for i := 0; i < 3; i++ {
		if _, err := client.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-rearmed:
		case <-time.After(2 * time.Second):
			t.Fatalf("fire %d: handler did not run", i)
		}
	}
	if got := fires.Load(); got != 3 {
		t.Fatalf("fires = %d want 3", got)
	}
}

func TestEventLoopHangup(t *testing.T) {
	l, err := NewEventLoop(EventLoopConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	client, server := tcpPair(t)

	fired := make(chan Readiness, 1)
	w, err := l.Watch(server.(*net.TCPConn), func(w *Watch, r Readiness) { fired <- r })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Cancel()

	client.Close()
	select {
	case r := <-fired:
		if !r.HangUp {
			t.Fatalf("want HangUp, got %+v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watch did not fire on peer close")
	}
}

func TestEventLoopListenerAccept(t *testing.T) {
	l, err := NewEventLoop(EventLoopConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	tln := ln.(*net.TCPListener)

	accepted := make(chan net.Conn, 4)
	var w *Watch
	w, err = l.Watch(tln, func(w *Watch, r Readiness) {
		// Burst-accept everything pending, then re-arm.
		for {
			tln.SetDeadline(time.Now().Add(time.Millisecond))
			c, err := tln.Accept()
			if err != nil {
				break
			}
			accepted <- c
		}
		tln.SetDeadline(time.Time{})
		w.Rearm()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Cancel()

	for i := 0; i < 3; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		select {
		case sc := <-accepted:
			defer sc.Close()
		case <-time.After(2 * time.Second):
			t.Fatalf("dial %d not accepted via loop", i)
		}
	}
}

// TestEventLoopCancelFencesStaleEvents: a cancelled watch must never run
// its handler, even when an event was already queued in the kernel —
// the token-indirection (ABA) property.
func TestEventLoopCancelFencesStaleEvents(t *testing.T) {
	l, err := NewEventLoop(EventLoopConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	client, server := tcpPair(t)

	var fired atomic.Int32
	w, err := l.Watch(server.(*net.TCPConn), func(w *Watch, r Readiness) { fired.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	// Make it ready and immediately cancel: the event may already be in
	// flight, but the handler must not run.
	client.Write([]byte("x"))
	w.Cancel()
	time.Sleep(100 * time.Millisecond)
	if got := fired.Load(); got != 0 {
		t.Fatalf("cancelled watch fired %d times", got)
	}
	if l.Watched() != 0 {
		t.Fatalf("Watched = %d want 0", l.Watched())
	}
}

// TestEventLoopManyIdleConns parks several hundred idle connections on
// one loop — the cost model the idle tiers rely on — then wakes a few
// and checks only those fire.
func TestEventLoopManyIdleConns(t *testing.T) {
	l, err := NewEventLoop(EventLoopConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const conns = 400
	type pair struct{ c, s net.Conn }
	pairs := make([]pair, 0, conns)
	serverSide := make(chan net.Conn, conns)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			serverSide <- c
		}
	}()
	for i := 0; i < conns; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		s := <-serverSide
		pairs = append(pairs, pair{c, s})
	}
	defer func() {
		for _, p := range pairs {
			p.c.Close()
			p.s.Close()
		}
	}()

	var mu sync.Mutex
	firedIdx := map[int]bool{}
	firedCh := make(chan struct{}, conns)
	for i, p := range pairs {
		i, sc := i, p.s.(*net.TCPConn)
		w, err := l.Watch(sc, func(w *Watch, r Readiness) {
			mu.Lock()
			firedIdx[i] = true
			mu.Unlock()
			firedCh <- struct{}{}
		})
		if err != nil {
			t.Fatalf("watch %d: %v", i, err)
		}
		defer w.Cancel()
	}
	if l.Watched() != conns {
		t.Fatalf("Watched = %d want %d", l.Watched(), conns)
	}

	woken := []int{3, conns / 2, conns - 1}
	for _, i := range woken {
		if _, err := pairs[i].c.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for range woken {
		select {
		case <-firedCh:
		case <-time.After(2 * time.Second):
			t.Fatal("woken connection did not fire")
		}
	}
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	for i := range firedIdx {
		ok := false
		for _, want := range woken {
			if i == want {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("idle connection %d fired", i)
		}
	}
	if len(firedIdx) != len(woken) {
		t.Fatalf("fired %d watches, want %d", len(firedIdx), len(woken))
	}
}

// TestEventLoopAcrossFDHandoff models the takeover contract: epoll
// interest is per-process state, so after a connection's fd is passed
// (here: dup'd, as SCM_RIGHTS delivery does) the receiving side
// re-registers it in its own loop and sees subsequent readability.
func TestEventLoopAcrossFDHandoff(t *testing.T) {
	oldLoop, err := NewEventLoop(EventLoopConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer oldLoop.Close()
	newLoop, err := NewEventLoop(EventLoopConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer newLoop.Close()

	client, server := tcpPair(t)
	sc := server.(*net.TCPConn)
	w, err := oldLoop.Watch(sc, func(w *Watch, r Readiness) {
		t.Error("old instance's watch fired after hand-off")
	})
	if err != nil {
		t.Fatal(err)
	}

	// Hand-off: old instance cancels its watch, the fd crosses (dup),
	// and the new instance owns the socket from its own loop.
	w.Cancel()
	fd, err := dupSocketFD(sc, "conn")
	if err != nil {
		t.Fatal(err)
	}
	adopted, err := connFromFD(fd, "adopted")
	if err != nil {
		t.Fatal(err)
	}
	defer adopted.Close()
	sc.Close() // old instance is gone

	fired := make(chan Readiness, 1)
	w2, err := newLoop.Watch(adopted.(*net.TCPConn), func(w *Watch, r Readiness) { fired <- r })
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Cancel()

	if _, err := client.Write([]byte("post-handoff")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-fired:
		if !r.Readable {
			t.Fatalf("want Readable, got %+v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("adopted connection did not fire in new loop")
	}
	buf := make([]byte, 32)
	n, err := adopted.Read(buf)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf[:n]) != "post-handoff" {
		t.Fatalf("read %q", buf[:n])
	}
}

func TestEventLoopCloseIdempotentAndRejects(t *testing.T) {
	l, err := NewEventLoop(EventLoopConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, server := tcpPair(t)
	w, err := l.Watch(server.(*net.TCPConn), func(*Watch, Readiness) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Watch(server.(*net.TCPConn), func(*Watch, Readiness) {}); err != ErrLoopClosed {
		t.Fatalf("Watch after Close: %v, want ErrLoopClosed", err)
	}
	if err := w.Rearm(); err != ErrLoopClosed {
		t.Fatalf("Rearm after Close: %v, want ErrLoopClosed", err)
	}
	w.Cancel() // must not panic after Close
}

// TestEventLoopConcurrentChurn registers/cancels watches from many
// goroutines while traffic flows; under -race this pins the loop's
// locking.
func TestEventLoopConcurrentChurn(t *testing.T) {
	l, err := NewEventLoop(EventLoopConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				client, server := tcpPairRaw(t)
				var w *Watch
				w, err := l.Watch(server.(*net.TCPConn), func(w *Watch, r Readiness) {
					buf := make([]byte, 8)
					server.SetReadDeadline(time.Now().Add(time.Second))
					server.Read(buf)
					w.Rearm()
				})
				if err != nil {
					t.Error(err)
					client.Close()
					server.Close()
					return
				}
				client.Write([]byte("x"))
				time.Sleep(time.Millisecond)
				w.Cancel()
				client.Close()
				server.Close()
			}
		}(g)
	}
	wg.Wait()
	if l.Watched() != 0 {
		t.Fatalf("Watched = %d want 0 after churn", l.Watched())
	}
}

// tcpPairRaw is tcpPair without t.Cleanup (callers close), safe for use
// inside goroutines.
func tcpPairRaw(t *testing.T) (client, server net.Conn) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Error(err)
		return nil, nil
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, derr := net.Dial("tcp", ln.Addr().String())
	if derr != nil {
		t.Error(derr)
		return nil, nil
	}
	<-done
	if err != nil {
		t.Error(err)
		return nil, nil
	}
	return client, server
}

func ExampleEventLoop() {
	l, _ := NewEventLoop(EventLoopConfig{Workers: 2})
	defer l.Close()
	fmt.Println(l.Watched())
	// Output: 0
}
