// Socket tuning: the latency/throughput knobs the paper's data plane
// turns at accept and dial time, surfaced as config so proxy, broker and
// app server expose them uniformly.
package netx

import (
	"errors"
	"flag"
	"net"
	"syscall"
)

// Linux socket options the syscall package does not export. Kernel ABI,
// stable values (matching include/uapi/asm-generic/socket.h and tcp.h).
const (
	soBusyPoll  = 0x2e // SO_BUSY_POLL: microseconds to busy-wait for rx
	tcpQuickAck = 0xc  // TCP_QUICKACK: disable delayed ACKs (one-shot)
)

// ConnTuning describes socket options to apply to accepted and dialed
// connections. Tri-state fields use +1 enable / -1 disable / 0 leave the
// stack default; sizes use 0 to leave the default.
type ConnTuning struct {
	// NoDelay controls TCP_NODELAY. Go enables it by default; -1 restores
	// Nagle for bulk-transfer workloads.
	NoDelay int
	// QuickAck controls TCP_QUICKACK. The kernel may re-enter delayed-ACK
	// mode on its own; this sets the initial state at accept/dial.
	QuickAck int
	// BusyPollUs sets SO_BUSY_POLL to this many microseconds (>0). The
	// kernel may require CAP_NET_ADMIN; EPERM is reported like any other
	// failure and callers treat tuning as best-effort.
	BusyPollUs int
	// SendBuf / RecvBuf set SO_SNDBUF / SO_RCVBUF in bytes (>0). The
	// kernel doubles the value it books; what matters is relative sizing.
	SendBuf int
	RecvBuf int
}

// Zero reports whether t requests no changes.
func (t *ConnTuning) Zero() bool {
	return t == nil || *t == ConnTuning{}
}

// Apply sets the requested options on c's descriptor via SyscallConn
// (never File()/Fd(), which would flip a shared descriptor to blocking
// mode). Options are applied independently; the first setsockopt error
// is returned after attempting the rest. Callers treat failures as
// advisory — a proxy keeps serving on an untuned socket.
func (t *ConnTuning) Apply(c syscall.Conn) error {
	if t.Zero() {
		return nil
	}
	rc, err := c.SyscallConn()
	if err != nil {
		return err
	}
	var firstErr error
	ctrlErr := rc.Control(func(fd uintptr) {
		set := func(level, opt, val int) {
			if err := syscall.SetsockoptInt(int(fd), level, opt, val); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if t.NoDelay != 0 {
			set(syscall.IPPROTO_TCP, syscall.TCP_NODELAY, boolOpt(t.NoDelay))
		}
		if t.QuickAck != 0 {
			set(syscall.IPPROTO_TCP, tcpQuickAck, boolOpt(t.QuickAck))
		}
		if t.BusyPollUs > 0 {
			set(syscall.SOL_SOCKET, soBusyPoll, t.BusyPollUs)
		}
		if t.SendBuf > 0 {
			set(syscall.SOL_SOCKET, syscall.SO_SNDBUF, t.SendBuf)
		}
		if t.RecvBuf > 0 {
			set(syscall.SOL_SOCKET, syscall.SO_RCVBUF, t.RecvBuf)
		}
	})
	if ctrlErr != nil {
		return ctrlErr
	}
	return firstErr
}

// TuningFlags registers the socket-tuning command-line flags the daemons
// (zdr-proxy, zdr-broker, zdr-appserver) share, and returns a builder to
// call after parsing. The builder returns nil when no tuning flag was
// given, so an untouched daemon skips the setsockopt path entirely;
// boolean flags are tri-state — only an explicit -tcp-nodelay=false
// produces a disable.
func TuningFlags(fs *flag.FlagSet) func() *ConnTuning {
	noDelay := fs.Bool("tcp-nodelay", true, "set TCP_NODELAY on accepted/dialed connections")
	quickAck := fs.Bool("tcp-quickack", false, "set TCP_QUICKACK on accepted/dialed connections")
	busyPoll := fs.Int("busy-poll-us", 0, "SO_BUSY_POLL busy-read microseconds (0 = kernel default; may need CAP_NET_ADMIN)")
	sndBuf := fs.Int("sndbuf", 0, "SO_SNDBUF bytes on accepted/dialed connections (0 = kernel default)")
	rcvBuf := fs.Int("rcvbuf", 0, "SO_RCVBUF bytes on accepted/dialed connections (0 = kernel default)")
	return func() *ConnTuning {
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		tri := func(name string, v bool) int {
			switch {
			case !set[name]:
				return 0
			case v:
				return 1
			default:
				return -1
			}
		}
		t := &ConnTuning{
			NoDelay:    tri("tcp-nodelay", *noDelay),
			QuickAck:   tri("tcp-quickack", *quickAck),
			BusyPollUs: *busyPoll,
			SendBuf:    *sndBuf,
			RecvBuf:    *rcvBuf,
		}
		if t.Zero() {
			return nil
		}
		return t
	}
}

func boolOpt(v int) int {
	if v > 0 {
		return 1
	}
	return 0
}

// TuneConn applies t to conn when the connection exposes its descriptor.
// Wrapped conns (fault injectors, tees) are skipped silently: tuning
// targets real sockets at accept/dial, and a wrapper that hides the
// descriptor is asking not to be touched.
func TuneConn(conn net.Conn, t *ConnTuning) error {
	if t.Zero() {
		return nil
	}
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return nil
	}
	err := t.Apply(sc)
	// A conn that closed between accept and tune is not a tuning failure.
	if errors.Is(err, syscall.EBADF) {
		return nil
	}
	return err
}
