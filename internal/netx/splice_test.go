package netx

import (
	"bytes"
	"crypto/sha256"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// tcpPair returns two ends of a loopback TCP connection.
func tcpConnPair(t testing.TB) (*net.TCPConn, *net.TCPConn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		client.Close()
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client.(*net.TCPConn), r.c.(*net.TCPConn)
}

// relayChain builds client → relay → sink and returns the client-side
// conn to write into, the sink-side conn to read from, and the relay's
// two inner TCP conns handed to the pump under test.
func relayChain(t *testing.T) (in *net.TCPConn, out *net.TCPConn, src *net.TCPConn, dst *net.TCPConn) {
	t.Helper()
	in, src = tcpConnPair(t)
	dst, out = tcpConnPair(t)
	return in, out, src, dst
}

func TestRelaySpliceTCPToTCP(t *testing.T) {
	in, out, src, dst := relayChain(t)
	before := ReadRelayStats()

	payload := bytes.Repeat([]byte("zero-downtime"), 1<<15) // ~416 KiB
	var wg sync.WaitGroup
	wg.Add(1)
	var relayN int64
	var relayErr error
	go func() {
		defer wg.Done()
		relayN, relayErr = Relay(dst, src)
		dst.CloseWrite()
	}()
	go func() {
		in.Write(payload)
		in.CloseWrite()
	}()
	got, err := io.ReadAll(out)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if relayErr != nil {
		t.Fatalf("relay error: %v", relayErr)
	}
	if relayN != int64(len(payload)) || !bytes.Equal(got, payload) {
		t.Fatalf("relayed %d bytes (want %d), payload match=%v", relayN, len(payload), bytes.Equal(got, payload))
	}
	after := ReadRelayStats()
	if d := after.SpliceBytes - before.SpliceBytes; d < int64(len(payload)) {
		t.Errorf("splice_bytes grew by %d, want >= %d (zero-copy path not taken)", d, len(payload))
	}
}

func TestRelayWrappedConnTakesCopyPath(t *testing.T) {
	in, out, src, dst := relayChain(t)
	before := ReadRelayStats()

	// An observing wrapper — the faults package's shape: embeds the
	// net.Conn interface, so it is neither *net.TCPConn nor syscall.Conn.
	var seen int64
	wsrc := &observedConn{Conn: src, n: &seen}

	payload := bytes.Repeat([]byte("observable"), 4096)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		Relay(dst, wsrc)
		dst.CloseWrite()
	}()
	go func() {
		in.Write(payload)
		in.CloseWrite()
	}()
	got, err := io.ReadAll(out)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted on copy path")
	}
	if seen != int64(len(payload)) {
		t.Errorf("wrapper observed %d bytes, want %d — copy path must pass every byte through the wrapper", seen, len(payload))
	}
	after := ReadRelayStats()
	if d := after.CopyBytes - before.CopyBytes; d < int64(len(payload)) {
		t.Errorf("copy_bytes grew by %d, want >= %d", d, len(payload))
	}
	if after.SpliceBytes != before.SpliceBytes {
		t.Errorf("splice_bytes moved for a wrapped conn: %d -> %d", before.SpliceBytes, after.SpliceBytes)
	}
}

type observedConn struct {
	net.Conn
	n *int64
}

func (o *observedConn) Read(p []byte) (int, error) {
	n, err := o.Conn.Read(p)
	*o.n += int64(n)
	return n, err
}

func TestSpliceLargeTransferIntegrity(t *testing.T) {
	in, out, src, dst := relayChain(t)

	const total = 8 << 20
	chunk := make([]byte, 32<<10)
	for i := range chunk {
		chunk[i] = byte(i * 31)
	}
	wantSum := sha256.New()
	go func() {
		left := total
		for left > 0 {
			n := len(chunk)
			if n > left {
				n = left
			}
			wantSum.Write(chunk[:n])
			if _, err := in.Write(chunk[:n]); err != nil {
				return
			}
			left -= n
		}
		in.CloseWrite()
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		n, handled, err := Splice(dst, src)
		if !handled {
			t.Error("splice not handled on a bare TCP pair")
		}
		if err != nil {
			t.Errorf("splice error: %v", err)
		}
		if n != total {
			t.Errorf("spliced %d bytes, want %d", n, total)
		}
		dst.CloseWrite()
	}()
	gotSum := sha256.New()
	n, err := io.Copy(gotSum, out)
	if err != nil || n != total {
		t.Fatalf("sink read %d bytes, err %v", n, err)
	}
	<-done
	if !bytes.Equal(gotSum.Sum(nil), wantSum.Sum(nil)) {
		t.Fatal("checksum mismatch after splice relay")
	}
}

func TestSpliceHonorsDeadline(t *testing.T) {
	_, _, src, dst := relayChain(t)
	src.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	_, handled, err := Splice(dst, src)
	if !handled {
		t.Fatal("expected splice path")
	}
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("want timeout net.Error, got %v", err)
	}
}

func TestPipePoolDrainLeavesNoFDs(t *testing.T) {
	// Prime then drain the pool and check the fd table returns to its
	// baseline — the audit a retiring generation runs at terminal drain.
	DrainPipePool()
	base, err := OpenFDCount()
	if err != nil {
		t.Skipf("no /proc fd table: %v", err)
	}
	in, out, src, dst := relayChain(t)
	go func() {
		in.Write([]byte("prime the pool"))
		in.CloseWrite()
	}()
	go io.Copy(io.Discard, out)
	if _, handled, err := Splice(dst, src); !handled || err != nil {
		t.Fatalf("splice handled=%v err=%v", handled, err)
	}
	if n := DrainPipePool(); n == 0 {
		t.Fatal("expected at least one pooled pipe after a splice relay")
	}
	in.Close()
	out.Close()
	src.Close()
	dst.Close()
	// Conn closes release their fds asynchronously via the runtime; poll.
	deadline := time.Now().Add(2 * time.Second)
	for {
		now, err := OpenFDCount()
		if err != nil {
			t.Fatal(err)
		}
		if now <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fd count %d never returned to baseline %d", now, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
