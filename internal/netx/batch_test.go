package netx

import (
	"fmt"
	"net"
	"testing"
	"time"
)

func udpPair(t testing.TB) (*net.UDPConn, *net.UDPConn) {
	t.Helper()
	a, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestBatchRoundTrip(t *testing.T) {
	a, b := udpPair(t)
	sender := NewBatchPacketConn(a, BatchConfig{})
	receiver := NewBatchPacketConn(b, BatchConfig{})
	defer sender.Release()
	defer receiver.Release()
	if !sender.Batched() || !receiver.Batched() {
		t.Fatal("kernel batching should engage on bare *net.UDPConn")
	}

	const pkts = 50
	dst := b.LocalAddr().(*net.UDPAddr)
	for i := 0; i < pkts; i++ {
		if err := sender.QueueTo([]byte(fmt.Sprintf("pkt-%03d", i)), dst); err != nil {
			t.Fatal(err)
		}
	}
	if err := sender.Flush(); err != nil {
		t.Fatal(err)
	}

	got := map[string]bool{}
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	for len(got) < pkts {
		msgs, err := receiver.ReadBatch()
		if err != nil {
			t.Fatalf("received %d/%d then: %v", len(got), pkts, err)
		}
		for _, m := range msgs {
			got[string(m.Buf)] = true
			ua, ok := m.Addr.(*net.UDPAddr)
			if !ok || ua.Port != a.LocalAddr().(*net.UDPAddr).Port {
				t.Fatalf("bad source addr %v", m.Addr)
			}
		}
	}
	for i := 0; i < pkts; i++ {
		if !got[fmt.Sprintf("pkt-%03d", i)] {
			t.Fatalf("missing packet %d", i)
		}
	}
	st := sender.Stats()
	if st.SendPkts != pkts {
		t.Errorf("send pkts = %d, want %d", st.SendPkts, pkts)
	}
	if st.SendFlushes >= pkts/2 {
		t.Errorf("sendmmsg flushes = %d for %d packets — no coalescing", st.SendFlushes, pkts)
	}
}

func TestBatchBurstSyscallReduction(t *testing.T) {
	a, b := udpPair(t)
	receiver := NewBatchPacketConn(b, BatchConfig{})
	defer receiver.Release()

	// Land the full burst in the socket buffer before the first read, so
	// the packets-per-recvmmsg ratio is deterministic.
	const burst = 64
	dst := b.LocalAddr()
	for i := 0; i < burst; i++ {
		if _, err := a.WriteTo([]byte(fmt.Sprintf("burst-%02d", i)), dst); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // let the kernel queue them

	total := 0
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	for total < burst {
		msgs, err := receiver.ReadBatch()
		if err != nil {
			t.Fatalf("received %d/%d then: %v", total, burst, err)
		}
		total += len(msgs)
	}
	st := receiver.Stats()
	if st.RecvCalls > burst/4 {
		t.Errorf("%d recvmmsg calls for a %d-packet burst — want >=4x reduction (<=%d)", st.RecvCalls, burst, burst/4)
	}
}

// opaquePacketConn hides the raw descriptor, like a fault-injection
// wrapper does.
type opaquePacketConn struct {
	net.PacketConn
	reads, writes int
}

func (o *opaquePacketConn) ReadFrom(p []byte) (int, net.Addr, error) {
	o.reads++
	return o.PacketConn.ReadFrom(p)
}

func (o *opaquePacketConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	o.writes++
	return o.PacketConn.WriteTo(p, addr)
}

func TestBatchFallbackKeepsWrapperVisible(t *testing.T) {
	a, b := udpPair(t)
	wa := &opaquePacketConn{PacketConn: a}
	wb := &opaquePacketConn{PacketConn: b}
	sender := NewBatchPacketConn(wa, BatchConfig{})
	receiver := NewBatchPacketConn(wb, BatchConfig{})
	defer sender.Release()
	defer receiver.Release()
	if sender.Batched() || receiver.Batched() {
		t.Fatal("wrapped conns must not take the kernel batch path")
	}

	const pkts = 10
	dst := b.LocalAddr()
	for i := 0; i < pkts; i++ {
		if err := sender.QueueTo([]byte("x"), dst); err != nil {
			t.Fatal(err)
		}
	}
	sender.Flush()
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	for got := 0; got < pkts; {
		msgs, err := receiver.ReadBatch()
		if err != nil {
			t.Fatal(err)
		}
		got += len(msgs)
	}
	if wa.writes != pkts || wb.reads != pkts {
		t.Errorf("wrapper saw %d writes / %d reads, want %d/%d — fallback must pass every datagram through the wrapper",
			wa.writes, wb.reads, pkts, pkts)
	}
}

func TestBatchReadHonorsDeadline(t *testing.T) {
	_, b := udpPair(t)
	receiver := NewBatchPacketConn(b, BatchConfig{})
	defer receiver.Release()
	b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	_, err := receiver.ReadBatch()
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("want timeout net.Error (the drain-poison contract), got %v", err)
	}
}

func TestBatchDisableKernelBatch(t *testing.T) {
	a, b := udpPair(t)
	sender := NewBatchPacketConn(a, BatchConfig{DisableKernelBatch: true})
	receiver := NewBatchPacketConn(b, BatchConfig{DisableKernelBatch: true})
	defer sender.Release()
	defer receiver.Release()
	if sender.Batched() || receiver.Batched() {
		t.Fatal("DisableKernelBatch must force the fallback path")
	}
	if err := sender.QueueTo([]byte("hello"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	msgs, err := receiver.ReadBatch()
	if err != nil || len(msgs) != 1 || string(msgs[0].Buf) != "hello" {
		t.Fatalf("msgs=%v err=%v", msgs, err)
	}
	if st := receiver.Stats(); st.RecvCalls != 1 || st.RecvPkts != 1 {
		t.Errorf("fallback stats %+v, want 1 call / 1 pkt", st)
	}
}
