package netx

import (
	"net"
	"syscall"
	"testing"
)

func TestTuneConnAppliesBufferSizes(t *testing.T) {
	c, _ := tcpConnPair(t)
	tuning := &ConnTuning{NoDelay: 1, QuickAck: 1, SendBuf: 128 << 10, RecvBuf: 128 << 10}
	if err := TuneConn(c, tuning); err != nil {
		t.Fatalf("TuneConn: %v", err)
	}
	rc, err := c.SyscallConn()
	if err != nil {
		t.Fatal(err)
	}
	var snd, rcv int
	rc.Control(func(fd uintptr) {
		snd, _ = syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_SNDBUF)
		rcv, _ = syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_RCVBUF)
	})
	// The kernel books 2x the requested size; it may also clamp, so just
	// require the setting took relative to a tiny default.
	if snd < 128<<10 || rcv < 128<<10 {
		t.Errorf("SO_SNDBUF=%d SO_RCVBUF=%d, want >= %d", snd, rcv, 128<<10)
	}
}

func TestTuneConnDisableNoDelay(t *testing.T) {
	c, _ := tcpConnPair(t)
	if err := TuneConn(c, &ConnTuning{NoDelay: -1}); err != nil {
		t.Fatalf("TuneConn: %v", err)
	}
	rc, _ := c.SyscallConn()
	var nd int
	rc.Control(func(fd uintptr) {
		nd, _ = syscall.GetsockoptInt(int(fd), syscall.IPPROTO_TCP, syscall.TCP_NODELAY)
	})
	if nd != 0 {
		t.Errorf("TCP_NODELAY=%d after disable, want 0", nd)
	}
}

type opaqueConn struct{ net.Conn }

func TestTuneConnSkipsWrappedConns(t *testing.T) {
	c, _ := tcpConnPair(t)
	if err := TuneConn(opaqueConn{c}, &ConnTuning{NoDelay: 1}); err != nil {
		t.Errorf("wrapped conn should be skipped, got %v", err)
	}
	var nilTuning *ConnTuning
	if err := TuneConn(c, nilTuning); err != nil {
		t.Errorf("nil tuning should be a no-op, got %v", err)
	}
}
