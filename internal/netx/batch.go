// Batched-syscall UDP: recvmmsg(2)/sendmmsg(2) rings behind a
// net.PacketConn, so a router draining a burst pays one syscall per
// batch instead of one per packet in each direction.
//
// The kernel path engages only when the wrapped conn exposes its raw
// descriptor (syscall.Conn — a real *net.UDPConn does, fault-injection
// wrappers deliberately do not). Everything else takes a one-packet
// fallback through the conn's own ReadFrom/WriteTo, so interposed
// wrappers keep seeing every datagram — the same selective split the
// TCP relay selector applies (splice.go).
//
// Kernel reads run inside syscall.RawConn.Read callbacks: the runtime
// poller still owns readiness and deadlines, so SetReadDeadline poisoning
// — how quicx kicks a blocked VIP reader at drain time — interrupts a
// batched read exactly like a plain one, surfacing as a net.Error
// timeout.
package netx

import (
	"encoding/binary"
	"net"
	"os"
	"sync"
	"syscall"
	"unsafe"

	"zdr/internal/bufpool"
	"zdr/internal/metrics"
)

// Batch sizing defaults. 64-entry rings match the burst sizes the quicx
// router sees under load; per-packet buffers cover a full datagram.
const (
	DefaultRecvBatch = 64
	DefaultSendBatch = 64
	DefaultMaxPacket = 64 << 10
)

// sockaddrBufLen fits any sockaddr the kernel writes (RawSockaddrAny).
const sockaddrBufLen = 128

// addrCacheLimit bounds the sockaddr→UDPAddr parse cache; beyond it the
// cache resets (steady state has far fewer distinct peers per socket).
const addrCacheLimit = 1024

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-reported
// per-message byte count.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// Message is one received datagram. Buf aliases the ring buffer and Addr
// may be shared across messages: both are valid only until the next
// ReadBatch call on the same conn.
type Message struct {
	Buf  []byte
	Addr net.Addr
}

// BatchConfig configures a BatchPacketConn. Zero values take the
// defaults above.
type BatchConfig struct {
	RecvBatch int // mmsghdr ring entries per recvmmsg
	SendBatch int // queued datagrams before an automatic flush
	MaxPacket int // per-datagram buffer size
	// Registry+Prefix name the accounting counters (e.g. prefix
	// "quicx.batch" yields quicx.batch.recvmmsg_calls etc.). A nil
	// Registry keeps private counters readable via Stats.
	Registry *metrics.Registry
	Prefix   string
	// DisableKernelBatch forces the one-syscall-per-packet fallback even
	// on a real UDP socket — the before/after lever for benchmarks.
	DisableKernelBatch bool
}

// BatchStats is a point-in-time copy of one conn's batch counters.
type BatchStats struct {
	RecvCalls   int64 // recvmmsg invocations (or fallback ReadFrom calls)
	RecvPkts    int64 // datagrams received
	SendFlushes int64 // sendmmsg invocations (or fallback WriteTo calls)
	SendPkts    int64 // datagrams sent
}

// BatchPacketConn wraps a net.PacketConn with recvmmsg/sendmmsg rings.
// ReadBatch is single-caller (one read loop per conn, the quicx
// ownership rule); QueueTo/Flush are safe for concurrent use — the VIP
// sender is shared by the main and forward read loops.
type BatchPacketConn struct {
	pc  net.PacketConn
	raw syscall.RawConn // nil → fallback path
	max int

	// receive ring (single reader, no lock)
	rmsgs  []mmsghdr
	rbufs  []*[]byte
	riovs  []syscall.Iovec
	rnames [][]byte
	msgs   []Message
	rfall  *[]byte // fallback read buffer
	acache map[string]*net.UDPAddr

	// send ring
	smu    sync.Mutex
	smsgs  []mmsghdr
	sbufs  []*[]byte
	siovs  []syscall.Iovec
	snames [][]byte
	queued int

	cRecvCalls *metrics.Counter
	cRecvPkts  *metrics.Counter
	cSendFlush *metrics.Counter
	cSendPkts  *metrics.Counter
	gPktsPer   *metrics.Gauge // cumulative pkts-per-recvmmsg, milli-units
}

// NewBatchPacketConn wraps pc. Kernel batching engages only when pc
// exposes a raw descriptor and DisableKernelBatch is unset.
func NewBatchPacketConn(pc net.PacketConn, cfg BatchConfig) *BatchPacketConn {
	if cfg.RecvBatch <= 0 {
		cfg.RecvBatch = DefaultRecvBatch
	}
	if cfg.SendBatch <= 0 {
		cfg.SendBatch = DefaultSendBatch
	}
	if cfg.MaxPacket <= 0 {
		cfg.MaxPacket = DefaultMaxPacket
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "netx.batch"
	}
	b := &BatchPacketConn{
		pc:         pc,
		max:        cfg.MaxPacket,
		acache:     make(map[string]*net.UDPAddr),
		cRecvCalls: cfg.Registry.Counter(cfg.Prefix + ".recvmmsg_calls"),
		cRecvPkts:  cfg.Registry.Counter(cfg.Prefix + ".recvmmsg_pkts"),
		cSendFlush: cfg.Registry.Counter(cfg.Prefix + ".sendmmsg_flushes"),
		cSendPkts:  cfg.Registry.Counter(cfg.Prefix + ".sendmmsg_pkts"),
		gPktsPer:   cfg.Registry.Gauge(cfg.Prefix + ".pkts_per_recvmmsg"),
	}
	if !cfg.DisableKernelBatch {
		if sc, ok := pc.(syscall.Conn); ok {
			if rc, err := sc.SyscallConn(); err == nil {
				b.raw = rc
			}
		}
	}
	if b.raw == nil {
		b.rfall = bufpool.Get(cfg.MaxPacket)
		return b
	}
	// Ring slots are wired once: each msghdr points at its permanent
	// iovec, buffer and sockaddr scratch; only lengths change per call.
	b.rmsgs = make([]mmsghdr, cfg.RecvBatch)
	b.rbufs = make([]*[]byte, cfg.RecvBatch)
	b.riovs = make([]syscall.Iovec, cfg.RecvBatch)
	b.rnames = make([][]byte, cfg.RecvBatch)
	b.msgs = make([]Message, 0, cfg.RecvBatch)
	for i := range b.rmsgs {
		b.rbufs[i] = bufpool.Get(cfg.MaxPacket)
		b.rnames[i] = make([]byte, sockaddrBufLen)
		b.riovs[i].Base = &(*b.rbufs[i])[0]
		b.riovs[i].SetLen(cfg.MaxPacket)
		b.rmsgs[i].hdr.Name = &b.rnames[i][0]
		b.rmsgs[i].hdr.Iov = &b.riovs[i]
		b.rmsgs[i].hdr.Iovlen = 1
	}
	b.smsgs = make([]mmsghdr, cfg.SendBatch)
	b.sbufs = make([]*[]byte, cfg.SendBatch)
	b.siovs = make([]syscall.Iovec, cfg.SendBatch)
	b.snames = make([][]byte, cfg.SendBatch)
	for i := range b.smsgs {
		b.sbufs[i] = bufpool.Get(cfg.MaxPacket)
		b.snames[i] = make([]byte, sockaddrBufLen)
		b.siovs[i].Base = &(*b.sbufs[i])[0]
		b.smsgs[i].hdr.Name = &b.snames[i][0]
		b.smsgs[i].hdr.Iov = &b.siovs[i]
		b.smsgs[i].hdr.Iovlen = 1
	}
	return b
}

// Batched reports whether the kernel recvmmsg/sendmmsg path is active.
func (b *BatchPacketConn) Batched() bool { return b.raw != nil }

// Stats snapshots the conn's batch counters.
func (b *BatchPacketConn) Stats() BatchStats {
	return BatchStats{
		RecvCalls:   b.cRecvCalls.Value(),
		RecvPkts:    b.cRecvPkts.Value(),
		SendFlushes: b.cSendFlush.Value(),
		SendPkts:    b.cSendPkts.Value(),
	}
}

// ReadBatch blocks until at least one datagram is available and returns
// every datagram the kernel had queued, up to the ring size. Returned
// Messages alias ring memory: they are valid only until the next
// ReadBatch. Deadline and close errors surface exactly as ReadFrom's do.
func (b *BatchPacketConn) ReadBatch() ([]Message, error) {
	if b.raw == nil {
		n, from, err := b.pc.ReadFrom(*b.rfall)
		if err != nil {
			return nil, err
		}
		b.cRecvCalls.Inc()
		b.cRecvPkts.Inc()
		b.updateRatio()
		b.msgs = append(b.msgs[:0], Message{Buf: (*b.rfall)[:n], Addr: from})
		return b.msgs, nil
	}
	for i := range b.rmsgs {
		b.rmsgs[i].hdr.Namelen = sockaddrBufLen
		b.rmsgs[i].n = 0
	}
	var got uintptr
	var errno syscall.Errno
	err := b.raw.Read(func(fd uintptr) bool {
		for {
			got, _, errno = syscall.Syscall6(syscall.SYS_RECVMMSG,
				fd, uintptr(unsafe.Pointer(&b.rmsgs[0])), uintptr(len(b.rmsgs)),
				syscall.MSG_DONTWAIT, 0, 0)
			if errno == syscall.EINTR {
				continue
			}
			return errno != syscall.EAGAIN
		}
	})
	if err != nil {
		return nil, err
	}
	if errno != 0 {
		return nil, os.NewSyscallError("recvmmsg", errno)
	}
	b.cRecvCalls.Inc()
	b.cRecvPkts.Add(int64(got))
	b.updateRatio()
	b.msgs = b.msgs[:0]
	for i := 0; i < int(got); i++ {
		m := &b.rmsgs[i]
		b.msgs = append(b.msgs, Message{
			Buf:  (*b.rbufs[i])[:m.n],
			Addr: b.parseAddr(b.rnames[i][:m.hdr.Namelen]),
		})
	}
	return b.msgs, nil
}

// updateRatio publishes the cumulative packets-per-recvmmsg ratio in
// milli-units (1000 = one packet per syscall).
func (b *BatchPacketConn) updateRatio() {
	if calls := b.cRecvCalls.Value(); calls > 0 {
		b.gPktsPer.Set(b.cRecvPkts.Value() * 1000 / calls)
	}
}

// parseAddr converts a raw kernel sockaddr to *net.UDPAddr through a
// bounded cache, so steady-state traffic from known peers allocates
// nothing per packet.
func (b *BatchPacketConn) parseAddr(raw []byte) net.Addr {
	if len(raw) < 4 {
		return nil
	}
	if a, ok := b.acache[string(raw)]; ok {
		return a
	}
	var a *net.UDPAddr
	switch fam := *(*uint16)(unsafe.Pointer(&raw[0])); fam {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&raw[0]))
		a = &net.UDPAddr{
			IP:   net.IPv4(sa.Addr[0], sa.Addr[1], sa.Addr[2], sa.Addr[3]),
			Port: int(binary.BigEndian.Uint16(raw[2:4])),
		}
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&raw[0]))
		ip := make(net.IP, 16)
		copy(ip, sa.Addr[:])
		a = &net.UDPAddr{IP: ip, Port: int(binary.BigEndian.Uint16(raw[2:4]))}
	default:
		return nil
	}
	if len(b.acache) >= addrCacheLimit {
		clear(b.acache)
	}
	b.acache[string(raw)] = a
	return a
}

// QueueTo stages one datagram for addr, flushing automatically when the
// ring fills. On the fallback path (or for addresses sendmmsg cannot
// encode) it degrades to an immediate WriteTo, preserving one-write-per-
// packet semantics for interposed wrappers. The payload is copied; the
// caller keeps ownership of p.
func (b *BatchPacketConn) QueueTo(p []byte, addr net.Addr) error {
	if b.raw == nil || len(p) > b.max {
		return b.writeDirect(p, addr)
	}
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		return b.writeDirect(p, addr)
	}
	b.smu.Lock()
	defer b.smu.Unlock()
	if b.queued == len(b.smsgs) {
		if err := b.flushLocked(); err != nil {
			return err
		}
	}
	i := b.queued
	nameLen, ok := putSockaddr(b.snames[i], ua)
	if !ok {
		return b.writeDirect(p, addr)
	}
	copy(*b.sbufs[i], p)
	b.siovs[i].SetLen(len(p))
	b.smsgs[i].hdr.Namelen = uint32(nameLen)
	b.queued++
	return nil
}

func (b *BatchPacketConn) writeDirect(p []byte, addr net.Addr) error {
	_, err := b.pc.WriteTo(p, addr)
	if err == nil {
		b.cSendFlush.Inc()
		b.cSendPkts.Inc()
	}
	return err
}

// Flush sends every queued datagram. Call after draining a burst; a
// no-op when nothing is queued.
func (b *BatchPacketConn) Flush() error {
	if b.raw == nil {
		return nil
	}
	b.smu.Lock()
	defer b.smu.Unlock()
	return b.flushLocked()
}

func (b *BatchPacketConn) flushLocked() error {
	for sent := 0; sent < b.queued; {
		var n uintptr
		var errno syscall.Errno
		first := sent
		err := b.raw.Write(func(fd uintptr) bool {
			for {
				n, _, errno = syscall.Syscall6(sysSendmmsg,
					fd, uintptr(unsafe.Pointer(&b.smsgs[first])), uintptr(b.queued-first),
					syscall.MSG_DONTWAIT, 0, 0)
				if errno == syscall.EINTR {
					continue
				}
				return errno != syscall.EAGAIN
			}
		})
		if err != nil {
			b.queued = 0
			return err
		}
		if errno != 0 {
			b.queued = 0
			return os.NewSyscallError("sendmmsg", errno)
		}
		b.cSendFlush.Inc()
		b.cSendPkts.Add(int64(n))
		sent += int(n)
	}
	b.queued = 0
	return nil
}

// putSockaddr encodes ua into buf, returning the sockaddr length.
func putSockaddr(buf []byte, ua *net.UDPAddr) (int, bool) {
	if ip4 := ua.IP.To4(); ip4 != nil {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&buf[0]))
		*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		copy(sa.Addr[:], ip4)
		binary.BigEndian.PutUint16(buf[2:4], uint16(ua.Port))
		return syscall.SizeofSockaddrInet4, true
	}
	if ip6 := ua.IP.To16(); ip6 != nil {
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&buf[0]))
		*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
		copy(sa.Addr[:], ip6)
		binary.BigEndian.PutUint16(buf[2:4], uint16(ua.Port))
		return syscall.SizeofSockaddrInet6, true
	}
	return 0, false
}

// Release flushes pending sends and returns ring buffers to the pool.
// It does not close the wrapped conn — the caller owns its lifecycle
// (across Socket Takeover the socket outlives any one generation's
// rings, which follow their read loop).
func (b *BatchPacketConn) Release() {
	b.Flush()
	for _, p := range b.rbufs {
		bufpool.Put(p)
	}
	b.rbufs = nil
	b.smu.Lock()
	for _, p := range b.sbufs {
		bufpool.Put(p)
	}
	b.sbufs = nil
	b.queued = 0
	b.smu.Unlock()
	bufpool.Put(b.rfall)
	b.rfall = nil
}
