package netx

import (
	"io"
	"sync"
	"testing"
)

// relayBench pumps b.N chunks of size chunk through a loopback relay and
// reports MB/s. The writer and sink run as goroutines; the relay pump —
// the code under test — runs on the benchmark goroutine.
func relayBench(b *testing.B, chunk int, wrap bool) {
	in, src := tcpConnPair(b)
	dst, out := tcpConnPair(b)
	payload := make([]byte, chunk)
	total := int64(b.N) * int64(chunk)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			if _, err := in.Write(payload); err != nil {
				return
			}
		}
		in.CloseWrite()
	}()
	sunk := make(chan int64, 1)
	go func() {
		defer wg.Done()
		n, _ := io.Copy(io.Discard, out)
		sunk <- n
	}()

	b.SetBytes(int64(chunk))
	b.ResetTimer()
	var n int64
	var err error
	if wrap {
		// Interface-typed endpoints force the pooled-copy path.
		n, err = Relay(struct{ io.Writer }{dst}, struct{ io.Reader }{src})
	} else {
		n, err = Relay(dst, src)
	}
	b.StopTimer()
	dst.CloseWrite()
	wg.Wait()
	if err != nil || n != total || <-sunk != total {
		b.Fatalf("relayed %d bytes (err %v), want %d", n, err, total)
	}
}

func BenchmarkRelaySplice(b *testing.B)     { relayBench(b, 64<<10, false) }
func BenchmarkRelayPooledCopy(b *testing.B) { relayBench(b, 64<<10, true) }

// BenchmarkBatchSend measures the sendmmsg queue/flush path: 32-packet
// bursts to one destination, drained by a reader goroutine.
func BenchmarkBatchSend(b *testing.B) {
	send, recv := udpPair(b)
	bc := NewBatchPacketConn(send, BatchConfig{})
	defer bc.Release()
	if !bc.Batched() {
		b.Skip("kernel batching unavailable")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 2048)
		for {
			if _, _, err := recv.ReadFrom(buf); err != nil {
				return
			}
		}
	}()

	dst := recv.LocalAddr()
	payload := make([]byte, 512)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bc.QueueTo(payload, dst); err != nil {
			b.Fatal(err)
		}
		if i%32 == 31 {
			if err := bc.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
	bc.Flush()
	b.StopTimer()
	recv.Close()
	<-done
}
