// Package netx provides the low-level socket plumbing that Socket Takeover
// (§4.1 of the paper) is built on:
//
//   - passing open file descriptors between processes over a UNIX domain
//     socket with sendmsg(2)/SCM_RIGHTS, the exact kernel mechanism the
//     paper describes ("these FDs behave as though they have been created
//     with dup(2)" on the receiving side);
//   - creating TCP listeners and UDP packet sockets with SO_REUSEPORT so
//     multiple server threads accept and process packets independently;
//   - reconstructing net.Listener / net.PacketConn values from received
//     FDs.
//
// The FD-passing path uses real syscalls and therefore behaves identically
// whether the two endpoints are separate processes (production topology) or
// two instances inside one test process connected by a socketpair — the
// kernel neither knows nor cares.
package netx

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// soReusePort is SO_REUSEPORT on Linux. The syscall package does not export
// it on all Go versions, so it is pinned here; the value is part of the
// kernel ABI and stable.
const soReusePort = 0xf

// maxFDsPerMessage bounds how many descriptors a single control message
// carries. Linux caps SCM_RIGHTS at SCM_MAX_FD (253); we stay comfortably
// below it and chunk larger sets at a higher layer.
const maxFDsPerMessage = 128

// ErrNoFDs is returned by ReadFDs when a message unexpectedly carries no
// descriptors.
var ErrNoFDs = errors.New("netx: control message carried no file descriptors")

// FDHook intercepts FD-passing operations for deterministic fault
// injection (internal/faults chaos tests): op is "write" or "read"; for
// writes, data and fds are the outgoing message. Returning a non-nil
// error fails the operation before any syscall runs — simulating a
// sendmsg/recvmsg failure mid-handoff without a real peer crash.
type FDHook func(op string, data []byte, fds []int) error

var fdHook atomic.Pointer[FDHook]

// SetFDHook installs (or, with nil, removes) the process-wide FD hook.
// Safe for concurrent use; intended for tests only.
func SetFDHook(h FDHook) {
	if h == nil {
		fdHook.Store(nil)
		return
	}
	fdHook.Store(&h)
}

func runFDHook(op string, data []byte, fds []int) error {
	if hp := fdHook.Load(); hp != nil {
		return (*hp)(op, data, fds)
	}
	return nil
}

// WriteFDs sends data plus the given file descriptors over the UNIX socket
// as a single message with an SCM_RIGHTS control message. len(fds) must be
// at most maxFDsPerMessage.
func WriteFDs(conn *net.UnixConn, data []byte, fds []int) error {
	if len(fds) > maxFDsPerMessage {
		return fmt.Errorf("netx: %d fds exceeds per-message limit %d", len(fds), maxFDsPerMessage)
	}
	if err := runFDHook("write", data, fds); err != nil {
		return fmt.Errorf("netx: sendmsg: %w", err)
	}
	var oob []byte
	if len(fds) > 0 {
		oob = syscall.UnixRights(fds...)
	}
	n, oobn, err := conn.WriteMsgUnix(data, oob, nil)
	if err != nil {
		return fmt.Errorf("netx: sendmsg: %w", err)
	}
	if n != len(data) || oobn != len(oob) {
		return fmt.Errorf("netx: short sendmsg: data %d/%d oob %d/%d", n, len(data), oobn, len(oob))
	}
	return nil
}

// ReadFDs reads one message from the UNIX socket, returning the data bytes
// and any file descriptors received via SCM_RIGHTS. The received FDs have
// CLOEXEC set. If the message carries no control data, fds is nil.
func ReadFDs(conn *net.UnixConn, buf []byte) (data []byte, fds []int, err error) {
	if err := runFDHook("read", nil, nil); err != nil {
		return nil, nil, fmt.Errorf("netx: recvmsg: %w", err)
	}
	oob := make([]byte, syscall.CmsgSpace(4*maxFDsPerMessage))
	n, oobn, _, _, err := conn.ReadMsgUnix(buf, oob)
	if err != nil {
		return nil, nil, fmt.Errorf("netx: recvmsg: %w", err)
	}
	data = buf[:n]
	if oobn == 0 {
		return data, nil, nil
	}
	msgs, err := syscall.ParseSocketControlMessage(oob[:oobn])
	if err != nil {
		return nil, nil, fmt.Errorf("netx: parse control message: %w", err)
	}
	for _, m := range msgs {
		got, err := syscall.ParseUnixRights(&m)
		if err != nil {
			// Not an SCM_RIGHTS message; skip it.
			continue
		}
		fds = append(fds, got...)
	}
	for _, fd := range fds {
		syscall.CloseOnExec(fd)
	}
	return data, fds, nil
}

// OpenFDCount returns the number of file descriptors the process holds
// open, by counting /proc/self/fd. It is the ground truth the FD-
// accounting tests compare before/after an aborted hand-off: every dup
// the takeover path makes — sender-side extraction, SCM_RIGHTS delivery,
// receiver-side reconstruction — must be matched by a close on both the
// commit and the abort edges, or the leak shows up here.
func OpenFDCount() (int, error) {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0, fmt.Errorf("netx: reading /proc/self/fd: %w", err)
	}
	return len(ents), nil
}

// SocketPair returns both ends of a connected AF_UNIX SOCK_STREAM pair as
// *net.UnixConn. It is how tests (and the in-process takeover used by the
// examples) wire an old and a new "instance" together without touching the
// filesystem.
func SocketPair() (a, b *net.UnixConn, err error) {
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("netx: socketpair: %w", err)
	}
	toConn := func(fd int, name string) (*net.UnixConn, error) {
		f := os.NewFile(uintptr(fd), name)
		defer f.Close() // net.FileConn dups the fd
		c, err := net.FileConn(f)
		if err != nil {
			return nil, err
		}
		uc, ok := c.(*net.UnixConn)
		if !ok {
			c.Close()
			return nil, fmt.Errorf("netx: socketpair end is %T, not *net.UnixConn", c)
		}
		return uc, nil
	}
	a, err = toConn(fds[0], "socketpair-a")
	if err != nil {
		syscall.Close(fds[1])
		return nil, nil, err
	}
	b, err = toConn(fds[1], "socketpair-b")
	if err != nil {
		a.Close()
		return nil, nil, err
	}
	return a, b, nil
}

// ListenerFD extracts a duplicated file descriptor from a TCP listener.
// The caller owns the returned FD and must close it.
func ListenerFD(ln *net.TCPListener) (int, error) {
	return dupSocketFD(ln, "listener")
}

// PacketConnFD extracts a duplicated file descriptor from a UDP socket.
// The caller owns the returned FD and must close it.
func PacketConnFD(pc *net.UDPConn) (int, error) {
	return dupSocketFD(pc, "packetconn")
}

// dupSocketFD duplicates a socket's fd via SyscallConn — NOT via
// File()/Fd(). os.File.Fd() restores blocking mode on the descriptor, and
// because O_NONBLOCK lives in the open file description shared by every
// dup (including the original listener and any copy already handed to
// another process), that flips the live listener into blocking mode: its
// accept threads then sit in accept(2) where Close cannot interrupt them,
// and an aborted hand-off would wedge the old instance's drain path
// forever. Control() runs with the fd pinned and touches no flags.
func dupSocketFD(c syscall.Conn, kind string) (int, error) {
	rc, err := c.SyscallConn()
	if err != nil {
		return -1, fmt.Errorf("netx: %s SyscallConn: %w", kind, err)
	}
	dup := -1
	var dupErr error
	if err := rc.Control(func(fd uintptr) {
		dup, dupErr = syscall.Dup(int(fd))
		if dupErr == nil {
			syscall.CloseOnExec(dup)
		}
	}); err != nil {
		return -1, fmt.Errorf("netx: %s control: %w", kind, err)
	}
	if dupErr != nil {
		return -1, fmt.Errorf("netx: dup: %w", dupErr)
	}
	return dup, nil
}

// ListenerFromFD reconstructs a *net.TCPListener from a received FD. The FD
// is duplicated by net.FileListener; the input fd is closed before
// returning (ownership transfers in).
func ListenerFromFD(fd int, name string) (*net.TCPListener, error) {
	f := os.NewFile(uintptr(fd), name)
	defer f.Close()
	ln, err := net.FileListener(f)
	if err != nil {
		return nil, fmt.Errorf("netx: FileListener: %w", err)
	}
	tln, ok := ln.(*net.TCPListener)
	if !ok {
		ln.Close()
		return nil, fmt.Errorf("netx: fd %d is a %T, not *net.TCPListener", fd, ln)
	}
	return tln, nil
}

// ConnFromFD reconstructs a *net.TCPConn from a received FD — the
// established-connection counterpart of ListenerFromFD, used when a
// hand-off transfers individual parked connections so the receiving
// instance can re-register them in its own event loop (epoll interest is
// per-process state and never part of the transferred set). The input fd
// is closed before returning (ownership transfers in).
func ConnFromFD(fd int, name string) (*net.TCPConn, error) {
	c, err := connFromFD(fd, name)
	if err != nil {
		return nil, err
	}
	tc, ok := c.(*net.TCPConn)
	if !ok {
		c.Close()
		return nil, fmt.Errorf("netx: fd %d is a %T, not *net.TCPConn", fd, c)
	}
	return tc, nil
}

func connFromFD(fd int, name string) (net.Conn, error) {
	f := os.NewFile(uintptr(fd), name)
	defer f.Close()
	c, err := net.FileConn(f)
	if err != nil {
		return nil, fmt.Errorf("netx: FileConn: %w", err)
	}
	return c, nil
}

// PacketConnFromFD reconstructs a *net.UDPConn from a received FD. The
// input fd is closed before returning (ownership transfers in).
func PacketConnFromFD(fd int, name string) (*net.UDPConn, error) {
	f := os.NewFile(uintptr(fd), name)
	defer f.Close()
	pc, err := net.FilePacketConn(f)
	if err != nil {
		return nil, fmt.Errorf("netx: FilePacketConn: %w", err)
	}
	upc, ok := pc.(*net.UDPConn)
	if !ok {
		pc.Close()
		return nil, fmt.Errorf("netx: fd %d is a %T, not *net.UDPConn", fd, pc)
	}
	return upc, nil
}

// soCookie is SO_COOKIE on Linux: a getsockopt that returns the kernel's
// unique, immutable 64-bit identity for the socket. Not exported by the
// syscall package; the value is part of the kernel ABI and stable.
const soCookie = 57

// SocketCookie returns the kernel's SO_COOKIE identity for a socket. Two
// descriptors referring to the same open socket — the original listener
// and any dup passed over SCM_RIGHTS — report the same cookie, so the
// takeover tests use it to prove that a re-armed listener (drain-undo) is
// the very kernel socket the clients were already connecting to, not a
// fresh bind.
func SocketCookie(c syscall.Conn) (uint64, error) {
	rc, err := c.SyscallConn()
	if err != nil {
		return 0, fmt.Errorf("netx: SyscallConn: %w", err)
	}
	var cookie uint64
	var getErr error
	if err := rc.Control(func(fd uintptr) {
		cookie, getErr = SocketCookieFD(int(fd))
	}); err != nil {
		return 0, fmt.Errorf("netx: control: %w", err)
	}
	return cookie, getErr
}

// SocketCookieFD is SocketCookie for a raw descriptor.
func SocketCookieFD(fd int) (uint64, error) {
	var cookie uint64
	sz := uint32(8)
	_, _, errno := syscall.Syscall6(syscall.SYS_GETSOCKOPT,
		uintptr(fd), uintptr(syscall.SOL_SOCKET), uintptr(soCookie),
		uintptr(unsafe.Pointer(&cookie)), uintptr(unsafe.Pointer(&sz)), 0)
	if errno != 0 {
		return 0, fmt.Errorf("netx: getsockopt SO_COOKIE: %w", errno)
	}
	return cookie, nil
}

// reusePortControl is a net.ListenConfig Control hook that sets
// SO_REUSEADDR and SO_REUSEPORT before bind.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var ctrlErr error
	err := c.Control(func(fd uintptr) {
		if err := syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_REUSEADDR, 1); err != nil {
			ctrlErr = err
			return
		}
		ctrlErr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	})
	if err != nil {
		return err
	}
	return ctrlErr
}

// ListenTCPReusePort opens a TCP listener with SO_REUSEPORT set, so several
// listeners (in one or many processes) can bind the same VIP address.
func ListenTCPReusePort(addr string) (*net.TCPListener, error) {
	lc := net.ListenConfig{Control: reusePortControl}
	ln, err := lc.Listen(context.Background(), "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netx: listen tcp reuseport %s: %w", addr, err)
	}
	return ln.(*net.TCPListener), nil
}

// ListenUDPReusePort opens a UDP socket with SO_REUSEPORT set. This is the
// configuration whose kernel socket-ring flux during a release causes the
// mis-routing shown in Fig. 2d; Socket Takeover avoids the flux by passing
// the FD so the ring never changes.
func ListenUDPReusePort(addr string) (*net.UDPConn, error) {
	lc := net.ListenConfig{Control: reusePortControl}
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netx: listen udp reuseport %s: %w", addr, err)
	}
	return pc.(*net.UDPConn), nil
}
