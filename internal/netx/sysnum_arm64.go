package netx

// sendmmsg(2) postdates the syscall package's frozen number table, so the
// number is pinned per architecture. Kernel ABI, stable.
const sysSendmmsg = 269
