package netx

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"

	"zdr/internal/metrics"
)

// EventLoop is a readiness loop over raw epoll(7) for idle-heavy tiers:
// a mostly-idle connection costs one compact watch record in the loop
// instead of a parked goroutine with its stack. The MQTT broker and the
// Edge listeners register each parked connection here and only spend a
// worker goroutine while the connection is actually readable.
//
// Design (DESIGN.md §11):
//
//   - One poller goroutine blocks in syscall.EpollWait; ready events are
//     handed to a small worker pool over a channel, so a slow handler
//     never stalls the poller for longer than the channel send.
//   - Registrations are EPOLLONESHOT: after an event fires, the kernel
//     disarms the watch until the handler re-arms it. A watch therefore
//     never runs its handler concurrently with itself, which is what lets
//     handlers own the connection without extra locking.
//   - epoll_event carries a loop-assigned 64-bit token, not the fd. FD
//     numbers are recycled by the kernel the moment a connection closes;
//     a token is never reused, so a stale event left in the kernel queue
//     from a closed watch cannot be mis-delivered to whatever connection
//     inherited the fd number (the classic epoll ABA hazard).
//   - The loop never dups descriptors. Interest is registered through
//     syscall.Conn.Control, which pins the fd without touching its
//     flags (see dupSocketFD for why File()/Fd() is forbidden here), and
//     closing the connection makes the kernel drop the registration with
//     it. This is also what makes hand-off composable: a listener's fd
//     set is per-process epoll state, so after Socket Takeover the
//     receiving instance re-registers the adopted sockets in its own
//     loop — epoll interest is deliberately NOT part of the transferred
//     state.
type EventLoop struct {
	epfd  int
	wakeR int // read end of the wake pipe, registered as wakeToken
	wakeW int // written to by Close to unblock EpollWait

	mu      sync.Mutex
	watches map[uint64]*Watch
	next    uint64 // token allocator; wakeToken (0) is never assigned
	closed  bool

	ready chan readyEvent
	wg    sync.WaitGroup

	gWatched *metrics.Gauge
	cEvents  *metrics.Counter
	cHangups *metrics.Counter
	cWakeups *metrics.Counter
	cStale   *metrics.Counter
}

// wakeToken is the reserved token for the wake pipe.
const wakeToken = 0

type readyEvent struct {
	w  *Watch
	ev Readiness
}

// Readiness describes why a watch fired.
type Readiness struct {
	// Readable: data (or a pending accept) is available.
	Readable bool
	// HangUp: the peer closed (EPOLLRDHUP/EPOLLHUP/EPOLLERR). For parked
	// idle connections this is the reap signal.
	HangUp bool
}

// Watch is one registered connection. The handler receives the watch
// itself (events can be delivered before the registering Watch call
// returns, so closing over the returned value would race) and its
// Readiness; it must finish by either re-arming (Rearm) to keep watching
// or cancelling (Cancel) to stop. Until one of those happens the kernel
// keeps the watch disarmed (EPOLLONESHOT), so the handler never races
// itself.
type Watch struct {
	loop    *EventLoop
	conn    syscall.Conn
	fn      func(*Watch, Readiness)
	token   uint64
	stopped atomic.Bool
}

// EventLoopConfig tunes NewEventLoop.
type EventLoopConfig struct {
	// Workers is the handler pool size (default: GOMAXPROCS, min 2).
	Workers int
	// Registry receives the loop's telemetry (nil = private registry).
	Registry *metrics.Registry
}

// NewEventLoop creates the epoll instance, wake pipe, poller goroutine,
// and worker pool.
func NewEventLoop(cfg EventLoopConfig) (*EventLoop, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, fmt.Errorf("netx: epoll_create1: %w", err)
	}
	var pipeFDs [2]int
	if err := syscall.Pipe2(pipeFDs[:], syscall.O_CLOEXEC|syscall.O_NONBLOCK); err != nil {
		syscall.Close(epfd)
		return nil, fmt.Errorf("netx: wake pipe: %w", err)
	}
	l := &EventLoop{
		epfd:     epfd,
		wakeR:    pipeFDs[0],
		wakeW:    pipeFDs[1],
		watches:  make(map[uint64]*Watch),
		next:     wakeToken + 1,
		ready:    make(chan readyEvent, 4*workers),
		gWatched: reg.Gauge("netx.eventloop.watched"),
		cEvents:  reg.Counter("netx.eventloop.events"),
		cHangups: reg.Counter("netx.eventloop.hangups"),
		cWakeups: reg.Counter("netx.eventloop.wakeups"),
		cStale:   reg.Counter("netx.eventloop.stale_events"),
	}
	wakeEv := syscall.EpollEvent{Events: syscall.EPOLLIN}
	putToken(&wakeEv, wakeToken)
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, l.wakeR, &wakeEv); err != nil {
		l.closeFDs()
		return nil, fmt.Errorf("netx: register wake pipe: %w", err)
	}
	l.wg.Add(1 + workers)
	go l.pollLoop()
	for i := 0; i < workers; i++ {
		go l.workerLoop()
	}
	return l, nil
}

// putToken/getToken pack the watch token into epoll_event's data field
// (exposed by the syscall package as the Fd/Pad int32 pair).
func putToken(ev *syscall.EpollEvent, token uint64) {
	ev.Fd = int32(uint32(token))
	ev.Pad = int32(uint32(token >> 32))
}

func getToken(ev *syscall.EpollEvent) uint64 {
	return uint64(uint32(ev.Fd)) | uint64(uint32(ev.Pad))<<32
}

// watchEvents is the interest set: readable, peer-closed, oneshot.
const watchEvents = syscall.EPOLLIN | syscall.EPOLLRDHUP | syscall.EPOLLONESHOT

// ErrLoopClosed is returned by Watch after Close.
var ErrLoopClosed = errors.New("netx: event loop closed")

// Watch registers conn and invokes fn (on a pool worker) whenever the
// connection becomes readable or the peer hangs up. conn may be any
// socket-backed value — *net.TCPConn, *net.TCPListener (readable =
// pending accept), *net.UnixConn. The registration is oneshot: fn must
// end with w.Rearm() or w.Cancel().
func (l *EventLoop) Watch(conn syscall.Conn, fn func(w *Watch, r Readiness)) (*Watch, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrLoopClosed
	}
	token := l.next
	l.next++
	w := &Watch{loop: l, conn: conn, fn: fn, token: token}
	l.watches[token] = w
	l.mu.Unlock()

	if err := l.ctl(conn, syscall.EPOLL_CTL_ADD, token); err != nil {
		l.mu.Lock()
		delete(l.watches, token)
		l.mu.Unlock()
		return nil, err
	}
	l.gWatched.Inc()
	return w, nil
}

// ctl runs one EPOLL_CTL op against conn's fd with the fd pinned.
func (l *EventLoop) ctl(conn syscall.Conn, op int, token uint64) error {
	rc, err := conn.SyscallConn()
	if err != nil {
		return fmt.Errorf("netx: SyscallConn: %w", err)
	}
	var ctlErr error
	if err := rc.Control(func(fd uintptr) {
		ev := syscall.EpollEvent{Events: watchEvents}
		putToken(&ev, token)
		ctlErr = syscall.EpollCtl(l.epfd, op, int(fd), &ev)
	}); err != nil {
		return fmt.Errorf("netx: control: %w", err)
	}
	if ctlErr != nil {
		return fmt.Errorf("netx: epoll_ctl: %w", ctlErr)
	}
	return nil
}

// Rearm re-enables a fired (oneshot-disarmed) watch. Safe to call from
// the handler; returns ErrLoopClosed after Cancel or loop Close.
func (w *Watch) Rearm() error {
	if w.stopped.Load() {
		return ErrLoopClosed
	}
	return w.loop.ctl(w.conn, syscall.EPOLL_CTL_MOD, w.token)
}

// Stopped reports whether the watch has been cancelled (or its loop
// closed). Callers that stash watches in their own registries use it to
// detect a watch that was reaped by its handler before the stash
// happened.
func (w *Watch) Stopped() bool { return w.stopped.Load() }

// Cancel stops the watch. Idempotent; safe from the handler or outside.
// The connection itself is not closed — the caller owns it (and closing
// it without Cancel is also safe: the kernel drops the epoll interest
// with the last fd, and the token map entry is reclaimed here).
func (w *Watch) Cancel() {
	if w.stopped.Swap(true) {
		return
	}
	l := w.loop
	l.mu.Lock()
	delete(l.watches, w.token)
	l.mu.Unlock()
	// Best-effort kernel-side removal: if the conn is already closed the
	// registration is gone anyway, and any queued stale event is fenced
	// by the token check in pollLoop.
	rc, err := w.conn.SyscallConn()
	if err == nil {
		rc.Control(func(fd uintptr) {
			syscall.EpollCtl(l.epfd, syscall.EPOLL_CTL_DEL, int(fd), nil)
		})
	}
	l.gWatched.Dec()
}

// Watched returns the number of live watches.
func (l *EventLoop) Watched() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.watches)
}

func (l *EventLoop) pollLoop() {
	defer l.wg.Done()
	defer close(l.ready)
	events := make([]syscall.EpollEvent, 128)
	for {
		n, err := syscall.EpollWait(l.epfd, events, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return // epfd closed under us: Close is in progress
		}
		for i := 0; i < n; i++ {
			ev := &events[i]
			token := getToken(ev)
			if token == wakeToken {
				l.cWakeups.Inc()
				var buf [8]byte
				syscall.Read(l.wakeR, buf[:])
				l.mu.Lock()
				closed := l.closed
				l.mu.Unlock()
				if closed {
					return
				}
				continue
			}
			l.mu.Lock()
			w := l.watches[token]
			l.mu.Unlock()
			if w == nil || w.stopped.Load() {
				// Token retired between kernel queueing and delivery —
				// the ABA case the indirection exists for.
				l.cStale.Inc()
				continue
			}
			r := Readiness{
				Readable: ev.Events&syscall.EPOLLIN != 0,
				HangUp:   ev.Events&(syscall.EPOLLRDHUP|syscall.EPOLLHUP|syscall.EPOLLERR) != 0,
			}
			l.cEvents.Inc()
			if r.HangUp {
				l.cHangups.Inc()
			}
			l.ready <- readyEvent{w: w, ev: r}
		}
	}
}

func (l *EventLoop) workerLoop() {
	defer l.wg.Done()
	for re := range l.ready {
		if re.w.stopped.Load() {
			l.cStale.Inc()
			continue
		}
		re.w.fn(re.w, re.ev)
	}
}

// Close stops the poller and workers and releases the epoll instance.
// Outstanding watches are dropped (their connections are not closed).
// Blocks until every in-flight handler returns.
func (l *EventLoop) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	for _, w := range l.watches {
		w.stopped.Store(true)
	}
	l.watches = make(map[uint64]*Watch)
	l.mu.Unlock()
	l.gWatched.Set(0)

	// Unblock EpollWait; the poller sees closed=true and exits, closing
	// l.ready, which drains the workers.
	syscall.Write(l.wakeW, []byte{1})
	l.wg.Wait()
	l.closeFDs()
	return nil
}

func (l *EventLoop) closeFDs() {
	syscall.Close(l.epfd)
	syscall.Close(l.wakeR)
	syscall.Close(l.wakeW)
}
