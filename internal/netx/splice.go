// Zero-copy TCP relaying: splice(2) through a pooled pipe pair, and the
// Relay selector that decides — per pump, per direction — between the
// kernel path and a pooled userspace copy.
//
// The selection rule is Libra's "selective data copying": the kernel
// zero-copy path is taken only when nobody needs to see the bytes in
// userspace. Both endpoints must unwrap to real *net.TCPConn values;
// fault-injector wrappers, PPR capture tees, h2t streams and anything
// else that interposes on Read/Write fails the type assertion and keeps
// the pooled-copy path, where every byte flows through the wrapper. The
// split is therefore structural — armed instrumentation cannot be
// silently bypassed by the fast path.
//
// Pipe pairs are pooled per process and must never cross a Socket
// Takeover: descriptors for an in-flight splice belong to the generation
// that opened them (the same loop-per-generation ownership rule the epoll
// interest lists follow, DESIGN.md §11). Drain terminates in-flight
// splices by closing their TCP endpoints as usual; DrainPipePool releases
// the idle pairs so a retiring generation holds no stray pipe fds — and
// so fd-audit tests can assert a clean table.
package netx

import (
	"io"
	"net"
	"sync"
	"syscall"

	"zdr/internal/bufpool"
	"zdr/internal/metrics"
)

// splice(2) flags and fcntl(2) pipe-resize command. The syscall package
// does not export them; the values are kernel ABI and stable.
const (
	spliceFMove     = 0x1
	spliceFNonblock = 0x2
	fSetPipeSz      = 1031 // F_SETPIPE_SZ
)

// splicePipeSize is the requested pipe capacity. At 1 MiB a single
// splice-in/splice-out round moves everything a deep socket buffer
// holds — measured at ~2 syscalls/MB against the copy path's ~32.
// Best-effort — the kernel may clamp to /proc/sys/fs/pipe-max-size, and
// the 64 KiB default still works.
const splicePipeSize = 1 << 20

// spliceChunk caps the bytes requested per splice call. The kernel moves
// what fits and reports it, so one call drains whatever the socket has
// buffered up to the pipe capacity.
const spliceChunk = 1 << 20

// maxPooledPipes bounds the idle pipe-pair pool. Each pair is two fds;
// beyond this, pairs are closed on release rather than pooled.
const maxPooledPipes = 8

// Relay accounting. Package-global: the relay selector is called from
// every pump in the process, so the counters live in their own registry
// rather than any one server's.
var (
	relayReg = metrics.NewRegistry()
	// cSpliceBytes counts bytes moved by the kernel zero-copy path.
	cSpliceBytes = relayReg.Counter("netx.relay.splice_bytes")
	// cCopyBytes counts bytes moved by the pooled userspace copy path.
	cCopyBytes = relayReg.Counter("netx.relay.copy_bytes")
	// cSpliceFallbacks counts relays that looked spliceable but fell back
	// (pipe exhaustion, kernel EINVAL/ENOSYS before any byte moved).
	cSpliceFallbacks = relayReg.Counter("netx.relay.splice_fallbacks")
	// cSpliceCalls counts splice(2) invocations — the syscall cost of the
	// zero-copy path, comparable against the copy path's read+write pairs.
	cSpliceCalls = relayReg.Counter("netx.relay.splice_calls")
)

// RelayMetrics returns the process-wide relay accounting registry
// (netx.relay.{splice_bytes,copy_bytes,splice_fallbacks,splice_calls}).
func RelayMetrics() *metrics.Registry { return relayReg }

// RelayStats is a point-in-time copy of the relay counters.
type RelayStats struct {
	SpliceBytes     int64
	CopyBytes       int64
	SpliceFallbacks int64
	SpliceCalls     int64
}

// ReadRelayStats snapshots the process-wide relay counters.
func ReadRelayStats() RelayStats {
	return RelayStats{
		SpliceBytes:     cSpliceBytes.Value(),
		CopyBytes:       cCopyBytes.Value(),
		SpliceFallbacks: cSpliceFallbacks.Value(),
		SpliceCalls:     cSpliceCalls.Value(),
	}
}

// splicePipe is one pipe pair used as the kernel-side bounce buffer.
type splicePipe struct {
	r, w int
}

func (p *splicePipe) close() {
	syscall.Close(p.r)
	syscall.Close(p.w)
}

var pipePool struct {
	mu   sync.Mutex
	free []*splicePipe
}

// getPipe returns a pipe pair from the pool, creating one if none are
// idle. Pipes are opened O_NONBLOCK|O_CLOEXEC: CLOEXEC matters because
// Socket Takeover execs the next generation — pipe fds must never leak
// across the hand-off.
func getPipe() (*splicePipe, error) {
	pipePool.mu.Lock()
	if n := len(pipePool.free); n > 0 {
		p := pipePool.free[n-1]
		pipePool.free = pipePool.free[:n-1]
		pipePool.mu.Unlock()
		return p, nil
	}
	pipePool.mu.Unlock()
	var fds [2]int
	if err := syscall.Pipe2(fds[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		return nil, err
	}
	// Best-effort resize; a clamped or refused size still splices.
	syscall.Syscall(syscall.SYS_FCNTL, uintptr(fds[1]), fSetPipeSz, splicePipeSize)
	return &splicePipe{r: fds[0], w: fds[1]}, nil
}

// putPipe releases a pipe pair. A dirty pipe — bytes stranded in it by a
// mid-drain error — is closed, never pooled: the stranded bytes would
// corrupt the next relay that borrowed it.
func putPipe(p *splicePipe, dirty bool) {
	if dirty {
		p.close()
		return
	}
	pipePool.mu.Lock()
	if len(pipePool.free) < maxPooledPipes {
		pipePool.free = append(pipePool.free, p)
		pipePool.mu.Unlock()
		return
	}
	pipePool.mu.Unlock()
	p.close()
}

// DrainPipePool closes every idle pooled pipe pair and returns how many
// were closed. A generation entering its terminal drain calls this so it
// exits with no pipe fds open; the succeeding generation re-populates its
// own pool on first splice. Also the reset point for fd-audit tests.
func DrainPipePool() int {
	pipePool.mu.Lock()
	free := pipePool.free
	pipePool.free = nil
	pipePool.mu.Unlock()
	for _, p := range free {
		p.close()
	}
	return len(free)
}

// Relay moves bytes from src to dst until EOF, like io.Copy, choosing the
// transport per Libra's selective-split rule: splice(2) when both
// endpoints are bare *net.TCPConn values, a pooled-buffer copy otherwise.
// The copy path wraps both endpoints in plain io.Writer/io.Reader shells
// so io.CopyBuffer cannot divert through ReaderFrom/WriterTo — the bytes
// stay in the pooled buffer and pass through any interposed wrapper,
// which is exactly what fault injectors and PPR capture rely on.
func Relay(dst io.Writer, src io.Reader) (int64, error) {
	if d, ok := dst.(*net.TCPConn); ok {
		if s, ok := src.(*net.TCPConn); ok {
			n, handled, err := Splice(d, s)
			if handled {
				return n, err
			}
			cSpliceFallbacks.Inc()
		}
	}
	n, err := bufpool.Copy(struct{ io.Writer }{dst}, struct{ io.Reader }{src})
	cCopyBytes.Add(n)
	return n, err
}

// Splice relays src→dst through a pooled pipe pair until EOF using
// splice(2), so payload bytes never enter userspace. handled reports
// whether the kernel path ran: false (with written==0) means the caller
// should fall back to a userspace copy — pipe creation failed, or the
// kernel refused the very first splice (EINVAL/ENOSYS/EOPNOTSUPP).
// Partial writes are accounted: written counts only bytes that reached
// dst, and a mid-stream error reports the true count (bytes stranded in
// the pipe are discarded with it).
func Splice(dst, src *net.TCPConn) (written int64, handled bool, err error) {
	srcRC, serr := src.SyscallConn()
	if serr != nil {
		return 0, false, nil
	}
	dstRC, derr := dst.SyscallConn()
	if derr != nil {
		return 0, false, nil
	}
	p, perr := getPipe()
	if perr != nil {
		return 0, false, nil
	}
	dirty := false
	defer func() { putPipe(p, dirty) }()

	for {
		// Socket → pipe. EAGAIN means the socket has no data: return
		// false from the callback and let the runtime poller wait for
		// readability (deadlines and Close interrupt it like any read).
		var moved int64
		var spliceErr error
		waitErr := srcRC.Read(func(fd uintptr) bool {
			for {
				n, e := syscall.Splice(int(fd), nil, p.w, nil, spliceChunk, spliceFMove|spliceFNonblock)
				if e == syscall.EINTR {
					continue
				}
				if e == syscall.EAGAIN {
					return false
				}
				moved, spliceErr = n, e
				return true
			}
		})
		cSpliceCalls.Inc()
		if waitErr != nil {
			return written, true, waitErr
		}
		if spliceErr != nil {
			if written == 0 && spliceUnsupported(spliceErr) {
				return 0, false, nil
			}
			return written, true, spliceErr
		}
		if moved == 0 {
			return written, true, nil // EOF
		}

		// Pipe → socket, looping until the pipe is empty again. The pipe
		// is dirty for the duration: an error now strands bytes in it.
		dirty = true
		for inPipe := moved; inPipe > 0; {
			var out int64
			var outErr error
			waitErr := dstRC.Write(func(fd uintptr) bool {
				for {
					n, e := syscall.Splice(p.r, nil, int(fd), nil, int(inPipe), spliceFMove|spliceFNonblock)
					if e == syscall.EINTR {
						continue
					}
					if e == syscall.EAGAIN {
						return false
					}
					out, outErr = n, e
					return true
				}
			})
			cSpliceCalls.Inc()
			if waitErr != nil {
				return written, true, waitErr
			}
			if outErr != nil {
				return written, true, outErr
			}
			if out == 0 {
				return written, true, io.ErrUnexpectedEOF
			}
			inPipe -= out
			written += out
			cSpliceBytes.Add(out)
		}
		dirty = false
	}
}

// spliceUnsupported reports kernel refusals that mean "use a copy", as
// opposed to stream errors that mean the relay itself failed.
func spliceUnsupported(err error) bool {
	return err == syscall.EINVAL || err == syscall.ENOSYS || err == syscall.EOPNOTSUPP
}
