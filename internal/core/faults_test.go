package core

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"zdr/internal/faults"
	"zdr/internal/http1"
	"zdr/internal/proxy"
)

// startHTTPLoad hammers the web VIP with GETs until stop is closed,
// recording ok/failed counts. Request failures do not stop the loop —
// the tests assert failed == 0 at the end.
func startHTTPLoad(addr string, stop chan struct{}, ok, failed *atomic.Int64) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				failed.Add(1)
				continue
			}
			if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/s", nil, 0)); err != nil {
				failed.Add(1)
				conn.Close()
				continue
			}
			conn.SetReadDeadline(time.Now().Add(3 * time.Second))
			resp, err := http1.ReadResponse(bufio.NewReader(conn))
			if err != nil || resp.StatusCode != 200 {
				failed.Add(1)
				conn.Close()
				continue
			}
			http1.ReadFullBody(resp.Body)
			conn.Close()
			ok.Add(1)
		}
	}()
	return done
}

// TestProxySlotSurvivesReceiverCrashMidHandoff is the release-path abort
// scenario end to end: during live HTTP load, a "new generation" dials
// the takeover path, receives part of the handoff, and dies before the
// ACK. The slot must roll back — same generation, not draining, zero
// failed client requests — and a subsequent real Restart must succeed.
func TestProxySlotSurvivesReceiverCrashMidHandoff(t *testing.T) {
	gen := 0
	path := filepath.Join(t.TempDir(), "edge.sock")
	slot := &ProxySlot{
		SlotName: "edge-slot",
		Path:     path,
		Build: func() *proxy.Proxy {
			gen++
			return proxy.New(proxy.Config{
				Name:          fmt.Sprintf("edge-g%d", gen),
				Role:          proxy.RoleEdge,
				Origins:       []string{"127.0.0.1:1"}, // unused: static only
				DrainPeriod:   100 * time.Millisecond,
				StaticContent: map[string][]byte{"/s": []byte("static")},
			}, nil)
		},
	}
	if err := slot.Start(); err != nil {
		t.Fatal(err)
	}
	defer slot.Close()
	gen1 := slot.Current()
	addr := gen1.Addr(proxy.VIPWeb)

	stop := make(chan struct{})
	var ok, failed atomic.Int64
	done := startHTTPLoad(addr, stop, &ok, &failed)
	time.Sleep(50 * time.Millisecond)

	// The crashing receiver: take the manifest bytes, die before ACK.
	crash, err := net.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	crash.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 256)
	if _, err := crash.Read(buf); err != nil {
		t.Fatalf("fake receiver read: %v", err)
	}
	crash.Close()

	// The abort is visible on the old generation's metrics; wait for it.
	deadline := time.Now().Add(3 * time.Second)
	for gen1.Metrics().CounterValue("proxy.takeover_aborts") == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if gen1.Metrics().CounterValue("proxy.takeover_aborts") == 0 {
		t.Fatal("aborted handoff not counted")
	}

	// Rollback: same generation serving, not draining.
	if slot.Current() != gen1 || slot.Generation() != 1 {
		t.Fatalf("slot promoted after an aborted handoff (gen %d)", slot.Generation())
	}
	if gen1.Draining() {
		t.Fatal("old generation started draining despite the abort")
	}

	// The real release then goes through against the still-armed server.
	if err := slot.Restart(); err != nil {
		t.Fatalf("restart after aborted handoff: %v", err)
	}
	if slot.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", slot.Generation())
	}
	time.Sleep(150 * time.Millisecond)

	close(stop)
	<-done
	if f := failed.Load(); f != 0 {
		t.Fatalf("%d client requests failed across the aborted + real release (%d ok)", f, ok.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("load loop never completed a request")
	}
}

// TestProxySlotRearmFailureSurfaced covers the promoted-but-unreachable
// fix: when the new generation cannot re-arm the takeover server, the
// restart still promotes (the new generation owns the sockets — rolling
// it back would kill the VIPs), the inconsistency is surfaced as
// ErrTakeoverNotArmed, and RearmTakeover repairs it.
func TestProxySlotRearmFailureSurfaced(t *testing.T) {
	gen := 0
	dir := t.TempDir()
	goodPath := filepath.Join(dir, "edge.sock")
	slot := &ProxySlot{
		SlotName:     "edge-slot",
		Path:         goodPath,
		RearmBackoff: faults.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Attempts: 3},
		Build: func() *proxy.Proxy {
			gen++
			return proxy.New(proxy.Config{
				Name:          fmt.Sprintf("edge-g%d", gen),
				Role:          proxy.RoleEdge,
				Origins:       []string{"127.0.0.1:1"},
				DrainPeriod:   50 * time.Millisecond,
				StaticContent: map[string][]byte{"/s": []byte("static")},
			}, nil)
		},
	}
	if err := slot.Start(); err != nil {
		t.Fatal(err)
	}
	defer slot.Close()
	if !slot.TakeoverArmed() {
		t.Fatal("fresh slot reports unarmed takeover server")
	}
	addr := slot.Current().Addr(proxy.VIPWeb)

	// Drive Restart's internals with the failure injected between the
	// hand-off and the re-arm: the hand-off goes through gen-1's armed
	// server at goodPath, then the slot path turns un-bindable before
	// promote tries to arm gen 2's server on it.
	next := slot.Build()
	if _, err := next.TakeoverFrom(goodPath); err != nil {
		t.Fatalf("takeover: %v", err)
	}
	slot.Path = filepath.Join(dir, "no-such-dir", "edge.sock")
	err := slot.promote(next)
	if !errors.Is(err, ErrTakeoverNotArmed) {
		t.Fatalf("promote error = %v, want ErrTakeoverNotArmed", err)
	}
	if slot.Generation() != 2 || slot.Current() != next {
		t.Fatalf("generation %d not promoted despite owning the sockets", slot.Generation())
	}
	if slot.TakeoverArmed() {
		t.Fatal("slot reports armed after a failed re-arm")
	}
	// The promoted generation serves traffic even while unarmed.
	conn, dialErr := net.DialTimeout("tcp", addr, 2*time.Second)
	if dialErr != nil {
		t.Fatalf("promoted generation not serving: %v", dialErr)
	}
	conn.Close()

	// Repair: restore a bindable path, re-arm, and release again.
	slot.Path = goodPath
	if err := slot.RearmTakeover(); err != nil {
		t.Fatalf("RearmTakeover: %v", err)
	}
	if !slot.TakeoverArmed() {
		t.Fatal("slot unarmed after successful RearmTakeover")
	}
	if err := slot.RearmTakeover(); err != nil {
		t.Fatalf("RearmTakeover must be a no-op when armed: %v", err)
	}
	if err := slot.Restart(); err != nil {
		t.Fatalf("release after rearm: %v", err)
	}
	if slot.Generation() != 3 {
		t.Fatalf("generation = %d, want 3", slot.Generation())
	}
}
