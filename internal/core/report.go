// Release reports: the machine-readable record of one rolling release.
//
// A ReleaseReport is pure data — every field survives a JSON round-trip
// bit-for-bit (timestamps are UnixNano int64, durations are nanosecond
// counts, spans are obs.SpanNode trees) — so experiment harnesses and CI
// can marshal it to disk, load it back, and assert on phase durations
// with reflect.DeepEqual.
package core

import (
	"encoding/json"
	"os"
	"time"

	"zdr/internal/obs"
)

// ReleaseBatch is one batch of a rolling release.
type ReleaseBatch struct {
	Targets    []string `json:"targets"`
	DurationNS int64    `json:"duration_ns"`
	Errors     []string `json:"errors,omitempty"`
}

// ReleaseReport is the machine-readable summary of a release: shape,
// outcome, per-phase time accounting derived from the span stream, the
// registry counters bracketing the release, and the full span tree.
type ReleaseReport struct {
	// BatchFraction is the effective fraction used (after defaulting).
	BatchFraction float64 `json:"batch_fraction"`
	// Restarts and Failed count restart attempts and failures.
	Restarts int `json:"restarts"`
	Failed   int `json:"failed"`
	// TotalNS is the wall-clock duration of the whole release.
	TotalNS int64 `json:"total_ns"`
	// Batches records per-batch targets, duration and errors.
	Batches []ReleaseBatch `json:"batches"`
	// CountersBefore/After snapshot the registry counters bracketing the
	// release. Never nil.
	CountersBefore map[string]int64 `json:"counters_before"`
	CountersAfter  map[string]int64 `json:"counters_after"`
	// PhaseNS sums the duration of every finished span by span name
	// ("takeover.step.B", "slot.drain", ...); PhaseCount counts them.
	// Never nil.
	PhaseNS    map[string]int64 `json:"phase_ns"`
	PhaseCount map[string]int64 `json:"phase_count"`
	// Spans is the finished span forest (empty when tracing was off).
	Spans []*obs.SpanNode `json:"spans,omitempty"`
}

// Total is the release's wall-clock duration.
func (r *ReleaseReport) Total() time.Duration { return time.Duration(r.TotalNS) }

// Phase returns the summed duration of all finished spans with the given
// name (0 when the phase never ran).
func (r *ReleaseReport) Phase(name string) time.Duration {
	return time.Duration(r.PhaseNS[name])
}

// WriteFile marshals the report (indented JSON) to path.
func (r *ReleaseReport) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadReleaseReport loads a report written by WriteFile.
func ReadReleaseReport(path string) (*ReleaseReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ReleaseReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// buildReleaseReport assembles the report from the run summary, the
// counter snapshots and the finished span stream.
func buildReleaseReport(rep *Report, fraction float64, before, after map[string]int64, spans []obs.SpanRecord) *ReleaseReport {
	rr := &ReleaseReport{
		BatchFraction:  fraction,
		Restarts:       rep.Restarts,
		Failed:         rep.Failed,
		TotalNS:        rep.Total.Nanoseconds(),
		CountersBefore: before,
		CountersAfter:  after,
		PhaseNS:        map[string]int64{},
		PhaseCount:     map[string]int64{},
	}
	if rr.CountersBefore == nil {
		rr.CountersBefore = map[string]int64{}
	}
	if rr.CountersAfter == nil {
		rr.CountersAfter = map[string]int64{}
	}
	for _, b := range rep.Batches {
		rb := ReleaseBatch{
			Targets:    append([]string(nil), b.Targets...),
			DurationNS: b.Duration.Nanoseconds(),
		}
		for _, err := range b.Errors {
			rb.Errors = append(rb.Errors, err.Error())
		}
		rr.Batches = append(rr.Batches, rb)
	}
	for _, s := range spans {
		rr.PhaseNS[s.Name] += int64(s.Duration())
		rr.PhaseCount[s.Name]++
	}
	if len(spans) > 0 {
		rr.Spans = obs.BuildTree(spans)
	}
	return rr
}
