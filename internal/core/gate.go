// Health-gate arithmetic: the counter-delta math a release orchestrator
// uses to decide whether a canary batch is healthy enough to promote.
//
// The inputs are the same counter snapshots a ReleaseReport brackets a
// release with (CountersBefore/CountersAfter); the output is a plain
// HealthDelta whose fields are guaranteed finite — a canary node that saw
// no traffic during the observation window yields Inconclusive=true and
// zero rates, never a NaN or Inf that would corrupt a gate decision.
package core

// HealthDelta summarises one node's serving health over an observation
// window, derived from two cumulative counter snapshots.
type HealthDelta struct {
	// Requests and Errors are the window deltas (after - before), summed
	// over the request/error counter keys. Negative per-key deltas (a
	// counter reset between snapshots) are clamped to zero rather than
	// poisoning the sums.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// ErrorRate is Errors/Requests over the window; 0 when the window saw
	// no requests (see Inconclusive). Always finite.
	ErrorRate float64 `json:"error_rate"`
	// BaselineRequests / BaselineErrors / BaselineErrorRate are the same
	// quantities for the whole pre-window history (the "before" snapshot
	// alone), the baseline the window is compared against.
	BaselineRequests  int64   `json:"baseline_requests"`
	BaselineErrors    int64   `json:"baseline_errors"`
	BaselineErrorRate float64 `json:"baseline_error_rate"`
	// ErrorRateDelta is ErrorRate - BaselineErrorRate (0 when either side
	// is inconclusive). Always finite.
	ErrorRateDelta float64 `json:"error_rate_delta"`
	// Inconclusive reports that the window saw zero requests, so the
	// error rate carries no information: the node may be healthy, or it
	// may not be receiving traffic at all. Gate logic must treat this as
	// "cannot decide", not as "healthy".
	Inconclusive bool `json:"inconclusive"`
}

// safeRate is errors/requests with the zero-request guard: division by
// zero here is a real production hazard (a canary picked during a traffic
// trough), and NaN compares false against every threshold, which would
// silently promote an unobserved node.
func safeRate(errors, requests int64) float64 {
	if requests <= 0 {
		return 0
	}
	return float64(errors) / float64(requests)
}

// sumKeys sums the named counters in snap (missing keys count zero).
func sumKeys(snap map[string]int64, keys []string) int64 {
	var t int64
	for _, k := range keys {
		t += snap[k]
	}
	return t
}

// HealthDeltaBetween computes the windowed health delta between two
// cumulative counter snapshots. requestKeys and errorKeys name the
// counters summed into the request and error totals; keys absent from a
// snapshot contribute zero, and per-key negative deltas (counter resets)
// are clamped to zero. The result is always finite.
func HealthDeltaBetween(before, after map[string]int64, requestKeys, errorKeys []string) HealthDelta {
	window := func(keys []string) int64 {
		var t int64
		for _, k := range keys {
			if d := after[k] - before[k]; d > 0 {
				t += d
			}
		}
		return t
	}
	d := HealthDelta{
		Requests:         window(requestKeys),
		Errors:           window(errorKeys),
		BaselineRequests: sumKeys(before, requestKeys),
		BaselineErrors:   sumKeys(before, errorKeys),
	}
	d.ErrorRate = safeRate(d.Errors, d.Requests)
	d.BaselineErrorRate = safeRate(d.BaselineErrors, d.BaselineRequests)
	d.Inconclusive = d.Requests == 0
	if !d.Inconclusive {
		d.ErrorRateDelta = d.ErrorRate - d.BaselineErrorRate
	}
	return d
}

// HealthDelta computes the release-window health delta from the report's
// own counter snapshots (CountersBefore vs CountersAfter). It carries the
// same zero-request guarantees as HealthDeltaBetween.
func (r *ReleaseReport) HealthDelta(requestKeys, errorKeys []string) HealthDelta {
	return HealthDeltaBetween(r.CountersBefore, r.CountersAfter, requestKeys, errorKeys)
}
