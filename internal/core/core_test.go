package core

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"zdr/internal/appserver"
	"zdr/internal/http1"
	"zdr/internal/metrics"
	"zdr/internal/proxy"
)

// fakeTarget is a scripted Restartable for Plan/Run unit tests.
type fakeTarget struct {
	name  string
	delay time.Duration
	err   error

	mu       sync.Mutex
	restarts int
	at       []time.Time
}

func (f *fakeTarget) Name() string { return f.name }
func (f *fakeTarget) Restart(opts ...RestartOption) error {
	f.mu.Lock()
	f.restarts++
	f.at = append(f.at, time.Now())
	f.mu.Unlock()
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return f.err
}

func TestRunRestartsEveryTarget(t *testing.T) {
	var targets []Restartable
	var fakes []*fakeTarget
	for i := 0; i < 10; i++ {
		f := &fakeTarget{name: fmt.Sprintf("t%d", i)}
		fakes = append(fakes, f)
		targets = append(targets, f)
	}
	rep, err := Run(Plan{BatchFraction: 0.2}, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 10 || rep.Failed != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Batches) != 5 {
		t.Fatalf("batches = %d, want 5 (20%% of 10)", len(rep.Batches))
	}
	for _, f := range fakes {
		if f.restarts != 1 {
			t.Fatalf("%s restarted %d times", f.name, f.restarts)
		}
	}
}

func TestRunBatchSizing(t *testing.T) {
	cases := []struct {
		n        int
		fraction float64
		batches  int
	}{
		{10, 0.5, 2},
		{10, 1.0, 1},
		{3, 0.2, 3},  // batch size clamps to 1
		{10, -1, 5},  // invalid fraction -> default 0.2
		{10, 1.5, 5}, // invalid fraction -> default 0.2
	}
	for _, c := range cases {
		var targets []Restartable
		for i := 0; i < c.n; i++ {
			targets = append(targets, &fakeTarget{name: fmt.Sprintf("t%d", i)})
		}
		rep, err := Run(Plan{BatchFraction: c.fraction}, targets, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Batches) != c.batches {
			t.Fatalf("n=%d f=%v: batches = %d, want %d", c.n, c.fraction, len(rep.Batches), c.batches)
		}
	}
}

func TestRunRecordsErrorsAndContinues(t *testing.T) {
	boom := errors.New("boom")
	targets := []Restartable{
		&fakeTarget{name: "a", err: boom},
		&fakeTarget{name: "b"},
	}
	reg := metrics.NewRegistry()
	rep, err := Run(Plan{BatchFraction: 0.5}, targets, reg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Restarts != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if reg.CounterValue("core.restart_failures") != 1 {
		t.Fatal("failure not counted")
	}
}

func TestRunFailFast(t *testing.T) {
	boom := errors.New("boom")
	second := &fakeTarget{name: "b"}
	targets := []Restartable{&fakeTarget{name: "a", err: boom}, second}
	_, err := Run(Plan{BatchFraction: 0.5, FailFast: true}, targets, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if second.restarts != 0 {
		t.Fatal("fail-fast still restarted the next batch")
	}
}

func TestRunBatchesAreConcurrentWithinSequentialBatches(t *testing.T) {
	a := &fakeTarget{name: "a", delay: 100 * time.Millisecond}
	b := &fakeTarget{name: "b", delay: 100 * time.Millisecond}
	c := &fakeTarget{name: "c"}
	rep, err := Run(Plan{BatchFraction: 0.67}, []Restartable{a, b, c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// a and b share a batch → total should be ~100ms, not ~200ms.
	if rep.Total > 300*time.Millisecond {
		t.Fatalf("batch concurrency broken: total = %v", rep.Total)
	}
	if c.at[0].Before(a.at[0].Add(90 * time.Millisecond)) {
		t.Fatal("second batch started before first finished")
	}
}

// TestProxySlotGenerations drives two successive zero-downtime restarts of
// a real Edge proxy under continuous load: three generations, one socket,
// zero failed requests.
func TestProxySlotGenerations(t *testing.T) {
	gen := 0
	slot := &ProxySlot{
		SlotName: "edge-slot",
		Path:     filepath.Join(t.TempDir(), "edge.sock"),
		Build: func() *proxy.Proxy {
			gen++
			return proxy.New(proxy.Config{
				Name:          fmt.Sprintf("edge-g%d", gen),
				Role:          proxy.RoleEdge,
				Origins:       []string{"127.0.0.1:1"}, // unused: static only
				DrainPeriod:   100 * time.Millisecond,
				StaticContent: map[string][]byte{"/s": []byte("static")},
			}, nil)
		},
	}
	if err := slot.Start(); err != nil {
		t.Fatal(err)
	}
	defer slot.Close()
	addr := slot.Current().Addr(proxy.VIPWeb)

	stop := make(chan struct{})
	loadErr := make(chan error, 1)
	go func() {
		defer close(loadErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				loadErr <- err
				return
			}
			if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/s", nil, 0)); err != nil {
				loadErr <- err
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Now().Add(3 * time.Second))
			resp, err := http1.ReadResponse(bufio.NewReader(conn))
			if err != nil || resp.StatusCode != 200 {
				loadErr <- fmt.Errorf("resp=%v err=%v", resp, err)
				conn.Close()
				return
			}
			http1.ReadFullBody(resp.Body)
			conn.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond)

	for i := 0; i < 2; i++ {
		if err := slot.Restart(); err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
		time.Sleep(150 * time.Millisecond)
	}
	if slot.Generation() != 3 {
		t.Fatalf("generation = %d, want 3", slot.Generation())
	}
	close(stop)
	if err, ok := <-loadErr; ok && err != nil {
		t.Fatalf("load failed across generations: %v", err)
	}
	if slot.Current().Addr(proxy.VIPWeb) != addr {
		t.Fatal("VIP address changed across takeover — socket was rebound")
	}
}

// TestAppServerSlotRestart replaces an app-server generation on the same
// address.
func TestAppServerSlotRestart(t *testing.T) {
	gen := 0
	slot := &AppServerSlot{
		SlotName: "as-slot",
		Build: func() *appserver.Server {
			gen++
			return appserver.New(appserver.Config{
				Name:        fmt.Sprintf("as-g%d", gen),
				DrainPeriod: 20 * time.Millisecond,
			}, nil)
		},
	}
	if err := slot.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer slot.Close()
	addr := slot.Addr()

	get := func() string {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer conn.Close()
		http1.WriteRequest(conn, http1.NewRequest("GET", "/", nil, 0))
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		resp, err := http1.ReadResponse(bufio.NewReader(conn))
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		http1.ReadFullBody(resp.Body)
		return resp.Header.Get("X-Served-By")
	}
	if got := get(); got != "as-g1" {
		t.Fatalf("generation 1 served by %q", got)
	}
	if err := slot.Restart(); err != nil {
		t.Fatal(err)
	}
	if got := get(); got != "as-g2" {
		t.Fatalf("generation 2 served by %q", got)
	}
	if slot.Addr() != addr {
		t.Fatal("address changed across app server restart")
	}
}

func TestSlotDoubleStartErrors(t *testing.T) {
	slot := &AppServerSlot{SlotName: "x", Build: func() *appserver.Server {
		return appserver.New(appserver.Config{Name: "a"}, nil)
	}}
	if err := slot.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer slot.Close()
	if err := slot.Start("127.0.0.1:0"); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestRestartBeforeStartErrors(t *testing.T) {
	ps := &ProxySlot{SlotName: "p", Build: func() *proxy.Proxy { return nil }}
	if err := ps.Restart(); err == nil {
		t.Fatal("restart before start accepted")
	}
	as := &AppServerSlot{SlotName: "a", Build: func() *appserver.Server { return nil }}
	if err := as.Restart(); err == nil {
		t.Fatal("restart before start accepted")
	}
}

// TestProxySlotRestartFresh exercises the §5.1 remediation path: the next
// generation binds brand-new sockets on the same addresses (SO_REUSEPORT
// coexistence) instead of inheriting FDs — no downtime for TCP service.
func TestProxySlotRestartFresh(t *testing.T) {
	gen := 0
	build := func(addrs map[string]string) *proxy.Proxy {
		gen++
		return proxy.New(proxy.Config{
			Name:          fmt.Sprintf("edge-fresh-g%d", gen),
			Role:          proxy.RoleEdge,
			Origins:       []string{"127.0.0.1:1"},
			DrainPeriod:   100 * time.Millisecond,
			StaticContent: map[string][]byte{"/s": []byte("static")},
			VIPAddrs:      addrs,
		}, nil)
	}
	slot := &ProxySlot{
		SlotName: "edge-fresh",
		Path:     filepath.Join(t.TempDir(), "fresh.sock"),
		Build:    func() *proxy.Proxy { return build(nil) },
	}
	if err := slot.Start(); err != nil {
		t.Fatal(err)
	}
	defer slot.Close()
	addr := slot.Current().Addr(proxy.VIPWeb)

	get := func() (string, error) {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return "", err
		}
		defer conn.Close()
		if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/s", nil, 0)); err != nil {
			return "", err
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		resp, err := http1.ReadResponse(bufio.NewReader(conn))
		if err != nil {
			return "", err
		}
		http1.ReadFullBody(resp.Body)
		return resp.Header.Get("Via"), nil
	}

	if via, err := get(); err != nil || via != "edge-fresh-g1" {
		t.Fatalf("gen1: via=%q err=%v", via, err)
	}
	if err := slot.RestartFresh(build); err != nil {
		t.Fatal(err)
	}
	if slot.Generation() != 2 {
		t.Fatalf("generation = %d", slot.Generation())
	}
	if slot.Current().Addr(proxy.VIPWeb) != addr {
		t.Fatal("fresh restart changed the VIP address")
	}
	// New connections now land on generation 2 (the old accept loops are
	// stopped); every request must succeed throughout.
	deadline := time.Now().Add(3 * time.Second)
	for {
		via, err := get()
		if err != nil {
			t.Fatalf("request failed during fresh restart: %v", err)
		}
		if via == "edge-fresh-g2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("generation 2 never took over new connections (still %q)", via)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A further normal takeover restart still works after a fresh one.
	if err := slot.Restart(); err != nil {
		t.Fatalf("takeover restart after fresh restart: %v", err)
	}
	if via, err := get(); err != nil || via != "edge-fresh-g3" {
		t.Fatalf("gen3: via=%q err=%v", via, err)
	}
}
