package core

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"zdr/internal/metrics"
	"zdr/internal/obs"
)

// tracedFake is a scripted Restartable that honours WithTrace: a traced
// restart records a nested work span so report tests see a realistic
// tree.
type tracedFake struct {
	fakeTarget
	traced int
}

func (f *tracedFake) Restart(opts ...RestartOption) error {
	var o RestartOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.Trace == nil {
		return f.fakeTarget.Restart()
	}
	f.traced++
	sp := o.Trace.StartChild("slot.restart")
	sp.SetAttr("slot", f.name)
	defer sp.End()
	work := sp.StartChild("slot.drain")
	time.Sleep(f.delay)
	work.End()
	err := f.fakeTarget.Restart()
	sp.Fail(err)
	return err
}

func TestRunTracedBuildsReleaseReport(t *testing.T) {
	tr := obs.NewTracer("core-test")
	a := &tracedFake{fakeTarget: fakeTarget{name: "a", delay: 2 * time.Millisecond}}
	b := &tracedFake{fakeTarget: fakeTarget{name: "b"}}
	c := &fakeTarget{name: "c", err: errors.New("scripted failure")} // untraced path
	reg := metrics.NewRegistry()
	reg.Counter("preexisting").Add(4)

	rep, err := Run(Plan{BatchFraction: 0.34, Trace: tr}, []Restartable{a, b, c}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if a.traced != 1 || b.traced != 1 {
		t.Fatalf("traced restarts = %d, %d; want 1, 1", a.traced, b.traced)
	}
	rr := rep.Release
	if rr == nil {
		t.Fatal("traced run produced no ReleaseReport")
	}
	if rr.Restarts != 3 || rr.Failed != 1 {
		t.Fatalf("restarts/failed = %d/%d", rr.Restarts, rr.Failed)
	}
	if len(rr.Batches) != 3 || rr.Batches[2].Errors[0] == "" {
		t.Fatalf("batches = %+v", rr.Batches)
	}
	if rr.CountersBefore["preexisting"] != 4 || rr.CountersBefore["core.restarts"] != 0 {
		t.Fatalf("counters before = %v", rr.CountersBefore)
	}
	if rr.CountersAfter["core.restarts"] != 3 || rr.CountersAfter["core.restart_failures"] != 1 {
		t.Fatalf("counters after = %v", rr.CountersAfter)
	}
	// Phase accounting: one release, three batches, two traced restarts.
	for phase, want := range map[string]int64{
		"release": 1, "release.batch": 3, "slot.restart": 2, "slot.drain": 2,
	} {
		if got := rr.PhaseCount[phase]; got != want {
			t.Errorf("PhaseCount[%q] = %d, want %d", phase, got, want)
		}
	}
	if rr.Phase("slot.drain") < 2*time.Millisecond {
		t.Fatalf("Phase(slot.drain) = %v, want >= 2ms", rr.Phase("slot.drain"))
	}
	if rr.Phase("release") < rr.Phase("release.batch") {
		t.Fatal("release phase shorter than its batches")
	}
	if rr.TotalNS <= 0 || rr.Total() != time.Duration(rr.TotalNS) {
		t.Fatalf("TotalNS = %d", rr.TotalNS)
	}
	// Exactly one root: the release span, with every batch under it.
	if len(rr.Spans) != 1 || rr.Spans[0].Name != "release" {
		t.Fatalf("span forest roots = %+v", rr.Spans)
	}
	if len(rr.Spans[0].Children) != 3 {
		t.Fatalf("release children = %d, want 3 batches", len(rr.Spans[0].Children))
	}
}

func TestReleaseReportJSONRoundTrip(t *testing.T) {
	tr := obs.NewTracer("core-test")
	a := &tracedFake{fakeTarget: fakeTarget{name: "a", delay: time.Millisecond}}
	path := filepath.Join(t.TempDir(), "release.json")
	rep, err := Run(Plan{Trace: tr, ReportPath: path}, []Restartable{a}, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadReleaseReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Release, back) {
		t.Fatalf("report did not survive the JSON round-trip:\nwrote %+v\nread  %+v", rep.Release, back)
	}
	if back.Phase("slot.restart") < time.Millisecond {
		t.Fatalf("reloaded Phase(slot.restart) = %v", back.Phase("slot.restart"))
	}
}

func TestRunReportPathWithoutTracer(t *testing.T) {
	a := &fakeTarget{name: "a"}
	path := filepath.Join(t.TempDir(), "release.json")
	rep, err := Run(Plan{ReportPath: path}, []Restartable{a}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Release == nil {
		t.Fatal("ReportPath alone should still build the report")
	}
	if len(rep.Release.Spans) != 0 {
		t.Fatal("untraced run has spans")
	}
	back, err := ReadReleaseReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Restarts != 1 {
		t.Fatalf("reloaded report = %+v", back)
	}
}

func TestRunFailFastStillWritesReport(t *testing.T) {
	tr := obs.NewTracer("core-test")
	bad := &fakeTarget{name: "bad", err: errors.New("boom")}
	never := &fakeTarget{name: "never"}
	path := filepath.Join(t.TempDir(), "release.json")
	rep, err := Run(Plan{BatchFraction: 0.5, FailFast: true, Trace: tr, ReportPath: path},
		[]Restartable{bad, never}, nil)
	if err == nil {
		t.Fatal("FailFast swallowed the error")
	}
	if rep.Release == nil || rep.Release.Failed != 1 {
		t.Fatalf("release report = %+v", rep.Release)
	}
	if never.restarts != 0 {
		t.Fatal("FailFast still restarted the second batch")
	}
	back, err := ReadReleaseReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Batches) != 1 || len(back.Batches[0].Errors) != 1 {
		t.Fatalf("aborted report batches = %+v", back.Batches)
	}
	// The root release span is closed and errored even on the abort path.
	if len(back.Spans) != 1 || back.Spans[0].Error == "" || back.Spans[0].EndUnixNano == 0 {
		t.Fatalf("release span on abort = %+v", back.Spans)
	}
}
