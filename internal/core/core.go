// Package core is the Zero Downtime Release framework itself — the
// orchestration layer that composes the three mechanisms (Socket Takeover,
// Downstream Connection Reuse, Partial Post Replay) into disruption-free
// rolling releases across a fleet (§4).
//
// The pieces:
//
//   - ProxySlot manages successive generations of one Proxygen instance on
//     a fixed takeover path: Restart spins up the new generation, performs
//     the Socket Takeover hand-off (which flips the old generation into
//     draining — triggering GOAWAY and DCR solicitations at the Origin),
//     and retires the old generation after its drain period.
//   - AppServerSlot manages an HHVM-style app server: Restart is a drain-
//     and-replace (the tier is too memory-constrained for two parallel
//     instances, §4.4) during which in-flight POSTs are handed back to the
//     downstream proxy via PPR.
//   - Release executes a rolling update over any set of Restartables in
//     batches (§2.3), recording per-batch and total completion times —
//     the quantity Fig. 16 reports.
package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"zdr/internal/appserver"
	"zdr/internal/faults"
	"zdr/internal/metrics"
	"zdr/internal/obs"
	"zdr/internal/proxy"
	"zdr/internal/takeover"
)

// ErrTakeoverNotArmed reports a partially successful restart: the new
// generation owns the sockets and is serving, but its takeover server
// could not bind the slot path, so the NEXT release cannot reach it.
// Traffic is fine; the slot is not releasable until RearmTakeover
// succeeds. Test with errors.Is.
var ErrTakeoverNotArmed = errors.New("core: new generation serving but takeover server not armed")

// RestartOptions configures a single Restart call. The zero value is an
// untraced restart; construct non-default calls with RestartOption values
// (WithTrace, ...).
type RestartOptions struct {
	// Trace, when non-nil, is the parent span under which the restart
	// records its "slot.restart" tree (with a "slot.drain" child covering
	// the old generation's retirement).
	Trace *obs.Span
}

// RestartOption mutates RestartOptions. Options are applied in order.
type RestartOption func(*RestartOptions)

// WithTrace records the restart as a span tree under parent. Run passes
// it automatically when Plan.Trace is set.
func WithTrace(parent *obs.Span) RestartOption {
	return func(o *RestartOptions) { o.Trace = parent }
}

// Restartable is one release target.
type Restartable interface {
	// Name identifies the instance.
	Name() string
	// Restart replaces the running generation with a new one, returning
	// once the new generation is serving. Options modify a single call;
	// no options means an untraced default restart.
	Restart(opts ...RestartOption) error
}

// DrainWaiter is a release target whose restarts leave background drains
// running. Run waits for them before assembling a traced report, so the
// report's slot.drain spans are complete.
type DrainWaiter interface {
	WaitDrains()
}

// ProxySlot manages generations of a Proxygen instance.
type ProxySlot struct {
	// SlotName identifies the slot (instance) in reports.
	SlotName string
	// Path is the fixed UNIX socket path used for Socket Takeover.
	Path string
	// Build constructs the next generation (the "new binary"). Called
	// once per Start/Restart.
	Build func() *proxy.Proxy
	// DrainWait is how long the old generation drains before termination.
	// Zero uses the old generation's own Shutdown default asynchronously.
	DrainWait time.Duration
	// RearmBackoff paces the new generation's attempts to re-bind the
	// takeover path after a hand-off (the old generation's server tears
	// its socket down asynchronously). The zero value uses the faults
	// package defaults (20ms base, doubling, 500ms cap, 10 attempts).
	RearmBackoff faults.Backoff
	// AbortRetries is how many times Restart rebuilds a fresh generation
	// and retries after a survivable hand-off failure: a pre-commit abort
	// (takeover.ErrAborted) or a post-commit undo (takeover.ErrUndone).
	// Both are the benign arm of the failure lattice — after an abort the
	// old generation never stopped accepting, and after an undo it
	// re-armed its listeners from the retained FDs and kept serving — so
	// a retry risks nothing. Zero means the default of 1 retry; negative
	// disables retries. Only non-survivable post-commit failures (the
	// sender itself died holding the sockets) surface to the caller,
	// whose last-resort remediation is RestartFresh (§5.1 rebind).
	AbortRetries int

	mu      sync.Mutex
	cur     *proxy.Proxy
	gen     int
	phase   string // restart state machine position ("" = steady state)
	armErr  error  // last takeover-server arming failure (nil = armed)
	drainWG sync.WaitGroup
}

// Start brings up the first generation.
func (s *ProxySlot) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur != nil {
		return errors.New("core: slot already started")
	}
	p := s.Build()
	if err := p.Listen(); err != nil {
		return err
	}
	if err := p.ServeTakeover(s.Path); err != nil {
		p.Close()
		return err
	}
	s.cur = p
	s.gen = 1
	return nil
}

// Current returns the serving generation.
func (s *ProxySlot) Current() *proxy.Proxy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// Generation returns the generation counter (1 = first).
func (s *ProxySlot) Generation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Name implements Restartable.
func (s *ProxySlot) Name() string { return s.SlotName }

// Restart performs a Zero Downtime Restart: the new generation takes the
// sockets over; the old generation drains (GOAWAY + DCR solicitations
// happen inside proxy.StartDraining) and terminates in the background.
// With WithTrace, the restart is recorded as a "slot.restart" span (with
// a "slot.drain" child covering the old generation's retirement).
func (s *ProxySlot) Restart(opts ...RestartOption) error {
	var o RestartOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.Trace == nil {
		return s.restart(nil)
	}
	sp := o.Trace.StartChild(obs.SpanSlotRestart)
	sp.SetAttr("slot", s.SlotName)
	defer sp.End()
	err := s.restart(sp)
	sp.Fail(err)
	return err
}

// Deprecated: RestartTraced is a legacy wrapper; use
// Restart(WithTrace(parent)).
func (s *ProxySlot) RestartTraced(parent *obs.Span) error {
	return s.Restart(WithTrace(parent))
}

// setPhase publishes the slot's restart state machine position for
// State() (""/steady, "handing-off", "committed-awaiting-ready",
// "rolling-back" while a committed hand-off unwinds, and the sticky
// "rolled-back" after the unwind completes — cleared by the next
// restart attempt).
func (s *ProxySlot) setPhase(phase string) {
	s.mu.Lock()
	s.phase = phase
	s.mu.Unlock()
}

func (s *ProxySlot) restart(sp *obs.Span) error {
	s.mu.Lock()
	old := s.cur
	s.mu.Unlock()
	if old == nil {
		return errors.New("core: slot not started")
	}
	retries := s.AbortRetries
	switch {
	case retries == 0:
		retries = 1
	case retries < 0:
		retries = 0
	}
	var next *proxy.Proxy
	for attempt := 0; ; attempt++ {
		next = s.Build()
		s.setPhase("handing-off")
		_, err := next.TakeoverFromWith(s.Path, proxy.TakeoverOptions{
			Trace:         sp,
			OnCommitted:   func() { s.setPhase("committed-awaiting-ready") },
			OnRollingBack: func() { s.setPhase("rolling-back") },
		})
		if err == nil {
			break
		}
		undone := errors.Is(err, takeover.ErrUndone)
		if undone {
			// The committed hand-off unwound: the old generation re-armed
			// from its retained FDs and keeps serving. Leave the sticky
			// "rolled-back" marker for /debug/release (a paused fleet is
			// diagnosed per node by this phase) until the next attempt.
			s.setPhase("rolled-back")
		} else {
			s.setPhase("")
		}
		// The failed generation is discarded either way; a retried
		// attempt needs a fresh Build (Adopt refuses reuse).
		next.Close()
		if !undone && !errors.Is(err, takeover.ErrAborted) {
			// Protocol/config failures (bad magic, rejected manifest,
			// dial exhaustion): the old generation keeps serving, but a
			// blind retry would fail identically.
			return fmt.Errorf("core: takeover failed, old generation keeps serving: %w", err)
		}
		if attempt >= retries {
			if undone {
				return fmt.Errorf("core: hand-off undone after commit %d time(s), old generation re-armed and keeps serving: %w", attempt+1, err)
			}
			return fmt.Errorf("core: takeover aborted before commit %d time(s), old generation keeps serving: %w", attempt+1, err)
		}
		// Pre-commit abort: the hand-off died before the old generation
		// stopped accepting, so no client saw anything. Post-commit undo:
		// the new generation stepped down and the old one re-armed its
		// listeners from the retained FDs, so again no client saw
		// anything. Either way a retry with a fresh receiver is safe.
		sp.SetAttr("abort_retries", strconv.Itoa(attempt+1))
	}
	s.setPhase("")
	// The hand-off flipped the old generation into draining via its
	// takeover server callback. Retire it in the background and promote
	// the new generation.
	drainSp := sp.StartChild(obs.SpanSlotDrain)
	drainSp.SetAttr("slot", s.SlotName)
	s.drainWG.Add(1)
	go func(old *proxy.Proxy) {
		defer s.drainWG.Done()
		defer drainSp.End()
		if s.DrainWait > 0 {
			time.Sleep(s.DrainWait)
			old.Close()
			return
		}
		old.Shutdown()
	}(old)
	// New generation stands up its own takeover server for the release
	// after this one. The old generation's server closed its socket after
	// the hand-off; backoff absorbs that teardown.
	return s.promote(next)
}

// WaitDrains blocks until every background drain started by Restart has
// retired its old generation. Implements DrainWaiter.
func (s *ProxySlot) WaitDrains() { s.drainWG.Wait() }

// State summarises the slot for /debug/release.
func (s *ProxySlot) State() obs.SlotState {
	s.mu.Lock()
	cur, gen, phase, armErr := s.cur, s.gen, s.phase, s.armErr
	s.mu.Unlock()
	st := obs.SlotState{
		Name:          s.SlotName,
		Generation:    gen,
		Phase:         phase,
		TakeoverArmed: cur != nil && armErr == nil,
	}
	if armErr != nil {
		st.ArmError = armErr.Error()
	}
	if cur != nil {
		ps := cur.ReleaseState()
		st.Draining = ps.Draining
		if len(ps.Slots) > 0 {
			st.Takeovers = ps.Slots[0].Takeovers
			st.TakeoverAborts = ps.Slots[0].TakeoverAborts
			st.TakeoverUndos = ps.Slots[0].TakeoverUndos
			st.Drains = ps.Slots[0].Drains
			if st.Phase == "" {
				st.Phase = ps.Slots[0].Phase
			}
		}
	}
	return st
}

// promote records next as the serving generation and arms its takeover
// server. next already owns the sockets at this point, so it is promoted
// even if arming fails — the alternative (an error pointing at a
// draining, soon-to-die generation) would strand the slot. An arming
// failure is surfaced via ErrTakeoverNotArmed and is recoverable with
// RearmTakeover.
func (s *ProxySlot) promote(next *proxy.Proxy) error {
	armErr := s.RearmBackoff.Retry(context.Background(), func() error {
		return next.ServeTakeover(s.Path)
	})
	s.mu.Lock()
	s.cur = next
	s.gen++
	gen := s.gen
	s.armErr = armErr
	s.mu.Unlock()
	if armErr != nil {
		return fmt.Errorf("%w (gen %d serves traffic; retry with RearmTakeover): %v", ErrTakeoverNotArmed, gen, armErr)
	}
	return nil
}

// TakeoverArmed reports whether the serving generation has a takeover
// server bound on the slot path (i.e. the slot is releasable).
func (s *ProxySlot) TakeoverArmed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur != nil && s.armErr == nil
}

// RearmTakeover retries arming the serving generation's takeover server
// after a Restart returned ErrTakeoverNotArmed. It is a no-op when the
// server is already armed.
func (s *ProxySlot) RearmTakeover() error {
	s.mu.Lock()
	cur, armErr := s.cur, s.armErr
	s.mu.Unlock()
	if cur == nil {
		return errors.New("core: slot not started")
	}
	if armErr == nil {
		return nil
	}
	err := s.RearmBackoff.Retry(context.Background(), func() error {
		return cur.ServeTakeover(s.Path)
	})
	s.mu.Lock()
	if s.cur == cur {
		s.armErr = err
	}
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrTakeoverNotArmed, err)
	}
	return nil
}

// RestartFresh performs the §5.1 remediation restart: instead of passing
// the existing socket FDs (whose in-kernel state survives a process
// restart — the pitfall behind the UDP GSO sk_buff bug the paper
// describes), the next generation binds BRAND-NEW sockets on the same
// addresses. SO_REUSEPORT lets old and new coexist during the switch, so
// TCP service continues; the trade-off is exactly the paper's: UDP VIPs
// suffer socket-ring flux during a fresh rebind, which is why this path
// is a rollback/mitigation tool, not the default.
//
// With drain-undo (takeover.ProtoDrainUndo) in place this is a LAST
// resort: a receiver that dies after COMMIT no longer needs it — the old
// generation re-arms from its retained FDs and Restart retries. The
// remaining case is the sender itself crashing post-commit while still
// holding the sockets.
//
// build receives the current generation's bound VIP addresses and must
// return a proxy configured to bind them (Config.VIPAddrs).
func (s *ProxySlot) RestartFresh(build func(vipAddrs map[string]string) *proxy.Proxy) error {
	s.mu.Lock()
	old := s.cur
	s.mu.Unlock()
	if old == nil {
		return errors.New("core: slot not started")
	}
	next := build(old.VIPAddrs())
	if next == nil {
		return errors.New("core: build returned nil")
	}
	if err := next.Listen(); err != nil {
		return fmt.Errorf("core: fresh rebind failed, old generation keeps serving: %w", err)
	}
	// Old generation leaves the pool: health answers DRAIN and its accept
	// loops stop, so the new sockets receive all new connections.
	old.StopTakeoverServer()
	old.StartDraining()
	go func(old *proxy.Proxy) {
		if s.DrainWait > 0 {
			time.Sleep(s.DrainWait)
			old.Close()
			return
		}
		old.Shutdown()
	}(old)
	return s.promote(next)
}

// Close shuts the current generation down.
func (s *ProxySlot) Close() {
	s.mu.Lock()
	cur := s.cur
	s.cur = nil
	s.mu.Unlock()
	if cur != nil {
		cur.Close()
	}
}

// AppServerSlot manages generations of an app server on a fixed address.
type AppServerSlot struct {
	// SlotName identifies the slot.
	SlotName string
	// Build constructs the next generation.
	Build func() *appserver.Server
	// BindBackoff paces the new generation's attempts to re-bind the
	// address the old generation is releasing. Zero value = defaults.
	BindBackoff faults.Backoff

	mu   sync.Mutex
	cur  *appserver.Server
	addr string
	gen  int
}

// Start brings up the first generation on addr ("127.0.0.1:0" for an
// ephemeral port; later generations reuse the resolved address).
func (s *AppServerSlot) Start(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur != nil {
		return errors.New("core: slot already started")
	}
	as := s.Build()
	bound, err := as.Listen(addr)
	if err != nil {
		return err
	}
	s.cur = as
	s.addr = bound
	s.gen = 1
	return nil
}

// Addr returns the slot's serving address.
func (s *AppServerSlot) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Current returns the serving generation.
func (s *AppServerSlot) Current() *appserver.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// Generation returns the generation counter.
func (s *AppServerSlot) Generation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Name implements Restartable.
func (s *AppServerSlot) Name() string { return s.SlotName }

// Restart drains the old generation (handing in-flight POSTs back via
// PPR), then binds the new generation on the same address. The brief
// listening gap is what the downstream proxy's retry logic (§4.4) covers.
// With WithTrace, the restart is recorded as a "slot.restart" span with a
// "slot.drain" child covering the old generation's synchronous drain.
func (s *AppServerSlot) Restart(opts ...RestartOption) error {
	var o RestartOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.Trace == nil {
		return s.restart(nil)
	}
	sp := o.Trace.StartChild(obs.SpanSlotRestart)
	sp.SetAttr("slot", s.SlotName)
	defer sp.End()
	err := s.restart(sp)
	sp.Fail(err)
	return err
}

// Deprecated: RestartTraced is a legacy wrapper; use
// Restart(WithTrace(parent)).
func (s *AppServerSlot) RestartTraced(parent *obs.Span) error {
	return s.Restart(WithTrace(parent))
}

// State summarises the slot for /debug/release.
func (s *AppServerSlot) State() obs.SlotState {
	s.mu.Lock()
	cur, gen := s.cur, s.gen
	s.mu.Unlock()
	st := obs.SlotState{Name: s.SlotName, Generation: gen}
	if cur != nil {
		st.Draining = cur.Draining()
	}
	return st
}

func (s *AppServerSlot) restart(sp *obs.Span) error {
	s.mu.Lock()
	old := s.cur
	addr := s.addr
	s.mu.Unlock()
	if old == nil {
		return errors.New("core: slot not started")
	}
	drainSp := sp.StartChild(obs.SpanSlotDrain)
	drainSp.SetAttr("slot", s.SlotName)
	old.Shutdown()
	drainSp.End()
	next := s.Build()
	err := s.BindBackoff.Retry(context.Background(), func() error {
		_, e := next.Listen(addr)
		return e
	})
	if err != nil {
		return fmt.Errorf("core: new generation cannot bind %s: %w", addr, err)
	}
	s.mu.Lock()
	s.cur = next
	s.gen++
	s.mu.Unlock()
	return nil
}

// Close shuts the current generation down.
func (s *AppServerSlot) Close() {
	s.mu.Lock()
	cur := s.cur
	s.cur = nil
	s.mu.Unlock()
	if cur != nil {
		cur.Close()
	}
}

// Plan configures a rolling release (§2.3: updates are released to
// batches of machines; each batch drains before the next begins).
type Plan struct {
	// BatchFraction is the fraction of the fleet restarted concurrently
	// (the paper evaluates 5%, 15% and 20%). Default 0.2.
	BatchFraction float64
	// BatchDelay is a pause between batches (the "time gap when one
	// batch finished and the other started" visible in Fig. 3a).
	BatchDelay time.Duration
	// FailFast aborts the release on the first restart error; otherwise
	// errors are recorded and the release continues.
	FailFast bool
	// Trace, when non-nil, records the release as a span tree: a root
	// "release" span, one "release.batch" span per batch, and per-target
	// "slot.restart" trees (Run passes WithTrace to every Restart).
	// The finished spans are folded into Report.Release.
	Trace *obs.Tracer
	// ReportPath, when non-empty, writes the ReleaseReport JSON there
	// after the release completes (even a FailFast-aborted one).
	ReportPath string
}

// BatchReport records one batch's outcome.
type BatchReport struct {
	Targets  []string
	Duration time.Duration
	Errors   []error
}

// Report summarises a release.
type Report struct {
	Total    time.Duration
	Batches  []BatchReport
	Restarts int
	Failed   int
	// Release is the machine-readable report (per-phase durations,
	// counters, span tree). Built when Plan.Trace or Plan.ReportPath is
	// set; nil otherwise.
	Release *ReleaseReport
}

// Run executes a rolling release over targets. Restarts within a batch run
// concurrently; batches are sequential.
//
// With Plan.Trace set, the release is recorded as a span tree (root
// "release" span, per-batch "release.batch" spans, per-target restart
// trees) and Report.Release carries the machine-readable ReleaseReport;
// Run waits for background drains (DrainWaiter targets) first so the
// report's drain spans are complete.
func Run(plan Plan, targets []Restartable, reg *metrics.Registry) (*Report, error) {
	if plan.BatchFraction <= 0 || plan.BatchFraction > 1 {
		plan.BatchFraction = 0.2
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	batchSize := int(float64(len(targets)) * plan.BatchFraction)
	if batchSize < 1 {
		batchSize = 1
	}
	wantReport := plan.Trace != nil || plan.ReportPath != ""
	var countersBefore map[string]int64
	if wantReport {
		countersBefore = reg.Snapshot().Counters
	}
	root := plan.Trace.StartSpan("release", obs.SpanContext{})
	root.SetAttr("targets", strconv.Itoa(len(targets)))
	root.SetAttr("batch_fraction", strconv.FormatFloat(plan.BatchFraction, 'g', -1, 64))

	report := &Report{}
	start := time.Now()
	// finish closes the release span, settles background drains, and
	// assembles the machine-readable report. Used by both the normal and
	// the FailFast-abort exits.
	finish := func(runErr error) (*Report, error) {
		report.Total = time.Since(start)
		root.Fail(runErr)
		root.End()
		if !wantReport {
			return report, runErr
		}
		if plan.Trace != nil {
			// Drains outlive Restart; wait so their spans are finished.
			for _, t := range targets {
				if dw, ok := t.(DrainWaiter); ok {
					dw.WaitDrains()
				}
			}
		}
		report.Release = buildReleaseReport(report, plan.BatchFraction,
			countersBefore, reg.Snapshot().Counters, plan.Trace.Finished())
		if plan.ReportPath != "" {
			if err := report.Release.WriteFile(plan.ReportPath); err != nil && runErr == nil {
				runErr = err
			}
		}
		return report, runErr
	}
	for off := 0; off < len(targets); off += batchSize {
		end := off + batchSize
		if end > len(targets) {
			end = len(targets)
		}
		batch := targets[off:end]
		br := BatchReport{}
		for _, t := range batch {
			br.Targets = append(br.Targets, t.Name())
		}
		bSp := root.StartChild("release.batch")
		bSp.SetAttr("batch", strconv.Itoa(len(report.Batches)))
		bStart := time.Now()
		errs := make([]error, len(batch))
		var wg sync.WaitGroup
		for i, t := range batch {
			wg.Add(1)
			go func(i int, t Restartable) {
				defer wg.Done()
				if plan.Trace != nil {
					errs[i] = t.Restart(WithTrace(bSp))
					return
				}
				errs[i] = t.Restart()
			}(i, t)
		}
		wg.Wait()
		for _, err := range errs {
			report.Restarts++
			reg.Counter("core.restarts").Inc()
			if err != nil {
				report.Failed++
				reg.Counter("core.restart_failures").Inc()
				br.Errors = append(br.Errors, err)
			}
		}
		br.Duration = time.Since(bStart)
		if len(br.Errors) > 0 {
			bSp.Fail(br.Errors[0])
		}
		bSp.End()
		report.Batches = append(report.Batches, br)
		if plan.FailFast && len(br.Errors) > 0 {
			return finish(br.Errors[0])
		}
		if end < len(targets) && plan.BatchDelay > 0 {
			time.Sleep(plan.BatchDelay)
		}
	}
	return finish(nil)
}
