package core

import (
	"math"
	"testing"
)

var (
	reqKeys = []string{"edge.http.requests", "origin.http.requests"}
	errKeys = []string{"edge.http.errors.no_origin", "edge.http.errors.upstream"}
)

func assertFinite(t *testing.T, d HealthDelta) {
	t.Helper()
	for name, v := range map[string]float64{
		"ErrorRate":         d.ErrorRate,
		"BaselineErrorRate": d.BaselineErrorRate,
		"ErrorRateDelta":    d.ErrorRateDelta,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s is not finite: %v (delta %+v)", name, v, d)
		}
	}
}

// TestHealthDeltaZeroRequestWindow pins the division-by-zero guard: a
// canary node that saw no traffic during the window must yield a finite,
// Inconclusive delta — never NaN, which compares false against every
// threshold and would silently pass the gate.
func TestHealthDeltaZeroRequestWindow(t *testing.T) {
	before := map[string]int64{"edge.http.requests": 100, "edge.http.errors.upstream": 2}
	after := map[string]int64{"edge.http.requests": 100, "edge.http.errors.upstream": 2}
	d := HealthDeltaBetween(before, after, reqKeys, errKeys)
	assertFinite(t, d)
	if !d.Inconclusive {
		t.Fatalf("zero-request window must be inconclusive: %+v", d)
	}
	if d.Requests != 0 || d.Errors != 0 || d.ErrorRate != 0 || d.ErrorRateDelta != 0 {
		t.Fatalf("zero-request window must zero the window fields: %+v", d)
	}
	if d.BaselineRequests != 100 || d.BaselineErrorRate != 0.02 {
		t.Fatalf("baseline mis-summed: %+v", d)
	}
}

// TestHealthDeltaZeroBaseline covers the other division: a node whose
// pre-release history is empty (fresh counters) must not NaN the baseline
// rate or the delta.
func TestHealthDeltaZeroBaseline(t *testing.T) {
	before := map[string]int64{}
	after := map[string]int64{"edge.http.requests": 50, "edge.http.errors.upstream": 5}
	d := HealthDeltaBetween(before, after, reqKeys, errKeys)
	assertFinite(t, d)
	if d.Inconclusive {
		t.Fatalf("50-request window is conclusive: %+v", d)
	}
	if d.ErrorRate != 0.1 || d.BaselineErrorRate != 0 || d.ErrorRateDelta != 0.1 {
		t.Fatalf("rates wrong: %+v", d)
	}
}

// TestHealthDeltaErrorsWithoutRequests is the pathological corner: error
// counters moved but no request counter did (e.g. probe failures counted
// out-of-band). The window stays inconclusive and finite instead of
// reporting an infinite error rate.
func TestHealthDeltaErrorsWithoutRequests(t *testing.T) {
	before := map[string]int64{"edge.http.errors.upstream": 0}
	after := map[string]int64{"edge.http.errors.upstream": 7}
	d := HealthDeltaBetween(before, after, reqKeys, errKeys)
	assertFinite(t, d)
	if !d.Inconclusive {
		t.Fatalf("no requests -> inconclusive, got %+v", d)
	}
	if d.Errors != 7 {
		t.Fatalf("window errors = %d, want 7", d.Errors)
	}
}

// TestHealthDeltaCounterReset: a per-key negative delta (counter reset
// between snapshots, e.g. a registry swap) is clamped to zero instead of
// dragging the sums negative.
func TestHealthDeltaCounterReset(t *testing.T) {
	before := map[string]int64{"edge.http.requests": 100, "origin.http.requests": 40}
	after := map[string]int64{"edge.http.requests": 10, "origin.http.requests": 70}
	d := HealthDeltaBetween(before, after, reqKeys, errKeys)
	assertFinite(t, d)
	if d.Requests != 30 {
		t.Fatalf("reset key must clamp to zero: requests = %d, want 30", d.Requests)
	}
}

// TestHealthDeltaNormal is the ordinary case the gate exists for: a bad
// canary pushing the window error rate above baseline.
func TestHealthDeltaNormal(t *testing.T) {
	before := map[string]int64{"edge.http.requests": 1000, "edge.http.errors.upstream": 10}
	after := map[string]int64{"edge.http.requests": 1200, "edge.http.errors.upstream": 60}
	d := HealthDeltaBetween(before, after, reqKeys, errKeys)
	assertFinite(t, d)
	if d.Requests != 200 || d.Errors != 50 {
		t.Fatalf("window deltas wrong: %+v", d)
	}
	if d.ErrorRate != 0.25 || d.BaselineErrorRate != 0.01 {
		t.Fatalf("rates wrong: %+v", d)
	}
	if got, want := d.ErrorRateDelta, 0.24; math.Abs(got-want) > 1e-12 {
		t.Fatalf("delta = %v, want %v", got, want)
	}
}

// TestReleaseReportHealthDelta wires the helper through the report's own
// snapshots, including the nil-map zero value a FailFast abort can leave.
func TestReleaseReportHealthDelta(t *testing.T) {
	rr := &ReleaseReport{
		CountersBefore: map[string]int64{"edge.http.requests": 10},
		CountersAfter:  map[string]int64{"edge.http.requests": 30, "edge.http.errors.no_origin": 4},
	}
	d := rr.HealthDelta(reqKeys, errKeys)
	assertFinite(t, d)
	if d.Requests != 20 || d.Errors != 4 || d.ErrorRate != 0.2 {
		t.Fatalf("report delta wrong: %+v", d)
	}

	empty := &ReleaseReport{}
	d = empty.HealthDelta(reqKeys, errKeys)
	assertFinite(t, d)
	if !d.Inconclusive {
		t.Fatalf("empty report must be inconclusive: %+v", d)
	}
}
