package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 4) },
		func() { ExpBuckets(1, 1, 4) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid ExpBuckets args did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestAtomicHistogramBucketing(t *testing.T) {
	h := NewAtomicHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 100, 1e6} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Upper bounds are inclusive: 1 lands in [.., 1], 10 in (1, 10], etc.
	wantCounts := []int64{2, 2, 2, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d count = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if got, want := s.Sum, 0.5+1+5+10+50+100+1e6; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestAtomicHistogramNonFiniteDropped(t *testing.T) {
	h := NewAtomicHistogram([]float64{1, 10})
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("non-finite observations recorded: count=%d sum=%g", h.Count(), h.Sum())
	}
	h.Observe(5)
	if s := h.Snapshot(); s.Count != 1 || math.IsNaN(s.Sum) {
		t.Fatalf("snapshot poisoned after NaN: %+v", s)
	}
}

func TestAtomicHistogramEmpty(t *testing.T) {
	h := NewAtomicHistogram(nil) // default buckets
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
	if m := h.Mean(); m != 0 {
		t.Fatalf("empty mean = %g, want 0", m)
	}
	var nilH *AtomicHistogram
	nilH.Observe(1) // must not panic
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram not inert")
	}
	if err := nilH.Merge(h); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

func TestAtomicHistogramQuantile(t *testing.T) {
	h := NewAtomicHistogram(ExpBuckets(1, 2, 12)) // 1..2048
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i))
	}
	// The estimator interpolates within log buckets, so tolerate a
	// bucket's width of error.
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 500, 260},
		{0.99, 990, 520},
		{0, 0, 1.5},
		{1, 999, 1050},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Fatalf("q%g = %g, want %g ± %g", tc.q, got, tc.want, tc.tol)
		}
	}
	// Overflow bucket reports the largest finite bound.
	ho := NewAtomicHistogram([]float64{1, 2})
	ho.Observe(50)
	if q := ho.Quantile(0.99); q != 2 {
		t.Fatalf("overflow quantile = %g, want 2", q)
	}
}

func TestAtomicHistogramMerge(t *testing.T) {
	a := NewAtomicHistogram([]float64{1, 10, 100})
	b := NewAtomicHistogram([]float64{1, 10, 100})
	a.Observe(0.5)
	b.Observe(50)
	b.Observe(500)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	s := a.Snapshot()
	if s.Count != 3 || s.Counts[0] != 1 || s.Counts[2] != 1 || s.Counts[3] != 1 {
		t.Fatalf("merged snapshot %+v", s)
	}
	c := NewAtomicHistogram([]float64{1, 10})
	if err := a.Merge(c); err == nil {
		t.Fatal("merging incompatible bounds succeeded")
	}
}

func TestAtomicSnapshotMergeAndSub(t *testing.T) {
	h := NewAtomicHistogram([]float64{1, 10})
	h.Observe(0.5)
	base := h.Snapshot()
	h.Observe(5)
	h.Observe(5)
	win := h.Snapshot().Sub(base)
	if win.Count != 2 || win.Counts[1] != 2 || win.Counts[0] != 0 {
		t.Fatalf("windowed delta %+v", win)
	}
	if math.Abs(win.Sum-10) > 1e-9 {
		t.Fatalf("windowed sum = %g, want 10", win.Sum)
	}

	var fleet AtomicSnapshot // zero value is a valid merge seed
	if err := fleet.Merge(h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Merge(h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if fleet.Count != 6 {
		t.Fatalf("fleet count = %d, want 6", fleet.Count)
	}
	other := NewAtomicHistogram([]float64{1, 10, 100}).Snapshot()
	other.Count = 1
	if err := fleet.Merge(other); err == nil {
		t.Fatal("merging incompatible snapshot succeeded")
	}
}

// TestAtomicHistogramConcurrency exercises Observe/Merge/Snapshot under
// the race detector: many writers, periodic mergers, and a reader.
func TestAtomicHistogramConcurrency(t *testing.T) {
	h := NewAtomicHistogram(ExpBuckets(1, 2, 10))
	src := NewAtomicHistogram(ExpBuckets(1, 2, 10))
	src.Observe(3)
	const writers, perWriter = 8, 2000

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var cells int64
			for _, c := range s.Counts {
				cells += c
			}
			if cells < 0 {
				panic("negative bucket sum")
			}
			_ = s.Quantile(0.99)
		}
	}()

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(seed int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64((seed*perWriter + i) % 700))
				if i%500 == 0 {
					if err := h.Merge(src); err != nil {
						panic(err)
					}
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	wantMin := int64(writers * perWriter)
	if got := h.Count(); got < wantMin {
		t.Fatalf("count = %d, want >= %d", got, wantMin)
	}
}

func TestAtomicHistogramObserveAllocFree(t *testing.T) {
	h := NewAtomicHistogram(DefaultLatencyBuckets)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.003) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per op, want 0", allocs)
	}
}

func TestRegistryAtomicHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.AtomicHistogram("edge.http.latency")
	if h2 := r.AtomicHistogram("edge.http.latency"); h2 != h {
		t.Fatal("registry returned a different histogram for the same name")
	}
	h.Observe(0.005)
	snap := r.Snapshot()
	s, ok := snap.AtomicHistograms["edge.http.latency"]
	if !ok || s.Count != 1 {
		t.Fatalf("snapshot missing atomic histogram: %+v", snap.AtomicHistograms)
	}
	if dump := r.Dump(); dump == "" {
		t.Fatal("empty dump")
	}
}

// BenchmarkAtomicHistogramObserve vs BenchmarkSampledHistogramObserve is
// the PR's headline micro-comparison, recorded in BENCH_baseline.json:
// the atomic path must be allocation-free and ≥5× faster.
func BenchmarkAtomicHistogramObserve(b *testing.B) {
	h := NewAtomicHistogram(DefaultLatencyBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0001
		for pb.Next() {
			h.Observe(v)
			v *= 1.1
			if v > 10 {
				v = 0.0001
			}
		}
	})
}

func BenchmarkSampledHistogramObserve(b *testing.B) {
	h := NewHistogram(0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0001
		for pb.Next() {
			h.Observe(v)
			v *= 1.1
			if v > 10 {
				v = 0.0001
			}
		}
	})
}

// The *UnderScrape pair measures Observe while a background goroutine
// snapshots quantiles the way a /metrics scrape does. This is where the
// sampled histogram's design cost lives: Quantile sorts the retained
// sample array under the same mutex Observe needs, so every in-flight
// observation convoys behind a multi-millisecond sort. The atomic
// histogram has no shared lock to convoy on.
func BenchmarkAtomicHistogramObserveUnderScrape(b *testing.B) {
	h := NewAtomicHistogram(DefaultLatencyBuckets)
	for i := 0; i < 1<<16; i++ {
		h.Observe(float64(i&1023) / 1e4)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Snapshot().Quantile(0.99)
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.003)
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

func BenchmarkSampledHistogramObserveUnderScrape(b *testing.B) {
	h := NewHistogram(0)
	for i := 0; i < 1<<16; i++ {
		h.Observe(float64(i&1023) / 1e4)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Quantile(0.99)
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.003)
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

func BenchmarkAtomicHistogramSnapshot(b *testing.B) {
	h := NewAtomicHistogram(DefaultLatencyBuckets)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i) / 1000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		_ = s.Quantile(0.99)
	}
}
