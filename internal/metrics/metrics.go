// Package metrics implements the lightweight auditing primitives that the
// Zero Downtime Release evaluation relies on: counters, gauges, histograms
// with quantile estimation, and time-bucketed timelines.
//
// The paper (§6, "Evaluation Metrics") describes a monitoring system that
// collects per-instance signals in real time — HTTP status codes sent, TCP
// RSTs, number of MQTT connections, CPU utilization, requests per second —
// and aggregates them into the timelines and distributions shown in the
// figures. This package is that substrate: every other package in the
// repository emits into a Registry, and the experiment harness reads the
// aggregates back out.
//
// All types are safe for concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter. Negative deltas are ignored so that the
// counter remains monotone; use a Gauge for values that go down.
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that may go up or down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records observations and reports quantiles. It keeps all
// samples (bounded by maxSamples with reservoir-style decimation) which is
// appropriate for experiment-scale data volumes.
type Histogram struct {
	mu         sync.Mutex
	samples    []float64 // retained samples, always in arrival order
	sortCache  []float64 // sorted copy of samples; nil when stale
	count      int64
	sum        float64
	min, max   float64
	maxSamples int
}

// NewHistogram returns a histogram bounded to maxSamples retained samples.
// If maxSamples <= 0 a default of 1<<16 is used.
func NewHistogram(maxSamples int) *Histogram {
	if maxSamples <= 0 {
		maxSamples = 1 << 16
	}
	return &Histogram{maxSamples: maxSamples, min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records a sample. Non-finite values (NaN, ±Inf) are dropped:
// a single NaN would otherwise poison the running sum — and with it
// every Mean and Prometheus _sum line until process restart — and an
// Inf pins Min/Max forever. Dropping keeps snapshots finite by
// construction.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.samples) >= h.maxSamples {
		// Decimate: drop every other sample *in arrival order*. Samples
		// are never reordered in place (quantiles sort a cached copy), so
		// the survivors stay an unbiased stride over time rather than a
		// stride over the sorted values, which would thin one tail.
		kept := h.samples[:0]
		for i := 0; i < len(h.samples); i += 2 {
			kept = append(kept, h.samples[i])
		}
		h.samples = kept
	}
	h.samples = append(h.samples, v)
	h.sortCache = nil
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean of all observations, or 0 with no data.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 with no data.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 with no data.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (0 <= q <= 1) over retained samples using
// linear interpolation. Returns 0 with no data.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if h.sortCache == nil {
		h.sortCache = append(make([]float64, 0, n), h.samples...)
		sort.Float64s(h.sortCache)
	}
	if q <= 0 {
		return h.sortCache[0]
	}
	if q >= 1 {
		return h.sortCache[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return h.sortCache[lo]
	}
	frac := pos - float64(lo)
	return h.sortCache[lo]*(1-frac) + h.sortCache[hi]*frac
}

// Quantiles returns several quantiles at once under a single lock.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = h.quantileLocked(q)
	}
	return out
}

// Snapshot summarises the histogram.
type Snapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Snapshot returns a consistent summary of the histogram.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Snapshot{Count: h.count}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
		s.Min, s.Max = h.min, h.max
	}
	s.P50 = h.quantileLocked(0.50)
	s.P90 = h.quantileLocked(0.90)
	s.P99 = h.quantileLocked(0.99)
	s.P999 = h.quantileLocked(0.999)
	return s
}

// Timeline accumulates values into fixed-width time buckets relative to a
// start instant. It is how the paper's timeline figures (capacity, RPS,
// MQTT connections, CPU, publish messages) are assembled.
type Timeline struct {
	mu     sync.Mutex
	start  time.Time
	width  time.Duration
	sums   []float64
	counts []int64
}

// NewTimeline creates a timeline with the given bucket width, starting at
// start. Observations before start are clamped into bucket 0.
func NewTimeline(start time.Time, width time.Duration) *Timeline {
	if width <= 0 {
		panic("metrics: timeline bucket width must be positive")
	}
	return &Timeline{start: start, width: width}
}

// maxTimelineBuckets bounds memory: observations beyond the cap clamp
// into the final bucket rather than allocating without limit.
const maxTimelineBuckets = 1 << 20

func (t *Timeline) bucketFor(at time.Time) int {
	d := at.Sub(t.start)
	if d < 0 {
		return 0
	}
	b := int(d / t.width)
	if b >= maxTimelineBuckets {
		return maxTimelineBuckets - 1
	}
	return b
}

// ObserveAt adds v into the bucket containing at.
func (t *Timeline) ObserveAt(at time.Time, v float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.bucketFor(at)
	for len(t.sums) <= b {
		t.sums = append(t.sums, 0)
		t.counts = append(t.counts, 0)
	}
	t.sums[b] += v
	t.counts[b]++
}

// Sums returns a copy of the per-bucket sums.
func (t *Timeline) Sums() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]float64, len(t.sums))
	copy(out, t.sums)
	return out
}

// Means returns a copy of the per-bucket means (0 for empty buckets).
func (t *Timeline) Means() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]float64, len(t.sums))
	for i := range t.sums {
		if t.counts[i] > 0 {
			out[i] = t.sums[i] / float64(t.counts[i])
		}
	}
	return out
}

// Counts returns a copy of the per-bucket observation counts.
func (t *Timeline) Counts() []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int64, len(t.counts))
	copy(out, t.counts)
	return out
}

// BucketWidth returns the configured bucket width.
func (t *Timeline) BucketWidth() time.Duration { return t.width }

// Start returns the timeline origin.
func (t *Timeline) Start() time.Time { return t.start }

// Registry is a named collection of metrics. Names are free-form; by
// convention they are dotted paths like "proxy.http.status.500".
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	histograms  map[string]*Histogram
	atomicHists map[string]*AtomicHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		histograms:  make(map[string]*Histogram),
		atomicHists: make(map[string]*AtomicHistogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(0)
		r.histograms[name] = h
	}
	return h
}

// AtomicHistogram returns the named atomic (bucketed) histogram,
// creating it over bounds if needed. Empty bounds mean
// DefaultLatencyBuckets. Callers on a hot path should look the
// histogram up once and hold the pointer; the map access takes the
// registry lock.
func (r *Registry) AtomicHistogram(name string, bounds ...float64) *AtomicHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.atomicHists[name]
	if !ok {
		h = NewAtomicHistogram(bounds)
		r.atomicHists[name] = h
	}
	return h
}

// CounterValue returns the value of the named counter, or 0 if it was never
// created. It never creates the counter.
func (r *Registry) CounterValue(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// GaugeValue returns the value of the named gauge, or 0 if absent.
func (r *Registry) GaugeValue(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g.Value()
	}
	return 0
}

// CounterNames returns the sorted names of all counters.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegistrySnapshot is a plain copy of every metric in a Registry at one
// instant, shared by Dump, the Prometheus renderer, and release reports.
type RegistrySnapshot struct {
	Counters         map[string]int64          `json:"counters"`
	Gauges           map[string]int64          `json:"gauges"`
	Histograms       map[string]Snapshot       `json:"histograms"`
	AtomicHistograms map[string]AtomicSnapshot `json:"atomic_histograms,omitempty"`
}

// Snapshot captures every counter, gauge, and histogram in the registry.
// The returned maps are never nil.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	snap := RegistrySnapshot{
		Counters:         make(map[string]int64, len(r.counters)),
		Gauges:           make(map[string]int64, len(r.gauges)),
		Histograms:       make(map[string]Snapshot, len(r.histograms)),
		AtomicHistograms: make(map[string]AtomicSnapshot, len(r.atomicHists)),
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	ahists := make(map[string]*AtomicHistogram, len(r.atomicHists))
	for n, c := range r.counters {
		snap.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		snap.Gauges[n] = g.Value()
	}
	for n, h := range r.histograms {
		hists[n] = h
	}
	for n, h := range r.atomicHists {
		ahists[n] = h
	}
	r.mu.Unlock()
	for n, h := range hists {
		snap.Histograms[n] = h.Snapshot()
	}
	for n, h := range ahists {
		snap.AtomicHistograms[n] = h.Snapshot()
	}
	return snap
}

// Dump renders all counters, gauges, and histogram summaries as sorted
// text lines — useful for debugging test failures and the STATS probe.
func (r *Registry) Dump() string {
	snap := r.Snapshot()
	var rows []string
	for n, v := range snap.Counters {
		rows = append(rows, fmt.Sprintf("counter %s %d", n, v))
	}
	for n, v := range snap.Gauges {
		rows = append(rows, fmt.Sprintf("gauge %s %d", n, v))
	}
	for n, s := range snap.Histograms {
		rows = append(rows, fmt.Sprintf("histogram %s count=%d mean=%g p50=%g p99=%g",
			n, s.Count, s.Mean, s.P50, s.P99))
	}
	for n, s := range snap.AtomicHistograms {
		rows = append(rows, fmt.Sprintf("atomic-histogram %s count=%d mean=%g p50=%g p99=%g",
			n, s.Count, s.Mean(), s.Quantile(0.50), s.Quantile(0.99)))
	}
	sort.Strings(rows)
	out := ""
	for _, row := range rows {
		out += row + "\n"
	}
	return out
}
