package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("new counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(-2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter after negative add = %d, want 3", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 16, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("concurrent counter = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P999 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d", got)
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if p50 := h.Quantile(0.5); math.Abs(p50-50.5) > 1 {
		t.Fatalf("p50 = %v, want ~50.5", p50)
	}
	if p0 := h.Quantile(0); p0 != 1 {
		t.Fatalf("q0 = %v, want 1", p0)
	}
	if p1 := h.Quantile(1); p1 != 100 {
		t.Fatalf("q1 = %v, want 100", p1)
	}
}

func TestHistogramQuantilesMonotone(t *testing.T) {
	// Property: quantiles are non-decreasing in q for any data.
	f := func(data []float64) bool {
		h := NewHistogram(0)
		for _, v := range data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		qs := h.Quantiles(0, 0.25, 0.5, 0.75, 0.9, 0.99, 1)
		for i := 1; i < len(qs); i++ {
			if qs[i] < qs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramDecimation(t *testing.T) {
	h := NewHistogram(64)
	for i := 0; i < 10_000; i++ {
		h.Observe(float64(i % 100))
	}
	if got := h.Count(); got != 10_000 {
		t.Fatalf("count survived decimation = %d, want 10000", got)
	}
	// Quantiles stay in range even after decimation.
	if p50 := h.Quantile(0.5); p50 < 0 || p50 > 99 {
		t.Fatalf("p50 out of data range: %v", p50)
	}
}

func TestTimelineBuckets(t *testing.T) {
	start := time.Unix(1000, 0)
	tl := NewTimeline(start, time.Second)
	tl.ObserveAt(start, 1)
	tl.ObserveAt(start.Add(500*time.Millisecond), 2)
	tl.ObserveAt(start.Add(2*time.Second), 10)
	tl.ObserveAt(start.Add(-time.Hour), 100) // clamped to bucket 0
	sums := tl.Sums()
	if len(sums) != 3 {
		t.Fatalf("buckets = %d, want 3", len(sums))
	}
	if sums[0] != 103 || sums[1] != 0 || sums[2] != 10 {
		t.Fatalf("sums = %v", sums)
	}
	means := tl.Means()
	if means[1] != 0 {
		t.Fatalf("empty bucket mean = %v, want 0", means[1])
	}
	counts := tl.Counts()
	if counts[0] != 3 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestTimelinePanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero bucket width")
		}
	}()
	NewTimeline(time.Now(), 0)
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.b")
	c1.Inc()
	c2 := r.Counter("a.b")
	if c2.Value() != 1 {
		t.Fatal("registry returned a different counter for the same name")
	}
	if r.CounterValue("a.b") != 1 {
		t.Fatal("CounterValue mismatch")
	}
	if r.CounterValue("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
	g := r.Gauge("g")
	g.Set(7)
	if r.GaugeValue("g") != 7 {
		t.Fatal("GaugeValue mismatch")
	}
	h := r.Histogram("h")
	h.Observe(1)
	if r.Histogram("h").Count() != 1 {
		t.Fatal("registry returned a different histogram")
	}
}

func TestRegistryCounterNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz")
	r.Counter("aa")
	r.Counter("mm")
	names := r.CounterNames()
	want := []string{"aa", "mm", "zz"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(2)
	r.Gauge("y").Set(-1)
	out := r.Dump()
	if out != "counter x 2\ngauge y -1\n" {
		t.Fatalf("dump = %q", out)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("shared"); got != 1600 {
		t.Fatalf("shared counter = %d, want 1600", got)
	}
}

func TestTimelineFarFutureClamped(t *testing.T) {
	start := time.Unix(0, 0)
	tl := NewTimeline(start, time.Millisecond)
	tl.ObserveAt(start.AddDate(100, 0, 0), 1) // a century later
	if got := len(tl.Sums()); got > 1<<20 {
		t.Fatalf("timeline allocated %d buckets; cap broken", got)
	}
}
