package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramDecimationKeepsArrivalOrder pins the decimation fix: a
// Quantile call between Observes must not perturb which samples a later
// decimation drops. The old implementation sorted samples in place for
// quantiles, so decimation then strode over the sorted values — thinning
// one tail of the distribution instead of thinning time.
func TestHistogramDecimationKeepsArrivalOrder(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []float64{10, 0, 1, 2} {
		h.Observe(v)
	}
	// Force the sort path while the reservoir is full.
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("pre-decimation max = %v, want 10", got)
	}
	// This Observe decimates. In arrival order the survivors are indices
	// 0 and 2 of [10 0 1 2] -> [10 1], then 3 is appended. Had the
	// quantile call left the samples sorted ([0 1 2 10]), the survivors
	// would be [0 2] and the true max 10 would vanish from the reservoir.
	h.Observe(3)
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("post-decimation max = %v, want 10 (decimation strode over sorted samples)", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("post-decimation min over retained samples = %v, want 1", got)
	}
}

func TestHistogramSnapshotAfterDecimation(t *testing.T) {
	h := NewHistogram(8)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Min != 0 || s.Max != 99 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.P999 {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	snap := r.Snapshot()
	if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil {
		t.Fatal("empty registry snapshot has nil maps")
	}
	r.Counter("a.b").Add(5)
	r.Gauge("g").Set(-3)
	r.Histogram("h").Observe(2)
	r.Histogram("h").Observe(4)
	snap = r.Snapshot()
	if snap.Counters["a.b"] != 5 || snap.Gauges["g"] != -3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	hs := snap.Histograms["h"]
	if hs.Count != 2 || hs.Mean != 3 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	// The snapshot is a copy: later mutation is invisible.
	r.Counter("a.b").Inc()
	if snap.Counters["a.b"] != 5 {
		t.Fatal("snapshot aliases live counters")
	}
}

func TestDumpIncludesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Histogram("lat").Observe(7)
	d := r.Dump()
	if !strings.Contains(d, "counter c 1") {
		t.Fatalf("Dump missing counter: %q", d)
	}
	if !strings.Contains(d, "histogram lat count=1 mean=7 p50=7 p99=7") {
		t.Fatalf("Dump missing histogram snapshot: %q", d)
	}
}

func TestTimelinePreStartClampsToBucketZero(t *testing.T) {
	start := time.Now()
	tl := NewTimeline(start, time.Second)
	tl.ObserveAt(start.Add(-time.Hour), 5)
	counts := tl.Counts()
	if len(counts) != 1 || counts[0] != 1 {
		t.Fatalf("counts = %v, want one observation in bucket 0", counts)
	}
	if sums := tl.Sums(); sums[0] != 5 {
		t.Fatalf("sums = %v", sums)
	}
}

func TestTimelineFarFutureClampsToFinalBucket(t *testing.T) {
	start := time.Now()
	tl := NewTimeline(start, time.Nanosecond) // tiny width maximises the bucket index
	tl.ObserveAt(start.Add(time.Hour), 1)     // hours/ns >> maxTimelineBuckets
	counts := tl.Counts()
	if len(counts) != maxTimelineBuckets {
		t.Fatalf("len(counts) = %d, want cap %d", len(counts), maxTimelineBuckets)
	}
	if counts[maxTimelineBuckets-1] != 1 {
		t.Fatal("observation did not clamp into the final bucket")
	}
}

func TestTimelineConcurrentObserveAt(t *testing.T) {
	start := time.Now()
	tl := NewTimeline(start, time.Millisecond)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Spread across buckets, including pre-start and far-future.
				at := start.Add(time.Duration(i-g) * time.Millisecond)
				tl.ObserveAt(at, 1)
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, c := range tl.Counts() {
		total += c
	}
	if total != goroutines*per {
		t.Fatalf("total observations = %d, want %d", total, goroutines*per)
	}
}
