package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
)

// AtomicHistogram is the hot-path companion to the sampled Histogram: a
// fixed-boundary bucket histogram whose Observe is a couple of atomic
// adds — no mutex, no sample array, no sort. It trades exact quantiles
// for O(1), allocation-free recording, which is what a data plane
// observing millions of flows needs (the sampled Histogram stays around
// for offline, experiment-scale analysis).
//
// Buckets are defined by ascending upper bounds; an implicit +Inf
// bucket catches the overflow. Two histograms with identical bounds can
// be merged, which is how the operator aggregates per-node latency
// distributions fleet-wide.
type AtomicHistogram struct {
	bounds  []float64 // ascending upper bounds; implicit +Inf overflow bucket
	buckets []atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// DefaultLatencyBuckets spans 100µs to ~52s in log-spaced (×2) steps —
// wide enough for a localhost RTT and a wedged upstream alike. Values
// are in seconds, matching Observe(time.Since(t0).Seconds()).
var DefaultLatencyBuckets = ExpBuckets(100e-6, 2, 20)

// ExpBuckets returns n log-spaced upper bounds: start, start*growth,
// start*growth², … It panics on a non-positive start, growth <= 1, or
// n <= 0 — bucket schemes are compile-time decisions, not runtime data.
func ExpBuckets(start, growth float64, n int) []float64 {
	if !(start > 0) || !(growth > 1) || n <= 0 {
		panic("metrics: ExpBuckets needs start > 0, growth > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= growth
	}
	return out
}

// NewAtomicHistogram returns a histogram over the given ascending upper
// bounds. Bounds must be finite and strictly increasing; nil/empty
// bounds fall back to DefaultLatencyBuckets.
func NewAtomicHistogram(bounds []float64) *AtomicHistogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i, b := range own {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("metrics: atomic histogram bounds must be finite")
		}
		if i > 0 && b <= own[i-1] {
			panic("metrics: atomic histogram bounds must be strictly increasing")
		}
	}
	return &AtomicHistogram{
		bounds:  own,
		buckets: make([]atomic.Int64, len(own)+1),
	}
}

// Observe records one sample. Non-finite values (NaN, ±Inf) are
// dropped so a poisoned input can never corrupt the sum or quantiles.
// Observe is allocation-free and safe for unbounded concurrency.
func (h *AtomicHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	// Binary search for the first bound >= v: the bounds slice is small
	// (tens of entries) and immutable, so this stays branch-predictable
	// and allocation-free where sort.SearchFloat64s would cost a closure.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations. The total is derived from
// the bucket cells (reads are rare; writes stay one increment cheaper).
func (h *AtomicHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *AtomicHistogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the mean observation, or 0 with no data.
func (h *AtomicHistogram) Mean() float64 { return h.Snapshot().Mean() }

// Quantile estimates the q-quantile from bucket counts.
func (h *AtomicHistogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Bounds returns a copy of the bucket upper bounds.
func (h *AtomicHistogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// Merge adds o's observations into h. Both histograms must share the
// same bucket bounds; merging incompatible schemes is an error, not a
// silent reshape.
func (h *AtomicHistogram) Merge(o *AtomicHistogram) error {
	if h == nil || o == nil {
		return nil
	}
	if err := compatibleBounds(h.bounds, o.bounds); err != nil {
		return err
	}
	for i := range o.buckets {
		n := o.buckets[i].Load()
		if n > 0 {
			h.buckets[i].Add(n)
		}
	}
	sum := o.Sum()
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + sum)
		if h.sumBits.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// Snapshot captures the bucket counts. Under concurrent Observes the
// buckets are read one by one, so the snapshot is monotone (never
// misses an earlier observation it reports a later one without) but
// not a single atomic cut — fine for telemetry, documented for tests.
func (h *AtomicHistogram) Snapshot() AtomicSnapshot {
	if h == nil {
		return AtomicSnapshot{}
	}
	s := AtomicSnapshot{
		Bounds: make([]float64, len(h.bounds)),
		Counts: make([]int64, len(h.buckets)),
	}
	copy(s.Bounds, h.bounds)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// AtomicSnapshot is a plain copy of an AtomicHistogram: per-bucket
// counts (the last entry is the +Inf overflow bucket), total count, and
// sum. It is the unit of cross-node aggregation: snapshots scraped from
// different nodes merge bucket-wise, and quantiles are estimated from
// the merged counts.
type AtomicSnapshot struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

func compatibleBounds(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("metrics: histogram bounds differ (%d vs %d buckets)", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("metrics: histogram bounds differ at bucket %d (%g vs %g)", i, a[i], b[i])
		}
	}
	return nil
}

// Merge adds o's counts into s. An empty snapshot (no bounds) adopts
// o's bucket scheme, so a zero AtomicSnapshot is a valid merge seed.
func (s *AtomicSnapshot) Merge(o AtomicSnapshot) error {
	if o.Count == 0 && len(o.Bounds) == 0 {
		return nil
	}
	if len(s.Bounds) == 0 && len(s.Counts) == 0 {
		s.Bounds = append([]float64(nil), o.Bounds...)
		s.Counts = append([]int64(nil), o.Counts...)
		s.Count = o.Count
		s.Sum = o.Sum
		return nil
	}
	if err := compatibleBounds(s.Bounds, o.Bounds); err != nil {
		return err
	}
	for i := range o.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return nil
}

// Sub returns the windowed delta s - base: the observations recorded
// between the two snapshots of the same (cumulative) histogram. Cells
// that would go negative — a racing snapshot, or a restarted histogram
// — clamp to zero rather than poisoning downstream rates.
func (s AtomicSnapshot) Sub(base AtomicSnapshot) AtomicSnapshot {
	if len(base.Counts) != len(s.Counts) {
		return s
	}
	out := AtomicSnapshot{
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: make([]int64, len(s.Counts)),
		Sum:    s.Sum - base.Sum,
	}
	for i := range s.Counts {
		d := s.Counts[i] - base.Counts[i]
		if d < 0 {
			d = 0
		}
		out.Counts[i] = d
		out.Count += d
	}
	if out.Count == 0 {
		out.Sum = 0
	}
	return out
}

// Mean returns the mean observation, or 0 with no data.
func (s AtomicSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket containing the target rank. The
// overflow bucket reports the largest finite bound — an estimator
// can't interpolate toward +Inf. Returns 0 with no data.
func (s AtomicSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: the best honest answer is the largest
			// finite boundary.
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lower + (upper-lower)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}
