package metrics

import (
	"math"
	"testing"
)

// TestHistogramEdgeCases pins the sampled Histogram's behaviour on the
// inputs that used to be able to poison a snapshot: no data at all, and
// NaN/Inf observations (now dropped at Observe).
func TestHistogramEdgeCases(t *testing.T) {
	finite := func(vs ...float64) []float64 { return vs }
	cases := []struct {
		name      string
		observe   []float64
		wantCount int64
		wantMean  float64
		wantMin   float64
		wantMax   float64
		wantP99   float64
	}{
		{name: "empty", observe: nil},
		{name: "nan only", observe: finite(math.NaN())},
		{name: "inf only", observe: finite(math.Inf(1), math.Inf(-1))},
		{
			name:      "nan mixed with data",
			observe:   finite(1, math.NaN(), 3),
			wantCount: 2, wantMean: 2, wantMin: 1, wantMax: 3, wantP99: 2.98,
		},
		{
			name:      "inf mixed with data",
			observe:   finite(math.Inf(1), 5, math.Inf(-1)),
			wantCount: 1, wantMean: 5, wantMin: 5, wantMax: 5, wantP99: 5,
		},
		{
			name:      "single sample",
			observe:   finite(7),
			wantCount: 1, wantMean: 7, wantMin: 7, wantMax: 7, wantP99: 7,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(0)
			for _, v := range tc.observe {
				h.Observe(v)
			}
			if got := h.Count(); got != tc.wantCount {
				t.Fatalf("Count = %d, want %d", got, tc.wantCount)
			}
			check := func(name string, got, want float64) {
				if math.IsNaN(got) || math.IsInf(got, 0) {
					t.Fatalf("%s = %g: non-finite leaked into the summary", name, got)
				}
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("%s = %g, want %g", name, got, want)
				}
			}
			check("Mean", h.Mean(), tc.wantMean)
			check("Min", h.Min(), tc.wantMin)
			check("Max", h.Max(), tc.wantMax)
			check("Quantile(0.99)", h.Quantile(0.99), tc.wantP99)

			s := h.Snapshot()
			for name, v := range map[string]float64{
				"snapshot mean": s.Mean, "snapshot min": s.Min, "snapshot max": s.Max,
				"snapshot p50": s.P50, "snapshot p99": s.P99, "snapshot p999": s.P999,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s = %g: non-finite leaked into the snapshot", name, v)
				}
			}
		})
	}
}

// TestHistogramEmptyQuantiles covers the zero-data quantile batch path.
func TestHistogramEmptyQuantiles(t *testing.T) {
	h := NewHistogram(4)
	qs := h.Quantiles(0, 0.5, 0.99, 1)
	for i, q := range qs {
		if q != 0 {
			t.Fatalf("empty Quantiles()[%d] = %g, want 0", i, q)
		}
	}
}
