// Package apicheck pins the exported API surface of the packages that
// form the repo's public contract — takeover (wire protocol + hand-off
// API), core (release orchestration), netx (FD passing) — as a golden
// snapshot. Any signature change, addition, or removal fails CI until
// the golden is regenerated with:
//
//	go test ./internal/apicheck/ -run TestAPISurface -update
//
// which makes API drift a reviewed, diffable event instead of an
// accident. The snapshot is built from the AST alone (no type checking,
// no build), so it runs everywhere `go test ./...` runs.
package apicheck

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/api_surface.txt from the current source")

// surfacePackages lists the pinned packages: import path -> directory
// relative to this package.
var surfacePackages = []struct{ importPath, dir string }{
	{"zdr/internal/core", "../core"},
	{"zdr/internal/netx", "../netx"},
	{"zdr/internal/takeover", "../takeover"},
	{"zdr/internal/fleet", "../fleet"},
	{"zdr/internal/disrupt", "../disrupt"},
	{"zdr/internal/metrics", "../metrics"},
	{"zdr/internal/katran", "../katran"},
}

func TestAPISurface(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("# Exported API surface. Regenerate: go test ./internal/apicheck/ -update\n")
	for _, p := range surfacePackages {
		fmt.Fprintf(&buf, "\npackage %s\n\n", p.importPath)
		for _, decl := range packageSurface(t, p.dir) {
			buf.WriteString(decl)
			buf.WriteString("\n")
		}
	}
	got := buf.String()

	golden := filepath.Join("testdata", "api_surface.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden snapshot (run with -update to create it): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("exported API surface drifted from the golden snapshot at line %d:\n  golden:  %q\n  current: %q\n\nIf the change is intentional, regenerate with:\n  go test ./internal/apicheck/ -run TestAPISurface -update",
				i+1, w, g)
		}
	}
	t.Fatal("exported API surface drifted from the golden snapshot (whitespace-only difference)")
}

// packageSurface parses every non-test file in dir and renders each
// exported declaration as canonical source, sorted for determinism.
func packageSurface(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	var out []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				out = append(out, renderDecl(t, fset, decl)...)
			}
		}
	}
	sort.Strings(out)
	return out
}

// renderDecl returns the exported portion of a top-level declaration,
// one rendered string per item; nothing if the declaration exports
// nothing.
func renderDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) []string {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d.Recv) {
			return nil
		}
		d.Doc = nil
		d.Body = nil
		return []string{render(t, fset, d)}
	case *ast.GenDecl:
		d.Doc = nil
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.ValueSpec: // const or var
				if !anyExported(s.Names) {
					continue
				}
				s.Doc, s.Comment = nil, nil
				one := &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{s}}
				out = append(out, render(t, fset, one))
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				s.Doc, s.Comment = nil, nil
				elideUnexported(s.Type)
				one := &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{s}}
				out = append(out, render(t, fset, one))
			}
		}
		return out
	}
	return nil
}

// exportedRecv reports whether a method's receiver names an exported
// type (funcs have a nil receiver and always qualify).
func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func anyExported(names []*ast.Ident) bool {
	for _, n := range names {
		if n.IsExported() {
			return true
		}
	}
	return false
}

// elideUnexported strips unexported struct fields and interface methods
// from a type expression, leaving a marker comment-free placeholder so
// private refactors don't churn the golden while exported shape changes
// still do.
func elideUnexported(expr ast.Expr) {
	switch tt := expr.(type) {
	case *ast.StructType:
		if tt.Fields == nil {
			return
		}
		kept := tt.Fields.List[:0]
		for _, f := range tt.Fields.List {
			f.Doc, f.Comment = nil, nil
			if len(f.Names) == 0 { // embedded field: keep if exported
				if embeddedExported(f.Type) {
					kept = append(kept, f)
				}
				continue
			}
			names := f.Names[:0]
			for _, n := range f.Names {
				if n.IsExported() {
					names = append(names, n)
				}
			}
			if len(names) > 0 {
				f.Names = names
				kept = append(kept, f)
			}
		}
		tt.Fields.List = kept
	case *ast.InterfaceType:
		if tt.Methods == nil {
			return
		}
		kept := tt.Methods.List[:0]
		for _, m := range tt.Methods.List {
			m.Doc, m.Comment = nil, nil
			if len(m.Names) == 0 || m.Names[0].IsExported() {
				kept = append(kept, m)
			}
		}
		tt.Methods.List = kept
	}
}

func embeddedExported(expr ast.Expr) bool {
	switch tt := expr.(type) {
	case *ast.StarExpr:
		return embeddedExported(tt.X)
	case *ast.SelectorExpr:
		return tt.Sel.IsExported()
	case *ast.Ident:
		return tt.IsExported()
	}
	return false
}

func render(t *testing.T, fset *token.FileSet, node any) string {
	t.Helper()
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 8}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		t.Fatalf("print: %v", err)
	}
	return buf.String()
}
