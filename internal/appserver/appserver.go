// Package appserver implements the HHVM-style application server tier
// (§2.1) with the server side of Partial Post Replay (§4.3).
//
// Workloads are "dominated by short-lived API requests" but include
// long-lived HTTP POST uploads. The tier restarts extremely frequently
// (up to ~100 releases/week) with a very brief draining period (10–15 s),
// so the interesting behaviour is what happens to a POST whose body is
// still arriving when the restart begins:
//
//   - Without PPR the server would fail the request with a 500 (user-
//     visible disruption) or a 307 (full retry over the WAN).
//   - With PPR the server responds 379 "PartialPOST" and *echoes back the
//     partially received body* to the downstream proxy, which rebuilds
//     the original request and replays it to a healthy server. The server
//     is too resource-constrained for Socket Takeover (two parallel HHVM
//     instances don't fit in memory, §4.4), which is why hand-back to the
//     downstream proxy is the mechanism of choice at this tier.
package appserver

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"zdr/internal/bufpool"
	"zdr/internal/http1"
	"zdr/internal/metrics"
	"zdr/internal/netx"
	"zdr/internal/obs"
)

// Handler produces the response for a fully received request.
type Handler func(req *http1.Request, body []byte) *http1.Response

// Mode selects the restart behaviour for in-flight POSTs.
type Mode int

const (
	// ModePPR responds 379 + partial body (§4.3 option iv, the paper's).
	ModePPR Mode = iota
	// ModeFail500 responds 500 (§4.3 option i, baseline).
	ModeFail500
	// ModeRedirect307 responds 307 (§4.3 option ii, baseline).
	ModeRedirect307
)

// Config tunes the server.
type Config struct {
	// Name identifies the instance in metrics and X-Served-By.
	Name string
	// Handler serves completed requests; nil installs a default echo.
	Handler Handler
	// Mode selects restart behaviour (default ModePPR).
	Mode Mode
	// DrainPeriod is how long Shutdown waits for requests whose bodies
	// have already fully arrived (default 100ms in tests; the paper's
	// tier uses 10–15s).
	DrainPeriod time.Duration
	// BodyChunk is the body streaming granularity (default 4 KiB). The
	// server checks for a drain signal between chunks.
	BodyChunk int
	// GraceWindow caps how long an interrupted body read keeps draining
	// in-flight bytes before handing the request back (default 1s). An
	// upload that finishes inside the window is served normally.
	GraceWindow time.Duration
	// GraceSilence is how long the line must go quiet inside the grace
	// window before the partial body is considered settled (default 100ms).
	GraceSilence time.Duration
	// Trace records appserver.request spans, joining the trace carried in
	// the x-zdr-trace request header. Nil disables tracing.
	Trace *obs.Tracer
	// Tuning, when non-nil, applies socket options to every accepted
	// connection (netx.TuneConn). Advisory: failures are counted under
	// appserver.tune.errors and the connection serves untuned.
	Tuning *netx.ConnTuning
}

// Server is one app-server instance.
type Server struct {
	cfg Config
	reg *metrics.Registry

	ln net.Listener

	mu       sync.Mutex
	draining bool
	closed   bool
	conns    map[net.Conn]struct{}

	drainCh chan struct{}
	wg      sync.WaitGroup
}

// New creates a server. reg may be nil.
func New(cfg Config, reg *metrics.Registry) *Server {
	if cfg.Handler == nil {
		cfg.Handler = func(req *http1.Request, body []byte) *http1.Response {
			resp := http1.NewResponse(200, bytes.NewReader(body), int64(len(body)))
			resp.Header.Set("X-Echo-Method", req.Method)
			return resp
		}
	}
	if cfg.DrainPeriod <= 0 {
		cfg.DrainPeriod = 100 * time.Millisecond
	}
	if cfg.BodyChunk <= 0 {
		cfg.BodyChunk = 4 << 10
	}
	if cfg.GraceWindow <= 0 {
		cfg.GraceWindow = time.Second
	}
	if cfg.GraceSilence <= 0 {
		cfg.GraceSilence = 100 * time.Millisecond
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Server{
		cfg:     cfg,
		reg:     reg,
		conns:   make(map[net.Conn]struct{}),
		drainCh: make(chan struct{}),
	}
}

// Metrics returns the server's registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Name returns the configured instance name.
func (s *Server) Name() string { return s.cfg.Name }

// Listen binds addr and starts accepting.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop()
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.draining || s.closed {
			// Draining instances accept no new connections (§2.3).
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		if err := netx.TuneConn(conn, s.cfg.Tuning); err != nil {
			s.reg.Counter("appserver.tune.errors").Inc()
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Draining reports whether the instance is in its drain phase.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown begins the restart: stop accepting, let complete requests
// finish within the drain period, and hand back in-flight POSTs per the
// configured Mode. It returns when the instance is fully down.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		return
	}
	s.draining = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	close(s.drainCh)
	// Kick blocked body reads: an expired read deadline wakes them so the
	// handler can observe the drain and hand the request back. Writes are
	// unaffected, so the 379 response still goes out.
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}

	// Give requests already past their body a drain window.
	time.Sleep(s.cfg.DrainPeriod)

	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	// Handlers exit on their own: kicked reads either hand their request
	// back (379/500/307) or fail out, and completed requests finish their
	// response writes. Wait rather than hard-close so those writes land.
	s.wg.Wait()
}

// Close is an immediate, non-graceful stop (tests).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReader(conn)
	for {
		req, err := http1.ReadRequest(br)
		if err != nil {
			return // clean close or peer gone
		}
		s.reg.Counter("appserver.requests").Inc()
		keepGoing := s.serveRequest(conn, br, req)
		if !keepGoing {
			return
		}
	}
}

// serveRequest handles one request; false means close the connection.
func (s *Server) serveRequest(conn net.Conn, br *bufio.Reader, req *http1.Request) bool {
	remote, _ := obs.ParseSpanContext(req.Header.Get(obs.TraceHeader))
	sp := s.cfg.Trace.StartSpan("appserver.request", remote)
	defer sp.End()
	sp.SetAttr("method", req.Method)
	sp.SetAttr("path", req.Target)
	body, complete, err := s.readBodyInterruptible(conn, req)
	if err != nil {
		s.reg.Counter("appserver.body.errors").Inc()
		sp.Fail(err)
		return false
	}
	if !complete {
		// Restart caught the request mid-body: hand it back.
		s.reg.Counter("appserver.inflight.at.restart").Inc()
		sp.SetAttr("result", "handed_back")
		return s.respondInterrupted(conn, req, body)
	}
	resp := s.cfg.Handler(req, body)
	if resp == nil {
		resp = http1.NewResponse(500, nil, 0)
	}
	resp.Header.Set("X-Served-By", s.cfg.Name)
	if _, err := http1.WriteResponse(conn, resp); err != nil {
		sp.Fail(err)
		return false
	}
	sp.SetAttr("status", strconv.Itoa(resp.StatusCode))
	s.reg.Counter(fmt.Sprintf("appserver.status.%d", resp.StatusCode)).Inc()
	return true
}

// readBodyInterruptible streams the request body, checking the drain
// signal between chunks. complete=false means the drain interrupted it.
// No read deadline is set during normal operation — Shutdown kicks blocked
// reads by expiring the connection's read deadline, and a timeout observed
// while draining means "restart caught this body mid-flight".
func (s *Server) readBodyInterruptible(conn net.Conn, req *http1.Request) (body []byte, complete bool, err error) {
	if req.Body == nil {
		return nil, true, nil
	}
	bp := bufpool.Get(s.cfg.BodyChunk)
	defer bufpool.Put(bp)
	buf := (*bp)[:s.cfg.BodyChunk]
	if cl := req.ContentLength; cl > 0 {
		// Pre-size from the declared length, capped: the peer is a
		// trusted proxy but the header is still client-originated.
		if cl > 1<<20 {
			cl = 1 << 20
		}
		body = make([]byte, 0, cl)
	}
	for {
		select {
		case <-s.drainCh:
			return s.graceRead(conn, req, body)
		default:
		}
		n, rerr := req.Body.Read(buf)
		body = append(body, buf[:n]...)
		if rerr == io.EOF {
			return body, true, nil
		}
		if rerr != nil {
			var ne net.Error
			if errors.As(rerr, &ne) && ne.Timeout() && s.Draining() {
				return s.graceRead(conn, req, body)
			}
			return body, false, rerr
		}
	}
}

// graceRead drains bytes already in flight from the downstream proxy after
// the restart signal: the proxy stops forwarding as soon as it sees our
// 379, so reading until the line goes quiet guarantees the partial body we
// hand back contains every byte the proxy believes it delivered — the
// invariant Partial Post Replay needs for the replayed request to equal
// the original. Returns complete=true if the body actually finished during
// the grace window (then it is served normally instead of handed back).
func (s *Server) graceRead(conn net.Conn, req *http1.Request, body []byte) ([]byte, bool, error) {
	silence := s.cfg.GraceSilence
	bp := bufpool.Get(s.cfg.BodyChunk)
	defer bufpool.Put(bp)
	buf := (*bp)[:s.cfg.BodyChunk]
	deadline := time.Now().Add(s.cfg.GraceWindow)
	for time.Now().Before(deadline) {
		conn.SetReadDeadline(time.Now().Add(silence))
		n, err := req.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err == io.EOF {
			conn.SetReadDeadline(time.Time{})
			return body, true, nil
		}
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if n == 0 {
					break // line went quiet: everything in flight captured
				}
				continue
			}
			break // peer gone; hand back what we have
		}
	}
	return body, false, nil
}

// respondInterrupted emits the Mode-selected response for a request whose
// body was cut off by the restart. Always closes the connection after.
func (s *Server) respondInterrupted(conn net.Conn, req *http1.Request, partial []byte) bool {
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	switch s.cfg.Mode {
	case ModeFail500:
		resp := http1.NewResponse(500, nil, 0)
		resp.Header.Set("X-Served-By", s.cfg.Name)
		http1.WriteResponse(conn, resp)
		s.reg.Counter("appserver.status.500").Inc()
	case ModeRedirect307:
		resp := http1.NewResponse(307, nil, 0)
		resp.Header.Set("Location", req.Target)
		resp.Header.Set("X-Served-By", s.cfg.Name)
		http1.WriteResponse(conn, resp)
		s.reg.Counter("appserver.status.307").Inc()
	default: // ModePPR
		resp := http1.NewResponse(http1.StatusPartialPostReplay, bytes.NewReader(partial), int64(len(partial)))
		// §5.2: pseudo-headers of the original request are echoed with a
		// special prefix so the proxy can rebuild the request.
		resp.Header.Set(http1.EchoPseudoHeader(":method"), req.Method)
		resp.Header.Set(http1.EchoPseudoHeader(":path"), req.Target)
		if req.ContentLength >= 0 {
			resp.Header.Set("X-Original-Content-Length", strconv.FormatInt(req.ContentLength, 10))
		}
		resp.Header.Set("X-Served-By", s.cfg.Name)
		http1.WriteResponse(conn, resp)
		s.reg.Counter("appserver.status.379").Inc()
	}
	return false
}
