package appserver

import (
	"bufio"
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"zdr/internal/http1"
)

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "as-1"
	}
	s := New(cfg, nil)
	if _, err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func dialReq(t *testing.T, addr string, req *http1.Request) (*http1.Response, net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := http1.WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	resp, err := http1.ReadResponse(br)
	if err != nil {
		t.Fatal(err)
	}
	return resp, conn, br
}

func TestServeSimpleRequests(t *testing.T) {
	s := startServer(t, Config{})
	body := "upload-data"
	resp, conn, _ := dialReq(t, s.Addr(), http1.NewRequest("POST", "/api", strings.NewReader(body), int64(len(body))))
	defer conn.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Served-By") != "as-1" {
		t.Fatal("X-Served-By missing")
	}
	b, _ := http1.ReadFullBody(resp.Body)
	if string(b) != body {
		t.Fatalf("echo = %q", b)
	}
}

func TestKeepAlive(t *testing.T) {
	s := startServer(t, Config{})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	for i := 0; i < 5; i++ {
		if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/ping", nil, 0)); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		resp, err := http1.ReadResponse(br)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		http1.ReadFullBody(resp.Body)
	}
}

func TestCustomHandler(t *testing.T) {
	s := startServer(t, Config{Handler: func(req *http1.Request, body []byte) *http1.Response {
		if req.Target == "/404" {
			return http1.NewResponse(404, nil, 0)
		}
		return http1.NewResponse(200, strings.NewReader("ok"), 2)
	}})
	resp, conn, _ := dialReq(t, s.Addr(), http1.NewRequest("GET", "/404", nil, 0))
	conn.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

// TestPPROnRestart: a POST whose body is mid-flight when Shutdown begins
// receives 379 + the partial body (§4.3).
func TestPPROnRestart(t *testing.T) {
	s := startServer(t, Config{Mode: ModePPR, DrainPeriod: 50 * time.Millisecond})

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Send head + half the body, then stall.
	partial := bytes.Repeat([]byte("A"), 1000)
	head := "POST /upload HTTP/1.1\r\nContent-Length: 2000\r\n\r\n"
	if _, err := conn.Write([]byte(head)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(partial); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the server consume the half

	go s.Shutdown()

	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if !http1.IsPartialPostReplay(resp) {
		t.Fatalf("status = %d %q, want 379 PartialPOST", resp.StatusCode, resp.StatusMessage)
	}
	if resp.Header.Get(http1.EchoPseudoHeader(":method")) != "POST" {
		t.Fatal("method echo missing")
	}
	if resp.Header.Get(http1.EchoPseudoHeader(":path")) != "/upload" {
		t.Fatal("path echo missing")
	}
	if resp.Header.Get("X-Original-Content-Length") != "2000" {
		t.Fatal("original content length missing")
	}
	got, _ := http1.ReadFullBody(resp.Body)
	if !bytes.Equal(got, partial) {
		t.Fatalf("partial body: got %d bytes, want %d identical bytes", len(got), len(partial))
	}
	if s.Metrics().CounterValue("appserver.status.379") != 1 {
		t.Fatal("379 not counted")
	}
}

// TestFail500OnRestart is the §4.3 option-(i) baseline.
func TestFail500OnRestart(t *testing.T) {
	s := startServer(t, Config{Mode: ModeFail500, DrainPeriod: 50 * time.Millisecond})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("POST /u HTTP/1.1\r\nContent-Length: 100\r\n\r\nhalf"))
	time.Sleep(100 * time.Millisecond)
	go s.Shutdown()
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 500 {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
}

// TestRedirect307OnRestart is the §4.3 option-(ii) baseline.
func TestRedirect307OnRestart(t *testing.T) {
	s := startServer(t, Config{Mode: ModeRedirect307, DrainPeriod: 50 * time.Millisecond})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("POST /retry-me HTTP/1.1\r\nContent-Length: 100\r\n\r\nhalf"))
	time.Sleep(100 * time.Millisecond)
	go s.Shutdown()
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 307 || resp.Header.Get("Location") != "/retry-me" {
		t.Fatalf("resp = %d %v", resp.StatusCode, resp.Header)
	}
}

// TestChunkedPPR: a chunked upload interrupted by restart also hands back
// its partial body (the §5.2 chunked corner case).
func TestChunkedPPR(t *testing.T) {
	s := startServer(t, Config{Mode: ModePPR, DrainPeriod: 50 * time.Millisecond})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("POST /up HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"))
	conn.Write([]byte("5\r\nhello\r\n"))
	// Mid-chunk stall: declare 10 bytes, deliver 3.
	conn.Write([]byte("a\r\nwor"))
	time.Sleep(100 * time.Millisecond)
	go s.Shutdown()
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if !http1.IsPartialPostReplay(resp) {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	got, _ := http1.ReadFullBody(resp.Body)
	if string(got) != "hellowor" {
		t.Fatalf("partial chunked body = %q, want %q", got, "hellowor")
	}
}

// TestDrainCompletesFinishedRequests: a request whose body fully arrived
// before the drain still gets its 200 during the drain period.
func TestDrainCompletesFinishedRequests(t *testing.T) {
	slow := make(chan struct{})
	s := startServer(t, Config{
		DrainPeriod: 500 * time.Millisecond,
		Handler: func(req *http1.Request, body []byte) *http1.Response {
			<-slow // simulate slow app logic
			return http1.NewResponse(200, strings.NewReader("done"), 4)
		},
	})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body := "all-here"
	if _, err := http1.WriteRequest(conn, http1.NewRequest("POST", "/x", strings.NewReader(body), int64(len(body)))); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // body fully at server, handler blocked
	done := make(chan struct{})
	go func() { s.Shutdown(); close(done) }()
	time.Sleep(50 * time.Millisecond)
	close(slow)
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("completed request failed during drain: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	<-done
}

// TestNoNewConnectionsWhileDraining: the §2.3 draining semantics.
func TestNoNewConnectionsWhileDraining(t *testing.T) {
	s := startServer(t, Config{DrainPeriod: 300 * time.Millisecond})
	go s.Shutdown()
	time.Sleep(50 * time.Millisecond)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		return // listener already closed: acceptable
	}
	defer conn.Close()
	conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := http1.ReadResponse(bufio.NewReader(conn)); err == nil {
		t.Fatal("draining server answered a new connection")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	s := startServer(t, Config{DrainPeriod: 10 * time.Millisecond})
	s.Shutdown()
	s.Shutdown()
	s.Close()
}

func TestGETUnaffectedByDrainSignalRace(t *testing.T) {
	// GETs (no body) served normally right up to the drain.
	s := startServer(t, Config{})
	for i := 0; i < 10; i++ {
		resp, conn, _ := dialReq(t, s.Addr(), http1.NewRequest("GET", "/", nil, 0))
		conn.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
}
