// Package katran is a user-space model of Facebook's Katran L4 load
// balancer (§2.1): the layer that sits between the routers (ECMP) and the
// L7 proxies, steering each flow to an L7LB with consistent hashing and
// continuously health-checking the proxy fleet.
//
// What matters to Zero Downtime Release is Katran's *behaviour*, not its
// XDP datapath, so this package implements:
//
//   - a Maglev consistent-hash table over the healthy backends,
//   - an active health-check prober ("each restarting instance enters a
//     draining mode ... by failing health-checks from Katran to remove the
//     instance from the routing ring", §2.3) with consecutive-success/
//     -failure thresholds,
//   - the §5.1 remediation: an LRU connection-table cache of recent flows
//     that absorbs momentary shuffles in the routing topology so
//     established connections keep landing on the same L7LB even when a
//     health flap briefly changes the Maglev table,
//   - a pluggable steering Policy deciding where FRESH flows land: the
//     default PolicyMaglev (placement-only consistent hashing) or the
//     drain-aware adaptive PolicyPrequal (probe-based power-of-d with the
//     hot/cold lexicographic rule).
//
// Steering is exposed as a function from flow hash to backend; integration
// tests and the cluster simulator drive their connection placement through
// it.
//
// Concurrency model (DESIGN.md §8): steering is the per-packet hot path,
// so Steer never takes the control-plane lock. The routing View (Maglev
// table + healthy-backend set) is an immutable snapshot published through
// an atomic pointer; rebuilds construct a fresh snapshot under lb.mu and
// swap it in. The flow cache is sharded with per-shard locks so concurrent
// flows rarely contend.
package katran

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zdr/internal/consistent"
	"zdr/internal/metrics"
)

// Backend is one L7 proxy instance behind a VIP.
type Backend struct {
	// Name uniquely identifies the instance (e.g. "edge-proxy-03").
	Name string
	// Addr is the instance's serving address.
	Addr string
	// HealthAddr is probed; empty means probe Addr.
	HealthAddr string
}

type backendState struct {
	Backend
	healthy    bool
	consecOK   int
	consecFail int
}

// Config tunes the LB.
type Config struct {
	// HealthyAfter is the consecutive probe successes needed to admit a
	// backend (default 1).
	HealthyAfter int
	// UnhealthyAfter is the consecutive failures needed to evict (default 1).
	UnhealthyAfter int
	// ProbeTimeout bounds one probe (default 500ms).
	ProbeTimeout time.Duration
	// FlowCacheSize enables the §5.1 LRU connection-table cache when > 0.
	FlowCacheSize int
	// FlowCacheShards splits the flow cache into this many lock shards
	// (rounded up to a power of two; 0 = DefaultFlowCacheShards).
	FlowCacheShards int
	// FlowTableSize enables the generation-tagged compact flow table when
	// > 0: bounded-memory (16 B/flow) pinning for every established flow,
	// sized for millions, whose routing flips on a takeover with a single
	// epoch bump (AdvanceGeneration) instead of per-entry writes. The
	// small LRU cache (FlowCacheSize) sits in front of it as the §5.1
	// momentary-shuffle absorber.
	FlowTableSize int
	// FlowTableShards splits the flow table into this many lock shards
	// (rounded up to a power of two; 0 = DefaultFlowTableShards).
	FlowTableShards int
	// MaglevSize overrides the lookup table size (0 = default).
	MaglevSize int
	// Prober carries health probes (default &HCProber{}, which speaks the
	// "HC\n" → "OK\n" protocol). The same transport carries Prequal load
	// probes, so one faults.Injector dialer chaos-tests both.
	Prober Prober
	// Policy decides where fresh flows land (default NewPolicyMaglev()).
	// The LB's pinning layers — flow cache and flow table — sit in front
	// of every policy; see the Policy doc for the precedence contract.
	Policy Policy
	// Probe overrides the prober.
	//
	// Deprecated: set Prober instead. A non-nil Probe is wrapped into a
	// Prober that cannot answer load probes.
	Probe ProbeFunc
}

func (c *Config) fill() {
	if c.HealthyAfter <= 0 {
		c.HealthyAfter = 1
	}
	if c.UnhealthyAfter <= 0 {
		c.UnhealthyAfter = 1
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.Prober == nil {
		if c.Probe != nil {
			c.Prober = funcProber{c.Probe}
		} else {
			c.Prober = &HCProber{}
		}
	}
	if c.Policy == nil {
		c.Policy = NewPolicyMaglev()
	}
}

// LB is one Katran instance steering a single VIP.
type LB struct {
	name   string
	cfg    Config
	reg    *metrics.Registry
	policy Policy
	// fastMaglev devirtualizes the default policy: when the policy is
	// the stock PolicyMaglev, repick inlines the placement pick instead
	// of paying an interface dispatch + Backend copy on the uncached
	// steer path (measured ~30% of that path's budget).
	fastMaglev bool

	// Hot-path counters, resolved once: Registry.Counter takes the
	// registry mutex per lookup, which would serialize Steer again.
	cCacheHit   *metrics.Counter
	cTableHit   *metrics.Counter
	cPolicyPick *metrics.Counter

	// Control-plane gauges for the fleet telemetry scrape: flow-table
	// occupancy (parts per thousand) and current release epoch.
	gOccupancy *metrics.Gauge
	gEpoch     *metrics.Gauge

	// route is the current routing snapshot; Steer loads it lock-free.
	route atomic.Pointer[View]

	mu       sync.Mutex // control plane: guards backends + snapshot publication
	backends map[string]*backendState

	cache *ShardedFlowCache
	table *FlowTable

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New creates an LB. reg may be nil.
func New(name string, cfg Config, reg *metrics.Registry) *LB {
	cfg.fill()
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	lb := &LB{
		name:        name,
		cfg:         cfg,
		reg:         reg,
		policy:      cfg.Policy,
		cCacheHit:   reg.Counter("katran.steer.cache_hit"),
		cTableHit:   reg.Counter("katran.steer.flowtable_hit"),
		cPolicyPick: reg.Counter("katran.steer.policy_pick"),
		gOccupancy:  reg.Gauge("katran.flowtable.occupancy"),
		gEpoch:      reg.Gauge("katran.flowtable.epoch"),
		backends:    make(map[string]*backendState),
		stop:        make(chan struct{}),
	}
	_, lb.fastMaglev = lb.policy.(*PolicyMaglev)
	reg.Gauge("katran.steer.policy_" + lb.policy.Name()).Set(1)
	lb.route.Store(&View{
		maglev:  consistent.NewMaglev(cfg.MaglevSize),
		healthy: map[string]Backend{},
	})
	if cfg.FlowCacheSize > 0 {
		lb.cache = NewShardedFlowCache(cfg.FlowCacheSize, cfg.FlowCacheShards)
	}
	if cfg.FlowTableSize > 0 {
		lb.table = NewFlowTable(cfg.FlowTableSize, cfg.FlowTableShards)
		lb.gEpoch.Set(int64(lb.table.Epoch()))
	}
	return lb
}

// FlowTable returns the generation-tagged flow table (nil unless
// Config.FlowTableSize enabled it).
func (lb *LB) FlowTable() *FlowTable { return lb.table }

// Policy returns the steering policy deciding fresh-flow placement.
func (lb *LB) Policy() Policy { return lb.policy }

// AdvanceGeneration moves the flow table to the next release generation.
// With drainOld, every flow pinned under earlier generations is flipped
// in this one O(1) epoch bump — the million-flow takeover primitive: no
// per-entry writes happen (pinned by the chaos suite via EntryWrites),
// and each stale flow lazily re-pins on its next packet. Without
// drainOld the bump is bookkeeping only and existing pins stay routable.
// The steering policy observes the bump. No-op when the flow table is
// disabled.
func (lb *LB) AdvanceGeneration(drainOld bool) {
	if lb.table == nil {
		return
	}
	epoch := lb.table.Bump(drainOld)
	lb.gEpoch.Set(int64(epoch))
	lb.gOccupancy.Set(int64(lb.table.Occupancy()))
	lb.reg.Counter("katran.flowtable.bumps").Inc()
	lb.mu.Lock()
	lb.policy.AdvanceGeneration(epoch, drainOld)
	lb.mu.Unlock()
}

// Metrics returns the LB's registry.
func (lb *LB) Metrics() *metrics.Registry { return lb.reg }

// AddBackend registers a backend. New backends start unhealthy until a
// probe (or SetHealth) admits them, unless healthyNow is true.
func (lb *LB) AddBackend(b Backend, healthyNow bool) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.backends[b.Name] = &backendState{Backend: b, healthy: healthyNow}
	if healthyNow {
		lb.policy.BackendUp(b)
	}
	lb.rebuildLocked()
}

// RemoveBackend deletes a backend entirely.
func (lb *LB) RemoveBackend(name string) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if _, ok := lb.backends[name]; !ok {
		return
	}
	delete(lb.backends, name)
	lb.policy.BackendDown(name)
	lb.rebuildLocked()
}

// ErrUnknownBackend is returned by SetHealth for a name that was never
// added.
var ErrUnknownBackend = errors.New("katran: unknown backend")

// SetHealth overrides a backend's health (used by tests and by the
// simulator's modeled probes). An unknown name is an error — and counts
// on katran.health.unknown_backend — so a typoed simulator transition
// can't silently skip.
func (lb *LB) SetHealth(name string, healthy bool) error {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	bs, ok := lb.backends[name]
	if !ok {
		lb.reg.Counter("katran.health.unknown_backend").Inc()
		return ErrUnknownBackend
	}
	if bs.healthy == healthy {
		return nil
	}
	bs.healthy = healthy
	lb.transitionLocked(bs)
	return nil
}

func (lb *LB) transitionLocked(bs *backendState) {
	if bs.healthy {
		lb.reg.Counter("katran.health.up").Inc()
		lb.policy.BackendUp(bs.Backend)
	} else {
		lb.reg.Counter("katran.health.down").Inc()
		lb.policy.BackendDown(bs.Name)
	}
	lb.rebuildLocked()
}

// rebuildLocked publishes a fresh routing snapshot from the current
// backend health. Callers hold lb.mu, which serializes publications.
func (lb *LB) rebuildLocked() {
	names := make([]string, 0, len(lb.backends))
	healthy := make(map[string]Backend, len(lb.backends))
	for _, bs := range lb.backends {
		if bs.healthy {
			names = append(names, bs.Name)
			healthy[bs.Name] = bs.Backend
		}
	}
	sort.Strings(names)
	lb.route.Store(&View{
		maglev:  consistent.NewMaglev(lb.cfg.MaglevSize, names...),
		healthy: healthy,
	})
	if lb.table != nil {
		// One O(1) view publication: removed backends tombstone their
		// slot (their flows re-pick lazily), re-admitted ones revive it
		// (their flows come home, the §5.1 consistency property).
		lb.table.SetBackends(names)
		lb.gOccupancy.Set(int64(lb.table.Occupancy()))
	}
	lb.reg.Counter("katran.table.rebuilds").Inc()
	lb.reg.Gauge("katran.backends.healthy").Set(int64(len(names)))
}

// HealthyBackends returns the names of healthy backends, sorted.
func (lb *LB) HealthyBackends() []string {
	return lb.route.Load().maglev.Members()
}

// View returns the current immutable routing snapshot.
func (lb *LB) View() *View { return lb.route.Load() }

// ErrNoBackends is returned by Steer when every backend is out.
var ErrNoBackends = errors.New("katran: no healthy backends")

// Steer picks the backend for a flow hash: the small §5.1 LRU cache
// first (momentary-shuffle absorber), then the generation-tagged flow
// table (million-flow pinning memory), then the steering policy for the
// fresh pick. Fresh picks are recorded in both pinning layers so the
// flow sticks — that is the policy-vs-flow-table precedence contract: a
// policy decides only where NEW (or stale-pinned) flows go, the pinning
// layers keep established flows where they are.
//
// Steer is lock-free on the routing View (it reads the current snapshot)
// and touches at most one shard of each flow structure, so concurrent
// steering scales across cores. Stale pins — the cached backend went
// unhealthy, or the pin's generation was drained — are re-picked with a
// validate-and-replace under one shard critical section (Swap/Update):
// the old Delete-then-Put pair could interleave with a concurrent steer
// of the same flow and resurrect a just-deleted entry for a backend that
// went unhealthy in between.
func (lb *LB) Steer(flow uint64) (Backend, error) {
	rt := lb.route.Load()
	if lb.cache != nil {
		if name, ok := lb.cache.Get(flow); ok {
			if b, live := rt.healthy[name]; live {
				lb.cCacheHit.Inc()
				return b, nil
			}
			return lb.repick(flow)
		}
	}
	if lb.table != nil {
		if name, ok := lb.table.Lookup(flow); ok {
			if b, live := rt.healthy[name]; live {
				lb.cTableHit.Inc()
				if lb.cache != nil {
					lb.cache.Put(flow, name)
				}
				return b, nil
			}
			return lb.repick(flow)
		}
	}
	return lb.repick(flow)
}

// repick resolves flow through the steering policy against the freshest
// routing snapshot and records the result in the flow table and cache,
// each under a single shard critical section that revalidates before
// replacing: if a concurrent steer already re-pinned the flow to a live
// backend, that pick wins and no write happens.
func (lb *LB) repick(flow uint64) (Backend, error) {
	var picked Backend
	var found bool
	decide := func(cur string, ok bool) (string, bool) {
		// Loaded inside the critical section so the decision is made
		// against the freshest published snapshot.
		rt := lb.route.Load()
		if ok {
			if b, live := rt.healthy[cur]; live {
				picked, found = b, true
				return cur, true
			}
		}
		if lb.fastMaglev {
			name := rt.maglev.PickUint(flow)
			if name == "" {
				found = false
				return "", false
			}
			picked, found = rt.healthy[name], true
			return name, true
		}
		b, err := lb.policy.Pick(flow, rt)
		if err != nil {
			found = false
			return "", false
		}
		picked, found = b, true
		return b.Name, true
	}
	switch {
	case lb.table != nil:
		lb.table.Update(flow, decide)
		if found && lb.cache != nil {
			lb.cache.Swap(flow, decide)
		}
	case lb.cache != nil:
		lb.cache.Swap(flow, decide)
	default:
		decide("", false)
	}
	if !found {
		return Backend{}, ErrNoBackends
	}
	lb.cPolicyPick.Inc()
	return picked, nil
}

// SteerAddr is Steer returning just the address.
//
// Deprecated: call Steer and use Backend.Addr; this wrapper only
// delegates.
func (lb *LB) SteerAddr(flow uint64) (string, error) {
	b, err := lb.Steer(flow)
	return b.Addr, err
}

// StartHealthChecks probes all backends every interval until Close.
func (lb *LB) StartHealthChecks(interval time.Duration) {
	lb.wg.Add(1)
	go func() {
		defer lb.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			lb.ProbeOnce()
			select {
			case <-ticker.C:
			case <-lb.stop:
				return
			}
		}
	}()
}

// ProbeOnce probes every backend once, applying the thresholds.
func (lb *LB) ProbeOnce() {
	lb.mu.Lock()
	targets := make([]*backendState, 0, len(lb.backends))
	for _, bs := range lb.backends {
		targets = append(targets, bs)
	}
	prober := lb.cfg.Prober
	timeout := lb.cfg.ProbeTimeout
	lb.mu.Unlock()

	type result struct {
		bs *backendState
		ok bool
	}
	results := make([]result, len(targets))
	var wg sync.WaitGroup
	for i, bs := range targets {
		wg.Add(1)
		go func(i int, bs *backendState) {
			defer wg.Done()
			addr := bs.HealthAddr
			if addr == "" {
				addr = bs.Addr
			}
			results[i] = result{bs: bs, ok: prober.Probe(addr, timeout) == nil}
		}(i, bs)
	}
	wg.Wait()

	lb.mu.Lock()
	defer lb.mu.Unlock()
	for _, r := range results {
		lb.reg.Counter("katran.probes").Inc()
		if r.ok {
			r.bs.consecOK++
			r.bs.consecFail = 0
			if !r.bs.healthy && r.bs.consecOK >= lb.cfg.HealthyAfter {
				r.bs.healthy = true
				lb.transitionLocked(r.bs)
			}
		} else {
			r.bs.consecFail++
			r.bs.consecOK = 0
			if r.bs.healthy && r.bs.consecFail >= lb.cfg.UnhealthyAfter {
				r.bs.healthy = false
				lb.transitionLocked(r.bs)
			}
		}
	}
}

// Close stops health checking and the steering policy's probe pools.
func (lb *LB) Close() {
	lb.once.Do(func() { close(lb.stop) })
	lb.wg.Wait()
	lb.policy.Close()
}
