// Package katran is a user-space model of Facebook's Katran L4 load
// balancer (§2.1): the layer that sits between the routers (ECMP) and the
// L7 proxies, steering each flow to an L7LB with consistent hashing and
// continuously health-checking the proxy fleet.
//
// What matters to Zero Downtime Release is Katran's *behaviour*, not its
// XDP datapath, so this package implements:
//
//   - a Maglev consistent-hash table over the healthy backends,
//   - an active health-check prober ("each restarting instance enters a
//     draining mode ... by failing health-checks from Katran to remove the
//     instance from the routing ring", §2.3) with consecutive-success/
//     -failure thresholds,
//   - the §5.1 remediation: an LRU connection-table cache of recent flows
//     that absorbs momentary shuffles in the routing topology so
//     established connections keep landing on the same L7LB even when a
//     health flap briefly changes the Maglev table.
//
// Steering is exposed as a function from flow hash to backend address;
// integration tests and the cluster simulator drive their connection
// placement through it.
//
// Concurrency model (DESIGN.md §8): steering is the per-packet hot path,
// so Steer never takes the control-plane lock. The routing table (Maglev
// table + healthy-backend set) is an immutable snapshot published through
// an atomic pointer; rebuilds construct a fresh snapshot under lb.mu and
// swap it in. The flow cache is sharded with per-shard locks so concurrent
// flows rarely contend.
package katran

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zdr/internal/consistent"
	"zdr/internal/metrics"
)

// Backend is one L7 proxy instance behind a VIP.
type Backend struct {
	// Name uniquely identifies the instance (e.g. "edge-proxy-03").
	Name string
	// Addr is the instance's serving address.
	Addr string
	// HealthAddr is probed; empty means probe Addr.
	HealthAddr string
}

type backendState struct {
	Backend
	healthy    bool
	consecOK   int
	consecFail int
}

// ProbeFunc checks one backend; nil error means healthy.
type ProbeFunc func(addr string, timeout time.Duration) error

// Config tunes the LB.
type Config struct {
	// HealthyAfter is the consecutive probe successes needed to admit a
	// backend (default 1).
	HealthyAfter int
	// UnhealthyAfter is the consecutive failures needed to evict (default 1).
	UnhealthyAfter int
	// ProbeTimeout bounds one probe (default 500ms).
	ProbeTimeout time.Duration
	// FlowCacheSize enables the §5.1 LRU connection-table cache when > 0.
	FlowCacheSize int
	// FlowCacheShards splits the flow cache into this many lock shards
	// (rounded up to a power of two; 0 = DefaultFlowCacheShards).
	FlowCacheShards int
	// MaglevSize overrides the lookup table size (0 = default).
	MaglevSize int
	// Probe overrides the prober (default ProbeHC).
	Probe ProbeFunc
}

func (c *Config) fill() {
	if c.HealthyAfter <= 0 {
		c.HealthyAfter = 1
	}
	if c.UnhealthyAfter <= 0 {
		c.UnhealthyAfter = 1
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.Probe == nil {
		c.Probe = ProbeHC
	}
}

// routeTable is one immutable routing snapshot: a Maglev table over the
// healthy backends plus the backend records for result lookup. Once
// published via LB.route it is never mutated — rebuilds allocate a fresh
// one (consistent.Maglev.Rebuild mutates in place, so sharing one Maglev
// across snapshots would race with lock-free readers).
type routeTable struct {
	maglev  *consistent.Maglev
	healthy map[string]Backend
}

// LB is one Katran instance steering a single VIP.
type LB struct {
	name string
	cfg  Config
	reg  *metrics.Registry

	// Hot-path counters, resolved once: Registry.Counter takes the
	// registry mutex per lookup, which would serialize Steer again.
	cCacheHit  *metrics.Counter
	cTablePick *metrics.Counter

	// route is the current routing snapshot; Steer loads it lock-free.
	route atomic.Pointer[routeTable]

	mu       sync.Mutex // control plane: guards backends + snapshot publication
	backends map[string]*backendState

	cache *ShardedFlowCache

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New creates an LB. reg may be nil.
func New(name string, cfg Config, reg *metrics.Registry) *LB {
	cfg.fill()
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	lb := &LB{
		name:       name,
		cfg:        cfg,
		reg:        reg,
		cCacheHit:  reg.Counter("katran.steer.cache_hit"),
		cTablePick: reg.Counter("katran.steer.table_pick"),
		backends:   make(map[string]*backendState),
		stop:       make(chan struct{}),
	}
	lb.route.Store(&routeTable{
		maglev:  consistent.NewMaglev(cfg.MaglevSize),
		healthy: map[string]Backend{},
	})
	if cfg.FlowCacheSize > 0 {
		lb.cache = NewShardedFlowCache(cfg.FlowCacheSize, cfg.FlowCacheShards)
	}
	return lb
}

// Metrics returns the LB's registry.
func (lb *LB) Metrics() *metrics.Registry { return lb.reg }

// AddBackend registers a backend. New backends start unhealthy until a
// probe (or SetHealth) admits them, unless healthyNow is true.
func (lb *LB) AddBackend(b Backend, healthyNow bool) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.backends[b.Name] = &backendState{Backend: b, healthy: healthyNow}
	lb.rebuildLocked()
}

// RemoveBackend deletes a backend entirely.
func (lb *LB) RemoveBackend(name string) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	delete(lb.backends, name)
	lb.rebuildLocked()
}

// SetHealth overrides a backend's health (used by tests and by the
// simulator's modeled probes).
func (lb *LB) SetHealth(name string, healthy bool) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	bs, ok := lb.backends[name]
	if !ok || bs.healthy == healthy {
		return
	}
	bs.healthy = healthy
	lb.transitionLocked(bs)
}

func (lb *LB) transitionLocked(bs *backendState) {
	if bs.healthy {
		lb.reg.Counter("katran.health.up").Inc()
	} else {
		lb.reg.Counter("katran.health.down").Inc()
	}
	lb.rebuildLocked()
}

// rebuildLocked publishes a fresh routing snapshot from the current
// backend health. Callers hold lb.mu, which serializes publications.
func (lb *LB) rebuildLocked() {
	names := make([]string, 0, len(lb.backends))
	healthy := make(map[string]Backend, len(lb.backends))
	for _, bs := range lb.backends {
		if bs.healthy {
			names = append(names, bs.Name)
			healthy[bs.Name] = bs.Backend
		}
	}
	sort.Strings(names)
	lb.route.Store(&routeTable{
		maglev:  consistent.NewMaglev(lb.cfg.MaglevSize, names...),
		healthy: healthy,
	})
	lb.reg.Counter("katran.table.rebuilds").Inc()
	lb.reg.Gauge("katran.backends.healthy").Set(int64(len(names)))
}

// HealthyBackends returns the names of healthy backends, sorted.
func (lb *LB) HealthyBackends() []string {
	return lb.route.Load().maglev.Members()
}

// ErrNoBackends is returned by Steer when every backend is out.
var ErrNoBackends = errors.New("katran: no healthy backends")

// Steer picks the backend for a flow hash: the LRU connection table first
// (if enabled and the cached backend is still healthy), then Maglev. The
// result is cached so the flow sticks.
//
// Steer is lock-free on the routing table (it reads the current snapshot)
// and touches at most one flow-cache shard, so concurrent steering scales
// across cores.
func (lb *LB) Steer(flow uint64) (Backend, error) {
	rt := lb.route.Load()
	if lb.cache != nil {
		if name, ok := lb.cache.Get(flow); ok {
			if b, live := rt.healthy[name]; live {
				lb.cCacheHit.Inc()
				return b, nil
			}
			// Cached backend gone: fall through to a fresh pick.
			lb.cache.Delete(flow)
		}
	}
	name := rt.maglev.PickUint(flow)
	if name == "" {
		return Backend{}, ErrNoBackends
	}
	lb.cTablePick.Inc()
	if lb.cache != nil {
		lb.cache.Put(flow, name)
	}
	return rt.healthy[name], nil
}

// SteerAddr is Steer returning just the address.
func (lb *LB) SteerAddr(flow uint64) (string, error) {
	b, err := lb.Steer(flow)
	return b.Addr, err
}

// StartHealthChecks probes all backends every interval until Close.
func (lb *LB) StartHealthChecks(interval time.Duration) {
	lb.wg.Add(1)
	go func() {
		defer lb.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			lb.ProbeOnce()
			select {
			case <-ticker.C:
			case <-lb.stop:
				return
			}
		}
	}()
}

// ProbeOnce probes every backend once, applying the thresholds.
func (lb *LB) ProbeOnce() {
	lb.mu.Lock()
	targets := make([]*backendState, 0, len(lb.backends))
	for _, bs := range lb.backends {
		targets = append(targets, bs)
	}
	probe := lb.cfg.Probe
	timeout := lb.cfg.ProbeTimeout
	lb.mu.Unlock()

	type result struct {
		bs *backendState
		ok bool
	}
	results := make([]result, len(targets))
	var wg sync.WaitGroup
	for i, bs := range targets {
		wg.Add(1)
		go func(i int, bs *backendState) {
			defer wg.Done()
			addr := bs.HealthAddr
			if addr == "" {
				addr = bs.Addr
			}
			results[i] = result{bs: bs, ok: probe(addr, timeout) == nil}
		}(i, bs)
	}
	wg.Wait()

	lb.mu.Lock()
	defer lb.mu.Unlock()
	for _, r := range results {
		lb.reg.Counter("katran.probes").Inc()
		if r.ok {
			r.bs.consecOK++
			r.bs.consecFail = 0
			if !r.bs.healthy && r.bs.consecOK >= lb.cfg.HealthyAfter {
				r.bs.healthy = true
				lb.transitionLocked(r.bs)
			}
		} else {
			r.bs.consecFail++
			r.bs.consecOK = 0
			if r.bs.healthy && r.bs.consecFail >= lb.cfg.UnhealthyAfter {
				r.bs.healthy = false
				lb.transitionLocked(r.bs)
			}
		}
	}
}

// Close stops health checking.
func (lb *LB) Close() {
	lb.once.Do(func() { close(lb.stop) })
	lb.wg.Wait()
}

// ProbeHC is the default prober: it speaks the one-line health-check
// protocol ("HC\n" → "OK\n") that the Proxygen health listener implements.
// A draining instance answers "DRAIN", which counts as unhealthy — the
// §2.3 mechanism for removing an instance from the routing ring.
func ProbeHC(addr string, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte("HC\n")); err != nil {
		return err
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return err
	}
	if line != "OK\n" {
		return fmt.Errorf("katran: unhealthy answer %q", line)
	}
	return nil
}
