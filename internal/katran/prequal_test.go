package katran

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// silentProber never produces load samples on its own, so tests drive
// the probe pools deterministically through AddSample.
type silentProber struct{}

func (silentProber) Probe(string, time.Duration) error { return nil }
func (silentProber) Load(string, time.Duration) (LoadSample, error) {
	return LoadSample{}, errors.New("silent")
}

// quietPrequal returns a PolicyPrequal whose async probe loops fire once
// and then sleep for an hour — every sample in the pools comes from
// AddSample.
func quietPrequal(cfg PrequalConfig) *PolicyPrequal {
	cfg.Prober = silentProber{}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Hour
	}
	return NewPolicyPrequal(cfg, nil)
}

// prequalLB builds an LB (no pinning layers: every Steer exercises the
// policy) over the named backends, all healthy.
func prequalLB(t *testing.T, p *PolicyPrequal, names ...string) *LB {
	t.Helper()
	lb := New("lb", Config{Policy: p}, nil)
	t.Cleanup(lb.Close)
	for _, n := range names {
		lb.AddBackend(Backend{Name: n, Addr: n + ":80"}, true)
	}
	return lb
}

func fresh(rif int, lat time.Duration) LoadSample {
	return LoadSample{RIF: rif, Latency: lat, Phase: PhaseServing}
}

func TestPrequalPrefersProbedColdBackend(t *testing.T) {
	p := quietPrequal(PrequalConfig{PowerD: 3, HotQuantile: 0.34})
	lb := prequalLB(t, p, "a", "b", "c")
	// b is the coldest by latency among the cold set {a, b}; c is hot
	// (RIF 100 is above the 0.34-quantile threshold of {1, 2, 100}).
	p.AddSample("a", fresh(1, 5*time.Millisecond))
	p.AddSample("b", fresh(2, 1*time.Millisecond))
	p.AddSample("c", fresh(100, time.Microsecond))

	b, err := lb.Steer(77)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "b" {
		t.Fatalf("pick = %s, want b (coldest by latency among cold)", b.Name)
	}
	if p.cPickCold.Value() == 0 {
		t.Fatal("cold pick must count on katran.prequal.pick_cold")
	}
}

// TestPrequalReuseBudgetExhaustion pins the paper's probe-reuse rule: a
// sample steers at most ReuseBudget decisions, then is discarded; a
// backend whose samples are all spent steers like an unprobed one.
func TestPrequalReuseBudgetExhaustion(t *testing.T) {
	p := quietPrequal(PrequalConfig{PowerD: 2, ReuseBudget: 2})
	lb := prequalLB(t, p, "a", "b")
	p.AddSample("a", fresh(0, time.Microsecond))
	// b has no samples: a (probed) must win until its budget runs dry.

	for i := 0; i < 2; i++ {
		b, err := lb.Steer(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if b.Name != "a" {
			t.Fatalf("pick %d = %s, want probed backend a", i, b.Name)
		}
	}
	// Third decision: a's only sample is spent — no probe data anywhere,
	// so the pick falls back to Maglev placement.
	view := lb.View()
	want, _ := view.PickMaglev(99)
	b, err := lb.Steer(99)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != want.Name {
		t.Fatalf("post-exhaustion pick = %s, want maglev fallback %s", b.Name, want.Name)
	}
	if p.cReuseOut.Value() == 0 {
		t.Fatal("spent sample must count on katran.prequal.probe_reuse_exhausted")
	}
	if p.cPickFall.Value() == 0 {
		t.Fatal("fallback must count on katran.prequal.pick_fallback")
	}
}

// TestPrequalExpiryPartitionedBackend pins the expiry rule: a partitioned
// backend stops producing samples, its pool ages out, and stale probes
// must not keep steering traffic at it — even if the last thing it said
// was "I am the coldest backend alive".
func TestPrequalExpiryPartitionedBackend(t *testing.T) {
	p := quietPrequal(PrequalConfig{PowerD: 2, MaxAge: 30 * time.Millisecond, ReuseBudget: 1 << 20})
	lb := prequalLB(t, p, "part", "alive")
	// The partitioned backend advertised a perfect score before it went
	// dark; the live one is visibly loaded.
	p.AddSample("part", fresh(0, time.Microsecond))
	p.AddSample("alive", fresh(50, 20*time.Millisecond))

	time.Sleep(60 * time.Millisecond) // both samples expire
	p.AddSample("alive", fresh(50, 20*time.Millisecond))

	for i := 0; i < 16; i++ {
		b, err := lb.Steer(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if b.Name != "alive" {
			t.Fatalf("pick %d = %s: stale probe kept steering to a partitioned backend", i, b.Name)
		}
	}
	if p.cExpired.Value() == 0 {
		t.Fatal("expired samples must count on katran.prequal.probe_expired")
	}
}

func TestPrequalAvoidsDrainingBackend(t *testing.T) {
	p := quietPrequal(PrequalConfig{PowerD: 2, ReuseBudget: 1 << 20, MaxAge: time.Hour})
	lb := prequalLB(t, p, "old", "new")
	// The draining generation is objectively less loaded — placement
	// balancing would keep feeding it. The drain advertisement must
	// dominate the load signal.
	p.AddSample("old", LoadSample{RIF: 0, Latency: time.Microsecond, Phase: PhaseDraining, Generation: 1})
	p.AddSample("new", LoadSample{RIF: 80, Latency: 10 * time.Millisecond, Phase: PhaseServing, Generation: 2})

	for i := 0; i < 32; i++ {
		b, err := lb.Steer(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if b.Name != "new" {
			t.Fatalf("pick %d = %s: fresh flow steered onto the draining generation", i, b.Name)
		}
	}
	if p.cAvoided.Value() == 0 {
		t.Fatal("avoided drains must count on katran.prequal.drain_avoided")
	}
	// committed-awaiting-ready advertises the same way.
	p.AddSample("old", LoadSample{Phase: PhaseCommitted, Generation: 1})
	if b, _ := lb.Steer(1000); b.Name != "new" {
		t.Fatal("committed-awaiting-ready must be deprioritized like draining")
	}
}

// TestPrequalAllCandidatesDraining pins the never-fail rule: when every
// candidate advertises a release in flight (fleet-wide rollout), the
// policy still picks the best of them — a live request is never errored
// while healthy backends exist.
func TestPrequalAllCandidatesDraining(t *testing.T) {
	p := quietPrequal(PrequalConfig{PowerD: 2, ReuseBudget: 1 << 20, MaxAge: time.Hour})
	lb := prequalLB(t, p, "d1", "d2")
	p.AddSample("d1", LoadSample{RIF: 10, Latency: 5 * time.Millisecond, Phase: PhaseDraining})
	p.AddSample("d2", LoadSample{RIF: 10, Latency: 1 * time.Millisecond, Phase: PhaseDraining})

	for i := 0; i < 16; i++ {
		b, err := lb.Steer(uint64(i))
		if err != nil {
			t.Fatalf("all-draining steer errored: %v", err)
		}
		if b.Name == "" {
			t.Fatal("all-draining steer returned empty backend")
		}
	}
}

func TestPrequalNoBackends(t *testing.T) {
	p := quietPrequal(PrequalConfig{})
	lb := prequalLB(t, p) // no backends
	if _, err := lb.Steer(1); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("steer with no backends = %v, want ErrNoBackends", err)
	}
}

// TestPrequalBackendDownDropsPool pins pool hygiene: a backend leaving
// the ring takes its samples with it, and a re-admitted backend starts
// with an empty pool.
func TestPrequalBackendDownDropsPool(t *testing.T) {
	p := quietPrequal(PrequalConfig{PowerD: 2, ReuseBudget: 1 << 20, MaxAge: time.Hour})
	lb := prequalLB(t, p, "a", "b")
	p.AddSample("a", fresh(0, time.Microsecond))
	lb.SetHealth("a", false)
	lb.SetHealth("a", true)
	p.AddSample("b", fresh(9, time.Millisecond))

	// a's pre-eviction sample must be gone: b is now the only probed
	// backend and wins every pick.
	for i := 0; i < 16; i++ {
		b, err := lb.Steer(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if b.Name != "b" {
			t.Fatalf("pick %d = %s: sample survived backend eviction", i, b.Name)
		}
	}
}

// Direct unit coverage of the hot/cold lexicographic rule.
func TestPrequalLexicographicRule(t *testing.T) {
	hot := 10
	cold1 := estimate{b: Backend{Name: "cold1"}, known: true, rif: 5, latency: 2 * time.Millisecond}
	cold2 := estimate{b: Backend{Name: "cold2"}, known: true, rif: 8, latency: 1 * time.Millisecond}
	hot1 := estimate{b: Backend{Name: "hot1"}, known: true, rif: 20, latency: time.Microsecond}
	hot2 := estimate{b: Backend{Name: "hot2"}, known: true, rif: 30, latency: time.Microsecond}
	unknown := estimate{b: Backend{Name: "unknown"}}
	drainCold := estimate{b: Backend{Name: "drain"}, known: true, draining: true, rif: 0, latency: time.Microsecond}

	cases := []struct {
		name string
		a, b estimate
		want bool
	}{
		{"serving beats draining even at worse load", hot2, drainCold, true},
		{"draining loses to serving", drainCold, cold1, false},
		{"unknown beats known-draining", unknown, drainCold, true},
		{"probed beats unprobed", cold1, unknown, true},
		{"cold beats hot", cold2, hot1, true},
		{"among cold, lower latency wins", cold2, cold1, true},
		{"among hot, lower RIF wins", hot1, hot2, true},
	}
	for _, c := range cases {
		if got := better(c.a, c.b, hot); got != c.want {
			t.Errorf("%s: better(%s, %s) = %v, want %v", c.name, c.a.b.Name, c.b.b.Name, got, c.want)
		}
	}
}

func TestPrequalHotThreshold(t *testing.T) {
	p := quietPrequal(PrequalConfig{HotQuantile: 0.84})
	defer p.Close()
	if got := p.hotThreshold(nil); got != 0 {
		t.Fatalf("empty threshold = %d", got)
	}
	// 16 rifs 0..15: the 0.84 quantile index is 13.
	rifs := make([]int, 16)
	for i := range rifs {
		rifs[i] = i
	}
	if got := p.hotThreshold(rifs); got != 13 {
		t.Fatalf("threshold = %d, want 13", got)
	}
}

// TestPrequalConcurrentSteering exercises Pick, AddSample and health
// transitions concurrently; run under -race in CI.
func TestPrequalConcurrentSteering(t *testing.T) {
	p := quietPrequal(PrequalConfig{PowerD: 3, ReuseBudget: 4, MaxAge: 50 * time.Millisecond})
	lb := prequalLB(t, p, "a", "b", "c", "d")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := lb.Steer(seed*1e6 + i); err != nil {
					t.Errorf("steer: %v", err)
					return
				}
			}
		}(uint64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		names := []string{"a", "b", "c", "d"}
		for i := 0; i < 200; i++ {
			n := names[i%len(names)]
			p.AddSample(n, fresh(i%30, time.Duration(i%900)*time.Microsecond))
			if i%17 == 0 {
				lb.SetHealth(n, false)
				lb.SetHealth(n, true)
			}
			time.Sleep(100 * time.Microsecond)
		}
		close(stop)
	}()
	wg.Wait()
}

func BenchmarkSteerPolicyMaglev(b *testing.B) {
	lb := New("lb", Config{FlowCacheSize: 1024, FlowTableSize: 4096}, nil)
	defer lb.Close()
	for _, n := range []string{"a", "b", "c", "d"} {
		lb.AddBackend(Backend{Name: n, Addr: n + ":80"}, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lb.Steer(uint64(i) % 8192); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteerPolicyPrequal(b *testing.B) {
	p := quietPrequal(PrequalConfig{PowerD: 3, ReuseBudget: 1 << 30, MaxAge: time.Hour})
	lb := New("lb", Config{Policy: p}, nil)
	defer lb.Close()
	for _, n := range []string{"a", "b", "c", "d"} {
		lb.AddBackend(Backend{Name: n, Addr: n + ":80"}, true)
		p.AddSample(n, fresh(len(n), time.Millisecond))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lb.Steer(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
