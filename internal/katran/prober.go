package katran

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Release phases a backend can advertise in a load-probe answer. They
// mirror the proxy's release state machine (and the disruption ledger's
// phase stamps): a backend in PhaseDraining or PhaseCommitted has a
// release in flight, and drain-aware policies deprioritize it so new
// flows bleed away before the drain timer bites.
const (
	PhaseServing   = "serving"
	PhaseDraining  = "draining"
	PhaseCommitted = "committed-awaiting-ready"
)

// LoadSample is one load-probe answer: the Prequal signal pair
// (requests in flight + latency) plus the ZDR twist — the backend's
// release phase and generation, so steering can bleed new flows off a
// draining generation before the drain timer bites.
type LoadSample struct {
	// RIF is the backend's requests-in-flight at answer time.
	RIF int
	// Latency is the backend's recent request-latency estimate (its
	// data-plane median, not the probe's RTT).
	Latency time.Duration
	// Phase is the backend's release phase (PhaseServing, PhaseDraining,
	// PhaseCommitted).
	Phase string
	// Generation is the backend's release generation.
	Generation int
}

// Draining reports whether the sample advertises a release in flight —
// the backend is draining or committed-awaiting-ready.
func (s LoadSample) Draining() bool {
	return s.Phase == PhaseDraining || s.Phase == PhaseCommitted
}

// EncodeLoadLine renders a LoadSample as one line of the load-probe
// wire protocol (the answer to a "LOAD\n" request on the health VIP):
//
//	LOAD rif=<n> lat_us=<µs> phase=<phase> gen=<n>\n
func EncodeLoadLine(s LoadSample) string {
	phase := s.Phase
	if phase == "" {
		phase = PhaseServing
	}
	return fmt.Sprintf("LOAD rif=%d lat_us=%d phase=%s gen=%d\n",
		s.RIF, s.Latency.Microseconds(), phase, s.Generation)
}

// ParseLoadLine parses one load-probe answer line. Unknown fields are
// ignored so the format can grow without breaking older probers.
func ParseLoadLine(line string) (LoadSample, error) {
	line = strings.TrimSuffix(line, "\n")
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != "LOAD" {
		return LoadSample{}, fmt.Errorf("katran: not a load answer: %q", line)
	}
	s := LoadSample{Phase: PhaseServing}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "rif":
			n, err := strconv.Atoi(v)
			if err != nil {
				return LoadSample{}, fmt.Errorf("katran: bad rif %q", v)
			}
			s.RIF = n
		case "lat_us":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return LoadSample{}, fmt.Errorf("katran: bad lat_us %q", v)
			}
			s.Latency = time.Duration(n) * time.Microsecond
		case "phase":
			s.Phase = v
		case "gen":
			n, err := strconv.Atoi(v)
			if err != nil {
				return LoadSample{}, fmt.Errorf("katran: bad gen %q", v)
			}
			s.Generation = n
		}
	}
	return s, nil
}

// Prober is the probe transport shared by health probing and load
// probing: one implementation (and one fault-injection point) carries
// both the §2.3 health-check protocol and the Prequal load-probe
// protocol.
type Prober interface {
	// Probe performs one health probe; nil error means healthy.
	Probe(addr string, timeout time.Duration) error
	// Load performs one load probe, returning the backend's advertised
	// load signal and release phase.
	Load(addr string, timeout time.Duration) (LoadSample, error)
}

// HCProber is the default Prober: it speaks the one-line health-check
// protocol ("HC\n" → "OK\n") and the load-probe protocol ("LOAD\n" →
// "LOAD rif=... lat_us=... phase=... gen=...\n") that the Proxygen
// health listener implements.
//
// Health probes use a fresh connection per probe, exactly as Katran's
// prober does. Load probes ride one persistent connection per backend —
// the pool-of-probes transport — which also carries the ZDR drain
// advertisement: a draining instance stops accepting new connections
// but keeps serving established ones, so the persistent probe channel
// hears "phase=draining" the instant the release starts, long before a
// fresh-connection health probe would be refused.
type HCProber struct {
	// Dial overrides the dialer (default net.DialTimeout). This is the
	// single fault-injection point for both probe protocols: wire it to
	// a faults.Injector.Dial to chaos-test probing.
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)

	mu    sync.Mutex
	conns map[string]*probeConn
}

// probeConn is one persistent load-probe channel.
type probeConn struct {
	c  net.Conn
	br *bufio.Reader
}

func (p *HCProber) dial(addr string, timeout time.Duration) (net.Conn, error) {
	if p.Dial != nil {
		return p.Dial("tcp", addr, timeout)
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// Probe implements the health-check side: "HC\n" → "OK\n". A draining
// instance answers "DRAIN", which counts as unhealthy — the §2.3
// mechanism for removing an instance from the routing ring.
func (p *HCProber) Probe(addr string, timeout time.Duration) error {
	conn, err := p.dial(addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte("HC\n")); err != nil {
		return err
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return err
	}
	if line != "OK\n" {
		return fmt.Errorf("katran: unhealthy answer %q", line)
	}
	return nil
}

// Load implements the load-probe side over the persistent per-backend
// channel, reconnecting (once per call) when the channel is dead.
func (p *HCProber) Load(addr string, timeout time.Duration) (LoadSample, error) {
	p.mu.Lock()
	if p.conns == nil {
		p.conns = make(map[string]*probeConn)
	}
	pc := p.conns[addr]
	p.mu.Unlock()

	if pc != nil {
		if s, err := p.loadOn(pc, timeout); err == nil {
			return s, nil
		}
		// Dead channel: drop it and fall through to one fresh dial.
		p.dropConn(addr, pc)
	}
	conn, err := p.dial(addr, timeout)
	if err != nil {
		return LoadSample{}, err
	}
	pc = &probeConn{c: conn, br: bufio.NewReader(conn)}
	s, err := p.loadOn(pc, timeout)
	if err != nil {
		conn.Close()
		return LoadSample{}, err
	}
	p.mu.Lock()
	if old, ok := p.conns[addr]; ok && old != pc {
		old.c.Close() // raced with a concurrent reconnect; keep ours
	}
	p.conns[addr] = pc
	p.mu.Unlock()
	return s, nil
}

func (p *HCProber) loadOn(pc *probeConn, timeout time.Duration) (LoadSample, error) {
	pc.c.SetDeadline(time.Now().Add(timeout))
	if _, err := pc.c.Write([]byte("LOAD\n")); err != nil {
		return LoadSample{}, err
	}
	line, err := pc.br.ReadString('\n')
	if err != nil {
		return LoadSample{}, err
	}
	return ParseLoadLine(line)
}

func (p *HCProber) dropConn(addr string, pc *probeConn) {
	p.mu.Lock()
	if cur, ok := p.conns[addr]; ok && cur == pc {
		delete(p.conns, addr)
	}
	p.mu.Unlock()
	pc.c.Close()
}

// Close closes every persistent load-probe channel.
func (p *HCProber) Close() error {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, pc := range conns {
		pc.c.Close()
	}
	return nil
}

// defaultProber backs the deprecated ProbeHC wrapper.
var defaultProber = &HCProber{}

// Deprecated: ProbeFunc is the pre-Prober probe shape; implement Prober
// (or wrap the func in Config.Probe, which still works) instead.
type ProbeFunc func(addr string, timeout time.Duration) error

// Deprecated: ProbeHC is a legacy wrapper; use (&HCProber{}).Probe.
func ProbeHC(addr string, timeout time.Duration) error {
	return defaultProber.Probe(addr, timeout)
}

// funcProber adapts a legacy ProbeFunc to the Prober interface. Load
// probing is unsupported: policies fall back to placement-only steering.
type funcProber struct{ fn ProbeFunc }

func (f funcProber) Probe(addr string, timeout time.Duration) error {
	return f.fn(addr, timeout)
}

func (f funcProber) Load(string, time.Duration) (LoadSample, error) {
	return LoadSample{}, fmt.Errorf("katran: prober does not support load probes")
}
