package katran

import (
	"container/list"
	"sync"
)

// FlowCache is the §5.1 remediation: "we recommend adopting a connection
// table cache for the most recent flows. In Facebook we employ a Least
// Recently Used (LRU) cache in the Katran (L4LB layer) to absorb such
// momentary shuffles and facilitate connections to be routed consistently
// to the same end server."
//
// It maps flow hashes to backend names with LRU eviction. Not safe for
// concurrent use; ShardedFlowCache partitions flows over many FlowCaches,
// each serialized under its own shard lock.
type FlowCache struct {
	capacity int
	order    *list.List // front = most recent; values are *flowEntry
	index    map[uint64]*list.Element
}

type flowEntry struct {
	flow    uint64
	backend string
}

// NewFlowCache creates a cache holding up to capacity flows.
func NewFlowCache(capacity int) *FlowCache {
	if capacity <= 0 {
		capacity = 1
	}
	return newFlowCache(capacity)
}

// newFlowCache is NewFlowCache without the <=0 clamp: a zero-capacity
// cache stores nothing. ShardedFlowCache uses it so a capacity smaller
// than the shard count can hand some shards capacity 0 and still honor
// the documented total bound.
func newFlowCache(capacity int) *FlowCache {
	return &FlowCache{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[uint64]*list.Element, capacity),
	}
}

// Get returns the cached backend for flow, marking it most recently used.
func (c *FlowCache) Get(flow uint64) (string, bool) {
	el, ok := c.index[flow]
	if !ok {
		return "", false
	}
	c.order.MoveToFront(el)
	return el.Value.(*flowEntry).backend, true
}

// Put records flow → backend, evicting the least recently used entry if
// the cache is full.
func (c *FlowCache) Put(flow uint64, backend string) {
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.index[flow]; ok {
		el.Value.(*flowEntry).backend = backend
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.index, oldest.Value.(*flowEntry).flow)
		}
	}
	c.index[flow] = c.order.PushFront(&flowEntry{flow: flow, backend: backend})
}

// Delete removes flow from the cache.
func (c *FlowCache) Delete(flow uint64) {
	if el, ok := c.index[flow]; ok {
		c.order.Remove(el)
		delete(c.index, flow)
	}
}

// Len returns the number of cached flows.
func (c *FlowCache) Len() int { return c.order.Len() }

// ShardedFlowCache partitions a FlowCache over a power-of-two number of
// shards so concurrent packets on different flows do not serialize on one
// lock. Each shard is an independent LRU over its slice of the flow-hash
// space: eviction is per shard, which preserves the §5.1 semantics (the
// cache only has to absorb *momentary* shuffles, so approximate global
// LRU is fine) while letting the steering hot path scale with cores.
type ShardedFlowCache struct {
	mask   uint64
	shards []flowShard
}

type flowShard struct {
	mu  sync.Mutex
	lru *FlowCache
	// Pad each shard to a 128-byte stride — two cache lines, so adjacent
	// shard locks neither share a line nor a spatial-prefetch pair (the
	// adjacent-line prefetcher pulls lines in 128-byte pairs, which would
	// otherwise re-couple shards 2k and 2k+1). The stride is pinned by
	// TestFlowShardStride via unsafe.Sizeof.
	_ [128 - 8 - 8]byte
}

// DefaultFlowCacheShards is the shard count used when the caller passes
// shards <= 0. 16 comfortably covers the core counts this repo targets
// while keeping per-shard LRUs large enough to be useful.
const DefaultFlowCacheShards = 16

// NewShardedFlowCache creates a cache holding up to capacity flows total,
// split over shards (rounded up to a power of two; <= 0 selects
// DefaultFlowCacheShards). Capacity is distributed so per-shard bounds
// sum to exactly capacity: each shard gets floor(capacity/shards) and the
// remainder is spread one-per-shard, so the documented "capacity flows
// total" bound holds even for awkward capacity/shard combinations
// (ceil-per-shard would admit perShard×shards > capacity — e.g.
// capacity=1 over 16 shards admitted 16).
func NewShardedFlowCache(capacity, shards int) *ShardedFlowCache {
	if shards <= 0 {
		shards = DefaultFlowCacheShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if capacity <= 0 {
		capacity = 1
	}
	base, extra := capacity/n, capacity%n
	c := &ShardedFlowCache{mask: uint64(n - 1), shards: make([]flowShard, n)}
	for i := range c.shards {
		per := base
		if i < extra {
			per++
		}
		c.shards[i].lru = newFlowCache(per)
	}
	return c
}

// shardMix is the splitmix64 finalizer: shard choice must not correlate
// with low flow-hash bits (sequential connection IDs would otherwise pile
// onto a few shards).
func shardMix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ (h >> 31)
}

func (c *ShardedFlowCache) shard(flow uint64) *flowShard {
	return &c.shards[shardMix(flow)&c.mask]
}

// Shards returns the shard count.
func (c *ShardedFlowCache) Shards() int { return len(c.shards) }

// Get returns the cached backend for flow, marking it most recently used
// within its shard.
func (c *ShardedFlowCache) Get(flow uint64) (string, bool) {
	s := c.shard(flow)
	s.mu.Lock()
	name, ok := s.lru.Get(flow)
	s.mu.Unlock()
	return name, ok
}

// Put records flow → backend, evicting its shard's least recently used
// entry if that shard is full.
func (c *ShardedFlowCache) Put(flow uint64, backend string) {
	s := c.shard(flow)
	s.mu.Lock()
	s.lru.Put(flow, backend)
	s.mu.Unlock()
}

// Delete removes flow from the cache.
func (c *ShardedFlowCache) Delete(flow uint64) {
	s := c.shard(flow)
	s.mu.Lock()
	s.lru.Delete(flow)
	s.mu.Unlock()
}

// Swap runs fn under flow's shard lock with the currently cached backend
// (ok=false when absent) and applies the result atomically: keep=false
// removes the entry, otherwise next is stored. It exists for Steer's
// stale-hit path: a Delete-then-Put pair is two critical sections, and a
// concurrent steer of the same flow interleaving between them can
// resurrect a just-deleted entry for a backend that went unhealthy in
// between. fn must not call back into the cache (the shard lock is held).
func (c *ShardedFlowCache) Swap(flow uint64, fn func(cur string, ok bool) (next string, keep bool)) {
	s := c.shard(flow)
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.lru.Get(flow)
	next, keep := fn(cur, ok)
	switch {
	case !keep:
		if ok {
			s.lru.Delete(flow)
		}
	case !ok || next != cur:
		s.lru.Put(flow, next)
	}
}

// Len returns the number of cached flows across all shards.
func (c *ShardedFlowCache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.lru.Len()
		s.mu.Unlock()
	}
	return total
}
