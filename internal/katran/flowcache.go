package katran

import "container/list"

// FlowCache is the §5.1 remediation: "we recommend adopting a connection
// table cache for the most recent flows. In Facebook we employ a Least
// Recently Used (LRU) cache in the Katran (L4LB layer) to absorb such
// momentary shuffles and facilitate connections to be routed consistently
// to the same end server."
//
// It maps flow hashes to backend names with LRU eviction. Not safe for
// concurrent use; the LB serializes access under its own lock.
type FlowCache struct {
	capacity int
	order    *list.List // front = most recent; values are *flowEntry
	index    map[uint64]*list.Element
}

type flowEntry struct {
	flow    uint64
	backend string
}

// NewFlowCache creates a cache holding up to capacity flows.
func NewFlowCache(capacity int) *FlowCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &FlowCache{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[uint64]*list.Element, capacity),
	}
}

// Get returns the cached backend for flow, marking it most recently used.
func (c *FlowCache) Get(flow uint64) (string, bool) {
	el, ok := c.index[flow]
	if !ok {
		return "", false
	}
	c.order.MoveToFront(el)
	return el.Value.(*flowEntry).backend, true
}

// Put records flow → backend, evicting the least recently used entry if
// the cache is full.
func (c *FlowCache) Put(flow uint64, backend string) {
	if el, ok := c.index[flow]; ok {
		el.Value.(*flowEntry).backend = backend
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.index, oldest.Value.(*flowEntry).flow)
		}
	}
	c.index[flow] = c.order.PushFront(&flowEntry{flow: flow, backend: backend})
}

// Delete removes flow from the cache.
func (c *FlowCache) Delete(flow uint64) {
	if el, ok := c.index[flow]; ok {
		c.order.Remove(el)
		delete(c.index, flow)
	}
}

// Len returns the number of cached flows.
func (c *FlowCache) Len() int { return c.order.Len() }
