package katran

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestFlowTableBasic(t *testing.T) {
	ft := NewFlowTable(1024, 4)
	ft.SetBackends([]string{"a", "b"})

	if _, ok := ft.Lookup(7); ok {
		t.Fatal("lookup on empty table hit")
	}
	if !ft.Insert(7, "a") {
		t.Fatal("insert of interned backend failed")
	}
	if name, ok := ft.Lookup(7); !ok || name != "a" {
		t.Fatalf("lookup = %q,%v want a,true", name, ok)
	}
	if ft.Insert(8, "nope") {
		t.Fatal("insert of unknown backend succeeded")
	}
	if ft.Len() != 1 {
		t.Fatalf("Len = %d want 1", ft.Len())
	}
	ft.Delete(7)
	if _, ok := ft.Lookup(7); ok {
		t.Fatal("lookup after delete hit")
	}
	if ft.Len() != 0 {
		t.Fatalf("Len after delete = %d want 0", ft.Len())
	}
}

// TestFlowTableEntrySize pins the bounded-memory-per-flow claim: one
// entry is exactly 16 bytes and carries no pointers.
func TestFlowTableEntrySize(t *testing.T) {
	if got := unsafe.Sizeof(flowTableEntry{}); got != 16 {
		t.Fatalf("flowTableEntry is %d bytes, want 16", got)
	}
}

// TestFlowTableShardStride pins the shard padding: adjacent shard locks
// must live a full prefetch pair (128 bytes) apart.
func TestFlowTableShardStride(t *testing.T) {
	if got := unsafe.Sizeof(flowTableShard{}); got != 128 {
		t.Fatalf("flowTableShard is %d bytes, want 128", got)
	}
}

// TestFlowTableTombstoneAndRevive: tombstoning a backend flips every flow
// pinned to it in one view publication; re-admitting it revives them
// (the §5.1 consistency property at table scale).
func TestFlowTableTombstoneAndRevive(t *testing.T) {
	ft := NewFlowTable(1024, 4)
	ft.SetBackends([]string{"a", "b"})
	for f := uint64(0); f < 100; f++ {
		ft.Insert(f, "a")
	}
	writes := ft.EntryWrites()

	ft.SetBackends([]string{"b"}) // a drained
	for f := uint64(0); f < 100; f++ {
		if name, ok := ft.Lookup(f); ok {
			t.Fatalf("flow %d still routes to tombstoned backend %q", f, name)
		}
	}
	ft.SetBackends([]string{"a", "b"}) // a back
	for f := uint64(0); f < 100; f++ {
		if name, ok := ft.Lookup(f); !ok || name != "a" {
			t.Fatalf("flow %d did not revive to a: %q,%v", f, name, ok)
		}
	}
	if got := ft.EntryWrites(); got != writes {
		t.Fatalf("backend-set flips wrote entries: %d -> %d", writes, got)
	}
}

// TestFlowTableEpochBumpIsO1 is the acceptance property: a takeover flips
// routing for every pinned flow with a single epoch bump — zero per-entry
// writes — and afterwards no flow resolves from the drained generation.
func TestFlowTableEpochBumpIsO1(t *testing.T) {
	const flows = 200_000
	ft := NewFlowTable(flows*2, 0)
	ft.SetBackends([]string{"a", "b", "c"})
	for f := uint64(0); f < flows; f++ {
		ft.Insert(f, []string{"a", "b", "c"}[f%3])
	}
	occupied := ft.Len()
	writesBefore := ft.EntryWrites()

	ft.Bump(true) // the takeover: one O(1) publication

	if got := ft.EntryWrites(); got != writesBefore {
		t.Fatalf("epoch bump performed %d per-entry writes, want 0", got-writesBefore)
	}
	if ft.EpochBumps() != 1 {
		t.Fatalf("EpochBumps = %d want 1", ft.EpochBumps())
	}
	// Every pre-bump pin is dead (drained generation)...
	for _, f := range []uint64{0, 1, 2, flows / 2, flows - 1} {
		if name, ok := ft.Lookup(f); ok {
			t.Fatalf("flow %d still routes to drained generation via %q", f, name)
		}
	}
	// ...while the entries still occupy their sockets until overwritten.
	if ft.Len() != occupied {
		t.Fatalf("bump changed occupancy %d -> %d (should be lazy)", occupied, ft.Len())
	}
	// New pins under the new generation route normally and reclaim the
	// same sockets in place.
	if !ft.Insert(1, "b") {
		t.Fatal("post-bump insert failed")
	}
	if name, ok := ft.Lookup(1); !ok || name != "b" {
		t.Fatalf("post-bump lookup = %q,%v want b,true", name, ok)
	}
	if ft.Len() != occupied {
		t.Fatalf("in-place re-pin changed occupancy %d -> %d", occupied, ft.Len())
	}
}

// TestFlowTableBumpWithoutInvalidate: a bookkeeping bump keeps old pins
// routable.
func TestFlowTableBumpWithoutInvalidate(t *testing.T) {
	ft := NewFlowTable(256, 2)
	ft.SetBackends([]string{"a"})
	ft.Insert(1, "a")
	ft.Bump(false)
	if name, ok := ft.Lookup(1); !ok || name != "a" {
		t.Fatalf("pin lost across non-invalidating bump: %q,%v", name, ok)
	}
}

// TestFlowTableEvictsOldestGeneration: a full bucket overwrites the entry
// from the stalest generation, so memory stays bounded and fresh pins
// win.
func TestFlowTableEvictsOldestGeneration(t *testing.T) {
	// Smallest table: one shard, one bucket of ftBucketWay entries.
	ft := NewFlowTable(ftBucketWay, 1)
	ft.SetBackends([]string{"a", "b"})
	var flows []uint64
	for f := uint64(0); len(flows) < ftBucketWay+1; f++ {
		flows = append(flows, f) // single bucket: all flows collide
	}
	ft.Insert(flows[0], "a")
	ft.Bump(false) // flows[0] is now the oldest generation
	for _, f := range flows[1 : ftBucketWay+1] {
		ft.Insert(f, "b")
	}
	if _, ok := ft.Lookup(flows[0]); ok {
		t.Fatal("oldest-generation entry survived a full-bucket insert")
	}
	if name, ok := ft.Lookup(flows[ftBucketWay]); !ok || name != "b" {
		t.Fatalf("newest entry missing: %q,%v", name, ok)
	}
	if ft.Len() != ftBucketWay {
		t.Fatalf("Len = %d want %d (bounded)", ft.Len(), ftBucketWay)
	}
}

// TestFlowTableUpdateValidateAndReplace: Update must see the current pin
// under the shard lock and must not write when the pin is already live.
func TestFlowTableUpdateValidateAndReplace(t *testing.T) {
	ft := NewFlowTable(256, 2)
	ft.SetBackends([]string{"a", "b"})
	ft.Insert(1, "a")
	writes := ft.EntryWrites()

	// Pin live: fn keeps it, no write.
	ft.Update(1, func(cur string, ok bool) (string, bool) {
		if !ok || cur != "a" {
			t.Fatalf("Update saw %q,%v want a,true", cur, ok)
		}
		return cur, true
	})
	if ft.EntryWrites() != writes {
		t.Fatal("no-op Update wrote an entry")
	}
	// Replace.
	ft.Update(1, func(cur string, ok bool) (string, bool) { return "b", true })
	if name, _ := ft.Lookup(1); name != "b" {
		t.Fatalf("Update replace: got %q want b", name)
	}
	// Drop.
	ft.Update(1, func(cur string, ok bool) (string, bool) { return "", false })
	if _, ok := ft.Lookup(1); ok {
		t.Fatal("Update drop left the pin")
	}
}

// TestLBSteerUsesFlowTable: LB-level integration — table pins survive an
// LRU-cache eviction storm, and counters attribute the hit tiers.
func TestLBSteerUsesFlowTable(t *testing.T) {
	lb := New("t", Config{FlowCacheSize: 8, FlowTableSize: 1 << 14}, nil)
	defer lb.Close()
	for i := 0; i < 8; i++ {
		lb.AddBackend(Backend{Name: fmt.Sprintf("p%d", i), Addr: "x"}, true)
	}
	const flows = 4096 // far beyond the 8-entry cache
	want := make(map[uint64]string, flows)
	for f := uint64(0); f < flows; f++ {
		b, err := lb.Steer(f)
		if err != nil {
			t.Fatal(err)
		}
		want[f] = b.Name
	}
	for f := uint64(0); f < flows; f++ {
		b, err := lb.Steer(f)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name != want[f] {
			t.Fatalf("flow %d moved %s -> %s", f, want[f], b.Name)
		}
	}
	if lb.Metrics().CounterValue("katran.steer.flowtable_hit") == 0 {
		t.Fatal("no flow-table hits recorded")
	}
	if lb.Metrics().GaugeValue("katran.flowtable.epoch") == 0 {
		t.Fatal("epoch gauge not exported")
	}
}

// TestLBAdvanceGenerationDrainsPins is the epoch-bump-during-steer chaos
// test: steering runs hot while AdvanceGeneration(true) flips the table,
// and (a) the flip itself performs zero per-entry writes, (b) after the
// flip no flow ever resolves from the drained generation — observed as:
// flows pinned to a backend that left the routing ring before the bump
// never steer to it after the bump, even though their dead entries still
// sit in the table.
func TestLBAdvanceGenerationDrainsPins(t *testing.T) {
	lb := New("t", Config{FlowTableSize: 1 << 15}, nil)
	defer lb.Close()
	const backends = 8
	for i := 0; i < backends; i++ {
		lb.AddBackend(Backend{Name: fmt.Sprintf("p%d", i), Addr: "x"}, true)
	}
	const flows = 8192
	pinnedToVictim := map[uint64]bool{}
	for f := uint64(0); f < flows; f++ {
		b, err := lb.Steer(f)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name == "p0" {
			pinnedToVictim[f] = true
		}
	}
	if len(pinnedToVictim) == 0 {
		t.Fatal("no flows pinned to victim")
	}

	var stop atomic.Bool
	var bumped atomic.Bool
	errs := make(chan string, 1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				f := uint64(rng.Intn(flows))
				b, err := lb.Steer(f)
				if err != nil {
					continue
				}
				if bumped.Load() && b.Name == "p0" {
					select {
					case errs <- fmt.Sprintf("flow %d routed to drained p0 after bump", f):
					default:
					}
					return
				}
			}
		}(int64(w))
	}

	// The release: victim leaves the ring, then the takeover bumps the
	// generation. Order matters — after the bump, nothing may route to
	// p0 anymore.
	lb.RemoveBackend("p0")
	writesBefore := lb.FlowTable().EntryWrites()
	lb.AdvanceGeneration(true)
	bumpWrites := lb.FlowTable().EntryWrites() - writesBefore
	bumped.Store(true)

	// Let the steer workers hammer the post-bump table for a while.
	for f := uint64(0); f < flows; f++ {
		if b, err := lb.Steer(f); err == nil && b.Name == "p0" {
			t.Fatalf("flow %d routed to drained p0 after bump", f)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if bumpWrites != 0 {
		t.Fatalf("AdvanceGeneration performed %d per-entry writes, want 0 (O(1) flip)", bumpWrites)
	}
	if lb.Metrics().CounterValue("katran.flowtable.bumps") != 1 {
		t.Fatal("bump counter not recorded")
	}
}

// TestFlowTableSoak interleaves Lookup/Insert/Delete/Update/Len/Bump/
// SetBackends across shards from many goroutines; under -race this pins
// the locking discipline of every table op against concurrent view
// publications.
func TestFlowTableSoak(t *testing.T) {
	ft := NewFlowTable(1<<12, 8)
	names := []string{"a", "b", "c", "d"}
	ft.SetBackends(names)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 4000; i++ {
				f := uint64(rng.Intn(1 << 13))
				switch i % 7 {
				case 0, 1, 2:
					ft.Lookup(f)
				case 3:
					ft.Insert(f, names[i%len(names)])
				case 4:
					ft.Delete(f)
				case 5:
					ft.Update(f, func(cur string, ok bool) (string, bool) {
						if ok {
							return cur, true
						}
						return names[i%len(names)], true
					})
				case 6:
					if ft.Len() > ft.Capacity() {
						t.Errorf("Len %d exceeds capacity %d", ft.Len(), ft.Capacity())
					}
				}
				if w == 0 && i%1000 == 999 {
					ft.Bump(i%2000 == 999)
					ft.SetBackends(names[:1+i%len(names)])
				}
			}
		}(w)
	}
	wg.Wait()
	if ft.Len() > ft.Capacity() {
		t.Fatalf("Len %d exceeds capacity %d", ft.Len(), ft.Capacity())
	}
}
