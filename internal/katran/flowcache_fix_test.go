package katran

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

// TestFlowShardStride pins the false-sharing fix: the old padding was
// mutex(8) + ptr(8) + [40]byte = 56 bytes, so adjacent shard locks shared
// cache lines. The stride must be exactly 128 bytes — two lines, one
// spatial-prefetch pair — so neither a line nor an adjacent-line-prefetch
// pair couples two shards.
func TestFlowShardStride(t *testing.T) {
	if got := unsafe.Sizeof(flowShard{}); got != 128 {
		t.Fatalf("flowShard is %d bytes, want 128", got)
	}
	var shards [2]flowShard
	if d := uintptr(unsafe.Pointer(&shards[1])) - uintptr(unsafe.Pointer(&shards[0])); d != 128 {
		t.Fatalf("shard array stride is %d bytes, want 128", d)
	}
}

// TestShardedFlowCacheCapacityBound pins the over-admission fix: the old
// ceil(capacity/n) per-shard split let total Len() reach perShard×n >
// capacity (capacity=1 over 16 shards admitted 16). Per-shard bounds must
// now sum to exactly capacity for awkward capacity/shard combinations.
func TestShardedFlowCacheCapacityBound(t *testing.T) {
	cases := []struct {
		capacity, shards int
	}{
		{1, 16},  // the reported case: admitted 16 before the fix
		{5, 4},   // remainder 1
		{7, 8},   // capacity < shard count
		{15, 16}, // capacity = shards-1
		{17, 16}, // capacity = shards+1
		{100, 16},
		{1000, 7}, // shards rounds up to 8; 1000 = 8×125
		{3, 2},
		{1, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("cap%d_shards%d", tc.capacity, tc.shards), func(t *testing.T) {
			c := NewShardedFlowCache(tc.capacity, tc.shards)
			// Sum of per-shard bounds must equal capacity exactly.
			sum := 0
			for i := range c.shards {
				sum += c.shards[i].lru.capacity
			}
			if sum != tc.capacity {
				t.Fatalf("per-shard capacities sum to %d, want %d", sum, tc.capacity)
			}
			// Flood with far more flows than capacity; Len must never
			// exceed it.
			for f := uint64(0); f < uint64(tc.capacity)*8+64; f++ {
				c.Put(f, "b")
				if got := c.Len(); got > tc.capacity {
					t.Fatalf("Len = %d exceeds capacity %d after %d puts", got, tc.capacity, f+1)
				}
			}
		})
	}
}

// TestFlowCacheZeroCapacity: shards handed capacity 0 by the remainder
// split must store nothing (and not panic).
func TestFlowCacheZeroCapacity(t *testing.T) {
	c := newFlowCache(0)
	c.Put(1, "a")
	if _, ok := c.Get(1); ok {
		t.Fatal("zero-capacity cache stored an entry")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d want 0", c.Len())
	}
	c.Delete(1) // must not panic
}

// TestShardedFlowCacheSwap covers the validate-and-replace primitive that
// fixed Steer's stale-hit race.
func TestShardedFlowCacheSwap(t *testing.T) {
	c := NewShardedFlowCache(64, 2)

	// Absent → insert.
	c.Swap(1, func(cur string, ok bool) (string, bool) {
		if ok {
			t.Fatalf("saw %q, want absent", cur)
		}
		return "a", true
	})
	if name, ok := c.Get(1); !ok || name != "a" {
		t.Fatalf("after insert swap: %q,%v", name, ok)
	}
	// Present → keep as-is (no churn).
	c.Swap(1, func(cur string, ok bool) (string, bool) {
		if !ok || cur != "a" {
			t.Fatalf("saw %q,%v want a,true", cur, ok)
		}
		return cur, true
	})
	// Present → replace.
	c.Swap(1, func(cur string, ok bool) (string, bool) { return "b", true })
	if name, _ := c.Get(1); name != "b" {
		t.Fatalf("after replace swap: %q", name)
	}
	// Present → drop.
	c.Swap(1, func(cur string, ok bool) (string, bool) { return "", false })
	if _, ok := c.Get(1); ok {
		t.Fatal("after drop swap: entry survived")
	}
	// Absent → keep=false stays absent.
	c.Swap(1, func(cur string, ok bool) (string, bool) { return "", false })
	if c.Len() != 0 {
		t.Fatalf("Len = %d want 0", c.Len())
	}
}

// TestSteerStaleHitNoResurrection pins the Delete-then-Put race fix: the
// old stale-cache-hit path dropped the shard lock between deleting the
// stale entry and putting the fresh pick, so a concurrent steer of the
// same flow could interleave and resurrect a just-deleted entry pointing
// at a backend that went unhealthy in between. With validate-and-replace
// under one shard critical section, a flow whose backend is unhealthy must
// never be served from the cache again — run under -race to also pin the
// locking. The victim backend flaps health concurrently to keep creating
// the stale-hit window.
func TestSteerStaleHitNoResurrection(t *testing.T) {
	lb := New("t", Config{FlowCacheSize: 1024, FlowCacheShards: 2}, nil)
	defer lb.Close()
	lb.AddBackend(Backend{Name: "victim", Addr: "v"}, true)
	lb.AddBackend(Backend{Name: "stable", Addr: "s"}, true)

	// Find a flow that Maglev maps to victim while it is healthy.
	var flow uint64
	for f := uint64(0); ; f++ {
		b, err := lb.Steer(f)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name == "victim" {
			flow = f
			break
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, 1)
	start := make(chan struct{})
	const rounds = 2000
	// Two steer workers fighting over the same flow maximizes the
	// interleaving window the old two-critical-section path exposed.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				b, err := lb.Steer(flow)
				if err != nil {
					continue
				}
				// The invariant: the steered backend is healthy in some
				// recently published snapshot. Since only "victim" flaps,
				// catching a cached "victim" while it is down is the
				// resurrection bug.
				if b.Name == "victim" && !lb.victimHealthyForTest() {
					// Tolerate the benign snapshot race (pick published
					// just before the flap) but not a cache-served stale
					// entry: re-steer immediately — a resurrected cache
					// entry keeps answering "victim", a benign race
					// corrects itself on the next snapshot load.
					if b2, err2 := lb.Steer(flow); err2 == nil && b2.Name == "victim" && !lb.victimHealthyForTest() {
						select {
						case errs <- "stale cache entry for unhealthy victim resurrected":
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < rounds/4; i++ {
			lb.SetHealth("victim", false)
			lb.SetHealth("victim", true)
		}
		lb.SetHealth("victim", false)
	}()
	close(start)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	// Victim is now down for good: the cache must not serve it.
	for i := 0; i < 100; i++ {
		b, err := lb.Steer(flow)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name == "victim" {
			t.Fatalf("steer %d returned unhealthy victim from cache", i)
		}
	}
}

// victimHealthyForTest reads victim's health from the current snapshot.
func (lb *LB) victimHealthyForTest() bool {
	_, ok := lb.route.Load().healthy["victim"]
	return ok
}
