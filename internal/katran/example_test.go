package katran_test

import (
	"fmt"

	"zdr/internal/katran"
)

// Example shows flow steering with the LRU connection-table cache: a
// momentary health flap does not move unrelated established flows.
func Example() {
	lb := katran.New("l4-1", katran.Config{FlowCacheSize: 1024}, nil)
	for _, name := range []string{"proxy-a", "proxy-b", "proxy-c"} {
		lb.AddBackend(katran.Backend{Name: name, Addr: name + ":443"}, true)
	}
	defer lb.Close()

	before, _ := lb.Steer(42)
	lb.SetHealth("proxy-b", false) // flap down...
	lb.SetHealth("proxy-b", true)  // ...and back
	after, _ := lb.Steer(42)
	fmt.Println("flow stayed put:", before.Name == after.Name)
	// Output: flow stayed put: true
}
