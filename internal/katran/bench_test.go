package katran

import (
	"fmt"
	"testing"
)

// newBenchLB builds an LB with 64 healthy backends, the fleet size the
// Fig. 2d experiments model.
func newBenchLB(b *testing.B, cacheSize int) *LB {
	b.Helper()
	lb := New("bench", Config{FlowCacheSize: cacheSize}, nil)
	for i := 0; i < 64; i++ {
		lb.AddBackend(Backend{Name: fmt.Sprintf("p%02d", i), Addr: "x"}, true)
	}
	b.Cleanup(lb.Close)
	return lb
}

// BenchmarkForward is the per-packet steering hot path under parallel
// load: every goroutine steers flows that are already resident in the
// §5.1 connection-table cache, the common case for established traffic.
// Run with -cpu 4 to expose lock contention.
func BenchmarkForward(b *testing.B) {
	const flows = 8192
	lb := newBenchLB(b, 1<<16)
	for f := uint64(0); f < flows; f++ {
		if _, err := lb.Steer(f); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		f := uint64(0)
		for pb.Next() {
			if _, err := lb.Steer(f % flows); err != nil {
				b.Fatal(err)
			}
			f += 0x9e3779b97f4a7c15 % flows
		}
	})
}

// BenchmarkForwardNoCache is the table-pick path: no connection cache, so
// every packet consults the Maglev table (lock-free after sharding).
func BenchmarkForwardNoCache(b *testing.B) {
	lb := newBenchLB(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		f := uint64(0)
		for pb.Next() {
			if _, err := lb.Steer(f); err != nil {
				b.Fatal(err)
			}
			f += 0x9e3779b97f4a7c15
		}
	})
}
