package katran

import (
	"fmt"
	"testing"
)

// newBenchLB builds an LB with 64 healthy backends, the fleet size the
// Fig. 2d experiments model.
func newBenchLB(b *testing.B, cacheSize int) *LB {
	b.Helper()
	lb := New("bench", Config{FlowCacheSize: cacheSize}, nil)
	for i := 0; i < 64; i++ {
		lb.AddBackend(Backend{Name: fmt.Sprintf("p%02d", i), Addr: "x"}, true)
	}
	b.Cleanup(lb.Close)
	return lb
}

// BenchmarkForward is the per-packet steering hot path under parallel
// load: every goroutine steers flows that are already resident in the
// §5.1 connection-table cache, the common case for established traffic.
// Run with -cpu 4 to expose lock contention.
func BenchmarkForward(b *testing.B) {
	const flows = 8192
	lb := newBenchLB(b, 1<<16)
	for f := uint64(0); f < flows; f++ {
		if _, err := lb.Steer(f); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		f := uint64(0)
		for pb.Next() {
			if _, err := lb.Steer(f % flows); err != nil {
				b.Fatal(err)
			}
			f += 0x9e3779b97f4a7c15 % flows
		}
	})
}

// BenchmarkForwardNoCache is the table-pick path: no connection cache, so
// every packet consults the Maglev table (lock-free after sharding).
func BenchmarkForwardNoCache(b *testing.B) {
	lb := newBenchLB(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		f := uint64(0)
		for pb.Next() {
			if _, err := lb.Steer(f); err != nil {
				b.Fatal(err)
			}
			f += 0x9e3779b97f4a7c15
		}
	})
}

// BenchmarkFlowTableLookup is the generation-tagged table's resident-flow
// read path: 16 B/entry probe within one 8-way bucket, no locks beyond the
// entry shard.
func BenchmarkFlowTableLookup(b *testing.B) {
	const flows = 1 << 20
	ft := NewFlowTable(flows*2, 0)
	ft.SetBackends([]string{"a", "b", "c", "d"})
	for f := uint64(0); f < flows; f++ {
		ft.Insert(f, []string{"a", "b", "c", "d"}[f%4])
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		f := uint64(0)
		for pb.Next() {
			ft.Lookup(f % flows)
			f += 0x9e3779b97f4a7c15
		}
	})
}

// BenchmarkFlowTableInsert measures pinning churn (connection setup rate).
func BenchmarkFlowTableInsert(b *testing.B) {
	ft := NewFlowTable(1<<21, 0)
	ft.SetBackends([]string{"a", "b", "c", "d"})
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		f := uint64(0)
		for pb.Next() {
			ft.Insert(f, "a")
			f += 0x9e3779b97f4a7c15
		}
	})
}

// BenchmarkFlowTableBump is the takeover primitive itself: with a million
// flows resident, flipping every one of them must cost a single view
// publication — constant time, independent of occupancy.
func BenchmarkFlowTableBump(b *testing.B) {
	const flows = 1 << 20
	ft := NewFlowTable(flows*2, 0)
	ft.SetBackends([]string{"a", "b"})
	for f := uint64(0); f < flows; f++ {
		ft.Insert(f, "a")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Bump(true)
	}
	b.StopTimer()
	if ft.EntryWrites() != flows {
		b.Fatalf("bump wrote entries: %d writes for %d inserts", ft.EntryWrites(), flows)
	}
}

// BenchmarkForwardFlowTable is the steering hot path when pins come from
// the compact table instead of the LRU cache (cache disabled): the
// million-flow configuration's steady state.
func BenchmarkForwardFlowTable(b *testing.B) {
	const flows = 8192
	lb := New("bench", Config{FlowTableSize: 1 << 16}, nil)
	for i := 0; i < 64; i++ {
		lb.AddBackend(Backend{Name: fmt.Sprintf("p%02d", i), Addr: "x"}, true)
	}
	b.Cleanup(lb.Close)
	for f := uint64(0); f < flows; f++ {
		if _, err := lb.Steer(f); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		f := uint64(0)
		for pb.Next() {
			if _, err := lb.Steer(f % flows); err != nil {
				b.Fatal(err)
			}
			f += 0x9e3779b97f4a7c15 % flows
		}
	})
}
