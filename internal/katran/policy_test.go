package katran

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// loadServer is a test backend speaking both health-VIP protocols: one
// "HC\n" answer per fresh connection and any number of "LOAD\n" answers
// on a persistent connection.
type loadServer struct {
	ln      net.Listener
	sample  func() LoadSample
	healthy atomic.Bool
	conns   atomic.Int64 // accepted connections (persistence assertions)

	mu   sync.Mutex
	open []net.Conn
}

func startLoadServer(t *testing.T, sample func() LoadSample) *loadServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ls := &loadServer{ln: ln, sample: sample}
	ls.healthy.Store(true)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			ls.conns.Add(1)
			ls.mu.Lock()
			ls.open = append(ls.open, conn)
			ls.mu.Unlock()
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					line, err := br.ReadString('\n')
					if err != nil {
						return
					}
					switch line {
					case "HC\n":
						if ls.healthy.Load() {
							fmt.Fprint(conn, "OK\n")
						} else {
							fmt.Fprint(conn, "DRAIN\n")
						}
					case "LOAD\n":
						fmt.Fprint(conn, EncodeLoadLine(ls.sample()))
					default:
						return
					}
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ls
}

func (ls *loadServer) addr() string { return ls.ln.Addr().String() }

// closeOpenConns severs every established connection (simulating a
// partition or restart) while keeping the listener up.
func (ls *loadServer) closeOpenConns() {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	for _, c := range ls.open {
		c.Close()
	}
	ls.open = nil
}

func TestLoadLineRoundTrip(t *testing.T) {
	in := LoadSample{RIF: 42, Latency: 1500 * time.Microsecond, Phase: PhaseDraining, Generation: 7}
	line := EncodeLoadLine(in)
	if !strings.HasPrefix(line, "LOAD ") || !strings.HasSuffix(line, "\n") {
		t.Fatalf("bad wire line %q", line)
	}
	out, err := ParseLoadLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
	if !out.Draining() {
		t.Fatal("phase=draining must report Draining()")
	}

	// Unknown fields are ignored; missing phase defaults to serving.
	s, err := ParseLoadLine("LOAD rif=3 future_field=x\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.RIF != 3 || s.Phase != PhaseServing || s.Draining() {
		t.Fatalf("forward-compat parse: %+v", s)
	}

	if _, err := ParseLoadLine("OK\n"); err == nil {
		t.Fatal("non-LOAD line must not parse")
	}
	if _, err := ParseLoadLine("LOAD rif=banana\n"); err == nil {
		t.Fatal("bad rif must not parse")
	}
}

// TestDeprecatedWrappersDelegate pins the PR 5 convention: every
// deprecated name is a one-line delegate to the canonical API, not a
// parallel implementation.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	lb := New("lb", Config{}, nil)
	defer lb.Close()
	lb.AddBackend(Backend{Name: "a", Addr: "1.2.3.4:80"}, true)

	// SteerAddr → Steer().Addr.
	for flow := uint64(0); flow < 8; flow++ {
		b, err := lb.Steer(flow)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := lb.SteerAddr(flow)
		if err != nil {
			t.Fatal(err)
		}
		if addr != b.Addr {
			t.Fatalf("SteerAddr(%d) = %q, Steer().Addr = %q", flow, addr, b.Addr)
		}
	}

	// ProbeHC → (&HCProber{}).Probe: same verdicts on the same server.
	ls := startLoadServer(t, func() LoadSample { return LoadSample{} })
	if err := ProbeHC(ls.addr(), time.Second); err != nil {
		t.Fatalf("ProbeHC healthy: %v", err)
	}
	if err := (&HCProber{}).Probe(ls.addr(), time.Second); err != nil {
		t.Fatalf("HCProber healthy: %v", err)
	}
	ls.healthy.Store(false)
	if err := ProbeHC(ls.addr(), time.Second); err == nil {
		t.Fatal("ProbeHC must fail on DRAIN")
	}
	if err := (&HCProber{}).Probe(ls.addr(), time.Second); err == nil {
		t.Fatal("HCProber must fail on DRAIN")
	}

	// Config.Probe (deprecated func field) still drives health checks,
	// wrapped into a Prober.
	var calls atomic.Int64
	lb2 := New("lb2", Config{Probe: func(addr string, timeout time.Duration) error {
		calls.Add(1)
		return nil
	}}, nil)
	defer lb2.Close()
	lb2.AddBackend(Backend{Name: "b", Addr: "x"}, false)
	lb2.ProbeOnce()
	if calls.Load() != 1 {
		t.Fatalf("deprecated Config.Probe called %d times, want 1", calls.Load())
	}
	if got := len(lb2.HealthyBackends()); got != 1 {
		t.Fatalf("probe success should admit the backend, healthy=%d", got)
	}
	// The wrapped prober cannot answer load probes.
	if _, err := lb2.cfg.Prober.Load("x", time.Second); err == nil {
		t.Fatal("funcProber must refuse load probes")
	}
}

func TestSetHealthUnknownBackend(t *testing.T) {
	lb := New("lb", Config{}, nil)
	defer lb.Close()
	lb.AddBackend(Backend{Name: "real", Addr: "x"}, true)

	if err := lb.SetHealth("typo", false); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("SetHealth(unknown) = %v, want ErrUnknownBackend", err)
	}
	if got := lb.Metrics().CounterValue("katran.health.unknown_backend"); got != 1 {
		t.Fatalf("unknown_backend counter = %d, want 1", got)
	}
	if err := lb.SetHealth("real", false); err != nil {
		t.Fatalf("SetHealth(known) = %v", err)
	}
	if len(lb.HealthyBackends()) != 0 {
		t.Fatal("known backend should have been evicted")
	}
}

// recordingPolicy captures lifecycle hook invocations.
type recordingPolicy struct {
	PolicyMaglev
	mu     sync.Mutex
	events []string
}

func (r *recordingPolicy) record(e string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

func (r *recordingPolicy) BackendUp(b Backend) { r.record("up:" + b.Name) }
func (r *recordingPolicy) BackendDown(n string) {
	r.record("down:" + n)
}
func (r *recordingPolicy) AdvanceGeneration(epoch uint32, drainOld bool) {
	r.record(fmt.Sprintf("gen:%d:%v", epoch, drainOld))
}
func (r *recordingPolicy) Close() { r.record("close") }

func TestPolicyLifecycleHooks(t *testing.T) {
	rec := &recordingPolicy{}
	lb := New("lb", Config{FlowTableSize: 64, Policy: rec}, nil)
	lb.AddBackend(Backend{Name: "a", Addr: "x"}, true)
	lb.AddBackend(Backend{Name: "b", Addr: "y"}, false) // unhealthy: no hook
	lb.SetHealth("b", true)
	lb.SetHealth("b", false)
	lb.AdvanceGeneration(true)
	lb.RemoveBackend("a")
	lb.Close()

	want := []string{"up:a", "up:b", "down:b", "gen:2:true", "down:a", "close"}
	rec.mu.Lock()
	got := strings.Join(rec.events, ",")
	rec.mu.Unlock()
	if got != strings.Join(want, ",") {
		t.Fatalf("lifecycle events = %s, want %s", got, strings.Join(want, ","))
	}
}

func TestNewPolicyFactory(t *testing.T) {
	if p := NewPolicy("", PrequalConfig{}, nil); p.Name() != "maglev" {
		t.Fatalf("default policy = %s", p.Name())
	}
	if p := NewPolicy("maglev", PrequalConfig{}, nil); p.Name() != "maglev" {
		t.Fatalf("maglev policy = %s", p.Name())
	}
	if p := NewPolicy("banana", PrequalConfig{}, nil); p.Name() != "maglev" {
		t.Fatalf("unknown names must degrade to maglev, got %s", p.Name())
	}
	p := NewPolicy("prequal", PrequalConfig{}, nil)
	if p.Name() != "prequal" {
		t.Fatalf("prequal policy = %s", p.Name())
	}
	p.Close()
}

// TestPolicyMaglevMatchesPlacement pins the refactor invariant: the
// default policy reproduces the pre-Policy steering exactly — fresh picks
// are the Maglev pick over the current view.
func TestPolicyMaglevMatchesPlacement(t *testing.T) {
	lb := New("lb", Config{}, nil)
	defer lb.Close()
	for _, n := range []string{"a", "b", "c"} {
		lb.AddBackend(Backend{Name: n, Addr: n + ":80"}, true)
	}
	view := lb.View()
	for flow := uint64(0); flow < 256; flow++ {
		b, err := lb.Steer(flow)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := view.PickMaglev(flow)
		if !ok || b.Name != want.Name {
			t.Fatalf("flow %d: steer=%s maglev=%s", flow, b.Name, want.Name)
		}
	}
	if lb.Metrics().CounterValue("katran.steer.policy_pick") == 0 {
		t.Fatal("fresh picks must count on katran.steer.policy_pick")
	}
}

func TestHCProberLoadPersistentChannel(t *testing.T) {
	var phase atomic.Value
	phase.Store(PhaseServing)
	ls := startLoadServer(t, func() LoadSample {
		return LoadSample{RIF: 5, Latency: time.Millisecond, Phase: phase.Load().(string), Generation: 3}
	})
	p := &HCProber{}
	defer p.Close()

	for i := 0; i < 5; i++ {
		s, err := p.Load(ls.addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if s.RIF != 5 || s.Generation != 3 {
			t.Fatalf("load sample %+v", s)
		}
	}
	if got := ls.conns.Load(); got != 1 {
		t.Fatalf("5 load probes used %d connections, want 1 persistent channel", got)
	}

	// The persistent channel is the drain-advertisement path: a phase
	// flip is heard on the very next probe, no reconnect needed.
	phase.Store(PhaseDraining)
	s, err := p.Load(ls.addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Draining() {
		t.Fatalf("phase flip not heard: %+v", s)
	}

	// A severed channel reconnects within the same call.
	ls.closeOpenConns()
	if _, err := p.Load(ls.addr(), time.Second); err != nil {
		t.Fatalf("reconnect after severed channel: %v", err)
	}
	if got := ls.conns.Load(); got != 2 {
		t.Fatalf("reconnect used %d total connections, want 2", got)
	}

	// Health probes stay one-shot: each uses a fresh connection.
	ls.healthy.Store(true)
	before := ls.conns.Load()
	if err := p.Probe(ls.addr(), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Probe(ls.addr(), time.Second); err != nil {
		t.Fatal(err)
	}
	if got := ls.conns.Load() - before; got != 2 {
		t.Fatalf("2 health probes used %d connections, want 2 fresh", got)
	}
}
