package katran

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardedFlowCacheConcurrent hammers Get/Put/Delete from many
// goroutines; run under -race this pins the per-shard locking.
func TestShardedFlowCacheConcurrent(t *testing.T) {
	c := NewShardedFlowCache(4096, 8)
	const (
		workers = 8
		ops     = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				flow := uint64(w*ops + i)
				c.Put(flow, "backend")
				if name, ok := c.Get(flow); ok && name != "backend" {
					t.Errorf("flow %d: got %q", flow, name)
					return
				}
				if i%3 == 0 {
					c.Delete(flow)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 4096 {
		t.Fatalf("cache over capacity: %d", c.Len())
	}
}

// TestShardedFlowCacheEviction checks that each shard evicts its own
// least-recently-used entry: a recently touched flow survives a flood of
// new flows into the same shard, while the shard's oldest flow does not.
func TestShardedFlowCacheEviction(t *testing.T) {
	// 2 shards × 4 entries each.
	c := NewShardedFlowCache(8, 2)
	if c.Shards() != 2 {
		t.Fatalf("shards = %d, want 2", c.Shards())
	}
	// Collect flows that land on shard 0 so eviction pressure is confined
	// to one shard.
	var flows []uint64
	for f := uint64(0); len(flows) < 6; f++ {
		if shardMix(f)&c.mask == 0 {
			flows = append(flows, f)
		}
	}
	// Fill the shard: flows[0..3]. flows[0] is oldest.
	for i := 0; i < 4; i++ {
		c.Put(flows[i], fmt.Sprintf("b%d", i))
	}
	// Touch flows[0] so flows[1] becomes the shard's LRU victim.
	if _, ok := c.Get(flows[0]); !ok {
		t.Fatal("flows[0] missing before eviction")
	}
	// Two more inserts evict flows[1] then flows[2].
	c.Put(flows[4], "b4")
	c.Put(flows[5], "b5")
	if _, ok := c.Get(flows[0]); !ok {
		t.Error("recently used flows[0] was evicted")
	}
	if _, ok := c.Get(flows[1]); ok {
		t.Error("LRU victim flows[1] survived")
	}
	if _, ok := c.Get(flows[2]); ok {
		t.Error("LRU victim flows[2] survived")
	}
}

// TestSteerConsistencyAcrossTakeover is the §5.1 property under the new
// lock-free data plane: while backends flap health (as they do during a
// rolling release) and steering runs concurrently, a flow that was cached
// on a still-healthy backend keeps landing on that backend.
func TestSteerConsistencyAcrossTakeover(t *testing.T) {
	lb := New("test", Config{FlowCacheSize: 4096, FlowCacheShards: 8}, nil)
	defer lb.Close()
	const backends = 8
	for i := 0; i < backends; i++ {
		lb.AddBackend(Backend{
			Name: fmt.Sprintf("proxy-%d", i),
			Addr: fmt.Sprintf("10.0.0.%d:443", i),
		}, true)
	}
	// "victim" restarts during the run; every flow pinned elsewhere must
	// never move.
	const victim = "proxy-0"
	const flowCount = 512
	pinned := make(map[uint64]string, flowCount)
	for f := uint64(0); f < flowCount; f++ {
		b, err := lb.Steer(f)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name != victim {
			pinned[f] = b.Name
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for f := uint64(0); f < flowCount; f++ {
					b, err := lb.Steer(f)
					if err != nil {
						continue
					}
					if want, ok := pinned[f]; ok && b.Name != want {
						select {
						case errs <- fmt.Sprintf("flow %d moved %s → %s", f, want, b.Name):
						default:
						}
						return
					}
				}
			}
		}()
	}
	// The release: victim drains, restarts, comes back — repeatedly, so
	// the table shuffles while steering is in flight.
	for i := 0; i < 50; i++ {
		lb.SetHealth(victim, false)
		lb.SetHealth(victim, true)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}
