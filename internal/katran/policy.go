package katran

import (
	"zdr/internal/consistent"
	"zdr/internal/metrics"
)

// View is one immutable routing snapshot: the Maglev table over the
// healthy backends plus the backend records for result lookup. Once
// published it is never mutated — rebuilds allocate a fresh one
// (consistent.Maglev.Rebuild mutates in place, so sharing one Maglev
// across snapshots would race with lock-free readers). Policies receive
// the current View on every Pick and may read it freely without
// synchronization.
type View struct {
	maglev  *consistent.Maglev
	healthy map[string]Backend
}

// Healthy returns the names of the healthy backends, sorted.
func (v *View) Healthy() []string { return v.maglev.Members() }

// NumHealthy returns the healthy-backend count.
func (v *View) NumHealthy() int { return len(v.healthy) }

// Backend resolves a healthy backend by name.
func (v *View) Backend(name string) (Backend, bool) {
	b, ok := v.healthy[name]
	return b, ok
}

// PickMaglev resolves flow against the Maglev table — the placement-only
// pick every policy can fall back to.
func (v *View) PickMaglev(flow uint64) (Backend, bool) {
	name := v.maglev.PickUint(flow)
	if name == "" {
		return Backend{}, false
	}
	b, ok := v.healthy[name]
	return b, ok
}

// Policy is katran's pluggable steering surface: given a flow hash and
// the current immutable routing View, pick the backend a FRESH flow
// should land on. The LB's pinning layers sit in front of every policy
// — the §5.1 LRU cache and the generation-tagged flow table keep
// established flows where they are — so Pick decides only where NEW
// flows (and flows whose pin went stale) go. That precedence is the
// ZDR contract: a drain-aware policy bleeds new flows off a draining
// generation while the flow table still pins established ones.
//
// Lifecycle hooks observe the LB's control plane. They are invoked with
// the LB's control-plane lock held and must not call back into the LB.
type Policy interface {
	// Name identifies the policy in metrics and configuration.
	Name() string
	// Pick selects a backend for a fresh flow against view. It must
	// return a backend whenever view has healthy backends — a policy
	// may deprioritize draining or probe-dead candidates but must never
	// fail a live request while any healthy backend exists.
	Pick(flow uint64, view *View) (Backend, error)
	// BackendUp fires when a backend is admitted to the routing ring
	// (added healthy, or probed back to health).
	BackendUp(b Backend)
	// BackendDown fires when a backend leaves the routing ring (probed
	// unhealthy, or removed).
	BackendDown(name string)
	// AdvanceGeneration observes a release-generation bump on the LB's
	// flow table.
	AdvanceGeneration(epoch uint32, drainOld bool)
	// Close releases policy resources (probe pools, goroutines).
	Close()
}

// PolicyMaglev is the default steering policy: the classic
// cache→flow-table→Maglev pipeline's terminal pick. Together with the
// LB's pinning layers it reconstitutes exactly the pre-Policy steering
// behaviour: fresh flows place by consistent hash, established flows
// stay pinned.
type PolicyMaglev struct{}

// NewPolicyMaglev returns the default placement-only policy.
func NewPolicyMaglev() *PolicyMaglev { return &PolicyMaglev{} }

// Name implements Policy.
func (*PolicyMaglev) Name() string { return "maglev" }

// Pick implements Policy: the Maglev consistent-hash pick.
func (*PolicyMaglev) Pick(flow uint64, view *View) (Backend, error) {
	b, ok := view.PickMaglev(flow)
	if !ok {
		return Backend{}, ErrNoBackends
	}
	return b, nil
}

// BackendUp implements Policy (no per-backend state).
func (*PolicyMaglev) BackendUp(Backend) {}

// BackendDown implements Policy (no per-backend state).
func (*PolicyMaglev) BackendDown(string) {}

// AdvanceGeneration implements Policy (placement ignores generations).
func (*PolicyMaglev) AdvanceGeneration(uint32, bool) {}

// Close implements Policy.
func (*PolicyMaglev) Close() {}

// NewPolicy constructs a policy by name: "" or "maglev" selects
// PolicyMaglev, "prequal" selects a PolicyPrequal with cfg. reg may be
// nil. Unknown names fall back to PolicyMaglev so a typoed flag
// degrades to placement-only steering instead of a dead data plane.
func NewPolicy(name string, cfg PrequalConfig, reg *metrics.Registry) Policy {
	if name == "prequal" {
		return NewPolicyPrequal(cfg, reg)
	}
	return NewPolicyMaglev()
}
