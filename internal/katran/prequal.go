package katran

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"zdr/internal/metrics"
)

// PrequalConfig tunes PolicyPrequal.
type PrequalConfig struct {
	// Prober carries the load probes (default &HCProber{}). Wire its
	// dialer to a faults.Injector for chaos testing.
	Prober Prober
	// ProbeInterval paces the per-backend async probe loop (default
	// 20ms). Prequal's reaction time to a drain advertisement or a load
	// spike is one interval, not a health-check round trip.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default 200ms).
	ProbeTimeout time.Duration
	// PoolSize bounds the per-backend probe pool (default 16).
	PoolSize int
	// ReuseBudget is how many picks one probe sample may steer before
	// it is discarded (the paper's probe reuse; default 3). A backend
	// whose samples are all spent steers like an unprobed one until the
	// next probe lands.
	ReuseBudget int
	// MaxAge expires probe samples (default 500ms). A partitioned
	// backend stops producing samples and ages out of consideration —
	// stale probes must never keep steering traffic at a black hole.
	MaxAge time.Duration
	// PowerD is the power-of-d-choices candidate count (default 3).
	PowerD int
	// HotQuantile classifies candidates hot vs cold: a candidate is hot
	// when its estimated RIF exceeds this quantile of the pooled RIF
	// estimates across all probed backends (default 0.84, the paper's
	// recommended Q-RIF region). Cold candidates are picked by lowest
	// latency, hot ones by least RIF — the hot/cold lexicographic rule.
	HotQuantile float64
	// Seed makes candidate sampling deterministic (tests, experiments).
	// Zero selects a fixed default seed; sampling is never wall-clock
	// dependent.
	Seed int64
}

func (c *PrequalConfig) fill() {
	if c.Prober == nil {
		c.Prober = &HCProber{}
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 20 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 200 * time.Millisecond
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 16
	}
	if c.ReuseBudget <= 0 {
		c.ReuseBudget = 3
	}
	if c.MaxAge <= 0 {
		c.MaxAge = 500 * time.Millisecond
	}
	if c.PowerD <= 0 {
		c.PowerD = 3
	}
	if c.HotQuantile <= 0 || c.HotQuantile >= 1 {
		c.HotQuantile = 0.84
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// poolSample is one pooled probe answer with its reuse accounting.
type poolSample struct {
	LoadSample
	at   time.Time
	uses int
}

// probePool is one backend's probe state: a small ring of recent
// samples plus the async probe loop feeding it.
type probePool struct {
	backend Backend
	samples []poolSample // newest last
	stop    chan struct{}
}

// PolicyPrequal is the Prequal steering policy (PAPERS.md: "Load is not
// what you should balance"): per-backend pools of asynchronous probes
// reporting requests-in-flight + latency, power-of-d candidate
// sampling, and the hot/cold lexicographic selection rule. The ZDR
// twist: probe answers carry the backend's release phase, and a
// draining or committed-awaiting-ready generation is deprioritized so
// new flows bleed off before the drain timer bites — while the LB's
// flow table keeps established flows pinned to it.
//
// Candidate ranking is lexicographic:
//
//  1. backends not advertising a release beat draining ones;
//  2. backends with fresh probe data beat probe-dead ones (expiry: a
//     partitioned backend ages out instead of absorbing traffic);
//  3. cold beats hot (hot = estimated RIF above the HotQuantile of the
//     pooled estimates);
//  4. among cold, lowest latency wins; among hot, least RIF wins.
//
// When every candidate advertises draining (a fleet-wide release) the
// policy still picks the best of them — a live request is never failed
// while the routing ring has healthy backends.
type PolicyPrequal struct {
	cfg PrequalConfig

	cProbes    *metrics.Counter
	cProbeErrs *metrics.Counter
	cReuseOut  *metrics.Counter
	cExpired   *metrics.Counter
	cPickCold  *metrics.Counter
	cPickHot   *metrics.Counter
	cPickFall  *metrics.Counter
	cAvoided   *metrics.Counter
	gPooled    *metrics.Gauge

	mu    sync.Mutex
	pools map[string]*probePool
	rng   *rand.Rand
	wg    sync.WaitGroup
	done  bool
}

// NewPolicyPrequal creates the policy. reg may be nil; pass the same
// registry the LB uses so katran.prequal.* rides the existing
// telemetry scrape.
func NewPolicyPrequal(cfg PrequalConfig, reg *metrics.Registry) *PolicyPrequal {
	cfg.fill()
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &PolicyPrequal{
		cfg:        cfg,
		cProbes:    reg.Counter("katran.prequal.probes"),
		cProbeErrs: reg.Counter("katran.prequal.probe_errors"),
		cReuseOut:  reg.Counter("katran.prequal.probe_reuse_exhausted"),
		cExpired:   reg.Counter("katran.prequal.probe_expired"),
		cPickCold:  reg.Counter("katran.prequal.pick_cold"),
		cPickHot:   reg.Counter("katran.prequal.pick_hot"),
		cPickFall:  reg.Counter("katran.prequal.pick_fallback"),
		cAvoided:   reg.Counter("katran.prequal.drain_avoided"),
		gPooled:    reg.Gauge("katran.prequal.pooled_backends"),
		pools:      make(map[string]*probePool),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Name implements Policy.
func (p *PolicyPrequal) Name() string { return "prequal" }

// BackendUp implements Policy: start (or keep) the backend's async
// probe loop.
func (p *PolicyPrequal) BackendUp(b Backend) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return
	}
	if _, ok := p.pools[b.Name]; ok {
		return
	}
	pool := &probePool{backend: b, stop: make(chan struct{})}
	p.pools[b.Name] = pool
	p.gPooled.Set(int64(len(p.pools)))
	p.wg.Add(1)
	go p.probeLoop(pool)
}

// BackendDown implements Policy: stop probing and forget the pool —
// samples for a backend that left the ring must not linger.
func (p *PolicyPrequal) BackendDown(name string) {
	p.mu.Lock()
	pool, ok := p.pools[name]
	if ok {
		delete(p.pools, name)
		p.gPooled.Set(int64(len(p.pools)))
	}
	p.mu.Unlock()
	if ok {
		close(pool.stop)
	}
}

// AdvanceGeneration implements Policy (the pool carries per-sample
// generation tags already; nothing to flip).
func (p *PolicyPrequal) AdvanceGeneration(uint32, bool) {}

// Close implements Policy: stop every probe loop and the prober's
// persistent channels.
func (p *PolicyPrequal) Close() {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return
	}
	p.done = true
	pools := p.pools
	p.pools = make(map[string]*probePool)
	p.gPooled.Set(0)
	p.mu.Unlock()
	for _, pool := range pools {
		close(pool.stop)
	}
	p.wg.Wait()
	if c, ok := p.cfg.Prober.(interface{ Close() error }); ok {
		c.Close()
	}
}

// probeLoop probes one backend every ProbeInterval until stopped.
func (p *PolicyPrequal) probeLoop(pool *probePool) {
	defer p.wg.Done()
	addr := pool.backend.HealthAddr
	if addr == "" {
		addr = pool.backend.Addr
	}
	ticker := time.NewTicker(p.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		s, err := p.cfg.Prober.Load(addr, p.cfg.ProbeTimeout)
		p.cProbes.Inc()
		if err != nil {
			p.cProbeErrs.Inc()
		} else {
			p.admit(pool, s)
		}
		select {
		case <-ticker.C:
		case <-pool.stop:
			return
		}
	}
}

// admit appends a fresh sample to the pool, evicting the oldest past
// PoolSize.
func (p *PolicyPrequal) admit(pool *probePool, s LoadSample) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pool.samples = append(pool.samples, poolSample{LoadSample: s, at: time.Now()})
	if n := len(pool.samples) - p.cfg.PoolSize; n > 0 {
		pool.samples = pool.samples[n:]
	}
}

// AddSample injects a probe answer for a backend directly, bypassing
// the async loop. Tests and simulators use it to model probe arrivals
// deterministically; BackendUp must have registered the backend first.
func (p *PolicyPrequal) AddSample(name string, s LoadSample) {
	p.mu.Lock()
	pool := p.pools[name]
	p.mu.Unlock()
	if pool != nil {
		p.admit(pool, s)
	}
}

// estimate is one candidate's pick-time view.
type estimate struct {
	b        Backend
	known    bool // fresh, unspent probe data exists
	draining bool
	rif      int
	latency  time.Duration
}

// consume returns the freshest usable sample for pool, charging one
// reuse against it and pruning expired or spent samples. Caller holds
// p.mu.
func (p *PolicyPrequal) consumeLocked(pool *probePool, now time.Time) (LoadSample, bool) {
	// Prune from the front: samples are appended in arrival order, so
	// everything older than the first fresh one is expired too.
	keep := pool.samples[:0]
	for _, s := range pool.samples {
		switch {
		case now.Sub(s.at) > p.cfg.MaxAge:
			p.cExpired.Inc()
		case s.uses >= p.cfg.ReuseBudget:
			p.cReuseOut.Inc()
		default:
			keep = append(keep, s)
		}
	}
	pool.samples = keep
	if len(pool.samples) == 0 {
		return LoadSample{}, false
	}
	s := &pool.samples[len(pool.samples)-1]
	s.uses++
	return s.LoadSample, true
}

// Pick implements Policy: power-of-d sampling over the healthy set,
// then the drain-aware hot/cold lexicographic rule.
func (p *PolicyPrequal) Pick(flow uint64, view *View) (Backend, error) {
	names := view.Healthy()
	if len(names) == 0 {
		return Backend{}, ErrNoBackends
	}

	p.mu.Lock()
	d := p.cfg.PowerD
	if d > len(names) {
		d = len(names)
	}
	// Sample d distinct candidates (partial Fisher-Yates over a copy of
	// the healthy slice; Healthy() already returns a fresh slice).
	for i := 0; i < d; i++ {
		j := i + p.rng.Intn(len(names)-i)
		names[i], names[j] = names[j], names[i]
	}
	now := time.Now()
	ests := make([]estimate, 0, d)
	rifs := make([]int, 0, len(p.pools))
	anyKnown := false
	for _, pool := range p.pools {
		if len(pool.samples) > 0 {
			rifs = append(rifs, pool.samples[len(pool.samples)-1].RIF)
		}
	}
	for _, name := range names[:d] {
		b, ok := view.Backend(name)
		if !ok {
			continue
		}
		e := estimate{b: b}
		if pool := p.pools[name]; pool != nil {
			if s, ok := p.consumeLocked(pool, now); ok {
				e.known = true
				e.draining = s.Draining()
				e.rif = s.RIF
				e.latency = s.Latency
				anyKnown = true
			}
		}
		ests = append(ests, e)
	}
	p.mu.Unlock()

	if len(ests) == 0 {
		return Backend{}, ErrNoBackends
	}
	if !anyKnown {
		// No probe data anywhere among the candidates (cold start, or a
		// prober that cannot load-probe): placement-only fallback.
		p.cPickFall.Inc()
		if b, ok := view.PickMaglev(flow); ok {
			return b, nil
		}
		return ests[0].b, nil
	}

	hot := p.hotThreshold(rifs)
	best := ests[0]
	for _, e := range ests[1:] {
		if better(e, best, hot) {
			best = e
		}
	}
	for _, e := range ests {
		if e.draining && e.b.Name != best.b.Name {
			p.cAvoided.Inc()
		}
	}
	switch {
	case !e2hot(best, hot) && best.known:
		p.cPickCold.Inc()
	case best.known:
		p.cPickHot.Inc()
	default:
		p.cPickFall.Inc()
	}
	return best.b, nil
}

// hotThreshold returns the RIF value above which a candidate counts as
// hot: the HotQuantile of the freshest pooled RIF estimates.
func (p *PolicyPrequal) hotThreshold(rifs []int) int {
	if len(rifs) == 0 {
		return 0
	}
	sort.Ints(rifs)
	idx := int(float64(len(rifs)) * p.cfg.HotQuantile)
	if idx >= len(rifs) {
		idx = len(rifs) - 1
	}
	return rifs[idx]
}

func e2hot(e estimate, hot int) bool { return e.known && e.rif > hot }

// better reports whether a beats b under the drain-aware hot/cold
// lexicographic rule.
func better(a, b estimate, hot int) bool {
	// 1. Not-draining beats draining: new flows bleed off a releasing
	//    generation first.
	if a.draining != b.draining {
		return !a.draining
	}
	// 2. Probed beats probe-dead: expired pools (partitioned backends)
	//    only absorb traffic when nothing probed is available.
	if a.known != b.known {
		return a.known
	}
	if !a.known {
		return false // both unknown: keep the earlier sample
	}
	// 3. Cold beats hot.
	ah, bh := e2hot(a, hot), e2hot(b, hot)
	if ah != bh {
		return !ah
	}
	// 4. Among hot: least RIF. Among cold: lowest latency, RIF breaking
	//    ties.
	if ah {
		return a.rif < b.rif
	}
	if a.latency != b.latency {
		return a.latency < b.latency
	}
	return a.rif < b.rif
}
